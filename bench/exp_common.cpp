#include "exp_common.hpp"

#include <cstdio>
#include <filesystem>

namespace zenesis::bench {

void run_sample(core::Session& session, const fibsem::SyntheticVolume& vol,
                const MethodSet& methods) {
  const std::string name = fibsem::sample_type_name(vol.type);
  const char* prompt = fibsem::default_prompt(vol.type);

  core::VolumeResult zen;
  if (methods.zenesis) {
    zen = session.mode_b_segment_volume(
        core::VolumeRequest::view(vol.volume, prompt));
  }
  for (std::int64_t z = 0; z < vol.depth(); ++z) {
    const auto zi = static_cast<std::size_t>(z);
    const image::ImageF32 ready =
        session.pipeline().make_ready(image::AnyImage(vol.volume.slice(z)));
    if (methods.zenesis) {
      session.mode_c_evaluate(name, "zenesis", z, zen.slices[zi].mask,
                              vol.ground_truth[zi]);
    }
    if (methods.otsu) {
      session.mode_c_evaluate(name, "otsu", z, core::baseline_otsu(ready),
                              vol.ground_truth[zi]);
    }
    if (methods.sam_only) {
      session.mode_c_evaluate(
          name, "sam_only", z,
          core::baseline_sam_only(session.pipeline().sam(), ready),
          vol.ground_truth[zi]);
    }
  }
}

core::Session run_comparison(const ExperimentConfig& cfg,
                             const MethodSet& methods) {
  const fibsem::BenchmarkDataset ds =
      fibsem::make_benchmark_dataset(cfg.image_size, cfg.seed);
  core::Session session;
  run_sample(session, ds.crystalline, methods);
  run_sample(session, ds.amorphous, methods);
  return session;
}

std::string ensure_out_dir(const ExperimentConfig& cfg) {
  std::filesystem::create_directories(cfg.out_dir);
  return cfg.out_dir;
}

void print_header(const std::string& id, const std::string& caption) {
  std::printf("\n=== %s — %s ===\n", id.c_str(), caption.c_str());
}

}  // namespace zenesis::bench
