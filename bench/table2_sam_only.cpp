// Table 2 reproduction: SAM-only (automatic mask generation, max-confidence
// selection) — average performance metrics.
// Paper reference: crystalline IoU 0.100 / Dice 0.173 (accuracy cell
// corrupted in the source), amorphous 0.499 / 0.405 / 0.571.
#include <cstdio>

#include "exp_common.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  bench::MethodSet methods;
  methods.otsu = false;
  methods.zenesis = false;
  core::Session session = bench::run_comparison(cfg, methods);

  bench::print_header("Table 2", "SAM-only: Average Performance Metrics");
  const io::Table t = session.dashboard().method_table("sam_only");
  std::printf("%s", t.to_ascii().c_str());
  std::printf("Paper reports: crystalline IoU 0.100 / Dice 0.173, "
              "amorphous 0.499/0.405/0.571 (acc/IoU/Dice)\n");
  t.write_csv(bench::ensure_out_dir(cfg) + "/table2_sam_only.csv");
  return 0;
}
