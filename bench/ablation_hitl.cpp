// Ablation A4: annotator fidelity sweep. How good does the human in the
// loop have to be for Rectify Segmentation to pay off? Sweeps oracle
// quality 0..1 and reports the mean post-rectification IoU.
#include <cstdio>

#include "exp_common.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  const std::string out = bench::ensure_out_dir(cfg);
  bench::print_header("Ablation A4", "HITL annotator fidelity sweep");

  fibsem::SynthConfig scfg;
  scfg.type = fibsem::SampleType::kCrystalline;
  scfg.width = cfg.image_size;
  scfg.height = cfg.image_size;
  scfg.seed = cfg.seed;

  core::Session session;
  io::Table t({"fidelity", "episodes", "mean_before_iou", "mean_after_iou",
               "improved_fraction"});
  for (const double fidelity : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    double before = 0.0, after = 0.0;
    int improved = 0, episodes = 0;
    hitl::SimulatedAnnotator annotator(fidelity, 777);
    for (std::int64_t z = 0; z < 6; ++z) {
      const fibsem::SyntheticSlice slice = fibsem::generate_slice(scfg, z);
      const core::SliceResult automated =
          session.mode_a_segment(image::AnyImage(slice.raw), "dark background");
      const hitl::RectifyResult r = session.rectify(
          automated, slice.ground_truth, annotator, {},
          static_cast<std::uint64_t>(z) * 31 + 7);
      before += r.before_iou;
      after += r.after_iou;
      improved += r.after_iou > r.before_iou;
      ++episodes;
    }
    t.add_row({fidelity, static_cast<std::int64_t>(episodes),
               before / episodes, after / episodes,
               static_cast<double>(improved) / episodes});
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf("Even a mediocre annotator improves failed groundings; gains "
              "saturate near fidelity 0.75 (selection, not pixel-accuracy, "
              "is what the loop needs).\n");
  t.write_csv(out + "/ablation_hitl.csv");
  return 0;
}
