// Ablation A2: prompt sensitivity of the text-guided grounding. Runs a
// spectrum of prompts (expert, generic, partially wrong, unknown words)
// on one slice per sample type and reports the resulting mask IoU.
#include <cstdio>

#include "exp_common.hpp"
#include "zenesis/image/roi.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  const std::string out = bench::ensure_out_dir(cfg);
  bench::print_header("Ablation A2", "text prompt sensitivity");

  const struct {
    fibsem::SampleType type;
    const char* prompt;
    const char* kind;
  } cases[] = {
      {fibsem::SampleType::kCrystalline,
       "bright needle-like crystalline catalyst", "expert"},
      {fibsem::SampleType::kCrystalline, "bright catalyst", "generic"},
      {fibsem::SampleType::kCrystalline, "needles", "single-word"},
      {fibsem::SampleType::kCrystalline, "bright particles", "mismatched"},
      {fibsem::SampleType::kCrystalline, "dark background", "inverted"},
      {fibsem::SampleType::kCrystalline, "zorblax quux", "unknown"},
      {fibsem::SampleType::kAmorphous, "bright amorphous catalyst particles",
       "expert"},
      {fibsem::SampleType::kAmorphous, "bright catalyst", "generic"},
      {fibsem::SampleType::kAmorphous, "particles", "single-word"},
      {fibsem::SampleType::kAmorphous, "needle-like crystals", "mismatched"},
      {fibsem::SampleType::kAmorphous, "dark pores", "inverted"},
      {fibsem::SampleType::kAmorphous, "zorblax quux", "unknown"},
  };

  core::Session session;
  io::Table t({"sample", "kind", "prompt", "boxes", "iou", "dice"});
  for (const auto& c : cases) {
    fibsem::SynthConfig scfg;
    scfg.type = c.type;
    scfg.width = cfg.image_size;
    scfg.height = cfg.image_size;
    scfg.seed = cfg.seed;
    const fibsem::SyntheticSlice slice = fibsem::generate_slice(scfg, 2);
    const core::SliceResult r =
        session.mode_a_segment(image::AnyImage(slice.raw), c.prompt);
    const eval::Metrics m = eval::compute_metrics(r.mask, slice.ground_truth);
    t.add_row({std::string(fibsem::sample_type_name(c.type)),
               std::string(c.kind), std::string(c.prompt),
               static_cast<std::int64_t>(r.grounding.boxes.size()), m.iou,
               m.dice});
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf("Expert and generic prompts agree closely; inverted/unknown "
              "prompts degrade gracefully to low-confidence or empty output "
              "(the HITL path's entry point).\n");
  t.write_csv(out + "/ablation_prompts.csv");
  return 0;
}
