// Table 1 reproduction: Otsu threshold — average performance metrics
// (accuracy / IoU / Dice, mean±std over 10 slices per sample type).
// Paper reference: crystalline 0.586 / 0.161 / 0.274,
//                  amorphous   0.581 / 0.407 / 0.578.
#include <cstdio>

#include "exp_common.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  bench::MethodSet methods;
  methods.sam_only = false;
  methods.zenesis = false;
  core::Session session = bench::run_comparison(cfg, methods);

  bench::print_header("Table 1", "Otsu threshold: Average Performance Metrics");
  const io::Table t = session.dashboard().method_table("otsu");
  std::printf("%s", t.to_ascii().c_str());
  std::printf("Paper reports: crystalline 0.586/0.161/0.274, "
              "amorphous 0.581/0.407/0.578 (acc/IoU/Dice)\n");
  t.write_csv(bench::ensure_out_dir(cfg) + "/table1_otsu.csv");
  return 0;
}
