// Fig. 8 reproduction: the Mode C evaluation dashboard — per-slice metric
// series for every (sample, method) pair plus dataset aggregates, rendered
// as ASCII and exported as CSV + JSON.
#include <cstdio>

#include "exp_common.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  const std::string out = bench::ensure_out_dir(cfg);

  core::Session session = bench::run_comparison(cfg);
  session.publish_runtime_stats();
  bench::print_header("Figure 8", "segmentation performance dashboard");
  std::printf("%s", session.dashboard().render().c_str());

  session.dashboard().summary_table().write_csv(out + "/fig8_summary.csv");
  for (const char* ds : {"crystalline", "amorphous"}) {
    for (const char* m : {"otsu", "sam_only", "zenesis"}) {
      session.dashboard()
          .per_slice_table(ds, m)
          .write_csv(out + "/fig8_" + std::string(ds) + "_" + m + ".csv");
    }
  }
  session.dashboard().to_json().write(out + "/fig8_dashboard.json");
  std::printf("CSV/JSON exports written under %s/\n", out.c_str());
  return 0;
}
