#pragma once
// Shared experiment harness for the table/figure reproduction binaries.
//
// Every bench binary regenerates one artifact of the paper's evaluation
// section on the synthetic benchmark dataset (10 crystalline + 10
// amorphous slices). The harness runs the three methods (Otsu, SAM-only,
// Zenesis) and returns a populated dashboard; binaries print the relevant
// table and write CSV/PGM artifacts next to the binary under out/.

#include <string>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"

namespace zenesis::bench {

struct ExperimentConfig {
  std::int64_t image_size = 256;
  std::int64_t slices = 10;
  std::uint64_t seed = 20250704;
  std::string out_dir = "out";
};

/// Which methods to run (Zenesis is always run by run_comparison).
struct MethodSet {
  bool otsu = true;
  bool sam_only = true;
  bool zenesis = true;
};

/// Generates the dataset and evaluates the selected methods on both
/// sample types, returning the session whose dashboard holds all records.
core::Session run_comparison(const ExperimentConfig& cfg,
                             const MethodSet& methods = {});

/// Runs one sample type only (used by figure benches needing fewer runs).
void run_sample(core::Session& session, const fibsem::SyntheticVolume& vol,
                const MethodSet& methods);

/// Ensures cfg.out_dir exists and returns it.
std::string ensure_out_dir(const ExperimentConfig& cfg);

/// Prints a paper-style header for experiment `id` ("Table 1", ...).
void print_header(const std::string& id, const std::string& caption);

}  // namespace zenesis::bench
