// Performance microbenchmarks (the venue's HPC angle): tensor kernels,
// attention, feature extraction, model inference, end-to-end slice
// latency, thread-scaling of the parallel substrate, Mode-B volume
// throughput (serial vs. parallel vs. feature-cached), and serving-layer
// throughput (blocking submit vs. micro-batched SegmentService). The
// main() also emits out/BENCH_volume.json, out/BENCH_serve.json and
// out/BENCH_obs.json — one machine-readable record per run so successive
// PRs accumulate a perf trajectory. (out/BENCH_tiff.json moved to
// `tools/tiff_corpus --bench`, which measures against real files.)
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "exp_common.hpp"
#include "zenesis/cache/sharded_lru.hpp"
#include "zenesis/core/pipeline.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/io/report.hpp"
#include "zenesis/io/tiff.hpp"
#include "zenesis/io/tiff_stream.hpp"
#include "zenesis/models/auto_mask.hpp"
#include "zenesis/obs/trace.hpp"
#include "zenesis/parallel/parallel_for.hpp"
#include "zenesis/serve/service.hpp"
#include "zenesis/tensor/init.hpp"
#include "zenesis/tensor/kernels.hpp"
#include "zenesis/tensor/ops.hpp"

namespace {

using namespace zenesis;

image::ImageF32 bench_slice(std::int64_t size) {
  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kCrystalline;
  cfg.width = size;
  cfg.height = size;
  cfg.seed = 123;
  const auto s = fibsem::generate_slice(cfg, 0);
  return image::make_ai_ready(image::AnyImage(s.raw));
}

void BM_MatmulNt(benchmark::State& state) {
  const auto n = state.range(0);
  const tensor::Tensor a = tensor::xavier_uniform(n, n, 1, 1);
  const tensor::Tensor b = tensor::xavier_uniform(n, n, 1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(128)->Arg(256);

void BM_Attention(benchmark::State& state) {
  const auto l = state.range(0);
  const tensor::Tensor q = tensor::xavier_uniform(l, 64, 2, 1);
  const tensor::Tensor k = tensor::xavier_uniform(l, 64, 2, 2);
  const tensor::Tensor v = tensor::xavier_uniform(l, 64, 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::attention(q, k, v));
  }
}
BENCHMARK(BM_Attention)->Arg(256)->Arg(1024);

/// RAII guard: forces a kernel backend for one benchmark, restores the
/// previous selection on scope exit.
class ScopedBackend {
 public:
  explicit ScopedBackend(const std::string& name)
      : prev_(tensor::backend_name()) {
    tensor::set_backend(name);
  }
  ~ScopedBackend() { tensor::set_backend(prev_); }

 private:
  std::string prev_;
};

/// GEMM throughput per kernel backend. Registered dynamically (one
/// instance per available backend) in main; items processed = FLOPs so
/// the reported rate reads directly as FLOP/s.
void BM_Gemm(benchmark::State& state, const std::string& backend,
             const std::string& op) {
  const ScopedBackend scoped(backend);
  const auto n = state.range(0);
  const tensor::Tensor a = tensor::xavier_uniform(n, n, 1, 1);
  const tensor::Tensor b = tensor::xavier_uniform(n, n, 1, 2);
  const tensor::Tensor bias = tensor::zeros(n);
  for (auto _ : state) {
    if (op == "matmul") {
      benchmark::DoNotOptimize(tensor::matmul(a, b));
    } else if (op == "matmul_nt") {
      benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
    } else {
      benchmark::DoNotOptimize(tensor::linear(a, b, bias));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

/// Dynamic-int8 GEMM throughput per kernel backend: the full
/// linear_quantized path (per-row activation quantize + int8 GEMM +
/// fp32 requantize) against a pre-quantized weight panel. Items
/// processed = int8 MACs*2, so the rate reads as OP/s next to
/// BM_Gemm's FLOP/s.
void BM_GemmInt8(benchmark::State& state, const std::string& backend) {
  const ScopedBackend scoped(backend);
  const auto n = state.range(0);
  const tensor::Tensor a = tensor::xavier_uniform(n, n, 1, 1);
  const tensor::Tensor b = tensor::xavier_uniform(n, n, 1, 2);
  const tensor::quant::QuantizedTensor qb = tensor::quant::quantize_rows(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_nt_quantized(a, qb));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

/// Attention per kernel backend (scores GEMM + softmax + value GEMM).
void BM_AttentionBackend(benchmark::State& state, const std::string& backend) {
  const ScopedBackend scoped(backend);
  const auto l = state.range(0);
  const tensor::Tensor q = tensor::xavier_uniform(l, 64, 2, 1);
  const tensor::Tensor k = tensor::xavier_uniform(l, 64, 2, 2);
  const tensor::Tensor v = tensor::xavier_uniform(l, 64, 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::attention(q, k, v));
  }
}

/// One BM_Gemm + BM_AttentionBackend family per available backend; the
/// backend is part of the benchmark name so --benchmark_filter=avx2
/// works.
void register_kernel_benchmarks() {
  for (const auto& backend : tensor::available_backends()) {
    for (const char* op : {"matmul", "matmul_nt", "linear"}) {
      benchmark::RegisterBenchmark(
          ("BM_Gemm/" + backend + "/" + op).c_str(),
          [backend, op = std::string(op)](benchmark::State& s) {
            BM_Gemm(s, backend, op);
          })
          ->Arg(256)
          ->Arg(512);
    }
    if (tensor::backend_supports_int8(backend)) {
      benchmark::RegisterBenchmark(
          ("BM_GemmInt8/" + backend).c_str(),
          [backend](benchmark::State& s) { BM_GemmInt8(s, backend); })
          ->Arg(256)
          ->Arg(512);
    }
    benchmark::RegisterBenchmark(
        ("BM_Attention/" + backend).c_str(),
        [backend](benchmark::State& s) { BM_AttentionBackend(s, backend); })
        ->Arg(256)
        ->Arg(1024);
  }
}

void BM_Softmax(benchmark::State& state) {
  tensor::Tensor a = tensor::xavier_uniform(1024, 1024, 3, 1);
  for (auto _ : state) {
    tensor::Tensor copy = a;
    tensor::softmax_rows(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Softmax);

void BM_FeatureExtraction(benchmark::State& state) {
  const image::ImageF32 img = bench_slice(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::compute_features(img));
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(256)->Arg(512);

void BM_GroundingDetect(benchmark::State& state) {
  const image::ImageF32 img = bench_slice(256);
  const models::GroundingDetector dino;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dino.detect(img, "bright needle-like crystalline catalyst"));
  }
}
BENCHMARK(BM_GroundingDetect);

void BM_SamEncode(benchmark::State& state) {
  const image::ImageF32 img = bench_slice(256);
  const models::SamModel sam;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sam.encode(img));
  }
}
BENCHMARK(BM_SamEncode);

void BM_SamPredictBox(benchmark::State& state) {
  const image::ImageF32 img = bench_slice(256);
  const models::SamModel sam;
  const models::SamEncoded enc = sam.encode(img);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sam.predict_box(enc, {32, 32, 192, 128}));
  }
}
BENCHMARK(BM_SamPredictBox);

void BM_SamOnlyAutoMask(benchmark::State& state) {
  const image::ImageF32 img = bench_slice(256);
  const models::SamModel sam;
  const models::AutomaticMaskGenerator gen(sam);
  const models::SamEncoded enc = sam.encode(img);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(enc));
  }
}
BENCHMARK(BM_SamOnlyAutoMask);

void BM_EndToEndSlice(benchmark::State& state) {
  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kCrystalline;
  cfg.width = state.range(0);
  cfg.height = state.range(0);
  cfg.seed = 123;
  const auto s = fibsem::generate_slice(cfg, 0);
  const core::ZenesisPipeline pipe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipe.segment(
        image::AnyImage(s.raw), "bright needle-like crystalline catalyst"));
  }
}
BENCHMARK(BM_EndToEndSlice)->Arg(128)->Arg(256);

void BM_SliceGeneration(benchmark::State& state) {
  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kAmorphous;
  cfg.width = 256;
  cfg.height = 256;
  cfg.seed = 9;
  std::int64_t z = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fibsem::generate_slice(cfg, z++ % 10));
  }
}
BENCHMARK(BM_SliceGeneration);

fibsem::SyntheticVolume bench_volume() {
  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kCrystalline;
  cfg.width = 128;
  cfg.height = 128;
  cfg.depth = 8;
  cfg.seed = 2025;
  return fibsem::generate_volume(cfg);
}

core::PipelineConfig volume_config(std::size_t threads, bool cache) {
  core::PipelineConfig cfg;
  cfg.volume_threads = threads;
  cfg.feature_cache.enabled = cache;
  // Keep the mask cache out of the throughput baselines: with it on,
  // every rep after the first would be a near-free memoized replay and
  // the serial/parallel/feature-cached comparison would lose meaning.
  cfg.mask_cache.enabled = false;
  return cfg;
}

/// Mode-B volume throughput. Arg 0: worker threads (1 = serial path);
/// arg 1: feature cache on/off. Items processed = slices.
void BM_VolumeSegment(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const bool cache = state.range(1) != 0;
  const fibsem::SyntheticVolume vol = bench_volume();
  const core::ZenesisPipeline pipe(volume_config(threads, cache));
  const core::VolumeRequest request = core::VolumeRequest::view(
      vol.volume, "bright needle-like crystalline catalyst");
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipe.segment_volume(request));
  }
  state.SetItemsProcessed(state.iterations() * vol.depth());
  state.counters["cache_hit_rate"] = pipe.cache_stats().hit_rate();
}
BENCHMARK(BM_VolumeSegment)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({4, 0})
    ->Args({0, 0})   // global pool (one worker per hardware thread)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

// --- Cache-contention microbenchmark ---------------------------------

using ContentionCache = cache::ShardedLruCache<std::uint64_t>;
constexpr std::uint64_t kContentionKeySpace = 512;
constexpr int kContentionOpsPerThread = 4000;

cache::Key128 contention_key(std::uint64_t n) {
  return cache::Key128{n, n * 0x9e3779b97f4a7c15ull + 1};
}

std::unique_ptr<ContentionCache> make_contention_cache(std::size_t shards) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = shards;
  cfg.capacity = 2 * kContentionKeySpace;  // gets mostly hit
  cfg.byte_budget = std::size_t{1} << 20;
  auto cache = std::make_unique<ContentionCache>(cfg);
  for (std::uint64_t n = 0; n < kContentionKeySpace; ++n) {
    (void)cache->put(contention_key(n), std::make_shared<const std::uint64_t>(n),
                     64);
  }
  return cache;
}

/// One mixed pass: every thread does kContentionOpsPerThread ops, 7/8
/// gets and 1/8 puts. Every op mutates shard state (gets touch LRU
/// recency), so a single-shard cache serializes completely — this is the
/// single-global-mutex baseline the sharded design is measured against.
void contention_pass(ContentionCache& cache, std::size_t threads) {
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&cache, t] {
      std::mt19937_64 rng(0xbe9c4 + t);
      for (int i = 0; i < kContentionOpsPerThread; ++i) {
        const std::uint64_t n = rng() % kContentionKeySpace;
        if (rng() % 8 == 0) {
          (void)cache.put(contention_key(n),
                          std::make_shared<const std::uint64_t>(n), 64);
        } else {
          benchmark::DoNotOptimize(cache.get(contention_key(n)));
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

/// Lock-contention scaling. Arg 0: shard count (1 = the single-mutex
/// baseline); arg 1: threads. Items processed = cache operations.
void BM_CacheContention(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto cache = make_contention_cache(shards);
  for (auto _ : state) {
    contention_pass(*cache, threads);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(threads) *
                          kContentionOpsPerThread);
}
BENCHMARK(BM_CacheContention)
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({1, 16})
    ->Args({1, 64})
    ->Args({64, 1})
    ->Args({64, 4})
    ->Args({64, 16})
    ->Args({64, 64})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ParallelForScaling(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  parallel::ThreadPool pool(threads);
  std::vector<double> data(1 << 20, 1.0);
  for (auto _ : state) {
    parallel::parallel_for(0, static_cast<std::int64_t>(data.size()),
                           [&](std::int64_t i) {
                             data[static_cast<std::size_t>(i)] =
                                 data[static_cast<std::size_t>(i)] * 1.0000001 + 0.5;
                           },
                           pool);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ParallelForScaling)->Arg(1)->Arg(2)->Arg(4);

/// Repeated-slice request traffic (cache-hot serving): `kDistinct` unique
/// slices cycled `kRequests` times — the request-per-micrograph pattern
/// the serving layer amortizes via the FeatureCache.
constexpr int kServeRequests = 24;
constexpr int kServeDistinct = 4;

std::vector<image::AnyImage> serve_traffic() {
  std::vector<image::AnyImage> distinct;
  for (int i = 0; i < kServeDistinct; ++i) {
    fibsem::SynthConfig cfg;
    cfg.type = fibsem::SampleType::kCrystalline;
    cfg.width = 128;
    cfg.height = 128;
    cfg.seed = 5000 + static_cast<std::uint64_t>(i);
    distinct.emplace_back(fibsem::generate_slice(cfg, 0).raw);
  }
  std::vector<image::AnyImage> traffic;
  traffic.reserve(kServeRequests);
  for (int i = 0; i < kServeRequests; ++i) {
    traffic.push_back(distinct[static_cast<std::size_t>(i % kServeDistinct)]);
  }
  return traffic;
}

constexpr const char* kServePrompt = "bright needle-like crystalline catalyst";

/// Serving throughput on repeated-slice traffic. Arg 0: mode — 0 = serial
/// blocking pipeline calls (the pre-serve baseline), 1 = micro-batched
/// SegmentService. Items processed = requests.
void BM_ServeThroughput(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const std::vector<image::AnyImage> traffic = serve_traffic();
  if (batched) {
    serve::ServiceConfig cfg;
    cfg.queue_capacity = kServeRequests * 2;
    cfg.max_batch = 8;
    serve::SegmentService service(cfg);
    for (auto _ : state) {
      std::vector<std::future<serve::Response>> futures;
      futures.reserve(traffic.size());
      for (const auto& img : traffic) {
        futures.push_back(
            service.submit(serve::Request::slice(img, kServePrompt)));
      }
      for (auto& f : futures) benchmark::DoNotOptimize(f.get());
    }
    state.counters["cache_hit_rate"] = service.pipeline().cache_stats().hit_rate();
    state.counters["mean_batch"] = service.stats().batch_size.mean();
  } else {
    const core::ZenesisPipeline pipe(volume_config(1, false));
    for (auto _ : state) {
      for (const auto& img : traffic) {
        benchmark::DoNotOptimize(pipe.segment(img, kServePrompt));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kServeRequests);
}
BENCHMARK(BM_ServeThroughput)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Hot-path cost of one obs::Span. Arg 0: tracing off (the shipping
/// default — must be a relaxed load + branch) vs on (one seqlock ring
/// write). Items processed = spans.
void BM_TraceOverhead(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  const bool was = obs::enabled();
  obs::set_enabled(on);
  obs::TraceCollector::global().clear();
  for (auto _ : state) {
    obs::Span span("bench.trace_overhead");
    benchmark::DoNotOptimize(&span);
  }
  obs::set_enabled(was);
  obs::TraceCollector::global().clear();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1);

/// A 4-page 256x256 u16 stack of synthetic FIB-SEM slices — realistic
/// texture so PackBits sees real run-length structure, not ramps.
io::TiffStack tiff_bench_stack() {
  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kCrystalline;
  cfg.width = 256;
  cfg.height = 256;
  cfg.seed = 31337;
  io::TiffStack stack;
  for (std::int64_t z = 0; z < 4; ++z) {
    stack.pages.emplace_back(fibsem::generate_slice(cfg, z).raw);
  }
  return stack;
}

io::TiffWriteOptions tiff_variant_options(int variant) {
  io::TiffWriteOptions opt;
  switch (variant) {
    case 1:
      opt.compression = io::TiffCompression::kPackBits;
      break;
    case 2:
      opt.layout = io::TiffLayout::kTiles;
      break;
    case 3:
      opt.format = io::TiffFormat::kBigTiff;
      opt.layout = io::TiffLayout::kTiles;
      opt.compression = io::TiffCompression::kPackBits;
      break;
    case 4:
      opt.layout = io::TiffLayout::kTiles;
      opt.compression = io::TiffCompression::kLzw;
      opt.predictor = 2;
      break;
    case 5:
      opt.layout = io::TiffLayout::kTiles;
      opt.compression = io::TiffCompression::kDeflate;
      opt.predictor = 2;
      break;
    default:
      break;  // classic LE, single strip, uncompressed
  }
  return opt;
}

const char* tiff_variant_name(int variant) {
  switch (variant) {
    case 1: return "classic_packbits";
    case 2: return "classic_tiles";
    case 3: return "bigtiff_tiles_packbits";
    case 4: return "classic_tiles_lzw_pred";
    case 5: return "classic_tiles_deflate_pred";
    default: return "classic_strips";
  }
}

/// Materializing-decoder throughput over the format variants. Items
/// processed = decoded pages; bytes processed = decoded pixel bytes.
void BM_TiffDecode(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  const io::TiffStack stack = tiff_bench_stack();
  const auto bytes = io::write_tiff_bytes(stack, tiff_variant_options(variant));
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::read_tiff_bytes(bytes));
  }
  state.SetLabel(tiff_variant_name(variant));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stack.pages.size()));
  state.SetBytesProcessed(state.iterations() * 4 * 256 * 256 * 2);
}
BENCHMARK(BM_TiffDecode)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

/// Streaming-reader throughput: parse once, decode pages on demand —
/// the per-slice cost the Mode-B streaming path pays.
void BM_TiffStream(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  const auto bytes =
      io::write_tiff_bytes(tiff_bench_stack(), tiff_variant_options(variant));
  const auto reader = io::TiffVolumeReader::open(bytes);
  std::int64_t page = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reader.read_page(page));
    page = (page + 1) % reader.pages();
  }
  state.SetLabel(tiff_variant_name(variant));
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * 256 * 256 * 2);
}
BENCHMARK(BM_TiffStream)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

/// Times one segment_volume pass in seconds (best of `reps`).
double time_volume_pass(const core::ZenesisPipeline& pipe,
                        const image::VolumeU16& volume, int reps) {
  const core::VolumeRequest request = core::VolumeRequest::view(
      volume, "bright needle-like crystalline catalyst");
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(pipe.segment_volume(request));
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

/// Standalone serial-vs-parallel-vs-cached volume measurement, persisted
/// as out/BENCH_volume.json so future PRs have a perf trajectory to
/// compare against. Runs regardless of --benchmark_filter.
void write_volume_record() {
  const fibsem::SyntheticVolume vol = bench_volume();
  const auto hw = static_cast<std::size_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  constexpr int kReps = 3;

  const core::ZenesisPipeline serial(volume_config(1, false));
  const double t_serial = time_volume_pass(serial, vol.volume, kReps);

  const core::ZenesisPipeline parallel(volume_config(hw, false));
  const double t_parallel = time_volume_pass(parallel, vol.volume, kReps);

  const core::ZenesisPipeline cached(volume_config(hw, true));
  (void)time_volume_pass(cached, vol.volume, 1);  // cold pass fills the cache
  const double t_cached = time_volume_pass(cached, vol.volume, kReps);
  const models::FeatureCacheStats cache_stats = cached.cache_stats();

  // Full memoization: default config (mask cache on), warm second pass.
  core::PipelineConfig mask_cfg;
  mask_cfg.volume_threads = hw;
  const core::ZenesisPipeline memoized(mask_cfg);
  (void)time_volume_pass(memoized, vol.volume, 1);  // cold pass fills caches
  const double t_mask_warm = time_volume_pass(memoized, vol.volume, kReps);

  const double slices = static_cast<double>(vol.depth());
  io::JsonObject rec;
  rec.set("bench", "volume_mode_b");
  rec.set("width", static_cast<std::int64_t>(128));
  rec.set("height", static_cast<std::int64_t>(128));
  rec.set("depth", vol.depth());
  rec.set("hardware_threads", static_cast<std::int64_t>(hw));
  rec.set("serial_slices_per_sec", slices / t_serial);
  rec.set("parallel_slices_per_sec", slices / t_parallel);
  rec.set("parallel_speedup", t_serial / t_parallel);
  rec.set("cached_warm_slices_per_sec", slices / t_cached);
  rec.set("cached_warm_speedup", t_serial / t_cached);
  rec.set("cache_hits", static_cast<std::int64_t>(cache_stats.hits));
  rec.set("cache_misses", static_cast<std::int64_t>(cache_stats.misses));
  rec.set("cache_hit_rate", cache_stats.hit_rate());
  rec.set("mask_warm_slices_per_sec", slices / t_mask_warm);
  rec.set("mask_warm_speedup", t_serial / t_mask_warm);

  bench::ExperimentConfig out_cfg;
  const std::string out = bench::ensure_out_dir(out_cfg);
  const std::string path = out + "/BENCH_volume.json";
  rec.write(path);
  std::printf("\n%s\n", rec.to_string(2).c_str());
  std::printf("volume perf record written to %s\n", path.c_str());
}

/// Standalone serial-submit vs micro-batched-service measurement on
/// cache-hot repeated-slice traffic, persisted as out/BENCH_serve.json.
/// Runs regardless of --benchmark_filter.
void write_serve_record() {
  const std::vector<image::AnyImage> traffic = serve_traffic();
  constexpr int kReps = 3;

  const auto time_pass = [&](const std::function<void()>& pass) {
    double best = 1e30;
    for (int r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      pass();
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      best = std::min(best, dt.count());
    }
    return best;
  };

  const core::ZenesisPipeline blocking(volume_config(1, false));
  const double t_serial = time_pass([&] {
    for (const auto& img : traffic) {
      benchmark::DoNotOptimize(blocking.segment(img, kServePrompt));
    }
  });

  serve::ServiceConfig scfg;
  scfg.queue_capacity = kServeRequests * 2;
  scfg.max_batch = 8;
  serve::SegmentService service(scfg);
  const double t_serve = time_pass([&] {
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(traffic.size());
    for (const auto& img : traffic) {
      futures.push_back(
          service.submit(serve::Request::slice(img, kServePrompt)));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  });
  const serve::ServiceStats stats = service.stats();

  const double requests = static_cast<double>(kServeRequests);
  io::JsonObject rec;
  rec.set("bench", "serve_throughput");
  rec.set("requests", static_cast<std::int64_t>(kServeRequests));
  rec.set("distinct_slices", static_cast<std::int64_t>(kServeDistinct));
  rec.set("serial_requests_per_sec", requests / t_serial);
  rec.set("serve_requests_per_sec", requests / t_serve);
  rec.set("serve_speedup", t_serial / t_serve);
  rec.set("mean_batch_size", stats.batch_size.mean());
  rec.set("queue_us_p95", stats.queue_us.percentile(95.0));
  rec.set("decode_us_mean", stats.decode_us.mean());
  rec.set("decode_us_p95", stats.decode_us.percentile(95.0));
  rec.set("total_us_p95", stats.total_us.percentile(95.0));
  rec.set("cache_hit_rate", service.pipeline().cache_stats().hit_rate());
  rec.set("kernel_backend", stats.kernel_backend);

  bench::ExperimentConfig out_cfg;
  const std::string out = bench::ensure_out_dir(out_cfg);
  const std::string path = out + "/BENCH_serve.json";
  rec.write(path);
  std::printf("\n%s\n", rec.to_string(2).c_str());
  std::printf("serve perf record written to %s\n", path.c_str());
}

/// Tracing-overhead record for the observability acceptance criterion,
/// persisted as out/BENCH_obs.json. The headline number —
/// tracing_disabled_regression_pct, which must stay < 2 — is computed
/// from the deterministic quantities: the tight-loop per-span cost with
/// tracing off (a relaxed load + branch) times the spans one serve
/// request emits, relative to that request's wall time. The end-to-end
/// off-vs-on serve delta is also measured and recorded, but on small or
/// loaded machines it is noise-dominated (single-digit req/sec), so it
/// is reference data, not the criterion. Runs regardless of
/// --benchmark_filter.
void write_obs_record() {
  const bool was_enabled = obs::enabled();
  const std::vector<image::AnyImage> traffic = serve_traffic();
  constexpr int kReps = 3;

  const auto time_serve_pass = [&] {
    serve::ServiceConfig scfg;
    scfg.queue_capacity = kServeRequests * 2;
    scfg.max_batch = 8;
    serve::SegmentService service(scfg);
    double best = 1e30;
    for (int r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<std::future<serve::Response>> futures;
      futures.reserve(traffic.size());
      for (const auto& img : traffic) {
        futures.push_back(
            service.submit(serve::Request::slice(img, kServePrompt)));
      }
      for (auto& f : futures) benchmark::DoNotOptimize(f.get());
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      best = std::min(best, dt.count());
    }
    return best;
  };

  // Raw per-span cost, both modes.
  const auto time_span_ns = [](int iters) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      obs::Span span("bench.obs_record");
      benchmark::DoNotOptimize(&span);
    }
    const std::chrono::duration<double, std::nano> dt =
        std::chrono::steady_clock::now() - t0;
    return dt.count() / iters;
  };
  obs::set_enabled(false);
  const double span_off_ns = time_span_ns(1 << 20);
  obs::set_enabled(true);
  const double span_on_ns = time_span_ns(1 << 18);

  obs::set_enabled(false);
  const double t_off = time_serve_pass();

  obs::set_enabled(true);
  obs::TraceCollector::global().clear();
  const double t_on = time_serve_pass();
  std::uint64_t spans_recorded = obs::TraceCollector::global().overwritten();
  for (const auto& [stage, st] : obs::TraceCollector::global().aggregate()) {
    spans_recorded += st.count;
  }
  obs::set_enabled(was_enabled);
  obs::TraceCollector::global().clear();

  const double requests = static_cast<double>(kServeRequests);
  // The traced pass emits this many spans per request (submit, queue,
  // batch share, readiness, encode share, decode, pipeline internals…).
  // kReps passes ran while tracing was on; spans_recorded covers all of
  // them, so normalize by kReps too.
  const double spans_per_request =
      static_cast<double>(spans_recorded) / (requests * kReps);
  const double request_ns = t_off / requests * 1e9;

  io::JsonObject rec;
  rec.set("bench", "obs_trace_overhead");
  rec.set("requests", static_cast<std::int64_t>(kServeRequests));
  rec.set("span_disabled_ns", span_off_ns);
  rec.set("span_enabled_ns", span_on_ns);
  rec.set("spans_per_request", spans_per_request);
  // Acceptance: < 2. Cost the disabled instrumentation adds to one serve
  // request — spans_per_request dormant Span constructions — as a
  // percentage of the request's measured wall time.
  rec.set("tracing_disabled_regression_pct",
          spans_per_request * span_off_ns / request_ns * 100.0);
  rec.set("tracing_enabled_overhead_pct",
          spans_per_request * span_on_ns / request_ns * 100.0);
  // Reference: end-to-end measurement (noise-dominated on small boxes).
  rec.set("serve_req_per_sec_tracing_off", requests / t_off);
  rec.set("serve_req_per_sec_tracing_on", requests / t_on);
  rec.set("serve_measured_delta_pct", (t_on - t_off) / t_off * 100.0);
  rec.set("spans_recorded_enabled_passes",
          static_cast<std::int64_t>(spans_recorded));

  bench::ExperimentConfig out_cfg;
  const std::string out = bench::ensure_out_dir(out_cfg);
  const std::string path = out + "/BENCH_obs.json";
  rec.write(path);
  std::printf("\n%s\n", rec.to_string(2).c_str());
  std::printf("obs perf record written to %s\n", path.c_str());
}

/// Standalone single-mutex vs sharded cache-contention measurement,
/// persisted as out/BENCH_cache.json so the lock-striping win has a
/// tracked trajectory. For each thread count, both topologies run the
/// identical mixed get/put workload (best of kReps); the headline
/// `speedup_16t` is sharded ops/sec over single-shard ops/sec at 16
/// threads. Runs regardless of --benchmark_filter.
void write_cache_record() {
  constexpr int kReps = 3;
  constexpr std::size_t kShardedShards = 64;
  const std::size_t thread_counts[] = {1, 4, 16, 64};

  const auto ops_per_sec = [&](std::size_t shards, std::size_t threads) {
    const auto cache = make_contention_cache(shards);
    double best = 1e30;
    for (int r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      contention_pass(*cache, threads);
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      best = std::min(best, dt.count());
    }
    return static_cast<double>(threads) * kContentionOpsPerThread / best;
  };

  io::JsonObject rec;
  rec.set("bench", "cache_contention");
  rec.set("key_space", static_cast<std::int64_t>(kContentionKeySpace));
  rec.set("ops_per_thread", static_cast<std::int64_t>(kContentionOpsPerThread));
  rec.set("sharded_shards", static_cast<std::int64_t>(kShardedShards));
  rec.set("hardware_threads",
          static_cast<std::int64_t>(
              std::max(1u, std::thread::hardware_concurrency())));
  double speedup_16t = 0.0;
  for (const std::size_t threads : thread_counts) {
    const double single = ops_per_sec(1, threads);
    const double sharded = ops_per_sec(kShardedShards, threads);
    const std::string suffix = std::to_string(threads) + "t";
    rec.set("single_mutex_ops_per_sec_" + suffix, single);
    rec.set("sharded_ops_per_sec_" + suffix, sharded);
    rec.set("speedup_" + suffix, sharded / single);
    if (threads == 16) speedup_16t = sharded / single;
  }
  rec.set("speedup_16t", speedup_16t);

  bench::ExperimentConfig out_cfg;
  const std::string out = bench::ensure_out_dir(out_cfg);
  const std::string path = out + "/BENCH_cache.json";
  rec.write(path);
  std::printf("\n%s\n", rec.to_string(2).c_str());
  std::printf("cache perf record written to %s\n", path.c_str());
}

// out/BENCH_tiff.json is owned by `tools/tiff_corpus --bench` now: the
// per-codec naive-vs-streaming comparison needs real files, byte
// sources and RSS probes, which live more naturally next to the corpus
// tool than inside this in-memory microbenchmark.

/// Standalone per-backend GEMM measurement, persisted as
/// out/BENCH_gemm.json: GFLOP/s for matmul / matmul_nt / linear at 256,
/// 512 and 1024 under every available backend, plus the speedup of each
/// fast backend over the scalar reference, plus int8 GOP/s of the
/// dynamic-quantization matmul_nt path and its ratio over the same
/// backend's fp32 matmul_nt (the quantization acceptance headline).
/// Runs regardless of --benchmark_filter.
void write_gemm_record() {
  const std::vector<std::int64_t> sizes = {256, 512, 1024};
  const std::vector<std::string> ops = {"matmul", "matmul_nt", "linear"};
  constexpr int kReps = 2;

  const auto gflops = [&](const std::string& op, std::int64_t n) {
    const tensor::Tensor a = tensor::xavier_uniform(n, n, 1, 1);
    const tensor::Tensor b = tensor::xavier_uniform(n, n, 1, 2);
    const tensor::Tensor bias = tensor::zeros(n);
    const auto run = [&] {
      if (op == "matmul") {
        benchmark::DoNotOptimize(tensor::matmul(a, b));
      } else if (op == "matmul_nt") {
        benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
      } else {
        benchmark::DoNotOptimize(tensor::linear(a, b, bias));
      }
    };
    run();  // warm-up
    double best = 1e30;
    for (int r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      run();
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      best = std::min(best, dt.count());
    }
    return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
           static_cast<double>(n) / best / 1e9;
  };

  // Int8 GOP/s of the full dynamic path (activation quantize + int8
  // GEMM + requantize) against a pre-quantized panel — the exact shape
  // ops::linear_quantized runs in the encoder.
  const auto gops_int8 = [&](std::int64_t n) {
    const tensor::Tensor a = tensor::xavier_uniform(n, n, 1, 1);
    const tensor::Tensor b = tensor::xavier_uniform(n, n, 1, 2);
    const tensor::quant::QuantizedTensor qb = tensor::quant::quantize_rows(b);
    const auto run = [&] {
      benchmark::DoNotOptimize(tensor::matmul_nt_quantized(a, qb));
    };
    run();  // warm-up
    double best = 1e30;
    for (int r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      run();
      const std::chrono::duration<double> dt =
          std::chrono::steady_clock::now() - t0;
      best = std::min(best, dt.count());
    }
    return 2.0 * static_cast<double>(n) * static_cast<double>(n) *
           static_cast<double>(n) / best / 1e9;
  };

  const std::string active = tensor::backend_name();
  io::JsonObject rec;
  rec.set("bench", "gemm_kernels");
  rec.set("cpu_features", tensor::cpu_feature_string());
  rec.set("hardware_threads",
          static_cast<std::int64_t>(
              std::max(1u, std::thread::hardware_concurrency())));
  rec.set("default_backend", active);

  std::map<std::string, double> results;  // "<backend>_<op>_<n>" → GFLOP/s
  std::string backends_csv;
  for (const auto& backend : tensor::available_backends()) {
    if (!tensor::set_backend(backend)) continue;
    if (!backends_csv.empty()) backends_csv += ",";
    backends_csv += backend;
    for (const auto& op : ops) {
      for (const std::int64_t n : sizes) {
        const std::string key =
            backend + "_" + op + "_" + std::to_string(n);
        const double g = gflops(op, n);
        results[key] = g;
        rec.set(key + "_gflops", g);
      }
    }
    if (tensor::backend_supports_int8(backend)) {
      for (const std::int64_t n : sizes) {
        const std::string key =
            backend + "_matmul_nt_i8_" + std::to_string(n);
        const double g = gops_int8(n);
        results[key] = g;
        rec.set(key + "_gops", g);
      }
    }
  }
  tensor::set_backend(active);
  rec.set("backends", backends_csv);

  // Acceptance headline: fast-backend speedup over the scalar reference.
  for (const auto& backend : tensor::available_backends()) {
    if (backend == "scalar") continue;
    for (const auto& op : ops) {
      for (const std::int64_t n : sizes) {
        const std::string suffix = op + "_" + std::to_string(n);
        rec.set(backend + "_vs_scalar_" + suffix,
                results[backend + "_" + suffix] /
                    results["scalar_" + suffix]);
      }
    }
  }

  // Quantization headline: int8 matmul_nt over the SAME backend's fp32
  // matmul_nt (acceptance: >= 1.8x on avx2 at every size).
  for (const auto& backend : tensor::available_backends()) {
    if (!tensor::backend_supports_int8(backend)) continue;
    for (const std::int64_t n : sizes) {
      const std::string sz = std::to_string(n);
      rec.set(backend + "_int8_vs_fp32_matmul_nt_" + sz,
              results[backend + "_matmul_nt_i8_" + sz] /
                  results[backend + "_matmul_nt_" + sz]);
    }
  }

  bench::ExperimentConfig out_cfg;
  const std::string out = bench::ensure_out_dir(out_cfg);
  const std::string path = out + "/BENCH_gemm.json";
  rec.write(path);
  std::printf("\n%s\n", rec.to_string(2).c_str());
  std::printf("gemm perf record written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  register_kernel_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_gemm_record();
  write_volume_record();
  write_serve_record();
  write_obs_record();
  write_cache_record();
  return 0;
}
