// Performance microbenchmarks (the venue's HPC angle): tensor kernels,
// attention, feature extraction, model inference, and end-to-end slice
// latency, plus thread-scaling of the parallel substrate.
#include <benchmark/benchmark.h>

#include "zenesis/core/pipeline.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/models/auto_mask.hpp"
#include "zenesis/parallel/parallel_for.hpp"
#include "zenesis/tensor/init.hpp"
#include "zenesis/tensor/ops.hpp"

namespace {

using namespace zenesis;

image::ImageF32 bench_slice(std::int64_t size) {
  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kCrystalline;
  cfg.width = size;
  cfg.height = size;
  cfg.seed = 123;
  const auto s = fibsem::generate_slice(cfg, 0);
  return image::make_ai_ready(image::AnyImage(s.raw));
}

void BM_MatmulNt(benchmark::State& state) {
  const auto n = state.range(0);
  const tensor::Tensor a = tensor::xavier_uniform(n, n, 1, 1);
  const tensor::Tensor b = tensor::xavier_uniform(n, n, 1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulNt)->Arg(64)->Arg(128)->Arg(256);

void BM_Attention(benchmark::State& state) {
  const auto l = state.range(0);
  const tensor::Tensor q = tensor::xavier_uniform(l, 64, 2, 1);
  const tensor::Tensor k = tensor::xavier_uniform(l, 64, 2, 2);
  const tensor::Tensor v = tensor::xavier_uniform(l, 64, 2, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::attention(q, k, v));
  }
}
BENCHMARK(BM_Attention)->Arg(256)->Arg(1024);

void BM_Softmax(benchmark::State& state) {
  tensor::Tensor a = tensor::xavier_uniform(1024, 1024, 3, 1);
  for (auto _ : state) {
    tensor::Tensor copy = a;
    tensor::softmax_rows(copy);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_Softmax);

void BM_FeatureExtraction(benchmark::State& state) {
  const image::ImageF32 img = bench_slice(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(models::compute_features(img));
  }
}
BENCHMARK(BM_FeatureExtraction)->Arg(256)->Arg(512);

void BM_GroundingDetect(benchmark::State& state) {
  const image::ImageF32 img = bench_slice(256);
  const models::GroundingDetector dino;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dino.detect(img, "bright needle-like crystalline catalyst"));
  }
}
BENCHMARK(BM_GroundingDetect);

void BM_SamEncode(benchmark::State& state) {
  const image::ImageF32 img = bench_slice(256);
  const models::SamModel sam;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sam.encode(img));
  }
}
BENCHMARK(BM_SamEncode);

void BM_SamPredictBox(benchmark::State& state) {
  const image::ImageF32 img = bench_slice(256);
  const models::SamModel sam;
  const models::SamEncoded enc = sam.encode(img);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sam.predict_box(enc, {32, 32, 192, 128}));
  }
}
BENCHMARK(BM_SamPredictBox);

void BM_SamOnlyAutoMask(benchmark::State& state) {
  const image::ImageF32 img = bench_slice(256);
  const models::SamModel sam;
  const models::AutomaticMaskGenerator gen(sam);
  const models::SamEncoded enc = sam.encode(img);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate(enc));
  }
}
BENCHMARK(BM_SamOnlyAutoMask);

void BM_EndToEndSlice(benchmark::State& state) {
  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kCrystalline;
  cfg.width = state.range(0);
  cfg.height = state.range(0);
  cfg.seed = 123;
  const auto s = fibsem::generate_slice(cfg, 0);
  const core::ZenesisPipeline pipe;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipe.segment(
        image::AnyImage(s.raw), "bright needle-like crystalline catalyst"));
  }
}
BENCHMARK(BM_EndToEndSlice)->Arg(128)->Arg(256);

void BM_SliceGeneration(benchmark::State& state) {
  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kAmorphous;
  cfg.width = 256;
  cfg.height = 256;
  cfg.seed = 9;
  std::int64_t z = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fibsem::generate_slice(cfg, z++ % 10));
  }
}
BENCHMARK(BM_SliceGeneration);

void BM_ParallelForScaling(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  parallel::ThreadPool pool(threads);
  std::vector<double> data(1 << 20, 1.0);
  for (auto _ : state) {
    parallel::parallel_for(0, static_cast<std::int64_t>(data.size()),
                           [&](std::int64_t i) {
                             data[static_cast<std::size_t>(i)] =
                                 data[static_cast<std::size_t>(i)] * 1.0000001 + 0.5;
                           },
                           pool);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ParallelForScaling)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
