// Fig. 1 reproduction: "Transforming non-AI-ready scientific data".
// Pushes the same scene through 8/16/32-bit raw representations and the
// readiness layer, reporting the dynamic-range statistics before/after
// and writing before/after previews.
#include <cstdio>

#include "exp_common.hpp"
#include "zenesis/image/normalize.hpp"
#include "zenesis/io/pnm.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  const std::string out = bench::ensure_out_dir(cfg);

  fibsem::SynthConfig scfg;
  scfg.type = fibsem::SampleType::kCrystalline;
  scfg.width = cfg.image_size;
  scfg.height = cfg.image_size;
  scfg.seed = cfg.seed;
  const fibsem::SyntheticSlice slice = fibsem::generate_slice(scfg, 0);

  bench::print_header("Figure 1", "raw -> AI-ready transform across bit depths");
  io::Table t({"bit_depth", "raw_min", "raw_max", "raw_used_range",
               "ready_min", "ready_max", "ready_used_range"});

  // The instrument image is 16-bit; derive 8- and 32-bit variants the way
  // acquisition software would (pure bit-shift rescale, preserving the
  // same narrow used range).
  const image::ImageF32 as_float = image::to_float(image::AnyImage(slice.raw));
  for (int bits : {8, 16, 32}) {
    const image::AnyImage raw = image::quantize(as_float, bits);
    const image::ImageF32 raw_f = image::to_float(raw);
    const image::Stats rs = image::compute_stats(raw_f);
    const image::ImageF32 ready = image::make_ai_ready(raw);
    const image::Stats ns = image::compute_stats(ready);
    t.add_row({static_cast<std::int64_t>(bits), static_cast<double>(rs.min),
               static_cast<double>(rs.max), static_cast<double>(rs.max - rs.min),
               static_cast<double>(ns.min), static_cast<double>(ns.max),
               static_cast<double>(ns.max - ns.min)});
    if (bits == 16) {
      io::write_pgm_f32(out + "/fig1_raw_16bit.pgm", raw_f);
      io::write_pgm_f32(out + "/fig1_ai_ready.pgm", ready);
    }
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf("Raw instrument data occupies a sliver of its container range;"
              " the readiness layer restores full [0,1] contrast.\n");
  std::printf("Previews written to %s/fig1_*.pgm\n", out.c_str());
  t.write_csv(out + "/fig1_data_readiness.csv");
  return 0;
}
