// Ablation A1: temporal-refinement window size and replacement factor.
// Sweeps the two knobs of the Fig. 7 heuristic against injected failures
// and reports repair rate and false-replacement rate.
#include <cstdio>

#include "exp_common.hpp"
#include "zenesis/parallel/rng.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  const std::string out = bench::ensure_out_dir(cfg);
  bench::print_header("Ablation A1", "heuristic window / size-factor sweep");

  // A long synthetic box track with slow drift plus injected failures.
  constexpr int kSlices = 60;
  parallel::Rng rng(cfg.seed, 1);
  std::vector<image::Box> clean;
  std::vector<bool> corrupted_at(kSlices, false);
  for (int z = 0; z < kSlices; ++z) {
    clean.push_back({40 + z / 4, 50 + z / 6,
                     120 + static_cast<std::int64_t>(rng.normal(0.0, 3.0)),
                     90 + static_cast<std::int64_t>(rng.normal(0.0, 3.0))});
  }
  std::vector<image::Box> corrupted = clean;
  for (int z = 8; z < kSlices; z += 9) {
    corrupted[static_cast<std::size_t>(z)] =
        (z % 2 == 0) ? image::Box{0, 0, 256, 256} : image::Box{};
    corrupted_at[static_cast<std::size_t>(z)] = true;
  }

  io::Table t({"window", "size_factor", "repaired", "missed", "false_repl",
               "mean_abs_w_err"});
  for (int window : {1, 2, 3, 5, 7}) {
    for (double factor : {1.2, 1.6, 2.0, 2.5, 3.0}) {
      volume3d::HeuristicConfig h;
      h.window = window;
      h.size_factor = factor;
      const volume3d::RefineOutcome res = volume3d::refine_box_sequence(corrupted, h);
      std::int64_t repaired = 0, missed = 0, false_repl = 0;
      double w_err = 0.0;
      for (int z = 0; z < kSlices; ++z) {
        const auto zi = static_cast<std::size_t>(z);
        if (corrupted_at[zi]) {
          repaired += res.replaced[zi];
          missed += !res.replaced[zi];
        } else {
          false_repl += res.replaced[zi];
        }
        w_err += std::abs(static_cast<double>(res.boxes[zi].w - clean[zi].w));
      }
      t.add_row({static_cast<std::int64_t>(window), factor, repaired, missed,
                 false_repl, w_err / kSlices});
    }
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf("Small factors repair every failure but start replacing "
              "legitimate drift; the paper's regime (window 3, factor ~1.6) "
              "balances both.\n");
  t.write_csv(out + "/ablation_refine.csv");
  return 0;
}
