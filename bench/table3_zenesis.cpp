// Table 3 reproduction: Zenesis (DINO-grounded SAM with temporal
// refinement) — average performance metrics.
// Paper reference: crystalline 0.987 / 0.857 / 0.923,
//                  amorphous   0.947 / 0.858 / 0.923.
#include <cstdio>

#include "exp_common.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  bench::MethodSet methods;
  methods.otsu = false;
  methods.sam_only = false;
  core::Session session = bench::run_comparison(cfg, methods);

  bench::print_header("Table 3", "Zenesis: Average Performance Metrics");
  const io::Table t = session.dashboard().method_table("zenesis");
  std::printf("%s", t.to_ascii().c_str());
  std::printf("Paper reports: crystalline 0.987/0.857/0.923, "
              "amorphous 0.947/0.858/0.923 (acc/IoU/Dice)\n");
  t.write_csv(bench::ensure_out_dir(cfg) + "/table3_zenesis.csv");
  return 0;
}
