// Ablation A5: noise crossover. Sweeps the sensor read-noise level and
// reports IoU for all three methods on one slice per sample type —
// locating where the classical baseline breaks down while the grounded
// pipeline's smoothed, locally-adaptive decoder keeps working (the
// quantitative backbone of the paper's "non-AI-ready data" argument).
#include <cstdio>

#include "exp_common.hpp"
#include "zenesis/image/roi.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  const std::string out = bench::ensure_out_dir(cfg);
  bench::print_header("Ablation A5", "read-noise sweep / method crossover");

  core::Session session;
  io::Table t({"sample", "noise_sigma", "otsu_iou", "sam_only_iou",
               "zenesis_iou"});
  for (const auto type :
       {fibsem::SampleType::kCrystalline, fibsem::SampleType::kAmorphous}) {
    for (const float noise : {0.01f, 0.03f, 0.05f, 0.08f, 0.12f}) {
      fibsem::SynthConfig scfg;
      scfg.type = type;
      scfg.width = cfg.image_size;
      scfg.height = cfg.image_size;
      scfg.seed = cfg.seed;
      scfg.gaussian_noise = noise;
      const fibsem::SyntheticSlice slice = fibsem::generate_slice(scfg, 3);
      const image::ImageF32 ready =
          session.pipeline().make_ready(image::AnyImage(slice.raw));

      const double otsu = eval::compute_metrics(core::baseline_otsu(ready),
                                                slice.ground_truth)
                              .iou;
      const double sam =
          eval::compute_metrics(
              core::baseline_sam_only(session.pipeline().sam(), ready),
              slice.ground_truth)
              .iou;
      const double zen =
          eval::compute_metrics(
              session.mode_a_segment(image::AnyImage(slice.raw),
                                     fibsem::default_prompt(type))
                  .mask,
              slice.ground_truth)
              .iou;
      t.add_row({std::string(fibsem::sample_type_name(type)),
                 static_cast<double>(noise), otsu, sam, zen});
    }
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf("The grounded pipeline degrades gracefully with noise while "
              "the global threshold's mask disintegrates — the degradation-"
              "robustness crossover the paper attributes to foundation-model "
              "features.\n");
  t.write_csv(out + "/ablation_noise.csv");
  return 0;
}
