// Ablation A3: the data-readiness layer. Compares segmentation quality
// when the pipeline sees (a) raw type-scaled pixels, (b) naive min-max
// normalization, (c) robust percentile normalization (default), and
// (d) percentile + CLAHE, across 8/16/32-bit containers.
#include <cstdio>

#include "exp_common.hpp"
#include "zenesis/image/roi.hpp"

namespace {

using namespace zenesis;

image::ImageF32 prepare(const image::AnyImage& raw, const char* mode) {
  const image::ImageF32 f = image::to_float(raw);
  if (std::string(mode) == "raw") return f;
  if (std::string(mode) == "minmax") return image::minmax_normalize(f);
  image::ReadinessConfig cfg;
  if (std::string(mode) == "percentile+clahe") cfg.use_clahe = true;
  return image::make_ai_ready(raw, cfg);
}

}  // namespace

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  const std::string out = bench::ensure_out_dir(cfg);
  bench::print_header("Ablation A3", "data-readiness normalization variants");

  core::Session session;
  io::Table t({"sample", "bits", "readiness", "iou", "dice"});
  for (const auto type :
       {fibsem::SampleType::kCrystalline, fibsem::SampleType::kAmorphous}) {
    fibsem::SynthConfig scfg;
    scfg.type = type;
    scfg.width = cfg.image_size;
    scfg.height = cfg.image_size;
    scfg.seed = cfg.seed;
    const fibsem::SyntheticSlice slice = fibsem::generate_slice(scfg, 4);
    const image::ImageF32 base = image::to_float(image::AnyImage(slice.raw));
    for (int bits : {8, 16, 32}) {
      const image::AnyImage raw = image::quantize(base, bits);
      for (const char* mode : {"raw", "minmax", "percentile", "percentile+clahe"}) {
        const image::ImageF32 ready = prepare(raw, mode);
        const core::SliceResult r = session.pipeline().segment_ready(
            ready, fibsem::default_prompt(type));
        const eval::Metrics m = eval::compute_metrics(r.mask, slice.ground_truth);
        t.add_row({std::string(fibsem::sample_type_name(type)),
                   static_cast<std::int64_t>(bits), std::string(mode), m.iou,
                   m.dice});
      }
    }
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf("Raw instrument ranges cripple the models; percentile "
              "readiness restores performance uniformly across bit depths.\n");
  t.write_csv(out + "/ablation_readiness.csv");
  return 0;
}
