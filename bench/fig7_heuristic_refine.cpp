// Fig. 7 reproduction: heuristic volumetric box refinement. Injects
// GroundingDINO failures (blown-up and missing boxes) into a stable box
// track and shows the sliding-window correction restoring the series,
// plus the end-to-end effect on mask quality for the affected slices.
#include <cstdio>

#include "exp_common.hpp"
#include "zenesis/image/roi.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  const std::string out = bench::ensure_out_dir(cfg);

  fibsem::SynthConfig scfg;
  scfg.type = fibsem::SampleType::kCrystalline;
  scfg.width = cfg.image_size;
  scfg.height = cfg.image_size;
  scfg.depth = cfg.slices;
  scfg.seed = cfg.seed;
  const fibsem::SyntheticVolume vol = fibsem::generate_volume(scfg);

  core::Session session;
  const char* prompt = fibsem::default_prompt(scfg.type);

  // Collect the genuine per-slice primary boxes, then inject failures.
  std::vector<image::Box> boxes;
  std::vector<core::SliceResult> slices;
  for (std::int64_t z = 0; z < vol.depth(); ++z) {
    slices.push_back(session.mode_a_segment(image::AnyImage(vol.volume.slice(z)), prompt));
    boxes.push_back(slices.back().primary_box);
  }
  std::vector<image::Box> corrupted = boxes;
  corrupted[4] = {0, 0, scfg.width, scfg.height};  // full-frame blow-up
  corrupted[7] = {};                               // missed detection

  const volume3d::RefineOutcome refined = volume3d::refine_box_sequence(corrupted);

  bench::print_header("Figure 7", "sliding-window box refinement on a volume");
  io::Table t({"slice", "w_raw", "h_raw", "w_refined", "h_refined", "replaced",
               "iou_raw_box_mask", "iou_refined_box_mask"});
  for (std::int64_t z = 0; z < vol.depth(); ++z) {
    const auto zi = static_cast<std::size_t>(z);
    double iou_raw = 0.0, iou_ref = 0.0;
    if (!corrupted[zi].empty()) {
      const core::SliceResult r = session.pipeline().segment_with_box(
          slices[zi].ai_ready, corrupted[zi],
          core::BoxPromptOptions{prompt, {}});
      iou_raw = image::mask_iou(r.mask, vol.ground_truth[zi]);
    }
    if (!refined.boxes[zi].empty()) {
      const core::SliceResult r = session.pipeline().segment_with_box(
          slices[zi].ai_ready, refined.boxes[zi],
          core::BoxPromptOptions{prompt, {}});
      iou_ref = image::mask_iou(r.mask, vol.ground_truth[zi]);
    }
    t.add_row({z, corrupted[zi].w, corrupted[zi].h, refined.boxes[zi].w,
               refined.boxes[zi].h,
               std::string(refined.replaced[zi] ? "yes" : "no"), iou_raw,
               iou_ref});
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf("%d corrupted slices repaired by the window-average heuristic.\n",
              refined.replaced_count);
  t.write_csv(out + "/fig7_heuristic_refine.csv");
  return 0;
}
