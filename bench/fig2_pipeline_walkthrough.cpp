// Fig. 2 / Fig. 5 reproduction: one slice walked through the interactive
// pipeline — DINO bounding boxes, SAM mask overlay, extracted segment, and
// a hierarchical Further-Segment pass on the primary detection.
#include <cstdio>

#include "exp_common.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/pnm.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  const std::string out = bench::ensure_out_dir(cfg);

  fibsem::SynthConfig scfg;
  scfg.type = fibsem::SampleType::kCrystalline;
  scfg.width = cfg.image_size;
  scfg.height = cfg.image_size;
  scfg.seed = cfg.seed;
  const fibsem::SyntheticSlice slice = fibsem::generate_slice(scfg, 3);

  core::Session session;
  const char* prompt = fibsem::default_prompt(scfg.type);
  bench::print_header("Figure 2/5", "interactive DINO->SAM walkthrough");
  std::printf("prompt: \"%s\"\n", prompt);

  const core::SliceResult res =
      session.mode_a_segment(image::AnyImage(slice.raw), prompt);
  std::printf("DINO detections: %zu (primary box [%lld,%lld %lldx%lld] "
              "conf=%.3f)\n",
              res.grounding.boxes.size(),
              static_cast<long long>(res.primary_box.x),
              static_cast<long long>(res.primary_box.y),
              static_cast<long long>(res.primary_box.w),
              static_cast<long long>(res.primary_box.h), res.confidence);

  // Boxes overlay.
  image::ImageU8 boxes_vis = image::overlay_mask(
      res.ai_ready, image::Mask(res.ai_ready.width(), res.ai_ready.height()));
  for (const auto& sb : res.grounding.boxes) {
    image::draw_box(boxes_vis, sb.box, 255, 220, 0);
  }
  io::write_ppm(out + "/fig2_dino_boxes.ppm", boxes_vis);

  // Mask overlay + extracted segment.
  io::write_ppm(out + "/fig2_mask_overlay.ppm",
                image::overlay_mask(res.ai_ready, res.mask));
  image::ImageF32 extracted(res.ai_ready.width(), res.ai_ready.height(), 1);
  for (std::int64_t y = 0; y < extracted.height(); ++y) {
    for (std::int64_t x = 0; x < extracted.width(); ++x) {
      extracted.at(x, y) = res.mask.at(x, y) != 0 ? res.ai_ready.at(x, y) : 0.0f;
    }
  }
  io::write_pgm_f32(out + "/fig2_extracted_segment.pgm", extracted);

  // Hierarchical Further Segment inside the primary box.
  const core::SliceResult child =
      session.further_segment(res, res.primary_box, prompt);
  std::printf("Further Segment inside primary box: %zu child detections, "
              "child mask %lld px (parent mask %lld px)\n",
              child.grounding.boxes.size(),
              static_cast<long long>(image::mask_area(child.mask)),
              static_cast<long long>(image::mask_area(res.mask)));
  io::write_ppm(out + "/fig2_further_segment.ppm",
                image::overlay_mask(res.ai_ready, child.mask));
  std::printf("Artifacts written to %s/fig2_*.p?m\n", out.c_str());
  return 0;
}
