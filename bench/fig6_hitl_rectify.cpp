// Fig. 6 reproduction: Rectify Segmentation — random candidate boxes,
// annotator selection, nearest-segment snap, SAM re-run. Reports
// before/after IoU per episode.
#include <cstdio>

#include "exp_common.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/pnm.hpp"

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  const std::string out = bench::ensure_out_dir(cfg);

  fibsem::SynthConfig scfg;
  scfg.type = fibsem::SampleType::kCrystalline;
  scfg.width = cfg.image_size;
  scfg.height = cfg.image_size;
  scfg.seed = cfg.seed;

  bench::print_header("Figure 6", "HITL random-box rectification episodes");
  core::Session session;
  io::Table t({"episode", "slice", "before_iou", "after_iou", "improved"});
  hitl::SimulatedAnnotator annotator(0.9, 42);

  int improved = 0, episodes = 0;
  for (std::int64_t z = 0; z < 5; ++z) {
    const fibsem::SyntheticSlice slice = fibsem::generate_slice(scfg, z);
    // Simulate a grounding failure: segment with a deliberately bad prompt
    // so the automated mask misses the catalyst.
    const core::SliceResult automated =
        session.mode_a_segment(image::AnyImage(slice.raw), "dark background");
    const hitl::RectifyResult r = session.rectify(
        automated, slice.ground_truth, annotator, {},
        static_cast<std::uint64_t>(z) + 1);
    ++episodes;
    improved += r.after_iou > r.before_iou;
    t.add_row({static_cast<std::int64_t>(episodes), z, r.before_iou, r.after_iou,
               std::string(r.after_iou > r.before_iou ? "yes" : "no")});
    if (z == 0) {
      io::write_ppm(out + "/fig6_before.ppm",
                    image::overlay_mask(automated.ai_ready, automated.mask));
      io::write_ppm(out + "/fig6_after.ppm",
                    image::overlay_mask(automated.ai_ready, r.refined.mask));
    }
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf("%d/%d episodes improved by weak human supervision. "
              "Overlays in %s/fig6_*.ppm\n", improved, episodes, out.c_str());
  t.write_csv(out + "/fig6_hitl_rectify.csv");
  return 0;
}
