// Fig. 3 reproduction: qualitative comparison of Otsu, SAM-only and
// Zenesis on (a) a crystalline and (b) an amorphous slice. Writes the
// per-method mask overlays and prints each mask's metrics row.
#include <cstdio>

#include "exp_common.hpp"
#include "zenesis/eval/metrics.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/pnm.hpp"

namespace {

using namespace zenesis;

void run_panel(const bench::ExperimentConfig& cfg, fibsem::SampleType type,
               const char* panel, io::Table& table, const std::string& out) {
  fibsem::SynthConfig scfg;
  scfg.type = type;
  scfg.width = cfg.image_size;
  scfg.height = cfg.image_size;
  scfg.seed = cfg.seed;
  const fibsem::SyntheticSlice slice = fibsem::generate_slice(scfg, 5);

  core::Session session;
  const image::ImageF32 ready =
      session.pipeline().make_ready(image::AnyImage(slice.raw));
  const std::string name = fibsem::sample_type_name(type);

  const image::Mask otsu = core::baseline_otsu(ready);
  const image::Mask sam = core::baseline_sam_only(session.pipeline().sam(), ready);
  const core::SliceResult zen = session.mode_a_segment(
      image::AnyImage(slice.raw), fibsem::default_prompt(type));

  const struct {
    const char* method;
    const image::Mask& mask;
  } rows[] = {{"otsu", otsu}, {"sam_only", sam}, {"zenesis", zen.mask}};
  for (const auto& row : rows) {
    const eval::Metrics m = eval::compute_metrics(row.mask, slice.ground_truth);
    table.add_row({std::string(panel), std::string(name), std::string(row.method),
                   m.accuracy, m.iou, m.dice});
    io::write_ppm(out + "/fig3_" + name + "_" + row.method + ".ppm",
                  image::overlay_mask(ready, row.mask));
  }
  io::write_ppm(out + "/fig3_" + name + "_ground_truth.ppm",
                image::overlay_mask(ready, slice.ground_truth));
}

}  // namespace

int main() {
  using namespace zenesis;
  bench::ExperimentConfig cfg;
  const std::string out = bench::ensure_out_dir(cfg);
  bench::print_header("Figure 3",
                      "qualitative Otsu vs SAM-only vs Zenesis comparison");
  io::Table t({"panel", "sample", "method", "accuracy", "iou", "dice"});
  run_panel(cfg, fibsem::SampleType::kCrystalline, "(a)", t, out);
  run_panel(cfg, fibsem::SampleType::kAmorphous, "(b)", t, out);
  std::printf("%s", t.to_ascii().c_str());
  std::printf("Overlays written to %s/fig3_*.ppm — Otsu/SAM-only lock onto "
              "the dark holder on crystalline; Zenesis follows the text-"
              "grounded catalyst.\n", out.c_str());
  t.write_csv(out + "/fig3_qualitative.csv");
  return 0;
}
