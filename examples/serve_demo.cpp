// Serving-layer demo: a burst of Mode-A requests (with repeats, a
// deadline, a cancellation and a low-priority volume job) submitted to
// the asynchronous SegmentService, then the Mode-C dashboard with the
// serve_* runtime-stats block published automatically.
//
//   ./serve_demo [prompt]
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/obs/trace.hpp"
#include "zenesis/serve/service.hpp"

int main(int argc, char** argv) {
  using namespace zenesis;
  const std::string prompt =
      argc > 1 ? argv[1] : fibsem::default_prompt(fibsem::SampleType::kCrystalline);

  // Synthetic "instrument feed": 3 distinct micrographs requested 12 times.
  std::vector<image::AnyImage> slices;
  for (std::uint64_t seed : {41u, 42u, 43u}) {
    fibsem::SynthConfig cfg;
    cfg.type = fibsem::SampleType::kCrystalline;
    cfg.width = 128;
    cfg.height = 128;
    cfg.seed = seed;
    slices.emplace_back(fibsem::generate_slice(cfg, 0).raw);
  }

  serve::ServiceConfig cfg;
  cfg.queue_capacity = 32;
  cfg.max_batch = 6;
  serve::SegmentService service(cfg);

  core::Session session;
  service.attach_to(session);  // serve_* counters ride along with Mode C

  std::vector<std::future<serve::Response>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(service.submit(
        serve::Request::slice(slices[static_cast<std::size_t>(i % 3)], prompt)));
  }
  // One urgent request with a hard latency budget...
  futures.push_back(service.submit(
      serve::Request::slice(slices[0], prompt)
          .with_priority(10)
          .with_deadline_in(std::chrono::seconds(30))));
  // ...one the client gives up on immediately...
  auto token = std::make_shared<serve::CancelToken>();
  futures.push_back(service.submit(
      serve::Request::slice(slices[1], prompt).with_cancel(token)));
  token->cancel();
  // ...and a background volume job that yields to the interactive traffic.
  fibsem::SynthConfig vcfg;
  vcfg.type = fibsem::SampleType::kCrystalline;
  vcfg.width = 96;
  vcfg.height = 96;
  vcfg.depth = 4;
  vcfg.seed = 7;
  futures.push_back(service.submit(
      serve::Request::volume_batch(fibsem::generate_volume(vcfg).volume, prompt)
          .with_priority(-5)));

  int ok = 0, rejected = 0;
  for (auto& f : futures) {
    const serve::Response r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      ++rejected;
    }
  }
  std::printf("responses: %d ok, %d rejected/cancelled\n", ok, rejected);

  const serve::ServiceStats stats = service.stats();
  std::printf("batches: %llu (mean size %.2f), queue high-water %llu\n",
              static_cast<unsigned long long>(stats.batches),
              stats.batch_size.mean(),
              static_cast<unsigned long long>(stats.queue_depth_high_water));
  std::printf("latency p50/p95/p99 (ms): %.2f / %.2f / %.2f\n",
              stats.total_us.percentile(50.0) / 1000.0,
              stats.total_us.percentile(95.0) / 1000.0,
              stats.total_us.percentile(99.0) / 1000.0);

  // Mode C: one evaluation — runtime stats (cache + service) publish
  // automatically alongside it.
  const auto probe = fibsem::generate_slice(vcfg, 0);
  const auto seg = session.mode_a_segment(image::AnyImage(probe.raw), prompt);
  session.mode_c_evaluate("synthetic", "zenesis", 0, seg.mask,
                          probe.ground_truth);
  std::printf("\n%s\n", session.dashboard().render().c_str());

  // With ZENESIS_TRACE=1 the whole burst was traced: dump the Chrome
  // trace so each request can be followed across submitter, dispatcher
  // and fan-out threads by its trace_id (echoed in Response::trace_id).
  if (obs::enabled()) {
    const char* trace_path = "serve_demo.trace.json";
    obs::TraceCollector::global().write_chrome_trace(trace_path);
    std::printf("tracing on: chrome trace written to %s "
                "(open in chrome://tracing)\n",
                trace_path);
  }
  // No teardown ceremony: attach_to is a scoped registration, so any
  // destruction order of service and session is safe.
  return 0;
}
