// Mode B example: batch-segment a multi-page TIFF volume with temporal
// refinement, evaluate against ground truth when available, and export
// the dashboard.
//
//   ./volume_batch [volume.tif] ["prompt"]
//
// Without arguments it generates a synthetic amorphous 10-slice volume
// (with ground truth, so Mode C metrics are reported too), writes it to
// volume_batch_input.tif, then runs the batch pipeline on it.
#include <cstdio>
#include <string>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/pnm.hpp"
#include "zenesis/io/tiff.hpp"
#include "zenesis/volume3d/heuristic.hpp"

int main(int argc, char** argv) {
  using namespace zenesis;
  const std::string prompt =
      argc > 2 ? argv[2] : "bright amorphous catalyst particles";

  fibsem::SyntheticVolume synthetic;
  image::VolumeU16 volume;
  bool have_gt = false;
  if (argc > 1) {
    std::printf("loading %s ...\n", argv[1]);
    volume = io::read_volume_tiff_u16(argv[1]);
  } else {
    std::printf("no input given — generating a synthetic amorphous volume\n");
    fibsem::SynthConfig cfg;
    cfg.type = fibsem::SampleType::kAmorphous;
    synthetic = fibsem::generate_volume(cfg);
    volume = synthetic.volume;
    have_gt = true;
    io::write_volume_tiff("volume_batch_input.tif", volume);
    std::printf("wrote volume_batch_input.tif (%lld slices)\n",
                static_cast<long long>(volume.depth()));
  }

  core::Session session;
  const core::VolumeResult res =
      session.mode_b_segment_volume(core::VolumeRequest::view(volume, prompt));

  std::printf("segmented %zu slices; heuristic refinement replaced %d "
              "outlier box(es)\n", res.slices.size(), res.replaced_count);
  const double consistency = volume3d::slice_consistency(res.masks());
  std::printf("slice-to-slice mask consistency (mean IoU): %.3f\n", consistency);

  if (have_gt) {
    for (std::int64_t z = 0; z < volume.depth(); ++z) {
      session.mode_c_evaluate(
          "amorphous", "zenesis", z, res.slices[static_cast<std::size_t>(z)].mask,
          synthetic.ground_truth[static_cast<std::size_t>(z)]);
    }
    session.publish_runtime_stats();
    std::printf("%s", session.dashboard().render().c_str());
  }

  io::write_ppm("volume_batch_slice0.ppm",
                image::overlay_mask(res.slices[0].ai_ready, res.slices[0].mask));
  std::printf("wrote volume_batch_slice0.ppm\n");
  return 0;
}
