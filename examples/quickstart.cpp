// Quickstart: segment one raw 16-bit FIB-SEM slice with a text prompt.
//
//   ./quickstart [input.tif] ["prompt"]
//
// Without arguments it generates a synthetic crystalline slice, so the
// example runs out of the box. With a TIFF path it segments your data —
// the exact Mode A flow of the platform:
//   raw image → data readiness → GroundingDINO boxes → SAM mask →
//   overlay + metrics on stdout.
#include <cstdio>
#include <string>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/pnm.hpp"
#include "zenesis/io/tiff.hpp"

int main(int argc, char** argv) {
  using namespace zenesis;

  const std::string prompt =
      argc > 2 ? argv[2] : "bright needle-like crystalline catalyst";

  image::AnyImage raw = [&]() -> image::AnyImage {
    if (argc > 1) {
      std::printf("loading %s ...\n", argv[1]);
      return io::read_tiff(argv[1]).pages.at(0);
    }
    std::printf("no input given — generating a synthetic crystalline "
                "FIB-SEM slice\n");
    fibsem::SynthConfig cfg;
    cfg.type = fibsem::SampleType::kCrystalline;
    return fibsem::generate_slice(cfg, 0).raw;
  }();

  std::printf("input: %lldx%lld, %d-bit\n",
              static_cast<long long>(image::width_of(raw)),
              static_cast<long long>(image::height_of(raw)),
              image::bit_depth(raw));
  std::printf("prompt: \"%s\"\n", prompt.c_str());

  core::Session session;
  const core::SliceResult res = session.mode_a_segment(raw, prompt);

  std::printf("grounding: %zu box(es)\n", res.grounding.boxes.size());
  for (const auto& b : res.grounding.boxes) {
    std::printf("  box [%lld,%lld %lldx%lld] confidence %.3f\n",
                static_cast<long long>(b.box.x), static_cast<long long>(b.box.y),
                static_cast<long long>(b.box.w), static_cast<long long>(b.box.h),
                b.score);
  }
  std::printf("mask: %lld foreground pixels (%.1f%% of the image)\n",
              static_cast<long long>(image::mask_area(res.mask)),
              100.0 * image::mask_fraction(res.mask));

  io::write_ppm("quickstart_overlay.ppm",
                image::overlay_mask(res.ai_ready, res.mask));
  std::printf("wrote quickstart_overlay.ppm\n");
  return 0;
}
