// Multi-object example (the paper's future-work item 2): segment several
// object classes of one slice with one prompt each and export a label
// map. Conflicting claims are resolved by pixel-level text alignment.
//
//   ./multi_object ["prompt1" "prompt2" ...]
//
// Defaults to {"bright needle-like crystalline catalyst",
// "dark background"} on a synthetic crystalline slice, which separates
// the catalyst from the sample holder in one pass.
#include <cstdio>
#include <string>
#include <vector>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/pnm.hpp"

int main(int argc, char** argv) {
  using namespace zenesis;

  std::vector<std::string> prompts;
  for (int i = 1; i < argc; ++i) prompts.emplace_back(argv[i]);
  if (prompts.empty()) {
    prompts = {"bright needle-like crystalline catalyst", "dark background"};
  }

  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kCrystalline;
  const fibsem::SyntheticSlice slice = fibsem::generate_slice(cfg, 1);

  core::Session session;
  const auto res =
      session.mode_a_segment_multi(image::AnyImage(slice.raw), prompts);

  std::printf("classes:\n");
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    std::int64_t area = 0;
    for (auto v : res.labels.pixels()) area += v == static_cast<std::int32_t>(i) + 1;
    std::printf("  %zu: \"%s\" -> %lld px (%.1f%%), %zu detection(s)\n", i + 1,
                prompts[i].c_str(), static_cast<long long>(area),
                100.0 * static_cast<double>(area) /
                    static_cast<double>(res.labels.pixel_count()),
                res.per_prompt[i].grounding.boxes.size());
  }

  // Render the label map with a fixed small palette.
  const std::uint8_t palette[][3] = {{40, 200, 80},  {230, 80, 60},
                                     {70, 120, 240}, {240, 200, 60},
                                     {180, 80, 220}, {80, 220, 220}};
  image::ImageU8 vis(res.labels.width(), res.labels.height(), 3);
  const image::ImageF32 ready =
      session.pipeline().make_ready(image::AnyImage(slice.raw));
  for (std::int64_t y = 0; y < vis.height(); ++y) {
    for (std::int64_t x = 0; x < vis.width(); ++x) {
      const std::int32_t l = res.labels.at(x, y);
      const auto g = static_cast<std::uint8_t>(
          std::clamp(ready.at(x, y), 0.0f, 1.0f) * 255.0f);
      if (l == 0) {
        vis.at(x, y, 0) = g;
        vis.at(x, y, 1) = g;
        vis.at(x, y, 2) = g;
      } else {
        const auto& c = palette[(l - 1) % 6];
        vis.at(x, y, 0) = static_cast<std::uint8_t>((g + 2 * c[0]) / 3);
        vis.at(x, y, 1) = static_cast<std::uint8_t>((g + 2 * c[1]) / 3);
        vis.at(x, y, 2) = static_cast<std::uint8_t>((g + 2 * c[2]) / 3);
      }
    }
  }
  io::write_ppm("multi_object_labels.ppm", vis);
  std::printf("wrote multi_object_labels.ppm\n");
  return 0;
}
