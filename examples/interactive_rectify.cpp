// Interactive example: Rectify Segmentation (the paper's Fig. 6 workflow).
//
// Simulates a grounding failure (a prompt that latches onto the wrong
// structure), then runs the human-in-the-loop correction: random candidate
// boxes → annotator pick → nearest-segment snap → SAM re-run. Prints the
// before/after IoU and writes overlays of both masks.
//
//   ./interactive_rectify [fidelity]   (annotator quality, default 0.9)
#include <cstdio>
#include <cstdlib>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/pnm.hpp"

int main(int argc, char** argv) {
  using namespace zenesis;
  const double fidelity = argc > 1 ? std::atof(argv[1]) : 0.9;

  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kCrystalline;
  const fibsem::SyntheticSlice slice = fibsem::generate_slice(cfg, 2);

  core::Session session;
  // A deliberately wrong prompt: the model grounds the dark holder
  // instead of the catalyst, exactly the failure a user would correct.
  const core::SliceResult automated =
      session.mode_a_segment(image::AnyImage(slice.raw), "dark background");
  std::printf("automated mask (wrong prompt \"dark background\"): IoU %.3f "
              "vs true catalyst\n",
              image::mask_iou(automated.mask, slice.ground_truth));

  hitl::SimulatedAnnotator annotator(fidelity, 2024);
  hitl::RandomBoxConfig boxes;
  boxes.count = 24;
  const hitl::RectifyResult r =
      session.rectify(automated, slice.ground_truth, annotator, boxes, 5);

  std::printf("annotator fidelity %.2f picked box [%lld,%lld %lldx%lld]\n",
              annotator.fidelity(), static_cast<long long>(r.chosen_box.x),
              static_cast<long long>(r.chosen_box.y),
              static_cast<long long>(r.chosen_box.w),
              static_cast<long long>(r.chosen_box.h));
  std::printf("rectified: IoU %.3f -> %.3f (%s)\n", r.before_iou, r.after_iou,
              r.after_iou > r.before_iou ? "improved" : "no gain");

  io::write_ppm("rectify_before.ppm",
                image::overlay_mask(automated.ai_ready, automated.mask));
  io::write_ppm("rectify_after.ppm",
                image::overlay_mask(automated.ai_ready, r.refined.mask));
  std::printf("wrote rectify_before.ppm / rectify_after.ppm\n");
  return 0;
}
