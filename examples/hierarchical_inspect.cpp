// Hierarchical "Further Segment" example (the paper's Fig. 5 feature):
// segment a slice, pick the primary detection, then recursively re-run
// the pipeline inside it for finer-grained structure.
//
//   ./hierarchical_inspect ["parent prompt"] ["child prompt"]
#include <cstdio>
#include <string>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/pnm.hpp"

int main(int argc, char** argv) {
  using namespace zenesis;
  const std::string parent_prompt =
      argc > 1 ? argv[1] : "bright needle-like crystalline catalyst";
  const std::string child_prompt = argc > 2 ? argv[2] : "needles";

  fibsem::SynthConfig cfg;
  cfg.type = fibsem::SampleType::kCrystalline;
  const fibsem::SyntheticSlice slice = fibsem::generate_slice(cfg, 4);

  core::Session session;
  const core::SliceResult parent =
      session.mode_a_segment(image::AnyImage(slice.raw), parent_prompt);
  std::printf("level 0: prompt \"%s\" -> %zu boxes, mask %.1f%% of image\n",
              parent_prompt.c_str(), parent.grounding.boxes.size(),
              100.0 * image::mask_fraction(parent.mask));
  if (parent.primary_box.empty()) {
    std::printf("nothing grounded — try another prompt\n");
    return 1;
  }

  // Descend two levels: each child inspects the previous primary box.
  core::SliceResult level = parent;
  for (int depth = 1; depth <= 2; ++depth) {
    const image::Box roi = level.primary_box;
    const core::SliceResult child =
        session.further_segment(level, roi, child_prompt);
    std::printf(
        "level %d: further-segment inside [%lld,%lld %lldx%lld] with "
        "\"%s\" -> %zu boxes, mask %lld px\n",
        depth, static_cast<long long>(roi.x), static_cast<long long>(roi.y),
        static_cast<long long>(roi.w), static_cast<long long>(roi.h),
        child_prompt.c_str(), child.grounding.boxes.size(),
        static_cast<long long>(image::mask_area(child.mask)));
    io::write_ppm("hierarchical_level" + std::to_string(depth) + ".ppm",
                  image::overlay_mask(parent.ai_ready, child.mask));
    if (child.primary_box.empty()) break;
    level = child;
  }
  std::printf("wrote hierarchical_level*.ppm overlays\n");
  return 0;
}
