#include "zenesis/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "zenesis/parallel/parallel_for.hpp"

namespace zenesis::tensor {
namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

void require_rank2(const Tensor& t, const char* what) {
  require(t.rank() == 2, what);
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul: a must be rank 2");
  require_rank2(b, "matmul: b must be rank 2");
  require(a.dim(1) == b.dim(0), "matmul: inner dimensions differ");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  // Row-parallel, k-blocked i-k-j loop order: B rows stream through cache,
  // C rows stay resident.
  constexpr std::int64_t kBlock = 64;
  parallel::parallel_for(0, m, [&](std::int64_t i) {
    float* ci = c.row(i);
    const float* ai = a.row(i);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlock) {
      const std::int64_t k1 = std::min(k, k0 + kBlock);
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        const float av = ai[kk];
        const float* bk = b.row(kk);
        for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bk[j];
      }
    }
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_nt: a must be rank 2");
  require_rank2(b, "matmul_nt: b must be rank 2");
  require(a.dim(1) == b.dim(1), "matmul_nt: feature dimensions differ");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  parallel::parallel_for(0, m, [&](std::int64_t i) {
    const float* ai = a.row(i);
    float* ci = c.row(i);
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b.row(j);
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] = acc;
    }
  });
  return c;
}

Tensor linear(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  require(bias.rank() == 1 && bias.dim(0) == weight.dim(0),
          "linear: bias size must equal output features");
  Tensor y = matmul_nt(x, weight);
  const std::int64_t m = y.dim(0), n = y.dim(1);
  for (std::int64_t i = 0; i < m; ++i) {
    float* yi = y.row(i);
    const float* bi = bias.data();
    for (std::int64_t j = 0; j < n; ++j) yi[j] += bi[j];
  }
  return y;
}

Tensor transpose(const Tensor& a) {
  require_rank2(a, "transpose: rank 2 required");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

void add_inplace(Tensor& a, const Tensor& b) {
  require(a.shape() == b.shape(), "add_inplace: shape mismatch");
  float* pa = a.data();
  const float* pb = b.data();
  const std::int64_t n = a.numel();
  for (std::int64_t i = 0; i < n; ++i) pa[i] += pb[i];
}

void scale_inplace(Tensor& a, float s) {
  for (float& v : a.flat()) v *= s;
}

void softmax_rows(Tensor& a) {
  require_rank2(a, "softmax_rows: rank 2 required");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  parallel::parallel_for(0, m, [&](std::int64_t i) {
    float* r = a.row(i);
    float mx = r[0];
    for (std::int64_t j = 1; j < n; ++j) mx = std::max(mx, r[j]);
    float sum = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      r[j] = std::exp(r[j] - mx);
      sum += r[j];
    }
    const float inv = 1.0f / sum;
    for (std::int64_t j = 0; j < n; ++j) r[j] *= inv;
  });
}

void layernorm_rows(Tensor& a, const Tensor& gain, const Tensor& bias,
                    float eps) {
  require_rank2(a, "layernorm_rows: rank 2 required");
  require(gain.rank() == 1 && gain.dim(0) == a.dim(1),
          "layernorm_rows: gain size mismatch");
  require(bias.rank() == 1 && bias.dim(0) == a.dim(1),
          "layernorm_rows: bias size mismatch");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  parallel::parallel_for(0, m, [&](std::int64_t i) {
    float* r = a.row(i);
    float mean = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) mean += r[j];
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      const float d = r[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(n);
    const float inv = 1.0f / std::sqrt(var + eps);
    const float* g = gain.data();
    const float* b = bias.data();
    for (std::int64_t j = 0; j < n; ++j) {
      r[j] = (r[j] - mean) * inv * g[j] + b[j];
    }
  });
}

void gelu_inplace(Tensor& a) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  for (float& v : a.flat()) {
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    v = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

void relu_inplace(Tensor& a) {
  for (float& v : a.flat()) v = std::max(0.0f, v);
}

Tensor attention(const Tensor& q, const Tensor& k, const Tensor& v) {
  require(q.dim(1) == k.dim(1), "attention: q/k feature mismatch");
  require(k.dim(0) == v.dim(0), "attention: k/v length mismatch");
  Tensor scores = matmul_nt(q, k);
  scale_inplace(scores, 1.0f / std::sqrt(static_cast<float>(q.dim(1))));
  softmax_rows(scores);
  return matmul(scores, v);
}

Tensor multihead_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                           int heads) {
  require(heads > 0, "multihead_attention: heads must be positive");
  require(q.dim(1) % heads == 0, "multihead_attention: d % heads != 0");
  require(v.dim(1) % heads == 0, "multihead_attention: dv % heads != 0");
  const std::int64_t lq = q.dim(0), lk = k.dim(0);
  const std::int64_t dh = q.dim(1) / heads, dvh = v.dim(1) / heads;
  Tensor out({lq, v.dim(1)});
  for (int h = 0; h < heads; ++h) {
    Tensor qh({lq, dh}), kh({lk, dh}), vh({lk, dvh});
    for (std::int64_t i = 0; i < lq; ++i) {
      for (std::int64_t j = 0; j < dh; ++j) qh.at(i, j) = q.at(i, h * dh + j);
    }
    for (std::int64_t i = 0; i < lk; ++i) {
      for (std::int64_t j = 0; j < dh; ++j) kh.at(i, j) = k.at(i, h * dh + j);
      for (std::int64_t j = 0; j < dvh; ++j) vh.at(i, j) = v.at(i, h * dvh + j);
    }
    Tensor oh = attention(qh, kh, vh);
    for (std::int64_t i = 0; i < lq; ++i) {
      for (std::int64_t j = 0; j < dvh; ++j) out.at(i, h * dvh + j) = oh.at(i, j);
    }
  }
  return out;
}

void l2_normalize_rows(Tensor& a, float eps) {
  require_rank2(a, "l2_normalize_rows: rank 2 required");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  for (std::int64_t i = 0; i < m; ++i) {
    float* r = a.row(i);
    float ss = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) ss += r[j] * r[j];
    if (ss <= eps) continue;
    const float inv = 1.0f / std::sqrt(ss);
    for (std::int64_t j = 0; j < n; ++j) r[j] *= inv;
  }
}

Tensor cosine_similarity(const Tensor& a, const Tensor& b) {
  Tensor an = a, bn = b;
  l2_normalize_rows(an);
  l2_normalize_rows(bn);
  return matmul_nt(an, bn);
}

Tensor mean_rows(const Tensor& a) {
  require_rank2(a, "mean_rows: rank 2 required");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  if (m == 0) return out;
  for (std::int64_t i = 0; i < m; ++i) {
    const float* r = a.row(i);
    for (std::int64_t j = 0; j < n; ++j) out.at(j) += r[j];
  }
  const float inv = 1.0f / static_cast<float>(m);
  for (float& v : out.flat()) v *= inv;
  return out;
}

}  // namespace zenesis::tensor
