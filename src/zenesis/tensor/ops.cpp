// ops.cpp — shape checking, output allocation and ThreadPool tiling for
// the public tensor ops. All arithmetic lives in the active
// tensor::kernels::KernelBackend; every function here is a thin
// forwarder that splits row/element ranges onto parallel_for and hands
// raw pointers to the backend micro-kernels.

#include "zenesis/tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "zenesis/parallel/parallel_for.hpp"
#include "zenesis/tensor/kernels.hpp"

namespace zenesis::tensor {
namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

void require_rank2(const Tensor& t, const char* what) {
  require(t.rank() == 2, what);
}

// Rows per GEMM work chunk. A multiple of 8 so the chunk starts stay
// aligned with every backend's register-tile row grouping (2- and 4-row
// micro-kernels) — the tile decomposition, and therefore the bit
// pattern of each output row, is then independent of how many workers
// pull chunks.
constexpr std::int64_t kGemmRowGrain = 32;

// Elements per chunk for flat elementwise kernels (multiple of 8 keeps
// SIMD lane alignment identical across thread counts).
constexpr std::int64_t kFlatGrain = 1 << 15;

const kernels::KernelBackend& be() { return kernels::active(); }

/// Splits a flat range across the pool and applies `fn(ptr, len)` to
/// each contiguous chunk.
template <typename Fn>
void for_flat_chunks(float* data, std::int64_t n, Fn&& fn) {
  parallel::parallel_for_chunked(
      0, n, kFlatGrain,
      [&](std::int64_t lo, std::int64_t hi) { fn(data + lo, hi - lo); });
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul: a must be rank 2");
  require_rank2(b, "matmul: b must be rank 2");
  require(a.dim(1) == b.dim(0), "matmul: inner dimensions differ");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const kernels::KernelBackend& backend = be();
  parallel::parallel_for_chunked(
      0, m, kGemmRowGrain, [&](std::int64_t m0, std::int64_t m1) {
        backend.matmul_nn(a.data(), b.data(), c.data(), m0, m1, k, n);
      });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_nt: a must be rank 2");
  require_rank2(b, "matmul_nt: b must be rank 2");
  require(a.dim(1) == b.dim(1), "matmul_nt: feature dimensions differ");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  const kernels::KernelBackend& backend = be();
  parallel::parallel_for_chunked(
      0, m, kGemmRowGrain, [&](std::int64_t m0, std::int64_t m1) {
        backend.matmul_nt(a.data(), b.data(), nullptr, c.data(), m0, m1, k, n);
      });
  return c;
}

Tensor linear(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  require_rank2(x, "linear: x must be rank 2");
  require_rank2(weight, "linear: weight must be rank 2");
  require(x.dim(1) == weight.dim(1), "linear: feature dimensions differ");
  require(bias.rank() == 1 && bias.dim(0) == weight.dim(0),
          "linear: bias size must equal output features");
  const std::int64_t m = x.dim(0), k = x.dim(1), n = weight.dim(0);
  Tensor y({m, n});
  const kernels::KernelBackend& backend = be();
  // Bias add is fused into the GEMM epilogue and parallelized with it —
  // the old serial tail loop over y is gone.
  parallel::parallel_for_chunked(
      0, m, kGemmRowGrain, [&](std::int64_t m0, std::int64_t m1) {
        backend.matmul_nt(x.data(), weight.data(), bias.data(), y.data(), m0,
                          m1, k, n);
      });
  return y;
}

namespace {

// Shared core of the quantized GEMM forwarders: activations already
// quantized on the pool, weight panel pre-quantized. Falls back to the
// fp32 kernels (reconstructing the panel once) when the backend lacks
// int8 entries, so the call is always safe.
Tensor matmul_nt_i8_impl(const quant::QuantizedTensor& qa,
                         const quant::QuantizedTensor& qb, const float* bias) {
  const std::int64_t m = qa.rows, k = qa.cols, n = qb.rows;
  Tensor c({m, n});
  const kernels::KernelBackend& backend = be();
  parallel::parallel_for_chunked(
      0, m, kGemmRowGrain, [&](std::int64_t m0, std::int64_t m1) {
        backend.matmul_nt_i8(qa.data.data(), qa.scales.data(), qb.data.data(),
                             qb.scales.data(), bias, c.data(), m0, m1, k, n);
      });
  return c;
}

}  // namespace

Tensor linear_quantized(const Tensor& x, const quant::QuantizedTensor& qw,
                        const Tensor& bias) {
  require_rank2(x, "linear_quantized: x must be rank 2");
  require(x.dim(1) == qw.cols, "linear_quantized: feature dimensions differ");
  const bool has_bias = bias.rank() != 0;
  if (has_bias) {
    require(bias.rank() == 1 && bias.dim(0) == qw.rows,
            "linear_quantized: bias size must equal output features");
  }
  const float* bias_ptr = has_bias ? bias.data() : nullptr;
  if (be().matmul_nt_i8 == nullptr) {
    const Tensor w = quant::dequantize_rows(qw);
    return has_bias ? linear(x, w, bias) : matmul_nt(x, w);
  }
  return matmul_nt_i8_impl(quant::quantize_rows(x), qw, bias_ptr);
}

Tensor matmul_nt_quantized(const Tensor& a, const quant::QuantizedTensor& qb) {
  return linear_quantized(a, qb, Tensor{});
}

Tensor matmul_nt_dyn_quantized(const Tensor& a, const Tensor& b) {
  require_rank2(a, "matmul_nt_dyn_quantized: a must be rank 2");
  require_rank2(b, "matmul_nt_dyn_quantized: b must be rank 2");
  require(a.dim(1) == b.dim(1),
          "matmul_nt_dyn_quantized: feature dimensions differ");
  if (be().matmul_nt_i8 == nullptr) return matmul_nt(a, b);
  return matmul_nt_i8_impl(quant::quantize_rows(a), quant::quantize_rows(b),
                           nullptr);
}

Tensor transpose(const Tensor& a) {
  require_rank2(a, "transpose: rank 2 required");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor t({n, m});
  // 32x32 tiles keep both the read rows and the written columns inside
  // L1; row-tile chunks are distributed across the pool.
  constexpr std::int64_t kTile = 32;
  const float* src = a.data();
  float* dst = t.data();
  parallel::parallel_for_chunked(
      0, m, kTile, [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t j0 = 0; j0 < n; j0 += kTile) {
          const std::int64_t j1 = std::min(n, j0 + kTile);
          for (std::int64_t i = i0; i < i1; ++i) {
            for (std::int64_t j = j0; j < j1; ++j) {
              dst[j * m + i] = src[i * n + j];
            }
          }
        }
      });
  return t;
}

void add_inplace(Tensor& a, const Tensor& b) {
  require(a.shape() == b.shape(), "add_inplace: shape mismatch");
  const kernels::KernelBackend& backend = be();
  const float* pb = b.data();
  float* pa = a.data();
  parallel::parallel_for_chunked(
      0, a.numel(), kFlatGrain, [&](std::int64_t lo, std::int64_t hi) {
        backend.add(pa + lo, pb + lo, hi - lo);
      });
}

void scale_inplace(Tensor& a, float s) {
  const kernels::KernelBackend& backend = be();
  for_flat_chunks(a.data(), a.numel(),
                  [&](float* p, std::int64_t n) { backend.scale(p, s, n); });
}

void softmax_rows(Tensor& a) {
  require_rank2(a, "softmax_rows: rank 2 required");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  if (n == 0) return;
  const kernels::KernelBackend& backend = be();
  parallel::parallel_for(
      0, m, [&](std::int64_t i) { backend.softmax_row(a.row(i), n); });
}

void layernorm_rows(Tensor& a, const Tensor& gain, const Tensor& bias,
                    float eps) {
  require_rank2(a, "layernorm_rows: rank 2 required");
  require(gain.rank() == 1 && gain.dim(0) == a.dim(1),
          "layernorm_rows: gain size mismatch");
  require(bias.rank() == 1 && bias.dim(0) == a.dim(1),
          "layernorm_rows: bias size mismatch");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  const kernels::KernelBackend& backend = be();
  const float* g = gain.data();
  const float* b = bias.data();
  parallel::parallel_for(0, m, [&](std::int64_t i) {
    backend.layernorm_row(a.row(i), g, b, n, eps);
  });
}

void gelu_inplace(Tensor& a) {
  const kernels::KernelBackend& backend = be();
  for_flat_chunks(a.data(), a.numel(),
                  [&](float* p, std::int64_t n) { backend.gelu(p, n); });
}

void relu_inplace(Tensor& a) {
  const kernels::KernelBackend& backend = be();
  for_flat_chunks(a.data(), a.numel(),
                  [&](float* p, std::int64_t n) { backend.relu(p, n); });
}

Tensor attention(const Tensor& q, const Tensor& k, const Tensor& v) {
  require(q.dim(1) == k.dim(1), "attention: q/k feature mismatch");
  require(k.dim(0) == v.dim(0), "attention: k/v length mismatch");
  // Under int8 the scores GEMM — the largest single matmul in the
  // encoder at 1024 tokens — quantizes both operands dynamically. The
  // softmax and the scores·V matmul stay fp32 for accuracy.
  Tensor scores = quant::int8_fast_path() ? matmul_nt_dyn_quantized(q, k)
                                          : matmul_nt(q, k);
  scale_inplace(scores, 1.0f / std::sqrt(static_cast<float>(q.dim(1))));
  softmax_rows(scores);
  return matmul(scores, v);
}

Tensor multihead_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                           int heads) {
  require(heads > 0, "multihead_attention: heads must be positive");
  require(q.dim(1) % heads == 0, "multihead_attention: d % heads != 0");
  require(v.dim(1) % heads == 0, "multihead_attention: dv % heads != 0");
  const std::int64_t lq = q.dim(0), lk = k.dim(0);
  const std::int64_t dh = q.dim(1) / heads, dvh = v.dim(1) / heads;
  Tensor out({lq, v.dim(1)});
  for (int h = 0; h < heads; ++h) {
    Tensor qh({lq, dh}), kh({lk, dh}), vh({lk, dvh});
    for (std::int64_t i = 0; i < lq; ++i) {
      for (std::int64_t j = 0; j < dh; ++j) qh.at(i, j) = q.at(i, h * dh + j);
    }
    for (std::int64_t i = 0; i < lk; ++i) {
      for (std::int64_t j = 0; j < dh; ++j) kh.at(i, j) = k.at(i, h * dh + j);
      for (std::int64_t j = 0; j < dvh; ++j) vh.at(i, j) = v.at(i, h * dvh + j);
    }
    Tensor oh = attention(qh, kh, vh);
    for (std::int64_t i = 0; i < lq; ++i) {
      for (std::int64_t j = 0; j < dvh; ++j) out.at(i, h * dvh + j) = oh.at(i, j);
    }
  }
  return out;
}

void l2_normalize_rows(Tensor& a, float eps) {
  require_rank2(a, "l2_normalize_rows: rank 2 required");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  const kernels::KernelBackend& backend = be();
  parallel::parallel_for(0, m, [&](std::int64_t i) {
    float* r = a.row(i);
    const float ss = backend.dot(r, r, n);
    if (ss <= eps) return;
    backend.scale(r, 1.0f / std::sqrt(ss), n);
  });
}

Tensor cosine_similarity(const Tensor& a, const Tensor& b) {
  Tensor an = a, bn = b;
  l2_normalize_rows(an);
  l2_normalize_rows(bn);
  return matmul_nt(an, bn);
}

Tensor mean_rows(const Tensor& a) {
  require_rank2(a, "mean_rows: rank 2 required");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  if (m == 0) return out;
  const kernels::KernelBackend& backend = be();
  // Rows fold in ascending order (fixed reduction order); each fold is a
  // vectorized axpy.
  for (std::int64_t i = 0; i < m; ++i) {
    backend.axpy(out.data(), a.row(i), 1.0f, n);
  }
  backend.scale(out.data(), 1.0f / static_cast<float>(m), n);
  return out;
}

Tensor colwise_max(const Tensor& a) {
  require_rank2(a, "colwise_max: rank 2 required");
  require(a.dim(0) > 0, "colwise_max: at least one row required");
  Tensor out({a.dim(1)});
  be().colwise_max(a.data(), out.data(), a.dim(0), a.dim(1));
  return out;
}

void subtract_row_inplace(Tensor& a, const Tensor& row) {
  require_rank2(a, "subtract_row_inplace: rank 2 required");
  require(row.rank() == 1 && row.dim(0) == a.dim(1),
          "subtract_row_inplace: row size mismatch");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  const kernels::KernelBackend& backend = be();
  const float* r = row.data();
  parallel::parallel_for(
      0, m, [&](std::int64_t i) { backend.axpy(a.row(i), r, -1.0f, n); });
}

}  // namespace zenesis::tensor
