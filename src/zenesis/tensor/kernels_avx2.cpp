// AVX2+FMA backend: 8-wide FMA micro-kernels behind the KernelBackend
// interface. Compiled with -mavx2 -mfma (set per-file in CMake) and
// registered only when CPUID reports both features, so the binary still
// runs on older x86 and on other architectures (where this TU compiles
// to the nullptr stub at the bottom).
//
// Micro-kernel shapes:
//   matmul_nt — 2 A-rows x 4 B-rows register tile: 8 ymm accumulators
//     fed by 6 loads per k-octet (FMA/load ratio 8/6); edges fall back
//     to a shared single-dot helper with the identical per-pair
//     accumulation order (octet FMAs -> fixed horizontal sum -> scalar
//     tail), so results never depend on which tile computed a pair.
//   matmul_nn — i-k-j broadcast FMA over 16-column panels of B packed
//     into a contiguous L1-resident buffer (panel depth kKBlock), four
//     C rows per pass.
//
// Determinism: per-output accumulation order is a function of k alone —
// lane assignment, horizontal-sum shape and tail handling are fixed —
// so any row split across threads is byte-stable.

#include "zenesis/tensor/kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace zenesis::tensor::kernels {
namespace {

constexpr std::int64_t kKBlock = 256;  // packed-B panel depth

/// Fixed horizontal sum: pairwise within 128-bit halves, then across.
inline float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  return _mm_cvtss_f32(s);
}

/// Canonical dot order shared by every matmul_nt edge path: 8-lane FMA
/// over whole octets, hsum8, then an ascending scalar tail.
inline float dot_avx(const float* x, const float* y, std::int64_t k) {
  __m256 acc = _mm256_setzero_ps();
  std::int64_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(x + kk), _mm256_loadu_ps(y + kk),
                          acc);
  }
  float sum = hsum8(acc);
  for (; kk < k; ++kk) sum += x[kk] * y[kk];
  return sum;
}

/// 2x4 register tile: rows {i, i+1} of A against rows {j..j+3} of B.
/// Each accumulator's FMA sequence over k is identical to dot_avx, so
/// tile membership does not change any (i, j) result.
inline void nt_tile_2x4(const float* a0, const float* a1, const float* b,
                        std::int64_t ldb, std::int64_t k, float* c0,
                        float* c1) {
  __m256 acc[2][4];
  for (int r = 0; r < 2; ++r) {
    for (int s = 0; s < 4; ++s) acc[r][s] = _mm256_setzero_ps();
  }
  std::int64_t kk = 0;
  for (; kk + 8 <= k; kk += 8) {
    const __m256 av0 = _mm256_loadu_ps(a0 + kk);
    const __m256 av1 = _mm256_loadu_ps(a1 + kk);
    for (int s = 0; s < 4; ++s) {
      const __m256 bv = _mm256_loadu_ps(b + s * ldb + kk);
      acc[0][s] = _mm256_fmadd_ps(av0, bv, acc[0][s]);
      acc[1][s] = _mm256_fmadd_ps(av1, bv, acc[1][s]);
    }
  }
  float sum[2][4];
  for (int r = 0; r < 2; ++r) {
    for (int s = 0; s < 4; ++s) sum[r][s] = hsum8(acc[r][s]);
  }
  for (; kk < k; ++kk) {
    const float x0 = a0[kk], x1 = a1[kk];
    for (int s = 0; s < 4; ++s) {
      const float bv = b[s * ldb + kk];
      sum[0][s] += x0 * bv;
      sum[1][s] += x1 * bv;
    }
  }
  for (int s = 0; s < 4; ++s) {
    c0[s] = sum[0][s];
    c1[s] = sum[1][s];
  }
}

void v_matmul_nt(const float* a, const float* b, const float* bias, float* c,
                 std::int64_t m0, std::int64_t m1, std::int64_t k,
                 std::int64_t n) {
  const std::int64_t n4 = n & ~std::int64_t{3};
  std::int64_t i = m0;
  for (; i + 2 <= m1; i += 2) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    for (std::int64_t j = 0; j < n4; j += 4) {
      nt_tile_2x4(a0, a1, b + j * k, k, k, c0 + j, c1 + j);
    }
    for (std::int64_t j = n4; j < n; ++j) {
      c0[j] = dot_avx(a0, b + j * k, k);
      c1[j] = dot_avx(a1, b + j * k, k);
    }
  }
  for (; i < m1; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) ci[j] = dot_avx(ai, b + j * k, k);
  }
  if (bias != nullptr) {
    for (std::int64_t r = m0; r < m1; ++r) {
      float* cr = c + r * n;
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(cr + j, _mm256_add_ps(_mm256_loadu_ps(cr + j),
                                               _mm256_loadu_ps(bias + j)));
      }
      for (; j < n; ++j) cr[j] += bias[j];
    }
  }
}

void v_matmul_nn(const float* a, const float* b, float* c, std::int64_t m0,
                 std::int64_t m1, std::int64_t k, std::int64_t n) {
  // Zero the output rows once; panels accumulate into them.
  for (std::int64_t i = m0; i < m1; ++i) {
    std::fill(c + i * n, c + i * n + n, 0.0f);
  }
  // Pack B panels [k0:k1) x [j0:j0+16) contiguously: the kernel then
  // streams one 128-byte packed row per k step regardless of n.
  thread_local std::vector<float> pack;
  pack.resize(static_cast<std::size_t>(kKBlock) * 16);
  for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::int64_t k1 = std::min(k, k0 + kKBlock);
    const std::int64_t kd = k1 - k0;
    for (std::int64_t j0 = 0; j0 < n; j0 += 16) {
      const std::int64_t jw = std::min<std::int64_t>(16, n - j0);
      float* pk = pack.data();
      for (std::int64_t kk = k0; kk < k1; ++kk, pk += 16) {
        const float* bk = b + kk * n + j0;
        for (std::int64_t j = 0; j < jw; ++j) pk[j] = bk[j];
        for (std::int64_t j = jw; j < 16; ++j) pk[j] = 0.0f;
      }
      std::int64_t i = m0;
      if (jw == 16) {
        for (; i + 4 <= m1; i += 4) {
          __m256 acc[4][2];
          for (int r = 0; r < 4; ++r) {
            float* cr = c + (i + r) * n + j0;
            acc[r][0] = _mm256_loadu_ps(cr);
            acc[r][1] = _mm256_loadu_ps(cr + 8);
          }
          const float* pkk = pack.data();
          for (std::int64_t kk = 0; kk < kd; ++kk, pkk += 16) {
            const __m256 b0 = _mm256_loadu_ps(pkk);
            const __m256 b1 = _mm256_loadu_ps(pkk + 8);
            for (int r = 0; r < 4; ++r) {
              const __m256 av =
                  _mm256_set1_ps(a[(i + r) * k + k0 + kk]);
              acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
              acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
            }
          }
          for (int r = 0; r < 4; ++r) {
            float* cr = c + (i + r) * n + j0;
            _mm256_storeu_ps(cr, acc[r][0]);
            _mm256_storeu_ps(cr + 8, acc[r][1]);
          }
        }
      }
      // Remainder rows (and narrow right-edge panels): same broadcast
      // FMA order per (i, j), scalar over the panel width.
      for (; i < m1; ++i) {
        float* cr = c + i * n + j0;
        const float* pkk = pack.data();
        for (std::int64_t kk = 0; kk < kd; ++kk, pkk += 16) {
          const float av = a[i * k + k0 + kk];
          for (std::int64_t j = 0; j < jw; ++j) cr[j] += av * pkk[j];
        }
      }
    }
  }
}

float v_dot(const float* a, const float* b, std::int64_t n) {
  return dot_avx(a, b, n);
}

void v_axpy(float* y, const float* x, float alpha, std::int64_t n) {
  const __m256 av = _mm256_set1_ps(alpha);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(av, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void v_add(float* a, const float* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) a[i] += b[i];
}

void v_scale(float* a, float s, std::int64_t n) {
  const __m256 sv = _mm256_set1_ps(s);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), sv));
  }
  for (; i < n; ++i) a[i] *= s;
}

void v_softmax_row(float* r, std::int64_t n) {
  // Vectorized max (lane-wise max is exact — order free), scalar exp for
  // bit-stable transcendentals, vectorized normalize.
  float mx;
  if (n >= 8) {
    __m256 vmax = _mm256_loadu_ps(r);
    std::int64_t j = 8;
    for (; j + 8 <= n; j += 8) {
      vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(r + j));
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, vmax);
    mx = lanes[0];
    for (int l = 1; l < 8; ++l) mx = std::max(mx, lanes[l]);
    for (; j < n; ++j) mx = std::max(mx, r[j]);
  } else {
    mx = r[0];
    for (std::int64_t j = 1; j < n; ++j) mx = std::max(mx, r[j]);
  }
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const float e0 = std::exp(r[j + 0] - mx);
    const float e1 = std::exp(r[j + 1] - mx);
    const float e2 = std::exp(r[j + 2] - mx);
    const float e3 = std::exp(r[j + 3] - mx);
    r[j + 0] = e0;
    r[j + 1] = e1;
    r[j + 2] = e2;
    r[j + 3] = e3;
    s0 += e0;
    s1 += e1;
    s2 += e2;
    s3 += e3;
  }
  float tail = 0.0f;
  for (; j < n; ++j) {
    r[j] = std::exp(r[j] - mx);
    tail += r[j];
  }
  v_scale(r, 1.0f / ((s0 + s1) + (s2 + s3) + tail), n);
}

void v_layernorm_row(float* r, const float* gain, const float* bias,
                     std::int64_t n, float eps) {
  __m256 vsum = _mm256_setzero_ps();
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(r + j));
  float mean = hsum8(vsum);
  for (; j < n; ++j) mean += r[j];
  mean /= static_cast<float>(n);

  const __m256 vmean = _mm256_set1_ps(mean);
  __m256 vvar = _mm256_setzero_ps();
  for (j = 0; j + 8 <= n; j += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(r + j), vmean);
    vvar = _mm256_fmadd_ps(d, d, vvar);
  }
  float var = hsum8(vvar);
  for (; j < n; ++j) {
    const float d = r[j] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + eps);
  const __m256 vinv = _mm256_set1_ps(inv);
  for (j = 0; j + 8 <= n; j += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(r + j), vmean);
    const __m256 out = _mm256_fmadd_ps(_mm256_mul_ps(d, vinv),
                                       _mm256_loadu_ps(gain + j),
                                       _mm256_loadu_ps(bias + j));
    _mm256_storeu_ps(r + j, out);
  }
  for (; j < n; ++j) r[j] = (r[j] - mean) * inv * gain[j] + bias[j];
}

void v_gelu(float* p, std::int64_t n) {
  // tanh stays scalar (libm); the cubic feeding it is vectorized.
  constexpr float kSqrt2OverPi = 0.7978845608f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = p[i];
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    p[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

void v_relu(float* p, std::int64_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(p + i, _mm256_max_ps(_mm256_loadu_ps(p + i), zero));
  }
  for (; i < n; ++i) p[i] = std::max(0.0f, p[i]);
}

void v_colwise_max(const float* a, float* out, std::int64_t m,
                   std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) out[j] = a[j];
  for (std::int64_t i = 1; i < m; ++i) {
    const float* row = a + i * n;
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      _mm256_storeu_ps(out + j, _mm256_max_ps(_mm256_loadu_ps(out + j),
                                              _mm256_loadu_ps(row + j)));
    }
    for (; j < n; ++j) out[j] = std::max(out[j], row[j]);
  }
}

// ---- int8 kernels ---------------------------------------------------
//
// The dot micro-kernel runs 32 int8 MACs per maddubs/madd pair (vs 8
// fp32 MACs per FMA), which is where the >= 1.8x over the fp32 GEMM
// comes from. maddubs multiplies u8 x s8 into saturating i16 pair sums;
// with the |a| <= 127 quantization contract the worst pair sum is
// 127*127*2 = 32258 < 32767, so the trick — |a| as the unsigned operand,
// b with a's signs folded in via sign_epi8 — is exact. Integer sums are
// order-free, so no determinism scaffolding is needed.

inline std::int32_t hsum8_epi32(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4e));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xb1));
  return _mm_cvtsi128_si32(s);
}

/// acc += sum over 32 lanes of x[i]*y[i], exactly.
inline __m256i dot_i8_step(__m256i acc, __m256i vx, __m256i vy) {
  const __m256i ax = _mm256_sign_epi8(vx, vx);  // |x|, fits u8
  const __m256i sy = _mm256_sign_epi8(vy, vx);  // y * sign(x); 0 where x==0
  const __m256i p16 = _mm256_maddubs_epi16(ax, sy);
  return _mm256_add_epi32(acc,
                          _mm256_madd_epi16(p16, _mm256_set1_epi16(1)));
}

inline std::int32_t dot_i8_avx(const std::int8_t* x, const std::int8_t* y,
                               std::int64_t k) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t kk = 0;
  for (; kk + 32 <= k; kk += 32) {
    acc = dot_i8_step(
        acc,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + kk)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + kk)));
  }
  std::int32_t sum = hsum8_epi32(acc);
  for (; kk < k; ++kk) {
    sum += static_cast<std::int32_t>(x[kk]) * static_cast<std::int32_t>(y[kk]);
  }
  return sum;
}

/// 2 A-rows x 4 B-rows register tile: 8 i32 accumulator vectors fed by
/// 6 loads per 32-deep k step (the fp32 tile's shape at 4x the MACs).
inline void nt_tile_i8_2x4(const std::int8_t* a0, const std::int8_t* a1,
                           const std::int8_t* b, std::int64_t ldb,
                           std::int64_t k, std::int32_t sum[2][4]) {
  __m256i acc[2][4];
  for (int r = 0; r < 2; ++r) {
    for (int s = 0; s < 4; ++s) acc[r][s] = _mm256_setzero_si256();
  }
  std::int64_t kk = 0;
  for (; kk + 32 <= k; kk += 32) {
    const __m256i av0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + kk));
    const __m256i av1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + kk));
    for (int s = 0; s < 4; ++s) {
      const __m256i bv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + s * ldb + kk));
      acc[0][s] = dot_i8_step(acc[0][s], av0, bv);
      acc[1][s] = dot_i8_step(acc[1][s], av1, bv);
    }
  }
  for (int r = 0; r < 2; ++r) {
    for (int s = 0; s < 4; ++s) sum[r][s] = hsum8_epi32(acc[r][s]);
  }
  for (; kk < k; ++kk) {
    const std::int32_t x0 = a0[kk], x1 = a1[kk];
    for (int s = 0; s < 4; ++s) {
      const std::int32_t bv = b[s * ldb + kk];
      sum[0][s] += x0 * bv;
      sum[1][s] += x1 * bv;
    }
  }
}

void vq_quantize_row(const float* src, std::int8_t* dst, float* scale,
                     std::int64_t n) {
  const __m256 signmask = _mm256_set1_ps(-0.0f);
  __m256 vmax = _mm256_setzero_ps();
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vmax = _mm256_max_ps(vmax,
                         _mm256_andnot_ps(signmask, _mm256_loadu_ps(src + i)));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, vmax);
  float amax = lanes[0];
  for (int l = 1; l < 8; ++l) amax = std::max(amax, lanes[l]);
  for (; i < n; ++i) amax = std::max(amax, std::fabs(src[i]));
  if (amax == 0.0f) {
    *scale = 1.0f;
    std::fill(dst, dst + n, std::int8_t{0});
    return;
  }
  // Same two single-op formulas as the scalar reference, so the int8
  // payload and scale are bit-identical across backends.
  *scale = amax / 127.0f;
  const float inv = 127.0f / amax;
  const __m256 vinv = _mm256_set1_ps(inv);
  i = 0;
  for (; i + 16 <= n; i += 16) {
    // cvtps rounds per MXCSR (nearest-even — same as nearbyintf); the
    // products are bounded by ~127.01 so the saturating packs are exact.
    const __m256i q0 = _mm256_cvtps_epi32(
        _mm256_mul_ps(_mm256_loadu_ps(src + i), vinv));
    const __m256i q1 = _mm256_cvtps_epi32(
        _mm256_mul_ps(_mm256_loadu_ps(src + i + 8), vinv));
    __m256i p16 = _mm256_packs_epi32(q0, q1);
    p16 = _mm256_permute4x64_epi64(p16, 0xd8);  // undo lane interleave
    const __m128i p8 = _mm_packs_epi16(_mm256_castsi256_si128(p16),
                                       _mm256_extracti128_si256(p16, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), p8);
  }
  for (; i < n; ++i) {
    const int q = static_cast<int>(std::nearbyintf(src[i] * inv));
    dst[i] = static_cast<std::int8_t>(std::clamp(q, -127, 127));
  }
}

void vq_dequantize_row(const std::int8_t* src, float* dst, float scale,
                       std::int64_t n) {
  const __m256 vs = _mm256_set1_ps(scale);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i));
    const __m256 f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(f, vs));
  }
  for (; i < n; ++i) dst[i] = scale * static_cast<float>(src[i]);
}

void vq_matmul_nt_i8(const std::int8_t* a, const float* a_scales,
                     const std::int8_t* b, const float* b_scales,
                     const float* bias, float* c, std::int64_t m0,
                     std::int64_t m1, std::int64_t k, std::int64_t n) {
  const auto store = [&](float* cr, std::int64_t j, std::int32_t acc,
                         float as) {
    const float v = static_cast<float>(acc) * (as * b_scales[j]);
    cr[j] = bias != nullptr ? v + bias[j] : v;
  };
  const std::int64_t n4 = n & ~std::int64_t{3};
  std::int64_t i = m0;
  for (; i + 2 <= m1; i += 2) {
    const std::int8_t* a0 = a + i * k;
    const std::int8_t* a1 = a0 + k;
    const float as0 = a_scales[i], as1 = a_scales[i + 1];
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    for (std::int64_t j = 0; j < n4; j += 4) {
      std::int32_t sum[2][4];
      nt_tile_i8_2x4(a0, a1, b + j * k, k, k, sum);
      for (int s = 0; s < 4; ++s) {
        store(c0, j + s, sum[0][s], as0);
        store(c1, j + s, sum[1][s], as1);
      }
    }
    for (std::int64_t j = n4; j < n; ++j) {
      store(c0, j, dot_i8_avx(a0, b + j * k, k), as0);
      store(c1, j, dot_i8_avx(a1, b + j * k, k), as1);
    }
  }
  for (; i < m1; ++i) {
    const std::int8_t* ai = a + i * k;
    const float as = a_scales[i];
    float* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      store(ci, j, dot_i8_avx(ai, b + j * k, k), as);
    }
  }
}

constexpr KernelBackend kAvx2Backend = {
    "avx2",         v_matmul_nn, v_matmul_nt,   v_dot,           v_axpy,
    v_add,          v_scale,     v_softmax_row, v_layernorm_row, v_gelu,
    v_relu,         v_colwise_max,
    vq_quantize_row, vq_dequantize_row, vq_matmul_nt_i8,
};

bool cpu_has_avx2_fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

}  // namespace

const KernelBackend* avx2_backend() {
  static const KernelBackend* backend =
      cpu_has_avx2_fma() ? &kAvx2Backend : nullptr;
  return backend;
}

}  // namespace zenesis::tensor::kernels

#else  // non-x86 or AVX2/FMA not enabled for this TU

namespace zenesis::tensor::kernels {
const KernelBackend* avx2_backend() { return nullptr; }
}  // namespace zenesis::tensor::kernels

#endif
