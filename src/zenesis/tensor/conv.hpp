#pragma once
// Spatial kernels: 2-D convolution, pooling, and bilinear resize over
// [channels, height, width] feature maps. Used by the vision backbones'
// patch embeddings and by the SAM mask decoder's upsampling head.

#include "zenesis/tensor/tensor.hpp"

namespace zenesis::tensor {

/// 2-D convolution.
/// input: [Cin, H, W]; weight: [Cout, Cin, Kh, Kw]; bias: [Cout].
/// Zero padding of `pad` pixels on every side, stride `stride`.
/// Output: [Cout, (H + 2*pad - Kh)/stride + 1, (W + 2*pad - Kw)/stride + 1].
Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int stride = 1, int pad = 0);

/// 2x2 max pooling with stride 2 over [C, H, W]. Odd trailing rows/cols
/// are dropped (floor semantics).
Tensor maxpool2x2(const Tensor& input);

/// Bilinear resize of [C, H, W] to [C, out_h, out_w] (align_corners=false
/// convention, matching the usual segmentation-upsampling behaviour).
Tensor resize_bilinear(const Tensor& input, std::int64_t out_h,
                       std::int64_t out_w);

/// Flattens [C, H, W] into a token sequence [H*W, C] (row-major patches),
/// the layout consumed by the transformer blocks.
Tensor to_tokens(const Tensor& chw);

/// Inverse of to_tokens: [H*W, C] → [C, H, W].
Tensor from_tokens(const Tensor& tokens, std::int64_t h, std::int64_t w);

}  // namespace zenesis::tensor
