// tensor::quant — row quantization over the kernel backends and the
// process-global precision selection (the ZENESIS_PRECISION mirror of
// kernels.cpp's ZENESIS_KERNEL dispatch).

#include "zenesis/tensor/quant.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "zenesis/parallel/parallel_for.hpp"
#include "zenesis/tensor/kernels.hpp"

namespace zenesis::tensor::quant {
namespace {

std::atomic<int> g_precision{-1};  // -1 = unresolved
std::once_flag g_env_once;

void init_from_env() {
  const char* env = std::getenv("ZENESIS_PRECISION");
  std::string warning;
  const Precision chosen = resolve_precision_selector(
      env != nullptr ? std::string_view(env) : std::string_view(), &warning);
  if (!warning.empty()) std::fprintf(stderr, "%s\n", warning.c_str());
  // Keep an explicit set_precision() that raced ahead of lazy init.
  int expected = -1;
  g_precision.compare_exchange_strong(expected, static_cast<int>(chosen),
                                      std::memory_order_release,
                                      std::memory_order_relaxed);
}

}  // namespace

Precision resolve_precision_selector(std::string_view value,
                                     std::string* warning) {
  if (warning != nullptr) warning->clear();
  if (value.empty() || value == "auto" || value == "fp32") {
    return Precision::kFp32;
  }
  if (value == "int8") {
    if (kernels::active().matmul_nt_i8 != nullptr) return Precision::kInt8;
    if (warning != nullptr) {
      *warning = "zenesis: ZENESIS_PRECISION=int8 requested but backend '" +
                 std::string(backend_name()) +
                 "' has no int8 kernels; using 'fp32'";
    }
    return Precision::kFp32;
  }
  if (warning != nullptr) {
    *warning = "zenesis: ZENESIS_PRECISION=" + std::string(value) +
               " is unknown (expected fp32|int8); using 'fp32'";
  }
  return Precision::kFp32;
}

Precision active_precision() {
  int p = g_precision.load(std::memory_order_acquire);
  if (p < 0) {
    std::call_once(g_env_once, init_from_env);
    p = g_precision.load(std::memory_order_acquire);
  }
  return static_cast<Precision>(p);
}

bool set_precision(std::string_view name) {
  if (name == "auto") {
    std::string warning;
    const char* env = std::getenv("ZENESIS_PRECISION");
    const Precision p = resolve_precision_selector(
        env != nullptr ? std::string_view(env) : std::string_view(), &warning);
    g_precision.store(static_cast<int>(p), std::memory_order_release);
    return true;
  }
  if (name == "fp32") {
    g_precision.store(static_cast<int>(Precision::kFp32),
                      std::memory_order_release);
    return true;
  }
  if (name == "int8") {
    if (kernels::active().matmul_nt_i8 == nullptr) return false;
    g_precision.store(static_cast<int>(Precision::kInt8),
                      std::memory_order_release);
    return true;
  }
  return false;
}

const char* precision_name() {
  return active_precision() == Precision::kInt8 ? "int8" : "fp32";
}

bool precision_available(std::string_view name) {
  if (name == "auto" || name == "fp32") return true;
  return name == "int8" && kernels::active().matmul_nt_i8 != nullptr;
}

bool int8_fast_path() {
  return active_precision() == Precision::kInt8 &&
         kernels::active().matmul_nt_i8 != nullptr;
}

QuantizedTensor quantize_rows(const Tensor& t) {
  if (t.rank() != 2) {
    throw std::invalid_argument("quantize_rows: rank 2 required");
  }
  const std::int64_t rows = t.dim(0), cols = t.dim(1);
  QuantizedTensor q;
  q.rows = rows;
  q.cols = cols;
  q.data.resize(static_cast<std::size_t>(rows * cols));
  q.scales.resize(static_cast<std::size_t>(rows));
  const kernels::KernelBackend& backend = kernels::active();
  if (backend.quantize_row == nullptr) {
    throw std::runtime_error(std::string("quantize_rows: backend '") +
                             backend.name + "' has no int8 kernels");
  }
  const float* src = t.data();
  parallel::parallel_for(0, rows, [&](std::int64_t i) {
    backend.quantize_row(src + i * cols, q.data.data() + i * cols,
                         &q.scales[static_cast<std::size_t>(i)], cols);
  });
  return q;
}

Tensor dequantize_rows(const QuantizedTensor& q) {
  Tensor out({q.rows, q.cols});
  const kernels::KernelBackend& backend = kernels::active();
  if (backend.dequantize_row == nullptr) {
    throw std::runtime_error(std::string("dequantize_rows: backend '") +
                             backend.name + "' has no int8 kernels");
  }
  parallel::parallel_for(0, q.rows, [&](std::int64_t i) {
    backend.dequantize_row(q.data.data() + i * q.cols, out.data() + i * q.cols,
                           q.scales[static_cast<std::size_t>(i)], q.cols);
  });
  return out;
}

}  // namespace zenesis::tensor::quant
