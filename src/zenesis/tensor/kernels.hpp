#pragma once
// tensor::kernels — the pluggable compute backend behind ops.hpp.
//
// Every hot tensor kernel (GEMM, fused linear, softmax, layernorm,
// elementwise) bottoms out in one KernelBackend: a table of raw-pointer
// micro-kernels selected once at startup and swappable at runtime. Three
// implementations ship:
//
//   scalar   — the reference: the original straightforward loops. Every
//              other backend is tested against it (1e-4 relative).
//   blocked  — portable C++: register-tiled, k-unrolled, cache-blocked
//              loops the compiler can auto-vectorize. Always available.
//   avx2     — x86 AVX2+FMA intrinsics: 8-wide FMA micro-kernels
//              (2x4-register dot tiles for A·Bᵀ, broadcast-FMA row
//              panels with a packed-B panel for A·B). Registered only
//              when CPUID reports AVX2 and FMA.
//   neon     — AArch64 stub behind the same interface (currently the
//              blocked kernels under the "neon" name; real NEON
//              micro-kernels can slot in without touching callers).
//
// Selection: the first kernel call resolves the backend from the
// ZENESIS_KERNEL environment variable ("scalar" | "blocked" | "avx2" |
// "neon" | "auto"); unset or "auto" picks the best available (avx2 >
// neon > blocked). tensor::set_backend() overrides at any point.
//
// Determinism contract: WITHIN a backend every kernel uses a fixed
// per-output reduction order that does not depend on thread count or on
// where parallel row chunks split, so results are byte-stable across
// ZenesisPipeline thread configurations (the test_volume_parallel
// guarantee). ACROSS backends results agree only to rounding (different
// but fixed accumulation orders); the mask-result cache fingerprint
// folds the backend name in so cached masks never alias across
// backends, and tests/test_kernels.cpp gates end-to-end mask IoU/Dice
// per backend against the scalar reference.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace zenesis::tensor {

namespace kernels {

/// Raw-pointer micro-kernel table. Matrices are dense row-major; GEMM
/// entries compute a row range [m0, m1) of the output so ops.cpp can
/// split work across the ThreadPool without the backend knowing about
/// threading. Every entry overwrites its output range.
struct KernelBackend {
  const char* name;

  /// Rows [m0, m1) of C[M,N] = A[M,K] · B[K,N].
  void (*matmul_nn)(const float* a, const float* b, float* c, std::int64_t m0,
                    std::int64_t m1, std::int64_t k, std::int64_t n);
  /// Rows [m0, m1) of C[M,N] = A[M,K] · B[N,K]ᵀ, plus bias[N] when
  /// `bias` is non-null (the fused linear layer).
  void (*matmul_nt)(const float* a, const float* b, const float* bias,
                    float* c, std::int64_t m0, std::int64_t m1, std::int64_t k,
                    std::int64_t n);
  /// Inner product of two length-n vectors.
  float (*dot)(const float* a, const float* b, std::int64_t n);
  /// y += alpha * x over n elements.
  void (*axpy)(float* y, const float* x, float alpha, std::int64_t n);
  /// a += b over n elements.
  void (*add)(float* a, const float* b, std::int64_t n);
  /// a *= s over n elements.
  void (*scale)(float* a, float s, std::int64_t n);
  /// In-place softmax of one row (max-subtracted, fixed reduction order).
  void (*softmax_row)(float* r, std::int64_t n);
  /// In-place layernorm of one row with gain/bias of size n.
  void (*layernorm_row)(float* r, const float* gain, const float* bias,
                        std::int64_t n, float eps);
  /// In-place tanh-approximation GELU over n elements.
  void (*gelu)(float* p, std::int64_t n);
  /// In-place ReLU over n elements.
  void (*relu)(float* p, std::int64_t n);
  /// out[j] = max over i in [0, m) of a[i*n + j] (column-wise max).
  void (*colwise_max)(const float* a, float* out, std::int64_t m,
                      std::int64_t n);
};

/// The reference backend (always available).
const KernelBackend& scalar_backend();
/// Portable register-blocked backend (always available).
const KernelBackend& blocked_backend();
/// AVX2+FMA backend; nullptr when not compiled in or the CPU lacks
/// AVX2/FMA.
const KernelBackend* avx2_backend();
/// NEON backend stub; nullptr off AArch64.
const KernelBackend* neon_backend();

/// The backend all ops currently dispatch to. First call resolves
/// ZENESIS_KERNEL (invalid or unavailable values fall back to the best
/// available backend with a one-line stderr note).
const KernelBackend& active();

}  // namespace kernels

/// Selects the kernel backend by name: "scalar", "blocked", "avx2",
/// "neon", or "auto" (best available). Returns false — and leaves the
/// active backend unchanged — when the name is unknown or the backend is
/// unavailable on this CPU. Process-global and thread-safe (kernels
/// already running finish on the backend they started with).
bool set_backend(std::string_view name);

/// Name of the active backend ("scalar" | "blocked" | "avx2" | "neon").
const char* backend_name();

/// Backends usable on this machine, in preference order (best first).
std::vector<std::string> available_backends();

/// True when `name` names a backend that set_backend() would accept.
bool backend_available(std::string_view name);

/// Space-separated SIMD capabilities detected at runtime (e.g.
/// "sse4.2 avx avx2 fma avx512f"), independent of which backends were
/// compiled in. Empty when detection is unsupported on this platform.
std::string cpu_feature_string();

}  // namespace zenesis::tensor
