#pragma once
// tensor::kernels — the pluggable compute backend behind ops.hpp.
//
// Every hot tensor kernel (GEMM, fused linear, softmax, layernorm,
// elementwise) bottoms out in one KernelBackend: a table of raw-pointer
// micro-kernels selected once at startup and swappable at runtime. Three
// implementations ship:
//
//   scalar   — the reference: the original straightforward loops. Every
//              other backend is tested against it (1e-4 relative).
//   blocked  — portable C++: register-tiled, k-unrolled, cache-blocked
//              loops the compiler can auto-vectorize. Always available.
//   avx2     — x86 AVX2+FMA intrinsics: 8-wide FMA micro-kernels
//              (2x4-register dot tiles for A·Bᵀ, broadcast-FMA row
//              panels with a packed-B panel for A·B). Registered only
//              when CPUID reports AVX2 and FMA.
//   neon     — AArch64 stub behind the same interface (currently the
//              blocked kernels under the "neon" name; real NEON
//              micro-kernels can slot in without touching callers).
//
// Selection: the first kernel call resolves the backend from the
// ZENESIS_KERNEL environment variable ("scalar" | "blocked" | "avx2" |
// "neon" | "auto"); unset or "auto" picks the best available (avx2 >
// neon > blocked). tensor::set_backend() overrides at any point.
//
// Determinism contract: WITHIN a backend every kernel uses a fixed
// per-output reduction order that does not depend on thread count or on
// where parallel row chunks split, so results are byte-stable across
// ZenesisPipeline thread configurations (the test_volume_parallel
// guarantee). ACROSS backends results agree only to rounding (different
// but fixed accumulation orders); the mask-result cache fingerprint
// folds the backend name in so cached masks never alias across
// backends, and tests/test_kernels.cpp gates end-to-end mask IoU/Dice
// per backend against the scalar reference.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace zenesis::tensor {

namespace kernels {

/// Raw-pointer micro-kernel table. Matrices are dense row-major; GEMM
/// entries compute a row range [m0, m1) of the output so ops.cpp can
/// split work across the ThreadPool without the backend knowing about
/// threading. Every entry overwrites its output range.
struct KernelBackend {
  const char* name;

  /// Rows [m0, m1) of C[M,N] = A[M,K] · B[K,N].
  void (*matmul_nn)(const float* a, const float* b, float* c, std::int64_t m0,
                    std::int64_t m1, std::int64_t k, std::int64_t n);
  /// Rows [m0, m1) of C[M,N] = A[M,K] · B[N,K]ᵀ, plus bias[N] when
  /// `bias` is non-null (the fused linear layer).
  void (*matmul_nt)(const float* a, const float* b, const float* bias,
                    float* c, std::int64_t m0, std::int64_t m1, std::int64_t k,
                    std::int64_t n);
  /// Inner product of two length-n vectors.
  float (*dot)(const float* a, const float* b, std::int64_t n);
  /// y += alpha * x over n elements.
  void (*axpy)(float* y, const float* x, float alpha, std::int64_t n);
  /// a += b over n elements.
  void (*add)(float* a, const float* b, std::int64_t n);
  /// a *= s over n elements.
  void (*scale)(float* a, float s, std::int64_t n);
  /// In-place softmax of one row (max-subtracted, fixed reduction order).
  void (*softmax_row)(float* r, std::int64_t n);
  /// In-place layernorm of one row with gain/bias of size n.
  void (*layernorm_row)(float* r, const float* gain, const float* bias,
                        std::int64_t n, float eps);
  /// In-place tanh-approximation GELU over n elements.
  void (*gelu)(float* p, std::int64_t n);
  /// In-place ReLU over n elements.
  void (*relu)(float* p, std::int64_t n);
  /// out[j] = max over i in [0, m) of a[i*n + j] (column-wise max).
  void (*colwise_max)(const float* a, float* out, std::int64_t m,
                      std::int64_t n);

  // ---- int8 dynamic-quantization kernels (see quant.hpp) ----
  //
  // The quantization scheme is symmetric per-row: scale = max|row|/127,
  // values clamped to [-127, 127] (the -128 slot is never produced, so
  // |q| <= 127 — which keeps the AVX2 maddubs pair-sums exact, see
  // kernels_avx2.cpp). Integer accumulation is exact, so within a
  // backend int8 results are byte-stable across any thread split; across
  // backends the int8 payloads are bit-identical and only the final
  // float requantize can differ by rounding.

  /// Quantizes n floats to int8: *scale = max|src|/127 (1.0 for an
  /// all-zero row), dst[i] = clamp(rint(src[i] * (127/max|src|)), ±127).
  /// rint is round-to-nearest-even (the default FP environment), which
  /// every backend matches bit-exactly.
  void (*quantize_row)(const float* src, std::int8_t* dst, float* scale,
                       std::int64_t n);
  /// dst[i] = scale * src[i] over n elements.
  void (*dequantize_row)(const std::int8_t* src, float* dst, float scale,
                         std::int64_t n);
  /// Rows [m0, m1) of C[M,N] = (Aq[M,K] · Bq[N,K]ᵀ) requantized:
  /// C[i][j] = float(acc_i32) * (a_scales[i] * b_scales[j]) + bias[j]
  /// with a saturating-free exact i32 accumulator (|q| <= 127 keeps any
  /// K <= ~133000 overflow-free). `bias` is nullable, as in matmul_nt.
  /// May be nullptr on backends without int8 kernels — callers must
  /// check (ops.cpp falls back to the fp32 path).
  void (*matmul_nt_i8)(const std::int8_t* a, const float* a_scales,
                       const std::int8_t* b, const float* b_scales,
                       const float* bias, float* c, std::int64_t m0,
                       std::int64_t m1, std::int64_t k, std::int64_t n);
};

/// The reference backend (always available).
const KernelBackend& scalar_backend();
/// Portable register-blocked backend (always available).
const KernelBackend& blocked_backend();
/// AVX2+FMA backend; nullptr when not compiled in or the CPU lacks
/// AVX2/FMA.
const KernelBackend* avx2_backend();
/// NEON backend stub; nullptr off AArch64.
const KernelBackend* neon_backend();

/// The backend all ops currently dispatch to. First call resolves
/// ZENESIS_KERNEL (invalid or unavailable values fall back to the best
/// available backend with a one-line stderr note).
const KernelBackend& active();

/// The ZENESIS_KERNEL resolution rule as a pure function (the env init
/// calls this exactly once per process): maps a selector value to the
/// backend it lands on. When `value` is unknown or unavailable on this
/// CPU, returns the best available backend and sets `*warning` to the
/// one-line fallback note; otherwise `*warning` is cleared. Exposed so
/// tests can cover the fallback path without forking a process.
const KernelBackend& resolve_selector(std::string_view value,
                                      std::string* warning);

}  // namespace kernels

/// Selects the kernel backend by name: "scalar", "blocked", "avx2",
/// "neon", or "auto" (best available). Returns false — and leaves the
/// active backend unchanged — when the name is unknown or the backend is
/// unavailable on this CPU. Process-global and thread-safe (kernels
/// already running finish on the backend they started with).
bool set_backend(std::string_view name);

/// Name of the active backend ("scalar" | "blocked" | "avx2" | "neon").
const char* backend_name();

/// Backends usable on this machine, in preference order (best first).
std::vector<std::string> available_backends();

/// True when `name` names a backend that set_backend() would accept.
bool backend_available(std::string_view name);

/// True when `name` names an available backend whose table provides the
/// int8 kernels (quantize/dequantize/matmul_nt_i8). "auto" reports on
/// the backend auto-selection would pick. PipelineConfig::validate()
/// uses this to reject precision="int8" against a backend that cannot
/// run it.
bool backend_supports_int8(std::string_view name);

/// Space-separated SIMD capabilities detected at runtime (e.g.
/// "sse4.2 avx avx2 fma avx512f"), independent of which backends were
/// compiled in. Empty when detection is unsupported on this platform.
std::string cpu_feature_string();

}  // namespace zenesis::tensor
