#include "zenesis/tensor/init.hpp"

#include <cmath>
#include <stdexcept>

#include "zenesis/parallel/rng.hpp"

namespace zenesis::tensor {

Tensor xavier_uniform(std::int64_t out, std::int64_t in, std::uint64_t seed,
                      std::uint64_t layer_id) {
  Tensor w({out, in});
  parallel::Rng rng(seed, layer_id);
  const double limit = std::sqrt(6.0 / static_cast<double>(in + out));
  for (float& v : w.flat()) {
    v = static_cast<float>(rng.uniform(-limit, limit));
  }
  return w;
}

Tensor he_normal_conv(std::int64_t cout, std::int64_t cin, std::int64_t kh,
                      std::int64_t kw, std::uint64_t seed,
                      std::uint64_t layer_id) {
  Tensor w({cout, cin, kh, kw});
  parallel::Rng rng(seed, layer_id);
  const double stddev = std::sqrt(2.0 / static_cast<double>(cin * kh * kw));
  for (float& v : w.flat()) {
    v = static_cast<float>(rng.normal(0.0, stddev));
  }
  return w;
}

Tensor zeros(std::int64_t n) { return Tensor({n}); }

Tensor ones(std::int64_t n) {
  Tensor t({n});
  t.fill(1.0f);
  return t;
}

Tensor sinusoidal_positions(std::int64_t length, std::int64_t dim) {
  if (dim % 2 != 0) {
    throw std::invalid_argument("sinusoidal_positions: dim must be even");
  }
  Tensor p({length, dim});
  for (std::int64_t pos = 0; pos < length; ++pos) {
    for (std::int64_t i = 0; i < dim / 2; ++i) {
      const double freq =
          std::pow(10000.0, -2.0 * static_cast<double>(i) / static_cast<double>(dim));
      const double angle = static_cast<double>(pos) * freq;
      p.at(pos, 2 * i) = static_cast<float>(std::sin(angle));
      p.at(pos, 2 * i + 1) = static_cast<float>(std::cos(angle));
    }
  }
  return p;
}

Tensor sinusoidal_positions_2d(std::int64_t h, std::int64_t w,
                               std::int64_t dim) {
  if (dim % 4 != 0) {
    throw std::invalid_argument("sinusoidal_positions_2d: dim must be divisible by 4");
  }
  const std::int64_t half = dim / 2;
  Tensor py = sinusoidal_positions(h, half);
  Tensor px = sinusoidal_positions(w, half);
  Tensor p({h * w, dim});
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      for (std::int64_t i = 0; i < half; ++i) {
        p.at(y * w + x, i) = py.at(y, i);
        p.at(y * w + x, half + i) = px.at(x, i);
      }
    }
  }
  return p;
}

}  // namespace zenesis::tensor
