#pragma once
// Deterministic weight construction for the surrogate foundation models.
//
// The paper uses pretrained GroundingDINO/SAM checkpoints; we have no
// AI-ready weights, so each layer's parameters are generated procedurally
// from a (seed, layer-id) pair. Xavier/He scaling keeps activations well
// conditioned so the surrogate transformers behave like initialized (and
// feature-engineered, see models/) networks rather than noise amplifiers.

#include <cstdint>

#include "zenesis/tensor/tensor.hpp"

namespace zenesis::tensor {

/// Xavier/Glorot-uniform init for a [out, in] linear weight.
Tensor xavier_uniform(std::int64_t out, std::int64_t in, std::uint64_t seed,
                      std::uint64_t layer_id);

/// He-normal init for conv weights [cout, cin, kh, kw].
Tensor he_normal_conv(std::int64_t cout, std::int64_t cin, std::int64_t kh,
                      std::int64_t kw, std::uint64_t seed,
                      std::uint64_t layer_id);

/// Zero bias of length n.
Tensor zeros(std::int64_t n);

/// All-ones vector of length n (layernorm gain).
Tensor ones(std::int64_t n);

/// Sinusoidal positional embeddings [length, dim] (transformer standard).
Tensor sinusoidal_positions(std::int64_t length, std::int64_t dim);

/// 2-D sinusoidal positional embeddings for an h x w patch grid → [h*w, dim].
/// dim must be divisible by 4.
Tensor sinusoidal_positions_2d(std::int64_t h, std::int64_t w,
                               std::int64_t dim);

}  // namespace zenesis::tensor
