#include "zenesis/tensor/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace zenesis::tensor {

std::int64_t Tensor::count(const Shape& s) {
  std::int64_t n = 1;
  for (std::int64_t d : s) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= d;
  }
  return n;
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      numel_(count(shape_)),
      data_(static_cast<std::size_t>(numel_), 0.0f) {}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), numel_(count(shape_)), data_(std::move(values)) {
  if (static_cast<std::int64_t>(data_.size()) != numel_) {
    throw std::invalid_argument("Tensor: value count does not match shape");
  }
}

Tensor::Tensor(std::initializer_list<std::int64_t> shape,
               std::vector<float> values)
    : Tensor(Shape(shape), std::move(values)) {}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (count(new_shape) != numel_) {
    throw std::invalid_argument("Tensor::reshaped: element count mismatch");
  }
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.numel_ = numel_;
  t.data_ = data_;
  return t;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

}  // namespace zenesis::tensor
