// Scalar reference backend: the original straightforward loops, kept
// byte-for-byte compatible with the pre-backend ops.cpp so historical
// results (and the determinism baselines) reproduce exactly. Every other
// backend is equivalence-tested against this table.

#include <algorithm>
#include <cmath>

#include "zenesis/tensor/kernels.hpp"

namespace zenesis::tensor::kernels {
namespace {

// Row-parallel, k-blocked i-k-j loop order: B rows stream through cache,
// C rows stay resident. (The historical matmul loop.)
void s_matmul_nn(const float* a, const float* b, float* c, std::int64_t m0,
                 std::int64_t m1, std::int64_t k, std::int64_t n) {
  constexpr std::int64_t kBlock = 64;
  for (std::int64_t i = m0; i < m1; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    std::fill(ci, ci + n, 0.0f);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlock) {
      const std::int64_t k1 = std::min(k, k0 + kBlock);
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        const float av = ai[kk];
        const float* bk = b + kk * n;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bk[j];
      }
    }
  }
}

void s_matmul_nt(const float* a, const float* b, const float* bias, float* c,
                 std::int64_t m0, std::int64_t m1, std::int64_t k,
                 std::int64_t n) {
  for (std::int64_t i = m0; i < m1; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] = bias != nullptr ? acc + bias[j] : acc;
    }
  }
}

float s_dot(const float* a, const float* b, std::int64_t n) {
  float acc = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void s_axpy(float* y, const float* x, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void s_add(float* a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] += b[i];
}

void s_scale(float* a, float s, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] *= s;
}

void s_softmax_row(float* r, std::int64_t n) {
  float mx = r[0];
  for (std::int64_t j = 1; j < n; ++j) mx = std::max(mx, r[j]);
  float sum = 0.0f;
  for (std::int64_t j = 0; j < n; ++j) {
    r[j] = std::exp(r[j] - mx);
    sum += r[j];
  }
  const float inv = 1.0f / sum;
  for (std::int64_t j = 0; j < n; ++j) r[j] *= inv;
}

void s_layernorm_row(float* r, const float* gain, const float* bias,
                     std::int64_t n, float eps) {
  float mean = 0.0f;
  for (std::int64_t j = 0; j < n; ++j) mean += r[j];
  mean /= static_cast<float>(n);
  float var = 0.0f;
  for (std::int64_t j = 0; j < n; ++j) {
    const float d = r[j] - mean;
    var += d * d;
  }
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + eps);
  for (std::int64_t j = 0; j < n; ++j) {
    r[j] = (r[j] - mean) * inv * gain[j] + bias[j];
  }
}

void s_gelu(float* p, std::int64_t n) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = p[i];
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    p[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

void s_relu(float* p, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) p[i] = std::max(0.0f, p[i]);
}

void s_colwise_max(const float* a, float* out, std::int64_t m,
                   std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) out[j] = a[j];
  for (std::int64_t i = 1; i < m; ++i) {
    const float* row = a + i * n;
    for (std::int64_t j = 0; j < n; ++j) out[j] = std::max(out[j], row[j]);
  }
}

// ---- int8 reference kernels -----------------------------------------
//
// The scale/inverse formulas (amax/127 and 127/amax — NOT 1/scale) and
// nearbyint rounding are the cross-backend contract: each is a single
// float operation, so every backend produces bit-identical int8
// payloads and scales. See kernels.hpp.

void s_quantize_row(const float* src, std::int8_t* dst, float* scale,
                    std::int64_t n) {
  float amax = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(src[i]));
  if (amax == 0.0f) {
    *scale = 1.0f;
    std::fill(dst, dst + n, std::int8_t{0});
    return;
  }
  *scale = amax / 127.0f;
  const float inv = 127.0f / amax;
  for (std::int64_t i = 0; i < n; ++i) {
    const float q = std::nearbyintf(src[i] * inv);  // nearest-even
    dst[i] = static_cast<std::int8_t>(
        std::clamp(static_cast<int>(q), -127, 127));
  }
}

void s_dequantize_row(const std::int8_t* src, float* dst, float scale,
                      std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] = scale * static_cast<float>(src[i]);
  }
}

void s_matmul_nt_i8(const std::int8_t* a, const float* a_scales,
                    const std::int8_t* b, const float* b_scales,
                    const float* bias, float* c, std::int64_t m0,
                    std::int64_t m1, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = m0; i < m1; ++i) {
    const std::int8_t* ai = a + i * k;
    float* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int8_t* bj = b + j * k;
      std::int32_t acc = 0;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(ai[kk]) *
               static_cast<std::int32_t>(bj[kk]);
      }
      const float v =
          static_cast<float>(acc) * (a_scales[i] * b_scales[j]);
      ci[j] = bias != nullptr ? v + bias[j] : v;
    }
  }
}

constexpr KernelBackend kScalarBackend = {
    "scalar",       s_matmul_nn, s_matmul_nt, s_dot,  s_axpy,
    s_add,          s_scale,     s_softmax_row, s_layernorm_row,
    s_gelu,         s_relu,      s_colwise_max,
    s_quantize_row, s_dequantize_row, s_matmul_nt_i8,
};

}  // namespace

const KernelBackend& scalar_backend() { return kScalarBackend; }

}  // namespace zenesis::tensor::kernels
