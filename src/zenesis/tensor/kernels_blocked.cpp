// Blocked portable backend: register-tiled, k-unrolled, cache-blocked
// C++ loops with no intrinsics — the fallback fast path on any CPU. The
// compiler auto-vectorizes the broadcast-FMA j-loops (no reduction
// carried across lanes); dot-shaped reductions use four fixed k-strided
// partial sums so the order is deterministic but unrollable.
//
// Determinism: each output element's accumulation order depends only on
// (k) — never on the row range a thread was handed or on neighbouring
// rows in the same register tile — so any parallel split of rows
// reproduces the serial result byte-for-byte.

#include <algorithm>
#include <cmath>

#include "zenesis/tensor/kernels.hpp"

namespace zenesis::tensor::kernels {
namespace {

constexpr std::int64_t kKBlock = 256;  // A/B panel depth (L1-resident rows)

// ---- C = A · B (rows stream, broadcast-FMA over j) -------------------
//
// Four C rows are held in registers per pass so each loaded B row feeds
// four FMA streams; j has no loop-carried dependence, so the inner loop
// vectorizes without -ffast-math.

void nn_row_panel4(const float* a, const float* b, float* c, std::int64_t i,
                   std::int64_t k, std::int64_t n) {
  // Named __restrict row pointers (not an array of pointers): the
  // compiler then proves the four C streams and the B row are disjoint
  // and vectorizes the j-loop as four independent FMA streams.
  const float* a0 = a + (i + 0) * k;
  const float* a1 = a + (i + 1) * k;
  const float* a2 = a + (i + 2) * k;
  const float* a3 = a + (i + 3) * k;
  float* __restrict c0 = c + (i + 0) * n;
  float* __restrict c1 = c + (i + 1) * n;
  float* __restrict c2 = c + (i + 2) * n;
  float* __restrict c3 = c + (i + 3) * n;
  std::fill(c0, c0 + n, 0.0f);
  std::fill(c1, c1 + n, 0.0f);
  std::fill(c2, c2 + n, 0.0f);
  std::fill(c3, c3 + n, 0.0f);
  for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::int64_t k1 = std::min(k, k0 + kKBlock);
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      const float* __restrict bk = b + kk * n;
      const float av0 = a0[kk], av1 = a1[kk], av2 = a2[kk], av3 = a3[kk];
      for (std::int64_t j = 0; j < n; ++j) {
        const float bv = bk[j];
        c0[j] += av0 * bv;
        c1[j] += av1 * bv;
        c2[j] += av2 * bv;
        c3[j] += av3 * bv;
      }
    }
  }
}

void nn_row_panel1(const float* a, const float* b, float* c, std::int64_t i,
                   std::int64_t k, std::int64_t n) {
  const float* ai = a + i * k;
  float* __restrict ci = c + i * n;
  std::fill(ci, ci + n, 0.0f);
  for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
    const std::int64_t k1 = std::min(k, k0 + kKBlock);
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      const float* __restrict bk = b + kk * n;
      const float av = ai[kk];
      for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bk[j];
    }
  }
}

void b_matmul_nn(const float* a, const float* b, float* c, std::int64_t m0,
                 std::int64_t m1, std::int64_t k, std::int64_t n) {
  std::int64_t i = m0;
  for (; i + 4 <= m1; i += 4) nn_row_panel4(a, b, c, i, k, n);
  for (; i < m1; ++i) nn_row_panel1(a, b, c, i, k, n);
}

// ---- C = A · Bᵀ (dot tiles with 4-way k-partial sums) ----------------
//
// Each (i, j) dot product accumulates into four partial sums over k
// lanes {0,1,2,3} mod 4, combined as (s0+s1)+(s2+s3) — a fixed order
// that unrolls/vectorizes yet never varies with tiling or threading.

inline float dot4(const float* x, const float* y, std::int64_t k) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::int64_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    s0 += x[kk + 0] * y[kk + 0];
    s1 += x[kk + 1] * y[kk + 1];
    s2 += x[kk + 2] * y[kk + 2];
    s3 += x[kk + 3] * y[kk + 3];
  }
  float tail = 0.0f;
  for (; kk < k; ++kk) tail += x[kk] * y[kk];
  return (s0 + s1) + (s2 + s3) + tail;
}

void b_matmul_nt(const float* a, const float* b, const float* bias, float* c,
                 std::int64_t m0, std::int64_t m1, std::int64_t k,
                 std::int64_t n) {
  constexpr std::int64_t kJTile = 64;  // B rows revisited while L1-hot
  for (std::int64_t j0 = 0; j0 < n; j0 += kJTile) {
    const std::int64_t j1 = std::min(n, j0 + kJTile);
    for (std::int64_t i = m0; i < m1; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      for (std::int64_t j = j0; j < j1; ++j) {
        const float acc = dot4(ai, b + j * k, k);
        ci[j] = bias != nullptr ? acc + bias[j] : acc;
      }
    }
  }
}

float b_dot(const float* a, const float* b, std::int64_t n) {
  return dot4(a, b, n);
}

void b_axpy(float* y, const float* x, float alpha, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void b_add(float* a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] += b[i];
}

void b_scale(float* a, float s, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] *= s;
}

void b_softmax_row(float* r, std::int64_t n) {
  // Single sweep for the max (vectorizable fixed-lane max), then a fused
  // exp+sum pass with 4-way partials, then one scale pass.
  float mx = r[0];
  for (std::int64_t j = 1; j < n; ++j) mx = std::max(mx, r[j]);
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const float e0 = std::exp(r[j + 0] - mx);
    const float e1 = std::exp(r[j + 1] - mx);
    const float e2 = std::exp(r[j + 2] - mx);
    const float e3 = std::exp(r[j + 3] - mx);
    r[j + 0] = e0;
    r[j + 1] = e1;
    r[j + 2] = e2;
    r[j + 3] = e3;
    s0 += e0;
    s1 += e1;
    s2 += e2;
    s3 += e3;
  }
  float tail = 0.0f;
  for (; j < n; ++j) {
    r[j] = std::exp(r[j] - mx);
    tail += r[j];
  }
  const float inv = 1.0f / ((s0 + s1) + (s2 + s3) + tail);
  for (std::int64_t jj = 0; jj < n; ++jj) r[jj] *= inv;
}

void b_layernorm_row(float* r, const float* gain, const float* bias,
                     std::int64_t n, float eps) {
  float m0 = 0.0f, m1 = 0.0f, m2 = 0.0f, m3 = 0.0f;
  float v0 = 0.0f, v1 = 0.0f, v2 = 0.0f, v3 = 0.0f;
  std::int64_t j = 0;
  for (; j + 4 <= n; j += 4) {
    m0 += r[j + 0];
    m1 += r[j + 1];
    m2 += r[j + 2];
    m3 += r[j + 3];
  }
  float mt = 0.0f;
  for (; j < n; ++j) mt += r[j];
  const float mean = ((m0 + m1) + (m2 + m3) + mt) / static_cast<float>(n);
  for (j = 0; j + 4 <= n; j += 4) {
    const float d0 = r[j + 0] - mean, d1 = r[j + 1] - mean;
    const float d2 = r[j + 2] - mean, d3 = r[j + 3] - mean;
    v0 += d0 * d0;
    v1 += d1 * d1;
    v2 += d2 * d2;
    v3 += d3 * d3;
  }
  float vt = 0.0f;
  for (; j < n; ++j) {
    const float d = r[j] - mean;
    vt += d * d;
  }
  const float var = ((v0 + v1) + (v2 + v3) + vt) / static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + eps);
  for (j = 0; j < n; ++j) r[j] = (r[j] - mean) * inv * gain[j] + bias[j];
}

void b_gelu(float* p, std::int64_t n) {
  constexpr float kSqrt2OverPi = 0.7978845608f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float v = p[i];
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    p[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

void b_relu(float* p, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) p[i] = std::max(0.0f, p[i]);
}

void b_colwise_max(const float* a, float* out, std::int64_t m,
                   std::int64_t n) {
  for (std::int64_t j = 0; j < n; ++j) out[j] = a[j];
  for (std::int64_t i = 1; i < m; ++i) {
    const float* row = a + i * n;
    for (std::int64_t j = 0; j < n; ++j) out[j] = std::max(out[j], row[j]);
  }
}

// ---- int8 portable kernels ------------------------------------------
//
// Integer accumulation is exact in any order, so unlike the float
// kernels there is no reduction-order contract to preserve here — the
// loops are free to unroll however the compiler likes. The scale
// formulas mirror kernels_scalar.cpp bit-for-bit (single float ops).

void q_quantize_row(const float* src, std::int8_t* dst, float* scale,
                    std::int64_t n) {
  float amax = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(src[i]));
  if (amax == 0.0f) {
    *scale = 1.0f;
    std::fill(dst, dst + n, std::int8_t{0});
    return;
  }
  *scale = amax / 127.0f;
  const float inv = 127.0f / amax;
  for (std::int64_t i = 0; i < n; ++i) {
    const int q = static_cast<int>(std::nearbyintf(src[i] * inv));
    dst[i] = static_cast<std::int8_t>(std::clamp(q, -127, 127));
  }
}

void q_dequantize_row(const std::int8_t* src, float* dst, float scale,
                      std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    dst[i] = scale * static_cast<float>(src[i]);
  }
}

/// 4-way unrolled int8 dot with i32 partials: exact, so the partials are
/// a pure throughput device (the compiler widens them to SIMD lanes).
inline std::int32_t dot_i8(const std::int8_t* x, const std::int8_t* y,
                           std::int64_t k) {
  std::int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  std::int64_t kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    s0 += static_cast<std::int32_t>(x[kk + 0]) * y[kk + 0];
    s1 += static_cast<std::int32_t>(x[kk + 1]) * y[kk + 1];
    s2 += static_cast<std::int32_t>(x[kk + 2]) * y[kk + 2];
    s3 += static_cast<std::int32_t>(x[kk + 3]) * y[kk + 3];
  }
  std::int32_t tail = 0;
  for (; kk < k; ++kk) tail += static_cast<std::int32_t>(x[kk]) * y[kk];
  return s0 + s1 + s2 + s3 + tail;
}

void q_matmul_nt_i8(const std::int8_t* a, const float* a_scales,
                    const std::int8_t* b, const float* b_scales,
                    const float* bias, float* c, std::int64_t m0,
                    std::int64_t m1, std::int64_t k, std::int64_t n) {
  constexpr std::int64_t kJTile = 64;  // B rows revisited while L1-hot
  for (std::int64_t j0 = 0; j0 < n; j0 += kJTile) {
    const std::int64_t j1 = std::min(n, j0 + kJTile);
    for (std::int64_t i = m0; i < m1; ++i) {
      const std::int8_t* ai = a + i * k;
      const float as = a_scales[i];
      float* ci = c + i * n;
      for (std::int64_t j = j0; j < j1; ++j) {
        const float v = static_cast<float>(dot_i8(ai, b + j * k, k)) *
                        (as * b_scales[j]);
        ci[j] = bias != nullptr ? v + bias[j] : v;
      }
    }
  }
}

constexpr KernelBackend kBlockedBackend = {
    "blocked",      b_matmul_nn, b_matmul_nt,   b_dot,           b_axpy,
    b_add,          b_scale,     b_softmax_row, b_layernorm_row, b_gelu,
    b_relu,         b_colwise_max,
    q_quantize_row, q_dequantize_row, q_matmul_nt_i8,
};

}  // namespace

const KernelBackend& blocked_backend() { return kBlockedBackend; }

// AArch64 stub: the NEON backend currently reuses the blocked kernels
// under the "neon" name (the compiler emits NEON code for them at -O2);
// hand-written NEON micro-kernels can replace entries here without any
// caller change. Off AArch64 the backend is absent.
#if defined(__aarch64__)
namespace {
constexpr KernelBackend kNeonBackend = {
    "neon",         b_matmul_nn, b_matmul_nt,   b_dot,           b_axpy,
    b_add,          b_scale,     b_softmax_row, b_layernorm_row, b_gelu,
    b_relu,         b_colwise_max,
    q_quantize_row, q_dequantize_row, q_matmul_nt_i8,
};
}  // namespace
const KernelBackend* neon_backend() { return &kNeonBackend; }
#else
const KernelBackend* neon_backend() { return nullptr; }
#endif

}  // namespace zenesis::tensor::kernels
