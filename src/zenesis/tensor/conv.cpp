#include "zenesis/tensor/conv.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "zenesis/parallel/parallel_for.hpp"
#include "zenesis/tensor/kernels.hpp"

namespace zenesis::tensor {
namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

}  // namespace

Tensor conv2d(const Tensor& input, const Tensor& weight, const Tensor& bias,
              int stride, int pad) {
  require(input.rank() == 3, "conv2d: input must be [C,H,W]");
  require(weight.rank() == 4, "conv2d: weight must be [Cout,Cin,Kh,Kw]");
  require(stride >= 1, "conv2d: stride must be >= 1");
  require(pad >= 0, "conv2d: pad must be >= 0");
  const std::int64_t cin = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t cout = weight.dim(0), kh = weight.dim(2),
                     kw = weight.dim(3);
  require(weight.dim(1) == cin, "conv2d: channel mismatch");
  require(bias.rank() == 1 && bias.dim(0) == cout, "conv2d: bias mismatch");
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kw) / stride + 1;
  require(oh > 0 && ow > 0, "conv2d: kernel larger than padded input");

  Tensor out({cout, oh, ow});
  const kernels::KernelBackend& backend = kernels::active();
  parallel::parallel_for(0, cout * oh, [&](std::int64_t idx) {
    const std::int64_t oc = idx / oh;
    const std::int64_t oy = idx % oh;
    const std::int64_t iy0 = oy * stride - pad;
    float* out_row = out.data() + (oc * oh + oy) * ow;
    std::fill(out_row, out_row + ow, bias.at(oc));
    if (stride == 1) {
      // Each (ic, ky, kx) tap touches a contiguous span of the output
      // row: out[ox] += w * in[ox + kx - pad]. That is an axpy, so the
      // whole inner loop runs on the backend's vector unit. Tap order
      // (ic, ky, kx) matches the historical scalar accumulation order.
      for (std::int64_t ic = 0; ic < cin; ++ic) {
        for (std::int64_t ky = 0; ky < kh; ++ky) {
          const std::int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          const float* in_row = input.data() + (ic * h + iy) * w;
          const float* w_row =
              weight.data() + ((oc * cin + ic) * kh + ky) * kw;
          for (std::int64_t kx = 0; kx < kw; ++kx) {
            const std::int64_t shift = kx - pad;  // ix = ox + shift
            const std::int64_t lo = std::max<std::int64_t>(0, -shift);
            const std::int64_t hi = std::min<std::int64_t>(ow, w - shift);
            if (lo >= hi) continue;
            backend.axpy(out_row + lo, in_row + lo + shift, w_row[kx],
                         hi - lo);
          }
        }
      }
    } else {
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        const std::int64_t ix0 = ox * stride - pad;
        float acc = out_row[ox];
        for (std::int64_t ic = 0; ic < cin; ++ic) {
          for (std::int64_t ky = 0; ky < kh; ++ky) {
            const std::int64_t iy = iy0 + ky;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kx = 0; kx < kw; ++kx) {
              const std::int64_t ix = ix0 + kx;
              if (ix < 0 || ix >= w) continue;
              acc += input.at(ic, iy, ix) * weight.at(oc, ic, ky, kx);
            }
          }
        }
        out_row[ox] = acc;
      }
    }
  });
  return out;
}

Tensor maxpool2x2(const Tensor& input) {
  require(input.rank() == 3, "maxpool2x2: input must be [C,H,W]");
  const std::int64_t c = input.dim(0), h = input.dim(1) / 2,
                     w = input.dim(2) / 2;
  require(h > 0 && w > 0, "maxpool2x2: input too small");
  Tensor out({c, h, w});
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        const float a = input.at(ic, 2 * y, 2 * x);
        const float b = input.at(ic, 2 * y, 2 * x + 1);
        const float cc = input.at(ic, 2 * y + 1, 2 * x);
        const float d = input.at(ic, 2 * y + 1, 2 * x + 1);
        out.at(ic, y, x) = std::max(std::max(a, b), std::max(cc, d));
      }
    }
  }
  return out;
}

Tensor resize_bilinear(const Tensor& input, std::int64_t out_h,
                       std::int64_t out_w) {
  require(input.rank() == 3, "resize_bilinear: input must be [C,H,W]");
  require(out_h > 0 && out_w > 0, "resize_bilinear: output dims must be > 0");
  const std::int64_t c = input.dim(0), h = input.dim(1), w = input.dim(2);
  Tensor out({c, out_h, out_w});
  const float sy = static_cast<float>(h) / static_cast<float>(out_h);
  const float sx = static_cast<float>(w) / static_cast<float>(out_w);
  parallel::parallel_for(0, c * out_h, [&](std::int64_t idx) {
    const std::int64_t ic = idx / out_h;
    const std::int64_t oy = idx % out_h;
    const float fy = (static_cast<float>(oy) + 0.5f) * sy - 0.5f;
    const std::int64_t y0 =
        std::clamp<std::int64_t>(static_cast<std::int64_t>(std::floor(fy)), 0, h - 1);
    const std::int64_t y1 = std::min<std::int64_t>(y0 + 1, h - 1);
    const float wy = std::clamp(fy - static_cast<float>(y0), 0.0f, 1.0f);
    for (std::int64_t ox = 0; ox < out_w; ++ox) {
      const float fx = (static_cast<float>(ox) + 0.5f) * sx - 0.5f;
      const std::int64_t x0 = std::clamp<std::int64_t>(
          static_cast<std::int64_t>(std::floor(fx)), 0, w - 1);
      const std::int64_t x1 = std::min<std::int64_t>(x0 + 1, w - 1);
      const float wx = std::clamp(fx - static_cast<float>(x0), 0.0f, 1.0f);
      const float top = input.at(ic, y0, x0) * (1.0f - wx) + input.at(ic, y0, x1) * wx;
      const float bot = input.at(ic, y1, x0) * (1.0f - wx) + input.at(ic, y1, x1) * wx;
      out.at(ic, oy, ox) = top * (1.0f - wy) + bot * wy;
    }
  });
  return out;
}

Tensor to_tokens(const Tensor& chw) {
  require(chw.rank() == 3, "to_tokens: input must be [C,H,W]");
  const std::int64_t c = chw.dim(0), h = chw.dim(1), w = chw.dim(2);
  Tensor out({h * w, c});
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        out.at(y * w + x, ic) = chw.at(ic, y, x);
      }
    }
  }
  return out;
}

Tensor from_tokens(const Tensor& tokens, std::int64_t h, std::int64_t w) {
  require(tokens.rank() == 2, "from_tokens: input must be [L,C]");
  require(tokens.dim(0) == h * w, "from_tokens: token count != h*w");
  const std::int64_t c = tokens.dim(1);
  Tensor out({c, h, w});
  for (std::int64_t ic = 0; ic < c; ++ic) {
    for (std::int64_t y = 0; y < h; ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        out.at(ic, y, x) = tokens.at(y * w + x, ic);
      }
    }
  }
  return out;
}

}  // namespace zenesis::tensor
