#pragma once
// Core numeric ops for the surrogate transformer models.
//
// Everything here operates on rank-2 tensors interpreted as
// [rows, features] unless stated otherwise. These functions are thin
// forwarders: shape checking, output allocation and ThreadPool tiling
// happen here, while the arithmetic itself runs in the active
// tensor::kernels::KernelBackend (scalar reference, blocked portable,
// or AVX2 — see kernels.hpp for selection via ZENESIS_KERNEL /
// set_backend()). Within one backend, results are byte-deterministic
// across thread counts; across backends they agree to rounding only.

#include "zenesis/tensor/quant.hpp"
#include "zenesis/tensor/tensor.hpp"

namespace zenesis::tensor {

// ---- BLAS-like ----

/// C = A(MxK) * B(KxN). Blocked over K and parallel over M.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A(MxK) * B(NxK)^T — the layout used by attention scores and linear
/// layers whose weights are stored row-per-output.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// y = x(MxK) * W(NxK)^T + bias(N). The standard linear layer.
Tensor linear(const Tensor& x, const Tensor& weight, const Tensor& bias);

/// Transposes a rank-2 tensor.
Tensor transpose(const Tensor& a);

// ---- Quantized GEMM path (tensor::quant) ----
//
// These run the dynamic-int8 pipeline: the activation matrix is
// quantized per row on the ThreadPool, the pre-quantized weight panel
// is reused as-is, and the int8 GEMM requantizes back to fp32 in its
// epilogue. If the active backend has no int8 kernels they fall back to
// the fp32 kernels (dequantizing the panel once), so call sites can
// branch on quant::int8_fast_path() for speed but never for safety.

/// y = x(MxK) * dequant(qw)(NxK)^T [+ bias(N)]. `bias` may be empty
/// (rank 0) for a pure matmul_nt against a quantized panel.
Tensor linear_quantized(const Tensor& x, const quant::QuantizedTensor& qw,
                        const Tensor& bias);

/// C = A(MxK) * dequant(qb)(NxK)^T — matmul_nt against a pre-quantized
/// right-hand panel.
Tensor matmul_nt_quantized(const Tensor& a, const quant::QuantizedTensor& qb);

/// C = A(MxK) * B(NxK)^T with BOTH sides quantized dynamically per call
/// (used for attention scores where neither operand is a weight).
Tensor matmul_nt_dyn_quantized(const Tensor& a, const Tensor& b);

// ---- Elementwise / rowwise ----

/// a += b (same shape).
void add_inplace(Tensor& a, const Tensor& b);

/// a *= s.
void scale_inplace(Tensor& a, float s);

/// In-place rowwise softmax of a rank-2 tensor.
void softmax_rows(Tensor& a);

/// In-place rowwise layer normalization with learned gain/bias of size
/// [features].
void layernorm_rows(Tensor& a, const Tensor& gain, const Tensor& bias,
                    float eps = 1e-5f);

/// In-place GELU (tanh approximation, as used by ViT/Swin blocks).
void gelu_inplace(Tensor& a);

/// In-place ReLU.
void relu_inplace(Tensor& a);

// ---- Attention ----

/// Scaled dot-product attention: softmax(Q Kᵀ / sqrt(d)) V.
/// q: [Lq, d], k: [Lk, d], v: [Lk, dv] → [Lq, dv].
/// This is the cross-modal relevance operator from the paper's Sec. 4.
Tensor attention(const Tensor& q, const Tensor& k, const Tensor& v);

/// Multi-head attention over pre-projected inputs. q,k,v as in
/// `attention`; d must be divisible by `heads`. Heads are processed
/// independently and concatenated.
Tensor multihead_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                           int heads);

// ---- Reductions / stats ----

/// L2-normalizes each row in place (zero rows are left untouched).
void l2_normalize_rows(Tensor& a, float eps = 1e-12f);

/// Cosine similarity matrix between rows of a [Ma, d] and rows of b [Mb, d].
Tensor cosine_similarity(const Tensor& a, const Tensor& b);

/// Mean over rows → [features].
Tensor mean_rows(const Tensor& a);

/// Columnwise maximum over rows → [features]. Requires at least one row.
Tensor colwise_max(const Tensor& a);

/// Subtracts a rank-1 row vector [features] from every row of a.
void subtract_row_inplace(Tensor& a, const Tensor& row);

}  // namespace zenesis::tensor
