// Backend registry and runtime dispatch for tensor::kernels.

#include "zenesis/tensor/kernels.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace zenesis::tensor {
namespace kernels {
namespace {

/// Best available backend, in the fixed preference order avx2 > neon >
/// blocked (scalar is never auto-picked — it is the reference, not a
/// fast path).
const KernelBackend& best_backend() {
  if (const KernelBackend* v = avx2_backend()) return *v;
  if (const KernelBackend* s = neon_backend()) return *s;
  return blocked_backend();
}

const KernelBackend* lookup(std::string_view name) {
  if (name == "scalar") return &scalar_backend();
  if (name == "blocked") return &blocked_backend();
  if (name == "avx2") return avx2_backend();
  if (name == "neon") return neon_backend();
  if (name == "auto") return &best_backend();
  return nullptr;
}

std::atomic<const KernelBackend*> g_active{nullptr};
std::once_flag g_env_once;

/// One-time ZENESIS_KERNEL resolution. An unknown or unavailable value
/// must not abort a long pipeline run at startup — resolve_selector
/// falls back to the best available backend and the note is printed
/// exactly once (this function runs under a call_once; the validated
/// PipelineConfig knob is the strict path).
void init_from_env() {
  const char* env = std::getenv("ZENESIS_KERNEL");
  std::string warning;
  const KernelBackend& chosen =
      resolve_selector(env != nullptr ? std::string_view(env)
                                      : std::string_view(),
                       &warning);
  if (!warning.empty()) std::fprintf(stderr, "%s\n", warning.c_str());
  // Keep an explicit set_backend() that raced ahead of lazy init.
  const KernelBackend* expected = nullptr;
  g_active.compare_exchange_strong(expected, &chosen,
                                   std::memory_order_release,
                                   std::memory_order_relaxed);
}

}  // namespace

const KernelBackend& resolve_selector(std::string_view value,
                                      std::string* warning) {
  if (warning != nullptr) warning->clear();
  if (value.empty()) return best_backend();
  if (const KernelBackend* chosen = lookup(value)) return *chosen;
  if (warning != nullptr) {
    *warning = "zenesis: ZENESIS_KERNEL=" + std::string(value) +
               " is unknown or unavailable on this CPU; using '" +
               best_backend().name + "'";
  }
  return best_backend();
}

const KernelBackend& active() {
  const KernelBackend* backend = g_active.load(std::memory_order_acquire);
  if (backend == nullptr) {
    std::call_once(g_env_once, init_from_env);
    backend = g_active.load(std::memory_order_acquire);
  }
  return *backend;
}

}  // namespace kernels

bool set_backend(std::string_view name) {
  const kernels::KernelBackend* backend = kernels::lookup(name);
  if (backend == nullptr) return false;
  kernels::g_active.store(backend, std::memory_order_release);
  return true;
}

const char* backend_name() { return kernels::active().name; }

std::vector<std::string> available_backends() {
  std::vector<std::string> out;
  if (kernels::avx2_backend() != nullptr) out.emplace_back("avx2");
  if (kernels::neon_backend() != nullptr) out.emplace_back("neon");
  out.emplace_back("blocked");
  out.emplace_back("scalar");
  return out;
}

bool backend_available(std::string_view name) {
  return kernels::lookup(name) != nullptr;
}

bool backend_supports_int8(std::string_view name) {
  const kernels::KernelBackend* backend = kernels::lookup(name);
  return backend != nullptr && backend->quantize_row != nullptr &&
         backend->dequantize_row != nullptr &&
         backend->matmul_nt_i8 != nullptr;
}

std::string cpu_feature_string() {
  std::string features;
  const auto append = [&](const char* name) {
    if (!features.empty()) features += ' ';
    features += name;
  };
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("sse4.2")) append("sse4.2");
  if (__builtin_cpu_supports("avx")) append("avx");
  if (__builtin_cpu_supports("avx2")) append("avx2");
  if (__builtin_cpu_supports("fma")) append("fma");
  if (__builtin_cpu_supports("avx512f")) append("avx512f");
#elif defined(__aarch64__)
  append("neon");  // baseline on AArch64
#endif
  return features;
}

}  // namespace zenesis::tensor
