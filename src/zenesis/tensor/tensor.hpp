#pragma once
// Dense row-major float32 tensor.
//
// Deliberately minimal: contiguous storage, up to 4 dimensions, no
// broadcasting views. The surrogate foundation models (GroundingDetector,
// SamModel) are small enough that explicit loops over a simple container
// are clearer and faster to maintain than a general strided tensor, and
// every kernel that matters for throughput (matmul, attention, conv) has a
// dedicated blocked implementation in ops.hpp / conv.hpp.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace zenesis::tensor {

/// Shape of a tensor; up to 4 dimensions are used by the library.
using Shape = std::vector<std::int64_t>;

/// Contiguous row-major float tensor.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor with the given shape.
  explicit Tensor(Shape shape);

  /// Allocates and fills from `values`; `values.size()` must equal the
  /// shape's element count.
  Tensor(Shape shape, std::vector<float> values);

  /// Convenience literal constructor for tests: Tensor({2,2}, {1,2,3,4}).
  Tensor(std::initializer_list<std::int64_t> shape, std::vector<float> values);

  const Shape& shape() const noexcept { return shape_; }
  std::int64_t dim(std::size_t i) const {
    assert(i < shape_.size());
    return shape_[i];
  }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::int64_t numel() const noexcept { return numel_; }
  bool empty() const noexcept { return numel_ == 0; }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  std::span<float> flat() noexcept { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const noexcept {
    return {data_.data(), data_.size()};
  }

  // Indexed element access (asserts bounds in debug builds).
  float& at(std::int64_t i) { return data_[check(i)]; }
  float at(std::int64_t i) const { return data_[check(i)]; }
  float& at(std::int64_t i, std::int64_t j) {
    return data_[check(i * shape_[1] + j)];
  }
  float at(std::int64_t i, std::int64_t j) const {
    return data_[check(i * shape_[1] + j)];
  }
  float& at(std::int64_t i, std::int64_t j, std::int64_t k) {
    return data_[check((i * shape_[1] + j) * shape_[2] + k)];
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k) const {
    return data_[check((i * shape_[1] + j) * shape_[2] + k)];
  }
  float& at(std::int64_t i, std::int64_t j, std::int64_t k, std::int64_t l) {
    return data_[check(((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
  }
  float at(std::int64_t i, std::int64_t j, std::int64_t k,
           std::int64_t l) const {
    return data_[check(((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l)];
  }

  /// Pointer to the start of row `i` of a rank-2 tensor.
  float* row(std::int64_t i) {
    assert(rank() == 2);
    return data_.data() + i * shape_[1];
  }
  const float* row(std::int64_t i) const {
    assert(rank() == 2);
    return data_.data() + i * shape_[1];
  }

  /// Returns a copy reinterpreted with a new shape of equal element count.
  Tensor reshaped(Shape new_shape) const;

  /// Fills every element with `v`.
  void fill(float v);

  static std::int64_t count(const Shape& s);

 private:
  std::size_t check(std::int64_t idx) const {
    assert(idx >= 0 && idx < numel_);
    return static_cast<std::size_t>(idx);
  }

  Shape shape_;
  std::int64_t numel_ = 0;
  std::vector<float> data_;
};

}  // namespace zenesis::tensor
