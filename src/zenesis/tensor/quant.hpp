#pragma once
// tensor::quant — dynamic int8 quantization for the encoder hot path.
//
// Scheme (DESIGN §4j): symmetric per-row scales. For a row-major matrix
// each row r gets scale_r = max|row|/127 and payload q = clamp(rint(x *
// 127/max|row|), -127, 127) — the saturating requantize. The -128 slot
// is never produced, which is what keeps the AVX2 maddubs pair sums
// exact (see kernels_avx2.cpp). Weights are quantized once per model
// (QuantizedWeights memoizes under a call_once); activations are
// quantized per call on the ThreadPool by ops::linear_quantized.
//
// Precision selection mirrors the kernel-backend dispatch: a process-
// global Precision resolved lazily from ZENESIS_PRECISION ("fp32" |
// "int8"; unknown values fall back to fp32 with a one-line stderr note,
// printed exactly once), overridable via set_precision() or the
// validated PipelineConfig::precision knob. The resolved name is folded
// into the mask-cache decode fingerprint AND the feature-cache /
// disk-store key (cache/feature_cache.cpp), so no cached artifact ever
// aliases across precisions.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "zenesis/tensor/tensor.hpp"

namespace zenesis::tensor::quant {

/// Numeric precision of the encoder/attention GEMM path.
enum class Precision : int {
  kFp32 = 0,  ///< every GEMM runs the fp32 kernels (the reference)
  kInt8 = 1,  ///< linear layers + attention scores run matmul_nt_i8
};

/// A row-major int8 matrix with one symmetric scale per row.
/// dequantized(i, j) == scales[i] * data[i * cols + j].
struct QuantizedTensor {
  std::vector<std::int8_t> data;  ///< [rows * cols]
  std::vector<float> scales;      ///< [rows]
  std::int64_t rows = 0;
  std::int64_t cols = 0;

  bool empty() const noexcept { return rows == 0 || cols == 0; }
};

/// Quantizes a rank-2 tensor per row on the active backend, parallel
/// over rows. The payload is bit-identical across backends (the scale
/// formulas are single float ops and rounding is nearest-even
/// everywhere).
QuantizedTensor quantize_rows(const Tensor& t);

/// Reconstructs the fp32 tensor (scales[i] * data[i][j]).
Tensor dequantize_rows(const QuantizedTensor& q);

/// Once-per-model weight panel: the first get() quantizes `w` and every
/// later call returns the memoized panel. Thread-safe (call_once); the
/// caller must pass the same tensor every time (models hold one panel
/// per weight member). The state sits behind a shared_ptr so holders
/// stay movable/copyable (std::once_flag itself is neither); copies
/// share the panel, which is correct because copies of a model share
/// identical weights.
class QuantizedWeights {
 public:
  const QuantizedTensor& get(const Tensor& w) const {
    std::call_once(state_->once, [&] { state_->panel = quantize_rows(w); });
    return state_->panel;
  }

 private:
  struct State {
    std::once_flag once;
    QuantizedTensor panel;
  };
  std::shared_ptr<State> state_ = std::make_shared<State>();
};

/// The process-wide precision every quantization-aware call site
/// consults. First call resolves ZENESIS_PRECISION (unknown values fall
/// back to kFp32 with a stderr note, printed once).
Precision active_precision();

/// Selects the precision by name: "fp32", "int8", or "auto"
/// (re-resolve ZENESIS_PRECISION / default fp32). Returns false — and
/// leaves the selection unchanged — for unknown names or for "int8"
/// when the active kernel backend lacks int8 kernels.
bool set_precision(std::string_view name);

/// Name of the active precision ("fp32" | "int8").
const char* precision_name();

/// True when `name` is a selector set_precision() would accept.
bool precision_available(std::string_view name);

/// The ZENESIS_PRECISION resolution rule as a pure function (the env
/// init calls it exactly once per process): unknown or unavailable
/// values yield kFp32 and a one-line fallback note in `*warning`
/// (cleared otherwise). Exposed for tests of the fallback path.
Precision resolve_precision_selector(std::string_view value,
                                     std::string* warning);

/// True when the quantized fast path should run: active precision is
/// int8 AND the active kernel backend provides the int8 kernels. Model
/// call sites branch on this, never on active_precision() alone.
bool int8_fast_path();

}  // namespace zenesis::tensor::quant
