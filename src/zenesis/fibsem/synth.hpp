#pragma once
// Synthetic FIB-SEM volume generator — the stand-in for the paper's
// proprietary catalyst-layer dataset (amorphous and crystalline IrO₂ in
// Nafion ionomer films, 10 slices each).
//
// Morphology:
//   * crystalline — ensembles of thin oriented bright needles (the
//     "needle-like morphology with high specific surface area" the paper
//     describes) embedded in a mid-gray ionomer membrane, with a large
//     near-black region (sample holder / epoxy) occupying part of the
//     field of view. The black region's sharp edge is what Otsu and
//     unguided SAM lock onto.
//   * amorphous — a soft two-phase microstructure: brighter particle
//     agglomerates with diffuse boundaries in a gray ionomer matrix,
//     filling the whole field of view.
//
// Degradations (the "non-AI-ready" part): multiplicative topography
// shading, per-slice defocus blur and contrast drift, FIB curtaining
// stripes, Poisson shot noise and Gaussian read noise, quantized to
// 16-bit — the raw instrument output. Ground-truth masks are taken from
// the clean phase geometry before degradation, exactly what a careful
// manual annotation would recover.
//
// Determinism: every slice is generated from (seed, slice-id) streams, so
// volumes are bit-identical across runs and thread counts.

#include <cstdint>
#include <vector>

#include "zenesis/image/image.hpp"

namespace zenesis::fibsem {

enum class SampleType { kCrystalline, kAmorphous };

/// Human-readable name ("crystalline" / "amorphous").
const char* sample_type_name(SampleType t);

struct SynthConfig {
  SampleType type = SampleType::kCrystalline;
  std::int64_t width = 256;
  std::int64_t height = 256;
  std::int64_t depth = 10;
  std::uint64_t seed = 20250704;

  // --- crystalline morphology ---
  int needle_count = 46;  ///< needles per slice (calibrated at 256x256)
  double needle_len_mean = 42.0;  ///< pixels
  double needle_width = 5.0;     ///< pixels (Gaussian profile sigma*2)
  double holder_fraction = 0.40;  ///< image fraction covered by the black holder
  float holder_level = 0.05f;
  float membrane_level = 0.45f;
  float needle_level = 0.82f;

  // --- amorphous morphology ---
  double particle_fraction = 0.32;  ///< target foreground area fraction
  double particle_scale = 20.0;     ///< blob correlation length (pixels)
  float matrix_level = 0.42f;
  float particle_level = 0.60f;

  // --- degradations ---
  float shading_amplitude = 0.15f;  ///< multiplicative topography shading
  float curtain_strength = 0.035f;   ///< FIB curtaining stripe amplitude
  float defocus_sigma_max = 0.9f;   ///< per-slice blur, uniform in [0, max]
  float contrast_drift = 0.10f;     ///< per-slice gain drift amplitude
  float gaussian_noise = 0.05f;    ///< read-noise sigma
  float poisson_scale = 400.0f;     ///< photons at intensity 1 (shot noise)

  /// Voxel spacing stamped on generated volumes (FIB-SEM anisotropy).
  image::VoxelSize voxel{4.0, 4.0, 20.0};
};

/// One generated slice: the degraded 16-bit "instrument" image plus the
/// clean ground truth and the per-slice nuisance parameters (exposed so
/// tests can assert the degradation model).
struct SyntheticSlice {
  image::ImageU16 raw;
  image::Mask ground_truth;
  float defocus_sigma = 0.0f;
  float contrast_gain = 1.0f;
};

/// A full volume with per-slice ground truth.
struct SyntheticVolume {
  image::VolumeU16 volume;
  std::vector<image::Mask> ground_truth;
  SampleType type = SampleType::kCrystalline;

  std::int64_t depth() const noexcept { return volume.depth(); }
};

/// Generates slice `z` of the configured volume. Deterministic in
/// (cfg.seed, z); adjacent slices are morphologically correlated, as in a
/// real serial-sectioning stack.
SyntheticSlice generate_slice(const SynthConfig& cfg, std::int64_t z);

/// Generates the whole volume (slices computed in parallel).
SyntheticVolume generate_volume(const SynthConfig& cfg);

/// The benchmark dataset of the paper: 10 crystalline + 10 amorphous
/// slices. Returned as two volumes with the given base seed.
struct BenchmarkDataset {
  SyntheticVolume crystalline;
  SyntheticVolume amorphous;
};
BenchmarkDataset make_benchmark_dataset(std::int64_t size = 256,
                                        std::uint64_t seed = 20250704);

/// Default text prompt used for each sample type (what a domain expert
/// would type into the paper's no-code UI).
const char* default_prompt(SampleType t);

}  // namespace zenesis::fibsem
