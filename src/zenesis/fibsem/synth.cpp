#include "zenesis/fibsem/synth.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "zenesis/cv/filters.hpp"
#include "zenesis/parallel/parallel_for.hpp"
#include "zenesis/parallel/rng.hpp"

namespace zenesis::fibsem {
namespace {

using image::ImageF32;
using parallel::Rng;

constexpr double kPi = 3.14159265358979323846;

// Stream ids carved out of the (seed, stream) space. Every logical entity
// gets its own stream so output is independent of generation order.
constexpr std::uint64_t kStreamVolume = 100;
constexpr std::uint64_t kStreamHolder = 200;
constexpr std::uint64_t kStreamNeedleBase = 10000;
constexpr std::uint64_t kStreamFieldA = 300;
constexpr std::uint64_t kStreamFieldB = 301;
constexpr std::uint64_t kStreamShading = 400;
constexpr std::uint64_t kStreamCurtain = 500;
constexpr std::uint64_t kStreamSliceBase = 600;
constexpr std::uint64_t kStreamNoiseBase = 20000;
constexpr std::uint64_t kStreamTextureBase = 30000;

/// White-noise image from one sequential stream (row-major, deterministic).
ImageF32 white_noise(std::int64_t w, std::int64_t h, std::uint64_t seed,
                     std::uint64_t stream) {
  ImageF32 img(w, h, 1);
  Rng rng(seed, stream);
  for (float& v : img.pixels()) v = static_cast<float>(rng.normal());
  return img;
}

/// Smooth zero-mean unit-variance random field.
ImageF32 smooth_field(std::int64_t w, std::int64_t h, std::uint64_t seed,
                      std::uint64_t stream, float sigma) {
  ImageF32 f = cv::gaussian_blur(white_noise(w, h, seed, stream), sigma);
  // Re-standardize: blurring shrinks the variance.
  double sum = 0.0, sum2 = 0.0;
  for (float v : f.pixels()) {
    sum += v;
    sum2 += v * v;
  }
  const double n = static_cast<double>(f.pixels().size());
  const double mean = sum / n;
  const double sd = std::sqrt(std::max(1e-12, sum2 / n - mean * mean));
  for (float& v : f.pixels()) {
    v = static_cast<float>((v - mean) / sd);
  }
  return f;
}

/// Smoothstep with clamped input.
float smoothstep(float t) {
  t = std::clamp(t, 0.0f, 1.0f);
  return t * t * (3.0f - 2.0f * t);
}

/// One needle of the crystalline ensemble: a 3-D line segment that
/// intersects a few adjacent slices, drifting slightly between them.
struct Needle {
  double cx, cy;      // in-plane center at z_center
  double z_center;    // slice of maximal extent
  double z_halfspan;  // appears on |z - z_center| <= z_halfspan
  double angle;       // in-plane orientation
  double length;
  double width_sigma;
  double drift_x, drift_y;  // per-slice positional drift
  float brightness;
};

std::vector<Needle> make_needles(const SynthConfig& cfg) {
  Rng vol_rng(cfg.seed, kStreamVolume);
  const double preferred = vol_rng.uniform(0.0, kPi);
  std::vector<Needle> needles;
  // needle_count is calibrated for a 256x256 field of view; scale the
  // ensemble with the imaged area so phase fractions stay constant.
  const double area_scale = static_cast<double>(cfg.width) *
                            static_cast<double>(cfg.height) / (256.0 * 256.0);
  const int per_slice =
      std::max(1, static_cast<int>(cfg.needle_count * area_scale));
  // Oversample in z so each slice sees ~per_slice active needles.
  const int total = per_slice * static_cast<int>(cfg.depth) / 3;
  needles.reserve(static_cast<std::size_t>(total));
  for (int n = 0; n < total; ++n) {
    Rng rng(cfg.seed, kStreamNeedleBase + static_cast<std::uint64_t>(n));
    Needle nd;
    nd.cx = rng.uniform(0.0, static_cast<double>(cfg.width));
    nd.cy = rng.uniform(0.0, static_cast<double>(cfg.height));
    nd.z_center = rng.uniform(-1.0, static_cast<double>(cfg.depth) + 1.0);
    nd.z_halfspan = rng.uniform(1.0, 3.0);
    nd.angle = preferred + rng.normal(0.0, 0.45);
    nd.length = std::max(6.0, rng.normal(cfg.needle_len_mean,
                                         cfg.needle_len_mean * 0.35));
    nd.width_sigma = std::max(0.7, rng.normal(cfg.needle_width / 2.0, 0.35));
    nd.drift_x = rng.normal(0.0, 1.2);
    nd.drift_y = rng.normal(0.0, 1.2);
    nd.brightness = static_cast<float>(rng.uniform(0.85, 1.1));
    needles.push_back(nd);
  }
  return needles;
}

/// Holder boundary: y below which the membrane lives. Wobbles along x and
/// creeps slowly with z (serial sectioning mills material away).
double holder_boundary(const SynthConfig& cfg, std::int64_t z, double x) {
  Rng rng(cfg.seed, kStreamHolder);
  const double phase = rng.uniform(0.0, 2.0 * kPi);
  const double amp = rng.uniform(4.0, 10.0);
  const double freq = rng.uniform(1.0, 2.2);
  const double creep = rng.uniform(-0.8, 0.8);
  const double base =
      static_cast<double>(cfg.height) * (1.0 - cfg.holder_fraction);
  return base + amp * std::sin(freq * 2.0 * kPi * x / static_cast<double>(cfg.width) + phase) +
         creep * static_cast<double>(z);
}

/// Renders the clean crystalline phase image + ground truth.
void render_crystalline(const SynthConfig& cfg, std::int64_t z, ImageF32& clean,
                        image::Mask& gt) {
  const std::int64_t w = cfg.width, h = cfg.height;

  // Membrane with mild low-frequency mottle, holder below the boundary.
  const ImageF32 mottle = smooth_field(w, h, cfg.seed,
                                       kStreamTextureBase + static_cast<std::uint64_t>(z),
                                       6.0f);
  std::vector<double> boundary(static_cast<std::size_t>(w));
  for (std::int64_t x = 0; x < w; ++x) {
    boundary[static_cast<std::size_t>(x)] =
        holder_boundary(cfg, z, static_cast<double>(x));
  }
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      if (static_cast<double>(y) > boundary[static_cast<std::size_t>(x)]) {
        clean.at(x, y) = cfg.holder_level;
      } else {
        clean.at(x, y) = cfg.membrane_level + 0.022f * mottle.at(x, y);
      }
    }
  }

  // Needles: Gaussian cross-profile along each active segment, clipped to
  // the membrane side of the boundary.
  const auto needles = make_needles(cfg);
  for (const auto& nd : needles) {
    const double dz = static_cast<double>(z) - nd.z_center;
    if (std::abs(dz) > nd.z_halfspan) continue;
    const double extent =
        std::sqrt(std::max(0.0, 1.0 - (dz / nd.z_halfspan) * (dz / nd.z_halfspan)));
    const double len = nd.length * extent;
    if (len < 3.0) continue;
    const double cx = nd.cx + nd.drift_x * dz;
    const double cy = nd.cy + nd.drift_y * dz;
    const double dx = std::cos(nd.angle), dy = std::sin(nd.angle);
    const double half = len / 2.0;
    const double reach = 3.0 * nd.width_sigma;
    const auto x0 = static_cast<std::int64_t>(
        std::floor(cx - half * std::abs(dx) - reach));
    const auto x1 = static_cast<std::int64_t>(
        std::ceil(cx + half * std::abs(dx) + reach));
    const auto y0 = static_cast<std::int64_t>(
        std::floor(cy - half * std::abs(dy) - reach));
    const auto y1 = static_cast<std::int64_t>(
        std::ceil(cy + half * std::abs(dy) + reach));
    for (std::int64_t y = std::max<std::int64_t>(0, y0);
         y <= std::min<std::int64_t>(h - 1, y1); ++y) {
      for (std::int64_t x = std::max<std::int64_t>(0, x0);
           x <= std::min<std::int64_t>(w - 1, x1); ++x) {
        if (static_cast<double>(y) > boundary[static_cast<std::size_t>(x)]) {
          continue;  // needles do not exist inside the holder
        }
        // Distance from pixel to the segment.
        const double px = static_cast<double>(x) - cx;
        const double py = static_cast<double>(y) - cy;
        const double t = std::clamp(px * dx + py * dy, -half, half);
        const double qx = px - t * dx, qy = py - t * dy;
        const double d2 = qx * qx + qy * qy;
        const double prof =
            std::exp(-d2 / (2.0 * nd.width_sigma * nd.width_sigma));
        if (prof < 0.05) continue;
        const float target = cfg.needle_level * nd.brightness;
        const auto m = static_cast<float>(prof);
        clean.at(x, y) = clean.at(x, y) * (1.0f - m) + target * m;
        if (prof > 0.5) gt.at(x, y) = 1;
      }
    }
  }
}

/// One amorphous agglomerate: a lumpy cluster of overlapping soft
/// spheres, continuous across a few slices (a 3-D particle cluster cut by
/// serial sections).
struct Agglomerate {
  double cx, cy, cz;   // center (cz in slice units)
  double radius;       // in-plane radius of the main lobe, pixels
  double z_radius;     // half-extent along z, slices
  double lobes[3][3];  // up to 3 sub-lobes: dx, dy, radius scale
  int lobe_count;
  float brightness;
};

std::vector<Agglomerate> make_agglomerates(const SynthConfig& cfg) {
  // Calibrated for 256x256: enough clusters to hit particle_fraction.
  const double area_scale = static_cast<double>(cfg.width) *
                            static_cast<double>(cfg.height) / (256.0 * 256.0);
  const double mean_r = cfg.particle_scale * 0.62;
  const double mean_area = 1.6 * mean_r * mean_r;  // lumpy multi-lobe blobs (empirical, incl. z-shrink and overlap losses)
  const int per_slice = std::max(
      1, static_cast<int>(cfg.particle_fraction * 65536.0 * area_scale / mean_area));
  // Each cluster is active on ~5 slices (z_radius 1.5-3.5) out of a
  // (depth+3)-slice spawn range, so scale the pool to keep the
  // per-slice density depth-independent.
  const int total = std::max(
      1, static_cast<int>(per_slice * (static_cast<double>(cfg.depth) + 3.0) / 5.0));
  std::vector<Agglomerate> blobs;
  blobs.reserve(static_cast<std::size_t>(total));
  for (int n = 0; n < total; ++n) {
    Rng rng(cfg.seed, kStreamNeedleBase + 500000 + static_cast<std::uint64_t>(n));
    Agglomerate a;
    a.cx = rng.uniform(0.0, static_cast<double>(cfg.width));
    a.cy = rng.uniform(0.0, static_cast<double>(cfg.height));
    a.cz = rng.uniform(-1.5, static_cast<double>(cfg.depth) + 1.5);
    a.radius = std::max(5.0, rng.normal(mean_r, mean_r * 0.35));
    a.z_radius = rng.uniform(1.5, 3.5);
    a.lobe_count = 1 + static_cast<int>(rng.uniform_index(3));
    for (int l = 0; l < a.lobe_count; ++l) {
      a.lobes[l][0] = rng.normal(0.0, a.radius * 0.8);
      a.lobes[l][1] = rng.normal(0.0, a.radius * 0.8);
      a.lobes[l][2] = rng.uniform(0.45, 0.85);
    }
    a.brightness = static_cast<float>(rng.uniform(0.88, 1.12));
    blobs.push_back(a);
  }
  return blobs;
}

/// Renders the clean amorphous phase image + ground truth: discrete lumpy
/// agglomerates with diffuse (smoothstep) edges in a uniform matrix.
void render_amorphous(const SynthConfig& cfg, std::int64_t z, ImageF32& clean,
                      image::Mask& gt) {
  const std::int64_t w = cfg.width, h = cfg.height;
  const ImageF32 grain = smooth_field(
      w, h, cfg.seed, kStreamTextureBase + static_cast<std::uint64_t>(z), 1.5f);
  const ImageF32 mottle = smooth_field(
      w, h, cfg.seed, kStreamTextureBase + 7000 + static_cast<std::uint64_t>(z),
      8.0f);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      clean.at(x, y) = cfg.matrix_level + 0.018f * mottle.at(x, y);
    }
  }

  constexpr double kSoftEdge = 2.0;  // diffuse boundary width, pixels
  const auto blobs = make_agglomerates(cfg);
  for (const auto& blob : blobs) {
    const double dz = static_cast<double>(z) - blob.cz;
    if (std::abs(dz) > blob.z_radius) continue;
    // Spherical cross-section: the cluster shrinks toward its z ends.
    const double shrink =
        std::sqrt(std::max(0.0, 1.0 - (dz / blob.z_radius) * (dz / blob.z_radius)));
    if (shrink * blob.radius < 3.0) continue;
    const double reach = blob.radius * 2.2 * shrink + kSoftEdge * 2.0;
    const auto x0 = std::max<std::int64_t>(0, static_cast<std::int64_t>(blob.cx - reach));
    const auto x1 = std::min<std::int64_t>(w - 1, static_cast<std::int64_t>(blob.cx + reach));
    const auto y0 = std::max<std::int64_t>(0, static_cast<std::int64_t>(blob.cy - reach));
    const auto y1 = std::min<std::int64_t>(h - 1, static_cast<std::int64_t>(blob.cy + reach));
    for (std::int64_t y = y0; y <= y1; ++y) {
      for (std::int64_t x = x0; x <= x1; ++x) {
        // Signed distance to the lumpy union: min over lobes of
        // (distance to lobe center − lobe radius).
        double sd = 1e9;
        for (int l = 0; l < blob.lobe_count; ++l) {
          const double lx = blob.cx + blob.lobes[l][0] * shrink;
          const double ly = blob.cy + blob.lobes[l][1] * shrink;
          const double lr = blob.radius * blob.lobes[l][2] * shrink;
          const double dx = static_cast<double>(x) - lx;
          const double dy = static_cast<double>(y) - ly;
          sd = std::min(sd, std::sqrt(dx * dx + dy * dy) - lr);
        }
        const float s = smoothstep(static_cast<float>(0.5 - sd / (2.0 * kSoftEdge)));
        if (s <= 0.0f) continue;
        float level = cfg.matrix_level +
                      (cfg.particle_level - cfg.matrix_level) * blob.brightness * s;
        level += 0.040f * grain.at(x, y) * s;  // intra-particle texture
        clean.at(x, y) = std::max(clean.at(x, y), level);
        if (sd < 0.0) gt.at(x, y) = 1;
      }
    }
  }
}

}  // namespace

const char* sample_type_name(SampleType t) {
  return t == SampleType::kCrystalline ? "crystalline" : "amorphous";
}

const char* default_prompt(SampleType t) {
  return t == SampleType::kCrystalline
             ? "bright needle-like crystalline catalyst"
             : "bright amorphous catalyst particles";
}

SyntheticSlice generate_slice(const SynthConfig& cfg, std::int64_t z) {
  if (cfg.width <= 0 || cfg.height <= 0) {
    throw std::invalid_argument("generate_slice: empty geometry");
  }
  const std::int64_t w = cfg.width, h = cfg.height;
  ImageF32 clean(w, h, 1);
  image::Mask gt(w, h);
  if (cfg.type == SampleType::kCrystalline) {
    render_crystalline(cfg, z, clean, gt);
  } else {
    render_amorphous(cfg, z, clean, gt);
  }

  // --- degradation chain (raw instrument model) ---
  SyntheticSlice out;
  Rng slice_rng(cfg.seed, kStreamSliceBase + static_cast<std::uint64_t>(z));
  out.defocus_sigma =
      static_cast<float>(slice_rng.uniform(0.0, cfg.defocus_sigma_max));
  out.contrast_gain = static_cast<float>(
      1.0 + cfg.contrast_drift *
                std::sin(2.0 * kPi * static_cast<double>(z) /
                             std::max<double>(1.0, static_cast<double>(cfg.depth)) +
                         slice_rng.uniform(0.0, 2.0 * kPi)));

  // Multiplicative topography shading (fixed per volume).
  const ImageF32 shading = smooth_field(w, h, cfg.seed, kStreamShading,
                                        static_cast<float>(w) / 3.0f);
  // FIB curtaining: vertical stripes, fixed per volume.
  ImageF32 curtain1d = smooth_field(w, 1, cfg.seed, kStreamCurtain, 2.0f);

  ImageF32 degraded(w, h, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      float v = clean.at(x, y);
      v *= 1.0f + cfg.shading_amplitude * shading.at(x, y);
      v *= 1.0f + cfg.curtain_strength * curtain1d.at(x, 0);
      v *= out.contrast_gain;
      degraded.at(x, y) = std::max(0.0f, v);
    }
  }
  if (out.defocus_sigma > 0.05f) {
    degraded = cv::gaussian_blur(degraded, out.defocus_sigma);
  }

  // Shot + read noise, then 16-bit quantization with a detector offset.
  Rng noise_rng(cfg.seed, kStreamNoiseBase + static_cast<std::uint64_t>(z));
  out.raw = image::ImageU16(w, h, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      float v = degraded.at(x, y);
      if (cfg.poisson_scale > 0.0f) {
        const double photons = noise_rng.poisson(
            static_cast<double>(v) * static_cast<double>(cfg.poisson_scale));
        v = static_cast<float>(photons / static_cast<double>(cfg.poisson_scale));
      }
      v += static_cast<float>(noise_rng.normal(0.0, cfg.gaussian_noise));
      // Detectors rarely use their container's range: park the signal in
      // a ~19%% sliver of the 16-bit scale (offset 500, gain 11500), the
      // kind of raw file the readiness layer exists to fix.
      const double counts = 500.0 + std::clamp(v, 0.0f, 1.25f) * 11500.0;
      out.raw.at(x, y) = static_cast<std::uint16_t>(
          std::clamp(counts, 0.0, 65535.0));
    }
  }
  out.ground_truth = std::move(gt);
  return out;
}

SyntheticVolume generate_volume(const SynthConfig& cfg) {
  SyntheticVolume vol;
  vol.type = cfg.type;
  vol.volume = image::VolumeU16(cfg.width, cfg.height, cfg.depth, 1, cfg.voxel);
  vol.ground_truth.resize(static_cast<std::size_t>(cfg.depth));
  parallel::parallel_for_chunked(
      0, cfg.depth, 1, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t z = lo; z < hi; ++z) {
          SyntheticSlice s = generate_slice(cfg, z);
          vol.volume.slice(z) = std::move(s.raw);
          vol.ground_truth[static_cast<std::size_t>(z)] =
              std::move(s.ground_truth);
        }
      });
  return vol;
}

BenchmarkDataset make_benchmark_dataset(std::int64_t size, std::uint64_t seed) {
  BenchmarkDataset ds;
  SynthConfig crys;
  crys.type = SampleType::kCrystalline;
  crys.width = size;
  crys.height = size;
  crys.seed = seed;
  ds.crystalline = generate_volume(crys);

  SynthConfig amor;
  amor.type = SampleType::kAmorphous;
  amor.width = size;
  amor.height = size;
  amor.seed = seed + 1;
  ds.amorphous = generate_volume(amor);
  return ds;
}

}  // namespace zenesis::fibsem
