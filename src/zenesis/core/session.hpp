#pragma once
// zenesis::core::Session — the platform facade.
//
// Mirrors the paper's presentation layer: Mode A (interactive single
// image / selected slice), Mode B (batch volumes), Mode C (evaluation
// dashboard), plus the interactive extras (Rectify Segmentation, Further
// Segment). A Session owns one pipeline configuration and an evaluation
// dashboard; CLI examples and benches drive everything through it, the
// same way the web UI drives the Python original.

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "zenesis/core/pipeline.hpp"
#include "zenesis/eval/dashboard.hpp"
#include "zenesis/hitl/rectify.hpp"
#include "zenesis/io/tiff_error.hpp"

namespace zenesis::core {

/// RAII handle for a scoped runtime-stats source (see
/// Session::add_scoped_stats_source). While the handle is alive the source
/// runs on every runtime-stats refresh; destroying or reset()ing it
/// deactivates the source, and the session prunes the dead entry on its
/// next refresh — so a producer that dies before the session (e.g. a
/// serve::SegmentService) is skipped instead of dereferenced.
/// Deactivation is not synchronized with a refresh running concurrently on
/// another thread; Session is single-threaded like the rest of the facade.
class StatsRegistration {
 public:
  StatsRegistration() = default;
  StatsRegistration(StatsRegistration&&) noexcept = default;
  StatsRegistration& operator=(StatsRegistration&& other) noexcept {
    if (this != &other) {
      reset();
      alive_ = std::move(other.alive_);
    }
    return *this;
  }
  StatsRegistration(const StatsRegistration&) = delete;
  StatsRegistration& operator=(const StatsRegistration&) = delete;
  ~StatsRegistration() { reset(); }

  /// Deactivates the source. Idempotent; the empty handle is inert.
  void reset() noexcept {
    if (alive_) alive_->store(false, std::memory_order_relaxed);
    alive_.reset();
  }
  bool active() const noexcept { return alive_ != nullptr; }

 private:
  friend class Session;
  explicit StatsRegistration(std::shared_ptr<std::atomic<bool>> alive)
      : alive_(std::move(alive)) {}

  std::shared_ptr<std::atomic<bool>> alive_;
};

class Session {
 public:
  explicit Session(const PipelineConfig& cfg = {});

  const ZenesisPipeline& pipeline() const noexcept { return pipeline_; }
  eval::Dashboard& dashboard() noexcept { return dashboard_; }
  const eval::Dashboard& dashboard() const noexcept { return dashboard_; }

  // --- Mode A: interactive single image / slice ---
  SliceResult mode_a_segment(const image::AnyImage& raw,
                             const std::string& prompt) const;
  /// Selected slice of a volume.
  SliceResult mode_a_segment_slice(const image::VolumeU16& volume,
                                   std::int64_t slice,
                                   const std::string& prompt) const;

  /// Multi-object Mode A: one prompt per class → label map (0=background,
  /// i=prompts[i-1]); conflicts resolved by text alignment.
  ZenesisPipeline::MultiObjectResult mode_a_segment_multi(
      const image::AnyImage& raw, const std::vector<std::string>& prompts) const;

  // --- Mode B: batch processing ---
  /// The one Mode-B entry point: the request names its source — an owned
  /// stack, an on-demand slice feed, or a TIFF path streamed with bounded
  /// memory (classic or BigTIFF, striped or tiled, uncompressed or
  /// PackBits; malformed files throw io::TiffError). Slices run in
  /// parallel (see PipelineConfig::volume_threads) with results identical
  /// to the serial path for every thread count and source kind.
  VolumeResult mode_b_segment_volume(const VolumeRequest& request) const;
  /// Deprecated forwarder (materialized stack; wraps by reference).
  [[deprecated("use mode_b_segment_volume(VolumeRequest) / VolumeRequest::in_memory")]]
  VolumeResult mode_b_segment_volume(const image::VolumeU16& volume,
                                     const std::string& prompt) const;
  /// Deprecated forwarder (on-demand slice feed).
  [[deprecated("use mode_b_segment_volume(VolumeRequest) / VolumeRequest::streamed")]]
  VolumeResult mode_b_segment_volume(const VolumeSource& source,
                                     const std::string& prompt) const;
  /// Deprecated forwarder (TIFF file).
  [[deprecated("use mode_b_segment_volume(VolumeRequest) / VolumeRequest::from_file")]]
  VolumeResult mode_b_segment_volume_file(
      const std::string& tiff_path, const std::string& prompt,
      const io::TiffReadLimits& limits = {}) const;
  /// Streams a TIFF volume from disk with full ingestion control
  /// (byte-source kind, read limits, prefetch — see io::TiffOpenOptions).
  VolumeResult mode_b_segment_volume_file(const std::string& tiff_path,
                                          const std::string& prompt,
                                          const io::TiffOpenOptions& open) const;
  /// Batch over independent images (each gets its own SliceResult),
  /// scheduled like mode_b_segment_volume.
  std::vector<SliceResult> mode_b_segment_images(
      const std::vector<image::AnyImage>& images,
      const std::string& prompt) const;

  /// Extra producer of runtime stats (e.g. a serve::SegmentService
  /// publishing its admission/latency counters). Sources are invoked every
  /// time runtime stats are refreshed.
  using StatsSource = std::function<void(eval::Dashboard&)>;
  /// Permanent registration: the source must outlive the session (or be
  /// removed wholesale via `clear_stats_sources`). Prefer the scoped
  /// variant for any source with a shorter lifetime than the session.
  void add_stats_source(StatsSource source);
  /// Scoped registration: the source runs only while the returned handle
  /// is alive, so destroying the producer (which owns the handle)
  /// automatically stops the session from calling into freed memory.
  [[nodiscard]] StatsRegistration add_scoped_stats_source(StatsSource source);
  void clear_stats_sources();

  /// Refreshes the dashboard's runtime-stats section: the pipeline's
  /// feature-cache counters (hits, misses, evictions, hit rate), every
  /// registered stats source, and — when tracing is on (ZENESIS_TRACE=1
  /// or obs::set_enabled) — per-stage span timings from the global
  /// TraceCollector as `trace_<stage>_{count,mean_us,max_us}`, so Mode C
  /// shows where pipeline time goes next to the quality metrics. Since
  /// PR 2 this happens automatically on each `mode_c_evaluate` call; the
  /// explicit method remains for callers that render the dashboard
  /// without evaluating anything.
  void publish_runtime_stats();

  // --- Mode C: evaluation ---
  /// Scores a prediction against ground truth and records it under
  /// (dataset, method, slice) in the dashboard. Also refreshes the
  /// runtime-stats section (see publish_runtime_stats).
  eval::Metrics mode_c_evaluate(const std::string& dataset,
                                const std::string& method, std::int64_t slice,
                                const image::Mask& prediction,
                                const image::Mask& ground_truth);

  // --- Interactive extras ---
  /// Rectify Segmentation: HITL episode over a prior automated result.
  hitl::RectifyResult rectify(const SliceResult& automated,
                              const image::Mask& reference,
                              hitl::SimulatedAnnotator& annotator,
                              const hitl::RandomBoxConfig& boxes = {},
                              std::uint64_t episode_seed = 1) const;

  /// Further Segment: hierarchical pass over a selected region.
  SliceResult further_segment(const SliceResult& parent, const image::Box& roi,
                              const std::string& prompt) const;

 private:
  /// A registered source; `alive == nullptr` means permanent, otherwise
  /// the source is skipped (and pruned) once its registration died.
  struct StatsEntry {
    StatsSource fn;
    std::shared_ptr<std::atomic<bool>> alive;
  };

  ZenesisPipeline pipeline_;
  eval::Dashboard dashboard_;
  std::vector<StatsEntry> stats_sources_;
};

}  // namespace zenesis::core
