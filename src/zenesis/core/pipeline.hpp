#pragma once
// The Zenesis pipeline: data readiness → GroundingDINO surrogate →
// SAM surrogate → optional volumetric heuristic refinement, with
// hierarchical "Further Segment" recursion. This is the paper's Core
// Processing Pipeline; the Session in session.hpp wraps it in the three
// platform modes.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "zenesis/cache/sharded_lru.hpp"
#include "zenesis/image/geometry.hpp"
#include "zenesis/image/image.hpp"
#include "zenesis/image/normalize.hpp"
#include "zenesis/io/tiff_error.hpp"
#include "zenesis/io/tiff_stream.hpp"
#include "zenesis/models/auto_mask.hpp"
#include "zenesis/models/feature_cache.hpp"
#include "zenesis/models/grounding.hpp"
#include "zenesis/models/sam.hpp"
#include "zenesis/parallel/thread_pool.hpp"
#include "zenesis/volume3d/heuristic.hpp"

namespace zenesis::core {

struct PipelineConfig {
  image::ReadinessConfig readiness;
  models::GroundingConfig grounding;
  models::SamConfig sam;
  volume3d::HeuristicConfig heuristic;
  /// Use the k highest-confidence DINO boxes per slice; their SAM masks
  /// are unioned (multi-scale box prompting).
  int max_boxes = 6;
  /// Apply the sliding-window box correction in volume mode.
  bool enable_heuristic_refine = true;
  /// Mode-B scheduling width: slices are distributed across this many
  /// workers. 0 = the process-global pool (one worker per hardware
  /// thread); 1 = serial; N > 1 = a dedicated pool of N workers owned by
  /// the pipeline. Results are byte-identical for every setting.
  std::size_t volume_threads = 0;
  /// Backbone feature/encoder memoization (off switch + LRU sizing +
  /// optional persistent tier via `disk_path`).
  models::FeatureCacheConfig feature_cache;
  /// Mask-result memoization in front of the decode stage: a repeated
  /// (image, prompt, options) request under an unchanged decode
  /// configuration reuses the finished SliceResult instead of re-running
  /// grounding + SAM. Keys fold in decode_config_fingerprint(), so any
  /// knob change is a clean miss.
  cache::ShardedCacheConfig mask_cache;
  /// Tensor kernel backend for all model math: "auto" (default — honor
  /// ZENESIS_KERNEL / the process-wide selection), "scalar", "blocked",
  /// "avx2", or "neon". A concrete name is applied process-wide at
  /// pipeline construction via tensor::set_backend(); validate() rejects
  /// names unavailable on this CPU. The *resolved* name is folded into
  /// decode_config_fingerprint(), so cached masks never alias across
  /// backends (different backends agree only to rounding, not by byte).
  std::string kernel_backend = "auto";
  /// Numeric precision of the encoder/attention GEMM path: "auto"
  /// (default — honor ZENESIS_PRECISION / the process-wide selection),
  /// "fp32", or "int8" (dynamic per-row quantization, tensor/quant.hpp).
  /// A concrete name is applied process-wide at pipeline construction
  /// via tensor::quant::set_precision(); validate() rejects "int8" when
  /// the selected kernel backend has no int8 kernels. The *resolved*
  /// name is folded into decode_config_fingerprint() AND the feature
  /// cache's backbone hash, so neither cached masks nor cached/persisted
  /// embeddings ever alias across precisions.
  std::string precision = "auto";

  /// Sanity-checks every knob and returns one human-readable message per
  /// violation (empty = valid). `ZenesisPipeline`'s constructor calls this
  /// and throws `std::invalid_argument` with the joined messages, so a
  /// misconfigured pipeline fails loudly at construction instead of
  /// silently misbehaving mid-run.
  std::vector<std::string> validate() const;
};

/// Content hash of every PipelineConfig knob that can change what the
/// decode stage produces for a given image: grounding + SAM configs
/// (backbones included), heuristic window, max_boxes, and the refine
/// switch. The mask-result cache folds this into every key, so ANY
/// decode-relevant knob change invalidates cached masks while
/// decode-irrelevant state (thread counts, cache sizing) does not.
std::uint64_t decode_config_fingerprint(const PipelineConfig& cfg);

/// Options for explicit-box segmentation (`segment_with_box`). Replaces
/// the old prompt-string overload: one struct names both knobs instead of
/// overload position deciding the ranking behavior.
struct BoxPromptOptions {
  /// Mask-candidate ranking inside the box.
  enum class Ranking {
    kAuto,           ///< text alignment when a prompt is set, else SAM
    kSamScore,       ///< SAM's own stability ranking, prompt ignored
    kTextAlignment,  ///< force text alignment (needs a prompt; falls back
                     ///< to SAM ranking when none is set)
  };
  /// Concept direction for mask selection. The path taken when the
  /// temporal heuristic replaces a failed detection: the box is
  /// corrected, the text intent is unchanged.
  std::optional<std::string> prompt;
  Ranking ranking = Ranking::kAuto;
};

/// Everything the platform produced for one image/slice (the UI state of
/// Mode A: preview, DINO boxes, mask overlay, extracted segments).
struct SliceResult {
  image::ImageF32 ai_ready;
  models::GroundingResult grounding;
  std::vector<models::MaskPrediction> box_masks;  ///< one per used box
  image::Mask mask;                               ///< final (union) mask
  image::Box primary_box;                         ///< top detection
  double confidence = 0.0;                        ///< top detection score
};

/// Resident size of a SliceResult (pixel buffers + masks + boxes) — what
/// the mask-result cache charges against its byte budget.
std::size_t slice_result_bytes(const SliceResult& res) noexcept;

/// On-demand slice feed for streaming Mode B: `slice(z)` produces slice z
/// as raw instrument data and must be safe to call concurrently (the
/// volume pipeline pulls slices from its worker threads). Lets
/// segment_volume run over a stack that is never materialized — e.g. a
/// multi-gigabyte BigTIFF streamed through io::TiffVolumeReader — with
/// memory bounded by the slices in flight.
struct VolumeSource {
  std::int64_t depth = 0;
  std::function<image::AnyImage(std::int64_t)> slice;
};

/// One Mode-B request shape for all three volume inputs — the
/// BoxPromptOptions pattern applied to segment_volume: instead of three
/// overloads whose parameter type decides ingestion, a VolumeRequest
/// names the source explicitly. Exactly one of `volume`, `source`,
/// `tiff_path` must be engaged (validate() reports every violation;
/// segment_volume throws std::invalid_argument listing them all).
///
/// The factories cover the common spellings; build the struct by hand to
/// combine knobs. `in_memory` takes the volume by value — move it in, or
/// wrap an lvalue you want to keep with `streamed` + a slice lambda to
/// avoid the copy (what the deprecated forwarders do internally).
struct VolumeRequest {
  std::string prompt;
  std::optional<image::VolumeU16> volume;  ///< materialized stack (owned)
  std::optional<VolumeSource> source;      ///< on-demand slice feed
  std::optional<std::string> tiff_path;    ///< streamed straight from disk
  /// Parse/decode ceilings for the `tiff_path` source (ignored otherwise).
  io::TiffReadLimits tiff_limits{};
  /// Byte-source knob for `tiff_path`: "auto" | "memory" | "pread" |
  /// "mmap" ("auto" resolves via ZENESIS_TIFF_SOURCE and platform
  /// support; unknown strings are validate() errors).
  std::string tiff_source_kind = "auto";
  /// madvise prefetch hints for mmap sources (io::TiffOpenOptions).
  bool tiff_prefetch = true;

  static VolumeRequest in_memory(image::VolumeU16 vol, std::string text);
  /// Borrows `vol` (no copy): the caller keeps ownership and must keep it
  /// alive through the segment_volume call. Implemented as a `streamed`
  /// feed over the stack's slices.
  static VolumeRequest view(const image::VolumeU16& vol, std::string text);
  static VolumeRequest streamed(VolumeSource src, std::string text);
  static VolumeRequest from_file(std::string path, std::string text,
                                 io::TiffReadLimits limits = {});
  /// Full ingestion control: byte-source kind, limits and prefetch in
  /// one io::TiffOpenOptions.
  static VolumeRequest from_file(std::string path, std::string text,
                                 const io::TiffOpenOptions& open);

  /// The io::TiffOpenOptions this request's knobs denote (valid only
  /// after validate() returned empty).
  io::TiffOpenOptions tiff_open_options() const;

  /// One message per problem (source count, null slice fn, negative
  /// depth); empty = valid.
  std::vector<std::string> validate() const;
};

/// Volume (Mode B) output: per-slice results plus the box sequences
/// before/after heuristic refinement.
struct VolumeResult {
  std::vector<SliceResult> slices;
  std::vector<image::Box> raw_boxes;
  std::vector<image::Box> refined_boxes;
  std::vector<bool> replaced;
  int replaced_count = 0;

  std::vector<image::Mask> masks() const {
    std::vector<image::Mask> out;
    out.reserve(slices.size());
    for (const auto& s : slices) out.push_back(s.mask);
    return out;
  }
};

class ZenesisPipeline {
 public:
  explicit ZenesisPipeline(const PipelineConfig& cfg = {});

  const PipelineConfig& config() const noexcept { return cfg_; }
  const models::SamModel& sam() const noexcept { return sam_; }
  const models::GroundingDetector& detector() const noexcept { return dino_; }

  /// Feature-cache hit/miss/eviction counters (all zero when the cache is
  /// disabled — a disabled cache never records traffic).
  models::FeatureCacheStats cache_stats() const { return cache_->stats(); }

  /// Mask-result cache counters (same disabled-means-silent contract).
  cache::LruCacheStats mask_cache_stats() const {
    return mask_cache_->stats();
  }

  /// Cached (or freshly computed, when caching is off) encoder output for
  /// `ready` under the SAM backbone. Interactive flows that prompt the
  /// same slice repeatedly (HITL rectification) share the pipeline's
  /// cache through this.
  std::shared_ptr<const models::SamEncoded> encode_cached(
      const image::ImageF32& ready) const {
    return cache_->encode(ready, sam_.backbone());
  }

  /// Readiness layer only (Fig. 1 transform).
  image::ImageF32 make_ready(const image::AnyImage& raw) const;

  /// Mode A on raw instrument data.
  SliceResult segment(const image::AnyImage& raw, const std::string& prompt) const;

  /// Mode A on an already AI-ready image.
  SliceResult segment_ready(const image::ImageF32& ready,
                            const std::string& prompt) const;

  /// Segment with an explicit user box instead of text grounding
  /// (interactive bounding-box guidance). Default options reproduce the
  /// old two-argument overload (pure SAM ranking); set `opts.prompt` to
  /// keep the text's concept direction for mask selection.
  SliceResult segment_with_box(const image::ImageF32& ready,
                               const image::Box& box,
                               const BoxPromptOptions& opts = {}) const;

  /// Mode B: batch volume with temporal refinement, over whichever source
  /// the request engages (materialized stack, on-demand slice feed, or a
  /// TIFF file streamed through io::TiffVolumeReader). Slices are
  /// segmented in parallel across `config().volume_threads` workers and
  /// gathered in slice order, so the result is byte-identical to the
  /// serial path regardless of thread count — and identical across the
  /// three source kinds for the same pixel data.
  VolumeResult segment_volume(const VolumeRequest& request) const;

  /// Deprecated forwarder: wraps the volume in a VolumeRequest (by
  /// reference — no copy of the stack).
  [[deprecated("use segment_volume(VolumeRequest) / VolumeRequest::in_memory")]]
  VolumeResult segment_volume(const image::VolumeU16& volume,
                              const std::string& prompt) const;

  /// Deprecated forwarder for the slice-feed overload.
  [[deprecated("use segment_volume(VolumeRequest) / VolumeRequest::streamed")]]
  VolumeResult segment_volume(const VolumeSource& source,
                              const std::string& prompt) const;

  /// Mode B over independent images, scheduled like segment_volume.
  std::vector<SliceResult> segment_images(
      const std::vector<image::AnyImage>& images,
      const std::string& prompt) const;

  /// Hierarchical Further Segment: crops `roi` from the parent's AI-ready
  /// image, re-runs DINO+SAM inside it, and returns the child result in
  /// parent coordinates (mask pasted back at the ROI offset).
  SliceResult further_segment(const SliceResult& parent, const image::Box& roi,
                              const std::string& prompt) const;

  /// Multi-object segmentation (the paper's future-work item 2): one
  /// prompt per object class. Each prompt is grounded and segmented
  /// independently; pixels claimed by several classes go to the prompt
  /// with the highest pixel-level text alignment. Label 0 = background,
  /// label i = prompts[i-1].
  struct MultiObjectResult {
    image::Image<std::int32_t> labels;
    std::vector<SliceResult> per_prompt;
  };
  MultiObjectResult segment_multi(const image::AnyImage& raw,
                                  const std::vector<std::string>& prompts) const;

 private:
  /// Shared Mode-B body: all segment_volume spellings land here with a
  /// validated slice feed.
  VolumeResult run_volume(const VolumeSource& source,
                          const std::string& prompt) const;

  /// Runs SAM over the top-k grounded boxes and unions the masks.
  SliceResult assemble(image::ImageF32 ready,
                       models::GroundingResult grounding) const;

  /// Pool used for Mode-B slice scheduling (global or dedicated).
  parallel::ThreadPool& volume_pool() const;

  /// Runs `body(i)` for i in [0, n) — serial when volume_threads == 1,
  /// otherwise one slice at a time pulled dynamically from volume_pool().
  void for_each_slice(std::int64_t n,
                      const std::function<void(std::int64_t)>& body) const;

  PipelineConfig cfg_;
  models::GroundingDetector dino_;
  models::SamModel sam_;
  /// Internally synchronized; safe to use from const methods and from
  /// concurrent slice tasks.
  std::unique_ptr<models::FeatureCache> cache_;
  /// Finished SliceResults keyed by (image hash, request hash); the
  /// request hash folds in decode_fingerprint_. Internally synchronized.
  std::unique_ptr<cache::ShardedLruCache<SliceResult>> mask_cache_;
  std::uint64_t decode_fingerprint_ = 0;
  std::unique_ptr<parallel::ThreadPool> pool_;  ///< only when volume_threads > 1
};

// --- Baselines (the paper's comparison columns) ---

/// Otsu thresholding on the AI-ready image (Table 1). On these datasets
/// the catalyst phase is the brighter one, so the mask is `> threshold`.
image::Mask baseline_otsu(const image::ImageF32& ready);

/// SAM-only: automatic mask generation, max-confidence pick (Table 2).
image::Mask baseline_sam_only(const models::SamModel& sam,
                              const image::ImageF32& ready,
                              const models::AutoMaskConfig& cfg = {});

}  // namespace zenesis::core
