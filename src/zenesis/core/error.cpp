#include "zenesis/core/error.hpp"

#include <ostream>
#include <stdexcept>

#include "zenesis/io/tiff_error.hpp"

namespace zenesis::core {

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kNone: return "None";
    case ErrorCode::kInvalidArgument: return "InvalidArgument";
    case ErrorCode::kIo: return "Io";
    case ErrorCode::kLimitExceeded: return "LimitExceeded";
    case ErrorCode::kUnsupported: return "Unsupported";
    case ErrorCode::kCancelled: return "Cancelled";
    case ErrorCode::kDeadlineExpired: return "DeadlineExpired";
    case ErrorCode::kQueueFull: return "QueueFull";
    case ErrorCode::kShuttingDown: return "ShuttingDown";
    case ErrorCode::kInternal: return "Internal";
  }
  return "Unknown";
}

std::string Error::to_string() const {
  if (ok()) return "ok";
  std::string out = "[";
  out += core::to_string(code);
  if (!stage.empty()) {
    out += " @ ";
    out += stage;
  }
  out += "] ";
  out += message;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Error& error) {
  return os << error.to_string();
}

Error error_from_current_exception(std::string stage) {
  Error e;
  e.stage = std::move(stage);
  try {
    throw;  // rethrow the in-flight exception to dispatch on its type
  } catch (const io::TiffError& t) {
    switch (t.kind()) {
      case io::TiffErrorKind::kLimitExceeded:
        e.code = ErrorCode::kLimitExceeded;
        break;
      case io::TiffErrorKind::kUnsupported:
        e.code = ErrorCode::kUnsupported;
        break;
      default:  // BadHeader / Truncated / CorruptIfd / OffsetOutOfBounds
        e.code = ErrorCode::kIo;
        break;
    }
    e.message = t.what();
  } catch (const std::invalid_argument& ex) {
    e.code = ErrorCode::kInvalidArgument;
    e.message = ex.what();
  } catch (const std::exception& ex) {
    e.code = ErrorCode::kInternal;
    e.message = ex.what();
  } catch (...) {
    e.code = ErrorCode::kInternal;
    e.message = "unknown exception";
  }
  return e;
}

}  // namespace zenesis::core
