#include "zenesis/core/pipeline.hpp"

#include <algorithm>
#include <array>
#include <sstream>
#include <stdexcept>

#include "zenesis/cv/morphology.hpp"
#include "zenesis/cv/threshold.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/io/tiff_stream.hpp"
#include "zenesis/obs/trace.hpp"
#include "zenesis/parallel/parallel_for.hpp"
#include "zenesis/tensor/kernels.hpp"
#include "zenesis/tensor/quant.hpp"

namespace zenesis::core {

std::vector<std::string> PipelineConfig::validate() const {
  std::vector<std::string> issues;
  const auto flag = [&](bool bad, const std::string& msg) {
    if (bad) issues.push_back(msg);
  };
  flag(readiness.lo_percentile < 0.0 || readiness.lo_percentile > 100.0,
       "readiness.lo_percentile must be in [0, 100]");
  flag(readiness.hi_percentile < 0.0 || readiness.hi_percentile > 100.0,
       "readiness.hi_percentile must be in [0, 100]");
  flag(readiness.lo_percentile >= readiness.hi_percentile,
       "readiness.lo_percentile must be below hi_percentile");
  flag(readiness.use_clahe && readiness.clahe_tiles < 1,
       "readiness.clahe_tiles must be >= 1 when CLAHE is enabled");
  flag(grounding.box_threshold < 0.0f,
       "grounding.box_threshold must be non-negative");
  flag(grounding.text_threshold < 0.0f,
       "grounding.text_threshold must be non-negative");
  flag(grounding.min_patches < 0, "grounding.min_patches must be non-negative");
  flag(grounding.pad_fraction < 0.0f,
       "grounding.pad_fraction must be non-negative");
  flag(sam.grow_tolerance < 0.0f, "sam.grow_tolerance must be non-negative");
  flag(sam.min_contrast_cut < 0.0f,
       "sam.min_contrast_cut must be non-negative");
  flag(sam.stability_delta < 0.0f, "sam.stability_delta must be non-negative");
  flag(sam.morph_radius < 0, "sam.morph_radius must be non-negative");
  flag(sam.min_component_area < 0,
       "sam.min_component_area must be non-negative");
  flag(max_boxes < 1, "max_boxes must be >= 1");
  flag(heuristic.window < 1, "heuristic.window must be >= 1");
  flag(heuristic.size_factor <= 0.0, "heuristic.size_factor must be positive");
  flag(feature_cache.enabled && feature_cache.capacity == 0,
       "feature_cache.capacity must be >= 1 when the cache is enabled");
  flag(feature_cache.enabled && feature_cache.capacity != 0 &&
           feature_cache.shards == 0,
       "feature_cache.shards must be >= 1 when the cache is enabled");
  flag(feature_cache.enabled && feature_cache.capacity != 0 &&
           feature_cache.byte_budget == 0,
       "feature_cache.byte_budget must be >= 1 when the cache is enabled");
  flag(mask_cache.enabled && mask_cache.capacity == 0,
       "mask_cache.capacity must be >= 1 when the cache is enabled");
  flag(mask_cache.enabled && mask_cache.capacity != 0 && mask_cache.shards == 0,
       "mask_cache.shards must be >= 1 when the cache is enabled");
  flag(mask_cache.enabled && mask_cache.capacity != 0 &&
           mask_cache.byte_budget == 0,
       "mask_cache.byte_budget must be >= 1 when the cache is enabled");
  if (!tensor::backend_available(kernel_backend)) {
    std::string msg = "kernel_backend '" + kernel_backend +
                      "' is unknown or unavailable on this CPU (available:"
                      " auto";
    for (const auto& name : tensor::available_backends()) msg += " " + name;
    issues.push_back(msg + ")");
  }
  if (precision != "auto" && precision != "fp32" && precision != "int8") {
    issues.push_back("precision '" + precision +
                     "' is unknown (expected auto, fp32 or int8)");
  } else if (precision == "int8") {
    // The backend the pipeline will actually run on: the concrete knob,
    // or the current process-wide selection under "auto".
    const std::string backend = kernel_backend == "auto"
                                    ? std::string(tensor::backend_name())
                                    : kernel_backend;
    if (tensor::backend_available(backend) &&
        !tensor::backend_supports_int8(backend)) {
      issues.push_back("precision 'int8' requires int8 kernels, which "
                       "kernel backend '" +
                       backend + "' does not provide");
    }
  }
  return issues;
}

std::uint64_t decode_config_fingerprint(const PipelineConfig& cfg) {
  std::uint64_t h = cache::kFnvOffset;
  h = cache::fnv1a_value(h, cache::hash_backbone_config(cfg.grounding.backbone));
  h = cache::fnv1a_value(h, cfg.grounding.box_threshold);
  h = cache::fnv1a_value(h, cfg.grounding.text_threshold);
  h = cache::fnv1a_value(h, cfg.grounding.min_patches);
  h = cache::fnv1a_value(h, cfg.grounding.pad_fraction);
  h = cache::fnv1a_value(h, cache::hash_backbone_config(cfg.sam.backbone));
  h = cache::fnv1a_value(h, cfg.sam.grow_tolerance);
  h = cache::fnv1a_value(h, cfg.sam.grow_tolerance_cap);
  h = cache::fnv1a_value(h, cfg.sam.min_contrast_cut);
  h = cache::fnv1a_value(h, cfg.sam.stability_delta);
  h = cache::fnv1a_value(h, cfg.sam.morph_radius);
  h = cache::fnv1a_value(h, cfg.sam.min_component_area);
  h = cache::fnv1a_value(h, cfg.sam.coarse_veto_weight);
  h = cache::fnv1a_value(h, cfg.heuristic.window);
  h = cache::fnv1a_value(h, cfg.heuristic.size_factor);
  h = cache::fnv1a_value(h, cfg.heuristic.replace_missing);
  h = cache::fnv1a_value(h, cfg.max_boxes);
  h = cache::fnv1a_value(h, cfg.enable_heuristic_refine);
  // Resolved kernel backend: "auto" means whatever the process-wide
  // selection (ZENESIS_KERNEL or CPU detection) lands on, so the name
  // actually producing the floats is hashed, not the knob's spelling.
  const std::string resolved = cfg.kernel_backend == "auto"
                                   ? std::string(tensor::backend_name())
                                   : cfg.kernel_backend;
  h = cache::fnv1a_value(h, resolved.size());
  h = cache::fnv1a_bytes(h, resolved.data(), resolved.size());
  // Resolved precision, same rule: hash the name actually producing the
  // floats ("auto" → the process-wide ZENESIS_PRECISION selection), so
  // fp32 and int8 masks can never alias in the mask cache.
  const std::string precision = cfg.precision == "auto"
                                    ? std::string(tensor::quant::precision_name())
                                    : cfg.precision;
  h = cache::fnv1a_value(h, precision.size());
  h = cache::fnv1a_bytes(h, precision.data(), precision.size());
  return h;
}

std::size_t slice_result_bytes(const SliceResult& res) noexcept {
  std::size_t bytes = sizeof(SliceResult);
  bytes += res.ai_ready.pixels().size() * sizeof(float);
  bytes += res.mask.pixels().size();
  bytes += res.grounding.relevance.pixels().size() * sizeof(float);
  bytes += res.grounding.boxes.size() * sizeof(image::ScoredBox);
  for (const auto& bm : res.box_masks) {
    bytes += sizeof(bm) + bm.mask.pixels().size();
  }
  return bytes;
}

namespace {

PipelineConfig checked(const PipelineConfig& cfg) {
  const std::vector<std::string> issues = cfg.validate();
  if (!issues.empty()) {
    std::ostringstream msg;
    msg << "invalid PipelineConfig:";
    for (const auto& issue : issues) msg << "\n  - " << issue;
    throw std::invalid_argument(msg.str());
  }
  // A concrete backend name is applied process-wide before any member
  // model runs its first kernel. "auto" deliberately does NOT call
  // set_backend — it defers to ZENESIS_KERNEL / CPU detection, so a
  // default-configured pipeline never clobbers an explicit selection.
  if (cfg.kernel_backend != "auto") {
    tensor::set_backend(cfg.kernel_backend);  // validated above
  }
  // Precision follows the same contract — and is applied AFTER the
  // backend so an int8 request is checked against the backend this
  // pipeline just selected.
  if (cfg.precision != "auto") {
    tensor::quant::set_precision(cfg.precision);  // validated above
  }
  return cfg;
}

/// Mask-cache key for a text-grounded slice request. The image hash is
/// one half; the other folds a call-shape tag, the decode fingerprint,
/// and the prompt, so the two request kinds can never alias.
cache::Key128 slice_request_key(const image::ImageF32& ready,
                                const std::string& prompt,
                                std::uint64_t fingerprint) {
  std::uint64_t h = cache::kFnvOffset;
  h = cache::fnv1a_value(h, std::uint32_t{1});  // call-shape tag
  h = cache::fnv1a_value(h, fingerprint);
  h = cache::fnv1a_value(h, prompt.size());
  h = cache::fnv1a_bytes(h, prompt.data(), prompt.size());
  return {models::hash_image(ready), h};
}

/// Mask-cache key for an explicit-box request (tag 2 + box + options).
cache::Key128 box_request_key(const image::ImageF32& ready,
                              const image::Box& box,
                              const BoxPromptOptions& opts,
                              std::uint64_t fingerprint) {
  std::uint64_t h = cache::kFnvOffset;
  h = cache::fnv1a_value(h, std::uint32_t{2});  // call-shape tag
  h = cache::fnv1a_value(h, fingerprint);
  h = cache::fnv1a_value(h, box.x);
  h = cache::fnv1a_value(h, box.y);
  h = cache::fnv1a_value(h, box.w);
  h = cache::fnv1a_value(h, box.h);
  h = cache::fnv1a_value(h, static_cast<int>(opts.ranking));
  h = cache::fnv1a_value(h, opts.prompt.has_value());
  if (opts.prompt) {
    h = cache::fnv1a_value(h, opts.prompt->size());
    h = cache::fnv1a_bytes(h, opts.prompt->data(), opts.prompt->size());
  }
  return {models::hash_image(ready), h};
}

}  // namespace

ZenesisPipeline::ZenesisPipeline(const PipelineConfig& cfg)
    : cfg_(checked(cfg)),
      dino_(cfg.grounding),
      sam_(cfg.sam),
      cache_(std::make_unique<models::FeatureCache>(cfg.feature_cache)),
      mask_cache_(std::make_unique<cache::ShardedLruCache<SliceResult>>(
          cfg.mask_cache)),
      decode_fingerprint_(decode_config_fingerprint(cfg_)),
      pool_(cfg.volume_threads > 1
                ? std::make_unique<parallel::ThreadPool>(cfg.volume_threads)
                : nullptr) {}

parallel::ThreadPool& ZenesisPipeline::volume_pool() const {
  return pool_ ? *pool_ : parallel::ThreadPool::global();
}

void ZenesisPipeline::for_each_slice(
    std::int64_t n, const std::function<void(std::int64_t)>& body) const {
  if (cfg_.volume_threads == 1) {
    for (std::int64_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Grain 1: per-slice cost is irregular (detection count varies), so
  // idle workers pull slices dynamically. Each index writes to its own
  // output slot, so gathering preserves slice order bit-exactly.
  parallel::parallel_for_chunked(
      0, n, 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) body(i);
      },
      volume_pool());
}

image::ImageF32 ZenesisPipeline::make_ready(const image::AnyImage& raw) const {
  obs::Span span("pipeline.readiness");
  return image::make_ai_ready(raw, cfg_.readiness);
}

SliceResult ZenesisPipeline::segment(const image::AnyImage& raw,
                                     const std::string& prompt) const {
  return segment_ready(make_ready(raw), prompt);
}

SliceResult ZenesisPipeline::segment_ready(const image::ImageF32& ready,
                                           const std::string& prompt) const {
  const bool memoize =
      cfg_.mask_cache.enabled && cfg_.mask_cache.capacity != 0;
  cache::Key128 key;
  if (memoize) {
    key = slice_request_key(ready, prompt, decode_fingerprint_);
    obs::Span span("cache.mask_lookup", 0);
    if (const auto hit = mask_cache_->get(key)) {
      span.set_arg(1);
      return *hit;
    }
  }
  const auto enc = cache_->encode(ready, dino_.backbone());
  models::GroundingResult g = [&] {
    obs::Span span("dino.detect");
    return dino_.detect(enc->maps, enc->enc, prompt);
  }();
  SliceResult res = assemble(ready, std::move(g));
  if (memoize) {
    mask_cache_->put(key, std::make_shared<const SliceResult>(res),
                     slice_result_bytes(res));
  }
  return res;
}

SliceResult ZenesisPipeline::segment_with_box(const image::ImageF32& ready,
                                              const image::Box& box,
                                              const BoxPromptOptions& opts) const {
  // Text-guided ranking needs a prompt and must not be explicitly turned
  // off; every other combination is the pure-SAM path of the old
  // two-argument overload (kSamScore deliberately ignores the prompt so
  // forcing SAM ranking reproduces that path bit-exactly).
  const bool text_ranked = opts.prompt.has_value() &&
                           opts.ranking != BoxPromptOptions::Ranking::kSamScore;
  const bool memoize =
      cfg_.mask_cache.enabled && cfg_.mask_cache.capacity != 0;
  cache::Key128 key;
  if (memoize) {
    key = box_request_key(ready, box, opts, decode_fingerprint_);
    obs::Span span("cache.mask_lookup", 0);
    if (const auto hit = mask_cache_->get(key)) {
      span.set_arg(1);
      return *hit;
    }
  }
  SliceResult res = [&] {
    if (text_ranked) {
      return assemble(ready, dino_.ground_box(box, *opts.prompt));
    }
    models::GroundingResult g;
    g.boxes.push_back({box, 1.0});
    return assemble(ready, std::move(g));
  }();
  if (memoize) {
    mask_cache_->put(key, std::make_shared<const SliceResult>(res),
                     slice_result_bytes(res));
  }
  return res;
}

namespace {

/// Pixel-level text alignment: the prompt's aggregated concept direction
/// dotted with a pixel's mean-centered engineered features.
class AlignmentScorer {
 public:
  AlignmentScorer(const models::GroundingResult& g,
                  const models::SamEncoded& enc, const image::Box& box)
      : g_(g), enc_(enc), box_(box.clipped(enc.maps.width, enc.maps.height)) {
    if (!g.has_direction || box_.empty()) return;
    for (int c = 0; c < models::kFeatureChannels; ++c) {
      mean_[static_cast<std::size_t>(c)] = enc.enc.mean_feature.at(c);
    }
    // Background level θ (box median alignment) and a light area penalty
    // λ derived from the box's alignment spread: a candidate is rewarded
    // for every pixel whose alignment clears the box's typical level by
    // more than the penalty. This prefers covering all prompt-consistent
    // pixels (dim agglomerate cores included) while still dropping bulk
    // background whose alignment hovers at θ.
    std::vector<float> values;
    values.reserve(static_cast<std::size_t>(box_.area()));
    for (std::int64_t y = box_.y; y < box_.bottom(); ++y) {
      for (std::int64_t x = box_.x; x < box_.right(); ++x) {
        values.push_back(at(x, y));
      }
    }
    auto mid = values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2);
    std::nth_element(values.begin(), mid, values.end());
    theta_ = *mid;
    const auto p90 =
        static_cast<std::size_t>(0.9 * static_cast<double>(values.size() - 1));
    std::nth_element(values.begin(),
                     values.begin() + static_cast<std::ptrdiff_t>(p90),
                     values.end());
    lambda_ = 0.40 * std::max(0.0f, values[p90] - theta_);
    valid_ = true;
  }

  bool valid() const noexcept { return valid_; }

  /// Alignment of one pixel.
  float at(std::int64_t x, std::int64_t y) const {
    float dot = 0.0f;
    for (int c = 0; c < models::kFeatureChannels; ++c) {
      const auto ci = static_cast<std::size_t>(c);
      dot += g_.concept_direction[ci] *
             (enc_.maps.channels[ci].at(x, y) - mean_[ci]);
    }
    return dot;
  }

  /// Total evidence of a mask: Σ over foreground of (alignment − θ − λ).
  double score(const image::Mask& mask) const {
    double sum = 0.0;
    for (std::int64_t y = box_.y; y < box_.bottom(); ++y) {
      for (std::int64_t x = box_.x; x < box_.right(); ++x) {
        if (mask.at(x, y) == 0) continue;
        sum += static_cast<double>(at(x, y)) - theta_ - lambda_;
      }
    }
    return sum;
  }

 private:
  const models::GroundingResult& g_;
  const models::SamEncoded& enc_;
  image::Box box_;
  std::array<float, models::kFeatureChannels> mean_{};
  float theta_ = 0.0f;
  double lambda_ = 0.0;
  bool valid_ = false;
};

}  // namespace

SliceResult ZenesisPipeline::assemble(image::ImageF32 ready,
                                      models::GroundingResult grounding) const {
  obs::Span span("sam.decode", grounding.boxes.size());
  SliceResult res;
  res.mask = image::Mask(ready.width(), ready.height());
  const auto enc_ptr = encode_cached(ready);
  const models::SamEncoded& enc = *enc_ptr;
  const bool have_relevance = grounding.has_direction;
  const int k = std::max(1, cfg_.max_boxes);
  const std::size_t n =
      std::min<std::size_t>(grounding.boxes.size(), static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    // SAM's multimask output: the pipeline selects the candidate whose
    // pixels carry the highest text relevance (the Grounded-SAM pattern of
    // ranking mask proposals with the grounding signal). Without a
    // relevance map (explicit user box), fall back to SAM's own ranking.
    models::MaskPrediction pred;
    const AlignmentScorer scorer(grounding, enc, grounding.boxes[i].box);
    if (have_relevance && scorer.valid()) {
      auto candidates = sam_.predict_box_candidates(enc, grounding.boxes[i].box);
      // Two-stage selection: text-alignment evidence shortlists the
      // candidates (right phase, right coverage); boundary adherence —
      // mean edge strength along the mask outline — breaks ties between
      // scales (a crisp fine-scale outline hugs real interfaces, a
      // blurred coarse outline floats in the halo).
      std::vector<double> scores(candidates.size());
      double smax = -1e30;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        scores[c] = scorer.score(candidates[c].mask);
        smax = std::max(smax, scores[c]);
      }
      const auto boundary_adherence = [&](const image::Mask& mask) {
        const image::Mask boundary = cv::boundary_gradient(mask);
        double sum = 0.0;
        std::int64_t count = 0;
        for (std::int64_t y = 0; y < boundary.height(); ++y) {
          for (std::int64_t x = 0; x < boundary.width(); ++x) {
            if (boundary.at(x, y) == 0) continue;
            sum += enc.maps.channels[models::kEdge].at(x, y);
            ++count;
          }
        }
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
      };
      double best_adherence = -1.0;
      std::size_t best_idx = candidates.size();
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const bool shortlisted =
            smax > 0.0 ? scores[c] >= 0.7 * smax : scores[c] == smax;
        if (!shortlisted) continue;
        const double adherence = boundary_adherence(candidates[c].mask);
        if (adherence > best_adherence) {
          best_adherence = adherence;
          best_idx = c;
        }
      }
      if (best_idx < candidates.size()) {
        pred = std::move(candidates[best_idx]);
      } else {
        pred.mask = image::Mask(ready.width(), ready.height());
      }
    } else {
      pred = sam_.predict_box(enc, grounding.boxes[i].box);
    }
    res.mask = image::mask_or(res.mask, pred.mask);
    res.box_masks.push_back(std::move(pred));
  }
  if (!grounding.boxes.empty()) {
    res.primary_box = grounding.boxes.front().box;
    res.confidence = grounding.boxes.front().score;
  }
  res.grounding = std::move(grounding);
  res.ai_ready = std::move(ready);
  return res;
}

VolumeRequest VolumeRequest::in_memory(image::VolumeU16 vol, std::string text) {
  VolumeRequest r;
  r.volume = std::move(vol);
  r.prompt = std::move(text);
  return r;
}

VolumeRequest VolumeRequest::view(const image::VolumeU16& vol,
                                  std::string text) {
  VolumeSource source;
  source.depth = vol.depth();
  source.slice = [v = &vol](std::int64_t z) {
    return image::AnyImage(v->slice(z));
  };
  return streamed(std::move(source), std::move(text));
}

VolumeRequest VolumeRequest::streamed(VolumeSource src, std::string text) {
  VolumeRequest r;
  r.source = std::move(src);
  r.prompt = std::move(text);
  return r;
}

VolumeRequest VolumeRequest::from_file(std::string path, std::string text,
                                       io::TiffReadLimits limits) {
  VolumeRequest r;
  r.tiff_path = std::move(path);
  r.prompt = std::move(text);
  r.tiff_limits = limits;
  return r;
}

VolumeRequest VolumeRequest::from_file(std::string path, std::string text,
                                       const io::TiffOpenOptions& open) {
  VolumeRequest r;
  r.tiff_path = std::move(path);
  r.prompt = std::move(text);
  r.tiff_limits = open.limits;
  r.tiff_source_kind = io::to_string(open.source_kind);
  r.tiff_prefetch = open.prefetch;
  return r;
}

io::TiffOpenOptions VolumeRequest::tiff_open_options() const {
  io::TiffOpenOptions open;
  if (const auto kind = io::parse_source_kind(tiff_source_kind)) {
    open.source_kind = *kind;
  }
  open.limits = tiff_limits;
  open.prefetch = tiff_prefetch;
  return open;
}

std::vector<std::string> VolumeRequest::validate() const {
  std::vector<std::string> issues;
  const int engaged = (volume.has_value() ? 1 : 0) +
                      (source.has_value() ? 1 : 0) +
                      (tiff_path.has_value() ? 1 : 0);
  if (engaged != 1) {
    issues.push_back(
        "exactly one of volume/source/tiff_path must be set (got " +
        std::to_string(engaged) + ")");
  }
  if (source) {
    if (!source->slice) issues.push_back("VolumeSource::slice not set");
    if (source->depth < 0) issues.push_back("negative VolumeSource depth");
  }
  if (tiff_path && tiff_path->empty()) issues.push_back("empty tiff_path");
  if (!io::parse_source_kind(tiff_source_kind)) {
    issues.push_back("unknown tiff_source_kind \"" + tiff_source_kind +
                     "\" (expected auto|memory|pread|mmap)");
  }
  return issues;
}

VolumeResult ZenesisPipeline::segment_volume(const VolumeRequest& request) const {
  const std::vector<std::string> issues = request.validate();
  if (!issues.empty()) {
    std::ostringstream msg;
    msg << "invalid VolumeRequest:";
    for (const auto& issue : issues) msg << "\n  - " << issue;
    throw std::invalid_argument(msg.str());
  }
  if (request.volume) {
    VolumeSource source;
    source.depth = request.volume->depth();
    source.slice = [vol = &*request.volume](std::int64_t z) {
      return image::AnyImage(vol->slice(z));
    };
    return run_volume(source, request.prompt);
  }
  if (request.tiff_path) {
    // Streamed ingestion: parse once, decode slices on demand from the
    // volume workers (the reader is internally synchronized). TiffError
    // from parse or decode propagates to the caller — serve maps it into
    // core::Error via error_from_current_exception.
    const io::TiffVolumeReader reader = io::TiffVolumeReader::open(
        *request.tiff_path, request.tiff_open_options());
    reader.require_uniform_geometry();
    VolumeSource source;
    source.depth = reader.pages();
    source.slice = [&reader](std::int64_t z) { return reader.read_page(z); };
    return run_volume(source, request.prompt);
  }
  return run_volume(*request.source, request.prompt);
}

VolumeResult ZenesisPipeline::segment_volume(const image::VolumeU16& volume,
                                             const std::string& prompt) const {
  // Wraps by reference (no copy of the stack) — the request outlives the
  // call, so lifetime matches the old overload exactly.
  VolumeSource source;
  source.depth = volume.depth();
  source.slice = [&volume](std::int64_t z) {
    return image::AnyImage(volume.slice(z));
  };
  return run_volume(source, prompt);
}

VolumeResult ZenesisPipeline::segment_volume(const VolumeSource& source,
                                             const std::string& prompt) const {
  return segment_volume(VolumeRequest::streamed(source, prompt));
}

VolumeResult ZenesisPipeline::run_volume(const VolumeSource& source,
                                         const std::string& prompt) const {
  if (!source.slice) {
    throw std::invalid_argument("segment_volume: VolumeSource::slice not set");
  }
  if (source.depth < 0) {
    throw std::invalid_argument("segment_volume: negative VolumeSource depth");
  }
  obs::Span volume_span("pipeline.volume", source.depth);
  VolumeResult res;
  const std::int64_t depth = source.depth;
  res.slices.resize(static_cast<std::size_t>(depth));
  for_each_slice(depth, [&](std::int64_t z) {
    // The raw slice lives only for this task; what persists is the
    // SliceResult (AI-ready image + mask), so a streamed stack is never
    // held in memory whole in its raw form.
    obs::Span span("pipeline.slice", z);
    res.slices[static_cast<std::size_t>(z)] = segment(source.slice(z), prompt);
  });
  res.raw_boxes.reserve(res.slices.size());
  for (const auto& s : res.slices) res.raw_boxes.push_back(s.primary_box);
  res.refined_boxes = res.raw_boxes;
  res.replaced.assign(res.raw_boxes.size(), false);
  if (cfg_.enable_heuristic_refine) {
    obs::Span refine_span("heuristic.refine");
    const volume3d::RefineOutcome refined =
        volume3d::refine_box_sequence(res.raw_boxes, cfg_.heuristic);
    res.refined_boxes = refined.boxes;
    res.replaced = refined.replaced;
    res.replaced_count = refined.replaced_count;
    refine_span.set_arg(static_cast<std::uint64_t>(refined.replaced_count));
    // Re-segment the corrected slices from their replacement box. With
    // the feature cache on, each slice's encoder output is a hit here.
    for_each_slice(static_cast<std::int64_t>(res.slices.size()),
                   [&](std::int64_t zi) {
      const auto i = static_cast<std::size_t>(zi);
      if (!res.replaced[i] || res.refined_boxes[i].empty()) return;
      obs::Span span("pipeline.rectify_slice", zi);
      SliceResult fixed = segment_with_box(res.slices[i].ai_ready,
                                           res.refined_boxes[i],
                                           BoxPromptOptions{prompt, {}});
      res.slices[i].mask = std::move(fixed.mask);
      res.slices[i].box_masks = std::move(fixed.box_masks);
      res.slices[i].primary_box = res.refined_boxes[i];
    });
  }
  return res;
}

std::vector<SliceResult> ZenesisPipeline::segment_images(
    const std::vector<image::AnyImage>& images, const std::string& prompt) const {
  std::vector<SliceResult> out(images.size());
  for_each_slice(static_cast<std::int64_t>(images.size()), [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] =
        segment(images[static_cast<std::size_t>(i)], prompt);
  });
  return out;
}

SliceResult ZenesisPipeline::further_segment(const SliceResult& parent,
                                             const image::Box& roi,
                                             const std::string& prompt) const {
  obs::Span span("pipeline.further_segment");
  const image::Box clipped =
      roi.clipped(parent.ai_ready.width(), parent.ai_ready.height());
  SliceResult child;
  child.ai_ready = parent.ai_ready;
  child.mask = image::Mask(parent.ai_ready.width(), parent.ai_ready.height());
  if (clipped.empty()) return child;

  const image::ImageF32 cropped = image::crop(parent.ai_ready, clipped);
  SliceResult local = segment_ready(cropped, prompt);

  // Lift the child's result back into parent coordinates.
  image::paste_mask(child.mask, local.mask, clipped);
  child.grounding = local.grounding;
  for (auto& sb : child.grounding.boxes) {
    sb.box.x += clipped.x;
    sb.box.y += clipped.y;
  }
  if (!child.grounding.boxes.empty()) {
    child.primary_box = child.grounding.boxes.front().box;
    child.confidence = child.grounding.boxes.front().score;
  }
  child.box_masks = std::move(local.box_masks);
  for (auto& bm : child.box_masks) {
    image::Mask lifted(child.ai_ready.width(), child.ai_ready.height());
    image::paste_mask(lifted, bm.mask, clipped);
    bm.mask = std::move(lifted);
  }
  return child;
}

ZenesisPipeline::MultiObjectResult ZenesisPipeline::segment_multi(
    const image::AnyImage& raw, const std::vector<std::string>& prompts) const {
  obs::Span span("pipeline.multi", prompts.size());
  const image::ImageF32 ready = make_ready(raw);
  MultiObjectResult res;
  res.labels = image::Image<std::int32_t>(ready.width(), ready.height(), 1);
  res.per_prompt.reserve(prompts.size());
  for (const auto& prompt : prompts) {
    res.per_prompt.push_back(segment_ready(ready, prompt));
  }
  // Conflicts go to the class whose concept direction aligns best with
  // the pixel's features (same signal the single-object path uses for
  // mask selection).
  const auto enc_ptr = encode_cached(ready);
  const models::SamEncoded& enc = *enc_ptr;
  std::array<float, models::kFeatureChannels> mean{};
  for (int c = 0; c < models::kFeatureChannels; ++c) {
    mean[static_cast<std::size_t>(c)] = enc.enc.mean_feature.at(c);
  }
  for (std::int64_t y = 0; y < ready.height(); ++y) {
    for (std::int64_t x = 0; x < ready.width(); ++x) {
      std::int32_t best_label = 0;
      float best_score = -1e30f;
      for (std::size_t i = 0; i < res.per_prompt.size(); ++i) {
        if (res.per_prompt[i].mask.at(x, y) == 0) continue;
        float dot = 0.0f;
        for (int c = 0; c < models::kFeatureChannels; ++c) {
          const auto ci = static_cast<std::size_t>(c);
          dot += res.per_prompt[i].grounding.concept_direction[ci] *
                 (enc.maps.channels[ci].at(x, y) - mean[ci]);
        }
        if (dot > best_score) {
          best_score = dot;
          best_label = static_cast<std::int32_t>(i) + 1;
        }
      }
      res.labels.at(x, y) = best_label;
    }
  }
  return res;
}

image::Mask baseline_otsu(const image::ImageF32& ready) {
  return cv::otsu_threshold(ready).mask;
}

image::Mask baseline_sam_only(const models::SamModel& sam,
                              const image::ImageF32& ready,
                              const models::AutoMaskConfig& cfg) {
  const models::AutomaticMaskGenerator gen(sam, cfg);
  return gen.segment_best(ready);
}

}  // namespace zenesis::core
