#include "zenesis/core/session.hpp"

#include <algorithm>

#include "zenesis/io/tiff_stream.hpp"
#include "zenesis/obs/trace.hpp"

namespace zenesis::core {

Session::Session(const PipelineConfig& cfg) : pipeline_(cfg) {}

SliceResult Session::mode_a_segment(const image::AnyImage& raw,
                                    const std::string& prompt) const {
  return pipeline_.segment(raw, prompt);
}

SliceResult Session::mode_a_segment_slice(const image::VolumeU16& volume,
                                          std::int64_t slice,
                                          const std::string& prompt) const {
  return pipeline_.segment(image::AnyImage(volume.slice(slice)), prompt);
}

ZenesisPipeline::MultiObjectResult Session::mode_a_segment_multi(
    const image::AnyImage& raw, const std::vector<std::string>& prompts) const {
  return pipeline_.segment_multi(raw, prompts);
}

VolumeResult Session::mode_b_segment_volume(const VolumeRequest& request) const {
  return pipeline_.segment_volume(request);
}

VolumeResult Session::mode_b_segment_volume(const image::VolumeU16& volume,
                                            const std::string& prompt) const {
  return pipeline_.segment_volume(VolumeRequest::view(volume, prompt));
}

VolumeResult Session::mode_b_segment_volume(const VolumeSource& source,
                                            const std::string& prompt) const {
  return pipeline_.segment_volume(VolumeRequest::streamed(source, prompt));
}

VolumeResult Session::mode_b_segment_volume_file(
    const std::string& tiff_path, const std::string& prompt,
    const io::TiffReadLimits& limits) const {
  return pipeline_.segment_volume(
      VolumeRequest::from_file(tiff_path, prompt, limits));
}

VolumeResult Session::mode_b_segment_volume_file(
    const std::string& tiff_path, const std::string& prompt,
    const io::TiffOpenOptions& open) const {
  return pipeline_.segment_volume(
      VolumeRequest::from_file(tiff_path, prompt, open));
}

std::vector<SliceResult> Session::mode_b_segment_images(
    const std::vector<image::AnyImage>& images, const std::string& prompt) const {
  return pipeline_.segment_images(images, prompt);
}

void Session::add_stats_source(StatsSource source) {
  if (source) stats_sources_.push_back(StatsEntry{std::move(source), nullptr});
}

StatsRegistration Session::add_scoped_stats_source(StatsSource source) {
  if (!source) return StatsRegistration{};
  auto alive = std::make_shared<std::atomic<bool>>(true);
  stats_sources_.push_back(StatsEntry{std::move(source), alive});
  return StatsRegistration{std::move(alive)};
}

void Session::clear_stats_sources() { stats_sources_.clear(); }

void Session::publish_runtime_stats() {
  const models::FeatureCacheStats s = pipeline_.cache_stats();
  dashboard_.set_stat("feature_cache_hits", static_cast<double>(s.hits));
  dashboard_.set_stat("feature_cache_misses", static_cast<double>(s.misses));
  dashboard_.set_stat("feature_cache_evictions", static_cast<double>(s.evictions));
  dashboard_.set_stat("feature_cache_hit_rate", s.hit_rate());
  dashboard_.set_stat("feature_cache_resident_bytes",
                      static_cast<double>(s.resident_bytes));
  dashboard_.set_stat("feature_cache_evicted_bytes",
                      static_cast<double>(s.evicted_bytes));
  dashboard_.set_stat("feature_cache_disk_hits",
                      static_cast<double>(s.disk_hits));
  dashboard_.set_stat("feature_cache_disk_writes",
                      static_cast<double>(s.disk_writes));
  dashboard_.set_stat("feature_cache_disk_errors",
                      static_cast<double>(s.disk_errors));
  const cache::LruCacheStats m = pipeline_.mask_cache_stats();
  dashboard_.set_stat("mask_cache_hits", static_cast<double>(m.hits));
  dashboard_.set_stat("mask_cache_misses", static_cast<double>(m.misses));
  dashboard_.set_stat("mask_cache_evictions",
                      static_cast<double>(m.evictions));
  dashboard_.set_stat("mask_cache_hit_rate", m.hit_rate());
  dashboard_.set_stat("mask_cache_resident_bytes",
                      static_cast<double>(m.resident_bytes));
  if (obs::enabled()) {
    // Per-stage timings over the collector's retained window (the last
    // ~4096 spans per thread), keyed trace_<stage>_* — Mode C's answer to
    // "where does the time go".
    for (const auto& [stage, st] : obs::TraceCollector::global().aggregate()) {
      dashboard_.set_stat("trace_" + stage + "_count",
                          static_cast<double>(st.count));
      dashboard_.set_stat("trace_" + stage + "_mean_us", st.mean_us());
      dashboard_.set_stat("trace_" + stage + "_max_us",
                          static_cast<double>(st.max_us));
    }
  }
  // Prune sources whose scoped registration died (e.g. a SegmentService
  // destroyed before this session) so they are never invoked again.
  stats_sources_.erase(
      std::remove_if(stats_sources_.begin(), stats_sources_.end(),
                     [](const StatsEntry& e) {
                       return e.alive &&
                              !e.alive->load(std::memory_order_relaxed);
                     }),
      stats_sources_.end());
  for (const auto& entry : stats_sources_) entry.fn(dashboard_);
}

eval::Metrics Session::mode_c_evaluate(const std::string& dataset,
                                       const std::string& method,
                                       std::int64_t slice,
                                       const image::Mask& prediction,
                                       const image::Mask& ground_truth) {
  const eval::Metrics m = eval::compute_metrics(prediction, ground_truth);
  dashboard_.add(dataset, method, slice, m);
  // Runtime counters ride along with every evaluation, so rendering the
  // dashboard right after Mode C never shows stale cache/service numbers.
  publish_runtime_stats();
  return m;
}

hitl::RectifyResult Session::rectify(const SliceResult& automated,
                                     const image::Mask& reference,
                                     hitl::SimulatedAnnotator& annotator,
                                     const hitl::RandomBoxConfig& boxes,
                                     std::uint64_t episode_seed) const {
  // The cached encoder output — a rectify episode over a slice the
  // pipeline already segmented reuses the embedding instead of re-running
  // the encoder (SAM's embed-once / prompt-many pattern).
  const auto enc = pipeline_.encode_cached(automated.ai_ready);
  parallel::Rng rng(episode_seed, 4242);
  return hitl::rectify_segmentation(pipeline_.sam(), *enc, automated.mask,
                                    reference, boxes, annotator, rng);
}

SliceResult Session::further_segment(const SliceResult& parent,
                                     const image::Box& roi,
                                     const std::string& prompt) const {
  return pipeline_.further_segment(parent, roi, prompt);
}

}  // namespace zenesis::core
