#pragma once
// zenesis::core::Error — the one error taxonomy callers see.
//
// Before this, each layer surfaced failures its own way: the pipeline
// threw std::invalid_argument, the TIFF subsystem threw io::TiffError,
// and serve::Response carried a free-form what() string — so a client
// deciding "retry / reject upload / shrink request" had to string-match.
// Error collapses all of that into {code, stage, message}: the code is
// what callers branch on, the stage says which subsystem/pipeline stage
// detected the problem (same names the obs tracing spans use), and the
// message keeps the full human-readable detail.

#include <iosfwd>
#include <string>

namespace zenesis::core {

/// Coarse, branch-on-able classification. Codes mirror the failure
/// families of the layers they absorb: serve admission outcomes
/// (kCancelled … kShuttingDown), TIFF ingestion (kIo / kLimitExceeded /
/// kUnsupported via io::TiffErrorKind), and config/request validation
/// (kInvalidArgument). Everything unclassified is kInternal.
enum class ErrorCode {
  kNone,             ///< no error (default-constructed Error)
  kInvalidArgument,  ///< bad config knob or malformed request shape
  kIo,               ///< file/byte-source failure (missing, truncated, corrupt)
  kLimitExceeded,    ///< resource limit or overflow guard tripped
  kUnsupported,      ///< valid input outside the supported feature subset
  kCancelled,        ///< cooperative cancellation before execution
  kDeadlineExpired,  ///< deadline passed before execution
  kQueueFull,        ///< admission backpressure
  kShuttingDown,     ///< submitted to a draining service
  kInternal,         ///< unexpected failure (pipeline bug, unknown exception)
};

/// Stable name for a code ("InvalidArgument", "Io", ...).
const char* to_string(ErrorCode code) noexcept;

struct Error {
  ErrorCode code = ErrorCode::kNone;
  /// Where the error was detected — subsystem/stage names shared with the
  /// obs tracing spans ("serve.decode", "tiff.parse", "pipeline.config").
  std::string stage;
  std::string message;

  bool ok() const noexcept { return code == ErrorCode::kNone; }

  /// "[Io @ tiff.parse] tiff: cannot open ..." (or "ok" when kNone).
  std::string to_string() const;
};

/// Streams Error::to_string() (keeps `<< response.error` working in tests
/// and logs).
std::ostream& operator<<(std::ostream& os, const Error& error);

/// Classifies the exception currently being handled — call inside a catch
/// block. io::TiffError kinds map onto kIo/kLimitExceeded/kUnsupported,
/// std::invalid_argument onto kInvalidArgument, any other std::exception
/// (or non-exception) onto kInternal; what() becomes the message.
Error error_from_current_exception(std::string stage);

}  // namespace zenesis::core
