#include "zenesis/cv/threshold.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "zenesis/cv/filters.hpp"
#include "zenesis/image/normalize.hpp"

namespace zenesis::cv {

int otsu_bin(const std::vector<std::int64_t>& hist) {
  const int bins = static_cast<int>(hist.size());
  if (bins < 2) throw std::invalid_argument("otsu_bin: need >= 2 bins");
  std::int64_t total = 0;
  double sum_all = 0.0;
  for (int b = 0; b < bins; ++b) {
    total += hist[static_cast<std::size_t>(b)];
    sum_all += static_cast<double>(b) * static_cast<double>(hist[static_cast<std::size_t>(b)]);
  }
  if (total == 0) return 0;
  double sum_bg = 0.0;
  std::int64_t w_bg = 0;
  double best_var = -1.0;
  int best_bin = 0;
  for (int b = 0; b < bins - 1; ++b) {
    w_bg += hist[static_cast<std::size_t>(b)];
    if (w_bg == 0) continue;
    const std::int64_t w_fg = total - w_bg;
    if (w_fg == 0) break;
    sum_bg += static_cast<double>(b) * static_cast<double>(hist[static_cast<std::size_t>(b)]);
    const double mean_bg = sum_bg / static_cast<double>(w_bg);
    const double mean_fg = (sum_all - sum_bg) / static_cast<double>(w_fg);
    const double diff = mean_bg - mean_fg;
    const double var = static_cast<double>(w_bg) * static_cast<double>(w_fg) * diff * diff;
    if (var > best_var) {
      best_var = var;
      best_bin = b;
    }
  }
  return best_bin;
}

ThresholdResult otsu_threshold(const image::ImageF32& img) {
  constexpr int kBins = 256;
  const auto hist = image::histogram(img, 0.0f, 1.0f, kBins);
  const int bin = otsu_bin(hist);
  ThresholdResult r;
  r.threshold = (static_cast<float>(bin) + 0.5f) / kBins;
  r.mask = fixed_threshold(img, r.threshold);
  return r;
}

std::vector<float> multi_otsu(const image::ImageF32& img, int levels) {
  if (levels < 2 || levels > 4) {
    throw std::invalid_argument("multi_otsu: levels must be in [2,4]");
  }
  constexpr int kBins = 128;  // exhaustive search → keep the grid modest
  const auto hist = image::histogram(img, 0.0f, 1.0f, kBins);
  std::int64_t total = 0;
  std::array<double, kBins + 1> cum_w{}, cum_s{};
  for (int b = 0; b < kBins; ++b) {
    total += hist[static_cast<std::size_t>(b)];
    cum_w[static_cast<std::size_t>(b + 1)] =
        cum_w[static_cast<std::size_t>(b)] + static_cast<double>(hist[static_cast<std::size_t>(b)]);
    cum_s[static_cast<std::size_t>(b + 1)] =
        cum_s[static_cast<std::size_t>(b)] +
        static_cast<double>(b) * static_cast<double>(hist[static_cast<std::size_t>(b)]);
  }
  if (total == 0) return std::vector<float>(static_cast<std::size_t>(levels - 1), 0.0f);

  // Between-class variance contribution of the bin range [lo, hi).
  auto cls = [&](int lo, int hi) {
    const double w = cum_w[static_cast<std::size_t>(hi)] - cum_w[static_cast<std::size_t>(lo)];
    if (w <= 0.0) return 0.0;
    const double s = cum_s[static_cast<std::size_t>(hi)] - cum_s[static_cast<std::size_t>(lo)];
    const double mean = s / w;
    return w * mean * mean;
  };

  double best = -1.0;
  std::vector<int> best_cuts(static_cast<std::size_t>(levels - 1), 0);
  if (levels == 2) {
    for (int c1 = 1; c1 < kBins; ++c1) {
      const double v = cls(0, c1) + cls(c1, kBins);
      if (v > best) { best = v; best_cuts = {c1}; }
    }
  } else if (levels == 3) {
    for (int c1 = 1; c1 < kBins - 1; ++c1) {
      const double v1 = cls(0, c1);
      for (int c2 = c1 + 1; c2 < kBins; ++c2) {
        const double v = v1 + cls(c1, c2) + cls(c2, kBins);
        if (v > best) { best = v; best_cuts = {c1, c2}; }
      }
    }
  } else {
    for (int c1 = 1; c1 < kBins - 2; ++c1) {
      const double v1 = cls(0, c1);
      for (int c2 = c1 + 1; c2 < kBins - 1; ++c2) {
        const double v2 = v1 + cls(c1, c2);
        for (int c3 = c2 + 1; c3 < kBins; ++c3) {
          const double v = v2 + cls(c2, c3) + cls(c3, kBins);
          if (v > best) { best = v; best_cuts = {c1, c2, c3}; }
        }
      }
    }
  }
  std::vector<float> cuts;
  cuts.reserve(best_cuts.size());
  for (int c : best_cuts) {
    cuts.push_back(static_cast<float>(c) / kBins);
  }
  return cuts;
}

image::Mask adaptive_mean_threshold(const image::ImageF32& img, int radius,
                                    float offset) {
  const image::ImageF32 mean = box_filter(img, radius);
  image::Mask mask(img.width(), img.height());
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      mask.at(x, y) = img.at(x, y) > mean.at(x, y) + offset ? 1 : 0;
    }
  }
  return mask;
}

image::Mask fixed_threshold(const image::ImageF32& img, float t) {
  image::Mask mask(img.width(), img.height());
  auto src = img.pixels();
  auto dst = mask.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i] > t ? 1 : 0;
  return mask;
}

}  // namespace zenesis::cv
