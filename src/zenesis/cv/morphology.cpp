#include "zenesis/cv/morphology.hpp"

#include <stdexcept>
#include <vector>

#include "zenesis/image/geometry.hpp"
#include "zenesis/parallel/parallel_for.hpp"

namespace zenesis::cv {
namespace {

/// Offsets of the structuring element.
std::vector<image::Point> element_offsets(int radius, Element el) {
  std::vector<image::Point> offs;
  const std::int64_t r2 = static_cast<std::int64_t>(radius) * radius;
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      if (el == Element::kDisk &&
          static_cast<std::int64_t>(dx) * dx + static_cast<std::int64_t>(dy) * dy > r2) {
        continue;
      }
      offs.push_back({dx, dy});
    }
  }
  return offs;
}

image::Mask morph(const image::Mask& mask, int radius, Element el, bool is_dilate) {
  if (radius < 0) throw std::invalid_argument("morphology: negative radius");
  if (radius == 0) return mask;
  const auto offs = element_offsets(radius, el);
  const std::int64_t w = mask.width(), h = mask.height();
  image::Mask out(w, h);
  parallel::parallel_for(0, h, [&](std::int64_t y) {
    for (std::int64_t x = 0; x < w; ++x) {
      bool hit = false, all = true;
      for (const auto& o : offs) {
        const std::int64_t nx = x + o.x, ny = y + o.y;
        // Outside the raster counts as background.
        const bool fg = mask.contains(nx, ny) && mask.at(nx, ny) != 0;
        hit = hit || fg;
        all = all && fg;
        if (is_dilate ? hit : !all) break;
      }
      out.at(x, y) = is_dilate ? (hit ? 1 : 0) : (all ? 1 : 0);
    }
  });
  return out;
}

}  // namespace

image::Mask erode(const image::Mask& mask, int radius, Element el) {
  return morph(mask, radius, el, /*is_dilate=*/false);
}

image::Mask dilate(const image::Mask& mask, int radius, Element el) {
  return morph(mask, radius, el, /*is_dilate=*/true);
}

image::Mask open(const image::Mask& mask, int radius, Element el) {
  return dilate(erode(mask, radius, el), radius, el);
}

image::Mask close(const image::Mask& mask, int radius, Element el) {
  return erode(dilate(mask, radius, el), radius, el);
}

image::Mask boundary_gradient(const image::Mask& mask) {
  const image::Mask d = dilate(mask, 1, Element::kSquare);
  const image::Mask e = erode(mask, 1, Element::kSquare);
  image::Mask out(mask.width(), mask.height());
  for (std::int64_t y = 0; y < mask.height(); ++y) {
    for (std::int64_t x = 0; x < mask.width(); ++x) {
      out.at(x, y) = (d.at(x, y) != 0 && e.at(x, y) == 0) ? 1 : 0;
    }
  }
  return out;
}

}  // namespace zenesis::cv
