#include "zenesis/cv/distance.hpp"

#include <algorithm>
#include <limits>

namespace zenesis::cv {

image::ImageF32 distance_to_foreground(const image::Mask& mask) {
  const std::int64_t w = mask.width(), h = mask.height();
  constexpr float kInf = 1e30f;
  image::ImageF32 d(w, h, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      d.at(x, y) = mask.at(x, y) != 0 ? 0.0f : kInf;
    }
  }
  constexpr float kOrtho = 3.0f, kDiag = 4.0f;
  // Forward pass.
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      float v = d.at(x, y);
      if (x > 0) v = std::min(v, d.at(x - 1, y) + kOrtho);
      if (y > 0) v = std::min(v, d.at(x, y - 1) + kOrtho);
      if (x > 0 && y > 0) v = std::min(v, d.at(x - 1, y - 1) + kDiag);
      if (x + 1 < w && y > 0) v = std::min(v, d.at(x + 1, y - 1) + kDiag);
      d.at(x, y) = v;
    }
  }
  // Backward pass.
  for (std::int64_t y = h - 1; y >= 0; --y) {
    for (std::int64_t x = w - 1; x >= 0; --x) {
      float v = d.at(x, y);
      if (x + 1 < w) v = std::min(v, d.at(x + 1, y) + kOrtho);
      if (y + 1 < h) v = std::min(v, d.at(x, y + 1) + kOrtho);
      if (x + 1 < w && y + 1 < h) v = std::min(v, d.at(x + 1, y + 1) + kDiag);
      if (x > 0 && y + 1 < h) v = std::min(v, d.at(x - 1, y + 1) + kDiag);
      d.at(x, y) = v;
    }
  }
  // Normalize the chamfer weights to ~pixel units.
  for (float& v : d.pixels()) {
    if (v < kInf) v /= kOrtho;
  }
  return d;
}

bool nearest_foreground(const image::Mask& mask, image::Point p,
                        image::Point* out) {
  const std::int64_t w = mask.width(), h = mask.height();
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  image::Point best_p{};
  bool found = false;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      if (mask.at(x, y) == 0) continue;
      const std::int64_t dx = x - p.x, dy = y - p.y;
      const std::int64_t d2 = dx * dx + dy * dy;
      if (d2 < best) {
        best = d2;
        best_p = {x, y};
        found = true;
      }
    }
  }
  if (found && out != nullptr) *out = best_p;
  return found;
}

}  // namespace zenesis::cv
