#pragma once
// Histogram-based thresholding. Otsu is the paper's classical baseline
// (Table 1); multi-level Otsu and adaptive mean thresholding support the
// ablations and the volumetric outlier-correction heuristics.

#include <vector>

#include "zenesis/image/image.hpp"

namespace zenesis::cv {

/// Result of a global threshold: the cut value (in [0,1]) and the
/// foreground mask (pixel > threshold).
struct ThresholdResult {
  float threshold = 0.0f;
  image::Mask mask;
};

/// Otsu's method over a 256-bin histogram of a [0,1] float image:
/// maximizes between-class variance. Deterministic, the exact algorithm
/// the paper benchmarks against.
ThresholdResult otsu_threshold(const image::ImageF32& img);

/// Otsu's cut value for an arbitrary histogram (exposed for tests and for
/// the multi-level variant). Returns the bin index of the cut.
int otsu_bin(const std::vector<std::int64_t>& hist);

/// Multi-level Otsu: exhaustive search for `levels-1` cuts maximizing
/// between-class variance (levels ∈ {2, 3, 4}). Returns thresholds in
/// ascending order, values in [0,1].
std::vector<float> multi_otsu(const image::ImageF32& img, int levels);

/// Mean-offset adaptive threshold: pixel > (local boxcar mean + offset).
image::Mask adaptive_mean_threshold(const image::ImageF32& img, int radius,
                                    float offset);

/// Fixed threshold.
image::Mask fixed_threshold(const image::ImageF32& img, float t);

}  // namespace zenesis::cv
