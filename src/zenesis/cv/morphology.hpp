#pragma once
// Binary morphology with square or disk structuring elements. Used to
// clean model masks (SAM post-processing) and by the synthetic generator.

#include "zenesis/image/image.hpp"

namespace zenesis::cv {

enum class Element { kSquare, kDisk };

image::Mask erode(const image::Mask& mask, int radius,
                  Element el = Element::kDisk);
image::Mask dilate(const image::Mask& mask, int radius,
                   Element el = Element::kDisk);

/// Erosion then dilation: removes specks smaller than the element.
image::Mask open(const image::Mask& mask, int radius,
                 Element el = Element::kDisk);

/// Dilation then erosion: closes gaps smaller than the element.
image::Mask close(const image::Mask& mask, int radius,
                  Element el = Element::kDisk);

/// Morphological gradient (dilate − erode): 1-pixel-thick boundary band.
image::Mask boundary_gradient(const image::Mask& mask);

}  // namespace zenesis::cv
