#pragma once
// Connected-component labeling and region statistics. These turn the
// models' patch-level relevance maps and pixel masks into discrete
// segments — the objects the HITL rectifier and the hierarchical
// Further-Segment feature operate on.

#include <cstdint>
#include <vector>

#include "zenesis/image/geometry.hpp"
#include "zenesis/image/image.hpp"

namespace zenesis::cv {

/// Dense label image: 0 = background, 1..n = component ids.
struct Labeling {
  image::Image<std::int32_t> labels;
  std::int32_t count = 0;
};

/// Per-component statistics.
struct Component {
  std::int32_t label = 0;
  std::int64_t area = 0;
  image::Box bounds;
  double centroid_x = 0.0;
  double centroid_y = 0.0;
};

/// Two-pass union-find labeling of a binary mask (8-connectivity by
/// default; pass false for 4-connectivity).
Labeling label_components(const image::Mask& mask, bool eight_connected = true);

/// Statistics for every component of a labeling, ordered by label id.
std::vector<Component> component_stats(const Labeling& labeling);

/// Mask of a single labeled component.
image::Mask component_mask(const Labeling& labeling, std::int32_t label);

/// Largest component (by area) of a mask; empty mask if none.
image::Mask largest_component(const image::Mask& mask);

/// Removes components smaller than `min_area` pixels.
image::Mask remove_small_components(const image::Mask& mask,
                                    std::int64_t min_area);

/// Fills background holes: background regions not connected to the image
/// border become foreground.
image::Mask fill_holes(const image::Mask& mask);

}  // namespace zenesis::cv
