#include "zenesis/cv/filters.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "zenesis/parallel/parallel_for.hpp"

namespace zenesis::cv {
namespace {

using image::ImageF32;

void require_gray(const ImageF32& img, const char* what) {
  if (img.channels() != 1) throw std::invalid_argument(what);
}

std::int64_t clampi(std::int64_t v, std::int64_t lo, std::int64_t hi) {
  return std::clamp(v, lo, hi);
}

/// Summed-area table; sat[(y+1)*(w+1)+(x+1)] = sum of img[0..y][0..x].
std::vector<double> summed_area(const ImageF32& img) {
  const std::int64_t w = img.width(), h = img.height();
  std::vector<double> sat(static_cast<std::size_t>((w + 1) * (h + 1)), 0.0);
  for (std::int64_t y = 0; y < h; ++y) {
    double row = 0.0;
    for (std::int64_t x = 0; x < w; ++x) {
      row += img.at(x, y);
      sat[static_cast<std::size_t>((y + 1) * (w + 1) + (x + 1))] =
          sat[static_cast<std::size_t>(y * (w + 1) + (x + 1))] + row;
    }
  }
  return sat;
}

double sat_sum(const std::vector<double>& sat, std::int64_t w, std::int64_t x0,
               std::int64_t y0, std::int64_t x1, std::int64_t y1) {
  // Inclusive box [x0,x1]×[y0,y1].
  const auto idx = [w](std::int64_t y, std::int64_t x) {
    return static_cast<std::size_t>(y * (w + 1) + x);
  };
  return sat[idx(y1 + 1, x1 + 1)] - sat[idx(y0, x1 + 1)] -
         sat[idx(y1 + 1, x0)] + sat[idx(y0, x0)];
}

}  // namespace

ImageF32 gaussian_blur(const ImageF32& img, float sigma) {
  require_gray(img, "gaussian_blur: single channel required");
  if (sigma <= 0.0f || img.pixel_count() == 0) return img;
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0f * sigma)));
  std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
  float sum = 0.0f;
  for (int i = -radius; i <= radius; ++i) {
    const float v = std::exp(-0.5f * static_cast<float>(i * i) / (sigma * sigma));
    kernel[static_cast<std::size_t>(i + radius)] = v;
    sum += v;
  }
  for (float& v : kernel) v /= sum;

  const std::int64_t w = img.width(), h = img.height();
  ImageF32 tmp(w, h, 1), out(w, h, 1);
  parallel::parallel_for(0, h, [&](std::int64_t y) {
    for (std::int64_t x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<std::size_t>(i + radius)] *
               img.at(clampi(x + i, 0, w - 1), y);
      }
      tmp.at(x, y) = acc;
    }
  });
  parallel::parallel_for(0, h, [&](std::int64_t y) {
    for (std::int64_t x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int i = -radius; i <= radius; ++i) {
        acc += kernel[static_cast<std::size_t>(i + radius)] *
               tmp.at(x, clampi(y + i, 0, h - 1));
      }
      out.at(x, y) = acc;
    }
  });
  return out;
}

ImageF32 box_filter(const ImageF32& img, int radius) {
  require_gray(img, "box_filter: single channel required");
  if (radius <= 0 || img.pixel_count() == 0) return img;
  const std::int64_t w = img.width(), h = img.height();
  const auto sat = summed_area(img);
  ImageF32 out(w, h, 1);
  parallel::parallel_for(0, h, [&](std::int64_t y) {
    const std::int64_t y0 = clampi(y - radius, 0, h - 1);
    const std::int64_t y1 = clampi(y + radius, 0, h - 1);
    for (std::int64_t x = 0; x < w; ++x) {
      const std::int64_t x0 = clampi(x - radius, 0, w - 1);
      const std::int64_t x1 = clampi(x + radius, 0, w - 1);
      const double area = static_cast<double>((x1 - x0 + 1) * (y1 - y0 + 1));
      out.at(x, y) = static_cast<float>(sat_sum(sat, w, x0, y0, x1, y1) / area);
    }
  });
  return out;
}

ImageF32 median_filter(const ImageF32& img, int radius) {
  require_gray(img, "median_filter: single channel required");
  if (radius <= 0 || img.pixel_count() == 0) return img;
  if (radius > 7) throw std::invalid_argument("median_filter: radius > 7");
  const std::int64_t w = img.width(), h = img.height();
  ImageF32 out(w, h, 1);
  parallel::parallel_for(0, h, [&](std::int64_t y) {
    std::vector<float> window;
    window.reserve(static_cast<std::size_t>((2 * radius + 1) * (2 * radius + 1)));
    for (std::int64_t x = 0; x < w; ++x) {
      window.clear();
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          window.push_back(
              img.at(clampi(x + dx, 0, w - 1), clampi(y + dy, 0, h - 1)));
        }
      }
      auto mid = window.begin() + static_cast<std::ptrdiff_t>(window.size() / 2);
      std::nth_element(window.begin(), mid, window.end());
      out.at(x, y) = *mid;
    }
  });
  return out;
}

namespace {

constexpr int kMedianBins = 256;

/// Pre-quantized bin plane covering the rectangle the sliding windows can
/// reach: each pixel is binned once up front instead of once per
/// add/del-column touch (a pixel is re-binned ~2·(2r+1) times per output
/// row in the naive form — the float clamp/scale was the hottest
/// instruction in the decode profile).
struct BinPlane {
  std::vector<std::uint8_t> bins;
  std::int64_t x0 = 0, y0 = 0, stride = 0;

  std::uint8_t at(std::int64_t x, std::int64_t y) const {
    return bins[static_cast<std::size_t>((y - y0) * stride + (x - x0))];
  }
};

BinPlane quantize_plane(const ImageF32& img, std::int64_t x0, std::int64_t x1,
                        std::int64_t y0, std::int64_t y1) {
  BinPlane p;
  p.x0 = x0;
  p.y0 = y0;
  p.stride = x1 - x0 + 1;
  p.bins.resize(static_cast<std::size_t>(p.stride * (y1 - y0 + 1)));
  parallel::parallel_for(y0, y1 + 1, [&](std::int64_t y) {
    std::uint8_t* row = p.bins.data() + (y - y0) * p.stride;
    for (std::int64_t x = x0; x <= x1; ++x) {
      const float v = std::clamp(img.at(x, y), 0.0f, 1.0f);
      row[x - x0] = static_cast<std::uint8_t>(std::clamp(
          static_cast<int>(v * kMedianBins), 0, kMedianBins - 1));
    }
  });
  return p;
}

/// Two-level (16 coarse / 256 fine) histogram: median lookup walks ~16+16
/// buckets instead of ~128 fine bins, at the cost of one extra increment
/// per window update. Selects exactly the same bin as a linear scan.
struct MedianHist {
  std::array<std::int32_t, kMedianBins / 16> coarse{};
  std::array<std::int32_t, kMedianBins> fine{};

  void add(std::uint8_t b) {
    ++fine[b];
    ++coarse[static_cast<std::size_t>(b >> 4)];
  }
  void del(std::uint8_t b) {
    --fine[b];
    --coarse[static_cast<std::size_t>(b >> 4)];
  }
  int median_bin(std::int64_t count) const {
    const std::int64_t half = (count + 1) / 2;
    std::int64_t seen = 0;
    std::size_t c = 0;
    for (; c + 1 < coarse.size(); ++c) {
      if (seen + coarse[c] >= half) break;
      seen += coarse[c];
    }
    int b = static_cast<int>(c << 4);
    for (;; ++b) {
      seen += fine[static_cast<std::size_t>(b)];
      if (seen >= half) break;
    }
    return b;
  }
};

}  // namespace

ImageF32 median_filter_large(const ImageF32& img, int radius,
                             const image::Box& roi_in) {
  require_gray(img, "median_filter_large: single channel required");
  if (radius <= 0 || img.pixel_count() == 0) return img;
  const std::int64_t w = img.width(), h = img.height();
  ImageF32 out(w, h, 1);
  const image::Box roi = roi_in.clipped(w, h);
  if (roi.empty()) return out;
  const BinPlane plane = quantize_plane(
      img, clampi(roi.x - radius, 0, w - 1), clampi(roi.right() - 1 + radius, 0, w - 1),
      clampi(roi.y - radius, 0, h - 1), clampi(roi.bottom() - 1 + radius, 0, h - 1));
  // One sliding histogram per output row: initialize at the ROI's left
  // edge, then slide right by exchanging columns. Rows are independent →
  // parallel. Windows clamp to the image border, so in-ROI outputs match
  // the full-image filter byte for byte.
  parallel::parallel_for(roi.y, roi.bottom(), [&](std::int64_t y) {
    const std::int64_t y0 = clampi(y - radius, 0, h - 1);
    const std::int64_t y1 = clampi(y + radius, 0, h - 1);
    MedianHist hist;
    std::int64_t count = 0;
    const auto add_col = [&](std::int64_t x) {
      for (std::int64_t yy = y0; yy <= y1; ++yy) {
        hist.add(plane.at(x, yy));
        ++count;
      }
    };
    const auto del_col = [&](std::int64_t x) {
      for (std::int64_t yy = y0; yy <= y1; ++yy) {
        hist.del(plane.at(x, yy));
        --count;
      }
    };
    for (std::int64_t x = clampi(roi.x - radius, 0, w - 1);
         x <= clampi(roi.x + radius, 0, w - 1); ++x) {
      add_col(x);
    }
    for (std::int64_t x = roi.x; x < roi.right(); ++x) {
      if (x > roi.x) {
        const std::int64_t enter = x + radius;
        if (enter < w) add_col(enter);
        const std::int64_t leave = x - radius - 1;
        if (leave >= 0) del_col(leave);
      }
      out.at(x, y) =
          (static_cast<float>(hist.median_bin(count)) + 0.5f) / kMedianBins;
    }
  });
  return out;
}

ImageF32 median_filter_large(const ImageF32& img, int radius) {
  return median_filter_large(img, radius,
                             {0, 0, img.width(), img.height()});
}

ImageF32 median_filter_large_masked(const ImageF32& img, int radius,
                                    const image::Mask& exclude,
                                    const image::Box& roi_in,
                                    const ImageF32* fallback) {
  require_gray(img, "median_filter_large_masked: single channel required");
  if (img.width() != exclude.width() || img.height() != exclude.height()) {
    throw std::invalid_argument("median_filter_large_masked: size mismatch");
  }
  if (radius <= 0 || img.pixel_count() == 0) return img;
  const std::int64_t w = img.width(), h = img.height();
  ImageF32 out(w, h, 1);
  const image::Box roi = roi_in.clipped(w, h);
  if (roi.empty()) return out;
  const ImageF32 own_fallback =
      fallback == nullptr ? median_filter_large(img, radius, roi) : ImageF32();
  const ImageF32& fb = fallback != nullptr ? *fallback : own_fallback;
  const BinPlane plane = quantize_plane(
      img, clampi(roi.x - radius, 0, w - 1), clampi(roi.right() - 1 + radius, 0, w - 1),
      clampi(roi.y - radius, 0, h - 1), clampi(roi.bottom() - 1 + radius, 0, h - 1));
  parallel::parallel_for(roi.y, roi.bottom(), [&](std::int64_t y) {
    const std::int64_t y0 = clampi(y - radius, 0, h - 1);
    const std::int64_t y1 = clampi(y + radius, 0, h - 1);
    MedianHist hist;
    std::int64_t count = 0, window = 0;
    const auto add_col = [&](std::int64_t x) {
      for (std::int64_t yy = y0; yy <= y1; ++yy) {
        ++window;
        if (exclude.at(x, yy) != 0) continue;
        hist.add(plane.at(x, yy));
        ++count;
      }
    };
    const auto del_col = [&](std::int64_t x) {
      for (std::int64_t yy = y0; yy <= y1; ++yy) {
        --window;
        if (exclude.at(x, yy) != 0) continue;
        hist.del(plane.at(x, yy));
        --count;
      }
    };
    for (std::int64_t x = clampi(roi.x - radius, 0, w - 1);
         x <= clampi(roi.x + radius, 0, w - 1); ++x) {
      add_col(x);
    }
    for (std::int64_t x = roi.x; x < roi.right(); ++x) {
      if (x > roi.x) {
        const std::int64_t enter = x + radius;
        if (enter < w) add_col(enter);
        const std::int64_t leave = x - radius - 1;
        if (leave >= 0) del_col(leave);
      }
      if (count * 4 < window) {
        out.at(x, y) = fb.at(x, y);
        continue;
      }
      out.at(x, y) =
          (static_cast<float>(hist.median_bin(count)) + 0.5f) / kMedianBins;
    }
  });
  return out;
}

ImageF32 median_filter_large_masked(const ImageF32& img, int radius,
                                    const image::Mask& exclude) {
  return median_filter_large_masked(
      img, radius, exclude, {0, 0, img.width(), img.height()}, nullptr);
}

ImageF32 sobel_magnitude(const ImageF32& img) {
  require_gray(img, "sobel_magnitude: single channel required");
  const std::int64_t w = img.width(), h = img.height();
  ImageF32 out(w, h, 1);
  if (img.pixel_count() == 0) return out;
  parallel::parallel_for(0, h, [&](std::int64_t y) {
    for (std::int64_t x = 0; x < w; ++x) {
      auto px = [&](std::int64_t xx, std::int64_t yy) {
        return img.at(clampi(xx, 0, w - 1), clampi(yy, 0, h - 1));
      };
      const float gx = (px(x + 1, y - 1) + 2.0f * px(x + 1, y) + px(x + 1, y + 1)) -
                       (px(x - 1, y - 1) + 2.0f * px(x - 1, y) + px(x - 1, y + 1));
      const float gy = (px(x - 1, y + 1) + 2.0f * px(x, y + 1) + px(x + 1, y + 1)) -
                       (px(x - 1, y - 1) + 2.0f * px(x, y - 1) + px(x + 1, y - 1));
      out.at(x, y) = std::sqrt(gx * gx + gy * gy);
    }
  });
  return out;
}

ImageF32 local_variance(const ImageF32& img, int radius) {
  require_gray(img, "local_variance: single channel required");
  if (radius <= 0 || img.pixel_count() == 0) {
    return ImageF32(img.width(), img.height(), 1);
  }
  const ImageF32 mean = box_filter(img, radius);
  ImageF32 sq(img.width(), img.height(), 1);
  auto s = img.pixels();
  auto d = sq.pixels();
  for (std::size_t i = 0; i < s.size(); ++i) d[i] = s[i] * s[i];
  const ImageF32 mean_sq = box_filter(sq, radius);
  ImageF32 out(img.width(), img.height(), 1);
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      out.at(x, y) = std::max(0.0f, mean_sq.at(x, y) - mean.at(x, y) * mean.at(x, y));
    }
  }
  return out;
}

ImageF32 abs_diff(const ImageF32& a, const ImageF32& b) {
  if (a.width() != b.width() || a.height() != b.height() ||
      a.channels() != b.channels()) {
    throw std::invalid_argument("abs_diff: shape mismatch");
  }
  ImageF32 out(a.width(), a.height(), a.channels());
  auto pa = a.pixels();
  auto pb = b.pixels();
  auto po = out.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) po[i] = std::fabs(pa[i] - pb[i]);
  return out;
}

}  // namespace zenesis::cv
