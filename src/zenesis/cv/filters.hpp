#pragma once
// Spatial filters over single-channel float images. Border handling is
// clamp-to-edge throughout (the FIB-SEM field of view has no wrap-around
// semantics).

#include "zenesis/image/geometry.hpp"
#include "zenesis/image/image.hpp"

namespace zenesis::cv {

/// Separable Gaussian blur; sigma <= 0 returns the input unchanged.
image::ImageF32 gaussian_blur(const image::ImageF32& img, float sigma);

/// Boxcar mean filter with square radius `radius` (side 2r+1), O(1) per
/// pixel via summed-area table.
image::ImageF32 box_filter(const image::ImageF32& img, int radius);

/// Median filter with square radius (exact, sort-based, radius <= 7).
image::ImageF32 median_filter(const image::ImageF32& img, int radius);

/// Large-window approximate median filter: sliding 256-bin histogram over
/// values clamped to [0,1], O(w·h·r) updates. Quantization error is
/// <= 1/256, irrelevant for context estimation. Used by the SAM surrogate
/// as a robust local-background model (immune to thin bright structures
/// and to boundary halos that corrupt a mean filter).
image::ImageF32 median_filter_large(const image::ImageF32& img, int radius);

/// median_filter_large restricted to `roi` (clipped to the image): output
/// pixels inside the ROI are byte-identical to the full-image filter
/// (windows still clamp to the *image* border, not the ROI), pixels
/// outside are 0. Cost scales with the ROI area — the SAM surrogate's
/// decoder only ever reads its context medians inside the prompt box, so
/// it pays for the box, not the frame.
image::ImageF32 median_filter_large(const image::ImageF32& img, int radius,
                                    const image::Box& roi);

/// median_filter_large over only the pixels NOT set in `exclude`. Windows
/// whose valid count falls below a quarter of their size fall back to the
/// unmasked median. Used for background re-estimation after a first
/// segmentation pass has explained away the foreground.
image::ImageF32 median_filter_large_masked(const image::ImageF32& img,
                                           int radius,
                                           const image::Mask& exclude);

/// ROI form of median_filter_large_masked (same contract as the ROI
/// median: byte-identical inside, 0 outside). `fallback`, when non-null,
/// must be the unmasked median of (img, radius) covering the same ROI —
/// callers that already hold it (the decoder's refit pass re-estimates
/// against the context it just computed) skip a second full median pass.
image::ImageF32 median_filter_large_masked(const image::ImageF32& img,
                                           int radius,
                                           const image::Mask& exclude,
                                           const image::Box& roi,
                                           const image::ImageF32* fallback =
                                               nullptr);

/// Sobel gradient magnitude (L2 of the 3x3 Sobel pair).
image::ImageF32 sobel_magnitude(const image::ImageF32& img);

/// Local variance within a square window of radius `radius` — a texture
/// descriptor feeding the surrogate backbones' engineered channels.
image::ImageF32 local_variance(const image::ImageF32& img, int radius);

/// Elementwise absolute difference.
image::ImageF32 abs_diff(const image::ImageF32& a, const image::ImageF32& b);

}  // namespace zenesis::cv
