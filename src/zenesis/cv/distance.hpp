#pragma once
// Chamfer distance transform (3-4 metric) and nearest-foreground queries.
// The HITL rectifier uses nearest-segment lookup to map a user's rough box
// onto the closest detected segment.

#include "zenesis/image/geometry.hpp"
#include "zenesis/image/image.hpp"

namespace zenesis::cv {

/// Distance of every pixel to the nearest foreground pixel (3-4 chamfer /
/// 3, so roughly Euclidean pixels). Foreground pixels get 0; an all-
/// background mask yields a large sentinel everywhere.
image::ImageF32 distance_to_foreground(const image::Mask& mask);

/// Coordinates of the foreground pixel nearest to `p` (exhaustive chamfer
/// back-tracking). Returns false when the mask is empty.
bool nearest_foreground(const image::Mask& mask, image::Point p,
                        image::Point* out);

}  // namespace zenesis::cv
