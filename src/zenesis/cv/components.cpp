#include "zenesis/cv/components.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace zenesis::cv {
namespace {

/// Union-find over provisional labels.
class DisjointSet {
 public:
  std::int32_t make() {
    parent_.push_back(static_cast<std::int32_t>(parent_.size()));
    return parent_.back();
  }
  std::int32_t find(std::int32_t x) {
    while (parent_[static_cast<std::size_t>(x)] != x) {
      parent_[static_cast<std::size_t>(x)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(x)])];
      x = parent_[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(std::int32_t a, std::int32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[static_cast<std::size_t>(std::max(a, b))] = std::min(a, b);
  }
  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::int32_t> parent_;
};

}  // namespace

Labeling label_components(const image::Mask& mask, bool eight_connected) {
  const std::int64_t w = mask.width(), h = mask.height();
  Labeling out;
  out.labels = image::Image<std::int32_t>(w, h, 1);
  if (w == 0 || h == 0) return out;

  DisjointSet ds;
  ds.make();  // label 0 = background

  // First pass: provisional labels from already-visited neighbours.
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      if (mask.at(x, y) == 0) continue;
      std::int32_t left = x > 0 ? out.labels.at(x - 1, y) : 0;
      std::int32_t up = y > 0 ? out.labels.at(x, y - 1) : 0;
      std::int32_t ul = (eight_connected && x > 0 && y > 0)
                            ? out.labels.at(x - 1, y - 1) : 0;
      std::int32_t ur = (eight_connected && x + 1 < w && y > 0)
                            ? out.labels.at(x + 1, y - 1) : 0;
      std::int32_t lab = 0;
      for (std::int32_t n : {left, up, ul, ur}) {
        if (n != 0 && (lab == 0 || n < lab)) lab = n;
      }
      if (lab == 0) {
        lab = ds.make();
      } else {
        for (std::int32_t n : {left, up, ul, ur}) {
          if (n != 0) ds.unite(lab, n);
        }
      }
      out.labels.at(x, y) = lab;
    }
  }

  // Second pass: compress to dense 1..count ids.
  std::vector<std::int32_t> remap(ds.size(), 0);
  std::int32_t next = 0;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      std::int32_t lab = out.labels.at(x, y);
      if (lab == 0) continue;
      const std::int32_t root = ds.find(lab);
      if (remap[static_cast<std::size_t>(root)] == 0) {
        remap[static_cast<std::size_t>(root)] = ++next;
      }
      out.labels.at(x, y) = remap[static_cast<std::size_t>(root)];
    }
  }
  out.count = next;
  return out;
}

std::vector<Component> component_stats(const Labeling& labeling) {
  std::vector<Component> comps(static_cast<std::size_t>(labeling.count));
  for (std::int32_t i = 0; i < labeling.count; ++i) {
    comps[static_cast<std::size_t>(i)].label = i + 1;
    comps[static_cast<std::size_t>(i)].bounds = {labeling.labels.width(),
                                                 labeling.labels.height(), 0, 0};
  }
  std::vector<std::int64_t> min_x(static_cast<std::size_t>(labeling.count),
                                  labeling.labels.width());
  std::vector<std::int64_t> min_y(static_cast<std::size_t>(labeling.count),
                                  labeling.labels.height());
  std::vector<std::int64_t> max_x(static_cast<std::size_t>(labeling.count), -1);
  std::vector<std::int64_t> max_y(static_cast<std::size_t>(labeling.count), -1);
  for (std::int64_t y = 0; y < labeling.labels.height(); ++y) {
    for (std::int64_t x = 0; x < labeling.labels.width(); ++x) {
      const std::int32_t lab = labeling.labels.at(x, y);
      if (lab == 0) continue;
      auto& c = comps[static_cast<std::size_t>(lab - 1)];
      ++c.area;
      c.centroid_x += static_cast<double>(x);
      c.centroid_y += static_cast<double>(y);
      min_x[static_cast<std::size_t>(lab - 1)] =
          std::min(min_x[static_cast<std::size_t>(lab - 1)], x);
      min_y[static_cast<std::size_t>(lab - 1)] =
          std::min(min_y[static_cast<std::size_t>(lab - 1)], y);
      max_x[static_cast<std::size_t>(lab - 1)] =
          std::max(max_x[static_cast<std::size_t>(lab - 1)], x);
      max_y[static_cast<std::size_t>(lab - 1)] =
          std::max(max_y[static_cast<std::size_t>(lab - 1)], y);
    }
  }
  for (std::int32_t i = 0; i < labeling.count; ++i) {
    auto& c = comps[static_cast<std::size_t>(i)];
    if (c.area > 0) {
      c.centroid_x /= static_cast<double>(c.area);
      c.centroid_y /= static_cast<double>(c.area);
      c.bounds = {min_x[static_cast<std::size_t>(i)], min_y[static_cast<std::size_t>(i)],
                  max_x[static_cast<std::size_t>(i)] - min_x[static_cast<std::size_t>(i)] + 1,
                  max_y[static_cast<std::size_t>(i)] - min_y[static_cast<std::size_t>(i)] + 1};
    } else {
      c.bounds = {};
    }
  }
  return comps;
}

image::Mask component_mask(const Labeling& labeling, std::int32_t label) {
  image::Mask mask(labeling.labels.width(), labeling.labels.height());
  for (std::int64_t y = 0; y < mask.height(); ++y) {
    for (std::int64_t x = 0; x < mask.width(); ++x) {
      mask.at(x, y) = labeling.labels.at(x, y) == label ? 1 : 0;
    }
  }
  return mask;
}

image::Mask largest_component(const image::Mask& mask) {
  const Labeling lab = label_components(mask);
  if (lab.count == 0) return image::Mask(mask.width(), mask.height());
  const auto comps = component_stats(lab);
  const auto it = std::max_element(
      comps.begin(), comps.end(),
      [](const Component& a, const Component& b) { return a.area < b.area; });
  return component_mask(lab, it->label);
}

image::Mask remove_small_components(const image::Mask& mask,
                                    std::int64_t min_area) {
  const Labeling lab = label_components(mask);
  const auto comps = component_stats(lab);
  image::Mask out(mask.width(), mask.height());
  for (std::int64_t y = 0; y < mask.height(); ++y) {
    for (std::int64_t x = 0; x < mask.width(); ++x) {
      const std::int32_t l = lab.labels.at(x, y);
      if (l != 0 && comps[static_cast<std::size_t>(l - 1)].area >= min_area) {
        out.at(x, y) = 1;
      }
    }
  }
  return out;
}

image::Mask fill_holes(const image::Mask& mask) {
  // Label the background; any background component that never touches the
  // border is a hole.
  const image::Mask inverted = [&] {
    image::Mask inv(mask.width(), mask.height());
    for (std::int64_t y = 0; y < mask.height(); ++y) {
      for (std::int64_t x = 0; x < mask.width(); ++x) {
        inv.at(x, y) = mask.at(x, y) == 0 ? 1 : 0;
      }
    }
    return inv;
  }();
  const Labeling lab = label_components(inverted, /*eight_connected=*/false);
  std::vector<bool> touches_border(static_cast<std::size_t>(lab.count + 1), false);
  const std::int64_t w = mask.width(), h = mask.height();
  for (std::int64_t x = 0; x < w; ++x) {
    touches_border[static_cast<std::size_t>(lab.labels.at(x, 0))] = true;
    if (h > 0) touches_border[static_cast<std::size_t>(lab.labels.at(x, h - 1))] = true;
  }
  for (std::int64_t y = 0; y < h; ++y) {
    touches_border[static_cast<std::size_t>(lab.labels.at(0, y))] = true;
    if (w > 0) touches_border[static_cast<std::size_t>(lab.labels.at(w - 1, y))] = true;
  }
  image::Mask out = mask;
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const std::int32_t l = lab.labels.at(x, y);
      if (l != 0 && !touches_border[static_cast<std::size_t>(l)]) out.at(x, y) = 1;
    }
  }
  return out;
}

}  // namespace zenesis::cv
