#pragma once
// zenesis::net::Client — deterministic blocking loopback client for the
// zen_net server. This is test/tool infrastructure, not a production SDK:
// every test in test_net*.cpp, the protocol fuzzer, and the zen_load CLI
// drive the server through this one class, so its surface is deliberately
// small and fully synchronous (poll-with-timeout on one fd, no threads).
//
// The raw escape hatches (send_bytes / shutdown_write / close) exist for
// the fault-injection and fuzz suites: they let a test write arbitrary
// bytes mid-conversation, half-close the socket, or vanish abruptly while
// requests are in flight.

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "zenesis/image/image.hpp"
#include "zenesis/net/frame.hpp"

namespace zenesis::net {

class Client {
 public:
  /// Takes ownership of a connected stream socket fd.
  explicit Client(int fd, NetLimits limits = {});
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// socketpair() loopback: returns the client plus the server-side fd to
  /// hand to Server::adopt. Throws std::runtime_error on socketpair failure.
  static std::pair<Client, int> loopback_pair(NetLimits limits = {});

  /// Sends Hello and waits for the HelloAck. False on timeout/error.
  bool hello(std::uint32_t tenant,
             std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// Sends a request frame; returns the auto-assigned request id (or the
  /// id in opts_request_id when nonzero). 0 = send failed.
  std::uint64_t submit_slice(const image::AnyImage& image,
                             const std::string& prompt,
                             const WireRequestOptions& opts = {},
                             std::uint64_t request_id = 0);
  std::uint64_t submit_volume_file(const std::string& path,
                                   const std::string& prompt,
                                   const WireRequestOptions& opts = {},
                                   std::uint64_t request_id = 0);

  bool cancel(std::uint64_t request_id);

  /// Ping round-trip; true when the echoed payload matches.
  bool ping(const std::vector<std::uint8_t>& payload,
            std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// Next decoded server message (buffered ones first). nullopt on
  /// timeout, EOF, or a wire-level decode failure (see peer_closed /
  /// decode_failed to distinguish).
  std::optional<ServerMessage> recv(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(5000));

  /// Waits for the terminal frame (Response/Rejected/Error) of
  /// `request_id`, buffering unrelated messages for later recv() calls.
  std::optional<ServerMessage> wait_for(
      std::uint64_t request_id,
      std::chrono::milliseconds timeout = std::chrono::milliseconds(30000));

  // --- raw fault-injection surface ---------------------------------------

  /// Writes exactly n bytes (looping over partial sends). False when the
  /// peer is gone.
  bool send_bytes(const void* data, std::size_t n);
  bool send_bytes(const std::vector<std::uint8_t>& bytes) {
    return send_bytes(bytes.data(), bytes.size());
  }
  /// Half-close: no more writes, reads keep working (the server owes us
  /// responses for everything already sent).
  void shutdown_write();
  /// Abrupt full close (simulates a vanished peer).
  void close();

  int fd() const noexcept { return fd_; }
  bool peer_closed() const noexcept { return peer_closed_; }
  bool decode_failed() const noexcept { return decode_failed_; }
  std::uint64_t next_request_id() noexcept { return next_id_++; }

 private:
  /// Polls for readability and feeds one recv() worth of bytes into the
  /// decoder. False on timeout/EOF/error.
  bool read_some(std::chrono::milliseconds timeout);
  /// Next message straight off the wire, bypassing the inbox (wait_for
  /// uses this so re-buffered messages cannot starve socket reads).
  std::optional<ServerMessage> recv_wire(std::chrono::milliseconds timeout);

  int fd_ = -1;
  NetLimits limits_;
  FrameDecoder decoder_;
  std::uint64_t next_id_ = 1;
  std::deque<ServerMessage> inbox_;
  bool peer_closed_ = false;
  bool decode_failed_ = false;
};

}  // namespace zenesis::net
