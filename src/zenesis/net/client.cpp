#include "zenesis/net/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace zenesis::net {

namespace {
using Clock = std::chrono::steady_clock;
}

Client::Client(int fd, NetLimits limits)
    : fd_(fd), limits_(limits), decoder_(limits) {}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      limits_(other.limits_),
      decoder_(std::move(other.decoder_)),
      next_id_(other.next_id_),
      inbox_(std::move(other.inbox_)),
      peer_closed_(other.peer_closed_),
      decode_failed_(other.decode_failed_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    limits_ = other.limits_;
    decoder_ = std::move(other.decoder_);
    next_id_ = other.next_id_;
    inbox_ = std::move(other.inbox_);
    peer_closed_ = other.peer_closed_;
    decode_failed_ = other.decode_failed_;
    other.fd_ = -1;
  }
  return *this;
}

std::pair<Client, int> Client::loopback_pair(NetLimits limits) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error("net::Client: socketpair() failed");
  }
  return {Client(fds[0], limits), fds[1]};
}

bool Client::send_bytes(const void* data, std::size_t n) {
  if (fd_ < 0) return false;
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    peer_closed_ = true;
    return false;
  }
  return true;
}

void Client::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::hello(std::uint32_t tenant, std::chrono::milliseconds timeout) {
  if (!send_bytes(encode_hello(tenant))) return false;
  const std::optional<ServerMessage> msg = recv(timeout);
  return msg && msg->type == FrameType::kHelloAck;
}

std::uint64_t Client::submit_slice(const image::AnyImage& image,
                                   const std::string& prompt,
                                   const WireRequestOptions& opts,
                                   std::uint64_t request_id) {
  const std::uint64_t rid = request_id != 0 ? request_id : next_id_++;
  if (!send_bytes(encode_slice_request(rid, image, prompt, opts))) return 0;
  return rid;
}

std::uint64_t Client::submit_volume_file(const std::string& path,
                                         const std::string& prompt,
                                         const WireRequestOptions& opts,
                                         std::uint64_t request_id) {
  const std::uint64_t rid = request_id != 0 ? request_id : next_id_++;
  if (!send_bytes(encode_volume_file_request(rid, path, prompt, opts))) {
    return 0;
  }
  return rid;
}

bool Client::cancel(std::uint64_t request_id) {
  return send_bytes(encode_cancel(request_id));
}

bool Client::ping(const std::vector<std::uint8_t>& payload,
                  std::chrono::milliseconds timeout) {
  if (!send_bytes(encode_ping(payload))) return false;
  const Clock::time_point deadline = Clock::now() + timeout;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return false;
    std::optional<ServerMessage> msg = recv_wire(left);
    if (!msg) return false;
    if (msg->type == FrameType::kPong) return msg->ping_payload == payload;
    inbox_.push_back(std::move(*msg));  // unrelated traffic: keep it
  }
}

bool Client::read_some(std::chrono::milliseconds timeout) {
  if (fd_ < 0 || peer_closed_) return false;
  pollfd pfd{fd_, POLLIN, 0};
  const int rc =
      ::poll(&pfd, 1, static_cast<int>(std::max<long long>(0, timeout.count())));
  if (rc <= 0) return false;
  std::uint8_t buf[65536];
  const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
  if (n <= 0) {
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      return false;
    }
    peer_closed_ = true;
    return false;
  }
  decoder_.feed(buf, static_cast<std::size_t>(n));
  return true;
}

std::optional<ServerMessage> Client::recv(std::chrono::milliseconds timeout) {
  if (!inbox_.empty()) {
    ServerMessage msg = std::move(inbox_.front());
    inbox_.pop_front();
    return msg;
  }
  return recv_wire(timeout);
}

std::optional<ServerMessage> Client::recv_wire(
    std::chrono::milliseconds timeout) {
  if (decode_failed_) return std::nullopt;
  const Clock::time_point deadline = Clock::now() + timeout;
  for (;;) {
    Frame frame;
    const FrameDecoder::Status st = decoder_.next(frame);
    if (st == FrameDecoder::Status::kFrame) {
      std::optional<ServerMessage> msg = parse_server_frame(frame, limits_);
      if (!msg) {
        decode_failed_ = true;
        return std::nullopt;
      }
      return msg;
    }
    if (st == FrameDecoder::Status::kError) {
      decode_failed_ = true;
      return std::nullopt;
    }
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return std::nullopt;
    if (!read_some(left) && peer_closed_) return std::nullopt;
  }
}

std::optional<ServerMessage> Client::wait_for(
    std::uint64_t request_id, std::chrono::milliseconds timeout) {
  const auto is_terminal_for = [request_id](const ServerMessage& m) {
    return m.request_id == request_id &&
           (m.type == FrameType::kResponse || m.type == FrameType::kRejected ||
            m.type == FrameType::kError);
  };
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    if (is_terminal_for(*it)) {
      ServerMessage msg = std::move(*it);
      inbox_.erase(it);
      return msg;
    }
  }
  const Clock::time_point deadline = Clock::now() + timeout;
  for (;;) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return std::nullopt;
    std::optional<ServerMessage> msg = recv_wire(left);
    if (!msg) {
      if (peer_closed_ || decode_failed_) return std::nullopt;
      continue;
    }
    if (is_terminal_for(*msg)) return msg;
    inbox_.push_back(std::move(*msg));
  }
}

}  // namespace zenesis::net
