#include "zenesis/net/frame.hpp"

#include <cstring>
#include <utility>

namespace zenesis::net {

namespace {

// Caps for the string fields of server→client frames (client-side decode
// hardening; the server composes these itself).
constexpr std::uint32_t kMaxStageBytes = 256;
constexpr std::uint32_t kMaxMessageBytes = 4096;
constexpr std::uint32_t kMaxErrorCode = 9;  ///< last core::ErrorCode value

void put_header(std::vector<std::uint8_t>& out, FrameType type,
                std::uint64_t request_id, std::size_t payload_len) {
  PayloadWriter w;
  w.u32(kMagic);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(request_id);
  w.u32(static_cast<std::uint32_t>(payload_len));
  const auto& h = w.data();
  out.insert(out.end(), h.begin(), h.end());
}

std::vector<std::uint8_t> make_frame(FrameType type, std::uint64_t request_id,
                                     PayloadWriter&& payload) {
  std::vector<std::uint8_t> body = payload.take();
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + body.size());
  put_header(frame, type, request_id, body.size());
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

/// Variant index ↔ wire pixel format (0=u8, 1=u16, 2=u32, 3=f32).
template <typename T>
constexpr std::uint8_t pixel_format_of() {
  if constexpr (std::is_same_v<T, std::uint8_t>) return 0;
  if constexpr (std::is_same_v<T, std::uint16_t>) return 1;
  if constexpr (std::is_same_v<T, std::uint32_t>) return 2;
  return 3;
}

void write_request_options(PayloadWriter& w, const WireRequestOptions& opts) {
  w.i32(opts.priority);
  w.u32(opts.deadline_ms);
  w.u64(opts.trace_id);
}

bool read_request_options(PayloadReader& r, WireRequestOptions& opts) {
  return r.i32(opts.priority) && r.u32(opts.deadline_ms) &&
         r.u64(opts.trace_id);
}

void write_mask(PayloadWriter& w, const image::Mask& mask) {
  w.u32(static_cast<std::uint32_t>(mask.width()));
  w.u32(static_cast<std::uint32_t>(mask.height()));
  const auto px = mask.pixels();
  w.bytes(px.data(), px.size());
}

bool read_mask(PayloadReader& r, const NetLimits& limits, image::Mask& out) {
  std::uint32_t w = 0, h = 0;
  if (!r.u32(w) || !r.u32(h)) return false;
  const std::uint64_t pixels = static_cast<std::uint64_t>(w) * h;
  if (pixels > limits.max_pixels || pixels > r.remaining()) return false;
  image::Mask mask(static_cast<std::int64_t>(w), static_cast<std::int64_t>(h));
  if (!r.bytes(mask.pixels().data(), static_cast<std::size_t>(pixels))) {
    return false;
  }
  out = std::move(mask);
  return true;
}

void write_box(PayloadWriter& w, const image::Box& box) {
  w.i64(box.x);
  w.i64(box.y);
  w.i64(box.w);
  w.i64(box.h);
}

bool read_box(PayloadReader& r, image::Box& box) {
  return r.i64(box.x) && r.i64(box.y) && r.i64(box.w) && r.i64(box.h);
}

bool read_error(PayloadReader& r, core::Error& error) {
  std::uint8_t code = 0;
  if (!r.u8(code) || code > kMaxErrorCode) return false;
  error.code = static_cast<core::ErrorCode>(code);
  return r.str(error.stage, kMaxStageBytes) &&
         r.str(error.message, kMaxMessageBytes);
}

void write_error(PayloadWriter& w, const core::Error& error) {
  w.u8(static_cast<std::uint8_t>(error.code));
  w.str(error.stage);
  w.str(error.message);
}

}  // namespace

bool is_client_frame(FrameType t) noexcept {
  switch (t) {
    case FrameType::kHello:
    case FrameType::kSlice:
    case FrameType::kVolumeFile:
    case FrameType::kCancel:
    case FrameType::kPing:
      return true;
    default:
      return false;
  }
}

bool is_known_frame(std::uint16_t t) noexcept {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kHello:
    case FrameType::kSlice:
    case FrameType::kVolumeFile:
    case FrameType::kCancel:
    case FrameType::kPing:
    case FrameType::kHelloAck:
    case FrameType::kResponse:
    case FrameType::kRejected:
    case FrameType::kError:
    case FrameType::kPong:
      return true;
  }
  return false;
}

const char* to_string(WireReject reason) noexcept {
  switch (reason) {
    case WireReject::kNone: return "None";
    case WireReject::kQueueFull: return "QueueFull";
    case WireReject::kDeadlineExpired: return "DeadlineExpired";
    case WireReject::kShuttingDown: return "ShuttingDown";
    case WireReject::kCancelled: return "Cancelled";
    case WireReject::kTenantQuota: return "TenantQuota";
    case WireReject::kOverloaded: return "Overloaded";
  }
  return "?";
}

const char* to_string(WireErrorKind kind) noexcept {
  switch (kind) {
    case WireErrorKind::kNone: return "None";
    case WireErrorKind::kBadMagic: return "BadMagic";
    case WireErrorKind::kBadVersion: return "BadVersion";
    case WireErrorKind::kBadType: return "BadType";
    case WireErrorKind::kOversized: return "Oversized";
    case WireErrorKind::kBadPayload: return "BadPayload";
    case WireErrorKind::kBadState: return "BadState";
    case WireErrorKind::kTruncated: return "Truncated";
    case WireErrorKind::kTimeout: return "Timeout";
  }
  return "?";
}

// --- PayloadWriter -------------------------------------------------------

void PayloadWriter::u8(std::uint8_t v) { out_.push_back(v); }
void PayloadWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}
void PayloadWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void PayloadWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void PayloadWriter::i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
void PayloadWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
void PayloadWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}
void PayloadWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}
void PayloadWriter::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out_.insert(out_.end(), p, p + n);
}
void PayloadWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(s.data(), s.size());
}

// --- PayloadReader -------------------------------------------------------

bool PayloadReader::bytes(void* out, std::size_t n) {
  if (n > size_ - pos_) return false;
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}
bool PayloadReader::u8(std::uint8_t& v) { return bytes(&v, 1); }
bool PayloadReader::u16(std::uint16_t& v) {
  std::uint8_t b[2];
  if (!bytes(b, 2)) return false;
  v = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  return true;
}
bool PayloadReader::u32(std::uint32_t& v) {
  std::uint8_t b[4];
  if (!bytes(b, 4)) return false;
  v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return true;
}
bool PayloadReader::u64(std::uint64_t& v) {
  std::uint8_t b[8];
  if (!bytes(b, 8)) return false;
  v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return true;
}
bool PayloadReader::i32(std::int32_t& v) {
  std::uint32_t u = 0;
  if (!u32(u)) return false;
  v = static_cast<std::int32_t>(u);
  return true;
}
bool PayloadReader::i64(std::int64_t& v) {
  std::uint64_t u = 0;
  if (!u64(u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}
bool PayloadReader::f32(float& v) {
  std::uint32_t bits = 0;
  if (!u32(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}
bool PayloadReader::f64(double& v) {
  std::uint64_t bits = 0;
  if (!u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}
bool PayloadReader::str(std::string& out, std::uint32_t max_len) {
  std::uint32_t len = 0;
  if (!u32(len) || len > max_len || len > size_ - pos_) return false;
  out.assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return true;
}

// --- FrameDecoder --------------------------------------------------------

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (failed_) return;  // unframeable stream: drop further bytes
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Status FrameDecoder::fail(WireErrorKind kind,
                                        std::string message) {
  failed_ = true;
  error_kind_ = kind;
  error_message_ = std::move(message);
  buf_.clear();
  pos_ = 0;
  return Status::kError;
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  if (failed_) return Status::kError;
  if (buffered() < kHeaderBytes) {
    // Compact lazily so a long-lived connection doesn't grow the buffer.
    if (pos_ > 0 && pos_ == buf_.size()) {
      buf_.clear();
      pos_ = 0;
    }
    return Status::kNeedMore;
  }
  PayloadReader r(buf_.data() + pos_, kHeaderBytes);
  FrameHeader h;
  r.u32(h.magic);
  r.u16(h.version);
  r.u16(h.type);
  r.u64(h.request_id);
  r.u32(h.payload_len);
  if (h.magic != kMagic) {
    return fail(WireErrorKind::kBadMagic, "bad frame magic");
  }
  if (h.version != kProtocolVersion) {
    return fail(WireErrorKind::kBadVersion,
                "unsupported protocol version " + std::to_string(h.version));
  }
  if (!is_known_frame(h.type)) {
    return fail(WireErrorKind::kBadType,
                "unknown frame type " + std::to_string(h.type));
  }
  // Length validated before any buffering decision: an adversarial
  // payload_len can neither allocation-bomb nor wedge the connection.
  if (h.payload_len > limits_.max_frame_bytes) {
    return fail(WireErrorKind::kOversized,
                "frame payload of " + std::to_string(h.payload_len) +
                    " bytes exceeds limit of " +
                    std::to_string(limits_.max_frame_bytes));
  }
  if (buffered() < kHeaderBytes + h.payload_len) return Status::kNeedMore;
  out.header = h;
  out.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kHeaderBytes),
                     buf_.begin() + static_cast<std::ptrdiff_t>(
                                        pos_ + kHeaderBytes + h.payload_len));
  pos_ += kHeaderBytes + h.payload_len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > (1u << 16)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  return Status::kFrame;
}

// --- client → server encoders -------------------------------------------

std::vector<std::uint8_t> encode_hello(std::uint32_t tenant,
                                       std::uint32_t flags) {
  PayloadWriter w;
  w.u32(tenant);
  w.u32(flags);
  return make_frame(FrameType::kHello, 0, std::move(w));
}

std::vector<std::uint8_t> encode_slice_request(std::uint64_t request_id,
                                               const image::AnyImage& image,
                                               const std::string& prompt,
                                               const WireRequestOptions& opts) {
  PayloadWriter w;
  std::visit(
      [&](const auto& img) {
        using Sample = std::decay_t<decltype(img.pixels()[0])>;
        w.u8(pixel_format_of<Sample>());
        w.u8(static_cast<std::uint8_t>(img.channels()));
        w.u16(0);  // reserved
        w.u32(static_cast<std::uint32_t>(img.width()));
        w.u32(static_cast<std::uint32_t>(img.height()));
        write_request_options(w, opts);
        w.str(prompt);
        const auto px = img.pixels();
        w.bytes(px.data(), px.size() * sizeof(Sample));
      },
      image);
  return make_frame(FrameType::kSlice, request_id, std::move(w));
}

std::vector<std::uint8_t> encode_volume_file_request(
    std::uint64_t request_id, const std::string& path,
    const std::string& prompt, const WireRequestOptions& opts) {
  PayloadWriter w;
  write_request_options(w, opts);
  w.str(path);
  w.str(prompt);
  return make_frame(FrameType::kVolumeFile, request_id, std::move(w));
}

std::vector<std::uint8_t> encode_cancel(std::uint64_t request_id) {
  return make_frame(FrameType::kCancel, request_id, PayloadWriter{});
}

std::vector<std::uint8_t> encode_ping(
    const std::vector<std::uint8_t>& payload) {
  PayloadWriter w;
  w.bytes(payload.data(), payload.size());
  return make_frame(FrameType::kPing, 0, std::move(w));
}

// --- server → client encoders -------------------------------------------

std::vector<std::uint8_t> encode_hello_ack(std::uint32_t tenant) {
  PayloadWriter w;
  w.u32(tenant);
  return make_frame(FrameType::kHelloAck, 0, std::move(w));
}

std::vector<std::uint8_t> encode_pong(
    const std::vector<std::uint8_t>& payload) {
  PayloadWriter w;
  w.bytes(payload.data(), payload.size());
  return make_frame(FrameType::kPong, 0, std::move(w));
}

std::vector<std::uint8_t> encode_slice_response(
    std::uint64_t request_id, std::uint64_t trace_id,
    const core::SliceResult& result, const WireTimings& timings) {
  PayloadWriter w;
  w.u64(trace_id);
  w.u8(0);  // kind: slice
  w.u8(0);
  w.u16(0);
  w.f64(result.confidence);
  write_box(w, result.primary_box);
  w.f64(timings.queue_us);
  w.f64(timings.decode_us);
  w.f64(timings.total_us);
  write_mask(w, result.mask);
  return make_frame(FrameType::kResponse, request_id, std::move(w));
}

std::vector<std::uint8_t> encode_volume_response(
    std::uint64_t request_id, std::uint64_t trace_id,
    const core::VolumeResult& result, const WireTimings& timings) {
  PayloadWriter w;
  w.u64(trace_id);
  w.u8(3);  // kind: volume (serve::RequestKind::kVolume)
  w.u8(0);
  w.u16(0);
  w.f64(timings.queue_us);
  w.f64(timings.decode_us);
  w.f64(timings.total_us);
  w.u32(static_cast<std::uint32_t>(result.slices.size()));
  w.i32(result.replaced_count);
  for (const auto& slice : result.slices) {
    w.f64(slice.confidence);
    write_box(w, slice.primary_box);
    write_mask(w, slice.mask);
  }
  return make_frame(FrameType::kResponse, request_id, std::move(w));
}

std::vector<std::uint8_t> encode_rejected(std::uint64_t request_id,
                                          std::uint64_t trace_id,
                                          WireReject reason,
                                          const core::Error& error) {
  PayloadWriter w;
  w.u64(trace_id);
  w.u8(static_cast<std::uint8_t>(reason));
  write_error(w, error);
  return make_frame(FrameType::kRejected, request_id, std::move(w));
}

std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       std::uint64_t trace_id,
                                       const core::Error& error) {
  PayloadWriter w;
  w.u64(trace_id);
  write_error(w, error);
  return make_frame(FrameType::kError, request_id, std::move(w));
}

// --- parsers -------------------------------------------------------------

std::optional<WireHello> parse_hello(const Frame& frame) {
  PayloadReader r(frame.payload);
  WireHello hello;
  if (!r.u32(hello.tenant) || !r.u32(hello.flags) || !r.done()) {
    return std::nullopt;
  }
  return hello;
}

std::optional<WireSliceRequest> parse_slice_request(const Frame& frame,
                                                    const NetLimits& limits) {
  PayloadReader r(frame.payload);
  std::uint8_t format = 0, channels = 0;
  std::uint16_t reserved = 0;
  std::uint32_t width = 0, height = 0;
  WireSliceRequest req;
  if (!r.u8(format) || !r.u8(channels) || !r.u16(reserved) || !r.u32(width) ||
      !r.u32(height) || !read_request_options(r, req.options) ||
      !r.str(req.prompt, limits.max_prompt_bytes)) {
    return std::nullopt;
  }
  if (format > 3 || channels < 1 || channels > 4) return std::nullopt;
  const std::uint64_t pixels = static_cast<std::uint64_t>(width) * height;
  if (pixels > limits.max_pixels) return std::nullopt;
  const std::size_t sample_bytes[] = {1, 2, 4, 4};
  const std::uint64_t data_bytes = pixels * channels * sample_bytes[format];
  // The pixel block must be exactly the remaining payload: trailing
  // garbage fails the parse instead of being silently ignored.
  if (data_bytes != r.remaining()) return std::nullopt;
  const auto read_image = [&](auto tag) -> bool {
    using Sample = decltype(tag);
    image::Image<Sample> img(static_cast<std::int64_t>(width),
                             static_cast<std::int64_t>(height), channels);
    if (!r.bytes(img.pixels().data(), static_cast<std::size_t>(data_bytes))) {
      return false;
    }
    req.image = std::move(img);
    return true;
  };
  bool ok = false;
  switch (format) {
    case 0: ok = read_image(std::uint8_t{}); break;
    case 1: ok = read_image(std::uint16_t{}); break;
    case 2: ok = read_image(std::uint32_t{}); break;
    case 3: ok = read_image(float{}); break;
  }
  if (!ok || !r.done()) return std::nullopt;
  return req;
}

std::optional<WireVolumeFileRequest> parse_volume_file_request(
    const Frame& frame, const NetLimits& limits) {
  PayloadReader r(frame.payload);
  WireVolumeFileRequest req;
  if (!read_request_options(r, req.options) ||
      !r.str(req.path, limits.max_path_bytes) ||
      !r.str(req.prompt, limits.max_prompt_bytes) || !r.done()) {
    return std::nullopt;
  }
  if (req.path.empty()) return std::nullopt;
  return req;
}

std::optional<ServerMessage> parse_server_frame(const Frame& frame,
                                                const NetLimits& limits) {
  ServerMessage msg;
  msg.type = static_cast<FrameType>(frame.header.type);
  msg.request_id = frame.header.request_id;
  PayloadReader r(frame.payload);
  switch (msg.type) {
    case FrameType::kHelloAck: {
      std::uint32_t tenant = 0;
      if (!r.u32(tenant) || !r.done()) return std::nullopt;
      return msg;
    }
    case FrameType::kPong:
      msg.ping_payload = frame.payload;
      if (msg.ping_payload.size() > limits.max_ping_bytes) return std::nullopt;
      return msg;
    case FrameType::kRejected: {
      std::uint8_t reason = 0;
      if (!r.u64(msg.trace_id) || !r.u8(reason) ||
          reason > static_cast<std::uint8_t>(WireReject::kOverloaded) ||
          !read_error(r, msg.error) || !r.done()) {
        return std::nullopt;
      }
      msg.reject = static_cast<WireReject>(reason);
      return msg;
    }
    case FrameType::kError:
      if (!r.u64(msg.trace_id) || !read_error(r, msg.error) || !r.done()) {
        return std::nullopt;
      }
      return msg;
    case FrameType::kResponse: {
      std::uint8_t pad8 = 0;
      std::uint16_t pad16 = 0;
      if (!r.u64(msg.trace_id) || !r.u8(msg.kind) || !r.u8(pad8) ||
          !r.u16(pad16)) {
        return std::nullopt;
      }
      if (msg.kind == 3) {  // volume
        std::uint32_t depth = 0;
        if (!r.f64(msg.queue_us) || !r.f64(msg.decode_us) ||
            !r.f64(msg.total_us) || !r.u32(depth) ||
            !r.i32(msg.replaced_count)) {
          return std::nullopt;
        }
        // Each slice carries ≥ 56 bytes of fixed fields, so depth is
        // implicitly bounded by the frame size; still cap the reserve.
        if (depth > frame.payload.size() / 8) return std::nullopt;
        msg.volume_masks.reserve(depth);
        for (std::uint32_t z = 0; z < depth; ++z) {
          double conf = 0.0;
          image::Box box;
          image::Mask mask;
          if (!r.f64(conf) || !read_box(r, box) ||
              !read_mask(r, limits, mask)) {
            return std::nullopt;
          }
          if (z == 0) {
            msg.confidence = conf;
            msg.box = box;
          }
          msg.volume_masks.push_back(std::move(mask));
        }
        if (!r.done()) return std::nullopt;
        return msg;
      }
      if (!r.f64(msg.confidence) || !read_box(r, msg.box) ||
          !r.f64(msg.queue_us) || !r.f64(msg.decode_us) ||
          !r.f64(msg.total_us) || !read_mask(r, limits, msg.mask) ||
          !r.done()) {
        return std::nullopt;
      }
      return msg;
    }
    default:
      return std::nullopt;  // client-direction or unknown type
  }
}

}  // namespace zenesis::net
