#pragma once
// zenesis::net wire protocol — the compact length-prefixed binary framing
// the zen_net server and loopback client speak.
//
// Every frame is a fixed 20-byte little-endian header followed by a typed
// payload:
//
//   offset  size  field
//   0       4     magic        0x5A4E4554 ("ZNET")
//   4       2     version      kProtocolVersion (1)
//   6       2     type         FrameType
//   8       8     request_id   client-chosen correlation id (0 where unused)
//   16      4     payload_len  bytes following the header
//
// The decoder is incremental (feed bytes as they arrive off a socket,
// frames pop out as they complete) and hardened the same way the TIFF
// reader is: every length field is validated against NetLimits *before*
// any allocation, payload parsers bounds-check every read against the
// remaining buffer (PayloadReader), and malformed bytes yield a
// WireErrorKind — never a crash, over-allocation or hang. The protocol
// fuzzer in tests/net_fuzz_harness.* enforces exactly that contract.
//
// Client→server frames: Hello (tenant handshake), SliceRequest,
// VolumeFileRequest, Cancel, Ping. Server→client frames: HelloAck,
// Response (slice or volume payload), Rejected (structured backpressure:
// reason + core::Error), Error (protocol/parse failure), Pong. Request
// frames carry priority, a relative deadline, and an optional trace id
// that the server threads through its obs spans and echoes back in the
// terminal frame.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "zenesis/core/error.hpp"
#include "zenesis/core/pipeline.hpp"
#include "zenesis/image/image.hpp"

namespace zenesis::net {

inline constexpr std::uint32_t kMagic = 0x5A4E4554u;  // "ZNET"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 20;

enum class FrameType : std::uint16_t {
  // client → server
  kHello = 1,       ///< tenant/client-id handshake; must be first
  kSlice = 2,       ///< Mode-A text-prompted image request
  kVolumeFile = 3,  ///< Mode-B TIFF path streamed at dispatch
  kCancel = 4,      ///< cancel the request named by header.request_id
  kPing = 5,        ///< liveness probe; payload echoed in kPong
  // server → client
  kHelloAck = 16,   ///< handshake accepted
  kResponse = 17,   ///< successful result (slice or volume payload)
  kRejected = 18,   ///< structured backpressure/cancel/deadline outcome
  kError = 19,      ///< protocol or pipeline failure (core::Error payload)
  kPong = 20,       ///< kPing echo
};

/// True when `t` is a value a client may send (server-side direction
/// check; the decoder itself is direction-agnostic).
bool is_client_frame(FrameType t) noexcept;
/// True when `t` names any known frame type.
bool is_known_frame(std::uint16_t t) noexcept;

/// Why a request was rejected — serve::RejectReason plus the two net-level
/// shedding outcomes that fire before the service is ever consulted.
enum class WireReject : std::uint8_t {
  kNone = 0,
  kQueueFull = 1,        ///< service admission queue at capacity
  kDeadlineExpired = 2,  ///< deadline passed before the pipeline ran
  kShuttingDown = 3,     ///< server/service draining
  kCancelled = 4,        ///< cancel frame or disconnect before dispatch
  kTenantQuota = 5,      ///< per-tenant queued-request quota exhausted
  kOverloaded = 6,       ///< global backlog shed threshold exceeded
};

const char* to_string(WireReject reason) noexcept;

/// Decode-failure taxonomy (mirrors io::TiffErrorKind's role).
enum class WireErrorKind : std::uint8_t {
  kNone = 0,
  kBadMagic = 1,
  kBadVersion = 2,
  kBadType = 3,
  kOversized = 4,   ///< payload_len exceeds NetLimits::max_frame_bytes
  kBadPayload = 5,  ///< well-framed payload failed its typed parse
  kBadState = 6,    ///< valid frame, wrong time (no Hello, duplicate id…)
  kTruncated = 7,   ///< connection ended mid-frame
  kTimeout = 8,     ///< partial frame idle past the slow-loris deadline
};

const char* to_string(WireErrorKind kind) noexcept;

/// Hard ceilings enforced while decoding, checked before any allocation —
/// the TiffReadLimits treatment applied to the wire.
struct NetLimits {
  /// Maximum payload bytes in one frame (bounds decoder buffering).
  std::uint32_t max_frame_bytes = 64u << 20;  // 64 MiB
  /// Maximum width*height of one request image.
  std::uint64_t max_pixels = 1ull << 26;  // 64 Mpixel
  std::uint32_t max_prompt_bytes = 4096;
  std::uint32_t max_path_bytes = 4096;
  std::uint32_t max_ping_bytes = 256;
};

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t type = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

// --- incremental decoder -------------------------------------------------

/// Feed bytes as they arrive; complete frames pop out of next(). After an
/// error the decoder latches failed (the stream is unframeable past a bad
/// header) and next() keeps returning kError.
class FrameDecoder {
 public:
  enum class Status { kNeedMore, kFrame, kError };

  explicit FrameDecoder(NetLimits limits = {}) : limits_(limits) {}

  void feed(const std::uint8_t* data, std::size_t n);

  Status next(Frame& out);

  WireErrorKind error_kind() const noexcept { return error_kind_; }
  const std::string& error_message() const noexcept { return error_message_; }

  /// Bytes of an incomplete frame are pending (slow-loris detection).
  bool mid_frame() const noexcept { return !failed_ && buffered() > 0; }
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  Status fail(WireErrorKind kind, std::string message);

  NetLimits limits_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  WireErrorKind error_kind_ = WireErrorKind::kNone;
  std::string error_message_;
};

// --- bounds-checked payload reader --------------------------------------

/// Every accessor returns false instead of reading out of bounds; strings
/// are length-prefixed and capped by the caller. Used by every payload
/// parser below (and reusable by tests poking at raw frames).
class PayloadReader {
 public:
  PayloadReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit PayloadReader(const std::vector<std::uint8_t>& payload)
      : PayloadReader(payload.data(), payload.size()) {}

  bool u8(std::uint8_t& v);
  bool u16(std::uint16_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool i32(std::int32_t& v);
  bool i64(std::int64_t& v);
  bool f32(float& v);
  bool f64(double& v);
  bool bytes(void* out, std::size_t n);
  /// u32 length prefix + raw bytes; fails when length > max_len.
  bool str(std::string& out, std::uint32_t max_len);

  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool done() const noexcept { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Little-endian append-only writer (the encode mirror of PayloadReader).
class PayloadWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  void f32(float v);
  void f64(double v);
  void bytes(const void* data, std::size_t n);
  void str(const std::string& s);

  std::vector<std::uint8_t> take() { return std::move(out_); }
  const std::vector<std::uint8_t>& data() const noexcept { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

// --- typed payloads ------------------------------------------------------

struct WireHello {
  std::uint32_t tenant = 0;
  std::uint32_t flags = 0;  ///< reserved, must decode (any value accepted)
};

/// Common request knobs carried by both request shapes.
struct WireRequestOptions {
  std::int32_t priority = 0;
  /// Relative deadline in milliseconds from server receipt; 0 = none.
  std::uint32_t deadline_ms = 0;
  /// Caller-chosen obs trace id; 0 = server allocates one. Either way the
  /// terminal frame echoes the id actually used.
  std::uint64_t trace_id = 0;
};

struct WireSliceRequest {
  image::AnyImage image;
  std::string prompt;
  WireRequestOptions options;
};

struct WireVolumeFileRequest {
  std::string path;
  std::string prompt;
  WireRequestOptions options;
};

/// Decoded server→client message — the client library and the fuzz
/// harness both consume this one shape.
struct ServerMessage {
  FrameType type = FrameType::kError;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;

  // kRejected / kError
  WireReject reject = WireReject::kNone;
  core::Error error;

  // kResponse
  std::uint8_t kind = 0;  ///< serve::RequestKind of the completed request
  double confidence = 0.0;
  image::Box box;
  image::Mask mask;                      ///< slice responses
  std::vector<image::Mask> volume_masks; ///< volume responses
  std::int32_t replaced_count = 0;
  double queue_us = 0.0;
  double decode_us = 0.0;
  double total_us = 0.0;

  // kPong
  std::vector<std::uint8_t> ping_payload;
};

// --- encoders (client → server) -----------------------------------------

std::vector<std::uint8_t> encode_hello(std::uint32_t tenant,
                                       std::uint32_t flags = 0);
std::vector<std::uint8_t> encode_slice_request(std::uint64_t request_id,
                                               const image::AnyImage& image,
                                               const std::string& prompt,
                                               const WireRequestOptions& opts);
std::vector<std::uint8_t> encode_volume_file_request(
    std::uint64_t request_id, const std::string& path,
    const std::string& prompt, const WireRequestOptions& opts);
std::vector<std::uint8_t> encode_cancel(std::uint64_t request_id);
std::vector<std::uint8_t> encode_ping(const std::vector<std::uint8_t>& payload);

// --- encoders (server → client) -----------------------------------------

std::vector<std::uint8_t> encode_hello_ack(std::uint32_t tenant);
std::vector<std::uint8_t> encode_pong(const std::vector<std::uint8_t>& payload);
/// Timings echoed into response frames (µs, as measured by the service).
struct WireTimings {
  double queue_us = 0.0;
  double decode_us = 0.0;
  double total_us = 0.0;
};
std::vector<std::uint8_t> encode_slice_response(std::uint64_t request_id,
                                                std::uint64_t trace_id,
                                                const core::SliceResult& result,
                                                const WireTimings& timings);
std::vector<std::uint8_t> encode_volume_response(
    std::uint64_t request_id, std::uint64_t trace_id,
    const core::VolumeResult& result, const WireTimings& timings);
std::vector<std::uint8_t> encode_rejected(std::uint64_t request_id,
                                          std::uint64_t trace_id,
                                          WireReject reason,
                                          const core::Error& error);
std::vector<std::uint8_t> encode_error(std::uint64_t request_id,
                                       std::uint64_t trace_id,
                                       const core::Error& error);

// --- parsers -------------------------------------------------------------

/// Parsers return nullopt for any malformed payload (wrong size, length
/// field past the buffer, dimension bomb past `limits`) — never throw on
/// bad bytes.
std::optional<WireHello> parse_hello(const Frame& frame);
std::optional<WireSliceRequest> parse_slice_request(const Frame& frame,
                                                    const NetLimits& limits);
std::optional<WireVolumeFileRequest> parse_volume_file_request(
    const Frame& frame, const NetLimits& limits);

/// Decodes any server→client frame (client side + fuzz harness).
std::optional<ServerMessage> parse_server_frame(const Frame& frame,
                                                const NetLimits& limits);

}  // namespace zenesis::net
