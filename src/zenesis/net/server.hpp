#pragma once
// zenesis::net::Server (zen_net) — the poll() event-loop wire front end
// in front of serve::SegmentService. This is the layer that turns the
// ROADMAP's "millions of users" north star into a testable claim: many
// concurrent connections speaking the compact binary protocol in
// frame.hpp, mapped onto serve::Request with per-tenant fairness and
// explicit load shedding layered on top of the service's own admission.
//
// Threading model (three roles, two threads):
//
//   event loop ── poll() over {listen fd, wake pipe, every connection}.
//     Reads bytes, runs the incremental FrameDecoder, handles protocol
//     frames (hello/ping/cancel) inline, and admits request frames into
//     per-tenant queues. Owns every fd: only this thread reads, writes,
//     or closes sockets.
//
//   bridge ── drains the tenant queues in weighted round-robin order
//     (each visit submits up to `weight` requests of the chosen tenant,
//     so under saturation tenant throughput is proportional to weight),
//     throttled so at most `max_inflight` requests are inside the
//     service at once — the service's QueueFull backstop is therefore
//     never hit by wire traffic; shedding happened earlier, at net
//     admission, with a structured Rejected frame. The same thread reaps
//     completed futures, encodes terminal frames, and hands them to the
//     event loop through the connection outboxes + wake pipe.
//
// Admission ladder for a request frame (first failure wins):
//   1. decoder/frame errors            → Error frame, connection drains
//   2. no Hello / duplicate request id → Error frame (connection keeps going)
//   3. server draining                 → Rejected{ShuttingDown}
//   4. global backlog ≥ shed_backlog   → Rejected{Overloaded}
//   5. tenant queue ≥ tenant quota     → Rejected{TenantQuota}
//   6. queued; the service's own deadline/cancel/QueueFull outcomes come
//      back as Rejected frames with the service's reason.
//
// Robustness contract (enforced by tests/net_fuzz_harness.*,
// test_net_faults.cpp and test_net_soak.cpp): any client byte stream
// yields, per request actually decoded, exactly one terminal frame
// (Response / Rejected / Error) — and per connection at most one
// trailing Error frame before close. Never a crash, hang, unbounded
// buffer, or leaked queue slot. Slow-loris partial frames time out;
// disconnects cancel the connection's queued and in-flight work; a
// half-closed (shutdown(SHUT_WR)) connection still receives every
// response it is owed.
//
// Every request carries an obs trace id (client-proposed or server
// allocated) that flows through the net spans, the service's spans (see
// SegmentService::submit), and back in the terminal frame.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "zenesis/core/session.hpp"
#include "zenesis/eval/dashboard.hpp"
#include "zenesis/net/frame.hpp"
#include "zenesis/serve/histogram.hpp"
#include "zenesis/serve/service.hpp"

namespace zenesis::net {

using Clock = std::chrono::steady_clock;

/// Per-tenant fairness knobs. `weight` is the tenant's share of bridge
/// submissions under saturation; `max_queued` is its quota of net-queued
/// requests (beyond it, new requests shed with Rejected{TenantQuota}).
struct TenantPolicy {
  std::uint32_t weight = 1;
  std::size_t max_queued = 256;
};

struct ServerConfig {
  NetLimits limits;
  /// Per-tenant overrides; tenants not listed use `default_tenant`.
  std::map<std::uint32_t, TenantPolicy> tenants;
  TenantPolicy default_tenant;
  /// Connections beyond this are accepted, told Rejected{Overloaded} and
  /// closed immediately.
  std::size_t max_connections = 4096;
  /// Total net-queued requests across tenants; beyond it requests shed
  /// with Rejected{Overloaded} regardless of tenant quota.
  std::size_t shed_backlog = 4096;
  /// Cap on requests concurrently inside the service; 0 = the service's
  /// queue_capacity (so wire traffic never triggers QueueFull there).
  std::size_t max_inflight = 0;
  /// A connection holding an incomplete frame longer than this is a
  /// slow-loris: it gets an Error{Timeout} frame and is closed.
  std::chrono::milliseconds partial_frame_timeout{5000};
  /// Bound on flushing outstanding responses during stop().
  std::chrono::milliseconds drain_timeout{5000};
  /// Request frames before a Hello are protocol errors (default). Tests
  /// may relax this to poke the request path directly.
  bool require_hello = true;
  /// Start with the bridge paused (frames are still read and queued) —
  /// deterministic queue buildup for fairness/shedding tests.
  bool start_bridge_paused = false;
  /// Ingestion knobs applied to every wire VolumeFile request (byte-source
  /// kind, TIFF read limits, prefetch). Server-side policy: clients name a
  /// path, the operator decides how it is opened.
  io::TiffOpenOptions tiff_open{};

  /// One message per invalid knob; empty = valid.
  std::vector<std::string> validate() const;
};

/// Per-tenant counter block inside NetStats.
struct TenantCounters {
  std::uint64_t received = 0;   ///< request frames admitted to the net queue
  std::uint64_t submitted = 0;  ///< handed to the service
  std::uint64_t completed = 0;  ///< terminal frames sent (any status)
  std::uint64_t shed = 0;       ///< TenantQuota rejections
};

/// Snapshot of the wire-level counters; copied out under the server lock.
struct NetStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t connections_timed_out = 0;  ///< slow-loris closures
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t requests_received = 0;  ///< admitted into tenant queues
  std::uint64_t responses_sent = 0;
  std::uint64_t rejected_sent = 0;
  std::uint64_t errors_sent = 0;
  std::uint64_t cancels_received = 0;
  std::uint64_t shed_tenant_quota = 0;
  std::uint64_t shed_overloaded = 0;
  std::uint64_t protocol_errors = 0;

  /// Frame-complete → terminal-frame-queued, per request (wire-level
  /// latency as the event loop sees it).
  serve::Histogram wire_us;

  std::map<std::uint32_t, TenantCounters> tenants;

  /// Tenant ids of the first submissions, in bridge order (bounded; for
  /// deterministic fairness tests and the zen_load report).
  std::vector<std::uint32_t> submission_log;
};

class Server {
 public:
  /// Starts the event loop and bridge immediately. `service` must outlive
  /// this server and must not be shut down before stop() returns.
  Server(serve::SegmentService& service, ServerConfig cfg = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds a loopback TCP listener (port 0 = ephemeral) and returns the
  /// bound port. Throws std::runtime_error when the socket cannot be
  /// created or bound (e.g. sandboxed environments).
  std::uint16_t listen_tcp(std::uint16_t port = 0);

  /// Adopts an established, connected fd (e.g. one end of a socketpair —
  /// the deterministic loopback tests and Client::loopback_pair use
  /// exactly this). The server takes ownership of the fd. Thread-safe.
  void adopt(int fd);

  /// Deterministic buildup control for tests: while paused, request
  /// frames queue at net admission but nothing is submitted.
  void pause_bridge();
  void resume_bridge();

  /// Stops admission (new requests get Rejected{ShuttingDown}), waits for
  /// in-flight requests, flushes outboxes (bounded by drain_timeout),
  /// closes every connection and joins both threads. Idempotent.
  void stop();

  NetStats stats() const;
  /// Net-queued requests (all tenants) not yet submitted to the service.
  std::size_t backlog() const;
  /// Requests currently inside the service.
  std::size_t inflight() const;

  /// Writes the wire-level counters into a Mode-C dashboard (net_* keys).
  void publish_stats(eval::Dashboard& dashboard) const;
  /// Registers publish_stats as a scoped runtime-stats source (same
  /// lifetime contract as SegmentService::attach_to).
  void attach_to(core::Session& session);

  const ServerConfig& config() const noexcept { return cfg_; }

 private:
  struct NetRequest;
  struct Conn;
  struct TenantState;

  void evloop_main();
  void bridge_main();

  // Event-loop internals (evloop thread only unless noted).
  void handle_readable(const std::shared_ptr<Conn>& conn);
  void handle_writable(const std::shared_ptr<Conn>& conn);
  void handle_frame(const std::shared_ptr<Conn>& conn, Frame&& frame);
  void handle_request_frame(const std::shared_ptr<Conn>& conn, Frame&& frame);
  void handle_cancel(const std::shared_ptr<Conn>& conn,
                     std::uint64_t request_id);
  /// Queues a protocol-error close: reading stops, already-admitted
  /// requests still complete, then `error` is sent and the socket closed.
  void begin_error_close(const std::shared_ptr<Conn>& conn,
                         WireErrorKind kind, const std::string& message);
  /// Hard teardown (peer gone): cancels the connection's queued and
  /// in-flight requests, frees its tenant slots, closes the fd.
  void teardown(const std::shared_ptr<Conn>& conn);
  void maybe_finish_close_locked(const std::shared_ptr<Conn>& conn);

  // Shared helpers (any thread; take mu_ internally where noted).
  void append_frame_locked(const std::shared_ptr<Conn>& conn,
                           std::vector<std::uint8_t>&& bytes);
  void wake_evloop();
  TenantState& tenant_state_locked(std::uint32_t tenant);
  void complete_request_locked(const std::shared_ptr<Conn>& conn,
                               const std::shared_ptr<NetRequest>& req,
                               std::vector<std::uint8_t>&& frame,
                               bool is_response, bool is_reject);

  serve::SegmentService& service_;
  ServerConfig cfg_;
  std::size_t max_inflight_ = 0;

  mutable std::mutex mu_;
  std::condition_variable bridge_cv_;
  std::map<std::uint64_t, std::shared_ptr<Conn>> conns_;  ///< by conn id
  std::map<std::uint32_t, TenantState> tenants_;
  std::size_t backlog_ = 0;
  struct Inflight {
    std::future<serve::Response> future;
    std::shared_ptr<NetRequest> req;
    std::shared_ptr<Conn> conn;
  };
  std::vector<Inflight> inflight_;
  NetStats stats_;
  std::vector<int> adopt_queue_;
  std::uint64_t next_conn_id_ = 1;
  bool bridge_paused_ = false;
  bool stopping_ = false;
  bool bridge_done_ = false;
  std::size_t rr_cursor_ = 0;      ///< weighted round-robin position
  std::uint32_t rr_burst_used_ = 0;

  int wake_r_ = -1;
  int wake_w_ = -1;
  int listen_fd_ = -1;

  std::mutex lifecycle_mu_;  ///< serializes stop/join
  std::thread evloop_;
  std::thread bridge_;

  std::vector<core::StatsRegistration> stats_registrations_;
};

}  // namespace zenesis::net
