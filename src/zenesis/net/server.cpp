#include "zenesis/net/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "zenesis/obs/trace.hpp"

namespace zenesis::net {

namespace {

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

/// Bounded submission-order log (fairness tests, zen_load report).
constexpr std::size_t kSubmissionLogCap = 512;
/// Reads per connection per poll round — poll() is level-triggered, so a
/// fire-hose sender resumes next round instead of starving its peers.
constexpr int kMaxReadsPerRound = 4;

core::ErrorCode error_code_for(WireErrorKind kind) {
  switch (kind) {
    case WireErrorKind::kOversized: return core::ErrorCode::kLimitExceeded;
    case WireErrorKind::kTimeout:
    case WireErrorKind::kTruncated: return core::ErrorCode::kIo;
    default: return core::ErrorCode::kInvalidArgument;
  }
}

core::ErrorCode error_code_for(WireReject reason) {
  switch (reason) {
    case WireReject::kQueueFull: return core::ErrorCode::kQueueFull;
    case WireReject::kDeadlineExpired: return core::ErrorCode::kDeadlineExpired;
    case WireReject::kShuttingDown: return core::ErrorCode::kShuttingDown;
    case WireReject::kCancelled: return core::ErrorCode::kCancelled;
    case WireReject::kTenantQuota:
    case WireReject::kOverloaded: return core::ErrorCode::kQueueFull;
    case WireReject::kNone: break;
  }
  return core::ErrorCode::kNone;
}

WireReject wire_reject_for(serve::RejectReason reason) {
  switch (reason) {
    case serve::RejectReason::kQueueFull: return WireReject::kQueueFull;
    case serve::RejectReason::kDeadlineExpired:
      return WireReject::kDeadlineExpired;
    case serve::RejectReason::kShuttingDown: return WireReject::kShuttingDown;
    case serve::RejectReason::kCancelled: return WireReject::kCancelled;
    case serve::RejectReason::kNone: break;
  }
  return WireReject::kNone;
}

core::Error make_reject_error(WireReject reason, const char* stage) {
  core::Error e;
  e.code = error_code_for(reason);
  e.stage = stage;
  e.message = to_string(reason);
  return e;
}

std::vector<std::uint8_t> make_reject_frame(std::uint64_t request_id,
                                            std::uint64_t trace_id,
                                            WireReject reason,
                                            const char* stage) {
  return encode_rejected(request_id, trace_id, reason,
                         make_reject_error(reason, stage));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

ServerConfig checked(ServerConfig cfg) {
  const std::vector<std::string> issues = cfg.validate();
  if (!issues.empty()) {
    std::ostringstream msg;
    msg << "invalid ServerConfig:";
    for (const auto& issue : issues) msg << "\n  - " << issue;
    throw std::invalid_argument(msg.str());
  }
  return cfg;
}

}  // namespace

std::vector<std::string> ServerConfig::validate() const {
  std::vector<std::string> issues;
  const auto check_policy = [&](const TenantPolicy& p, const std::string& who) {
    if (p.weight < 1) issues.push_back(who + ": weight must be >= 1");
    if (p.max_queued < 1) issues.push_back(who + ": max_queued must be >= 1");
  };
  check_policy(default_tenant, "default_tenant");
  for (const auto& [id, policy] : tenants) {
    check_policy(policy, "tenant " + std::to_string(id));
  }
  if (max_connections < 1) issues.push_back("max_connections must be >= 1");
  if (shed_backlog < 1) issues.push_back("shed_backlog must be >= 1");
  if (partial_frame_timeout.count() <= 0) {
    issues.push_back("partial_frame_timeout must be positive");
  }
  if (drain_timeout.count() < 0) {
    issues.push_back("drain_timeout must be non-negative");
  }
  if (limits.max_frame_bytes < kHeaderBytes) {
    issues.push_back("limits.max_frame_bytes too small to frame anything");
  }
  return issues;
}

// --- internal structures -------------------------------------------------

struct Server::NetRequest {
  std::uint64_t request_id = 0;
  std::uint32_t tenant = 0;
  std::uint64_t trace_id = 0;
  serve::Request req;
  std::shared_ptr<Conn> conn;
  Clock::time_point received{};
  std::int64_t obs_received_ns = 0;
  bool cancelled = false;  ///< cancel frame / disconnect while net-queued
  bool submitted = false;  ///< handed to the service
  std::shared_ptr<serve::CancelToken> token;
};

struct Server::Conn {
  std::uint64_t id = 0;
  int fd = -1;

  // Event-loop-thread-only parsing state.
  FrameDecoder decoder{NetLimits{}};
  bool has_partial = false;
  Clock::time_point partial_since{};

  // Guarded by Server::mu_.
  bool hello_done = false;
  std::uint32_t tenant = 0;
  std::deque<std::vector<std::uint8_t>> outbox;
  std::size_t out_off = 0;
  std::size_t outbox_bytes = 0;
  bool closed = false;            ///< fd closed; drop anything aimed here
  bool read_closed = false;       ///< stop consuming input
  bool close_after_flush = false; ///< close once outbox drains
  bool overflowed = false;        ///< outbox cap hit; evloop tears down
  std::vector<std::uint8_t> trailing_error;  ///< sent after pending drains
  std::map<std::uint64_t, std::shared_ptr<NetRequest>> pending;
};

struct Server::TenantState {
  TenantPolicy policy;
  std::deque<std::shared_ptr<NetRequest>> queue;
};

// --- construction / lifecycle -------------------------------------------

Server::Server(serve::SegmentService& service, ServerConfig cfg)
    : service_(service), cfg_(checked(std::move(cfg))) {
  max_inflight_ = cfg_.max_inflight > 0 ? cfg_.max_inflight
                                        : service_.config().queue_capacity;
  bridge_paused_ = cfg_.start_bridge_paused;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw std::runtime_error("net::Server: cannot create wake pipe");
  }
  wake_r_ = pipe_fds[0];
  wake_w_ = pipe_fds[1];
  set_nonblocking(wake_r_);
  set_nonblocking(wake_w_);
  evloop_ = std::thread([this] { evloop_main(); });
  bridge_ = std::thread([this] { bridge_main(); });
}

Server::~Server() {
  stop();
  for (auto& registration : stats_registrations_) registration.reset();
}

void Server::stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  bridge_cv_.notify_all();
  wake_evloop();
  if (bridge_.joinable()) bridge_.join();
  wake_evloop();
  if (evloop_.joinable()) evloop_.join();
  if (wake_r_ >= 0) { ::close(wake_r_); wake_r_ = -1; }
  if (wake_w_ >= 0) { ::close(wake_w_); wake_w_ = -1; }
  if (listen_fd_ >= 0) { ::close(listen_fd_); listen_fd_ = -1; }
}

std::uint16_t Server::listen_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("net::Server: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 512) != 0) {
    ::close(fd);
    throw std::runtime_error("net::Server: cannot bind/listen on loopback");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  set_nonblocking(fd);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (listen_fd_ >= 0) {
      ::close(fd);
      throw std::runtime_error("net::Server: already listening");
    }
    listen_fd_ = fd;
  }
  wake_evloop();
  return ntohs(addr.sin_port);
}

void Server::adopt(int fd) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    adopt_queue_.push_back(fd);
  }
  wake_evloop();
}

void Server::pause_bridge() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    bridge_paused_ = true;
  }
  bridge_cv_.notify_all();
}

void Server::resume_bridge() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    bridge_paused_ = false;
  }
  bridge_cv_.notify_all();
}

void Server::wake_evloop() {
  const char byte = 1;
  // Nonblocking: EAGAIN means a wake is already pending — that's enough.
  [[maybe_unused]] const ssize_t n = ::write(wake_w_, &byte, 1);
}

// --- stats ---------------------------------------------------------------

NetStats Server::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::size_t Server::backlog() const {
  std::lock_guard<std::mutex> lk(mu_);
  return backlog_;
}

std::size_t Server::inflight() const {
  std::lock_guard<std::mutex> lk(mu_);
  return inflight_.size();
}

void Server::publish_stats(eval::Dashboard& dashboard) const {
  NetStats s;
  std::size_t queued = 0, in_service = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    s = stats_;
    queued = backlog_;
    in_service = inflight_.size();
  }
  const auto set_u64 = [&](const char* key, std::uint64_t v) {
    dashboard.set_stat(key, static_cast<double>(v));
  };
  set_u64("net_connections_accepted", s.connections_accepted);
  set_u64("net_connections_active", s.connections_active);
  set_u64("net_connections_timed_out", s.connections_timed_out);
  set_u64("net_bytes_in", s.bytes_in);
  set_u64("net_bytes_out", s.bytes_out);
  set_u64("net_frames_in", s.frames_in);
  set_u64("net_frames_out", s.frames_out);
  set_u64("net_requests_received", s.requests_received);
  set_u64("net_responses_sent", s.responses_sent);
  set_u64("net_rejected_sent", s.rejected_sent);
  set_u64("net_errors_sent", s.errors_sent);
  set_u64("net_cancels_received", s.cancels_received);
  set_u64("net_shed_tenant_quota", s.shed_tenant_quota);
  set_u64("net_shed_overloaded", s.shed_overloaded);
  set_u64("net_protocol_errors", s.protocol_errors);
  set_u64("net_backlog", queued);
  set_u64("net_inflight", in_service);
  set_u64("net_tenants_seen", s.tenants.size());
  dashboard.set_stat("net_wire_us_p50", s.wire_us.percentile(50.0));
  dashboard.set_stat("net_wire_us_p95", s.wire_us.percentile(95.0));
  dashboard.set_stat("net_wire_us_p99", s.wire_us.percentile(99.0));
}

void Server::attach_to(core::Session& session) {
  stats_registrations_.push_back(session.add_scoped_stats_source(
      [this](eval::Dashboard& dashboard) { publish_stats(dashboard); }));
}

// --- shared helpers ------------------------------------------------------

Server::TenantState& Server::tenant_state_locked(std::uint32_t tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantState ts;
    const auto cfg_it = cfg_.tenants.find(tenant);
    ts.policy = cfg_it != cfg_.tenants.end() ? cfg_it->second
                                             : cfg_.default_tenant;
    it = tenants_.emplace(tenant, std::move(ts)).first;
    stats_.tenants.emplace(tenant, TenantCounters{});
  }
  return it->second;
}

void Server::append_frame_locked(const std::shared_ptr<Conn>& conn,
                                 std::vector<std::uint8_t>&& bytes) {
  if (conn->closed) return;
  stats_.frames_out += 1;
  stats_.bytes_out += bytes.size();
  conn->outbox_bytes += bytes.size();
  conn->outbox.push_back(std::move(bytes));
  // A peer that sends forever without reading its responses would grow
  // the outbox unboundedly; cap it and let the event loop tear down.
  const std::size_t cap =
      static_cast<std::size_t>(cfg_.limits.max_frame_bytes) + (8u << 20);
  if (conn->outbox_bytes > cap && !conn->overflowed) {
    conn->overflowed = true;
    stats_.protocol_errors += 1;
  }
}

void Server::maybe_finish_close_locked(const std::shared_ptr<Conn>& conn) {
  if (conn->closed || !conn->pending.empty()) return;
  if (!conn->trailing_error.empty()) {
    stats_.errors_sent += 1;
    append_frame_locked(conn, std::move(conn->trailing_error));
    conn->trailing_error.clear();
    conn->close_after_flush = true;
  }
  if (conn->read_closed) conn->close_after_flush = true;
}

void Server::complete_request_locked(const std::shared_ptr<Conn>& conn,
                                     const std::shared_ptr<NetRequest>& req,
                                     std::vector<std::uint8_t>&& frame,
                                     bool is_response, bool is_reject) {
  conn->pending.erase(req->request_id);
  auto tc = stats_.tenants.find(req->tenant);
  if (tc != stats_.tenants.end()) tc->second.completed += 1;
  stats_.wire_us.record(us_between(req->received, Clock::now()));
  if (is_response) {
    stats_.responses_sent += 1;
  } else if (is_reject) {
    stats_.rejected_sent += 1;
  } else {
    stats_.errors_sent += 1;
  }
  append_frame_locked(conn, std::move(frame));
  maybe_finish_close_locked(conn);
}

// --- event loop ----------------------------------------------------------

void Server::evloop_main() {
  const auto do_register = [&](int fd) {
    set_nonblocking(fd);
    std::lock_guard<std::mutex> lk(mu_);
    if (conns_.size() >= cfg_.max_connections || stopping_) {
      // Connection-level shedding: tell the peer (best effort) and close.
      const auto frame = encode_error(
          0, 0,
          core::Error{core::ErrorCode::kLimitExceeded, "net.accept",
                      stopping_ ? "server shutting down"
                                : "connection limit reached"});
      [[maybe_unused]] const ssize_t n =
          ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      stats_.shed_overloaded += 1;
      return;
    }
    auto conn = std::make_shared<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->decoder = FrameDecoder(cfg_.limits);
    conns_.emplace(conn->id, conn);
    stats_.connections_accepted += 1;
    stats_.connections_active += 1;
    service_.note_connection_accepted();
  };

  const auto close_now = [&](const std::shared_ptr<Conn>& conn) {
    // The one place fds die: evloop thread, under mu_.
    std::lock_guard<std::mutex> lk(mu_);
    if (conn->closed) return;
    conn->closed = true;
    conn->outbox.clear();
    conn->outbox_bytes = 0;
    conns_.erase(conn->id);
    ::close(conn->fd);
    if (stats_.connections_active > 0) stats_.connections_active -= 1;
    service_.note_connection_closed();
  };

  std::vector<pollfd> pfds;
  std::vector<std::shared_ptr<Conn>> polled;
  bool draining = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    // Phase 1 (locked): adopt new fds, snapshot poll interest, sweep
    // connections that owe nothing more.
    pfds.clear();
    polled.clear();
    bool stopping = false, bridge_done = false;
    int listen_fd = -1;
    Clock::time_point now = Clock::now();
    Clock::time_point next_deadline = now + std::chrono::milliseconds(100);
    {
      std::unique_lock<std::mutex> lk(mu_);
      stopping = stopping_;
      bridge_done = bridge_done_;
      listen_fd = listen_fd_;
      std::vector<int> adopts;
      adopts.swap(adopt_queue_);
      lk.unlock();
      for (const int fd : adopts) do_register(fd);
      lk.lock();

      // Close sweep + teardown of overflowed connections.
      std::vector<std::shared_ptr<Conn>> to_close, to_teardown;
      for (const auto& [id, conn] : conns_) {
        if (conn->overflowed) {
          to_teardown.push_back(conn);
        } else if (conn->close_after_flush && conn->outbox.empty()) {
          to_close.push_back(conn);
        }
      }
      lk.unlock();
      for (const auto& c : to_teardown) teardown(c);
      for (const auto& c : to_close) close_now(c);
      lk.lock();

      pfds.push_back({wake_r_, POLLIN, 0});
      polled.push_back(nullptr);
      if (listen_fd >= 0 && !stopping) {
        pfds.push_back({listen_fd, POLLIN, 0});
        polled.push_back(nullptr);
      }
      for (const auto& [id, conn] : conns_) {
        short events = 0;
        if (!conn->read_closed && !stopping) events |= POLLIN;
        if (!conn->outbox.empty()) events |= POLLOUT;
        if (events == 0) continue;
        pfds.push_back({conn->fd, events, 0});
        polled.push_back(conn);
      }
    }

    // Slow-loris deadlines (evloop-private state, no lock needed).
    for (const auto& conn : polled) {
      if (conn && conn->has_partial) {
        const auto deadline = conn->partial_since + cfg_.partial_frame_timeout;
        next_deadline = std::min(next_deadline, deadline);
      }
    }

    if (stopping && bridge_done) {
      if (!draining) {
        draining = true;
        drain_deadline = now + cfg_.drain_timeout;
      }
      bool all_flushed = true;
      {
        std::lock_guard<std::mutex> lk(mu_);
        for (const auto& [id, conn] : conns_) {
          if (!conn->outbox.empty()) all_flushed = false;
        }
      }
      if (all_flushed || now >= drain_deadline) {
        std::vector<std::shared_ptr<Conn>> rest;
        {
          std::lock_guard<std::mutex> lk(mu_);
          for (const auto& [id, conn] : conns_) rest.push_back(conn);
        }
        for (const auto& c : rest) close_now(c);
        return;
      }
      next_deadline = std::min(next_deadline,
                               now + std::chrono::milliseconds(10));
    }

    int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(next_deadline -
                                                              now)
            .count());
    timeout_ms = std::max(1, std::min(timeout_ms, 100));
    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      // poll on our own fds should never fail; bail out defensively.
      return;
    }

    now = Clock::now();
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const short re = pfds[i].revents;
      if (re == 0) continue;
      if (pfds[i].fd == wake_r_) {
        char drain[256];
        while (::read(wake_r_, drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (pfds[i].fd == listen_fd && polled[i] == nullptr) {
        for (;;) {
          const int cfd = ::accept(listen_fd, nullptr, nullptr);
          if (cfd < 0) break;
          do_register(cfd);
        }
        continue;
      }
      const std::shared_ptr<Conn>& conn = polled[i];
      if (!conn) continue;
      bool alive = true;
      {
        std::lock_guard<std::mutex> lk(mu_);
        alive = !conn->closed;
      }
      if (!alive) continue;
      if (re & (POLLERR | POLLNVAL)) {
        teardown(conn);
        continue;
      }
      if (re & POLLOUT) handle_writable(conn);
      if (re & (POLLIN | POLLHUP)) handle_readable(conn);
    }

    // Slow-loris sweep: a partial frame idle past the deadline is a
    // protocol error — the stalled connection cannot block anyone else.
    std::vector<std::shared_ptr<Conn>> lorised;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (const auto& [id, conn] : conns_) {
        if (conn->has_partial && !conn->read_closed &&
            now >= conn->partial_since + cfg_.partial_frame_timeout) {
          lorised.push_back(conn);
          stats_.connections_timed_out += 1;
          stats_.protocol_errors += 1;
        }
      }
    }
    for (const auto& conn : lorised) {
      service_.note_protocol_error();
      conn->has_partial = false;
      begin_error_close(conn, WireErrorKind::kTimeout,
                        "partial frame stalled past timeout");
    }
  }
}

void Server::handle_readable(const std::shared_ptr<Conn>& conn) {
  std::uint8_t buf[65536];
  for (int round = 0; round < kMaxReadsPerRound; ++round) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (conn->closed || conn->read_closed) return;
    }
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stats_.bytes_in += static_cast<std::uint64_t>(n);
      }
      conn->decoder.feed(buf, static_cast<std::size_t>(n));
      Frame frame;
      for (;;) {
        const FrameDecoder::Status st = conn->decoder.next(frame);
        if (st == FrameDecoder::Status::kFrame) {
          {
            std::lock_guard<std::mutex> lk(mu_);
            stats_.frames_in += 1;
          }
          handle_frame(conn, std::move(frame));
          std::lock_guard<std::mutex> lk(mu_);
          if (conn->read_closed || conn->closed) return;
          continue;
        }
        if (st == FrameDecoder::Status::kNeedMore) break;
        // Unframeable stream: count it, serve what was already admitted,
        // then send one Error frame and close.
        {
          std::lock_guard<std::mutex> lk(mu_);
          stats_.protocol_errors += 1;
        }
        service_.note_protocol_error();
        begin_error_close(conn, conn->decoder.error_kind(),
                          conn->decoder.error_message());
        return;
      }
      conn->has_partial = conn->decoder.mid_frame();
      if (conn->has_partial) conn->partial_since = Clock::now();
      if (n < static_cast<ssize_t>(sizeof(buf))) return;  // drained
      continue;
    }
    if (n == 0) {
      // EOF. A half-closed peer still gets every response it is owed; a
      // mid-frame EOF is a truncated stream and earns the error frame.
      if (conn->decoder.mid_frame()) {
        {
          std::lock_guard<std::mutex> lk(mu_);
          stats_.protocol_errors += 1;
        }
        service_.note_protocol_error();
        begin_error_close(conn, WireErrorKind::kTruncated,
                          "connection ended mid-frame");
        return;
      }
      std::lock_guard<std::mutex> lk(mu_);
      conn->has_partial = false;
      conn->read_closed = true;
      maybe_finish_close_locked(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    teardown(conn);
    return;
  }
}

void Server::handle_writable(const std::shared_ptr<Conn>& conn) {
  bool dead = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    while (!conn->outbox.empty() && !conn->closed) {
      const auto& front = conn->outbox.front();
      const ssize_t n =
          ::send(conn->fd, front.data() + conn->out_off,
                 front.size() - conn->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_off += static_cast<std::size_t>(n);
        conn->outbox_bytes -= static_cast<std::size_t>(n);
        if (conn->out_off == front.size()) {
          conn->outbox.pop_front();
          conn->out_off = 0;
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      dead = true;  // EPIPE/ECONNRESET: peer is gone
      break;
    }
  }
  if (dead) teardown(conn);
}

void Server::handle_frame(const std::shared_ptr<Conn>& conn, Frame&& frame) {
  const FrameType type = static_cast<FrameType>(frame.header.type);
  if (!is_client_frame(type)) {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.protocol_errors += 1;
    conn->read_closed = true;
    conn->trailing_error = encode_error(
        frame.header.request_id, 0,
        core::Error{core::ErrorCode::kInvalidArgument, "net.frame",
                    "server-direction frame type from client"});
    maybe_finish_close_locked(conn);
    service_.note_protocol_error();
    return;
  }
  switch (type) {
    case FrameType::kHello: {
      const std::optional<WireHello> hello = parse_hello(frame);
      bool bad = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        bad = !hello || conn->hello_done;
      }
      if (bad) {
        {
          std::lock_guard<std::mutex> lk(mu_);
          stats_.protocol_errors += 1;
        }
        service_.note_protocol_error();
        begin_error_close(conn,
                          hello ? WireErrorKind::kBadState
                                : WireErrorKind::kBadPayload,
                          hello ? "duplicate hello" : "malformed hello");
        return;
      }
      std::lock_guard<std::mutex> lk(mu_);
      conn->hello_done = true;
      conn->tenant = hello->tenant;
      tenant_state_locked(hello->tenant);
      append_frame_locked(conn, encode_hello_ack(hello->tenant));
      return;
    }
    case FrameType::kPing: {
      std::lock_guard<std::mutex> lk(mu_);
      if (frame.payload.size() > cfg_.limits.max_ping_bytes) {
        stats_.protocol_errors += 1;
        stats_.errors_sent += 1;
        append_frame_locked(
            conn, encode_error(0, 0,
                               core::Error{core::ErrorCode::kLimitExceeded,
                                           "net.frame", "ping too large"}));
        return;
      }
      append_frame_locked(conn, encode_pong(frame.payload));
      return;
    }
    case FrameType::kCancel:
      handle_cancel(conn, frame.header.request_id);
      return;
    case FrameType::kSlice:
    case FrameType::kVolumeFile:
      handle_request_frame(conn, std::move(frame));
      return;
    default:
      return;  // unreachable: is_client_frame filtered already
  }
}

void Server::handle_cancel(const std::shared_ptr<Conn>& conn,
                           std::uint64_t request_id) {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.cancels_received += 1;
  const auto it = conn->pending.find(request_id);
  if (it == conn->pending.end()) return;  // unknown/completed: idempotent
  if (!it->second->submitted) {
    it->second->cancelled = true;  // bridge rejects it on pop
    bridge_cv_.notify_one();
  } else {
    it->second->token->cancel();  // service sweeps it before dispatch
  }
}

void Server::handle_request_frame(const std::shared_ptr<Conn>& conn,
                                  Frame&& frame) {
  const FrameType type = static_cast<FrameType>(frame.header.type);
  const std::uint64_t rid = frame.header.request_id;

  const auto send_request_error = [&](const std::string& message) {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.protocol_errors += 1;
    stats_.errors_sent += 1;
    append_frame_locked(
        conn, encode_error(rid, 0,
                           core::Error{core::ErrorCode::kInvalidArgument,
                                       "net.parse", message}));
  };

  bool bad_rid = false, duplicate = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (cfg_.require_hello && !conn->hello_done) {
      stats_.protocol_errors += 1;
      conn->read_closed = true;
      conn->trailing_error = encode_error(
          rid, 0,
          core::Error{core::ErrorCode::kInvalidArgument, "net.frame",
                      "request before hello"});
      maybe_finish_close_locked(conn);
      service_.note_protocol_error();
      return;
    }
    bad_rid = rid == 0;
    duplicate = !bad_rid && conn->pending.count(rid) != 0;
  }
  if (bad_rid) {
    send_request_error("request_id must be nonzero");
    return;
  }
  if (duplicate) {
    send_request_error("duplicate request_id on this connection");
    return;
  }

  // Parse outside the lock (may copy megapixels).
  WireRequestOptions opts;
  serve::Request sreq;
  if (type == FrameType::kSlice) {
    std::optional<WireSliceRequest> parsed =
        parse_slice_request(frame, cfg_.limits);
    if (!parsed) {
      send_request_error("malformed slice request payload");
      service_.note_protocol_error();
      return;
    }
    opts = parsed->options;
    sreq = serve::Request::slice(std::move(parsed->image),
                                 std::move(parsed->prompt));
  } else {
    std::optional<WireVolumeFileRequest> parsed =
        parse_volume_file_request(frame, cfg_.limits);
    if (!parsed) {
      send_request_error("malformed volume-file request payload");
      service_.note_protocol_error();
      return;
    }
    opts = parsed->options;
    sreq = serve::Request::volume_file(std::move(parsed->path),
                                       std::move(parsed->prompt),
                                       cfg_.tiff_open);
  }
  sreq.priority = opts.priority;
  if (opts.deadline_ms > 0) {
    sreq.deadline = Clock::now() + std::chrono::milliseconds(opts.deadline_ms);
  }

  auto nr = std::make_shared<NetRequest>();
  nr->request_id = rid;
  nr->trace_id = opts.trace_id != 0 ? opts.trace_id : obs::new_trace_id();
  nr->conn = conn;
  nr->received = Clock::now();
  nr->obs_received_ns = obs::enabled() ? obs::now_ns() : 0;
  nr->token = std::make_shared<serve::CancelToken>();
  sreq.cancel = nr->token;
  nr->req = std::move(sreq);

  bool shed_noted = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    nr->tenant = conn->tenant;
    // Admission ladder (see header comment): shutdown → global backlog →
    // tenant quota → queue. Every rejection is a structured frame sent
    // before the service ever sees the request.
    if (stopping_) {
      stats_.rejected_sent += 1;
      append_frame_locked(conn,
                          make_reject_frame(rid, nr->trace_id,
                                            WireReject::kShuttingDown,
                                            "net.admission"));
      return;
    }
    TenantState& ts = tenant_state_locked(conn->tenant);
    TenantCounters& tc = stats_.tenants[conn->tenant];
    if (backlog_ >= cfg_.shed_backlog) {
      stats_.shed_overloaded += 1;
      stats_.rejected_sent += 1;
      shed_noted = true;
      append_frame_locked(conn,
                          make_reject_frame(rid, nr->trace_id,
                                            WireReject::kOverloaded,
                                            "net.admission"));
    } else if (ts.queue.size() >= ts.policy.max_queued) {
      stats_.shed_tenant_quota += 1;
      stats_.rejected_sent += 1;
      tc.shed += 1;
      shed_noted = true;
      append_frame_locked(conn,
                          make_reject_frame(rid, nr->trace_id,
                                            WireReject::kTenantQuota,
                                            "net.admission"));
    } else {
      stats_.requests_received += 1;
      tc.received += 1;
      conn->pending.emplace(rid, nr);
      ts.queue.push_back(std::move(nr));
      backlog_ += 1;
      bridge_cv_.notify_one();
    }
  }
  if (shed_noted) service_.note_request_shed();
}

void Server::begin_error_close(const std::shared_ptr<Conn>& conn,
                               WireErrorKind kind, const std::string& message) {
  std::lock_guard<std::mutex> lk(mu_);
  if (conn->closed || conn->close_after_flush || !conn->trailing_error.empty()) {
    return;
  }
  conn->read_closed = true;
  conn->has_partial = false;
  core::Error error;
  error.code = error_code_for(kind);
  error.stage = "net.frame";
  error.message = std::string(to_string(kind)) + ": " + message;
  conn->trailing_error = encode_error(0, 0, error);
  maybe_finish_close_locked(conn);
}

void Server::teardown(const std::shared_ptr<Conn>& conn) {
  // Peer is gone: every queued request is cancelled (the bridge drops it
  // silently on pop — there is nobody to tell), every in-flight request's
  // token fires so the service frees its slot, and the fd closes now.
  std::lock_guard<std::mutex> lk(mu_);
  if (conn->closed) return;
  for (auto& [rid, nr] : conn->pending) {
    if (!nr->submitted) {
      nr->cancelled = true;
    } else {
      nr->token->cancel();
    }
  }
  conn->pending.clear();
  conn->closed = true;
  conn->outbox.clear();
  conn->outbox_bytes = 0;
  conns_.erase(conn->id);
  ::close(conn->fd);
  if (stats_.connections_active > 0) stats_.connections_active -= 1;
  service_.note_connection_closed();
  bridge_cv_.notify_one();
}

// --- bridge --------------------------------------------------------------

namespace {

/// Builds the terminal frame for a completed service response.
std::vector<std::uint8_t> encode_terminal(std::uint64_t request_id,
                                          std::uint64_t trace_id,
                                          serve::Response&& resp,
                                          bool& is_response, bool& is_reject) {
  is_response = false;
  is_reject = false;
  switch (resp.status) {
    case serve::Response::Status::kOk: {
      const WireTimings timings{resp.queue_us, resp.decode_us, resp.total_us};
      if (resp.kind == serve::RequestKind::kVolume && resp.volume) {
        is_response = true;
        return encode_volume_response(request_id, trace_id, *resp.volume,
                                      timings);
      }
      if (resp.slice) {
        is_response = true;
        return encode_slice_response(request_id, trace_id, *resp.slice,
                                     timings);
      }
      return encode_error(request_id, trace_id,
                          core::Error{core::ErrorCode::kInternal, "net.bridge",
                                      "ok response without payload"});
    }
    case serve::Response::Status::kRejected:
      is_reject = true;
      return encode_rejected(request_id, trace_id,
                             wire_reject_for(resp.reject), resp.error);
    case serve::Response::Status::kError:
      return encode_error(request_id, trace_id, resp.error);
  }
  return encode_error(request_id, trace_id,
                      core::Error{core::ErrorCode::kInternal, "net.bridge",
                                  "unknown response status"});
}

}  // namespace

void Server::bridge_main() {
  using namespace std::chrono_literals;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // --- reap: completed service futures become terminal frames --------
    std::vector<Inflight> ready;
    for (std::size_t i = 0; i < inflight_.size();) {
      if (inflight_[i].future.wait_for(0s) == std::future_status::ready) {
        ready.push_back(std::move(inflight_[i]));
        inflight_[i] = std::move(inflight_.back());
        inflight_.pop_back();
      } else {
        ++i;
      }
    }
    if (!ready.empty()) {
      lk.unlock();
      struct Done {
        std::shared_ptr<NetRequest> req;
        std::shared_ptr<Conn> conn;
        std::vector<std::uint8_t> frame;
        bool is_response = false;
        bool is_reject = false;
      };
      std::vector<Done> done;
      done.reserve(ready.size());
      for (auto& r : ready) {
        Done d;
        d.req = std::move(r.req);
        d.conn = std::move(r.conn);
        serve::Response resp = r.future.get();
        d.frame = encode_terminal(d.req->request_id, d.req->trace_id,
                                  std::move(resp), d.is_response, d.is_reject);
        if (d.req->obs_received_ns != 0 && obs::enabled()) {
          // Wire-level request span: frame parsed → terminal frame built,
          // stitched to the same trace id the service's spans carry.
          obs::record_span("net.request", d.req->trace_id,
                           d.req->obs_received_ns, obs::now_ns());
        }
        done.push_back(std::move(d));
      }
      lk.lock();
      for (auto& d : done) {
        complete_request_locked(d.conn, d.req, std::move(d.frame),
                                d.is_response, d.is_reject);
      }
      lk.unlock();
      wake_evloop();
      lk.lock();
      continue;  // reap again before pumping: completions free capacity
    }

    // --- pump: weighted round-robin across tenant queues ----------------
    bool submitted_any = false;
    while (!bridge_paused_ && backlog_ > 0 &&
           inflight_.size() < max_inflight_) {
      // Rotation order is ascending tenant id; each visit submits up to
      // `weight` requests before moving on, so under saturation tenant
      // throughput is proportional to its weight.
      std::vector<std::uint32_t> ids;
      ids.reserve(tenants_.size());
      for (const auto& [id, ts] : tenants_) ids.push_back(id);
      if (ids.empty()) break;
      if (rr_cursor_ >= ids.size()) {
        rr_cursor_ = 0;
        rr_burst_used_ = 0;
      }
      std::shared_ptr<NetRequest> nr;
      for (std::size_t scanned = 0; scanned <= ids.size(); ++scanned) {
        TenantState& ts = tenants_[ids[rr_cursor_]];
        if (!ts.queue.empty() && rr_burst_used_ < ts.policy.weight) {
          rr_burst_used_ += 1;
          nr = std::move(ts.queue.front());
          ts.queue.pop_front();
          if (ts.queue.empty() || rr_burst_used_ >= ts.policy.weight) {
            rr_cursor_ = (rr_cursor_ + 1) % ids.size();
            rr_burst_used_ = 0;
          }
          break;
        }
        rr_cursor_ = (rr_cursor_ + 1) % ids.size();
        rr_burst_used_ = 0;
      }
      if (!nr) break;  // backlog said work exists but none found: bail
      backlog_ -= 1;
      const std::shared_ptr<Conn> conn = nr->conn;
      if (conn->closed) {
        // Disconnected while queued: nobody to tell; free the slot.
        continue;
      }
      if (nr->cancelled || stopping_) {
        const WireReject reason = nr->cancelled ? WireReject::kCancelled
                                                : WireReject::kShuttingDown;
        complete_request_locked(
            conn, nr,
            make_reject_frame(nr->request_id, nr->trace_id, reason,
                              "net.queue"),
            false, true);
        submitted_any = true;  // wake evloop below to flush the frame
        continue;
      }
      nr->submitted = true;
      if (stats_.submission_log.size() < kSubmissionLogCap) {
        stats_.submission_log.push_back(nr->tenant);
      }
      stats_.tenants[nr->tenant].submitted += 1;
      serve::Request sreq = std::move(nr->req);
      lk.unlock();
      std::future<serve::Response> fut;
      {
        // The service reuses this ambient trace id, so wire spans and
        // service spans stitch into one trace per request.
        obs::TraceScope trace(nr->trace_id);
        obs::Span span("net.submit");
        fut = service_.submit(std::move(sreq));
      }
      lk.lock();
      inflight_.push_back(Inflight{std::move(fut), std::move(nr), conn});
      submitted_any = true;
    }
    if (submitted_any) {
      lk.unlock();
      wake_evloop();
      lk.lock();
      continue;
    }

    // --- shutdown: reject everything still queued, wait out in-flight ---
    if (stopping_) {
      bool flushed_any = false;
      for (auto& [tenant, ts] : tenants_) {
        while (!ts.queue.empty()) {
          std::shared_ptr<NetRequest> nr = std::move(ts.queue.front());
          ts.queue.pop_front();
          backlog_ -= 1;
          if (nr->conn->closed) continue;
          complete_request_locked(
              nr->conn, nr,
              make_reject_frame(nr->request_id, nr->trace_id,
                                WireReject::kShuttingDown, "net.queue"),
              false, true);
          flushed_any = true;
        }
      }
      if (flushed_any) {
        lk.unlock();
        wake_evloop();
        lk.lock();
      }
      if (inflight_.empty()) {
        bridge_done_ = true;
        lk.unlock();
        wake_evloop();
        return;
      }
    }

    // --- wait: woken by admission/cancel/teardown/stop; std::future has
    // no completion hook, so in-flight work is polled at sub-ms cadence.
    bridge_cv_.wait_for(lk, inflight_.empty() ? 50ms : 500us);
  }
}

}  // namespace zenesis::net
