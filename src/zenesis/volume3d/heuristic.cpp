#include "zenesis/volume3d/heuristic.hpp"

#include <algorithm>

#include "zenesis/image/roi.hpp"

namespace zenesis::volume3d {

image::Box mean_box(const std::vector<image::Box>& boxes, std::size_t first,
                    std::size_t last) {
  std::int64_t n = 0;
  double x = 0.0, y = 0.0, w = 0.0, h = 0.0;
  for (std::size_t i = first; i < last && i < boxes.size(); ++i) {
    if (boxes[i].empty()) continue;
    x += static_cast<double>(boxes[i].x);
    y += static_cast<double>(boxes[i].y);
    w += static_cast<double>(boxes[i].w);
    h += static_cast<double>(boxes[i].h);
    ++n;
  }
  if (n == 0) return {};
  const double inv = 1.0 / static_cast<double>(n);
  return {static_cast<std::int64_t>(x * inv + 0.5),
          static_cast<std::int64_t>(y * inv + 0.5),
          static_cast<std::int64_t>(w * inv + 0.5),
          static_cast<std::int64_t>(h * inv + 0.5)};
}

RefineOutcome refine_box_sequence(const std::vector<image::Box>& boxes,
                                  const HeuristicConfig& cfg) {
  RefineOutcome out;
  out.boxes = boxes;
  out.replaced.assign(boxes.size(), false);
  if (boxes.empty() || cfg.window <= 0) return out;

  for (std::size_t i = 0; i < boxes.size(); ++i) {
    const std::size_t first =
        i >= static_cast<std::size_t>(cfg.window) ? i - static_cast<std::size_t>(cfg.window)
                                                  : 0;
    // The window reads already-corrected predecessors, so one failure
    // does not poison subsequent windows.
    const image::Box avg = mean_box(out.boxes, first, i);

    const bool missing = out.boxes[i].empty();
    bool outlier = false;
    if (!missing && !avg.empty() && i >= static_cast<std::size_t>(cfg.window)) {
      const double wf = static_cast<double>(out.boxes[i].w) /
                        static_cast<double>(std::max<std::int64_t>(1, avg.w));
      const double hf = static_cast<double>(out.boxes[i].h) /
                        static_cast<double>(std::max<std::int64_t>(1, avg.h));
      outlier = wf > cfg.size_factor || hf > cfg.size_factor ||
                wf < 1.0 / cfg.size_factor || hf < 1.0 / cfg.size_factor;
    }
    if ((missing && cfg.replace_missing && !avg.empty()) || outlier) {
      out.boxes[i] = avg;
      out.replaced[i] = true;
      ++out.replaced_count;
    }
  }
  return out;
}

double slice_consistency(const std::vector<image::Mask>& masks) {
  if (masks.size() < 2) return 1.0;
  double sum = 0.0;
  for (std::size_t i = 1; i < masks.size(); ++i) {
    sum += image::mask_iou(masks[i - 1], masks[i]);
  }
  return sum / static_cast<double>(masks.size() - 1);
}

}  // namespace zenesis::volume3d
