#pragma once
// Heuristic volumetric refinement (the paper's Fig. 7): for multi-slice
// volumes, per-slice detection boxes are compared against the mean
// width/height over a fallback window of preceding slices; boxes whose
// size exceeds a factor of that mean — or slices where detection failed
// outright — are replaced by the window-average box, restoring temporal
// consistency against sudden appearance changes and GroundingDINO
// failures.

#include <cstdint>
#include <vector>

#include "zenesis/image/geometry.hpp"
#include "zenesis/image/image.hpp"

namespace zenesis::volume3d {

struct HeuristicConfig {
  /// Number of preceding slices in the fallback window.
  int window = 3;
  /// A box is an outlier when width OR height exceeds factor × window
  /// mean (or falls below mean / factor).
  double size_factor = 1.6;
  /// Replace empty boxes (detection failures) with the window average.
  bool replace_missing = true;
};

/// Refinement outcome: the corrected sequence plus which entries were
/// replaced (for the Fig. 7 visualization and the ablation bench).
struct RefineOutcome {
  std::vector<image::Box> boxes;
  std::vector<bool> replaced;
  int replaced_count = 0;
};

/// Mean box (component-wise) of the non-empty boxes in [first, last).
image::Box mean_box(const std::vector<image::Box>& boxes, std::size_t first,
                    std::size_t last);

/// Applies the sliding-window outlier correction to a per-slice box
/// sequence. The first `window` slices are taken as-is unless empty (a
/// warm-up, as in the paper's implementation).
RefineOutcome refine_box_sequence(const std::vector<image::Box>& boxes,
                                  const HeuristicConfig& cfg = {});

/// Volumetric coherence: mean IoU between consecutive slice masks —
/// the quantity the temporal heuristic is designed to protect.
double slice_consistency(const std::vector<image::Mask>& masks);

}  // namespace zenesis::volume3d
