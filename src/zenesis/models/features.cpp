#include "zenesis/models/features.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "zenesis/cv/filters.hpp"
#include "zenesis/parallel/parallel_for.hpp"

namespace zenesis::models {
namespace {

using image::ImageF32;

/// Rescales so that the 99th percentile maps to 1 (robust against a few
/// extreme responses dominating the channel).
void robust_unit_scale(ImageF32& img) {
  auto px = img.pixels();
  if (px.empty()) return;
  std::vector<float> sorted(px.begin(), px.end());
  auto idx = static_cast<std::size_t>(0.99 * static_cast<double>(sorted.size() - 1));
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                   sorted.end());
  const float hi = sorted[idx];
  if (hi <= 0.0f) return;
  const float inv = 1.0f / hi;
  for (float& v : px) v = std::min(1.0f, v * inv);
}

/// Structure-tensor coherence: (λ1-λ2)/(λ1+λ2) of the smoothed gradient
/// outer product. 1 for perfectly oriented (needle) texture, 0 for
/// isotropic (blob/noise) texture.
ImageF32 orientation_coherence(const ImageF32& img, float sigma) {
  const std::int64_t w = img.width(), h = img.height();
  ImageF32 gx(w, h, 1), gy(w, h, 1);
  parallel::parallel_for(0, h, [&](std::int64_t y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const std::int64_t xm = std::max<std::int64_t>(0, x - 1);
      const std::int64_t xp = std::min<std::int64_t>(w - 1, x + 1);
      const std::int64_t ym = std::max<std::int64_t>(0, y - 1);
      const std::int64_t yp = std::min<std::int64_t>(h - 1, y + 1);
      gx.at(x, y) = 0.5f * (img.at(xp, y) - img.at(xm, y));
      gy.at(x, y) = 0.5f * (img.at(x, yp) - img.at(x, ym));
    }
  });
  ImageF32 jxx(w, h, 1), jxy(w, h, 1), jyy(w, h, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const float fx = gx.at(x, y), fy = gy.at(x, y);
      jxx.at(x, y) = fx * fx;
      jxy.at(x, y) = fx * fy;
      jyy.at(x, y) = fy * fy;
    }
  }
  jxx = cv::gaussian_blur(jxx, sigma);
  jxy = cv::gaussian_blur(jxy, sigma);
  jyy = cv::gaussian_blur(jyy, sigma);
  ImageF32 out(w, h, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const float a = jxx.at(x, y), b = jxy.at(x, y), c = jyy.at(x, y);
      const float tr = a + c;
      const float det = std::sqrt(std::max(0.0f, (a - c) * (a - c) + 4.0f * b * b));
      out.at(x, y) = tr > 1e-8f ? det / tr : 0.0f;
    }
  }
  return out;
}

/// Brightness percentile rank of every pixel (global CDF lookup).
ImageF32 brightness_rank(const ImageF32& img) {
  constexpr int kBins = 512;
  std::vector<std::int64_t> hist(kBins, 0);
  for (float v : img.pixels()) {
    const int b = std::clamp(static_cast<int>(v * kBins), 0, kBins - 1);
    ++hist[static_cast<std::size_t>(b)];
  }
  std::vector<float> cdf(kBins, 0.0f);
  std::int64_t acc = 0;
  const auto total = static_cast<double>(img.pixel_count());
  for (int b = 0; b < kBins; ++b) {
    acc += hist[static_cast<std::size_t>(b)];
    cdf[static_cast<std::size_t>(b)] =
        total > 0.0 ? static_cast<float>(static_cast<double>(acc) / total) : 0.0f;
  }
  ImageF32 out(img.width(), img.height(), 1);
  auto src = img.pixels();
  auto dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const int b = std::clamp(static_cast<int>(src[i] * kBins), 0, kBins - 1);
    dst[i] = cdf[static_cast<std::size_t>(b)];
  }
  return out;
}

}  // namespace

std::array<float, kFeatureChannels> FeatureMaps::at(std::int64_t x,
                                                    std::int64_t y) const {
  std::array<float, kFeatureChannels> f{};
  for (int c = 0; c < kFeatureChannels; ++c) {
    f[static_cast<std::size_t>(c)] = channels[static_cast<std::size_t>(c)].at(x, y);
  }
  return f;
}

FeatureMaps compute_features(const image::ImageF32& img, float smooth_sigma) {
  if (img.channels() != 1) {
    throw std::invalid_argument("compute_features: single channel required");
  }
  FeatureMaps maps;
  maps.width = img.width();
  maps.height = img.height();

  const ImageF32 smooth = cv::gaussian_blur(img, smooth_sigma);
  maps.channels[kIntensity] = smooth;

  ImageF32 texture = cv::local_variance(smooth, 4);
  robust_unit_scale(texture);
  maps.channels[kTexture] = std::move(texture);

  ImageF32 edge = cv::sobel_magnitude(smooth);
  robust_unit_scale(edge);
  maps.channels[kEdge] = std::move(edge);

  maps.channels[kCoherence] = orientation_coherence(smooth, 3.0f);
  maps.channels[kRank] = brightness_rank(smooth);
  return maps;
}

tensor::Tensor patch_features(const FeatureMaps& maps, int patch_size,
                              std::int64_t* grid_h, std::int64_t* grid_w) {
  if (patch_size <= 0) {
    throw std::invalid_argument("patch_features: patch_size must be > 0");
  }
  const std::int64_t gw = (maps.width + patch_size - 1) / patch_size;
  const std::int64_t gh = (maps.height + patch_size - 1) / patch_size;
  tensor::Tensor out({gh * gw, kFeatureChannels});
  parallel::parallel_for(0, gh, [&](std::int64_t py) {
    for (std::int64_t px = 0; px < gw; ++px) {
      const std::int64_t x0 = px * patch_size;
      const std::int64_t y0 = py * patch_size;
      const std::int64_t x1 = std::min<std::int64_t>(maps.width, x0 + patch_size);
      const std::int64_t y1 = std::min<std::int64_t>(maps.height, y0 + patch_size);
      const auto n = static_cast<float>((x1 - x0) * (y1 - y0));
      for (int c = 0; c < kFeatureChannels; ++c) {
        float acc = 0.0f;
        const auto& ch = maps.channels[static_cast<std::size_t>(c)];
        for (std::int64_t y = y0; y < y1; ++y) {
          for (std::int64_t x = x0; x < x1; ++x) acc += ch.at(x, y);
        }
        out.at(py * gw + px, c) = acc / n;
      }
    }
  });
  if (grid_h != nullptr) *grid_h = gh;
  if (grid_w != nullptr) *grid_w = gw;
  return out;
}

}  // namespace zenesis::models
