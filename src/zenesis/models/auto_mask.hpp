#pragma once
// SAM-only baseline: automatic mask generation without any grounding.
//
// A regular grid of point prompts is pushed through the SAM surrogate;
// near-duplicate masks are merged by IoU; the generator then ranks the
// distinct masks by model confidence. `best_mask` — the max-confidence
// pick — is precisely the "SAM-only" column of the paper's Tables 1–3 and
// exhibits its documented failure: with no text guidance the confidence
// rule prefers the large, homogeneous, stable region, which on crystalline
// FIB-SEM slices is the black background.

#include <vector>

#include "zenesis/models/sam.hpp"

namespace zenesis::models {

struct AutoMaskConfig {
  /// Points per side of the prompt grid (grid² prompts in total).
  int points_per_side = 8;
  /// Masks with IoU above this against an already-kept mask are merged.
  double dedup_iou = 0.85;
  /// Masks below this area fraction are discarded as click noise.
  double min_area_fraction = 0.002;
};

struct AutoMaskResult {
  /// Distinct masks sorted by descending confidence.
  std::vector<MaskPrediction> masks;

  /// The max-confidence mask (empty mask when none survived filtering).
  const MaskPrediction* best() const {
    return masks.empty() ? nullptr : &masks.front();
  }
};

class AutomaticMaskGenerator {
 public:
  explicit AutomaticMaskGenerator(const SamModel& sam,
                                  const AutoMaskConfig& cfg = {})
      : sam_(sam), cfg_(cfg) {}

  AutoMaskResult generate(const SamEncoded& enc) const;

  /// Convenience: encode + generate + return the best mask (or an empty
  /// mask of the image size).
  image::Mask segment_best(const image::ImageF32& img) const;

 private:
  const SamModel& sam_;
  AutoMaskConfig cfg_;
};

}  // namespace zenesis::models
