#pragma once
// Engineered per-pixel feature channels — the surrogate "pretraining".
//
// Real GroundingDINO/SAM owe their zero-shot power to features learned
// from web-scale data. Without AI-ready weights, we give the surrogate
// backbones a compact hand-constructed visual vocabulary instead: five
// physically meaningful channels (intensity, texture energy, edge
// strength, orientation coherence, brightness rank) that span the
// morphology space of FIB-SEM phases. Needle-like crystalline catalyst is
// separable by high coherence + brightness; amorphous particle phase by
// texture + brightness; ionomer background by mid intensity and low
// texture; the sample holder by near-zero intensity. Text concepts are
// expressed in this same 5-dimensional basis (text_encoder.hpp), which is
// exactly the "lightweight multi-modal adaptation" role the paper assigns
// to its shared embedding space.

#include <array>
#include <cstdint>
#include <vector>

#include "zenesis/image/image.hpp"
#include "zenesis/tensor/tensor.hpp"

namespace zenesis::models {

/// Number of engineered feature channels.
inline constexpr int kFeatureChannels = 5;

/// Channel indices (the basis text concepts are written in).
enum FeatureChannel : int {
  kIntensity = 0,   ///< smoothed luminance, [0,1]
  kTexture = 1,     ///< local variance (normalized), [0,1]
  kEdge = 2,        ///< Sobel magnitude (normalized), [0,1]
  kCoherence = 3,   ///< structure-tensor orientation coherence, [0,1]
  kRank = 4,        ///< global brightness percentile rank, [0,1]
};

/// Dense per-pixel feature maps for one AI-ready [0,1] image.
struct FeatureMaps {
  std::array<image::ImageF32, kFeatureChannels> channels;
  std::int64_t width = 0;
  std::int64_t height = 0;

  /// Feature vector at a pixel.
  std::array<float, kFeatureChannels> at(std::int64_t x, std::int64_t y) const;
};

/// Computes the five channels. `smooth_sigma` controls the denoising
/// Gaussian applied before differentiation (FIB-SEM is shot-noise heavy).
FeatureMaps compute_features(const image::ImageF32& img,
                             float smooth_sigma = 1.2f);

/// Averages feature maps over an h×w grid of square patches of
/// `patch_size` pixels → tensor [grid_h*grid_w, kFeatureChannels].
/// Trailing partial patches are averaged over their valid pixels.
tensor::Tensor patch_features(const FeatureMaps& maps, int patch_size,
                              std::int64_t* grid_h, std::int64_t* grid_w);

}  // namespace zenesis::models
