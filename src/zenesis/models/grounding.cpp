#include "zenesis/models/grounding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "zenesis/cv/components.hpp"
#include "zenesis/cv/morphology.hpp"
#include "zenesis/tensor/ops.hpp"

namespace zenesis::models {

GroundingDetector::GroundingDetector(const GroundingConfig& cfg)
    : cfg_(cfg), backbone_(cfg.backbone) {}

GroundingResult GroundingDetector::detect(const image::ImageF32& img,
                                          const std::string& prompt) const {
  return detect(compute_features(img), prompt);
}

GroundingResult GroundingDetector::detect(const FeatureMaps& maps,
                                          const std::string& prompt) const {
  return detect(maps, backbone_.encode(maps), prompt);
}

GroundingResult GroundingDetector::detect(const FeatureMaps& maps,
                                          const EncodedImage& enc,
                                          const std::string& prompt) const {
  // Text side: gate tokens by text_threshold, weight the survivors.
  const auto tokens = text_.parse(prompt);
  std::vector<TextToken> active;
  for (const auto& t : tokens) {
    if (t.weight >= cfg_.text_threshold) active.push_back(t);
  }
  if (active.empty()) {
    // Nothing grounded: an empty result of the right grid geometry.
    GroundingResult res;
    res.grid_h = enc.grid_h;
    res.grid_w = enc.grid_w;
    res.patch_size = enc.patch_size;
    res.relevance = image::ImageF32(enc.grid_w, enc.grid_h, 1);
    return res;
  }
  tensor::Tensor concepts(
      {static_cast<std::int64_t>(active.size()), kFeatureChannels});
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (int c = 0; c < kFeatureChannels; ++c) {
      concepts.at(static_cast<std::int64_t>(i), c) =
          active[i].concept_vec[static_cast<std::size_t>(c)] * active[i].weight;
    }
  }
  return detect_with_concepts(maps, enc, concepts);
}

GroundingResult GroundingDetector::detect_with_concepts(
    const FeatureMaps& maps, const tensor::Tensor& concepts) const {
  return detect_with_concepts(maps, backbone_.encode(maps), concepts);
}

GroundingResult GroundingDetector::detect_with_concepts(
    const FeatureMaps& maps, const EncodedImage& enc,
    const tensor::Tensor& concepts) const {
  if (concepts.rank() != 2 || concepts.dim(1) != kFeatureChannels ||
      concepts.dim(0) == 0) {
    throw std::invalid_argument(
        "detect_with_concepts: [T, kFeatureChannels] with T >= 1 expected");
  }
  GroundingResult res;
  res.grid_h = enc.grid_h;
  res.grid_w = enc.grid_w;
  res.patch_size = enc.patch_size;
  res.relevance = image::ImageF32(enc.grid_w, enc.grid_h, 1);
  for (std::int64_t i = 0; i < concepts.dim(0); ++i) {
    for (int c = 0; c < kFeatureChannels; ++c) {
      res.concept_direction[static_cast<std::size_t>(c)] += concepts.at(i, c);
    }
  }
  res.has_direction = true;

  // Cross-modal attention: queries = text, keys/values = patch tokens.
  const tensor::Tensor q = backbone_.project_text(concepts);
  tensor::Tensor scores = tensor::matmul_nt(q, enc.tokens);
  tensor::scale_inplace(
      scores, 1.0f / std::sqrt(static_cast<float>(backbone_.config().dim)));

  // Per-patch relevance: strongest token response (GroundingDINO keeps
  // the max token logit per query box; patches play that role here).
  // One columnwise-max reduction on the kernel backend.
  const tensor::Tensor best = tensor::colwise_max(scores);
  const std::int64_t n_patch = scores.dim(1);
  std::vector<float> rel(best.data(), best.data() + n_patch);
  // Normalize by the 95th-percentile magnitude (not the max): a single
  // extreme patch must not compress the rest of the map below the box
  // threshold. Values are then clamped to [-1, 1], a soft saturation
  // standing in for the sigmoid on GroundingDINO's logits.
  std::vector<float> mags(rel.size());
  for (std::size_t j = 0; j < rel.size(); ++j) mags[j] = std::abs(rel[j]);
  const auto p95 = static_cast<std::size_t>(0.95 * static_cast<double>(mags.size() - 1));
  std::nth_element(mags.begin(), mags.begin() + static_cast<std::ptrdiff_t>(p95),
                   mags.end());
  const float scale = mags[p95];
  if (scale < 1e-6f) return res;

  for (std::int64_t gy = 0; gy < enc.grid_h; ++gy) {
    for (std::int64_t gx = 0; gx < enc.grid_w; ++gx) {
      res.relevance.at(gx, gy) = std::clamp(
          rel[static_cast<std::size_t>(gy * enc.grid_w + gx)] / scale, -1.0f,
          1.0f);
    }
  }

  // High-relevance patches → connected regions → scored boxes. A 1-patch
  // morphological close merges clusters split by single cold patches
  // (scattered-phase targets such as particle agglomerates would otherwise
  // shatter into dozens of tiny boxes).
  image::Mask hot(enc.grid_w, enc.grid_h);
  for (std::int64_t gy = 0; gy < enc.grid_h; ++gy) {
    for (std::int64_t gx = 0; gx < enc.grid_w; ++gx) {
      hot.at(gx, gy) = res.relevance.at(gx, gy) > cfg_.box_threshold ? 1 : 0;
    }
  }
  hot = cv::close(hot, 2, cv::Element::kSquare);
  const cv::Labeling lab = cv::label_components(hot);
  for (const auto& comp : cv::component_stats(lab)) {
    if (comp.area < cfg_.min_patches) continue;
    double score_sum = 0.0;
    for (std::int64_t gy = comp.bounds.y; gy < comp.bounds.bottom(); ++gy) {
      for (std::int64_t gx = comp.bounds.x; gx < comp.bounds.right(); ++gx) {
        if (lab.labels.at(gx, gy) == comp.label) {
          score_sum += res.relevance.at(gx, gy);
        }
      }
    }
    const double confidence = score_sum / static_cast<double>(comp.area);

    image::Box box{comp.bounds.x * enc.patch_size, comp.bounds.y * enc.patch_size,
                   comp.bounds.w * enc.patch_size, comp.bounds.h * enc.patch_size};
    const auto pad_x = static_cast<std::int64_t>(
        std::lround(static_cast<double>(box.w) * cfg_.pad_fraction));
    const auto pad_y = static_cast<std::int64_t>(
        std::lround(static_cast<double>(box.h) * cfg_.pad_fraction));
    box = image::Box{box.x - pad_x, box.y - pad_y, box.w + 2 * pad_x,
                     box.h + 2 * pad_y}
              .clipped(maps.width, maps.height);
    if (box.empty()) continue;
    res.boxes.push_back({box, confidence});
  }
  std::sort(res.boxes.begin(), res.boxes.end(),
            [](const image::ScoredBox& a, const image::ScoredBox& b) {
              return a.score > b.score;
            });
  return res;
}

GroundingResult GroundingDetector::ground_box(const image::Box& box,
                                              const std::string& prompt) const {
  GroundingResult res;
  res.boxes.push_back({box, 1.0});
  for (const auto& t : text_.parse(prompt)) {
    if (t.weight < cfg_.text_threshold) continue;
    for (int c = 0; c < kFeatureChannels; ++c) {
      res.concept_direction[static_cast<std::size_t>(c)] +=
          t.concept_vec[static_cast<std::size_t>(c)] * t.weight;
    }
    res.has_direction = true;
  }
  return res;
}

}  // namespace zenesis::models
