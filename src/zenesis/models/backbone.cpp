#include "zenesis/models/backbone.hpp"

#include <stdexcept>

#include "zenesis/tensor/init.hpp"
#include "zenesis/tensor/ops.hpp"

namespace zenesis::models {

TransformerBlock::TransformerBlock(std::int64_t dim, int heads,
                                   std::uint64_t seed, std::uint64_t layer_id,
                                   float branch_scale)
    : dim_(dim),
      heads_(heads),
      branch_scale_(branch_scale),
      wq_(tensor::xavier_uniform(dim, dim, seed, layer_id * 16 + 0)),
      wk_(tensor::xavier_uniform(dim, dim, seed, layer_id * 16 + 1)),
      wv_(tensor::xavier_uniform(dim, dim, seed, layer_id * 16 + 2)),
      wo_(tensor::xavier_uniform(dim, dim, seed, layer_id * 16 + 3)),
      bq_(tensor::zeros(dim)),
      bk_(tensor::zeros(dim)),
      bv_(tensor::zeros(dim)),
      bo_(tensor::zeros(dim)),
      w1_(tensor::xavier_uniform(4 * dim, dim, seed, layer_id * 16 + 4)),
      w2_(tensor::xavier_uniform(dim, 4 * dim, seed, layer_id * 16 + 5)),
      b1_(tensor::zeros(4 * dim)),
      b2_(tensor::zeros(dim)),
      ln1_g_(tensor::ones(dim)),
      ln1_b_(tensor::zeros(dim)),
      ln2_g_(tensor::ones(dim)),
      ln2_b_(tensor::zeros(dim)) {
  if (dim % heads != 0) {
    throw std::invalid_argument("TransformerBlock: dim % heads != 0");
  }
}

tensor::Tensor TransformerBlock::project(
    const tensor::Tensor& x, const tensor::Tensor& w,
    const tensor::quant::QuantizedWeights& qw, const tensor::Tensor& b) const {
  if (tensor::quant::int8_fast_path()) {
    return tensor::linear_quantized(x, qw.get(w), b);
  }
  return tensor::linear(x, w, b);
}

void TransformerBlock::apply(tensor::Tensor& tokens) const {
  if (tokens.rank() != 2 || tokens.dim(1) != dim_) {
    throw std::invalid_argument("TransformerBlock::apply: bad token shape");
  }
  // Attention branch.
  tensor::Tensor normed = tokens;
  tensor::layernorm_rows(normed, ln1_g_, ln1_b_);
  tensor::Tensor q = project(normed, wq_, qwq_, bq_);
  tensor::Tensor k = project(normed, wk_, qwk_, bk_);
  tensor::Tensor v = project(normed, wv_, qwv_, bv_);
  tensor::Tensor attn = tensor::multihead_attention(q, k, v, heads_);
  tensor::Tensor out = project(attn, wo_, qwo_, bo_);
  tensor::scale_inplace(out, branch_scale_);
  tensor::add_inplace(tokens, out);

  // MLP branch.
  normed = tokens;
  tensor::layernorm_rows(normed, ln2_g_, ln2_b_);
  tensor::Tensor hidden = project(normed, w1_, qw1_, b1_);
  tensor::gelu_inplace(hidden);
  tensor::Tensor mlp = project(hidden, w2_, qw2_, b2_);
  tensor::scale_inplace(mlp, branch_scale_);
  tensor::add_inplace(tokens, mlp);
}

VisionBackbone::VisionBackbone(const BackboneConfig& cfg)
    : cfg_(cfg),
      proj_(tensor::xavier_uniform(cfg.dim, kFeatureChannels, cfg.seed, 1)) {
  // Scale the shared projection up so the feature geometry dominates the
  // positional term in attention logits.
  tensor::scale_inplace(proj_, 4.0f);
  blocks_.reserve(static_cast<std::size_t>(cfg.blocks));
  for (int b = 0; b < cfg.blocks; ++b) {
    blocks_.emplace_back(cfg.dim, cfg.heads, cfg.seed,
                         static_cast<std::uint64_t>(b + 2), cfg.branch_scale);
  }
}

EncodedImage VisionBackbone::encode(const FeatureMaps& maps) const {
  EncodedImage enc;
  enc.patch_size = cfg_.patch_size;
  enc.raw_features =
      patch_features(maps, cfg_.patch_size, &enc.grid_h, &enc.grid_w);
  enc.mean_feature = tensor::mean_rows(enc.raw_features);

  // Mean-center so signed text preferences act relative to the image.
  tensor::Tensor centered = enc.raw_features;
  tensor::subtract_row_inplace(centered, enc.mean_feature);

  enc.tokens = tensor::matmul_nt(centered, proj_);
  tensor::Tensor pos =
      tensor::sinusoidal_positions_2d(enc.grid_h, enc.grid_w, cfg_.dim);
  tensor::scale_inplace(pos, 0.05f);  // positions inform, features decide
  tensor::add_inplace(enc.tokens, pos);
  for (const auto& block : blocks_) block.apply(enc.tokens);
  return enc;
}

tensor::Tensor VisionBackbone::project_text(const tensor::Tensor& concepts) const {
  if (concepts.rank() != 2 || concepts.dim(1) != kFeatureChannels) {
    throw std::invalid_argument("project_text: [T, kFeatureChannels] expected");
  }
  return tensor::matmul_nt(concepts, proj_);
}

}  // namespace zenesis::models
