#pragma once
// Backbone feature cache — the surrogate of SAM's "embed once, prompt
// many" usage pattern, generalized across the whole model stack.
//
// Grounding-DINO + SAM pipelines are dominated by redundant image-encoder
// work: the Zenesis pipeline encodes every slice once for the grounding
// stage and once for the mask stage, the temporal heuristic re-segments
// corrected slices, hierarchical "Further Segment" re-runs the encoders on
// sub-ROIs, and multi-prompt Mode A encodes the same image once per
// prompt. All of those recomputations are memoized here.
//
// Keying: entries are keyed by (content hash of the AI-ready image,
// content hash of the backbone configuration). Because backbone weights
// are derived procedurally from their config, two backbones with equal
// configs produce bit-identical encodings — so the default pipeline, whose
// DINO and SAM backbones share a config, shares one entry per slice
// between both stages. Feature maps use a fixed smoothing sigma, which is
// folded into the image hash domain.
//
// Invalidation: the cache is LRU-bounded (`capacity` entries); there is no
// time-based invalidation because encodings are pure functions of the key.
// `clear()` drops all entries and keeps the counters.
//
// Determinism: a hit returns the exact object a miss would have computed,
// so results are byte-identical with the cache on, off, or shared across
// any number of threads. All methods are thread-safe; concurrent misses
// of the same key may compute the (identical) value twice, and the last
// insert wins.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "zenesis/models/sam.hpp"

namespace zenesis::models {

struct FeatureCacheConfig {
  /// Off switch: when false, every lookup computes a fresh encoding and
  /// the map and counters are never touched.
  bool enabled = true;
  /// Maximum resident entries; least-recently-used entries are evicted.
  std::size_t capacity = 64;
};

struct FeatureCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Content hash (FNV-1a) of an image's pixels and geometry.
std::uint64_t hash_image(const image::ImageF32& img);

/// Content hash of every field that determines a backbone's weights.
std::uint64_t hash_backbone_config(const BackboneConfig& cfg);

class FeatureCache {
 public:
  explicit FeatureCache(const FeatureCacheConfig& cfg = {});

  /// Feature maps + encoder tokens for `img` under `backbone`'s
  /// configuration; computed and inserted on miss, shared on hit.
  std::shared_ptr<const SamEncoded> encode(const image::ImageF32& img,
                                           const VisionBackbone& backbone);

  FeatureCacheStats stats() const;
  void clear();
  const FeatureCacheConfig& config() const noexcept { return cfg_; }

 private:
  struct Key {
    std::uint64_t image_hash = 0;
    std::uint64_t config_hash = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return static_cast<std::size_t>(k.image_hash ^ (k.config_hash * 0x9e3779b97f4a7c15ull));
    }
  };
  struct Entry {
    std::shared_ptr<const SamEncoded> value;
    std::list<Key>::iterator lru_pos;
  };

  FeatureCacheConfig cfg_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> map_;
  std::list<Key> lru_;  ///< front = most recently used
  FeatureCacheStats stats_;
};

}  // namespace zenesis::models
