#pragma once
// Compatibility shim: the feature cache moved to zenesis::cache (see
// zenesis/cache/feature_cache.hpp for the sharded, byte-budgeted,
// disk-tiered implementation). Existing call sites keep the old
// models::FeatureCache spelling through these aliases; new code should
// include the cache header directly.

#include "zenesis/cache/feature_cache.hpp"

namespace zenesis::models {

using FeatureCacheConfig = cache::FeatureCacheConfig;
using FeatureCacheStats = cache::FeatureCacheStats;
using FeatureCache = cache::FeatureCache;
using cache::hash_backbone_config;
using cache::hash_image;

}  // namespace zenesis::models
