#include "zenesis/models/auto_mask.hpp"

#include <algorithm>

#include "zenesis/image/roi.hpp"

namespace zenesis::models {

AutoMaskResult AutomaticMaskGenerator::generate(const SamEncoded& enc) const {
  AutoMaskResult res;
  const std::int64_t w = enc.maps.width, h = enc.maps.height;
  if (w == 0 || h == 0 || cfg_.points_per_side <= 0) return res;

  std::vector<MaskPrediction> candidates;
  for (int gy = 0; gy < cfg_.points_per_side; ++gy) {
    for (int gx = 0; gx < cfg_.points_per_side; ++gx) {
      const image::Point p{
          (2 * gx + 1) * w / (2 * cfg_.points_per_side),
          (2 * gy + 1) * h / (2 * cfg_.points_per_side)};
      MaskPrediction m = sam_.predict_point(enc, p);
      if (m.area_fraction < cfg_.min_area_fraction) continue;
      candidates.push_back(std::move(m));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const MaskPrediction& a, const MaskPrediction& b) {
              return a.confidence > b.confidence;
            });
  // Greedy IoU dedup, keeping the higher-confidence representative.
  for (auto& cand : candidates) {
    bool duplicate = false;
    for (const auto& kept : res.masks) {
      if (image::mask_iou(cand.mask, kept.mask) >= cfg_.dedup_iou) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) res.masks.push_back(std::move(cand));
  }
  return res;
}

image::Mask AutomaticMaskGenerator::segment_best(const image::ImageF32& img) const {
  const SamEncoded enc = sam_.encode(img);
  const AutoMaskResult res = generate(enc);
  if (const MaskPrediction* best = res.best()) return best->mask;
  return image::Mask(img.width(), img.height());
}

}  // namespace zenesis::models
