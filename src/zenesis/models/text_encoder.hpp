#pragma once
// Text side of the shared embedding space.
//
// Prompts are tokenized into lowercase words; each known scientific-domain
// word carries a concept vector written directly in the engineered feature
// basis (features.hpp), plus a polarity weight. Unknown words receive a
// small deterministic hash embedding so arbitrary prompts remain valid
// (they simply contribute little evidence). Both modalities are later
// projected by the *same* matrix inside the backbone, which is what aligns
// them — the surrogate equivalent of GroundingDINO's grounded pretraining.

#include <optional>
#include <string>
#include <vector>

#include "zenesis/models/features.hpp"
#include "zenesis/tensor/tensor.hpp"

namespace zenesis::models {

/// One parsed token with its feature-basis concept vector.
struct TextToken {
  std::string word;
  std::array<float, kFeatureChannels> concept_vec{};
  float weight = 0.0f;  ///< evidence weight; 0 for stop/unknown words
  bool known = false;
};

/// Splits on non-alphanumeric characters and lowercases.
std::vector<std::string> tokenize(const std::string& prompt);

/// Domain vocabulary lookup; std::nullopt for unknown words.
std::optional<TextToken> lookup_concept(const std::string& word);

/// Full text encoder.
class TextEncoder {
 public:
  /// `seed` controls the hash embeddings of unknown words.
  explicit TextEncoder(std::uint64_t seed = 7) : seed_(seed) {}

  /// Parses a prompt into weighted tokens (stop words dropped).
  std::vector<TextToken> parse(const std::string& prompt) const;

  /// Token concept matrix [T, kFeatureChannels] for the prompt's
  /// non-stop-word tokens. Empty prompts yield a zero-row tensor.
  tensor::Tensor encode(const std::string& prompt) const;

  /// Sum of token weights — the prompt's total grounding evidence. The
  /// text_threshold in the detector gates on per-token weight.
  float total_weight(const std::string& prompt) const;

 private:
  std::uint64_t seed_;
};

}  // namespace zenesis::models
