#pragma once
// Optional fine-tuning module (the paper's future-work item 3): adapt the
// grounding to a specialized dataset from a single annotated example.
//
// Instead of re-training network weights, the module learns a *concept
// direction* in the engineered feature basis — the contrast between the
// annotated foreground's and background's mean features — and the
// detector runs its usual cross-modal attention with that learned vector
// in place of (or blended with) the prompt's vocabulary-derived one.
// This is the surrogate analogue of text-embedding tuning / prompt
// learning on top of a frozen backbone.

#include <array>
#include <string>

#include "zenesis/models/features.hpp"
#include "zenesis/models/grounding.hpp"

namespace zenesis::models {

/// A concept learned from annotated data.
struct LearnedConcept {
  std::array<float, kFeatureChannels> direction{};
  /// Separation quality: |mean_fg − mean_bg| in feature space, normalized
  /// by the pooled per-channel spread. < ~0.5 means the annotation is not
  /// separable in this basis and the concept is unreliable.
  double separability = 0.0;
  std::int64_t foreground_pixels = 0;
};

/// Learns a concept from one annotated image: direction = per-channel
/// (mean over mask − mean over complement), scaled to the magnitude range
/// of vocabulary concepts. Throws if the mask is empty or full.
LearnedConcept learn_concept(const FeatureMaps& maps, const image::Mask& mask);

/// Averages concepts learned from several annotated slices (each weighted
/// by its foreground size).
LearnedConcept merge_concepts(const std::vector<LearnedConcept>& concepts);

/// Blends a learned concept into a prompt-derived grounding result:
/// direction ← (1−alpha)·prompt + alpha·learned. alpha=1 replaces the
/// vocabulary entirely (pure example-driven grounding).
GroundingResult apply_concept(const GroundingDetector& detector,
                              const FeatureMaps& maps,
                              const LearnedConcept& concept_in,
                              const std::string& prompt = "",
                              float alpha = 1.0f);

}  // namespace zenesis::models
