#include "zenesis/models/feature_cache.hpp"

#include "zenesis/obs/trace.hpp"

namespace zenesis::models {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

template <typename T>
std::uint64_t fnv1a_value(std::uint64_t h, const T& v) {
  return fnv1a_bytes(h, &v, sizeof(v));
}

}  // namespace

std::uint64_t hash_image(const image::ImageF32& img) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(h, img.width());
  h = fnv1a_value(h, img.height());
  h = fnv1a_value(h, img.channels());
  const auto px = img.pixels();
  h = fnv1a_bytes(h, px.data(), px.size() * sizeof(float));
  return h;
}

std::uint64_t hash_backbone_config(const BackboneConfig& cfg) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(h, cfg.patch_size);
  h = fnv1a_value(h, cfg.dim);
  h = fnv1a_value(h, cfg.blocks);
  h = fnv1a_value(h, cfg.heads);
  h = fnv1a_value(h, cfg.branch_scale);
  h = fnv1a_value(h, cfg.seed);
  return h;
}

FeatureCache::FeatureCache(const FeatureCacheConfig& cfg) : cfg_(cfg) {}

std::shared_ptr<const SamEncoded> FeatureCache::encode(
    const image::ImageF32& img, const VisionBackbone& backbone) {
  const auto compute = [&] {
    // The expensive path: feature maps + backbone encode. Span arg 0/1
    // distinguishes a cache-bypassing encode (cache off) from a miss.
    obs::Span span("sam.encode", cfg_.enabled ? 1u : 0u);
    auto fresh = std::make_shared<SamEncoded>();
    fresh->maps = compute_features(img);
    fresh->enc = backbone.encode(fresh->maps);
    return std::shared_ptr<const SamEncoded>(std::move(fresh));
  };
  if (!cfg_.enabled || cfg_.capacity == 0) return compute();

  const Key key{hash_image(img), hash_backbone_config(backbone.config())};
  {
    std::lock_guard lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.value;
    }
    ++stats_.misses;
  }
  // Compute outside the lock: concurrent misses of the same key duplicate
  // work but never block each other, and both produce identical values.
  std::shared_ptr<const SamEncoded> value = compute();
  {
    std::lock_guard lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      it->second.value = value;
      return value;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{value, lru_.begin()});
    while (map_.size() > cfg_.capacity) {
      map_.erase(lru_.back());
      lru_.pop_back();
      ++stats_.evictions;
    }
  }
  return value;
}

FeatureCacheStats FeatureCache::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

void FeatureCache::clear() {
  std::lock_guard lock(mutex_);
  map_.clear();
  lru_.clear();
}

}  // namespace zenesis::models
