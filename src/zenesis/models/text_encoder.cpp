#include "zenesis/models/text_encoder.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "zenesis/parallel/rng.hpp"

namespace zenesis::models {
namespace {

// Concept vectors are signed preferences in the feature basis
// [intensity, texture, edge, coherence, rank], applied to mean-centered
// patch features. Positive = "more of this channel than the image
// average". The table is the surrogate's grounded vocabulary; it covers
// the materials-imaging terms the paper's workflows use, plus generic
// photometric words so free-form prompts degrade gracefully.
struct ConceptEntry {
  std::array<float, kFeatureChannels> vec;
  float weight;
};

const std::unordered_map<std::string, ConceptEntry>& vocabulary() {
  static const std::unordered_map<std::string, ConceptEntry> kVocab = {
      // Photometric
      {"bright", {{1.5f, 0.0f, 0.0f, 0.0f, 1.2f}, 1.0f}},
      {"white", {{1.5f, 0.0f, 0.0f, 0.0f, 1.2f}, 0.8f}},
      {"dark", {{-1.5f, 0.0f, 0.0f, 0.0f, -1.2f}, 1.0f}},
      {"black", {{-1.6f, -0.4f, -0.2f, 0.0f, -1.3f}, 0.9f}},
      {"gray", {{0.0f, 0.0f, 0.0f, 0.0f, 0.0f}, 0.2f}},
      // Morphology
      {"needle", {{0.4f, 0.5f, 0.6f, 1.8f, 0.5f}, 1.2f}},
      {"needles", {{0.4f, 0.5f, 0.6f, 1.8f, 0.5f}, 1.2f}},
      {"elongated", {{0.2f, 0.3f, 0.4f, 1.6f, 0.2f}, 1.0f}},
      {"fiber", {{0.3f, 0.4f, 0.5f, 1.7f, 0.3f}, 1.0f}},
      {"crystalline", {{0.5f, 0.6f, 0.7f, 1.6f, 0.6f}, 1.2f}},
      {"crystal", {{0.5f, 0.6f, 0.7f, 1.6f, 0.6f}, 1.1f}},
      {"amorphous", {{0.6f, 1.1f, 0.2f, -0.7f, 0.8f}, 1.2f}},
      {"blob", {{0.5f, 0.9f, 0.1f, -0.8f, 0.6f}, 0.9f}},
      {"particle", {{0.7f, 1.0f, 0.3f, -0.4f, 0.9f}, 1.1f}},
      {"particles", {{0.7f, 1.0f, 0.3f, -0.4f, 0.9f}, 1.1f}},
      {"grain", {{0.6f, 0.8f, 0.4f, 0.2f, 0.7f}, 0.8f}},
      {"textured", {{0.1f, 1.4f, 0.5f, 0.0f, 0.2f}, 0.8f}},
      {"smooth", {{0.0f, -1.4f, -0.8f, -0.3f, 0.0f}, 0.8f}},
      // Materials-domain
      {"catalyst", {{0.9f, 0.7f, 0.4f, 0.3f, 1.0f}, 1.3f}},
      {"iridium", {{1.0f, 0.6f, 0.3f, 0.2f, 1.1f}, 1.0f}},
      {"oxide", {{0.6f, 0.4f, 0.2f, 0.1f, 0.6f}, 0.6f}},
      {"membrane", {{-0.3f, -0.6f, -0.3f, -0.4f, -0.1f}, 0.9f}},
      {"ionomer", {{-0.3f, -0.7f, -0.4f, -0.4f, -0.1f}, 0.9f}},
      {"nafion", {{-0.3f, -0.7f, -0.4f, -0.4f, -0.1f}, 0.8f}},
      {"film", {{-0.2f, -0.5f, -0.2f, -0.2f, 0.0f}, 0.5f}},
      {"pore", {{-1.3f, -0.2f, 0.1f, 0.0f, -1.2f}, 0.9f}},
      {"pores", {{-1.3f, -0.2f, 0.1f, 0.0f, -1.2f}, 0.9f}},
      {"void", {{-1.4f, -0.3f, 0.0f, 0.0f, -1.3f}, 0.9f}},
      {"background", {{-1.1f, -0.9f, -0.5f, -0.3f, -1.0f}, 1.0f}},
      {"substrate", {{-0.8f, -0.6f, -0.3f, -0.2f, -0.7f}, 0.7f}},
      {"phase", {{0.3f, 0.3f, 0.1f, 0.0f, 0.4f}, 0.4f}},
      {"edge", {{0.0f, 0.3f, 1.6f, 0.4f, 0.0f}, 0.8f}},
      {"boundary", {{0.0f, 0.3f, 1.5f, 0.3f, 0.0f}, 0.7f}},
      {"loaded", {{0.4f, 0.4f, 0.2f, 0.1f, 0.5f}, 0.4f}},
      {"dense", {{0.6f, 0.5f, 0.2f, 0.0f, 0.7f}, 0.5f}},
  };
  return kVocab;
}

const std::unordered_set<std::string>& stop_words() {
  static const std::unordered_set<std::string> kStop = {
      "a", "an", "the", "of", "in", "on", "with", "and", "or",
      "to", "for", "is", "are", "all", "any", "region", "regions",
      "area", "areas", "segment", "like"};
  return kStop;
}

}  // namespace

std::vector<std::string> tokenize(const std::string& prompt) {
  std::vector<std::string> words;
  std::string cur;
  for (char c : prompt) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!cur.empty()) {
      words.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) words.push_back(std::move(cur));
  return words;
}

std::optional<TextToken> lookup_concept(const std::string& word) {
  const auto& vocab = vocabulary();
  const auto it = vocab.find(word);
  if (it == vocab.end()) return std::nullopt;
  TextToken t;
  t.word = word;
  t.concept_vec = it->second.vec;
  t.weight = it->second.weight;
  t.known = true;
  return t;
}

std::vector<TextToken> TextEncoder::parse(const std::string& prompt) const {
  std::vector<TextToken> tokens;
  for (const auto& word : tokenize(prompt)) {
    if (stop_words().contains(word)) continue;
    if (auto known = lookup_concept(word)) {
      tokens.push_back(std::move(*known));
      continue;
    }
    // Unknown word: deterministic low-magnitude hash embedding. It keeps
    // the pipeline total (prompts never fail) while contributing almost no
    // localization evidence.
    TextToken t;
    t.word = word;
    std::uint64_t h = seed_;
    for (char c : word) h = h * 1099511628211ULL + static_cast<std::uint8_t>(c);
    parallel::Rng rng(h);
    for (auto& v : t.concept_vec) {
      v = static_cast<float>(rng.uniform(-0.15, 0.15));
    }
    t.weight = 0.1f;
    t.known = false;
    tokens.push_back(std::move(t));
  }
  return tokens;
}

tensor::Tensor TextEncoder::encode(const std::string& prompt) const {
  const auto tokens = parse(prompt);
  tensor::Tensor out({static_cast<std::int64_t>(tokens.size()), kFeatureChannels});
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    for (int c = 0; c < kFeatureChannels; ++c) {
      out.at(static_cast<std::int64_t>(i), c) =
          tokens[i].concept_vec[static_cast<std::size_t>(c)] * tokens[i].weight;
    }
  }
  return out;
}

float TextEncoder::total_weight(const std::string& prompt) const {
  float w = 0.0f;
  for (const auto& t : parse(prompt)) w += t.weight;
  return w;
}

}  // namespace zenesis::models
