#pragma once
// Surrogate Segment Anything Model.
//
// Mirrors SAM's decomposition: an image encoder (shared VisionBackbone),
// a prompt encoder (boxes and points → embedding-space tokens), and a mask
// decoder that runs two-way attention between prompt tokens and image
// tokens to produce coarse mask logits, followed by a pixel-level
// refinement stage:
//   * box prompts — SAM's "the object is inside the box, the box rim
//     samples background" prior, expressed as multimask output: one
//     candidate per object polarity (brighter / darker than local
//     context). Each candidate thresholds the contrast between intensity
//     and a windowed *median* context — the surrogate of deep features'
//     illumination invariance, robust to shading, holder-edge halos and
//     global multi-modality — at an Otsu cut over the box's contrast
//     residue. Candidates carry a rim-overlap penalty (an object should
//     not coincide with the prompt rim); the Zenesis pipeline selects
//     among candidates by text alignment, the plain model by internal
//     confidence.
//   * point prompts — tolerance-based region growing from the seed in the
//     smoothed-intensity field (flood within the locally homogeneous
//     phase), the behaviour that makes *unguided* SAM latch onto large
//     homogeneous regions (the paper's documented failure mode).
// Every mask carries a confidence = stability × homogeneity × size prior,
// reproducing the max-confidence selection rule whose failure on
// crystalline FIB-SEM motivates Zenesis.

#include <cstdint>
#include <string>

#include "zenesis/image/geometry.hpp"
#include "zenesis/image/image.hpp"
#include "zenesis/models/backbone.hpp"

namespace zenesis::models {

struct SamConfig {
  BackboneConfig backbone;
  /// Tolerance multiplier (in noise sigmas) for point-prompt growth.
  float grow_tolerance = 2.2f;
  /// Hard cap on the point-growth step tolerance (intensity units).
  float grow_tolerance_cap = 0.07f;
  /// Floor on the local-contrast cut for box prompts: keeps the decoder
  /// from segmenting sensor noise when the box holds no real object.
  float min_contrast_cut = 0.025f;
  /// Relative tolerance perturbation used for the stability score.
  float stability_delta = 0.35f;
  /// Morphological cleanup radius.
  int morph_radius = 1;
  /// Components below this pixel area are removed from box masks.
  std::int64_t min_component_area = 16;
  /// Weight of the coarse attention-logit veto (0 disables).
  float coarse_veto_weight = 1.0f;
};

/// Encoder output kept alive across multiple prompt predictions (SAM's
/// embed-once / prompt-many usage pattern).
struct SamEncoded {
  FeatureMaps maps;
  EncodedImage enc;
};

struct MaskPrediction {
  image::Mask mask;
  double confidence = 0.0;   ///< stability × homogeneity × size × rim prior
  double stability = 0.0;    ///< IoU of masks at perturbed tolerance
  double homogeneity = 0.0;  ///< 1 / (1 + interior stddev / noise floor)
  double area_fraction = 0.0;
  double rim_overlap = 0.0;  ///< fraction of the prompt-box rim covered
  int polarity = 0;          ///< +1 brighter-than-context, -1 darker (box prompts)
};

class SamModel {
 public:
  explicit SamModel(const SamConfig& cfg = {});

  /// Runs the image encoder once; prompts reuse the result.
  SamEncoded encode(const image::ImageF32& img) const;

  /// Box prompt → candidate masks, one per object polarity (brighter /
  /// darker than the box's local context), mirroring SAM's multimask
  /// output. Callers with grounding context (the Zenesis pipeline) select
  /// by text relevance; `predict_box` selects by internal confidence.
  std::vector<MaskPrediction> predict_box_candidates(const SamEncoded& enc,
                                                     const image::Box& box) const;

  /// Box prompt → single mask (max internal confidence among candidates).
  MaskPrediction predict_box(const SamEncoded& enc, const image::Box& box) const;

  /// Point prompt → mask (SAM-only automatic path).
  MaskPrediction predict_point(const SamEncoded& enc, image::Point p) const;

  const SamConfig& config() const noexcept { return cfg_; }
  const VisionBackbone& backbone() const noexcept { return backbone_; }

 private:
  /// Two-way attention decoder: prompt tokens attend to image tokens and
  /// produce a per-patch coarse logit map (similarity to the attended
  /// object query), upsampled to pixel resolution.
  image::ImageF32 decode_coarse(const SamEncoded& enc,
                                const image::Box& box) const;

  MaskPrediction score_mask(const SamEncoded& enc, image::Mask mask,
                            image::Mask low, image::Mask high) const;

  SamConfig cfg_;
  VisionBackbone backbone_;
  tensor::Tensor object_token_;  ///< learned query seed [1, dim]
};

}  // namespace zenesis::models
