#pragma once
// Surrogate GroundingDINO: text-conditioned bounding-box proposal.
//
// Pipeline (mirrors the paper's Sec. "Theoretical Framework"): the prompt
// is encoded into concept tokens, both modalities are projected into the
// shared embedding space, cross-modal attention scores text queries
// against patch keys (softmax(QKᵀ/√d)V), and contiguous high-relevance
// patch regions become scored boxes, gated by box and text thresholds.

#include <string>
#include <vector>

#include "zenesis/image/geometry.hpp"
#include "zenesis/image/image.hpp"
#include "zenesis/models/backbone.hpp"
#include "zenesis/models/text_encoder.hpp"

namespace zenesis::models {

struct GroundingConfig {
  BackboneConfig backbone;
  /// Patch joins a detection when its normalized relevance exceeds this
  /// (same role as GroundingDINO's box_threshold).
  float box_threshold = 0.25f;
  /// Tokens with evidence weight below this are ignored (text_threshold).
  float text_threshold = 0.25f;
  /// Detections smaller than this many patches are dropped.
  int min_patches = 2;
  /// Final boxes are padded by this fraction of their size.
  float pad_fraction = 0.08f;
};

struct GroundingResult {
  /// Detections sorted by descending confidence, in pixel coordinates.
  std::vector<image::ScoredBox> boxes;
  /// Normalized per-patch relevance in [-1, 1] (grid_w × grid_h raster).
  image::ImageF32 relevance;
  std::int64_t grid_h = 0;
  std::int64_t grid_w = 0;
  int patch_size = 0;
  /// Weighted sum of the prompt's concept vectors in the engineered
  /// feature basis — lets downstream stages score *pixels* against the
  /// text (the Grounded-SAM pattern of ranking SAM's mask proposals with
  /// the grounding signal). Zero when nothing was grounded.
  std::array<float, kFeatureChannels> concept_direction{};
  bool has_direction = false;

  /// Highest-confidence box, or an empty box when nothing was grounded.
  image::ScoredBox best() const {
    return boxes.empty() ? image::ScoredBox{} : boxes.front();
  }
};

class GroundingDetector {
 public:
  explicit GroundingDetector(const GroundingConfig& cfg = {});

  /// Full run on an AI-ready [0,1] image.
  GroundingResult detect(const image::ImageF32& img,
                         const std::string& prompt) const;

  /// Run on precomputed features (lets the pipeline share feature maps
  /// between DINO and SAM, as the real system shares nothing but this
  /// surrogate can).
  GroundingResult detect(const FeatureMaps& maps,
                         const std::string& prompt) const;

  /// Run on a precomputed encoding (feature maps + patch tokens). `enc`
  /// must have been produced by a backbone with this detector's
  /// configuration — the feature-cache path, which skips the encoder
  /// entirely.
  GroundingResult detect(const FeatureMaps& maps, const EncodedImage& enc,
                         const std::string& prompt) const;

  /// Runs the detector with explicit concept rows [T, kFeatureChannels]
  /// instead of parsing a prompt (the fine-tuning module's entry point;
  /// also useful for programmatic concept engineering). Each row is a
  /// pre-weighted concept vector.
  GroundingResult detect_with_concepts(const FeatureMaps& maps,
                                       const tensor::Tensor& concepts) const;

  /// As above on a precomputed encoding (no encoder run).
  GroundingResult detect_with_concepts(const FeatureMaps& maps,
                                       const EncodedImage& enc,
                                       const tensor::Tensor& concepts) const;

  /// Wraps an externally supplied box (user interaction, temporal
  /// refinement) in a GroundingResult that still carries the prompt's
  /// concept direction, so downstream mask selection stays text-guided.
  GroundingResult ground_box(const image::Box& box,
                             const std::string& prompt) const;

  const GroundingConfig& config() const noexcept { return cfg_; }
  const VisionBackbone& backbone() const noexcept { return backbone_; }

 private:
  GroundingConfig cfg_;
  VisionBackbone backbone_;
  TextEncoder text_;
};

}  // namespace zenesis::models
