#include "zenesis/models/finetune.hpp"

#include <cmath>
#include <stdexcept>

#include "zenesis/tensor/tensor.hpp"

namespace zenesis::models {

LearnedConcept learn_concept(const FeatureMaps& maps, const image::Mask& mask) {
  if (mask.width() != maps.width || mask.height() != maps.height) {
    throw std::invalid_argument("learn_concept: mask/feature size mismatch");
  }
  std::array<double, kFeatureChannels> fg_sum{}, bg_sum{}, fg_sum2{}, bg_sum2{};
  std::int64_t n_fg = 0, n_bg = 0;
  for (std::int64_t y = 0; y < maps.height; ++y) {
    for (std::int64_t x = 0; x < maps.width; ++x) {
      const bool fg = mask.at(x, y) != 0;
      (fg ? n_fg : n_bg)++;
      for (int c = 0; c < kFeatureChannels; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const double v = maps.channels[ci].at(x, y);
        (fg ? fg_sum : bg_sum)[ci] += v;
        (fg ? fg_sum2 : bg_sum2)[ci] += v * v;
      }
    }
  }
  if (n_fg == 0 || n_bg == 0) {
    throw std::invalid_argument("learn_concept: annotation must contain both classes");
  }

  LearnedConcept out;
  out.foreground_pixels = n_fg;
  double norm2 = 0.0, sep2 = 0.0;
  std::array<double, kFeatureChannels> diff{};
  for (int c = 0; c < kFeatureChannels; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    const double mf = fg_sum[ci] / static_cast<double>(n_fg);
    const double mb = bg_sum[ci] / static_cast<double>(n_bg);
    const double vf = std::max(0.0, fg_sum2[ci] / static_cast<double>(n_fg) - mf * mf);
    const double vb = std::max(0.0, bg_sum2[ci] / static_cast<double>(n_bg) - mb * mb);
    diff[ci] = mf - mb;
    norm2 += diff[ci] * diff[ci];
    const double pooled = std::sqrt(0.5 * (vf + vb)) + 1e-6;
    sep2 += (diff[ci] / pooled) * (diff[ci] / pooled);
  }
  out.separability = std::sqrt(sep2);
  // Scale to the magnitude range of vocabulary concepts (~O(1) entries)
  // so learned and prompt-derived directions are interchangeable.
  const double norm = std::sqrt(norm2);
  constexpr double kTargetNorm = 3.0;
  if (norm > 1e-9) {
    for (int c = 0; c < kFeatureChannels; ++c) {
      out.direction[static_cast<std::size_t>(c)] =
          static_cast<float>(diff[static_cast<std::size_t>(c)] / norm * kTargetNorm);
    }
  }
  return out;
}

LearnedConcept merge_concepts(const std::vector<LearnedConcept>& concepts) {
  if (concepts.empty()) {
    throw std::invalid_argument("merge_concepts: empty input");
  }
  LearnedConcept out;
  double total = 0.0;
  for (const auto& c : concepts) {
    const auto w = static_cast<double>(c.foreground_pixels);
    total += w;
    out.foreground_pixels += c.foreground_pixels;
    out.separability += w * c.separability;
    for (int k = 0; k < kFeatureChannels; ++k) {
      const auto ki = static_cast<std::size_t>(k);
      out.direction[ki] += static_cast<float>(w) * c.direction[ki];
    }
  }
  if (total > 0.0) {
    out.separability /= total;
    for (auto& v : out.direction) v = static_cast<float>(v / total);
  }
  return out;
}

GroundingResult apply_concept(const GroundingDetector& detector,
                              const FeatureMaps& maps,
                              const LearnedConcept& concept_in,
                              const std::string& prompt, float alpha) {
  // Blend learned and prompt directions, then run the standard detector
  // path with the blended vector as a single concept token.
  std::array<float, kFeatureChannels> prompt_dir{};
  if (!prompt.empty()) {
    const GroundingResult g = detector.ground_box({}, prompt);
    if (g.has_direction) prompt_dir = g.concept_direction;
  }
  tensor::Tensor concepts({1, kFeatureChannels});
  for (int c = 0; c < kFeatureChannels; ++c) {
    const auto ci = static_cast<std::size_t>(c);
    concepts.at(0, c) =
        (1.0f - alpha) * prompt_dir[ci] + alpha * concept_in.direction[ci];
  }
  return detector.detect_with_concepts(maps, concepts);
}

}  // namespace zenesis::models
