#pragma once
// Surrogate vision backbone (Swin-T stand-in for GroundingDINO, ViT
// stand-in for SAM's encoder).
//
// Patch features (engineered basis, features.hpp) are projected into a
// d-dimensional embedding space by a fixed near-orthogonal matrix, get 2-D
// sinusoidal positions, and pass through pre-norm transformer blocks.
// Because the projection is shared with the text side and the blocks are
// residual-dominated (attention/MLP branches initialized at small scale),
// cross-modal dot products in embedding space track the engineered-basis
// similarity — a Johnson-Lindenstrauss argument standing in for grounded
// pretraining, while the computational path (QKᵀ/√d attention, LayerNorm,
// GELU MLP) is the genuine transformer pipeline.

#include <cstdint>
#include <vector>

#include "zenesis/models/features.hpp"
#include "zenesis/tensor/quant.hpp"
#include "zenesis/tensor/tensor.hpp"

namespace zenesis::models {

/// One pre-norm transformer block: x += MHA(LN(x)); x += MLP(LN(x)).
class TransformerBlock {
 public:
  /// `branch_scale` scales the residual branches; small values keep the
  /// block near-identity, preserving cross-modal alignment.
  TransformerBlock(std::int64_t dim, int heads, std::uint64_t seed,
                   std::uint64_t layer_id, float branch_scale = 0.1f);

  /// Applies the block to a token sequence [L, dim] in place.
  void apply(tensor::Tensor& tokens) const;

  std::int64_t dim() const noexcept { return dim_; }
  int heads() const noexcept { return heads_; }

 private:
  /// linear() or, on the int8 fast path, linear_quantized() against the
  /// weight's memoized panel.
  tensor::Tensor project(const tensor::Tensor& x, const tensor::Tensor& w,
                         const tensor::quant::QuantizedWeights& qw,
                         const tensor::Tensor& b) const;

  std::int64_t dim_;
  int heads_;
  float branch_scale_;
  tensor::Tensor wq_, wk_, wv_, wo_;  // [dim, dim]
  tensor::Tensor bq_, bk_, bv_, bo_;  // [dim]
  tensor::Tensor w1_, w2_;            // MLP [4*dim, dim], [dim, 4*dim]
  tensor::Tensor b1_, b2_;
  tensor::Tensor ln1_g_, ln1_b_, ln2_g_, ln2_b_;
  // Int8 panels for the six linears, quantized once on first use under
  // int8 precision (quant.hpp). Unused (never materialized) under fp32.
  tensor::quant::QuantizedWeights qwq_, qwk_, qwv_, qwo_, qw1_, qw2_;
};

/// Backbone configuration.
struct BackboneConfig {
  int patch_size = 8;       ///< pixels per patch side
  std::int64_t dim = 64;    ///< embedding width
  int blocks = 2;           ///< transformer depth
  int heads = 4;
  float branch_scale = 0.1f;
  std::uint64_t seed = 20250701;  ///< procedural-weight seed
};

/// Encoded image: token embeddings plus the raw engineered features they
/// were built from (the grounding head needs both).
struct EncodedImage {
  tensor::Tensor tokens;        ///< [grid_h*grid_w, dim]
  tensor::Tensor raw_features;  ///< [grid_h*grid_w, kFeatureChannels]
  tensor::Tensor mean_feature;  ///< [kFeatureChannels] image average
  std::int64_t grid_h = 0;
  std::int64_t grid_w = 0;
  int patch_size = 0;
};

class VisionBackbone {
 public:
  explicit VisionBackbone(const BackboneConfig& cfg = {});

  /// Encodes precomputed feature maps into patch tokens.
  EncodedImage encode(const FeatureMaps& maps) const;

  /// Projects text concept vectors [T, kFeatureChannels] with the SAME
  /// matrix used for patches → [T, dim]. This shared projection is the
  /// multi-modal alignment.
  tensor::Tensor project_text(const tensor::Tensor& concepts) const;

  const BackboneConfig& config() const noexcept { return cfg_; }

 private:
  BackboneConfig cfg_;
  tensor::Tensor proj_;       ///< [dim, kFeatureChannels] shared projection
  std::vector<TransformerBlock> blocks_;
};

}  // namespace zenesis::models
