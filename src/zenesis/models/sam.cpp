#include "zenesis/models/sam.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>

#include "zenesis/cv/components.hpp"
#include "zenesis/cv/filters.hpp"
#include "zenesis/cv/morphology.hpp"
#include "zenesis/cv/threshold.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/tensor/conv.hpp"
#include "zenesis/tensor/init.hpp"
#include "zenesis/tensor/ops.hpp"

namespace zenesis::models {
namespace {

constexpr float kNoiseFloor = 0.02f;

/// Mean/stddev of the smoothed-intensity channel over mask-selected pixels.
struct BandStats {
  float mean = 0.0f;
  float stddev = 0.0f;
  std::int64_t count = 0;
};

BandStats stats_where(const image::ImageF32& img,
                      const std::function<bool(std::int64_t, std::int64_t)>& pred) {
  BandStats s;
  double sum = 0.0, sum2 = 0.0;
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      if (!pred(x, y)) continue;
      const double v = img.at(x, y);
      sum += v;
      sum2 += v * v;
      ++s.count;
    }
  }
  if (s.count > 0) {
    const double n = static_cast<double>(s.count);
    const double mean = sum / n;
    s.mean = static_cast<float>(mean);
    s.stddev = static_cast<float>(std::sqrt(std::max(0.0, sum2 / n - mean * mean)));
  }
  return s;
}

}  // namespace

SamModel::SamModel(const SamConfig& cfg)
    : cfg_(cfg),
      backbone_(cfg.backbone),
      object_token_(tensor::xavier_uniform(1, cfg.backbone.dim,
                                           cfg.backbone.seed, 97)) {}

SamEncoded SamModel::encode(const image::ImageF32& img) const {
  SamEncoded enc;
  enc.maps = compute_features(img);
  enc.enc = backbone_.encode(enc.maps);
  return enc;
}

image::ImageF32 SamModel::decode_coarse(const SamEncoded& enc,
                                        const image::Box& box) const {
  const auto& e = enc.enc;
  const std::int64_t d = backbone_.config().dim;

  // Prompt encoder: two corner tokens (sinusoidal positions of the box
  // corners on the patch grid) plus the learned object token.
  const auto corner_embedding = [&](double gx, double gy) {
    tensor::Tensor t({1, d});
    for (std::int64_t i = 0; i < d / 4; ++i) {
      const double freq = std::pow(10000.0, -4.0 * static_cast<double>(i) /
                                                static_cast<double>(d));
      t.at(0, 4 * i + 0) = static_cast<float>(std::sin(gy * freq));
      t.at(0, 4 * i + 1) = static_cast<float>(std::cos(gy * freq));
      t.at(0, 4 * i + 2) = static_cast<float>(std::sin(gx * freq));
      t.at(0, 4 * i + 3) = static_cast<float>(std::cos(gx * freq));
    }
    return t;
  };
  const double ps = static_cast<double>(e.patch_size);
  tensor::Tensor prompts({3, d});
  const tensor::Tensor c0 =
      corner_embedding(static_cast<double>(box.x) / ps, static_cast<double>(box.y) / ps);
  const tensor::Tensor c1 = corner_embedding(
      static_cast<double>(box.right()) / ps, static_cast<double>(box.bottom()) / ps);
  for (std::int64_t j = 0; j < d; ++j) {
    prompts.at(0, j) = c0.at(0, j);
    prompts.at(1, j) = c1.at(0, j);
    prompts.at(2, j) = object_token_.at(0, j);
  }

  // Two-way attention: prompt tokens read from the image tokens; the
  // attended rows are averaged into a single object query.
  const tensor::Tensor attended = tensor::attention(prompts, e.tokens, e.tokens);
  const tensor::Tensor q_obj = tensor::mean_rows(attended);

  // Per-patch logits: similarity of each image token to the object query,
  // computed as one tokens · q GEMV on the active kernel backend (both
  // sides dynamically quantized on the int8 fast path).
  const std::int64_t n = e.tokens.dim(0);
  tensor::Tensor q_row({1, d});
  std::copy(q_obj.data(), q_obj.data() + d, q_row.data());
  const tensor::Tensor sims =
      tensor::quant::int8_fast_path()
          ? tensor::matmul_nt_dyn_quantized(e.tokens, q_row)
          : tensor::matmul_nt(e.tokens, q_row);  // [n, 1]
  tensor::Tensor logits({1, e.grid_h, e.grid_w});
  float max_abs = 1e-6f;
  for (std::int64_t j = 0; j < n; ++j) {
    const float dot = sims.at(j, 0);
    logits.at(0, j / e.grid_w, j % e.grid_w) = dot;
    max_abs = std::max(max_abs, std::abs(dot));
  }
  tensor::scale_inplace(logits, 1.0f / max_abs);

  // Upsample to pixel resolution (the decoder's mask head).
  const tensor::Tensor up = tensor::resize_bilinear(
      logits, enc.maps.height, enc.maps.width);
  image::ImageF32 out(enc.maps.width, enc.maps.height, 1);
  for (std::int64_t y = 0; y < out.height(); ++y) {
    for (std::int64_t x = 0; x < out.width(); ++x) {
      out.at(x, y) = up.at(0, y, x);
    }
  }
  return out;
}

std::vector<MaskPrediction> SamModel::predict_box_candidates(
    const SamEncoded& enc, const image::Box& raw_box) const {
  const auto& intensity = enc.maps.channels[kIntensity];
  const image::Box box = raw_box.clipped(enc.maps.width, enc.maps.height);
  std::vector<MaskPrediction> out;
  if (box.empty() || box.area() < 64) return out;

  // Rim band: SAM's implicit background sample for a box prompt (used for
  // the rim-overlap prior on each candidate).
  const std::int64_t band = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(0.07 * static_cast<double>(std::min(box.w, box.h))));
  const image::Box inner = {box.x + band, box.y + band, box.w - 2 * band,
                            box.h - 2 * band};

  // Local-context contrast: intensity minus a windowed *median*. The
  // median is the surrogate of deep features' illumination invariance —
  // it cancels topography shading and, unlike a mean, is immune to halo
  // artifacts next to sharp interfaces (holder edges) and to thin bright
  // structures inflating their own background estimate.
  const image::ImageF32 coarse =
      cfg_.coarse_veto_weight > 0.0f ? decode_coarse(enc, box)
                                     : image::ImageF32();

  // The multimask spectrum: candidates span object polarity (brighter /
  // darker than local context) and structural scale. The fine scale
  // delineates thin structures (needles) against their immediate
  // surround; the coarse scale smooths away texture and sees whole phase
  // regions (particle agglomerates) against a very wide background
  // estimate. This mirrors SAM's whole/part/sub-part multimask output;
  // selection happens in the caller.
  struct ScaleSpec {
    float smooth_sigma;
    std::int64_t large_div, large_min, large_max;
    bool rim_context;  // background = constant median of the box rim
  };
  std::vector<ScaleSpec> scales;
  scales.push_back({0.0f, 4, 12, 64, false});  // fine local context
  if (std::min(box.w, box.h) >= 48) {
    scales.push_back({4.0f, 2, 48, 96, false});  // coarse local context
  }
  // Rim context: SAM's literal box prior — the rim samples the
  // background. Indispensable when the object fills most of its box (a
  // windowed median would sit *on* the object).
  scales.push_back({0.0f, 0, 0, 0, true});

  for (const auto& sc : scales) {
  const image::ImageF32 smoothed =
      sc.smooth_sigma > 0.0f ? cv::gaussian_blur(intensity, sc.smooth_sigma)
                             : intensity;
  image::ImageF32 context;
  image::ImageF32 context_small;
  bool refit_context = false;
  if (sc.rim_context) {
    std::vector<float> rim_vals;
    for (std::int64_t y = box.y; y < box.bottom(); ++y) {
      for (std::int64_t x = box.x; x < box.right(); ++x) {
        if (!inner.contains({x, y})) rim_vals.push_back(smoothed.at(x, y));
      }
    }
    auto mid = rim_vals.begin() + static_cast<std::ptrdiff_t>(rim_vals.size() / 2);
    std::nth_element(rim_vals.begin(), mid, rim_vals.end());
    context = image::ImageF32(enc.maps.width, enc.maps.height, 1);
    context.fill(*mid);
    context_small = context;  // the halo veto is a no-op for rim context
  } else {
    // Two context scales: the large window sees whole phase regions (so a
    // blob's interior still contrasts against the surrounding matrix); the
    // small window hugs interfaces (so pixels that merely sit next to a
    // different phase — holder-edge halos — are vetoed).
    const int r_large = static_cast<int>(std::clamp<std::int64_t>(
        std::min(box.w, box.h) / sc.large_div, sc.large_min, sc.large_max));
    const int r_small = static_cast<int>(std::clamp<std::int64_t>(
        std::min(box.w, box.h) / 8, 8, 20));
    // Context medians are only ever read inside the prompt box (the
    // histogram/core/grow loops below are all box-bounded), so compute
    // them over the box ROI — byte-identical there, and the decode cost
    // scales with the box instead of the frame.
    context = cv::median_filter_large(smoothed, r_large, box);
    context_small = r_small < r_large
                        ? cv::median_filter_large(smoothed, r_small, box)
                        : context;
    refit_context = true;
  }

  for (const int polarity : {+1, -1}) {
    const auto p = static_cast<float>(polarity);

    // Histogram of the positive contrast residue for this polarity.
    constexpr int kBins = 128;
    float vmax = 0.0f;
    for (std::int64_t y = box.y; y < box.bottom(); ++y) {
      for (std::int64_t x = box.x; x < box.right(); ++x) {
        vmax = std::max(vmax, p * (smoothed.at(x, y) - context.at(x, y)));
      }
    }
    if (vmax < 2.0f * kNoiseFloor) continue;  // no structure on this side
    std::vector<std::int64_t> hist(kBins, 0);
    for (std::int64_t y = box.y; y < box.bottom(); ++y) {
      for (std::int64_t x = box.x; x < box.right(); ++x) {
        const float v = p * (smoothed.at(x, y) - context.at(x, y));
        if (v <= 0.0f) continue;
        ++hist[static_cast<std::size_t>(std::min<int>(
            kBins - 1, static_cast<int>(v / vmax * kBins)))];
      }
    }
    // Otsu on the residue separates "object contrast" from "background
    // fluctuation"; a noise floor stops the cut collapsing into sensor
    // noise when the box contains no object of this polarity.
    const int cut_bin = cv::otsu_bin(hist);
    const float cut_high =
        std::max(cfg_.min_contrast_cut,
                 (static_cast<float>(cut_bin) + 0.5f) / kBins * vmax);

    // Hysteresis segmentation with per-object levels: strong-evidence
    // cores (above the Otsu cut of the contrast residue) are labeled,
    // each core measures its own robust peak contrast, and the object is
    // grown out to a fraction of *its* peak ("per-object half-max").
    // This is the surrogate of SAM's per-object boundary placement: a dim
    // agglomerate is delineated at half of its own brightness instead of
    // being truncated by a global cut tuned to the brightest object.
    // `ctx` starts as the plain windowed median and is re-estimated once
    // the first pass has explained away the foreground (second decoder
    // iteration): object skirts no longer inflate their own background.
    image::ImageF32 ctx = context;
    const auto residue = [&](std::int64_t x, std::int64_t y) {
      return p * (smoothed.at(x, y) - ctx.at(x, y));
    };
    const auto residue_local = [&](std::int64_t x, std::int64_t y) {
      return p * (smoothed.at(x, y) - context_small.at(x, y));
    };
    image::Mask core(enc.maps.width, enc.maps.height);
    for (std::int64_t y = box.y; y < box.bottom(); ++y) {
      for (std::int64_t x = box.x; x < box.right(); ++x) {
        // The local-context veto keeps halo pixels (which only contrast
        // against a distant phase, e.g. membrane next to the dark holder)
        // from seeding objects.
        core.at(x, y) = residue(x, y) > cut_high &&
                                residue_local(x, y) > 0.5f * cut_high
                            ? 1
                            : 0;
      }
    }
    const cv::Labeling core_lab = cv::label_components(core);
    if (core_lab.count == 0) continue;
    // Robust per-core peak: 90th percentile of member residues.
    std::vector<float> comp_peak(static_cast<std::size_t>(core_lab.count) + 1,
                                 0.0f);
    {
      std::vector<std::vector<float>> member(comp_peak.size());
      for (std::int64_t y = box.y; y < box.bottom(); ++y) {
        for (std::int64_t x = box.x; x < box.right(); ++x) {
          const std::int32_t l = core_lab.labels.at(x, y);
          if (l != 0) member[static_cast<std::size_t>(l)].push_back(residue(x, y));
        }
      }
      for (std::size_t l = 1; l < member.size(); ++l) {
        auto& v = member[l];
        if (v.empty()) continue;
        const auto idx =
            static_cast<std::size_t>(0.85 * static_cast<double>(v.size() - 1));
        std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                         v.end());
        comp_peak[l] = v[idx];
      }
    }
    constexpr float kHalfMax = 0.5f;
    const auto threshold_mask = [&](float scale) {
      image::Mask m(enc.maps.width, enc.maps.height);
      std::deque<image::Point> frontier;
      // Per-pixel grow threshold inherited from the seeding core.
      image::Image<float> tmap(enc.maps.width, enc.maps.height, 1);
      for (std::int64_t y = box.y; y < box.bottom(); ++y) {
        for (std::int64_t x = box.x; x < box.right(); ++x) {
          const std::int32_t l = core_lab.labels.at(x, y);
          if (l == 0) continue;
          m.at(x, y) = 1;
          tmap.at(x, y) = std::max(cfg_.min_contrast_cut,
                                   kHalfMax * scale *
                                       comp_peak[static_cast<std::size_t>(l)]);
          frontier.push_back({x, y});
        }
      }
      while (!frontier.empty()) {
        const image::Point q = frontier.front();
        frontier.pop_front();
        const float t = tmap.at(q.x, q.y);
        constexpr int dx[] = {1, -1, 0, 0};
        constexpr int dy[] = {0, 0, 1, -1};
        for (int i = 0; i < 4; ++i) {
          const image::Point nb{q.x + dx[i], q.y + dy[i]};
          if (!box.contains(nb) || m.at(nb.x, nb.y) != 0) continue;
          if (residue(nb.x, nb.y) <= t) continue;
          if (residue_local(nb.x, nb.y) <= 0.3f * t) continue;  // halo veto
          m.at(nb.x, nb.y) = 1;
          tmap.at(nb.x, nb.y) = t;
          frontier.push_back(nb);
        }
      }
      return m;
    };

    // Two decoder iterations: segment, refit the background excluding the
    // detected foreground, segment again. (The rim context is already
    // object-free by construction and is not refitted.)
    image::Mask mask = threshold_mask(1.0f);
    if (refit_context) {
      const int r_refit = static_cast<int>(std::clamp<std::int64_t>(
          std::min(box.w, box.h) / sc.large_div, sc.large_min, sc.large_max));
      // r_refit == r_large, so `context` IS the unmasked median the
      // sparse-window fallback needs — passing it skips recomputing it.
      ctx = cv::median_filter_large_masked(smoothed, r_refit, mask, box,
                                           &context);
      mask = threshold_mask(1.0f);
    }
    image::Mask low = threshold_mask(1.0f - cfg_.stability_delta);
    image::Mask high = threshold_mask(1.0f + cfg_.stability_delta);

    // Coarse attention-logit veto: drop pixels the decoder scores as
    // dissimilar to the attended object query — unless that would erase
    // most of the candidate (guard against a mis-attended query).
    if (cfg_.coarse_veto_weight > 0.0f) {
      image::Mask vetoed = mask;
      std::int64_t kept = 0, total = 0;
      for (std::int64_t y = box.y; y < box.bottom(); ++y) {
        for (std::int64_t x = box.x; x < box.right(); ++x) {
          if (mask.at(x, y) == 0) continue;
          ++total;
          if (coarse.at(x, y) < -0.25f * cfg_.coarse_veto_weight) {
            vetoed.at(x, y) = 0;
          } else {
            ++kept;
          }
        }
      }
      if (total > 0 && kept * 2 >= total) {
        mask = std::move(vetoed);
      }
    }

    // Cleanup: close small gaps, fill interior holes (the context rule
    // hollows out objects wider than its window — their interiors match
    // their own median), drop speckles.
    if (cfg_.morph_radius > 0) {
      mask = cv::close(mask, cfg_.morph_radius);
      low = cv::close(low, cfg_.morph_radius);
      high = cv::close(high, cfg_.morph_radius);
    }
    mask = cv::fill_holes(mask);
    low = cv::fill_holes(low);
    high = cv::fill_holes(high);
    if (cfg_.min_component_area > 0) {
      mask = cv::remove_small_components(mask, cfg_.min_component_area);
    }

    MaskPrediction pred =
        score_mask(enc, std::move(mask), std::move(low), std::move(high));
    pred.polarity = polarity;
    // Rim prior: a mask coinciding with the prompt rim is suspect.
    std::int64_t rim_total = 0, rim_hit = 0;
    for (std::int64_t y = box.y; y < box.bottom(); ++y) {
      for (std::int64_t x = box.x; x < box.right(); ++x) {
        if (inner.contains({x, y})) continue;
        ++rim_total;
        rim_hit += pred.mask.at(x, y) != 0;
      }
    }
    pred.rim_overlap = rim_total > 0 ? static_cast<double>(rim_hit) /
                                           static_cast<double>(rim_total)
                                     : 0.0;
    // Box-prompt confidence: a credible object is stable under threshold
    // perturbation, internally homogeneous, and does not coincide with the
    // prompt rim. (No large-area reward here — that prior belongs to
    // unguided point prompts, where it drives the SAM-only failure mode.)
    pred.confidence =
        pred.stability * pred.homogeneity * (1.0 - 0.7 * pred.rim_overlap);
    out.push_back(std::move(pred));
  }
  }
  return out;
}

MaskPrediction SamModel::predict_box(const SamEncoded& enc,
                                     const image::Box& raw_box) const {
  std::vector<MaskPrediction> candidates = predict_box_candidates(enc, raw_box);
  // Without text guidance, rank by internal confidence weighted by
  // boundary adherence: a real object's outline follows image edges, a
  // spurious candidate's outline floats through flat regions.
  MaskPrediction best;
  best.mask = image::Mask(enc.maps.width, enc.maps.height);
  double best_score = -1.0;
  for (auto& c : candidates) {
    const image::Mask boundary = cv::boundary_gradient(c.mask);
    double edge_sum = 0.0;
    std::int64_t edge_n = 0;
    for (std::int64_t y = 0; y < boundary.height(); ++y) {
      for (std::int64_t x = 0; x < boundary.width(); ++x) {
        if (boundary.at(x, y) == 0) continue;
        edge_sum += enc.maps.channels[kEdge].at(x, y);
        ++edge_n;
      }
    }
    const double adherence = edge_n > 0 ? edge_sum / static_cast<double>(edge_n) : 0.0;
    const double score = c.confidence * (0.1 + adherence);
    if (score > best_score) {
      best_score = score;
      best = std::move(c);
    }
  }
  return best;
}

MaskPrediction SamModel::predict_point(const SamEncoded& enc,
                                       image::Point p) const {
  const auto& intensity = enc.maps.channels[kIntensity];
  const std::int64_t w = enc.maps.width, h = enc.maps.height;
  MaskPrediction out;
  out.mask = image::Mask(w, h);
  if (p.x < 0 || p.x >= w || p.y < 0 || p.y >= h) return out;

  // Seed statistics from a small disk around the click.
  const BandStats seed = stats_where(intensity, [&](std::int64_t x, std::int64_t y) {
    const std::int64_t dx = x - p.x, dy = y - p.y;
    return dx * dx + dy * dy <= 9;
  });
  const float tol_base =
      std::min(cfg_.grow_tolerance_cap,
               cfg_.grow_tolerance * std::max(seed.stddev, kNoiseFloor));

  // Neighbour-relative growth: a pixel joins when the *step* from an
  // already-accepted neighbour is below tolerance. This reproduces SAM's
  // characteristic unguided behaviour on scientific data — masks bleed
  // through diffuse phase boundaries and gradual shading (amorphous
  // agglomerates) but stop dead at sharp edges (the holder/membrane
  // interface), which is what hands the max-confidence pick to the large
  // homogeneous background.
  const auto grow = [&](float tol) {
    image::Mask m(w, h);
    std::deque<image::Point> frontier;
    m.at(p.x, p.y) = 1;
    frontier.push_back(p);
    while (!frontier.empty()) {
      const image::Point q = frontier.front();
      frontier.pop_front();
      constexpr int dx[] = {1, -1, 0, 0};
      constexpr int dy[] = {0, 0, 1, -1};
      for (int i = 0; i < 4; ++i) {
        const std::int64_t nx = q.x + dx[i], ny = q.y + dy[i];
        if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
        if (m.at(nx, ny) != 0) continue;
        if (std::fabs(intensity.at(nx, ny) - intensity.at(q.x, q.y)) > tol) {
          continue;
        }
        m.at(nx, ny) = 1;
        frontier.push_back({nx, ny});
      }
    }
    return m;
  };

  image::Mask mask = grow(tol_base);
  image::Mask low = grow(tol_base * (1.0f - cfg_.stability_delta));
  image::Mask high = grow(tol_base * (1.0f + cfg_.stability_delta));
  return score_mask(enc, std::move(mask), std::move(low), std::move(high));
}

MaskPrediction SamModel::score_mask(const SamEncoded& enc, image::Mask mask,
                                    image::Mask low, image::Mask high) const {
  MaskPrediction pred;
  pred.stability = image::mask_iou(low, high);
  const std::int64_t area = image::mask_area(mask);
  pred.area_fraction = static_cast<double>(area) /
                       static_cast<double>(std::max<std::int64_t>(
                           1, mask.pixel_count()));
  const BandStats inside =
      stats_where(enc.maps.channels[kIntensity],
                  [&](std::int64_t x, std::int64_t y) { return mask.at(x, y) != 0; });
  pred.homogeneity =
      inside.count > 0
          ? 1.0 / (1.0 + static_cast<double>(inside.stddev) / kNoiseFloor)
          : 0.0;
  // Max-confidence rule: stability and homogeneity reward crisp uniform
  // regions; the size prior rewards large ones. On crystalline FIB-SEM the
  // black background maximizes all three — the paper's SAM-only failure.
  pred.confidence =
      pred.stability * (0.25 + 0.75 * pred.homogeneity) * std::sqrt(pred.area_fraction);
  pred.mask = std::move(mask);
  return pred;
}

}  // namespace zenesis::models
