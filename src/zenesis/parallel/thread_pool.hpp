#pragma once
// Thread pool with a shared work queue.
//
// The pool is the single parallel substrate for the whole library: tensor
// kernels, the synthetic FIB-SEM generator, and Mode-B batch processing all
// schedule through it, so thread counts are controlled in one place.
//
// Re-entrancy: a task running on a pool worker may itself submit to the
// same pool and wait on the nested work, provided the wait loop helps via
// `try_run_one()` (the data-parallel helpers in parallel_for.hpp do this).
// Blocked waiters drain the shared queue instead of idling, so nested
// fork/join — e.g. a Mode-B slice task whose filters call parallel_for —
// cannot deadlock the pool.
//
// Exceptions: a throwing task no longer terminates the process. The first
// exception is captured and rethrown from the next `wait_idle()` call;
// later exceptions raised before that call are dropped. Tasks still queued
// or running keep executing. The destructor drains the queue and swallows
// captured exceptions (destructors cannot throw).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace zenesis::parallel {

/// Fixed-size worker pool. Tasks are `void()` callables.
class ThreadPool {
 public:
  /// Creates `threads` workers. `threads == 0` resolves to
  /// `std::thread::hardware_concurrency()` (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for asynchronous execution. The submitter's obs
  /// trace id travels with the task and is reinstated around its run, so
  /// spans emitted inside pool tasks stitch to the request that spawned
  /// them even though they execute on a different thread.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all running tasks have finished.
  /// Rethrows the first exception captured from a task since the previous
  /// wait_idle (the capture slot is cleared on rethrow).
  void wait_idle();

  /// Runs one queued task on the calling thread, if any is available.
  /// Returns false when the queue is empty. This is the helping primitive
  /// that makes the pool safely re-entrant: callers blocked on nested
  /// work keep the queue moving instead of parking a worker.
  bool try_run_one();

  /// Process-wide default pool, created on first use with one worker per
  /// hardware thread.
  static ThreadPool& global();

 private:
  /// Queued unit: the callable plus the obs trace id captured at submit.
  struct Task {
    std::function<void()> fn;
    std::uint64_t trace_id = 0;
  };

  void worker_loop();
  void run_task(Task task, const char* span_name);

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace zenesis::parallel
