#pragma once
// Thread pool with a shared work queue.
//
// The pool is the single parallel substrate for the whole library: tensor
// kernels, the synthetic FIB-SEM generator, and Mode-B batch processing all
// schedule through it, so thread counts are controlled in one place.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace zenesis::parallel {

/// Fixed-size worker pool. Tasks are `void()` callables; exceptions thrown
/// by a task terminate the program (tasks are expected to be noexcept in
/// spirit — the library's kernels do not throw).
class ThreadPool {
 public:
  /// Creates `threads` workers. `threads == 0` resolves to
  /// `std::thread::hardware_concurrency()` (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and all running tasks have finished.
  void wait_idle();

  /// Process-wide default pool, created on first use with one worker per
  /// hardware thread.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace zenesis::parallel
