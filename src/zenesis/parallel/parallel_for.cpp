#include "zenesis/parallel/parallel_for.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>

namespace zenesis::parallel {
namespace {

/// Fork/join bookkeeping for one batch of submitted chunks: a countdown
/// latch that (a) records the first exception thrown by a chunk so the
/// caller can rethrow it, and (b) *helps* — while waiting, the caller
/// drains tasks from the pool's queue. Helping is what makes nested
/// parallelism safe: a chunk running on a worker can itself fork and join
/// on the same pool without parking the worker.
class TaskGroup {
 public:
  explicit TaskGroup(std::size_t count) : count_(count) {}

  /// Marks one chunk finished, recording its exception (if any).
  void finish(std::exception_ptr error) {
    std::lock_guard lock(mutex_);
    if (error && !error_) error_ = error;
    if (--count_ == 0) cv_.notify_all();
  }

  /// Runs `body` for one chunk, routing any exception into the group.
  template <typename Fn>
  void run(Fn&& body) {
    std::exception_ptr error;
    try {
      body();
    } catch (...) {
      error = std::current_exception();
    }
    finish(error);
  }

  /// Blocks until every chunk has finished, executing queued pool tasks
  /// while waiting. Rethrows the first chunk exception.
  void wait(ThreadPool& pool) {
    for (;;) {
      {
        std::lock_guard lock(mutex_);
        if (count_ == 0) break;
      }
      if (pool.try_run_one()) continue;
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return count_ == 0; });
      break;
    }
    std::lock_guard lock(mutex_);
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t count_;
  std::exception_ptr error_;
};

constexpr std::int64_t kSerialCutoff = 256;

}  // namespace

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  ThreadPool& pool) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const std::int64_t workers = static_cast<std::int64_t>(pool.size());
  if (workers <= 1 || n < kSerialCutoff) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::int64_t chunks = std::min<std::int64_t>(workers, n);
  const std::int64_t per = (n + chunks - 1) / chunks;
  TaskGroup group(static_cast<std::size_t>(chunks));
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = begin + c * per;
    const std::int64_t hi = std::min(end, lo + per);
    pool.submit([lo, hi, &body, &group] {
      group.run([&] {
        for (std::int64_t i = lo; i < hi; ++i) body(i);
      });
    });
  }
  group.wait(pool);
}

void parallel_for_chunked(std::int64_t begin, std::int64_t end,
                          std::int64_t grain,
                          const std::function<void(std::int64_t, std::int64_t)>& body,
                          ThreadPool& pool) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t workers = static_cast<std::int64_t>(pool.size());
  if (workers <= 1 || n <= grain) {
    body(begin, end);
    return;
  }
  auto next = std::make_shared<std::atomic<std::int64_t>>(begin);
  const std::int64_t tasks = std::min<std::int64_t>(workers, (n + grain - 1) / grain);
  TaskGroup group(static_cast<std::size_t>(tasks));
  for (std::int64_t t = 0; t < tasks; ++t) {
    pool.submit([next, end, grain, &body, &group] {
      group.run([&] {
        for (;;) {
          const std::int64_t lo = next->fetch_add(grain);
          if (lo >= end) break;
          body(lo, std::min(end, lo + grain));
        }
      });
    });
  }
  group.wait(pool);
}

double parallel_reduce(std::int64_t begin, std::int64_t end, double identity,
                       const std::function<double(std::int64_t, double)>& body,
                       const std::function<double(double, double)>& join,
                       ThreadPool& pool) {
  const std::int64_t n = end - begin;
  if (n <= 0) return identity;
  const std::int64_t workers = static_cast<std::int64_t>(pool.size());
  if (workers <= 1 || n < kSerialCutoff) {
    double acc = identity;
    for (std::int64_t i = begin; i < end; ++i) acc = body(i, acc);
    return acc;
  }
  const std::int64_t chunks = std::min<std::int64_t>(workers, n);
  const std::int64_t per = (n + chunks - 1) / chunks;
  std::vector<double> partial(static_cast<std::size_t>(chunks), identity);
  TaskGroup group(static_cast<std::size_t>(chunks));
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = begin + c * per;
    const std::int64_t hi = std::min(end, lo + per);
    pool.submit([lo, hi, c, &partial, &body, &group, identity] {
      group.run([&] {
        double acc = identity;
        for (std::int64_t i = lo; i < hi; ++i) acc = body(i, acc);
        partial[static_cast<std::size_t>(c)] = acc;
      });
    });
  }
  group.wait(pool);
  double acc = identity;
  for (double p : partial) acc = join(acc, p);
  return acc;
}

}  // namespace zenesis::parallel
