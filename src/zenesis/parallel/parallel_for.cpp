#include "zenesis/parallel/parallel_for.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>

namespace zenesis::parallel {
namespace {

/// Countdown latch used to block the caller until all chunks complete.
class Latch {
 public:
  explicit Latch(std::size_t count) : count_(count) {}
  void count_down() {
    std::lock_guard lock(mutex_);
    if (--count_ == 0) cv_.notify_all();
  }
  void wait() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return count_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t count_;
};

constexpr std::int64_t kSerialCutoff = 256;

}  // namespace

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  ThreadPool& pool) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const std::int64_t workers = static_cast<std::int64_t>(pool.size());
  if (workers <= 1 || n < kSerialCutoff) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::int64_t chunks = std::min<std::int64_t>(workers, n);
  const std::int64_t per = (n + chunks - 1) / chunks;
  Latch latch(static_cast<std::size_t>(chunks));
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = begin + c * per;
    const std::int64_t hi = std::min(end, lo + per);
    pool.submit([lo, hi, &body, &latch] {
      for (std::int64_t i = lo; i < hi; ++i) body(i);
      latch.count_down();
    });
  }
  latch.wait();
}

void parallel_for_chunked(std::int64_t begin, std::int64_t end,
                          std::int64_t grain,
                          const std::function<void(std::int64_t, std::int64_t)>& body,
                          ThreadPool& pool) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t workers = static_cast<std::int64_t>(pool.size());
  if (workers <= 1 || n <= grain) {
    body(begin, end);
    return;
  }
  auto next = std::make_shared<std::atomic<std::int64_t>>(begin);
  const std::int64_t tasks = std::min<std::int64_t>(workers, (n + grain - 1) / grain);
  Latch latch(static_cast<std::size_t>(tasks));
  for (std::int64_t t = 0; t < tasks; ++t) {
    pool.submit([next, begin, end, grain, &body, &latch] {
      for (;;) {
        const std::int64_t lo = next->fetch_add(grain);
        if (lo >= end) break;
        body(lo, std::min(end, lo + grain));
      }
      latch.count_down();
    });
  }
  latch.wait();
  (void)begin;
}

double parallel_reduce(std::int64_t begin, std::int64_t end, double identity,
                       const std::function<double(std::int64_t, double)>& body,
                       const std::function<double(double, double)>& join,
                       ThreadPool& pool) {
  const std::int64_t n = end - begin;
  if (n <= 0) return identity;
  const std::int64_t workers = static_cast<std::int64_t>(pool.size());
  if (workers <= 1 || n < kSerialCutoff) {
    double acc = identity;
    for (std::int64_t i = begin; i < end; ++i) acc = body(i, acc);
    return acc;
  }
  const std::int64_t chunks = std::min<std::int64_t>(workers, n);
  const std::int64_t per = (n + chunks - 1) / chunks;
  std::vector<double> partial(static_cast<std::size_t>(chunks), identity);
  Latch latch(static_cast<std::size_t>(chunks));
  for (std::int64_t c = 0; c < chunks; ++c) {
    const std::int64_t lo = begin + c * per;
    const std::int64_t hi = std::min(end, lo + per);
    pool.submit([lo, hi, c, &partial, &body, &latch, identity] {
      double acc = identity;
      for (std::int64_t i = lo; i < hi; ++i) acc = body(i, acc);
      partial[static_cast<std::size_t>(c)] = acc;
      latch.count_down();
    });
  }
  latch.wait();
  double acc = identity;
  for (double p : partial) acc = join(acc, p);
  return acc;
}

}  // namespace zenesis::parallel
