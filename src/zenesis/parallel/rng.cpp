#include "zenesis/parallel/rng.hpp"

#include <cmath>

namespace zenesis::parallel {

double Rng::sqrt_impl(double x) noexcept { return std::sqrt(x); }
double Rng::log_impl(double x) noexcept { return std::log(x); }
double Rng::exp_impl(double x) noexcept { return std::exp(x); }

}  // namespace zenesis::parallel
