#include "zenesis/parallel/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "zenesis/obs/trace.hpp"

namespace zenesis::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push(Task{std::move(task), obs::current_trace_id()});
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock lock(mutex_);
    cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

bool ThreadPool::try_run_one() {
  Task task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
    ++in_flight_;
  }
  // "pool.steal": the task ran on a helping (blocked-waiter) thread, not
  // a pool worker — the span name makes work-stealing visible in traces.
  run_task(std::move(task), "pool.steal");
  return true;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::run_task(Task task, const char* span_name) {
  std::exception_ptr error;
  try {
    // Reinstate the submitter's trace id for the task's duration so spans
    // recorded inside it carry the originating request's id.
    obs::TraceScope trace(task.trace_id);
    obs::Span span(span_name);
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  {
    std::lock_guard lock(mutex_);
    if (error && !first_error_) first_error_ = error;
    --in_flight_;
    if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    run_task(std::move(task), "pool.run");
  }
}

}  // namespace zenesis::parallel
