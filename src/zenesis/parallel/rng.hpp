#pragma once
// Deterministic, splittable random number generation.
//
// Reproducibility across thread counts is a hard requirement for the
// synthetic FIB-SEM generator and the procedurally constructed model
// weights: results must be identical whether a volume is generated on 1 or
// 64 threads. We therefore use a counter-based design — every consumer
// derives an independent stream from (seed, stream_id) instead of sharing
// one sequential engine.

#include <cstdint>

namespace zenesis::parallel {

/// SplitMix64-based stream. Cheap to construct, so the idiomatic use is one
/// local Rng per (seed, logical-entity-id) pair, e.g. per slice or per
/// particle, making output independent of iteration order.
class Rng {
 public:
  /// Stream identified by (seed, stream). Different streams are
  /// statistically independent.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept
      : state_(mix(seed ^ (0x9E3779B97F4A7C15ULL * (stream + 1)))) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next_u64() noexcept {
    state_ += 0x9E3779B97F4A7C15ULL;
    return mix(state_);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept {
    return next_u64() % n;
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = sqrt_impl(-2.0 * log_impl(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Poisson-distributed count (Knuth for small lambda, normal
  /// approximation above 64 — adequate for sensor-noise simulation).
  std::uint64_t poisson(double lambda) noexcept {
    if (lambda <= 0.0) return 0;
    if (lambda > 64.0) {
      const double x = normal(lambda, sqrt_impl(lambda));
      return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
    }
    const double limit = exp_impl(-lambda);
    double p = 1.0;
    std::uint64_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }

 private:
  static std::uint64_t mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  // Tiny wrappers keep <cmath> out of this hot header's public surface.
  static double sqrt_impl(double x) noexcept;
  static double log_impl(double x) noexcept;
  static double exp_impl(double x) noexcept;

  std::uint64_t state_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace zenesis::parallel
