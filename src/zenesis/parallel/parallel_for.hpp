#pragma once
// Data-parallel loop helpers on top of ThreadPool.
//
// All helpers block until every iteration has finished, so callers can use
// them as drop-in replacements for serial loops. Chunking is static by
// default (one contiguous range per worker) with an optional grain size for
// dynamically balanced irregular work.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "zenesis/parallel/thread_pool.hpp"

namespace zenesis::parallel {

/// Runs `body(i)` for every i in [begin, end), statically partitioned into
/// one contiguous chunk per worker. Falls back to a serial loop when the
/// range is small or the pool has a single thread.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  ThreadPool& pool = ThreadPool::global());

/// Runs `body(chunk_begin, chunk_end)` over contiguous chunks of at most
/// `grain` iterations, pulled dynamically by idle workers. Suited to
/// irregular per-iteration cost (e.g. per-slice segmentation).
void parallel_for_chunked(std::int64_t begin, std::int64_t end,
                          std::int64_t grain,
                          const std::function<void(std::int64_t, std::int64_t)>& body,
                          ThreadPool& pool = ThreadPool::global());

/// Parallel reduction: each worker folds its chunk with `body` into a local
/// accumulator seeded by `identity`, then locals are combined with `join`
/// in an unspecified order (join must be associative and commutative).
double parallel_reduce(std::int64_t begin, std::int64_t end, double identity,
                       const std::function<double(std::int64_t, double)>& body,
                       const std::function<double(double, double)>& join,
                       ThreadPool& pool = ThreadPool::global());

}  // namespace zenesis::parallel
