#pragma once
// Human-in-the-loop rectification (the paper's "Rectify Segmentation",
// Figs. 5–6): when automated grounding fails, the user generates random
// candidate boxes (with criteria such as width or height spanning the
// image), picks the one nearest the structure of interest, and the chosen
// box is snapped to the nearest detected segment before SAM re-runs.
//
// The human is modelled by SimulatedAnnotator: an oracle of configurable
// fidelity that replaces the click. Fidelity 1 always picks the candidate
// best aligned with the reference structure; fidelity 0 picks uniformly at
// random. This keeps the platform fully benchmarkable (and lets
// bench/ablation_hitl sweep annotator quality, which no user study could).

#include <cstdint>
#include <vector>

#include "zenesis/cv/components.hpp"
#include "zenesis/image/geometry.hpp"
#include "zenesis/image/image.hpp"
#include "zenesis/models/sam.hpp"
#include "zenesis/parallel/rng.hpp"

namespace zenesis::hitl {

/// Random-box proposal settings (paper: "random boxes (with criteria such
/// as length or width equal to the image size)").
struct RandomBoxConfig {
  int count = 16;
  /// Fraction of proposals that span the full image width (horizontal
  /// bands) or full height (vertical bands); the rest are free rectangles.
  double band_fraction = 0.5;
  /// Free rectangles are uniform in [min_size_frac, max_size_frac] of the
  /// image side.
  double min_size_frac = 0.2;
  double max_size_frac = 0.8;
};

/// Proposes candidate boxes for an image of the given size.
std::vector<image::Box> propose_random_boxes(std::int64_t width,
                                             std::int64_t height,
                                             const RandomBoxConfig& cfg,
                                             parallel::Rng& rng);

/// Snaps a rough user box to the nearest segment of a labeling: the
/// component whose centroid is closest to the box center (ties broken by
/// larger area). Returns the component's bounding box, or the input box
/// when the labeling is empty.
image::Box snap_to_nearest_segment(const image::Box& user_box,
                                   const cv::Labeling& segments);

/// Simulated human annotator.
class SimulatedAnnotator {
 public:
  /// fidelity ∈ [0,1]: probability of an "expert" (best-IoU) choice per
  /// decision; otherwise the choice is uniformly random.
  SimulatedAnnotator(double fidelity, std::uint64_t seed);

  /// Chooses among candidate boxes using the reference mask as the
  /// annotator's mental ground truth.
  image::Box select_box(const std::vector<image::Box>& candidates,
                        const image::Mask& reference);

  /// Clicks a point: an expert click lands on the reference's largest
  /// component centroid; a careless click is uniform over the image.
  image::Point click_point(const image::Mask& reference);

  double fidelity() const noexcept { return fidelity_; }

 private:
  double fidelity_;
  parallel::Rng rng_;
};

/// Outcome of one rectification episode.
struct RectifyResult {
  image::Box chosen_box;    ///< annotator's pick (after segment snapping)
  models::MaskPrediction refined;
  double before_iou = 0.0;  ///< automated mask vs reference
  double after_iou = 0.0;   ///< rectified mask vs reference
};

/// Full episode: propose random boxes → annotator selects → snap to the
/// nearest segment of the automated labeling → SAM re-segments the box.
/// `reference` doubles as the annotator's intent and the evaluation GT.
RectifyResult rectify_segmentation(const models::SamModel& sam,
                                   const models::SamEncoded& enc,
                                   const image::Mask& automated_mask,
                                   const image::Mask& reference,
                                   const RandomBoxConfig& cfg,
                                   SimulatedAnnotator& annotator,
                                   parallel::Rng& rng);

}  // namespace zenesis::hitl
