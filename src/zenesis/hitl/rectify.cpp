#include "zenesis/hitl/rectify.hpp"

#include <algorithm>
#include <cmath>

#include "zenesis/cv/distance.hpp"
#include "zenesis/image/roi.hpp"
#include "zenesis/obs/trace.hpp"

namespace zenesis::hitl {

std::vector<image::Box> propose_random_boxes(std::int64_t width,
                                             std::int64_t height,
                                             const RandomBoxConfig& cfg,
                                             parallel::Rng& rng) {
  std::vector<image::Box> boxes;
  boxes.reserve(static_cast<std::size_t>(cfg.count));
  for (int i = 0; i < cfg.count; ++i) {
    if (rng.uniform() < cfg.band_fraction) {
      // Band proposals: one dimension equals the full image size.
      if (rng.uniform() < 0.5) {
        const auto bh = static_cast<std::int64_t>(
            rng.uniform(cfg.min_size_frac, cfg.max_size_frac) *
            static_cast<double>(height));
        const auto y = static_cast<std::int64_t>(
            rng.uniform(0.0, static_cast<double>(std::max<std::int64_t>(1, height - bh))));
        boxes.push_back({0, y, width, std::max<std::int64_t>(1, bh)});
      } else {
        const auto bw = static_cast<std::int64_t>(
            rng.uniform(cfg.min_size_frac, cfg.max_size_frac) *
            static_cast<double>(width));
        const auto x = static_cast<std::int64_t>(
            rng.uniform(0.0, static_cast<double>(std::max<std::int64_t>(1, width - bw))));
        boxes.push_back({x, 0, std::max<std::int64_t>(1, bw), height});
      }
    } else {
      const auto bw = static_cast<std::int64_t>(
          rng.uniform(cfg.min_size_frac, cfg.max_size_frac) *
          static_cast<double>(width));
      const auto bh = static_cast<std::int64_t>(
          rng.uniform(cfg.min_size_frac, cfg.max_size_frac) *
          static_cast<double>(height));
      const auto x = static_cast<std::int64_t>(
          rng.uniform(0.0, static_cast<double>(std::max<std::int64_t>(1, width - bw))));
      const auto y = static_cast<std::int64_t>(
          rng.uniform(0.0, static_cast<double>(std::max<std::int64_t>(1, height - bh))));
      boxes.push_back({x, y, std::max<std::int64_t>(1, bw),
                       std::max<std::int64_t>(1, bh)});
    }
  }
  return boxes;
}

image::Box snap_to_nearest_segment(const image::Box& user_box,
                                   const cv::Labeling& segments) {
  if (segments.count == 0) return user_box;
  const auto comps = cv::component_stats(segments);
  const image::Point c = user_box.center();
  double best_d = 1e30;
  const cv::Component* best = nullptr;
  for (const auto& comp : comps) {
    const double dx = comp.centroid_x - static_cast<double>(c.x);
    const double dy = comp.centroid_y - static_cast<double>(c.y);
    const double d = dx * dx + dy * dy;
    if (d < best_d - 1e-9 ||
        (std::abs(d - best_d) <= 1e-9 && best != nullptr && comp.area > best->area)) {
      best_d = d;
      best = &comp;
    }
  }
  return best != nullptr ? best->bounds : user_box;
}

SimulatedAnnotator::SimulatedAnnotator(double fidelity, std::uint64_t seed)
    : fidelity_(std::clamp(fidelity, 0.0, 1.0)), rng_(seed, 77) {}

image::Box SimulatedAnnotator::select_box(
    const std::vector<image::Box>& candidates, const image::Mask& reference) {
  if (candidates.empty()) return {};
  if (rng_.uniform() >= fidelity_) {
    return candidates[rng_.uniform_index(candidates.size())];
  }
  // Expert choice: candidate maximizing overlap quality with the
  // reference structure (IoU of the box against the reference's pixels
  // restricted to the box — rewards tight boxes, not just big ones).
  double best_score = -1.0;
  image::Box best = candidates.front();
  for (const auto& box : candidates) {
    const image::Box clipped = box.clipped(reference.width(), reference.height());
    if (clipped.empty()) continue;
    std::int64_t inside = 0;
    for (std::int64_t y = clipped.y; y < clipped.bottom(); ++y) {
      for (std::int64_t x = clipped.x; x < clipped.right(); ++x) {
        inside += reference.at(x, y) != 0;
      }
    }
    const std::int64_t total_fg = image::mask_area(reference);
    const std::int64_t uni = clipped.area() + total_fg - inside;
    const double score =
        uni > 0 ? static_cast<double>(inside) / static_cast<double>(uni) : 0.0;
    if (score > best_score) {
      best_score = score;
      best = box;
    }
  }
  return best;
}

image::Point SimulatedAnnotator::click_point(const image::Mask& reference) {
  if (rng_.uniform() >= fidelity_ || image::mask_area(reference) == 0) {
    return {static_cast<std::int64_t>(rng_.uniform_index(
                static_cast<std::uint64_t>(std::max<std::int64_t>(1, reference.width())))),
            static_cast<std::int64_t>(rng_.uniform_index(
                static_cast<std::uint64_t>(std::max<std::int64_t>(1, reference.height()))))};
  }
  const image::Mask largest = cv::largest_component(reference);
  const cv::Labeling lab = cv::label_components(largest);
  const auto comps = cv::component_stats(lab);
  if (comps.empty()) return {reference.width() / 2, reference.height() / 2};
  image::Point p{static_cast<std::int64_t>(comps.front().centroid_x),
                 static_cast<std::int64_t>(comps.front().centroid_y)};
  // Centroids of concave shapes can fall outside; snap into the mask.
  if (!largest.contains(p.x, p.y) || largest.at(p.x, p.y) == 0) {
    cv::nearest_foreground(largest, p, &p);
  }
  return p;
}

RectifyResult rectify_segmentation(const models::SamModel& sam,
                                   const models::SamEncoded& enc,
                                   const image::Mask& automated_mask,
                                   const image::Mask& reference,
                                   const RandomBoxConfig& cfg,
                                   SimulatedAnnotator& annotator,
                                   parallel::Rng& rng) {
  obs::Span span("hitl.rectify");
  RectifyResult res;
  res.before_iou = image::mask_iou(automated_mask, reference);

  const auto candidates =
      propose_random_boxes(reference.width(), reference.height(), cfg, rng);
  image::Box chosen = annotator.select_box(candidates, reference);

  // Snap the rough pick to the nearest automated segment when one exists —
  // the weak supervision step from the paper.
  const cv::Labeling segments = cv::label_components(automated_mask);
  if (segments.count > 0) {
    const image::Box snapped = snap_to_nearest_segment(chosen, segments);
    // Keep the user's box when the snap would leave it entirely.
    if (!snapped.intersect(chosen).empty()) chosen = snapped.unite(chosen);
  }
  res.chosen_box = chosen;
  res.refined = sam.predict_box(enc, chosen);
  res.after_iou = image::mask_iou(res.refined.mask, reference);
  return res;
}

}  // namespace zenesis::hitl
