#include "zenesis/eval/metrics.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "zenesis/cv/distance.hpp"
#include "zenesis/cv/morphology.hpp"
#include "zenesis/obs/trace.hpp"

namespace zenesis::eval {

Confusion confusion_counts(const image::Mask& pred, const image::Mask& gt) {
  if (pred.width() != gt.width() || pred.height() != gt.height()) {
    throw std::invalid_argument("confusion_counts: size mismatch");
  }
  Confusion c;
  auto pp = pred.pixels();
  auto pg = gt.pixels();
  for (std::size_t i = 0; i < pp.size(); ++i) {
    const bool p = pp[i] != 0, g = pg[i] != 0;
    if (p && g) ++c.tp;
    else if (!p && !g) ++c.tn;
    else if (p && !g) ++c.fp;
    else ++c.fn;
  }
  return c;
}

Metrics compute_metrics(const image::Mask& pred, const image::Mask& gt) {
  obs::Span span("eval.metrics");
  Metrics m;
  m.confusion = confusion_counts(pred, gt);
  const auto& c = m.confusion;
  const double total = static_cast<double>(c.total());
  m.accuracy = total > 0.0 ? static_cast<double>(c.tp + c.tn) / total : 0.0;
  const double uni = static_cast<double>(c.tp + c.fp + c.fn);
  m.iou = uni > 0.0 ? static_cast<double>(c.tp) / uni : 1.0;
  const double dice_den = static_cast<double>(2 * c.tp + c.fp + c.fn);
  m.dice = dice_den > 0.0 ? static_cast<double>(2 * c.tp) / dice_den : 1.0;
  const double p_den = static_cast<double>(c.tp + c.fp);
  m.precision = p_den > 0.0 ? static_cast<double>(c.tp) / p_den
                            : (c.fn == 0 ? 1.0 : 0.0);
  const double r_den = static_cast<double>(c.tp + c.fn);
  m.recall = r_den > 0.0 ? static_cast<double>(c.tp) / r_den
                         : (c.fp == 0 ? 1.0 : 0.0);
  return m;
}

double boundary_f1(const image::Mask& pred, const image::Mask& gt,
                   int tolerance) {
  const image::Mask pb = cv::boundary_gradient(pred);
  const image::Mask gb = cv::boundary_gradient(gt);
  const image::ImageF32 d_to_gt = cv::distance_to_foreground(gb);
  const image::ImageF32 d_to_pred = cv::distance_to_foreground(pb);
  std::int64_t p_hit = 0, p_total = 0, g_hit = 0, g_total = 0;
  for (std::int64_t y = 0; y < pred.height(); ++y) {
    for (std::int64_t x = 0; x < pred.width(); ++x) {
      if (pb.at(x, y) != 0) {
        ++p_total;
        if (d_to_gt.at(x, y) <= static_cast<float>(tolerance)) ++p_hit;
      }
      if (gb.at(x, y) != 0) {
        ++g_total;
        if (d_to_pred.at(x, y) <= static_cast<float>(tolerance)) ++g_hit;
      }
    }
  }
  if (p_total == 0 && g_total == 0) return 1.0;
  if (p_total == 0 || g_total == 0) return 0.0;
  const double prec = static_cast<double>(p_hit) / static_cast<double>(p_total);
  const double rec = static_cast<double>(g_hit) / static_cast<double>(g_total);
  return prec + rec > 0.0 ? 2.0 * prec * rec / (prec + rec) : 0.0;
}

Aggregate aggregate(std::span<const double> values) {
  Aggregate a;
  a.count = static_cast<std::int64_t>(values.size());
  if (values.empty()) return a;
  double sum = 0.0;
  for (double v : values) sum += v;
  a.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - a.mean) * (v - a.mean);
  a.stddev = std::sqrt(var / static_cast<double>(values.size()));
  return a;
}

MetricSummary summarize(std::span<const Metrics> per_slice) {
  std::vector<double> acc, iou, dice, prec, rec;
  acc.reserve(per_slice.size());
  for (const auto& m : per_slice) {
    acc.push_back(m.accuracy);
    iou.push_back(m.iou);
    dice.push_back(m.dice);
    prec.push_back(m.precision);
    rec.push_back(m.recall);
  }
  MetricSummary s;
  s.accuracy = aggregate(acc);
  s.iou = aggregate(iou);
  s.dice = aggregate(dice);
  s.precision = aggregate(prec);
  s.recall = aggregate(rec);
  return s;
}

std::string format_aggregate(const Aggregate& a, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << a.mean << "±" << a.stddev;
  return os.str();
}

}  // namespace zenesis::eval
