#include "zenesis/eval/dashboard.hpp"

#include <algorithm>
#include <set>

namespace zenesis::eval {
namespace {

std::vector<const Record*> select(const std::vector<Record>& records,
                                  const std::string& dataset,
                                  const std::string& method) {
  std::vector<const Record*> out;
  for (const auto& r : records) {
    if (r.dataset == dataset && r.method == method) out.push_back(&r);
  }
  std::sort(out.begin(), out.end(),
            [](const Record* a, const Record* b) { return a->slice < b->slice; });
  return out;
}

}  // namespace

void Dashboard::add(const std::string& dataset, const std::string& method,
                    std::int64_t slice, const Metrics& metrics) {
  records_.push_back({dataset, method, slice, metrics});
}

void Dashboard::set_stat(const std::string& key, double value) {
  stats_[key] = value;
}

io::Table Dashboard::per_slice_table(const std::string& dataset,
                                     const std::string& method) const {
  io::Table t({"slice", "accuracy", "iou", "dice", "precision", "recall"});
  for (const Record* r : select(records_, dataset, method)) {
    t.add_row({r->slice, r->metrics.accuracy, r->metrics.iou, r->metrics.dice,
               r->metrics.precision, r->metrics.recall});
  }
  return t;
}

MetricSummary Dashboard::summary(const std::string& dataset,
                                 const std::string& method) const {
  std::vector<Metrics> ms;
  for (const Record* r : select(records_, dataset, method)) {
    ms.push_back(r->metrics);
  }
  return summarize(ms);
}

io::Table Dashboard::summary_table() const {
  io::Table t({"dataset", "method", "slices", "accuracy", "iou", "dice"});
  std::set<std::pair<std::string, std::string>> pairs;
  for (const auto& r : records_) pairs.insert({r.dataset, r.method});
  for (const auto& [dataset, method] : pairs) {
    const MetricSummary s = summary(dataset, method);
    t.add_row({dataset, method, s.accuracy.count,
               format_aggregate(s.accuracy), format_aggregate(s.iou),
               format_aggregate(s.dice)});
  }
  return t;
}

io::Table Dashboard::method_table(const std::string& method) const {
  io::Table t({"Sample", "Accuracy", "IOU", "Dice"});
  std::set<std::string> datasets;
  for (const auto& r : records_) {
    if (r.method == method) datasets.insert(r.dataset);
  }
  for (const auto& dataset : datasets) {
    const MetricSummary s = summary(dataset, method);
    t.add_row({dataset, format_aggregate(s.accuracy), format_aggregate(s.iou),
               format_aggregate(s.dice)});
  }
  return t;
}

std::string Dashboard::render() const {
  std::string out = "=== Zenesis evaluation dashboard ===\n\n";
  out += "Dataset-level summary (mean±std over slices):\n";
  out += summary_table().to_ascii();
  std::set<std::pair<std::string, std::string>> pairs;
  for (const auto& r : records_) pairs.insert({r.dataset, r.method});
  for (const auto& [dataset, method] : pairs) {
    out += "\nPer-slice [" + dataset + " / " + method + "]:\n";
    out += per_slice_table(dataset, method).to_ascii();
  }
  if (!stats_.empty()) {
    out += "\nRuntime counters:\n";
    io::Table t({"counter", "value"});
    for (const auto& [key, value] : stats_) t.add_row({key, value});
    out += t.to_ascii();
  }
  return out;
}

io::JsonObject Dashboard::to_json() const {
  io::JsonObject root;
  root.set("records", static_cast<std::int64_t>(records_.size()));
  std::vector<io::JsonObject> items;
  items.reserve(records_.size());
  for (const auto& r : records_) {
    io::JsonObject o;
    o.set("dataset", r.dataset);
    o.set("method", r.method);
    o.set("slice", r.slice);
    o.set("accuracy", r.metrics.accuracy);
    o.set("iou", r.metrics.iou);
    o.set("dice", r.metrics.dice);
    o.set("precision", r.metrics.precision);
    o.set("recall", r.metrics.recall);
    items.push_back(std::move(o));
  }
  root.set_array("per_slice", std::move(items));
  std::set<std::pair<std::string, std::string>> pairs;
  for (const auto& r : records_) pairs.insert({r.dataset, r.method});
  std::vector<io::JsonObject> sums;
  for (const auto& [dataset, method] : pairs) {
    const MetricSummary s = summary(dataset, method);
    io::JsonObject o;
    o.set("dataset", dataset);
    o.set("method", method);
    o.set("accuracy_mean", s.accuracy.mean);
    o.set("accuracy_std", s.accuracy.stddev);
    o.set("iou_mean", s.iou.mean);
    o.set("iou_std", s.iou.stddev);
    o.set("dice_mean", s.dice.mean);
    o.set("dice_std", s.dice.stddev);
    sums.push_back(std::move(o));
  }
  root.set_array("summaries", std::move(sums));
  if (!stats_.empty()) {
    std::vector<io::JsonObject> stats;
    stats.reserve(stats_.size());
    for (const auto& [key, value] : stats_) {
      io::JsonObject o;
      o.set("counter", key);
      o.set("value", value);
      stats.push_back(std::move(o));
    }
    root.set_array("runtime_stats", std::move(stats));
  }
  return root;
}

}  // namespace zenesis::eval
