#pragma once
// Segmentation metrics — the quantities reported in the paper's Tables
// 1–3 (accuracy, IoU, Dice) plus precision/recall and boundary-F1 used by
// the extended dashboard.

#include <cstdint>
#include <span>
#include <vector>

#include "zenesis/image/image.hpp"

namespace zenesis::eval {

/// Pixel confusion counts of a binary prediction against ground truth.
struct Confusion {
  std::int64_t tp = 0;
  std::int64_t tn = 0;
  std::int64_t fp = 0;
  std::int64_t fn = 0;

  std::int64_t total() const noexcept { return tp + tn + fp + fn; }
};

/// Derived metrics. Conventions for degenerate cases: IoU/Dice are 1 when
/// both masks are empty (perfect agreement), 0 when exactly one is empty.
struct Metrics {
  double accuracy = 0.0;
  double iou = 0.0;
  double dice = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  Confusion confusion;
};

Confusion confusion_counts(const image::Mask& pred, const image::Mask& gt);

Metrics compute_metrics(const image::Mask& pred, const image::Mask& gt);

/// Boundary F1: precision/recall of predicted boundary pixels against
/// ground-truth boundary pixels within a `tolerance`-pixel band.
double boundary_f1(const image::Mask& pred, const image::Mask& gt,
                   int tolerance = 2);

/// Mean ± (population) standard deviation — the "a ± b" cells of the
/// paper's tables.
struct Aggregate {
  double mean = 0.0;
  double stddev = 0.0;
  std::int64_t count = 0;
};

Aggregate aggregate(std::span<const double> values);

/// Dataset-level roll-up of per-slice metrics.
struct MetricSummary {
  Aggregate accuracy;
  Aggregate iou;
  Aggregate dice;
  Aggregate precision;
  Aggregate recall;
};

MetricSummary summarize(std::span<const Metrics> per_slice);

/// Formats "0.947±0.005" with the given precision.
std::string format_aggregate(const Aggregate& a, int digits = 3);

}  // namespace zenesis::eval
