#pragma once
// Evaluation dashboard (the paper's Mode C, Fig. 8): collects per-slice
// metrics for any number of (dataset, method) pairs and renders them at
// sample and dataset granularity as ASCII, CSV and JSON.

#include <map>
#include <string>
#include <vector>

#include "zenesis/eval/metrics.hpp"
#include "zenesis/io/report.hpp"

namespace zenesis::eval {

/// One recorded evaluation: which dataset, which method, which slice.
struct Record {
  std::string dataset;
  std::string method;
  std::int64_t slice = 0;
  Metrics metrics;
};

class Dashboard {
 public:
  void add(const std::string& dataset, const std::string& method,
           std::int64_t slice, const Metrics& metrics);

  const std::vector<Record>& records() const noexcept { return records_; }

  /// Records a runtime counter (feature-cache hit rate, scheduling width,
  /// throughput …) shown in a dedicated dashboard section. Setting an
  /// existing key overwrites it.
  void set_stat(const std::string& key, double value);
  const std::map<std::string, double>& stats() const noexcept { return stats_; }

  /// Per-slice table for one (dataset, method); all slices in order.
  io::Table per_slice_table(const std::string& dataset,
                            const std::string& method) const;

  /// Dataset-level summary across all (dataset, method) pairs — one row
  /// each, in the "a±b" format of the paper's tables.
  io::Table summary_table() const;

  /// Summary restricted to one method, rows = datasets (exactly the shape
  /// of the paper's Tables 1–3).
  io::Table method_table(const std::string& method) const;

  /// Aggregated metrics for one (dataset, method) pair.
  MetricSummary summary(const std::string& dataset,
                        const std::string& method) const;

  /// Full multi-section ASCII dashboard.
  std::string render() const;

  /// JSON export of every record plus summaries.
  io::JsonObject to_json() const;

 private:
  std::vector<Record> records_;
  std::map<std::string, double> stats_;
};

}  // namespace zenesis::eval
