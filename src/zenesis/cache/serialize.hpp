#pragma once
// Byte codec for models::SamEncoded — the value the disk tier persists.
//
// serialize_encoded is exact: floats are copied bit-for-bit, so a
// round-trip reproduces the encoding byte-identically and cached decodes
// stay deterministic. deserialize_encoded is a hardened parser: every
// read is bounds-checked against the remaining buffer, every dimension is
// sanity-capped before any allocation, and trailing garbage fails the
// parse — arbitrary (truncated, bit-flipped, adversarial) bytes yield
// nullopt, never a crash, over-allocation, or UB. The disk tier's CRC
// normally rejects damage first; this parser is the second, independent
// line of defense (and the first for the fuzz tests that bypass CRC).

#include <cstddef>
#include <optional>
#include <vector>

#include "zenesis/models/sam.hpp"

namespace zenesis::cache {

/// Flattens `enc` into a self-describing byte payload.
std::vector<std::byte> serialize_encoded(const models::SamEncoded& enc);

/// Parses a payload produced by serialize_encoded. Returns nullopt for
/// any malformed input; never throws on bad bytes.
std::optional<models::SamEncoded> deserialize_encoded(
    const std::byte* data, std::size_t size);

inline std::optional<models::SamEncoded> deserialize_encoded(
    const std::vector<std::byte>& payload) {
  return deserialize_encoded(payload.data(), payload.size());
}

/// Resident size of an encoding: actual pixel and tensor float bytes plus
/// struct overhead. This is what the in-memory tier charges against its
/// byte budget, so the budget bounds real memory, not an entry count.
std::size_t encoded_bytes(const models::SamEncoded& enc) noexcept;

}  // namespace zenesis::cache
