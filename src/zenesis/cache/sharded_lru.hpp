#pragma once
// Lock-striped, byte-budgeted, approximately-LRU in-memory cache.
//
// The single-mutex LRU that used to live in models::FeatureCache
// serializes every lookup the moment the serving layer drives real
// concurrency. This template replaces it with N independent shards, each
// its own mutex + hash map, selected by the top bits of an avalanched key
// mix — two threads touching different shards never contend.
//
// Budgeting: the global byte budget and entry capacity are split across
// the shards (byte budgets sum EXACTLY to the configured budget, so a
// budget of B can never admit more than B resident bytes; entry caps are
// split as ceil(capacity / shards), exact when shards == 1). An entry
// larger than its shard's byte budget is rejected outright rather than
// evicting the whole shard for a value that may never be reused.
//
// Eviction: approximate LRU via per-shard clocks. Every hit stamps the
// entry with the shard's monotonically increasing tick; when a put
// overflows the shard's budget or cap, the smallest-tick (least recently
// used) entries of THAT shard are dropped until it fits. Within a shard
// the order is exact LRU; globally it is approximate because recency is
// never compared across shards. There is no time-based invalidation:
// values are pure functions of their keys.
//
// Concurrency: all methods are thread-safe. get/put/erase take exactly
// one shard mutex; stats()/clear() visit shards one at a time, so a
// snapshot is per-shard consistent and — because each shard's byte
// invariant holds under its own lock at all times — the aggregated
// resident_bytes can never exceed the budget, even mid-mutation.
//
// Values are shared_ptr<const V>: a hit shares the stored object, and an
// entry evicted while a reader still holds the pointer stays alive until
// the last reader drops it.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "zenesis/cache/hash.hpp"

namespace zenesis::cache {

struct ShardedCacheConfig {
  /// Off switch: a disabled cache admits nothing and records no traffic.
  bool enabled = true;
  /// Lock stripes; clamped to [1, 4096] and rounded up to a power of two.
  std::size_t shards = 8;
  /// Maximum resident entries, split as ceil(capacity / shards) per shard
  /// (exact when shards == 1). 0 = no entry bound (byte budget governs).
  std::size_t capacity = 64;
  /// Global byte budget; resident bytes never exceed it (see
  /// ZENESIS_CACHE_BUDGET in hash.hpp for the default's sizing knob).
  std::size_t byte_budget = default_byte_budget();
};

struct LruCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t inserts = 0;
  /// Entries rejected because they alone exceed a shard's byte budget.
  std::uint64_t oversized_rejects = 0;
  std::uint64_t evicted_bytes = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t resident_entries = 0;

  double hit_rate() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename V>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(const ShardedCacheConfig& cfg) : cfg_(cfg) {
    cfg_.shards = std::clamp<std::size_t>(cfg_.shards, 1, 4096);
    std::size_t rounded = 1;
    while (rounded < cfg_.shards) rounded <<= 1;
    cfg_.shards = rounded;
    shards_ = std::vector<Shard>(cfg_.shards);
    shard_shift_ = 64;
    for (std::size_t s = cfg_.shards; s > 1; s >>= 1) --shard_shift_;
    const std::size_t n = cfg_.shards;
    for (std::size_t i = 0; i < n; ++i) {
      shards_[i].byte_budget =
          cfg_.byte_budget / n + (i < cfg_.byte_budget % n ? 1 : 0);
      shards_[i].capacity =
          cfg_.capacity == 0 ? 0 : (cfg_.capacity + n - 1) / n;
    }
  }

  /// Shared value for `key`, or nullptr (recorded as a miss). A hit
  /// refreshes the entry's recency.
  std::shared_ptr<const V> get(const Key128& key) {
    if (!cfg_.enabled) return nullptr;
    Shard& sh = shards_[shard_of(key)];
    std::lock_guard lock(sh.mutex);
    const auto it = sh.map.find(key);
    if (it == sh.map.end()) {
      ++sh.misses;
      return nullptr;
    }
    ++sh.hits;
    it->second.tick = ++sh.clock;
    return it->second.value;
  }

  /// Lookup without touching recency or the hit/miss counters (tests,
  /// inspection tooling).
  std::shared_ptr<const V> peek(const Key128& key) const {
    if (!cfg_.enabled) return nullptr;
    const Shard& sh = shards_[shard_of(key)];
    std::lock_guard lock(sh.mutex);
    const auto it = sh.map.find(key);
    return it == sh.map.end() ? nullptr : it->second.value;
  }

  /// Admits `value` (`bytes` = its resident size) and evicts the shard's
  /// least-recently-used entries until budget and capacity hold again.
  /// Returns false when the cache is disabled or the value alone exceeds
  /// its shard's byte budget. An existing entry for `key` is replaced
  /// (last writer wins, matching the old FeatureCache contract for
  /// concurrent misses of one key).
  bool put(const Key128& key, std::shared_ptr<const V> value,
           std::size_t bytes) {
    if (!cfg_.enabled || value == nullptr) return false;
    Shard& sh = shards_[shard_of(key)];
    std::lock_guard lock(sh.mutex);
    if (bytes > sh.byte_budget) {
      ++sh.oversized_rejects;
      return false;
    }
    const auto it = sh.map.find(key);
    if (it != sh.map.end()) {
      sh.bytes -= it->second.bytes;
      it->second = Entry{std::move(value), bytes, ++sh.clock};
      sh.bytes += bytes;
    } else {
      sh.map.emplace(key, Entry{std::move(value), bytes, ++sh.clock});
      sh.bytes += bytes;
      ++sh.inserts;
    }
    evict_locked(sh);
    return true;
  }

  /// Drops `key` if resident; returns whether anything was removed.
  bool erase(const Key128& key) {
    if (!cfg_.enabled) return false;
    Shard& sh = shards_[shard_of(key)];
    std::lock_guard lock(sh.mutex);
    const auto it = sh.map.find(key);
    if (it == sh.map.end()) return false;
    sh.bytes -= it->second.bytes;
    sh.map.erase(it);
    return true;
  }

  /// Drops every entry; counters and clocks survive (matching the old
  /// FeatureCache::clear contract).
  void clear() {
    for (Shard& sh : shards_) {
      std::lock_guard lock(sh.mutex);
      sh.map.clear();
      sh.bytes = 0;
    }
  }

  LruCacheStats stats() const {
    LruCacheStats s;
    for (const Shard& sh : shards_) {
      std::lock_guard lock(sh.mutex);
      s.hits += sh.hits;
      s.misses += sh.misses;
      s.evictions += sh.evictions;
      s.inserts += sh.inserts;
      s.oversized_rejects += sh.oversized_rejects;
      s.evicted_bytes += sh.evicted_bytes;
      s.resident_bytes += sh.bytes;
      s.resident_entries += sh.map.size();
    }
    return s;
  }

  /// Which stripe `key` lands in (exposed so eviction tests can construct
  /// per-shard workloads).
  std::size_t shard_of(const Key128& key) const noexcept {
    return cfg_.shards == 1
               ? 0
               : static_cast<std::size_t>(mix_key(key) >> shard_shift_);
  }

  /// This shard's slice of the global byte budget.
  std::size_t shard_byte_budget(std::size_t shard) const {
    return shards_[shard].byte_budget;
  }

  std::size_t shard_count() const noexcept { return cfg_.shards; }
  const ShardedCacheConfig& config() const noexcept { return cfg_; }

 private:
  struct Entry {
    std::shared_ptr<const V> value;
    std::size_t bytes = 0;
    std::uint64_t tick = 0;  ///< shard-clock stamp of the last access
  };
  struct KeyHash {
    std::size_t operator()(const Key128& k) const noexcept {
      return static_cast<std::size_t>(mix_key(k));
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key128, Entry, KeyHash> map;
    std::uint64_t clock = 0;  ///< per-shard recency clock
    std::size_t bytes = 0;
    std::size_t byte_budget = 0;
    std::size_t capacity = 0;  ///< 0 = unbounded entries
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t inserts = 0;
    std::uint64_t oversized_rejects = 0;
    std::uint64_t evicted_bytes = 0;
  };

  /// Caller holds sh.mutex. Evicts in ascending tick order (exact LRU
  /// within the shard) until both bounds hold.
  void evict_locked(Shard& sh) {
    const bool over_cap = sh.capacity != 0 && sh.map.size() > sh.capacity;
    if (!over_cap && sh.bytes <= sh.byte_budget) return;
    // One ordered pass instead of a min-scan per victim: puts that
    // overflow are rare relative to gets, and shards are small.
    std::vector<std::pair<std::uint64_t, Key128>> by_tick;
    by_tick.reserve(sh.map.size());
    for (const auto& [key, entry] : sh.map) by_tick.emplace_back(entry.tick, key);
    std::sort(by_tick.begin(), by_tick.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [tick, key] : by_tick) {
      const bool fits = sh.bytes <= sh.byte_budget &&
                        (sh.capacity == 0 || sh.map.size() <= sh.capacity);
      if (fits) break;
      const auto it = sh.map.find(key);
      sh.bytes -= it->second.bytes;
      sh.evicted_bytes += it->second.bytes;
      sh.map.erase(it);
      ++sh.evictions;
    }
  }

  ShardedCacheConfig cfg_;
  std::vector<Shard> shards_;
  unsigned shard_shift_ = 64;
};

}  // namespace zenesis::cache
