#pragma once
// zenesis::cache primitives: FNV-1a hashing, 128-bit cache keys, and
// byte-budget sizing.
//
// Every cache in the hierarchy (the sharded in-memory tiers, the on-disk
// embedding store, the mask-result cache) keys entries by content hashes
// built from these helpers, and bounds residency by a byte budget sized
// through `default_byte_budget()` (the ZENESIS_CACHE_BUDGET environment
// variable, with K/M/G suffixes, falling back to a 256 MiB default).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace zenesis::cache {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/// Folds `n` bytes into a running FNV-1a hash state `h`.
inline std::uint64_t fnv1a_bytes(std::uint64_t h, const void* data,
                                 std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Folds a trivially copyable value's object representation into `h`.
template <typename T>
std::uint64_t fnv1a_value(std::uint64_t h, const T& v) noexcept {
  return fnv1a_bytes(h, &v, sizeof(v));
}

/// 128-bit cache key: two independent 64-bit content hashes (e.g. image
/// hash + configuration hash). Collisions require both halves to collide,
/// so key equality is treated as content equality throughout the cache
/// subsystem.
struct Key128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const Key128&, const Key128&) = default;
};

/// Avalanching mix of a key into one word (shard selection, map buckets).
inline std::uint64_t mix_key(const Key128& k) noexcept {
  std::uint64_t x = k.lo ^ (k.hi * 0x9e3779b97f4a7c15ull);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Parses a human-friendly byte size: a plain integer is bytes; a K/M/G
/// suffix (optionally followed by "iB" or "B", case-insensitive) scales by
/// 2^10/2^20/2^30. Returns nullopt for malformed input or overflow.
std::optional<std::size_t> parse_byte_size(const std::string& text) noexcept;

/// The default cache byte budget: ZENESIS_CACHE_BUDGET from the
/// environment when set and parseable (see parse_byte_size), else 256 MiB.
/// Read on every call so tests can vary the environment.
std::size_t default_byte_budget() noexcept;

}  // namespace zenesis::cache
