#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for the disk
// tier's record integrity checks. Table-driven, byte-at-a-time: record
// payloads are megabyte-scale embeddings written once and read on warm
// restarts, so simplicity beats a sliced-by-8 variant here.

#include <cstddef>
#include <cstdint>

namespace zenesis::cache {

/// CRC-32 of `n` bytes, continuing from `seed` (0 for a fresh checksum).
std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t seed = 0) noexcept;

}  // namespace zenesis::cache
