#include "zenesis/cache/disk_store.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "zenesis/cache/checksum.hpp"

namespace zenesis::cache {
namespace {

namespace fs = std::filesystem;

constexpr char kMagic[4] = {'Z', 'F', 'C', '1'};

void put_bytes(std::byte* dst, const void* src, std::size_t n) noexcept {
  std::memcpy(dst, src, n);
}

template <typename T>
T get_value(const std::byte* src) noexcept {
  T v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex16(const std::string& s, std::size_t pos, std::uint64_t* out) {
  if (pos + 16 > s.size()) return false;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const char c = s[pos + i];
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

/// "<16 hex>-<16 hex>.zfe" → key; false for anything else.
bool parse_record_name(const std::string& name, Key128* key) {
  if (name.size() != 16 + 1 + 16 + std::strlen(DiskStore::kExtension)) {
    return false;
  }
  if (name[16] != '-') return false;
  if (name.substr(33) != DiskStore::kExtension) return false;
  return parse_hex16(name, 0, &key->lo) && parse_hex16(name, 17, &key->hi);
}

bool is_temp_name(const std::string& name) {
  return name.find(".zfe.tmp-") != std::string::npos;
}

/// Reads a whole file; false on open/read failure.
bool read_file(const std::string& path, std::vector<std::byte>& out) noexcept {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  bool ok = std::fseek(f, 0, SEEK_END) == 0;
  long size = ok ? std::ftell(f) : -1;
  ok = ok && size >= 0 && std::fseek(f, 0, SEEK_SET) == 0;
  if (ok) {
    out.resize(static_cast<std::size_t>(size));
    ok = out.empty() ||
         std::fread(out.data(), 1, out.size(), f) == out.size();
  }
  std::fclose(f);
  return ok;
}

}  // namespace

DiskStore::DiskStore(const DiskStoreConfig& cfg) : dir_(cfg.dir) {
  if (dir_.empty()) {
    throw std::invalid_argument("DiskStore: empty directory path");
  }
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_, ec)) {
    throw std::invalid_argument("DiskStore: cannot create cache directory '" +
                                dir_ + "'");
  }
  if (cfg.sweep_temps_on_open) sweep_temps();
}

std::string DiskStore::path_for(const Key128& key) const {
  return (fs::path(dir_) / (hex16(key.lo) + "-" + hex16(key.hi) + kExtension))
      .string();
}

DiskStore::ReadResult DiskStore::read_record(const std::string& path,
                                             const Key128& key,
                                             std::vector<std::byte>& payload,
                                             std::string* problem,
                                             std::uint32_t* version) noexcept {
  const auto fail = [&](ReadResult r, const char* why) {
    if (problem != nullptr) *problem = why;
    return r;
  };
  std::vector<std::byte> file;
  {
    std::error_code ec;
    if (!fs::exists(path, ec)) return fail(ReadResult::kMissing, "no record");
  }
  if (!read_file(path, file)) {
    return fail(ReadResult::kCorrupt, "unreadable file");
  }
  if (file.size() < kHeaderBytes) {
    return fail(ReadResult::kCorrupt, "truncated header");
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail(ReadResult::kCorrupt, "bad magic");
  }
  const auto ver = get_value<std::uint32_t>(file.data() + 4);
  if (version != nullptr) *version = ver;
  if (ver != kFormatVersion) {
    return fail(ReadResult::kVersionMismatch, "format version mismatch");
  }
  const Key128 embedded{get_value<std::uint64_t>(file.data() + 8),
                        get_value<std::uint64_t>(file.data() + 16)};
  if (!(embedded == key)) {
    return fail(ReadResult::kCorrupt, "embedded key mismatch");
  }
  const auto payload_size = get_value<std::uint64_t>(file.data() + 24);
  if (payload_size != file.size() - kHeaderBytes) {
    return fail(ReadResult::kCorrupt, "payload size mismatch");
  }
  const auto stored_crc = get_value<std::uint32_t>(file.data() + 32);
  const std::uint32_t actual_crc =
      crc32(file.data() + kHeaderBytes, static_cast<std::size_t>(payload_size));
  if (stored_crc != actual_crc) {
    return fail(ReadResult::kCorrupt, "payload CRC mismatch");
  }
  payload.assign(file.begin() + static_cast<std::ptrdiff_t>(kHeaderBytes),
                 file.end());
  return ReadResult::kOk;
}

std::optional<std::vector<std::byte>> DiskStore::get(const Key128& key) {
  const std::string path = path_for(key);
  std::vector<std::byte> payload;
  const ReadResult r = read_record(path, key, payload, nullptr, nullptr);
  std::error_code ec;
  switch (r) {
    case ReadResult::kOk: {
      std::lock_guard lock(stats_mutex_);
      ++stats_.hits;
      stats_.bytes_read += payload.size();
      return payload;
    }
    case ReadResult::kMissing: {
      std::lock_guard lock(stats_mutex_);
      ++stats_.misses;
      return std::nullopt;
    }
    case ReadResult::kVersionMismatch:
      // Ignore-and-rewrite: drop the stale record so the caller's next
      // put installs the current format.
      fs::remove(path, ec);
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.version_mismatches;
      }
      return std::nullopt;
    case ReadResult::kCorrupt:
      fs::remove(path, ec);
      {
        std::lock_guard lock(stats_mutex_);
        ++stats_.corrupt_drops;
      }
      return std::nullopt;
  }
  return std::nullopt;
}

bool DiskStore::put(const Key128& key, const std::vector<std::byte>& payload) {
  const std::string path = path_for(key);
  const std::string temp =
      path + ".tmp-" + std::to_string(static_cast<long>(::getpid())) + "-" +
      std::to_string(temp_seq_.fetch_add(1, std::memory_order_relaxed));

  std::byte header[kHeaderBytes] = {};
  put_bytes(header, kMagic, sizeof(kMagic));
  const std::uint32_t version = kFormatVersion;
  put_bytes(header + 4, &version, sizeof(version));
  put_bytes(header + 8, &key.lo, sizeof(key.lo));
  put_bytes(header + 16, &key.hi, sizeof(key.hi));
  const std::uint64_t payload_size = payload.size();
  put_bytes(header + 24, &payload_size, sizeof(payload_size));
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  put_bytes(header + 32, &crc, sizeof(crc));

  const auto fail = [&] {
    std::error_code ec;
    fs::remove(temp, ec);
    std::lock_guard lock(stats_mutex_);
    ++stats_.write_errors;
    return false;
  };

  std::FILE* f = std::fopen(temp.c_str(), "wb");
  if (f == nullptr) return fail();
  bool ok = std::fwrite(header, 1, kHeaderBytes, f) == kHeaderBytes;
  ok = ok && (payload.empty() ||
              std::fwrite(payload.data(), 1, payload.size(), f) ==
                  payload.size());
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return fail();

  std::error_code ec;
  fs::rename(temp, path, ec);  // atomic replace of any existing record
  if (ec) return fail();

  std::lock_guard lock(stats_mutex_);
  ++stats_.writes;
  stats_.bytes_written += kHeaderBytes + payload.size();
  return true;
}

std::vector<DiskStore::RecordInfo> DiskStore::scan() const {
  std::vector<RecordInfo> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (is_temp_name(name)) continue;
    if (name.size() < std::strlen(kExtension) ||
        name.substr(name.size() - std::strlen(kExtension)) != kExtension) {
      continue;
    }
    RecordInfo info;
    info.path = entry.path().string();
    info.file_bytes = entry.file_size(ec);
    if (!parse_record_name(name, &info.key)) {
      info.problem = "malformed record filename";
      out.push_back(std::move(info));
      continue;
    }
    std::vector<std::byte> payload;
    const ReadResult r =
        read_record(info.path, info.key, payload, &info.problem, &info.version);
    info.valid = r == ReadResult::kOk;
    if (info.valid) {
      info.payload_bytes = payload.size();
      info.problem.clear();
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::size_t DiskStore::purge() {
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const bool record =
        name.size() >= std::strlen(kExtension) &&
        name.substr(name.size() - std::strlen(kExtension)) == kExtension;
    if (!record && !is_temp_name(name)) continue;
    std::error_code rm;
    if (fs::remove(entry.path(), rm)) ++removed;
  }
  return removed;
}

std::size_t DiskStore::sweep_temps() {
  std::size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (!is_temp_name(entry.path().filename().string())) continue;
    std::error_code rm;
    if (fs::remove(entry.path(), rm)) ++removed;
  }
  return removed;
}

DiskStoreStats DiskStore::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

}  // namespace zenesis::cache
