#include "zenesis/cache/feature_cache.hpp"

#include "zenesis/cache/serialize.hpp"
#include "zenesis/obs/trace.hpp"
#include "zenesis/tensor/quant.hpp"

namespace zenesis::cache {
namespace {

ShardedCacheConfig l1_config(const FeatureCacheConfig& cfg) {
  ShardedCacheConfig l1;
  l1.enabled = cfg.enabled && cfg.capacity != 0;
  l1.shards = cfg.shards == 0 ? 1 : cfg.shards;
  l1.capacity = cfg.capacity;
  l1.byte_budget = cfg.byte_budget;
  return l1;
}

}  // namespace

std::uint64_t hash_image(const image::ImageF32& img) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(h, img.width());
  h = fnv1a_value(h, img.height());
  h = fnv1a_value(h, img.channels());
  const auto px = img.pixels();
  h = fnv1a_bytes(h, px.data(), px.size() * sizeof(float));
  return h;
}

std::uint64_t hash_backbone_config(const models::BackboneConfig& cfg) {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_value(h, cfg.patch_size);
  h = fnv1a_value(h, cfg.dim);
  h = fnv1a_value(h, cfg.blocks);
  h = fnv1a_value(h, cfg.heads);
  h = fnv1a_value(h, cfg.branch_scale);
  h = fnv1a_value(h, cfg.seed);
  // The active numeric precision changes the floats encode() produces,
  // so it is part of the key: an fp32 embedding persisted by the disk
  // store must be a clean miss under int8 (and vice versa), never a
  // silently served cross-precision hit.
  const char* precision = tensor::quant::precision_name();
  h = fnv1a_bytes(h, precision, std::string_view(precision).size());
  return h;
}

FeatureCache::FeatureCache(const FeatureCacheConfig& cfg)
    : cfg_(cfg), l1_(l1_config(cfg)) {
  if (cfg_.enabled && cfg_.capacity != 0 && !cfg_.disk_path.empty()) {
    try {
      disk_ = std::make_unique<DiskStore>(DiskStoreConfig{cfg_.disk_path});
    } catch (const std::exception&) {
      // An unusable directory downgrades the cache to memory-only; the
      // pipeline must keep working on a read-only or full filesystem.
      disk_open_errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::shared_ptr<const models::SamEncoded> FeatureCache::encode(
    const image::ImageF32& img, const models::VisionBackbone& backbone) {
  const bool active = cfg_.enabled && cfg_.capacity != 0;
  const auto compute = [&] {
    // The expensive path: feature maps + backbone encode. Span arg 0/1
    // distinguishes a cache-bypassing encode (cache off) from a miss.
    obs::Span span("sam.encode", active ? 1u : 0u);
    auto fresh = std::make_shared<models::SamEncoded>();
    fresh->maps = models::compute_features(img);
    fresh->enc = backbone.encode(fresh->maps);
    return std::shared_ptr<const models::SamEncoded>(std::move(fresh));
  };
  if (!active) return compute();

  const Key128 key{hash_image(img), hash_backbone_config(backbone.config())};
  if (auto hit = l1_.get(key)) return hit;

  if (disk_ != nullptr) {
    std::optional<std::vector<std::byte>> payload;
    {
      obs::Span span("cache.disk_read", 0);
      payload = disk_->get(key);
    }
    if (payload.has_value()) {
      if (auto decoded = deserialize_encoded(*payload)) {
        auto value = std::make_shared<const models::SamEncoded>(
            std::move(*decoded));
        disk_hits_.fetch_add(1, std::memory_order_relaxed);
        l1_.put(key, value, encoded_bytes(*value));
        return value;
      }
      // CRC passed but the payload failed to parse (e.g. record written
      // by a buggy build): treat as damage and recompute.
    }
  }

  std::shared_ptr<const models::SamEncoded> value = compute();
  computes_.fetch_add(1, std::memory_order_relaxed);
  l1_.put(key, value, encoded_bytes(*value));
  if (disk_ != nullptr) {
    obs::Span span("cache.disk_write", 0);
    disk_->put(key, serialize_encoded(*value));
  }
  return value;
}

FeatureCacheStats FeatureCache::stats() const {
  const LruCacheStats l1 = l1_.stats();
  FeatureCacheStats s;
  s.hits = l1.hits;
  s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
  s.misses = computes_.load(std::memory_order_relaxed);
  s.evictions = l1.evictions;
  s.resident_bytes = l1.resident_bytes;
  s.evicted_bytes = l1.evicted_bytes;
  s.oversized_rejects = l1.oversized_rejects;
  s.disk_errors = disk_open_errors_.load(std::memory_order_relaxed);
  if (disk_ != nullptr) {
    const DiskStoreStats d = disk_->stats();
    s.disk_writes = d.writes;
    s.disk_errors += d.write_errors + d.corrupt_drops + d.version_mismatches;
  }
  return s;
}

void FeatureCache::clear() { l1_.clear(); }

}  // namespace zenesis::cache
