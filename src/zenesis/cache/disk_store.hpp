#pragma once
// Persistent on-disk cache tier: one CRC-checked record file per key.
//
// The store exists so warm restarts and repeated volumes skip the
// dominant backbone-encode cost entirely: a fresh process pointed at the
// same directory serves every previously encoded (image, backbone-config)
// pair from disk instead of recomputing it. Records are opaque byte
// payloads — the feature cache serializes SamEncoded through
// serialize.hpp; the store itself knows nothing about tensors.
//
// Record format (host-endian; a store is a local cache, not an archive):
//
//   offset  size  field
//        0     4  magic "ZFC1"
//        4     4  format version (kFormatVersion)
//        8     8  key.lo   — must match the filename's key
//       16     8  key.hi
//       24     8  payload size in bytes
//       32     4  CRC-32 of the payload
//       36     4  reserved (zero)
//       40     —  payload
//
// Durability/atomicity: writes go to a unique temp file in the same
// directory and are renamed into place, so a reader concurrently opening
// the record sees either the complete old record or the complete new one,
// never a torn mix (POSIX rename atomicity). A crash mid-write leaves
// only a *.tmp-* file, which open() sweeps and readers never match.
//
// Failure policy: every malformed record — truncated, bit-flipped
// (CRC/magic/size mismatch), wrong embedded key — is a clean miss, never
// a crash or a wrong payload; the offending file is deleted so the next
// put rewrites it. A version mismatch is counted separately and likewise
// ignored-and-rewritten. I/O errors on put are swallowed into a counter:
// a full disk degrades the cache, not the pipeline.
//
// Thread safety: all methods are safe to call concurrently; per-record
// atomicity comes from the rename protocol, counters from a mutex.
// Multiple processes may share a directory (rename stays atomic); the
// temp sweep only runs at open, so it cannot race in-flight writers of
// this process.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "zenesis/cache/hash.hpp"

namespace zenesis::cache {

struct DiskStoreConfig {
  /// Record directory; created (recursively) when missing.
  std::string dir;
  /// Stale *.tmp-* files from crashed writers are removed at open.
  bool sweep_temps_on_open = true;
};

struct DiskStoreStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< no record on disk
  std::uint64_t writes = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t corrupt_drops = 0;      ///< CRC/size/magic/key failures
  std::uint64_t version_mismatches = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

class DiskStore {
 public:
  static constexpr std::uint32_t kFormatVersion = 1;
  static constexpr std::size_t kHeaderBytes = 40;
  /// Record filename extension (".zfe" = Zenesis feature embedding).
  static constexpr const char* kExtension = ".zfe";

  /// Opens (creating if needed) the record directory. Throws
  /// std::invalid_argument when the directory cannot be created — a cache
  /// pointed at an unusable path should fail loudly at construction.
  explicit DiskStore(const DiskStoreConfig& cfg);

  /// The record payload for `key`, or nullopt (missing record = miss;
  /// malformed record = corrupt drop + miss; stale version = version
  /// mismatch + miss — both leave the slot free for a rewrite).
  std::optional<std::vector<std::byte>> get(const Key128& key);

  /// Writes (or atomically replaces) the record for `key`. Returns false
  /// on I/O failure; the store never throws from the write path.
  bool put(const Key128& key, const std::vector<std::byte>& payload);

  /// Scan result for one on-disk record file (inspection tooling).
  struct RecordInfo {
    Key128 key;            ///< parsed from the filename
    std::string path;
    std::uint64_t file_bytes = 0;
    std::uint64_t payload_bytes = 0;  ///< 0 when invalid
    std::uint32_t version = 0;        ///< 0 when unreadable
    bool valid = false;
    std::string problem;   ///< empty when valid
  };

  /// Validates every record in the directory (magic, version, size, key,
  /// CRC) without touching the hit/miss counters.
  std::vector<RecordInfo> scan() const;

  /// Deletes every record and temp file; returns how many files went.
  std::size_t purge();

  /// Removes stale temp files (also run at open); returns the count.
  std::size_t sweep_temps();

  /// Record path for `key` (tests corrupt records through this).
  std::string path_for(const Key128& key) const;

  DiskStoreStats stats() const;
  const std::string& directory() const noexcept { return dir_; }

  DiskStore(const DiskStore&) = delete;
  DiskStore& operator=(const DiskStore&) = delete;

 private:
  enum class ReadResult { kOk, kMissing, kCorrupt, kVersionMismatch };
  /// Reads and fully validates one record file. On kOk, `payload` holds
  /// the record body. Never throws.
  static ReadResult read_record(const std::string& path, const Key128& key,
                                std::vector<std::byte>& payload,
                                std::string* problem,
                                std::uint32_t* version) noexcept;

  std::string dir_;
  std::atomic<std::uint64_t> temp_seq_{0};
  mutable std::mutex stats_mutex_;
  DiskStoreStats stats_;
};

}  // namespace zenesis::cache
