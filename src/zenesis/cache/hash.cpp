#include "zenesis/cache/hash.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>

namespace zenesis::cache {

std::optional<std::size_t> parse_byte_size(const std::string& text) noexcept {
  if (text.empty()) return std::nullopt;
  std::size_t value = 0;
  std::size_t i = 0;
  bool any_digit = false;
  for (; i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]));
       ++i) {
    const auto digit = static_cast<std::size_t>(text[i] - '0');
    if (value > (std::numeric_limits<std::size_t>::max() - digit) / 10) {
      return std::nullopt;  // overflow
    }
    value = value * 10 + digit;
    any_digit = true;
  }
  if (!any_digit) return std::nullopt;

  std::size_t scale = 1;
  if (i < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[i]))) {
      case 'K': scale = std::size_t{1} << 10; break;
      case 'M': scale = std::size_t{1} << 20; break;
      case 'G': scale = std::size_t{1} << 30; break;
      default: return std::nullopt;
    }
    ++i;
    // Accept the common spellings 64M, 64MB, 64MiB.
    if (i < text.size() &&
        std::toupper(static_cast<unsigned char>(text[i])) == 'I') {
      ++i;
    }
    if (i < text.size() &&
        std::toupper(static_cast<unsigned char>(text[i])) == 'B') {
      ++i;
    }
  }
  if (i != text.size()) return std::nullopt;
  if (scale != 1 && value > std::numeric_limits<std::size_t>::max() / scale) {
    return std::nullopt;
  }
  return value * scale;
}

std::size_t default_byte_budget() noexcept {
  constexpr std::size_t kFallback = std::size_t{256} << 20;  // 256 MiB
  const char* env = std::getenv("ZENESIS_CACHE_BUDGET");
  if (env == nullptr) return kFallback;
  const auto parsed = parse_byte_size(env);
  return parsed.value_or(kFallback);
}

}  // namespace zenesis::cache
