#include "zenesis/cache/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <limits>

namespace zenesis::cache {
namespace {

// Sanity caps: a legitimate encoding is a few-megapixel slice and a few
// thousand patch tokens. Anything past these bounds is damage, and
// rejecting it before allocation keeps a bit-flipped length field from
// requesting terabytes.
constexpr std::int64_t kMaxDim = std::int64_t{1} << 20;
constexpr std::int64_t kMaxElements = std::int64_t{1} << 28;
constexpr std::size_t kMaxRank = 8;
constexpr int kMaxChannels = 64;

class Writer {
 public:
  explicit Writer(std::vector<std::byte>& out) : out_(out) {}

  template <typename T>
  void value(T v) {
    const auto pos = out_.size();
    out_.resize(pos + sizeof(v));
    std::memcpy(out_.data() + pos, &v, sizeof(v));
  }

  void floats(const float* data, std::size_t n) {
    const auto pos = out_.size();
    out_.resize(pos + n * sizeof(float));
    if (n != 0) std::memcpy(out_.data() + pos, data, n * sizeof(float));
  }

 private:
  std::vector<std::byte>& out_;
};

class Reader {
 public:
  Reader(const std::byte* data, std::size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool value(T* out) {
    if (size_ - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool floats(float* out, std::size_t n) {
    if (n > (size_ - pos_) / sizeof(float)) return false;
    if (n != 0) std::memcpy(out, data_ + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
    return true;
  }

  bool exhausted() const noexcept { return pos_ == size_; }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void write_image(Writer& w, const image::ImageF32& img) {
  w.value<std::int64_t>(img.width());
  w.value<std::int64_t>(img.height());
  w.value<std::int32_t>(img.channels());
  w.floats(img.pixels().data(), img.pixels().size());
}

bool read_image(Reader& r, image::ImageF32* out) {
  std::int64_t width = 0;
  std::int64_t height = 0;
  std::int32_t channels = 0;
  if (!r.value(&width) || !r.value(&height) || !r.value(&channels)) {
    return false;
  }
  if (width < 0 || width > kMaxDim || height < 0 || height > kMaxDim ||
      channels < 1 || channels > kMaxChannels) {
    return false;
  }
  if (width * height > kMaxElements / channels) return false;
  image::ImageF32 img(width, height, channels);
  if (!r.floats(img.pixels().data(), img.pixels().size())) return false;
  *out = std::move(img);
  return true;
}

void write_tensor(Writer& w, const tensor::Tensor& t) {
  w.value<std::uint32_t>(static_cast<std::uint32_t>(t.rank()));
  for (std::size_t i = 0; i < t.rank(); ++i) {
    w.value<std::int64_t>(t.dim(i));
  }
  w.floats(t.data(), static_cast<std::size_t>(t.numel()));
}

bool read_tensor(Reader& r, tensor::Tensor* out) {
  std::uint32_t rank = 0;
  if (!r.value(&rank) || rank > kMaxRank) return false;
  tensor::Shape shape(rank);
  std::int64_t numel = 1;
  for (auto& dim : shape) {
    if (!r.value(&dim) || dim < 0 || dim > kMaxDim) return false;
    if (dim != 0 && numel > kMaxElements / dim) return false;
    numel *= dim;
  }
  tensor::Tensor t(shape);
  if (!r.floats(t.data(), static_cast<std::size_t>(t.numel()))) return false;
  *out = std::move(t);
  return true;
}

}  // namespace

std::vector<std::byte> serialize_encoded(const models::SamEncoded& enc) {
  std::vector<std::byte> out;
  out.reserve(encoded_bytes(enc));
  Writer w(out);
  w.value<std::int64_t>(enc.maps.width);
  w.value<std::int64_t>(enc.maps.height);
  for (const auto& channel : enc.maps.channels) write_image(w, channel);
  write_tensor(w, enc.enc.tokens);
  write_tensor(w, enc.enc.raw_features);
  write_tensor(w, enc.enc.mean_feature);
  w.value<std::int64_t>(enc.enc.grid_h);
  w.value<std::int64_t>(enc.enc.grid_w);
  w.value<std::int32_t>(enc.enc.patch_size);
  return out;
}

std::optional<models::SamEncoded> deserialize_encoded(const std::byte* data,
                                                      std::size_t size) {
  if (data == nullptr && size != 0) return std::nullopt;
  Reader r(data, size);
  models::SamEncoded enc;
  if (!r.value(&enc.maps.width) || !r.value(&enc.maps.height)) {
    return std::nullopt;
  }
  if (enc.maps.width < 0 || enc.maps.width > kMaxDim || enc.maps.height < 0 ||
      enc.maps.height > kMaxDim) {
    return std::nullopt;
  }
  for (auto& channel : enc.maps.channels) {
    if (!read_image(r, &channel)) return std::nullopt;
  }
  if (!read_tensor(r, &enc.enc.tokens) ||
      !read_tensor(r, &enc.enc.raw_features) ||
      !read_tensor(r, &enc.enc.mean_feature)) {
    return std::nullopt;
  }
  std::int32_t patch_size = 0;
  if (!r.value(&enc.enc.grid_h) || !r.value(&enc.enc.grid_w) ||
      !r.value(&patch_size)) {
    return std::nullopt;
  }
  if (enc.enc.grid_h < 0 || enc.enc.grid_h > kMaxDim || enc.enc.grid_w < 0 ||
      enc.enc.grid_w > kMaxDim || patch_size < 0 || patch_size > kMaxDim) {
    return std::nullopt;
  }
  enc.enc.patch_size = static_cast<int>(patch_size);
  if (!r.exhausted()) return std::nullopt;  // trailing garbage = damage
  return enc;
}

std::size_t encoded_bytes(const models::SamEncoded& enc) noexcept {
  std::size_t bytes = sizeof(models::SamEncoded);
  for (const auto& channel : enc.maps.channels) {
    bytes += channel.pixels().size() * sizeof(float);
  }
  bytes += static_cast<std::size_t>(enc.enc.tokens.numel()) * sizeof(float);
  bytes +=
      static_cast<std::size_t>(enc.enc.raw_features.numel()) * sizeof(float);
  bytes +=
      static_cast<std::size_t>(enc.enc.mean_feature.numel()) * sizeof(float);
  return bytes;
}

}  // namespace zenesis::cache
