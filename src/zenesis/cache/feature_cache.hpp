#pragma once
// Backbone feature cache — the surrogate of SAM's "embed once, prompt
// many" usage pattern, generalized across the whole model stack and, with
// the disk tier, across process restarts.
//
// Grounding-DINO + SAM pipelines are dominated by redundant image-encoder
// work: the Zenesis pipeline encodes every slice once for the grounding
// stage and once for the mask stage, the temporal heuristic re-segments
// corrected slices, hierarchical "Further Segment" re-runs the encoders on
// sub-ROIs, and multi-prompt Mode A encodes the same image once per
// prompt. All of those recomputations are memoized here.
//
// Tiers:
//   L1 — ShardedLruCache<SamEncoded>: lock-striped, byte-budgeted,
//        approximate-LRU (see sharded_lru.hpp).
//   L2 — optional DiskStore: CRC-checked records keyed by the same
//        content hash, so a fresh process pointed at the same directory
//        ("warm restart") deserializes embeddings instead of running
//        sam.encode at all. An L2 hit is promoted into L1.
//
// Keying: entries are keyed by (content hash of the AI-ready image,
// content hash of the backbone configuration). Because backbone weights
// are derived procedurally from their config, two backbones with equal
// configs produce bit-identical encodings — so the default pipeline, whose
// DINO and SAM backbones share a config, shares one entry per slice
// between both stages. Feature maps use a fixed smoothing sigma, which is
// folded into the image hash domain.
//
// Stats semantics: `hits` counts L1 hits, `disk_hits` counts L2 hits,
// `misses` counts actual encoder computations — so hit_rate() is the
// fraction of lookups that skipped the encoder, from either tier.
//
// Determinism: a hit returns the exact object a miss would have computed
// (the serializer is bit-exact), so results are byte-identical with the
// cache on, off, sharded, or tiered. All methods are thread-safe;
// concurrent misses of the same key may compute the (identical) value
// twice, and the last insert wins.

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "zenesis/cache/disk_store.hpp"
#include "zenesis/cache/hash.hpp"
#include "zenesis/cache/sharded_lru.hpp"
#include "zenesis/models/sam.hpp"

namespace zenesis::cache {

struct FeatureCacheConfig {
  /// Off switch: when false, every lookup computes a fresh encoding and
  /// no tier or counter is ever touched.
  bool enabled = true;
  /// Maximum resident L1 entries (split across shards); 0 disables the
  /// cache entirely, matching the old single-tier contract.
  std::size_t capacity = 64;
  /// L1 lock stripes (see ShardedCacheConfig::shards).
  std::size_t shards = 8;
  /// L1 byte budget; resident bytes never exceed it.
  std::size_t byte_budget = default_byte_budget();
  /// Directory for the persistent tier; empty = in-memory only. An
  /// unusable path disables the disk tier with a counted error rather
  /// than failing the pipeline.
  std::string disk_path;
};

struct FeatureCacheStats {
  std::uint64_t hits = 0;       ///< L1 hits
  std::uint64_t disk_hits = 0;  ///< L2 hits (deserialized, promoted to L1)
  std::uint64_t misses = 0;     ///< actual encoder computations
  std::uint64_t evictions = 0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t evicted_bytes = 0;
  std::uint64_t oversized_rejects = 0;
  std::uint64_t disk_writes = 0;
  std::uint64_t disk_errors = 0;  ///< write failures + corrupt/stale drops

  /// Fraction of lookups served without running the encoder.
  double hit_rate() const noexcept {
    const std::uint64_t total = hits + disk_hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits + disk_hits) /
                            static_cast<double>(total);
  }
};

/// Content hash (FNV-1a) of an image's pixels and geometry.
std::uint64_t hash_image(const image::ImageF32& img);

/// Content hash of every field that determines a backbone's weights,
/// plus the active numeric precision (tensor::quant) — fp32 and int8
/// runs produce different floats, so their cached/persisted embeddings
/// must live under different keys.
std::uint64_t hash_backbone_config(const models::BackboneConfig& cfg);

class FeatureCache {
 public:
  explicit FeatureCache(const FeatureCacheConfig& cfg = {});

  /// Feature maps + encoder tokens for `img` under `backbone`'s
  /// configuration; computed and inserted on miss, shared on hit.
  std::shared_ptr<const models::SamEncoded> encode(
      const image::ImageF32& img, const models::VisionBackbone& backbone);

  FeatureCacheStats stats() const;
  /// Drops every L1 entry (disk records survive); counters survive too,
  /// matching the old FeatureCache::clear contract.
  void clear();
  const FeatureCacheConfig& config() const noexcept { return cfg_; }

  /// The persistent tier, when configured and usable (tools, tests).
  DiskStore* disk() noexcept { return disk_ ? disk_.get() : nullptr; }

 private:
  FeatureCacheConfig cfg_;
  ShardedLruCache<models::SamEncoded> l1_;
  std::unique_ptr<DiskStore> disk_;
  std::atomic<std::uint64_t> computes_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> disk_open_errors_{0};
};

}  // namespace zenesis::cache
