#pragma once
// zenesis::obs — end-to-end tracing and per-stage metrics.
//
// The serving stack is deeply asynchronous (admission queue, dispatcher,
// fan-out workers, streaming slice decodes); whole-request histograms in
// ServiceStats cannot say *where* a request's time went. This subsystem
// gives every pipeline stage an RAII `Span`, stitches the spans of one
// request across threads with a propagated trace id, and exports the
// result as Chrome trace-event JSON (chrome://tracing, Perfetto) or as
// aggregated per-stage statistics for the Mode-C dashboard.
//
// Hot-path contract:
//   * Disabled (the default): constructing a Span is one relaxed atomic
//     load and a branch. No allocation, no thread registration, no clock
//     read. The suite's determinism/byte-identity guarantees are
//     unaffected either way — tracing observes, never steers.
//   * Enabled (ZENESIS_TRACE=1 in the environment, or set_enabled(true)):
//     each Span end writes one slot of a fixed-capacity thread-local ring
//     buffer. Slots are seqlock-published atomics, so the central
//     TraceCollector snapshots concurrently without any mutex on the
//     recording path; a torn slot is skipped, never misread. The only
//     locks are cold: one registry mutex taken once per thread (first
//     span) and by snapshot readers.
//   * Compiled out (-DZENESIS_OBS=OFF → ZENESIS_OBS_DISABLED): Span and
//     record_span become empty inlines; the instrumentation disappears
//     entirely. Trace-id plumbing (TraceScope/new_trace_id) stays real so
//     serve request ids keep working.
//
// Span names must be string literals (or otherwise immortal): the ring
// stores the pointer, not a copy.
//
// Windowing: the collector retains the last kRingCapacity spans per
// thread. snapshot()/aggregate() cover that retained window since the
// last clear(); overwritten() counts what the window dropped. Dashboards
// therefore show recent-stage timings, not since-boot totals — exactly
// what a live serving dashboard wants.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace zenesis::obs {

// --- runtime toggle ------------------------------------------------------

namespace detail {
/// -1 = uninitialized (consult ZENESIS_TRACE on first query), 0 = off,
/// 1 = on.
extern std::atomic<int> g_state;
bool init_enabled_from_env() noexcept;
}  // namespace detail

/// Whether spans record. Initialized from the ZENESIS_TRACE environment
/// variable ("1"/"on"/"true" enable) on first call; set_enabled overrides.
inline bool enabled() noexcept {
#if defined(ZENESIS_OBS_DISABLED)
  return false;
#else
  const int s = detail::g_state.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return detail::init_enabled_from_env();
#endif
}

/// Runtime override of the ZENESIS_TRACE default (tests, tools).
void set_enabled(bool on) noexcept;

// --- trace-id propagation ------------------------------------------------

/// Allocates a fresh nonzero trace id (e.g. one per serve request).
std::uint64_t new_trace_id() noexcept;

/// The calling thread's current trace id; 0 = no active trace context.
/// Spans stamp this id, which is how one request's spans stitch together
/// across the submit thread, the dispatcher and fan-out workers.
///
/// Out of line on purpose: the id lives in an extern thread_local, and
/// cross-TU inline TLS stores trip a GCC UBSan false positive ("store to
/// null pointer"); keeping every access inside trace.cpp sidesteps it.
/// These run once per task/request, not per span, so the call is cheap.
std::uint64_t current_trace_id() noexcept;

/// RAII trace context: sets the thread-local trace id, restores the
/// previous one on destruction. ThreadPool::submit captures the
/// submitter's id and reinstates it around task execution, so nested
/// parallel work inherits the request context automatically.
class TraceScope {
 public:
  explicit TraceScope(std::uint64_t id) noexcept;
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::uint64_t saved_;
};

// --- recording -----------------------------------------------------------

/// Nanoseconds on the collector's steady clock (epoch = first use).
std::int64_t now_ns() noexcept;

/// One completed span as read out of the ring buffers.
struct SpanEvent {
  const char* name = nullptr;  ///< immortal string (see header comment)
  std::uint64_t trace_id = 0;  ///< 0 = recorded outside any trace context
  std::uint64_t tid = 0;       ///< small per-thread id (1, 2, ...)
  std::int64_t start_ns = 0;   ///< begin, collector clock
  std::int64_t end_ns = 0;     ///< end; always >= start_ns
  std::uint64_t arg = 0;       ///< stage payload (slice index, batch size…)
  std::uint32_t depth = 0;     ///< nesting depth on its thread at begin
};

#if defined(ZENESIS_OBS_DISABLED)

class Span {
 public:
  explicit Span(const char*, std::uint64_t = 0) noexcept {}
  void set_arg(std::uint64_t) noexcept {}
};

inline void record_span(const char*, std::uint64_t, std::int64_t,
                        std::int64_t, std::uint64_t = 0) noexcept {}

#else

/// RAII stage scope: times construction → destruction and records one
/// SpanEvent into the calling thread's ring buffer. Whether the span
/// records is decided once, at construction, so toggling tracing
/// mid-span cannot unbalance the per-thread depth counter.
class Span {
 public:
  explicit Span(const char* name, std::uint64_t arg = 0) noexcept
      : name_(name), arg_(arg), armed_(obs::enabled()) {
    if (armed_) begin();
  }
  ~Span() {
    if (armed_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Updates the payload before the span closes (e.g. hit/miss learned
  /// mid-stage).
  void set_arg(std::uint64_t arg) noexcept { arg_ = arg; }

 private:
  void begin() noexcept;
  void end() noexcept;

  const char* name_;
  std::int64_t start_ = 0;
  std::uint64_t arg_;
  std::uint32_t depth_ = 0;
  bool armed_;
};

/// Records a span with explicit timestamps on the calling thread — for
/// stages whose begin happened on another thread (e.g. serve queue wait:
/// enqueued on the submit thread, measured at dispatch). No-op while
/// tracing is disabled.
void record_span(const char* name, std::uint64_t trace_id,
                 std::int64_t start_ns, std::int64_t end_ns,
                 std::uint64_t arg = 0) noexcept;

#endif  // ZENESIS_OBS_DISABLED

// --- collection / export -------------------------------------------------

/// Aggregated timings of one stage (span name) over the retained window.
struct StageStats {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;

  double mean_us() const noexcept {
    return count == 0 ? 0.0 : total_us / static_cast<double>(count);
  }
};

/// Central sink: owns every thread's ring buffer. All methods are
/// thread-safe; snapshot/aggregate/export never block recorders.
class TraceCollector {
 public:
  /// The process-wide collector every Span records into.
  static TraceCollector& global();

  /// All retained events since the last clear(), across threads, sorted
  /// by start time. Slots being overwritten mid-read are skipped.
  std::vector<SpanEvent> snapshot() const;

  /// Forgets retained events (recording threads are unaffected).
  void clear();

  /// Per-stage aggregation of snapshot().
  std::map<std::string, StageStats> aggregate() const;

  /// Chrome trace-event JSON ("X" complete events; ts/dur in µs; args
  /// carry trace_id/arg/depth). Loadable in chrome://tracing / Perfetto.
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  /// Threads that ever recorded a span (each owns one ring buffer).
  std::size_t threads_seen() const;
  /// Events pushed out of the retained window since the last clear().
  std::uint64_t overwritten() const;

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

 private:
  // Exactly one collector exists (global()); its state lives in trace.cpp
  // so recording threads can reach it without holding a handle.
  TraceCollector() = default;
};

}  // namespace zenesis::obs
