#include "zenesis/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>

namespace zenesis::obs {

namespace detail {

std::atomic<int> g_state{-1};
thread_local std::uint64_t t_trace_id = 0;

bool init_enabled_from_env() noexcept {
  const char* env = std::getenv("ZENESIS_TRACE");
  const bool on = env != nullptr && (std::strcmp(env, "1") == 0 ||
                                     std::strcmp(env, "on") == 0 ||
                                     std::strcmp(env, "true") == 0);
  int expected = -1;
  g_state.compare_exchange_strong(expected, on ? 1 : 0,
                                  std::memory_order_relaxed);
  return g_state.load(std::memory_order_relaxed) != 0;
}

}  // namespace detail

void set_enabled(bool on) noexcept {
#if defined(ZENESIS_OBS_DISABLED)
  (void)on;
#else
  detail::g_state.store(on ? 1 : 0, std::memory_order_relaxed);
#endif
}

std::uint64_t new_trace_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t current_trace_id() noexcept { return detail::t_trace_id; }

TraceScope::TraceScope(std::uint64_t id) noexcept
    : saved_(detail::t_trace_id) {
  detail::t_trace_id = id;
}

TraceScope::~TraceScope() { detail::t_trace_id = saved_; }

std::int64_t now_ns() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

#if !defined(ZENESIS_OBS_DISABLED)

namespace {

/// Retained spans per thread. ~56 bytes per slot; the window is what the
/// dashboard and Chrome export see, old spans fall off the back.
constexpr std::size_t kRingCapacity = 4096;

/// One ring slot. Every field is an atomic written with relaxed order and
/// published by the trailing release store of `seq` (a per-slot seqlock):
/// the owner stores seq = 2h+1 (odd: writing), the payload, then
/// seq = 2h+2 (even: generation h committed). A reader that sees any
/// other seq value around its payload read discards the slot. All-atomic
/// fields keep concurrent snapshotting well-defined (and TSAN-clean)
/// without any lock on the recording path.
struct Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::int64_t> start_ns{0};
  std::atomic<std::int64_t> end_ns{0};
  std::atomic<std::uint64_t> arg{0};
  std::atomic<std::uint32_t> depth{0};
};

/// Single-writer ring: only the owning thread pushes; any thread reads.
struct ThreadBuffer {
  explicit ThreadBuffer(std::uint64_t id) : tid(id), slots(kRingCapacity) {}

  const std::uint64_t tid;
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> head{0};     ///< total pushes (owner-written)
  std::atomic<std::uint64_t> drained{0};  ///< clear() watermark

  void push(const char* name, std::uint64_t trace_id, std::int64_t start_ns,
            std::int64_t end_ns, std::uint64_t arg, std::uint32_t depth) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& s = slots[static_cast<std::size_t>(h % kRingCapacity)];
    s.seq.store(2 * h + 1, std::memory_order_release);
    s.name.store(name, std::memory_order_relaxed);
    s.trace_id.store(trace_id, std::memory_order_relaxed);
    s.start_ns.store(start_ns, std::memory_order_relaxed);
    s.end_ns.store(end_ns, std::memory_order_relaxed);
    s.arg.store(arg, std::memory_order_relaxed);
    s.depth.store(depth, std::memory_order_relaxed);
    s.seq.store(2 * h + 2, std::memory_order_release);
    head.store(h + 1, std::memory_order_release);
  }

  /// Reads logical event `i` (i < head). False when the slot was already
  /// recycled for a newer generation.
  bool read(std::uint64_t i, SpanEvent& out) const {
    const Slot& s = slots[static_cast<std::size_t>(i % kRingCapacity)];
    const std::uint64_t want = 2 * i + 2;
    if (s.seq.load(std::memory_order_acquire) != want) return false;
    out.name = s.name.load(std::memory_order_relaxed);
    out.trace_id = s.trace_id.load(std::memory_order_relaxed);
    out.start_ns = s.start_ns.load(std::memory_order_relaxed);
    out.end_ns = s.end_ns.load(std::memory_order_relaxed);
    out.arg = s.arg.load(std::memory_order_relaxed);
    out.depth = s.depth.load(std::memory_order_relaxed);
    out.tid = tid;
    std::atomic_thread_fence(std::memory_order_acquire);
    return s.seq.load(std::memory_order_relaxed) == want;
  }
};

/// Registry of every thread's buffer. Buffers live for the process
/// lifetime (a worker's spans must outlive the worker), so the registry
/// only grows — bounded by the number of distinct threads ever tracing.
struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::atomic<std::uint64_t> next_tid{1};
};

Registry& registry() {
  static Registry* r = new Registry();  // immortal: recorders may outlive exit
  return *r;
}

thread_local ThreadBuffer* t_buffer = nullptr;
thread_local std::uint32_t t_depth = 0;

ThreadBuffer& local_buffer() {
  if (t_buffer == nullptr) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.push_back(std::make_unique<ThreadBuffer>(
        r.next_tid.fetch_add(1, std::memory_order_relaxed)));
    t_buffer = r.buffers.back().get();
  }
  return *t_buffer;
}

}  // namespace

void Span::begin() noexcept {
  start_ = now_ns();
  depth_ = t_depth++;
}

void Span::end() noexcept {
  --t_depth;
  local_buffer().push(name_, current_trace_id(), start_, now_ns(), arg_,
                      depth_);
}

void record_span(const char* name, std::uint64_t trace_id,
                 std::int64_t start_ns, std::int64_t end_ns,
                 std::uint64_t arg) noexcept {
  if (!enabled()) return;
  local_buffer().push(name, trace_id, start_ns, std::max(start_ns, end_ns),
                      arg, t_depth);
}

#endif  // !ZENESIS_OBS_DISABLED

TraceCollector& TraceCollector::global() {
  static TraceCollector collector;
  return collector;
}

std::vector<SpanEvent> TraceCollector::snapshot() const {
  std::vector<SpanEvent> out;
#if !defined(ZENESIS_OBS_DISABLED)
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& buf : r.buffers) {
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    const std::uint64_t drained = buf->drained.load(std::memory_order_relaxed);
    const std::uint64_t window =
        std::min<std::uint64_t>(head - std::min(head, drained), kRingCapacity);
    for (std::uint64_t i = head - window; i < head; ++i) {
      SpanEvent ev;
      if (buf->read(i, ev)) out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                    : a.end_ns > b.end_ns;
  });
#endif
  return out;
}

void TraceCollector::clear() {
#if !defined(ZENESIS_OBS_DISABLED)
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& buf : r.buffers) {
    buf->drained.store(buf->head.load(std::memory_order_acquire),
                       std::memory_order_relaxed);
  }
#endif
}

std::size_t TraceCollector::threads_seen() const {
#if defined(ZENESIS_OBS_DISABLED)
  return 0;
#else
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.buffers.size();
#endif
}

std::uint64_t TraceCollector::overwritten() const {
#if defined(ZENESIS_OBS_DISABLED)
  return 0;
#else
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::uint64_t lost = 0;
  for (const auto& buf : r.buffers) {
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    const std::uint64_t drained = buf->drained.load(std::memory_order_relaxed);
    const std::uint64_t retained = head - std::min(head, drained);
    if (retained > kRingCapacity) lost += retained - kRingCapacity;
  }
  return lost;
#endif
}

std::map<std::string, StageStats> TraceCollector::aggregate() const {
  std::map<std::string, StageStats> stages;
  for (const SpanEvent& ev : snapshot()) {
    if (ev.name == nullptr) continue;
    StageStats& st = stages[ev.name];
    const double us =
        static_cast<double>(ev.end_ns - ev.start_ns) / 1000.0;
    if (st.count == 0 || us < st.min_us) st.min_us = us;
    if (st.count == 0 || us > st.max_us) st.max_us = us;
    st.count += 1;
    st.total_us += us;
  }
  return stages;
}

namespace {

/// Span names are compile-time literals under our control, but escape
/// defensively so the export is valid JSON no matter what.
void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

std::string TraceCollector::chrome_trace_json() const {
  const std::vector<SpanEvent> events = snapshot();
  std::string out;
  out.reserve(events.size() * 160 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const SpanEvent& ev : events) {
    if (ev.name == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    append_json_escaped(out, ev.name);
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"zenesis\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":1,\"tid\":%llu,\"args\":{"
                  "\"trace_id\":%llu,\"arg\":%llu,\"depth\":%u}}",
                  static_cast<double>(ev.start_ns) / 1000.0,
                  static_cast<double>(ev.end_ns - ev.start_ns) / 1000.0,
                  static_cast<unsigned long long>(ev.tid),
                  static_cast<unsigned long long>(ev.trace_id),
                  static_cast<unsigned long long>(ev.arg), ev.depth);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

void TraceCollector::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  f << chrome_trace_json();
}

}  // namespace zenesis::obs
