#include "zenesis/io/tiff.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <tuple>

namespace zenesis::io {
namespace {

// TIFF tag ids used by the baseline grayscale subset.
constexpr std::uint16_t kTagImageWidth = 256;
constexpr std::uint16_t kTagImageLength = 257;
constexpr std::uint16_t kTagBitsPerSample = 258;
constexpr std::uint16_t kTagCompression = 259;
constexpr std::uint16_t kTagPhotometric = 262;
constexpr std::uint16_t kTagStripOffsets = 273;
constexpr std::uint16_t kTagSamplesPerPixel = 277;
constexpr std::uint16_t kTagRowsPerStrip = 278;
constexpr std::uint16_t kTagStripByteCounts = 279;
constexpr std::uint16_t kTagSampleFormat = 339;

constexpr std::uint16_t kTypeShort = 3;
constexpr std::uint16_t kTypeLong = 4;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("tiff: " + what);
}

/// Cursor over an in-memory TIFF with run-time endianness.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {
    if (bytes_.size() < 8) fail("file too small");
    if (bytes_[0] == 'I' && bytes_[1] == 'I') {
      big_endian_ = false;
    } else if (bytes_[0] == 'M' && bytes_[1] == 'M') {
      big_endian_ = true;
    } else {
      fail("bad byte-order mark");
    }
    if (u16(2) != 42) fail("bad magic number");
  }

  std::uint16_t u16(std::size_t off) const {
    if (off + 2 > bytes_.size()) fail("truncated u16");
    return big_endian_
               ? static_cast<std::uint16_t>((bytes_[off] << 8) | bytes_[off + 1])
               : static_cast<std::uint16_t>(bytes_[off] | (bytes_[off + 1] << 8));
  }

  std::uint32_t u32(std::size_t off) const {
    if (off + 4 > bytes_.size()) fail("truncated u32");
    if (big_endian_) {
      return (static_cast<std::uint32_t>(bytes_[off]) << 24) |
             (static_cast<std::uint32_t>(bytes_[off + 1]) << 16) |
             (static_cast<std::uint32_t>(bytes_[off + 2]) << 8) |
             static_cast<std::uint32_t>(bytes_[off + 3]);
    }
    return static_cast<std::uint32_t>(bytes_[off]) |
           (static_cast<std::uint32_t>(bytes_[off + 1]) << 8) |
           (static_cast<std::uint32_t>(bytes_[off + 2]) << 16) |
           (static_cast<std::uint32_t>(bytes_[off + 3]) << 24);
  }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  bool big_endian() const { return big_endian_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  bool big_endian_ = false;
};

struct Entry {
  std::uint16_t type = 0;
  std::uint32_t count = 0;
  std::size_t value_off = 0;  // offset of the 4-byte value/offset field
};

/// Reads the i-th scalar of a SHORT/LONG entry.
std::uint32_t entry_value(const Reader& r, const Entry& e, std::uint32_t i) {
  if (i >= e.count) fail("entry index out of range");
  if (e.type == kTypeShort) {
    const std::size_t base =
        e.count <= 2 ? e.value_off : static_cast<std::size_t>(r.u32(e.value_off));
    return r.u16(base + 2 * i);
  }
  if (e.type == kTypeLong) {
    const std::size_t base =
        e.count <= 1 ? e.value_off : static_cast<std::size_t>(r.u32(e.value_off));
    return r.u32(base + 4 * i);
  }
  fail("unsupported entry type");
}

template <typename T>
image::AnyImage decode_page(const Reader& r, std::int64_t w, std::int64_t h,
                            const std::vector<std::size_t>& strip_offsets,
                            const std::vector<std::size_t>& strip_counts,
                            std::int64_t rows_per_strip) {
  image::Image<T> img(w, h, 1);
  const std::size_t row_bytes = static_cast<std::size_t>(w) * sizeof(T);
  std::int64_t y = 0;
  for (std::size_t s = 0; s < strip_offsets.size(); ++s) {
    const std::int64_t rows =
        std::min<std::int64_t>(rows_per_strip, h - y);
    if (strip_counts[s] < row_bytes * static_cast<std::size_t>(rows)) {
      fail("strip byte count too small");
    }
    std::size_t off = strip_offsets[s];
    if (off + row_bytes * static_cast<std::size_t>(rows) > r.bytes().size()) {
      fail("strip out of bounds");
    }
    for (std::int64_t row = 0; row < rows; ++row, ++y) {
      for (std::int64_t x = 0; x < w; ++x) {
        T v{};
        if constexpr (sizeof(T) == 1) {
          v = static_cast<T>(r.bytes()[off + static_cast<std::size_t>(x)]);
        } else if constexpr (sizeof(T) == 2) {
          v = static_cast<T>(r.u16(off + 2 * static_cast<std::size_t>(x)));
        } else {
          v = static_cast<T>(r.u32(off + 4 * static_cast<std::size_t>(x)));
        }
        img.at(x, y) = v;
      }
      off += row_bytes;
    }
  }
  return img;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

void put_entry(std::vector<std::uint8_t>& out, std::uint16_t tag,
               std::uint16_t type, std::uint32_t count, std::uint32_t value) {
  put_u16(out, tag);
  put_u16(out, type);
  put_u32(out, count);
  put_u32(out, value);
}

template <typename T>
void append_pixels(std::vector<std::uint8_t>& out, const image::Image<T>& img) {
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      const auto v = static_cast<std::uint32_t>(img.at(x, y));
      out.push_back(static_cast<std::uint8_t>(v & 0xFF));
      if constexpr (sizeof(T) >= 2) {
        out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
      }
      if constexpr (sizeof(T) >= 4) {
        out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
        out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
      }
    }
  }
}

}  // namespace

TiffStack read_tiff_bytes(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  TiffStack stack;
  std::size_t ifd_off = r.u32(4);
  int guard = 0;
  while (ifd_off != 0) {
    if (++guard > 100000) fail("IFD chain loop");
    const std::uint16_t n_entries = r.u16(ifd_off);
    std::int64_t width = 0, height = 0, rows_per_strip = 0;
    int bits = 8, spp = 1, compression = 1, sample_format = 1;
    Entry offsets_e, counts_e;
    bool have_offsets = false, have_counts = false;
    for (std::uint16_t i = 0; i < n_entries; ++i) {
      const std::size_t e_off = ifd_off + 2 + static_cast<std::size_t>(i) * 12;
      const std::uint16_t tag = r.u16(e_off);
      Entry e{r.u16(e_off + 2), r.u32(e_off + 4), e_off + 8};
      switch (tag) {
        case kTagImageWidth:
          width = entry_value(r, e, 0);
          break;
        case kTagImageLength:
          height = entry_value(r, e, 0);
          break;
        case kTagBitsPerSample:
          bits = static_cast<int>(entry_value(r, e, 0));
          break;
        case kTagCompression:
          compression = static_cast<int>(entry_value(r, e, 0));
          break;
        case kTagSamplesPerPixel:
          spp = static_cast<int>(entry_value(r, e, 0));
          break;
        case kTagRowsPerStrip:
          rows_per_strip = entry_value(r, e, 0);
          break;
        case kTagStripOffsets:
          offsets_e = e;
          have_offsets = true;
          break;
        case kTagStripByteCounts:
          counts_e = e;
          have_counts = true;
          break;
        case kTagSampleFormat:
          sample_format = static_cast<int>(entry_value(r, e, 0));
          break;
        default:
          break;  // tags outside the subset are ignored
      }
    }
    if (width <= 0 || height <= 0) fail("missing image dimensions");
    if (compression != 1) fail("only uncompressed TIFF supported");
    if (spp != 1) fail("only single-sample (grayscale) TIFF supported");
    if (sample_format != 1) fail("only unsigned-integer samples supported");
    if (!have_offsets || !have_counts) fail("missing strip tags");
    if (rows_per_strip <= 0) rows_per_strip = height;

    std::vector<std::size_t> strip_offsets(offsets_e.count);
    std::vector<std::size_t> strip_counts(counts_e.count);
    if (offsets_e.count != counts_e.count) fail("strip tag count mismatch");
    for (std::uint32_t i = 0; i < offsets_e.count; ++i) {
      strip_offsets[i] = entry_value(r, offsets_e, i);
      strip_counts[i] = entry_value(r, counts_e, i);
    }

    switch (bits) {
      case 8:
        stack.pages.push_back(decode_page<std::uint8_t>(
            r, width, height, strip_offsets, strip_counts, rows_per_strip));
        break;
      case 16:
        stack.pages.push_back(decode_page<std::uint16_t>(
            r, width, height, strip_offsets, strip_counts, rows_per_strip));
        break;
      case 32:
        stack.pages.push_back(decode_page<std::uint32_t>(
            r, width, height, strip_offsets, strip_counts, rows_per_strip));
        break;
      default:
        fail("unsupported bits per sample");
    }
    ifd_off = r.u32(ifd_off + 2 + static_cast<std::size_t>(n_entries) * 12);
  }
  if (stack.pages.empty()) fail("no pages");
  return stack;
}

TiffStack read_tiff(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail("cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  return read_tiff_bytes(bytes);
}

std::vector<std::uint8_t> write_tiff_bytes(const TiffStack& stack) {
  if (stack.pages.empty()) fail("write: empty stack");
  std::vector<std::uint8_t> out;
  out.reserve(1024);
  out.push_back('I');
  out.push_back('I');
  put_u16(out, 42);
  const std::size_t first_ifd_ptr = out.size();
  put_u32(out, 0);  // patched later

  std::size_t prev_next_ptr = first_ifd_ptr;
  for (const auto& page : stack.pages) {
    const auto [bits, w, h] = std::visit(
        [](const auto& img) -> std::tuple<int, std::int64_t, std::int64_t> {
          using T = std::remove_cvref_t<decltype(img.at(0, 0))>;
          if constexpr (std::is_same_v<T, float>) {
            fail("write: float TIFF not supported; quantize first");
            return {0, 0, 0};
          } else {
            return {static_cast<int>(sizeof(T) * 8), img.width(), img.height()};
          }
        },
        page);
    const bool gray = std::visit(
        [](const auto& img) { return img.channels() == 1; }, page);
    if (!gray) fail("write: grayscale pages only");

    // Pixel data first, then the IFD referring back to it.
    const std::size_t data_off = out.size();
    std::visit(
        [&out](const auto& img) {
          using T = std::remove_cvref_t<decltype(img.at(0, 0))>;
          if constexpr (!std::is_same_v<T, float>) {
            append_pixels(out, img);
          }
        },
        page);
    const std::size_t data_len = out.size() - data_off;
    if (out.size() % 2 != 0) out.push_back(0);  // word-align the IFD

    const std::size_t ifd_off = out.size();
    // Patch the previous IFD's next pointer (or the header).
    std::uint32_t ifd32 = static_cast<std::uint32_t>(ifd_off);
    std::memcpy(out.data() + prev_next_ptr, &ifd32, 4);

    constexpr std::uint16_t kEntries = 10;
    put_u16(out, kEntries);
    put_entry(out, kTagImageWidth, kTypeLong, 1, static_cast<std::uint32_t>(w));
    put_entry(out, kTagImageLength, kTypeLong, 1, static_cast<std::uint32_t>(h));
    put_entry(out, kTagBitsPerSample, kTypeShort, 1,
              static_cast<std::uint32_t>(bits));
    put_entry(out, kTagCompression, kTypeShort, 1, 1);
    put_entry(out, kTagPhotometric, kTypeShort, 1, 1);  // BlackIsZero
    put_entry(out, kTagStripOffsets, kTypeLong, 1,
              static_cast<std::uint32_t>(data_off));
    put_entry(out, kTagSamplesPerPixel, kTypeShort, 1, 1);
    put_entry(out, kTagRowsPerStrip, kTypeLong, 1,
              static_cast<std::uint32_t>(h));
    put_entry(out, kTagStripByteCounts, kTypeLong, 1,
              static_cast<std::uint32_t>(data_len));
    put_entry(out, kTagSampleFormat, kTypeShort, 1, 1);
    prev_next_ptr = out.size();
    put_u32(out, 0);  // next IFD (patched by the following page, if any)
  }
  return out;
}

void write_tiff(const std::string& path, const TiffStack& stack) {
  const auto bytes = write_tiff_bytes(stack);
  std::ofstream f(path, std::ios::binary);
  if (!f) fail("cannot create " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) fail("write failed for " + path);
}

void write_volume_tiff(const std::string& path, const image::VolumeU16& vol) {
  TiffStack stack;
  for (std::int64_t z = 0; z < vol.depth(); ++z) {
    stack.pages.emplace_back(vol.slice(z));
  }
  write_tiff(path, stack);
}

image::VolumeU16 read_volume_tiff_u16(const std::string& path) {
  const TiffStack stack = read_tiff(path);
  image::VolumeU16 vol;
  for (const auto& page : stack.pages) {
    const auto* img = std::get_if<image::ImageU16>(&page);
    if (img == nullptr) fail("read_volume: 16-bit pages expected");
    vol.push_slice(*img);
  }
  return vol;
}

}  // namespace zenesis::io
