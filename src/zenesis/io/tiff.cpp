#include "zenesis/io/tiff.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <type_traits>
#include <utility>

#include "zenesis/io/byte_source.hpp"
#include "zenesis/io/tiff_codec.hpp"
#include "zenesis/io/tiff_stream.hpp"

namespace zenesis::io {
namespace {

// Tag ids / constants mirrored from the parser (tiff_stream.cpp).
constexpr std::uint16_t kTagImageWidth = 256;
constexpr std::uint16_t kTagImageLength = 257;
constexpr std::uint16_t kTagBitsPerSample = 258;
constexpr std::uint16_t kTagCompression = 259;
constexpr std::uint16_t kTagPhotometric = 262;
constexpr std::uint16_t kTagStripOffsets = 273;
constexpr std::uint16_t kTagSamplesPerPixel = 277;
constexpr std::uint16_t kTagRowsPerStrip = 278;
constexpr std::uint16_t kTagStripByteCounts = 279;
constexpr std::uint16_t kTagPredictor = 317;
constexpr std::uint16_t kTagTileWidth = 322;
constexpr std::uint16_t kTagTileLength = 323;
constexpr std::uint16_t kTagTileOffsets = 324;
constexpr std::uint16_t kTagTileByteCounts = 325;
constexpr std::uint16_t kTagSampleFormat = 339;

constexpr std::uint16_t kTypeShort = 3;
constexpr std::uint16_t kTypeLong = 4;
constexpr std::uint16_t kTypeLong8 = 16;

/// PackBits (Apple RLE) compression: runs of >= 2 identical bytes become
/// run packets, everything else literal packets of <= 128 bytes.
std::vector<std::uint8_t> packbits_encode(const std::uint8_t* p,
                                          std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n / 2 + 8);
  std::size_t i = 0;
  while (i < n) {
    std::size_t run = 1;
    while (i + run < n && p[i + run] == p[i] && run < 128) ++run;
    if (run >= 2) {
      out.push_back(static_cast<std::uint8_t>(257 - run));  // 1 - run, as i8
      out.push_back(p[i]);
      i += run;
      continue;
    }
    const std::size_t start = i;
    ++i;
    while (i < n && (i - start) < 128) {
      if (i + 1 < n && p[i] == p[i + 1]) break;  // a run starts here
      ++i;
    }
    out.push_back(static_cast<std::uint8_t>(i - start - 1));
    out.insert(out.end(), p + start, p + i);
  }
  return out;
}

/// Serializer with run-time endianness, BigTIFF awareness and the classic
/// 32-bit offset guard. Data segments are written first, then per-page
/// external arrays, then the IFD that references them.
class TiffWriter {
 public:
  explicit TiffWriter(const TiffWriteOptions& opts)
      : opts_(opts),
        be_(opts.big_endian),
        big_(opts.format == TiffFormat::kBigTiff) {}

  std::vector<std::uint8_t> write(const TiffStack& stack) {
    if (stack.pages.empty()) {
      throw TiffError(TiffErrorKind::kUnsupported, "write: empty stack", 0);
    }
    if ((opts_.layout == TiffLayout::kTiles &&
         (opts_.tile_width < 1 || opts_.tile_height < 1)) ||
        opts_.rows_per_strip < 0) {
      throw TiffError(TiffErrorKind::kUnsupported,
                      "write: invalid strip/tile geometry options", 0);
    }
    if (opts_.predictor != 1 && opts_.predictor != 2) {
      throw TiffError(TiffErrorKind::kUnsupported,
                      "write: predictor must be 1 (none) or 2 (horizontal)",
                      0);
    }
    out_.reserve(1024);
    out_.push_back(be_ ? 'M' : 'I');
    out_.push_back(be_ ? 'M' : 'I');
    put_u16(big_ ? 43 : 42);
    if (big_) {
      put_u16(8);  // offset size
      put_u16(0);  // reserved
    }
    std::uint64_t prev_next_ptr = out_.size();
    put_offset_raw(0);  // first-IFD pointer, patched below

    std::int64_t page_index = 0;
    for (const auto& page : stack.pages) {
      std::visit(
          [&](const auto& img) {
            using T = std::remove_cvref_t<decltype(img.at(0, 0))>;
            if constexpr (std::is_same_v<T, float>) {
              throw TiffError(TiffErrorKind::kUnsupported,
                              "write: float TIFF not supported; quantize first",
                              0, 0, page_index);
            } else {
              prev_next_ptr = write_page<T>(img, prev_next_ptr, page_index);
            }
          },
          page);
      ++page_index;
    }
    return std::move(out_);
  }

 private:
  template <typename T>
  std::uint64_t write_page(const image::Image<T>& img,
                           std::uint64_t prev_next_ptr,
                           std::int64_t page_index) {
    if (img.channels() != 1) {
      throw TiffError(TiffErrorKind::kUnsupported,
                      "write: grayscale pages only", 0, 0, page_index);
    }
    const std::int64_t w = img.width();
    const std::int64_t h = img.height();
    if (w < 1 || h < 1) {
      throw TiffError(TiffErrorKind::kUnsupported, "write: empty page", 0, 0,
                      page_index);
    }

    // --- pixel data, one segment at a time ---
    std::vector<std::uint64_t> seg_offsets, seg_counts;
    std::vector<std::uint8_t> raw;
    const bool tiled = opts_.layout == TiffLayout::kTiles;
    const std::int64_t rps =
        opts_.rows_per_strip > 0 ? std::min(opts_.rows_per_strip, h) : h;
    if (tiled) {
      const std::int64_t tw = opts_.tile_width;
      const std::int64_t th = opts_.tile_height;
      for (std::int64_t y0 = 0; y0 < h; y0 += th) {
        for (std::int64_t x0 = 0; x0 < w; x0 += tw) {
          raw.clear();
          for (std::int64_t r = 0; r < th; ++r) {
            for (std::int64_t ccol = 0; ccol < tw; ++ccol) {
              const std::int64_t x = x0 + ccol, y = y0 + r;
              put_sample<T>(raw, img.contains(x, y) ? img.at(x, y) : T{});
            }
          }
          append_segment(raw, tw, th, static_cast<int>(sizeof(T)),
                         seg_offsets, seg_counts, page_index);
        }
      }
    } else {
      for (std::int64_t y0 = 0; y0 < h; y0 += rps) {
        const std::int64_t rows = std::min(rps, h - y0);
        raw.clear();
        for (std::int64_t r = 0; r < rows; ++r) {
          for (std::int64_t x = 0; x < w; ++x) {
            put_sample<T>(raw, img.at(x, y0 + r));
          }
        }
        append_segment(raw, w, rows, static_cast<int>(sizeof(T)),
                       seg_offsets, seg_counts, page_index);
      }
    }
    if (out_.size() % 2 != 0) out_.push_back(0);  // word-align what follows

    // --- external offset/count arrays (when they don't fit inline) ---
    const std::uint64_t n_segs = seg_offsets.size();
    const std::uint64_t offsets_array =
        put_external_array(seg_offsets, page_index);
    const std::uint64_t counts_array =
        put_external_array(seg_counts, page_index);

    // --- the IFD, entries in ascending tag order ---
    const std::uint64_t ifd_off = out_.size();
    check_classic(ifd_off, page_index);
    patch_offset(prev_next_ptr, ifd_off);

    const bool predicted = opts_.predictor == 2;
    const std::uint16_t n_entries =
        static_cast<std::uint16_t>((tiled ? 11 : 10) + (predicted ? 1 : 0));
    if (big_) {
      put_u64(n_entries);
    } else {
      put_u16(n_entries);
    }
    const auto photometric = static_cast<std::uint64_t>(
        opts_.min_is_white ? 0 : 1);
    std::uint64_t compression = 1;
    switch (opts_.compression) {
      case TiffCompression::kNone: compression = 1; break;
      case TiffCompression::kPackBits: compression = 32773; break;
      case TiffCompression::kLzw: compression = 5; break;
      case TiffCompression::kDeflate: compression = 8; break;
    }
    put_entry_scalar(kTagImageWidth, kTypeLong, static_cast<std::uint64_t>(w),
                     page_index);
    put_entry_scalar(kTagImageLength, kTypeLong, static_cast<std::uint64_t>(h),
                     page_index);
    put_entry_scalar(kTagBitsPerSample, kTypeShort, sizeof(T) * 8, page_index);
    put_entry_scalar(kTagCompression, kTypeShort, compression, page_index);
    put_entry_scalar(kTagPhotometric, kTypeShort, photometric, page_index);
    if (!tiled) {
      put_entry_array(kTagStripOffsets, seg_offsets, offsets_array,
                      page_index);
    }
    put_entry_scalar(kTagSamplesPerPixel, kTypeShort, 1, page_index);
    if (!tiled) {
      put_entry_scalar(kTagRowsPerStrip, kTypeLong,
                       static_cast<std::uint64_t>(rps), page_index);
      put_entry_array(kTagStripByteCounts, seg_counts, counts_array,
                      page_index);
      if (predicted) {
        put_entry_scalar(kTagPredictor, kTypeShort, 2, page_index);
      }
    } else {
      if (predicted) {
        put_entry_scalar(kTagPredictor, kTypeShort, 2, page_index);
      }
      put_entry_scalar(kTagTileWidth, kTypeLong,
                       static_cast<std::uint64_t>(opts_.tile_width),
                       page_index);
      put_entry_scalar(kTagTileLength, kTypeLong,
                       static_cast<std::uint64_t>(opts_.tile_height),
                       page_index);
      put_entry_array(kTagTileOffsets, seg_offsets, offsets_array, page_index);
      put_entry_array(kTagTileByteCounts, seg_counts, counts_array,
                      page_index);
    }
    put_entry_scalar(kTagSampleFormat, kTypeShort, 1, page_index);
    (void)n_segs;

    const std::uint64_t next_ptr = out_.size();
    put_offset_raw(0);  // next IFD, patched by the following page (if any)
    return next_ptr;
  }

  template <typename T>
  void put_sample(std::vector<std::uint8_t>& buf, T v) const {
    auto u = static_cast<std::uint32_t>(v);
    if (opts_.min_is_white) {
      u = static_cast<std::uint32_t>(std::numeric_limits<T>::max()) - u;
    }
    if constexpr (sizeof(T) == 1) {
      buf.push_back(static_cast<std::uint8_t>(u));
    } else if constexpr (sizeof(T) == 2) {
      if (be_) {
        buf.push_back(static_cast<std::uint8_t>(u >> 8));
        buf.push_back(static_cast<std::uint8_t>(u & 0xFF));
      } else {
        buf.push_back(static_cast<std::uint8_t>(u & 0xFF));
        buf.push_back(static_cast<std::uint8_t>(u >> 8));
      }
    } else {
      if (be_) {
        for (int i = 3; i >= 0; --i) {
          buf.push_back(static_cast<std::uint8_t>((u >> (8 * i)) & 0xFF));
        }
      } else {
        for (int i = 0; i < 4; ++i) {
          buf.push_back(static_cast<std::uint8_t>((u >> (8 * i)) & 0xFF));
        }
      }
    }
  }

  /// Predictor (in place on `raw`) then codec, then emit. row_samples/
  /// rows/bps describe the segment geometry the predictor differences
  /// over (tile grid rows for tiles, image rows for strips).
  void append_segment(std::vector<std::uint8_t>& raw,
                      std::int64_t row_samples, std::int64_t rows, int bps,
                      std::vector<std::uint64_t>& offsets,
                      std::vector<std::uint64_t>& counts,
                      std::int64_t page_index) {
    const std::uint64_t off = out_.size();
    check_classic(off, page_index);
    if (opts_.predictor == 2) {
      codec::predictor_apply(raw.data(), row_samples, rows, bps, be_);
    }
    switch (opts_.compression) {
      case TiffCompression::kPackBits: {
        const std::vector<std::uint8_t> packed =
            packbits_encode(raw.data(), raw.size());
        out_.insert(out_.end(), packed.begin(), packed.end());
        counts.push_back(packed.size());
        break;
      }
      case TiffCompression::kLzw: {
        const std::vector<std::uint8_t> packed =
            codec::lzw_encode(raw.data(), raw.size());
        out_.insert(out_.end(), packed.begin(), packed.end());
        counts.push_back(packed.size());
        break;
      }
      case TiffCompression::kDeflate: {
        const std::vector<std::uint8_t> packed =
            codec::zlib_deflate(raw.data(), raw.size());
        out_.insert(out_.end(), packed.begin(), packed.end());
        counts.push_back(packed.size());
        break;
      }
      case TiffCompression::kNone:
        out_.insert(out_.end(), raw.begin(), raw.end());
        counts.push_back(raw.size());
        break;
    }
    offsets.push_back(off);
  }

  /// Writes `values` as an external LONG/LONG8 array when it does not fit
  /// the entry's inline field; returns the array offset (0 = inline).
  std::uint64_t put_external_array(const std::vector<std::uint64_t>& values,
                                   std::int64_t page_index) {
    const std::uint64_t elem = big_ ? 8 : 4;
    if (values.size() * elem <= (big_ ? 8u : 4u)) return 0;
    const std::uint64_t array_off = out_.size();
    check_classic(array_off, page_index);
    for (const std::uint64_t v : values) {
      if (big_) {
        put_u64(v);
      } else {
        check_classic(v, page_index);
        put_u32(static_cast<std::uint32_t>(v));
      }
    }
    return array_off;
  }

  void put_entry_header(std::uint16_t tag, std::uint16_t type,
                        std::uint64_t count) {
    put_u16(tag);
    put_u16(type);
    if (big_) {
      put_u64(count);
    } else {
      put_u32(static_cast<std::uint32_t>(count));
    }
  }

  /// count-1 SHORT/LONG entry with an inline value.
  void put_entry_scalar(std::uint16_t tag, std::uint16_t type,
                        std::uint64_t value, std::int64_t page_index) {
    if (value > 0xFFFFFFFFull ||
        (type == kTypeShort && value > 0xFFFFull)) {
      throw TiffError(TiffErrorKind::kLimitExceeded,
                      "write: tag value out of range", out_.size(), tag,
                      page_index);
    }
    put_entry_header(tag, type, 1);
    const std::size_t field = out_.size();
    if (type == kTypeShort) {
      put_u16(static_cast<std::uint16_t>(value));
    } else {
      put_u32(static_cast<std::uint32_t>(value));
    }
    pad_field(field);
  }

  /// Offset/count array entry: inline when it fits, else a pointer to the
  /// external array written earlier.
  void put_entry_array(std::uint16_t tag,
                       const std::vector<std::uint64_t>& values,
                       std::uint64_t array_off, std::int64_t page_index) {
    const std::uint16_t type = big_ ? kTypeLong8 : kTypeLong;
    put_entry_header(tag, type, values.size());
    const std::size_t field = out_.size();
    if (array_off == 0) {  // inline
      for (const std::uint64_t v : values) {
        if (big_) {
          put_u64(v);
        } else {
          check_classic(v, page_index);
          put_u32(static_cast<std::uint32_t>(v));
        }
      }
    } else {
      put_offset_raw(array_off);
    }
    pad_field(field);
  }

  /// Pads the entry value field to its fixed width (4 or 8 bytes).
  void pad_field(std::size_t field_start) {
    const std::size_t width = big_ ? 8 : 4;
    while (out_.size() - field_start < width) out_.push_back(0);
  }

  void check_classic(std::uint64_t off, std::int64_t page_index) const {
    if (!big_ && off > opts_.classic_offset_limit) {
      throw TiffError(
          TiffErrorKind::kLimitExceeded,
          "write: offset " + std::to_string(off) +
              " exceeds classic TIFF's 32-bit range; write with "
              "TiffFormat::kBigTiff",
          off, 0, page_index);
    }
  }

  void put_u16(std::uint16_t v) {
    if (be_) {
      out_.push_back(static_cast<std::uint8_t>(v >> 8));
      out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    } else {
      out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
      out_.push_back(static_cast<std::uint8_t>(v >> 8));
    }
  }
  void put_u32(std::uint32_t v) {
    if (be_) {
      for (int i = 3; i >= 0; --i) {
        out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
      }
    }
  }
  void put_u64(std::uint64_t v) {
    if (be_) {
      for (int i = 7; i >= 0; --i) {
        out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
      }
    } else {
      for (int i = 0; i < 8; ++i) {
        out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
      }
    }
  }
  /// Appends an offset-sized field (u32 classic / u64 BigTIFF).
  void put_offset_raw(std::uint64_t v) {
    if (big_) {
      put_u64(v);
    } else {
      put_u32(static_cast<std::uint32_t>(v));
    }
  }
  /// Rewrites the offset-sized field at `pos` (IFD chain patching).
  void patch_offset(std::uint64_t pos, std::uint64_t value) {
    std::uint8_t buf[8];
    const int n = big_ ? 8 : 4;
    for (int i = 0; i < n; ++i) {
      const int shift = be_ ? 8 * (n - 1 - i) : 8 * i;
      buf[i] = static_cast<std::uint8_t>((value >> shift) & 0xFF);
    }
    std::memcpy(out_.data() + pos, buf, static_cast<std::size_t>(n));
  }

  TiffWriteOptions opts_;
  bool be_;
  bool big_;
  std::vector<std::uint8_t> out_;
};

/// Non-owning ByteSource so read_tiff_bytes avoids copying its input;
/// view() makes decode zero-copy over the caller's buffer.
class SpanByteSource final : public ByteSource {
 public:
  explicit SpanByteSource(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}
  std::uint64_t size() const override { return bytes_.size(); }
  void read_at(std::uint64_t off, std::uint8_t* dst,
               std::size_t n) const override {
    if (off > bytes_.size() || n > bytes_.size() - off) {
      throw TiffError(TiffErrorKind::kTruncated, "read past end of data", off);
    }
    if (n == 0) return;  // dst may be null for an empty segment
    std::memcpy(dst, bytes_.data() + off, n);
  }
  std::span<const std::uint8_t> view(std::uint64_t off,
                                     std::size_t n) const override {
    if (off > bytes_.size() || n > bytes_.size() - off) {
      throw TiffError(TiffErrorKind::kTruncated, "view past end of data", off);
    }
    return {bytes_.data() + off, n};
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
};

TiffStack materialize(std::shared_ptr<const ByteSource> src,
                      const TiffReadLimits& limits) {
  TiffOpenOptions opts;
  opts.limits = limits;
  const TiffVolumeReader reader = TiffVolumeReader::open(std::move(src), opts);
  // Cumulative allocation bound: a thousand-page stack of limit-sized
  // pages must not exceed the decoded-bytes budget just because each page
  // individually fits.
  std::uint64_t total = 0;
  for (std::int64_t i = 0; i < reader.pages(); ++i) {
    const std::uint64_t page_bytes = reader.page_info(i).decoded_bytes();
    if (page_bytes > limits.max_decoded_bytes - total) {
      throw TiffError(TiffErrorKind::kLimitExceeded,
                      "cumulative decoded size exceeds limit " +
                          std::to_string(limits.max_decoded_bytes),
                      0, 0, i);
    }
    total += page_bytes;
  }
  TiffStack stack;
  stack.pages.reserve(static_cast<std::size_t>(reader.pages()));
  for (std::int64_t i = 0; i < reader.pages(); ++i) {
    stack.pages.push_back(reader.read_page(i));
  }
  return stack;
}

}  // namespace

TiffStack read_tiff_bytes(const std::vector<std::uint8_t>& bytes,
                          const TiffReadLimits& limits) {
  return materialize(std::make_shared<SpanByteSource>(bytes), limits);
}

TiffStack read_tiff(const std::string& path, const TiffReadLimits& limits) {
  return materialize(std::make_shared<PreadByteSource>(path), limits);
}

std::vector<std::uint8_t> write_tiff_bytes(const TiffStack& stack,
                                           const TiffWriteOptions& options) {
  return TiffWriter(options).write(stack);
}

void write_tiff(const std::string& path, const TiffStack& stack,
                const TiffWriteOptions& options) {
  const auto bytes = write_tiff_bytes(stack, options);
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("tiff: cannot create " + path);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!f) throw std::runtime_error("tiff: write failed for " + path);
}

void write_volume_tiff(const std::string& path, const image::VolumeU16& vol,
                       const TiffWriteOptions& options) {
  TiffStack stack;
  for (std::int64_t z = 0; z < vol.depth(); ++z) {
    stack.pages.emplace_back(vol.slice(z));
  }
  write_tiff(path, stack, options);
}

image::VolumeU16 read_volume_tiff_u16(const std::string& path,
                                      const TiffReadLimits& limits) {
  const TiffStack stack = read_tiff(path, limits);
  image::VolumeU16 vol;
  for (const auto& page : stack.pages) {
    const auto* img = std::get_if<image::ImageU16>(&page);
    if (img == nullptr) {
      throw TiffError(TiffErrorKind::kUnsupported,
                      "read_volume: 16-bit pages expected", 0);
    }
    vol.push_slice(*img);
  }
  return vol;
}

}  // namespace zenesis::io
