#pragma once
// Tabular report writers (CSV and a small JSON emitter) used by the
// evaluation dashboard and the benchmark harness to persist results.

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace zenesis::io {

/// A typed cell: string, integer, or double.
using Cell = std::variant<std::string, std::int64_t, double>;

/// A simple in-memory table with named columns.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  const std::vector<std::string>& columns() const noexcept { return columns_; }
  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Appends a row; the cell count must match the column count.
  void add_row(std::vector<Cell> row);

  const std::vector<Cell>& row(std::size_t i) const { return rows_.at(i); }

  /// Renders as CSV (RFC-4180 quoting for strings containing separators).
  std::string to_csv() const;

  /// Renders as a fixed-width ASCII table (the "dashboard" text view).
  std::string to_ascii() const;

  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

/// Formats a cell for humans (6 significant digits for doubles).
std::string format_cell(const Cell& cell);

/// Minimal JSON writer: flat object of key → (string|int|double) plus
/// optional nested arrays of objects. Sufficient for dashboard exports.
class JsonObject {
 public:
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, double value);
  void set_array(const std::string& key, std::vector<JsonObject> items);

  std::string to_string(int indent = 0) const;
  void write(const std::string& path) const;

 private:
  std::map<std::string, Cell> scalars_;
  std::map<std::string, std::vector<JsonObject>> arrays_;
};

/// Escapes a string for JSON output.
std::string json_escape(const std::string& s);

}  // namespace zenesis::io
