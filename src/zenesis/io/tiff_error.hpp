#pragma once
// Error taxonomy and resource limits for the hardened TIFF subsystem.
//
// Ingestion runs on untrusted uploads (the ROADMAP's production-traffic
// north star), so every failure mode is classified and every allocation
// the file can provoke is bounded *before* it happens. The fuzz harness
// in tests/tiff_fuzz_harness.hpp enforces the contract: any input either
// decodes or throws TiffError — nothing else, ever.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace zenesis::io {

/// Classification of everything that can go wrong while reading or
/// writing a TIFF. Kinds are coarse on purpose: callers branch on them
/// (retry / reject-upload / suggest-BigTIFF), the message carries detail.
enum class TiffErrorKind {
  kBadHeader,          ///< not a TIFF: byte-order mark, magic, BigTIFF preamble
  kTruncated,          ///< structure points past the end of the data
  kCorruptIfd,         ///< malformed IFD: cycle, bad entry, count mismatch
  kOffsetOutOfBounds,  ///< strip/tile/array offset outside the file
  kLimitExceeded,      ///< TiffReadLimits violated or arithmetic would overflow
  kUnsupported,        ///< valid TIFF, feature outside the supported subset
};

/// Stable name for a kind ("BadHeader", "Truncated", ...).
const char* to_string(TiffErrorKind kind) noexcept;

/// Carries the kind plus where the problem was detected: absolute byte
/// offset in the file, the tag being processed (0 = none) and the page
/// index (-1 = before the first page). what() embeds all of it.
class TiffError : public std::runtime_error {
 public:
  TiffError(TiffErrorKind kind, const std::string& detail,
            std::uint64_t byte_offset = 0, std::uint16_t tag = 0,
            std::int64_t page = -1);

  TiffErrorKind kind() const noexcept { return kind_; }
  std::uint64_t byte_offset() const noexcept { return byte_offset_; }
  std::uint16_t tag() const noexcept { return tag_; }
  std::int64_t page() const noexcept { return page_; }

 private:
  TiffErrorKind kind_;
  std::uint64_t byte_offset_;
  std::uint16_t tag_;
  std::int64_t page_;
};

/// Hard ceilings enforced while parsing, with overflow-checked arithmetic,
/// so a crafted header can neither bypass bounds checks nor
/// allocation-bomb the process. Defaults fit real FIB-SEM stacks with
/// headroom; services ingesting untrusted uploads should tighten them.
struct TiffReadLimits {
  /// Maximum pages (IFDs) in one file.
  std::uint64_t max_pages = 65536;
  /// Maximum width*height of a single page.
  std::uint64_t max_pixels_per_page = 1ull << 30;  // 1 Gpixel
  /// Maximum bytes the reader may allocate for decoded pixels — per page
  /// for the streaming reader, cumulative for the materializing readers.
  std::uint64_t max_decoded_bytes = 8ull << 30;  // 8 GiB
  /// Maximum entries in one IFD (the spec allows 65535; real grayscale
  /// stacks use ~15).
  std::uint64_t max_ifd_entries = 4096;
};

}  // namespace zenesis::io
