#include "zenesis/io/tiff_stream.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "zenesis/io/tiff_codec.hpp"
#include "zenesis/obs/trace.hpp"
#include "zenesis/parallel/parallel_for.hpp"

namespace zenesis::io {

// ---------------------------------------------------------------------------
// Source-kind selection (ZENESIS_TIFF_SOURCE, warn-once fallback)
// ---------------------------------------------------------------------------

const char* to_string(TiffSourceKind kind) noexcept {
  switch (kind) {
    case TiffSourceKind::kAuto: return "auto";
    case TiffSourceKind::kMemory: return "memory";
    case TiffSourceKind::kPread: return "pread";
    case TiffSourceKind::kMmap: return "mmap";
  }
  return "auto";
}

std::optional<TiffSourceKind> parse_source_kind(std::string_view name) {
  if (name == "auto") return TiffSourceKind::kAuto;
  if (name == "memory") return TiffSourceKind::kMemory;
  if (name == "pread") return TiffSourceKind::kPread;
  if (name == "mmap") return TiffSourceKind::kMmap;
  return std::nullopt;
}

TiffSourceKind resolve_tiff_source_selector(std::string_view value,
                                            std::string* warning) {
  if (const auto kind = parse_source_kind(value)) {
    if (warning != nullptr) warning->clear();
    return *kind;
  }
  if (warning != nullptr) {
    *warning = "unknown ZENESIS_TIFF_SOURCE \"" + std::string(value) +
               "\" (expected auto|memory|pread|mmap); using auto";
  }
  return TiffSourceKind::kAuto;
}

namespace {

std::atomic<int> g_default_kind{-1};
std::once_flag g_source_env_once;
std::once_flag g_mmap_warn_once;

void init_default_kind_from_env() {
  TiffSourceKind kind = TiffSourceKind::kAuto;
  const char* env = std::getenv("ZENESIS_TIFF_SOURCE");
  if (env != nullptr && *env != '\0') {
    std::string warning;
    kind = resolve_tiff_source_selector(env, &warning);
    if (!warning.empty()) {
      std::fprintf(stderr, "zenesis: %s\n", warning.c_str());
    }
  }
  if (kind == TiffSourceKind::kAuto) {
    kind = MmapByteSource::supported() ? TiffSourceKind::kMmap
                                       : TiffSourceKind::kPread;
  }
  g_default_kind.store(static_cast<int>(kind), std::memory_order_relaxed);
}

/// Resolves kAuto and downgrades unsupported mmap to pread, warning
/// once (same contract as the ZENESIS_KERNEL / ZENESIS_PRECISION
/// fallbacks).
TiffSourceKind concrete_source_kind(TiffSourceKind requested) {
  TiffSourceKind kind =
      requested == TiffSourceKind::kAuto ? default_source_kind() : requested;
  if (kind == TiffSourceKind::kMmap && !MmapByteSource::supported()) {
    std::call_once(g_mmap_warn_once, [] {
      std::fprintf(stderr,
                   "zenesis: mmap TIFF source unavailable on this platform; "
                   "using pread\n");
    });
    kind = TiffSourceKind::kPread;
  }
  return kind;
}

std::shared_ptr<const ByteSource> make_file_source(const std::string& path,
                                                   TiffSourceKind kind,
                                                   bool prefetch) {
  switch (kind) {
    case TiffSourceKind::kMemory: {
      // The decompress-whole-file shape: slurp, then parse from RAM.
      PreadByteSource file(path);
      const auto n = static_cast<std::size_t>(file.size());
      std::vector<std::uint8_t> bytes(n);
      if (n > 0) file.read_at(0, bytes.data(), n);
      return std::make_shared<MemoryByteSource>(std::move(bytes));
    }
    case TiffSourceKind::kPread:
      return std::make_shared<PreadByteSource>(path);
    default:
      return std::make_shared<MmapByteSource>(path, prefetch);
  }
}

}  // namespace

TiffSourceKind default_source_kind() {
  std::call_once(g_source_env_once, init_default_kind_from_env);
  return static_cast<TiffSourceKind>(
      g_default_kind.load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

// Tag ids of the supported grayscale subset.
constexpr std::uint16_t kTagImageWidth = 256;
constexpr std::uint16_t kTagImageLength = 257;
constexpr std::uint16_t kTagBitsPerSample = 258;
constexpr std::uint16_t kTagCompression = 259;
constexpr std::uint16_t kTagPhotometric = 262;
constexpr std::uint16_t kTagStripOffsets = 273;
constexpr std::uint16_t kTagSamplesPerPixel = 277;
constexpr std::uint16_t kTagRowsPerStrip = 278;
constexpr std::uint16_t kTagStripByteCounts = 279;
constexpr std::uint16_t kTagPredictor = 317;
constexpr std::uint16_t kTagTileWidth = 322;
constexpr std::uint16_t kTagTileLength = 323;
constexpr std::uint16_t kTagTileOffsets = 324;
constexpr std::uint16_t kTagTileByteCounts = 325;
constexpr std::uint16_t kTagSampleFormat = 339;

constexpr std::uint16_t kTypeShort = 3;
constexpr std::uint16_t kTypeLong = 4;
constexpr std::uint16_t kTypeLong8 = 16;

constexpr int kCompressionNone = 1;
constexpr int kCompressionLzw = 5;
constexpr int kCompressionDeflate = 8;
constexpr int kCompressionDeflateOld = 32946;  ///< pre-6.0 Deflate tag
constexpr int kCompressionPackBits = 32773;

constexpr int kPredictorNone = 1;
constexpr int kPredictorHorizontal = 2;

constexpr int kPhotometricMinIsWhite = 0;
constexpr int kPhotometricBlackIsZero = 1;
constexpr int kPhotometricPalette = 3;

[[noreturn]] void raise(TiffErrorKind kind, const std::string& detail,
                        std::uint64_t off, std::uint16_t tag = 0,
                        std::int64_t page = -1) {
  throw TiffError(kind, detail, off, tag, page);
}

/// a*b with overflow detection: a crafted width/height must not be able to
/// wrap the size arithmetic and sneak past a bounds check.
std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b, const char* what,
                          std::uint64_t off, std::uint16_t tag,
                          std::int64_t page) {
  if (b != 0 && a > std::numeric_limits<std::uint64_t>::max() / b) {
    raise(TiffErrorKind::kLimitExceeded,
          std::string("arithmetic overflow computing ") + what, off, tag, page);
  }
  return a * b;
}

std::uint64_t checked_add(std::uint64_t a, std::uint64_t b, const char* what,
                          std::uint64_t off, std::uint16_t tag,
                          std::int64_t page) {
  if (a > std::numeric_limits<std::uint64_t>::max() - b) {
    raise(TiffErrorKind::kLimitExceeded,
          std::string("arithmetic overflow computing ") + what, off, tag, page);
  }
  return a + b;
}

/// Endianness- and format-aware cursor over a ByteSource. All reads bounds-
/// check through ByteSource::read_at (which throws TiffError{kTruncated}).
struct Cursor {
  const ByteSource* src = nullptr;
  bool be = false;   ///< big-endian byte order
  bool big = false;  ///< BigTIFF (8-byte offsets, 20-byte IFD entries)

  std::uint16_t u16(std::uint64_t off) const {
    std::uint8_t b[2];
    src->read_at(off, b, 2);
    return be ? static_cast<std::uint16_t>((b[0] << 8) | b[1])
              : static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  }
  std::uint32_t u32(std::uint64_t off) const {
    std::uint8_t b[4];
    src->read_at(off, b, 4);
    if (be) {
      return (static_cast<std::uint32_t>(b[0]) << 24) |
             (static_cast<std::uint32_t>(b[1]) << 16) |
             (static_cast<std::uint32_t>(b[2]) << 8) |
             static_cast<std::uint32_t>(b[3]);
    }
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  }
  std::uint64_t u64(std::uint64_t off) const {
    std::uint8_t b[8];
    src->read_at(off, b, 8);
    std::uint64_t v = 0;
    if (be) {
      for (int i = 0; i < 8; ++i) v = (v << 8) | b[i];
    } else {
      for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
    }
    return v;
  }
  /// Reads an offset-sized integer (u32 classic, u64 BigTIFF).
  std::uint64_t offset_at(std::uint64_t off) const {
    return big ? u64(off) : u32(off);
  }
};

struct Entry {
  std::uint16_t tag = 0;
  std::uint16_t type = 0;
  std::uint64_t count = 0;
  std::uint64_t value_off = 0;  ///< offset of the value/offset field
  bool present = false;
};

std::uint64_t type_size(const Cursor& c, const Entry& e, std::int64_t page) {
  switch (e.type) {
    case kTypeShort: return 2;
    case kTypeLong: return 4;
    case kTypeLong8:
      if (!c.big) {
        raise(TiffErrorKind::kCorruptIfd, "LONG8 entry in classic TIFF",
              e.value_off, e.tag, page);
      }
      return 8;
    default:
      raise(TiffErrorKind::kCorruptIfd,
            "unsupported entry type " + std::to_string(e.type), e.value_off,
            e.tag, page);
  }
}

/// Reads the i-th scalar of a SHORT/LONG/LONG8 entry, resolving the
/// inline-vs-external value placement with full bounds checking.
std::uint64_t entry_scalar(const Cursor& c, const Entry& e, std::uint64_t i,
                           std::int64_t page) {
  if (i >= e.count) {
    raise(TiffErrorKind::kCorruptIfd, "entry index out of range", e.value_off,
          e.tag, page);
  }
  const std::uint64_t elem = type_size(c, e, page);
  const std::uint64_t inline_cap = c.big ? 8 : 4;
  const std::uint64_t total =
      checked_mul(e.count, elem, "entry value size", e.value_off, e.tag, page);
  std::uint64_t base = e.value_off;
  if (total > inline_cap) {
    base = c.offset_at(e.value_off);
    const std::uint64_t end =
        checked_add(base, total, "entry value extent", base, e.tag, page);
    if (end > c.src->size()) {
      raise(TiffErrorKind::kOffsetOutOfBounds, "entry value array outside file",
            base, e.tag, page);
    }
  }
  const std::uint64_t off = base + i * elem;  // i < count, extent checked
  switch (elem) {
    case 2: return c.u16(off);
    case 4: return c.u32(off);
    default: return c.u64(off);
  }
}

Cursor open_cursor(const ByteSource& src) {
  Cursor c;
  c.src = &src;
  if (src.size() < 8) raise(TiffErrorKind::kBadHeader, "file too small", 0);
  std::uint8_t bom[2];
  src.read_at(0, bom, 2);
  if (bom[0] == 'I' && bom[1] == 'I') {
    c.be = false;
  } else if (bom[0] == 'M' && bom[1] == 'M') {
    c.be = true;
  } else {
    raise(TiffErrorKind::kBadHeader, "bad byte-order mark", 0);
  }
  const std::uint16_t version = c.u16(2);
  if (version == 42) {
    c.big = false;
  } else if (version == 43) {
    c.big = true;
    if (src.size() < 16) {
      raise(TiffErrorKind::kBadHeader, "BigTIFF header too small", 4);
    }
    if (c.u16(4) != 8) {
      raise(TiffErrorKind::kBadHeader, "BigTIFF offset size must be 8", 4);
    }
    if (c.u16(6) != 0) {
      raise(TiffErrorKind::kBadHeader, "BigTIFF reserved word must be 0", 6);
    }
  } else {
    raise(TiffErrorKind::kBadHeader,
          "bad magic number " + std::to_string(version), 2);
  }
  return c;
}

/// Parses and fully validates one IFD; returns the page plus the next-IFD
/// offset (0 = end of chain).
std::pair<TiffPageInfo, std::uint64_t> parse_ifd(const Cursor& c,
                                                 std::uint64_t ifd_off,
                                                 const TiffReadLimits& limits,
                                                 std::int64_t page) {
  const std::uint64_t n_entries = c.big ? c.u64(ifd_off) : c.u16(ifd_off);
  if (n_entries == 0) {
    raise(TiffErrorKind::kCorruptIfd, "empty IFD", ifd_off, 0, page);
  }
  if (n_entries > limits.max_ifd_entries) {
    raise(TiffErrorKind::kLimitExceeded,
          "IFD entry count " + std::to_string(n_entries) + " exceeds limit " +
              std::to_string(limits.max_ifd_entries),
          ifd_off, 0, page);
  }
  const std::uint64_t entry_size = c.big ? 20 : 12;
  const std::uint64_t entries_base = checked_add(
      ifd_off, c.big ? 8 : 2, "IFD entry table offset", ifd_off, 0, page);
  // The whole table plus the trailing next-IFD pointer must be in bounds
  // before iterating, so a truncated table fails here, not mid-entry.
  const std::uint64_t table_bytes = checked_add(
      checked_mul(n_entries, entry_size, "IFD table size", ifd_off, 0, page),
      c.big ? 8 : 4, "IFD table size", ifd_off, 0, page);
  const std::uint64_t table_end =
      checked_add(entries_base, table_bytes, "IFD table extent", ifd_off, 0,
                  page);
  if (table_end > c.src->size()) {
    raise(TiffErrorKind::kTruncated, "IFD table past end of file", ifd_off, 0,
          page);
  }

  std::uint64_t width = 0, height = 0, rows_per_strip = 0;
  std::uint64_t tile_width = 0, tile_height = 0;
  std::uint64_t bits = 8, spp = 1, compression = kCompressionNone;
  std::uint64_t photometric = kPhotometricBlackIsZero, sample_format = 1;
  std::uint64_t predictor = kPredictorNone;
  Entry strip_offsets_e, strip_counts_e, tile_offsets_e, tile_counts_e;

  for (std::uint64_t i = 0; i < n_entries; ++i) {
    const std::uint64_t e_off = entries_base + i * entry_size;
    Entry e;
    e.tag = c.u16(e_off);
    e.type = c.u16(e_off + 2);
    e.count = c.big ? c.u64(e_off + 4) : c.u32(e_off + 4);
    e.value_off = e_off + (c.big ? 12 : 8);
    e.present = true;
    switch (e.tag) {
      case kTagImageWidth: width = entry_scalar(c, e, 0, page); break;
      case kTagImageLength: height = entry_scalar(c, e, 0, page); break;
      case kTagBitsPerSample: bits = entry_scalar(c, e, 0, page); break;
      case kTagCompression: compression = entry_scalar(c, e, 0, page); break;
      case kTagPhotometric: photometric = entry_scalar(c, e, 0, page); break;
      case kTagSamplesPerPixel: spp = entry_scalar(c, e, 0, page); break;
      case kTagRowsPerStrip: rows_per_strip = entry_scalar(c, e, 0, page); break;
      case kTagPredictor: predictor = entry_scalar(c, e, 0, page); break;
      case kTagSampleFormat: sample_format = entry_scalar(c, e, 0, page); break;
      case kTagStripOffsets: strip_offsets_e = e; break;
      case kTagStripByteCounts: strip_counts_e = e; break;
      case kTagTileWidth: tile_width = entry_scalar(c, e, 0, page); break;
      case kTagTileLength: tile_height = entry_scalar(c, e, 0, page); break;
      case kTagTileOffsets: tile_offsets_e = e; break;
      case kTagTileByteCounts: tile_counts_e = e; break;
      default: break;  // tags outside the subset are ignored
    }
  }

  if (width == 0 || height == 0) {
    raise(TiffErrorKind::kCorruptIfd, "missing or zero image dimensions",
          ifd_off, 0, page);
  }
  const std::uint64_t pixels =
      checked_mul(width, height, "pixel count", ifd_off, 0, page);
  if (pixels > limits.max_pixels_per_page) {
    raise(TiffErrorKind::kLimitExceeded,
          "page pixel count " + std::to_string(pixels) + " exceeds limit " +
              std::to_string(limits.max_pixels_per_page),
          ifd_off, 0, page);
  }
  if (bits != 8 && bits != 16 && bits != 32) {
    raise(TiffErrorKind::kUnsupported,
          "unsupported bits per sample " + std::to_string(bits), ifd_off,
          kTagBitsPerSample, page);
  }
  if (spp != 1) {
    raise(TiffErrorKind::kUnsupported,
          "only single-sample (grayscale) TIFF supported", ifd_off,
          kTagSamplesPerPixel, page);
  }
  if (sample_format != 1) {
    raise(TiffErrorKind::kUnsupported,
          "only unsigned-integer samples supported", ifd_off, kTagSampleFormat,
          page);
  }
  if (compression != kCompressionNone && compression != kCompressionLzw &&
      compression != kCompressionDeflate &&
      compression != kCompressionDeflateOld &&
      compression != kCompressionPackBits) {
    raise(TiffErrorKind::kUnsupported,
          "unsupported compression " + std::to_string(compression), ifd_off,
          kTagCompression, page);
  }
  if (predictor != kPredictorNone && predictor != kPredictorHorizontal) {
    raise(TiffErrorKind::kUnsupported,
          "unsupported predictor " + std::to_string(predictor), ifd_off,
          kTagPredictor, page);
  }
  if (photometric == kPhotometricPalette) {
    raise(TiffErrorKind::kUnsupported, "palette-color TIFF not supported",
          ifd_off, kTagPhotometric, page);
  }
  if (photometric != kPhotometricMinIsWhite &&
      photometric != kPhotometricBlackIsZero) {
    raise(TiffErrorKind::kUnsupported,
          "unsupported photometric interpretation " +
              std::to_string(photometric),
          ifd_off, kTagPhotometric, page);
  }
  const std::uint64_t bytes_per_sample = bits / 8;
  const std::uint64_t decoded =
      checked_mul(pixels, bytes_per_sample, "decoded size", ifd_off, 0, page);
  if (decoded > limits.max_decoded_bytes) {
    raise(TiffErrorKind::kLimitExceeded,
          "decoded page size " + std::to_string(decoded) + " exceeds limit " +
              std::to_string(limits.max_decoded_bytes),
          ifd_off, 0, page);
  }

  TiffPageInfo info;
  info.width = static_cast<std::int64_t>(width);
  info.height = static_cast<std::int64_t>(height);
  info.bits = static_cast<int>(bits);
  info.compression = static_cast<int>(compression);
  info.predictor = static_cast<int>(predictor);
  info.photometric = static_cast<int>(photometric);
  info.big_endian = c.be;

  const bool has_strips = strip_offsets_e.present || strip_counts_e.present;
  const bool has_tiles = tile_offsets_e.present || tile_counts_e.present;
  if (has_strips && has_tiles) {
    raise(TiffErrorKind::kCorruptIfd, "both strip and tile layout present",
          ifd_off, 0, page);
  }
  if (!has_strips && !has_tiles) {
    raise(TiffErrorKind::kCorruptIfd, "missing strip/tile location tags",
          ifd_off, 0, page);
  }

  Entry offsets_e, counts_e;
  std::uint64_t n_segments = 0;
  if (has_tiles) {
    if (!tile_offsets_e.present || !tile_counts_e.present) {
      raise(TiffErrorKind::kCorruptIfd, "incomplete tile tags", ifd_off,
            kTagTileOffsets, page);
    }
    if (tile_width == 0 || tile_height == 0) {
      raise(TiffErrorKind::kCorruptIfd, "missing or zero tile dimensions",
            ifd_off, kTagTileWidth, page);
    }
    // A single decoded tile is bounded like a page, so a crafted tile
    // geometry cannot allocation-bomb the decoder.
    const std::uint64_t tile_pixels = checked_mul(
        tile_width, tile_height, "tile pixel count", ifd_off, kTagTileWidth,
        page);
    if (tile_pixels > limits.max_pixels_per_page ||
        checked_mul(tile_pixels, bytes_per_sample, "tile size", ifd_off,
                    kTagTileWidth, page) > limits.max_decoded_bytes) {
      raise(TiffErrorKind::kLimitExceeded, "tile dimensions exceed limits",
            ifd_off, kTagTileWidth, page);
    }
    const std::uint64_t across = (width + tile_width - 1) / tile_width;
    const std::uint64_t down = (height + tile_height - 1) / tile_height;
    n_segments = checked_mul(across, down, "tile count", ifd_off,
                             kTagTileOffsets, page);
    info.tiled = true;
    info.tile_width = static_cast<std::int64_t>(tile_width);
    info.tile_height = static_cast<std::int64_t>(tile_height);
    offsets_e = tile_offsets_e;
    counts_e = tile_counts_e;
  } else {
    if (!strip_offsets_e.present || !strip_counts_e.present) {
      raise(TiffErrorKind::kCorruptIfd, "incomplete strip tags", ifd_off,
            kTagStripOffsets, page);
    }
    if (rows_per_strip == 0 || rows_per_strip > height) rows_per_strip = height;
    n_segments = (height + rows_per_strip - 1) / rows_per_strip;
    info.rows_per_strip = static_cast<std::int64_t>(rows_per_strip);
    offsets_e = strip_offsets_e;
    counts_e = strip_counts_e;
  }

  if (offsets_e.count != n_segments || counts_e.count != n_segments) {
    raise(TiffErrorKind::kCorruptIfd,
          "strip/tile tag count mismatch (expected " +
              std::to_string(n_segments) + ", offsets " +
              std::to_string(offsets_e.count) + ", counts " +
              std::to_string(counts_e.count) + ")",
          ifd_off, offsets_e.tag, page);
  }

  info.segment_offsets.resize(static_cast<std::size_t>(n_segments));
  info.segment_counts.resize(static_cast<std::size_t>(n_segments));
  for (std::uint64_t i = 0; i < n_segments; ++i) {
    const std::uint64_t off = entry_scalar(c, offsets_e, i, page);
    const std::uint64_t cnt = entry_scalar(c, counts_e, i, page);
    const std::uint64_t end =
        checked_add(off, cnt, "segment extent", off, offsets_e.tag, page);
    if (end > c.src->size()) {
      raise(TiffErrorKind::kOffsetOutOfBounds,
            "strip/tile data outside file", off, offsets_e.tag, page);
    }
    // Bounds the transient compressed-segment buffer the decoder reads.
    if (cnt > limits.max_decoded_bytes) {
      raise(TiffErrorKind::kLimitExceeded, "segment byte count exceeds limit",
            off, counts_e.tag, page);
    }
    info.segment_offsets[static_cast<std::size_t>(i)] = off;
    info.segment_counts[static_cast<std::size_t>(i)] = cnt;
  }

  const std::uint64_t next =
      c.offset_at(entries_base + n_entries * entry_size);
  return {std::move(info), next};
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// PackBits (Apple RLE) decompression into an exact-size output. Corrupt
/// streams throw rather than over- or under-filling the buffer; every
/// iteration consumes input, so the loop terminates on any byte sequence.
void packbits_decode(const std::uint8_t* in, std::size_t in_size,
                     std::uint8_t* out, std::size_t out_size,
                     std::uint64_t src_off, std::int64_t page) {
  std::size_t ip = 0, op = 0;
  while (op < out_size) {
    if (ip >= in_size) {
      raise(TiffErrorKind::kTruncated, "PackBits stream exhausted",
            src_off + ip, 0, page);
    }
    const auto ctl = static_cast<std::int8_t>(in[ip++]);
    if (ctl >= 0) {
      const std::size_t n = static_cast<std::size_t>(ctl) + 1;
      if (ip + n > in_size) {
        raise(TiffErrorKind::kTruncated, "PackBits literal past input end",
              src_off + ip, 0, page);
      }
      if (op + n > out_size) {
        raise(TiffErrorKind::kCorruptIfd, "PackBits output overrun",
              src_off + ip, 0, page);
      }
      std::memcpy(out + op, in + ip, n);
      ip += n;
      op += n;
    } else if (ctl != -128) {  // -128 is a no-op per the spec
      const std::size_t n = static_cast<std::size_t>(1 - ctl);
      if (ip >= in_size) {
        raise(TiffErrorKind::kTruncated, "PackBits run past input end",
              src_off + ip, 0, page);
      }
      if (op + n > out_size) {
        raise(TiffErrorKind::kCorruptIfd, "PackBits output overrun",
              src_off + ip, 0, page);
      }
      std::memset(out + op, in[ip++], n);
      op += n;
    }
  }
}

/// Loads segment `s` of `info` (exactly `required` decoded bytes) and
/// returns a pointer to them: straight into the source's zero-copy view
/// when one exists and no transform is needed, otherwise into `dst`.
/// `row_samples`/`rows` describe the segment's row geometry for the
/// predictor; `scratch` is a reusable compressed-input staging buffer
/// for sources without views.
const std::uint8_t* load_segment(const ByteSource& src,
                                 const TiffPageInfo& info, std::size_t s,
                                 std::uint8_t* dst, std::size_t required,
                                 std::int64_t row_samples, std::int64_t rows,
                                 std::vector<std::uint8_t>& scratch,
                                 std::int64_t page) {
  const std::uint64_t off = info.segment_offsets[s];
  const std::uint64_t cnt = info.segment_counts[s];
  const bool predicted = info.predictor == kPredictorHorizontal;
  const int bps = info.bits / 8;

  if (info.compression == kCompressionNone) {
    if (cnt < required) {
      raise(TiffErrorKind::kCorruptIfd,
            "strip/tile byte count smaller than decoded size", off, 0, page);
    }
    const std::span<const std::uint8_t> v = src.view(off, required);
    if (!v.empty() && !predicted) {
      return v.data();  // zero-copy: samples convert straight from the map
    }
    if (!v.empty()) {
      std::memcpy(dst, v.data(), required);
    } else {
      src.read_at(off, dst, required);
    }
    if (predicted) {
      codec::predictor_undo(dst, row_samples, rows, bps, info.big_endian);
    }
    return dst;
  }

  // Compressed: feed the decompressor from the view when the source has
  // one (no staging copy), else stage through scratch.
  const std::uint8_t* in;
  const auto in_size = static_cast<std::size_t>(cnt);
  const std::span<const std::uint8_t> v = src.view(off, in_size);
  if (!v.empty()) {
    in = v.data();
  } else {
    scratch.resize(in_size);
    src.read_at(off, scratch.data(), in_size);
    in = scratch.data();
  }
  switch (info.compression) {
    case kCompressionPackBits:
      packbits_decode(in, in_size, dst, required, off, page);
      break;
    case kCompressionLzw:
      codec::lzw_decode(in, in_size, dst, required, off, page);
      break;
    default:  // kCompressionDeflate / kCompressionDeflateOld
      codec::zlib_inflate(in, in_size, dst, required, off, page);
      break;
  }
  if (predicted) {
    codec::predictor_undo(dst, row_samples, rows, bps, info.big_endian);
  }
  return dst;
}

template <typename T>
T sample_at(const std::uint8_t* p, bool be) {
  if constexpr (sizeof(T) == 1) {
    return *p;
  } else if constexpr (sizeof(T) == 2) {
    return be ? static_cast<T>((p[0] << 8) | p[1])
              : static_cast<T>(p[0] | (p[1] << 8));
  } else {
    if (be) {
      return (static_cast<T>(p[0]) << 24) | (static_cast<T>(p[1]) << 16) |
             (static_cast<T>(p[2]) << 8) | static_cast<T>(p[3]);
    }
    return static_cast<T>(p[0]) | (static_cast<T>(p[1]) << 8) |
           (static_cast<T>(p[2]) << 16) | (static_cast<T>(p[3]) << 24);
  }
}

template <typename T>
image::Image<T> decode_typed(const ByteSource& src, const TiffPageInfo& info,
                             std::int64_t page) {
  const std::int64_t w = info.width;
  const std::int64_t h = info.height;
  image::Image<T> img(w, h, 1);
  const std::span<T> px = img.pixels();
  const bool be = info.big_endian;
  const bool invert = info.photometric == kPhotometricMinIsWhite;
  const std::size_t bps = sizeof(T);
  std::vector<std::uint8_t> seg;
  std::vector<std::uint8_t> scratch;

  const auto store = [&](std::int64_t x, std::int64_t y,
                         const std::uint8_t* p) {
    T v = sample_at<T>(p, be);
    if (invert) v = static_cast<T>(std::numeric_limits<T>::max() - v);
    px[static_cast<std::size_t>(y * w + x)] = v;
  };

  if (info.tiled) {
    const std::int64_t tw = info.tile_width;
    const std::int64_t th = info.tile_height;
    const std::int64_t across = (w + tw - 1) / tw;
    const std::int64_t down = (h + th - 1) / th;
    const std::size_t tile_bytes =
        static_cast<std::size_t>(tw) * static_cast<std::size_t>(th) * bps;
    seg.resize(tile_bytes);
    for (std::int64_t ty = 0; ty < down; ++ty) {
      for (std::int64_t tx = 0; tx < across; ++tx) {
        const auto s = static_cast<std::size_t>(ty * across + tx);
        const std::uint8_t* data = load_segment(src, info, s, seg.data(),
                                                tile_bytes, tw, th, scratch,
                                                page);
        const std::int64_t y0 = ty * th;
        const std::int64_t x0 = tx * tw;
        const std::int64_t rows = std::min<std::int64_t>(th, h - y0);
        const std::int64_t cols = std::min<std::int64_t>(tw, w - x0);
        for (std::int64_t r = 0; r < rows; ++r) {
          const std::uint8_t* row =
              data + static_cast<std::size_t>(r * tw) * bps;
          for (std::int64_t ccol = 0; ccol < cols; ++ccol) {
            store(x0 + ccol, y0 + r,
                  row + static_cast<std::size_t>(ccol) * bps);
          }
        }
      }
    }
    return img;
  }

  const std::int64_t rps = info.rows_per_strip;
  const std::size_t row_bytes = static_cast<std::size_t>(w) * bps;
  std::int64_t y = 0;
  for (std::size_t s = 0; s < info.segment_offsets.size(); ++s) {
    const std::int64_t rows = std::min<std::int64_t>(rps, h - y);
    const std::size_t required = row_bytes * static_cast<std::size_t>(rows);
    seg.resize(required);
    const std::uint8_t* data =
        load_segment(src, info, s, seg.data(), required, w, rows, scratch,
                     page);
    for (std::int64_t r = 0; r < rows; ++r, ++y) {
      const std::uint8_t* row =
          data + static_cast<std::size_t>(r) * row_bytes;
      for (std::int64_t x = 0; x < w; ++x) {
        store(x, y, row + static_cast<std::size_t>(x) * bps);
      }
    }
  }
  return img;
}

std::vector<TiffPageInfo> parse_pages_impl(const ByteSource& source,
                                           const TiffReadLimits& limits) {
  const Cursor c = open_cursor(source);
  std::uint64_t ifd_off = c.big ? c.u64(8) : c.u32(4);
  std::vector<TiffPageInfo> pages;
  // Visited-offset tracking: a cyclic next-IFD chain (2-page self-loop,
  // pointer back into an earlier IFD, ...) fails on its first repeat
  // instead of looping or decoding thousands of phantom pages.
  std::unordered_set<std::uint64_t> visited;
  while (ifd_off != 0) {
    const auto page = static_cast<std::int64_t>(pages.size());
    if (!visited.insert(ifd_off).second) {
      raise(TiffErrorKind::kCorruptIfd, "cycle in IFD chain", ifd_off, 0,
            page);
    }
    if (pages.size() >= limits.max_pages) {
      raise(TiffErrorKind::kLimitExceeded,
            "page count exceeds limit " + std::to_string(limits.max_pages),
            ifd_off, 0, page);
    }
    auto [info, next] = parse_ifd(c, ifd_off, limits, page);
    pages.push_back(std::move(info));
    ifd_off = next;
  }
  if (pages.empty()) {
    raise(TiffErrorKind::kCorruptIfd, "no pages", c.big ? 8 : 4);
  }
  return pages;
}

image::AnyImage decode_page_impl(const ByteSource& source,
                                 const TiffPageInfo& info,
                                 const TiffReadLimits& limits,
                                 std::int64_t page_index) {
  if (info.decoded_bytes() > limits.max_decoded_bytes) {
    raise(TiffErrorKind::kLimitExceeded, "decoded page size exceeds limit", 0,
          0, page_index);
  }
  switch (info.bits) {
    case 8: return decode_typed<std::uint8_t>(source, info, page_index);
    case 16: return decode_typed<std::uint16_t>(source, info, page_index);
    case 32: return decode_typed<std::uint32_t>(source, info, page_index);
    default:
      raise(TiffErrorKind::kUnsupported,
            "unsupported bits per sample " + std::to_string(info.bits), 0, 0,
            page_index);
  }
}

}  // namespace

namespace detail {

std::vector<TiffPageInfo> parse_tiff_pages(const ByteSource& source,
                                           const TiffReadLimits& limits) {
  return parse_pages_impl(source, limits);
}

image::AnyImage decode_tiff_page(const ByteSource& source,
                                 const TiffPageInfo& info,
                                 const TiffReadLimits& limits,
                                 std::int64_t page_index) {
  return decode_page_impl(source, info, limits, page_index);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// TiffVolumeReader
// ---------------------------------------------------------------------------

TiffVolumeReader TiffVolumeReader::open(const std::string& path,
                                        const TiffOpenOptions& options) {
  const TiffSourceKind kind = concrete_source_kind(options.source_kind);
  return TiffVolumeReader(make_file_source(path, kind, options.prefetch),
                          options, kind);
}

TiffVolumeReader TiffVolumeReader::open(std::vector<std::uint8_t> bytes,
                                        const TiffOpenOptions& options) {
  return TiffVolumeReader(
      std::make_shared<MemoryByteSource>(std::move(bytes)), options,
      TiffSourceKind::kMemory);
}

TiffVolumeReader TiffVolumeReader::open(
    std::shared_ptr<const ByteSource> source, const TiffOpenOptions& options) {
  return TiffVolumeReader(std::move(source), options,
                          TiffSourceKind::kMemory);
}

TiffVolumeReader::TiffVolumeReader(std::shared_ptr<const ByteSource> source,
                                   const TiffOpenOptions& options,
                                   TiffSourceKind resolved)
    : source_(std::move(source)),
      limits_(options.limits),
      resolved_kind_(resolved) {
  if (!source_) {
    throw std::invalid_argument("TiffVolumeReader: null byte source");
  }
  pages_ = parse_pages_impl(*source_, limits_);
}

TiffVolumeReader::TiffVolumeReader(const std::string& path,
                                   TiffReadLimits limits)
    : TiffVolumeReader(
          open(path, TiffOpenOptions{TiffSourceKind::kAuto, limits, true})) {}

TiffVolumeReader TiffVolumeReader::from_bytes(std::vector<std::uint8_t> bytes,
                                              TiffReadLimits limits) {
  return open(std::move(bytes),
              TiffOpenOptions{TiffSourceKind::kMemory, limits, true});
}

TiffVolumeReader::TiffVolumeReader(std::shared_ptr<const ByteSource> source,
                                   TiffReadLimits limits)
    : TiffVolumeReader(std::move(source),
                       TiffOpenOptions{TiffSourceKind::kMemory, limits, true},
                       TiffSourceKind::kMemory) {}

const TiffPageInfo& TiffVolumeReader::page_info(std::int64_t page) const {
  if (page < 0 || page >= pages()) {
    throw std::out_of_range("TiffVolumeReader: page index out of range");
  }
  return pages_[static_cast<std::size_t>(page)];
}

bool TiffVolumeReader::uniform_geometry() const noexcept {
  for (const auto& p : pages_) {
    if (p.width != pages_.front().width || p.height != pages_.front().height ||
        p.bits != pages_.front().bits) {
      return false;
    }
  }
  return true;
}

void TiffVolumeReader::require_uniform_geometry() const {
  if (!uniform_geometry()) {
    raise(TiffErrorKind::kUnsupported,
          "pages differ in geometry/depth; volume streaming requires a "
          "uniform stack",
          0);
  }
}

image::AnyImage TiffVolumeReader::read_page(std::int64_t page) const {
  obs::Span span("tiff.read_page", static_cast<std::uint64_t>(page));
  return decode_page_impl(*source_, page_info(page), limits_, page);
}

image::ImageU16 TiffVolumeReader::read_page_u16(std::int64_t page) const {
  image::AnyImage img = read_page(page);
  auto* u16 = std::get_if<image::ImageU16>(&img);
  if (u16 == nullptr) {
    raise(TiffErrorKind::kUnsupported, "16-bit page expected", 0, 0, page);
  }
  return std::move(*u16);
}

image::VolumeU16 TiffVolumeReader::read_volume_u16() const {
  require_uniform_geometry();
  std::uint64_t total = 0;
  for (const auto& p : pages_) {
    total = checked_add(total, p.decoded_bytes(), "volume size", 0, 0, -1);
  }
  if (total > limits_.max_decoded_bytes) {
    raise(TiffErrorKind::kLimitExceeded,
          "materialized volume size " + std::to_string(total) +
              " exceeds limit " + std::to_string(limits_.max_decoded_bytes) +
              "; stream pages instead",
          0);
  }
  // Pages are independent: decode them on the pool (each read_page call
  // records its own tiff.read_page span), then assemble in order.
  const std::int64_t n = pages();
  std::vector<image::ImageU16> slices(static_cast<std::size_t>(n));
  parallel::parallel_for(0, n, [&](std::int64_t z) {
    slices[static_cast<std::size_t>(z)] = read_page_u16(z);
  });
  image::VolumeU16 vol;
  for (auto& slice : slices) {
    vol.push_slice(std::move(slice));
  }
  return vol;
}

}  // namespace zenesis::io
