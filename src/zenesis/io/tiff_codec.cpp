#include "zenesis/io/tiff_codec.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <string>
#include <unordered_map>

#include "zenesis/io/tiff_error.hpp"

namespace zenesis::io::codec {
namespace {

[[noreturn]] void raise(TiffErrorKind kind, const std::string& detail,
                        std::uint64_t off, std::int64_t page) {
  throw TiffError(kind, detail, off, 0, page);
}

// ---------------------------------------------------------------------------
// LZW (TIFF flavor: MSB-first code packing, early code-width change)
// ---------------------------------------------------------------------------

constexpr std::uint32_t kLzwClear = 256;
constexpr std::uint32_t kLzwEoi = 257;
constexpr std::uint32_t kLzwFirst = 258;
constexpr std::uint32_t kLzwTableSize = 4096;
// Encoder emits a Clear before the table becomes unaddressable at the
// 12-bit ceiling (mirrors libtiff, which resets near 4094).
constexpr std::uint32_t kLzwClearAt = 4094;

struct BitReaderMsb {
  const std::uint8_t* in;
  std::size_t n;
  std::uint64_t src_off;
  std::int64_t page;
  std::size_t pos = 0;
  std::uint32_t acc = 0;
  int cnt = 0;

  std::uint32_t read(int width) {
    while (cnt < width) {
      if (pos >= n) {
        raise(TiffErrorKind::kTruncated, "LZW stream exhausted",
              src_off + pos, page);
      }
      acc = (acc << 8) | in[pos++];
      cnt += 8;
    }
    cnt -= width;
    return (acc >> cnt) & ((1u << width) - 1u);
  }
};

struct BitWriterMsb {
  std::vector<std::uint8_t> out;
  std::uint32_t acc = 0;
  int cnt = 0;

  void put(std::uint32_t code, int width) {
    acc = (acc << width) | (code & ((1u << width) - 1u));
    cnt += width;
    while (cnt >= 8) {
      cnt -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> cnt) & 0xFF));
    }
  }
  std::vector<std::uint8_t> finish() {
    if (cnt > 0) {
      out.push_back(static_cast<std::uint8_t>((acc << (8 - cnt)) & 0xFF));
      cnt = 0;
    }
    return std::move(out);
  }
};

}  // namespace

void lzw_decode(const std::uint8_t* in, std::size_t in_size,
                std::uint8_t* out, std::size_t out_size,
                std::uint64_t src_off, std::int64_t page) {
  BitReaderMsb br{in, in_size, src_off, page, 0, 0, 0};
  std::array<std::uint16_t, kLzwTableSize> prefix{};
  std::array<std::uint8_t, kLzwTableSize> suffix{};
  std::array<std::uint8_t, kLzwTableSize> stack{};
  int width = 9;
  std::uint32_t next = kLzwFirst;
  std::int32_t old_code = -1;
  std::size_t op = 0;

  while (op < out_size) {
    const std::uint32_t code = br.read(width);
    if (code == kLzwClear) {
      width = 9;
      next = kLzwFirst;
      old_code = -1;
      continue;
    }
    if (code == kLzwEoi) {
      raise(TiffErrorKind::kTruncated, "LZW stream ended before decoded size",
            src_off + br.pos, page);
    }
    if (old_code < 0) {  // first code after a Clear must be a root
      if (code > 255) {
        raise(TiffErrorKind::kCorruptIfd, "LZW code before dictionary exists",
              src_off + br.pos, page);
      }
      out[op++] = static_cast<std::uint8_t>(code);
      old_code = static_cast<std::int32_t>(code);
      continue;
    }
    // KwKwK: the one code allowed to reference the entry being defined.
    std::uint32_t c = code;
    bool kwkwk = false;
    if (c >= next) {
      if (c != next || next >= kLzwTableSize) {
        raise(TiffErrorKind::kCorruptIfd, "LZW code out of table range",
              src_off + br.pos, page);
      }
      kwkwk = true;
      c = static_cast<std::uint32_t>(old_code);
    }
    std::size_t sp = 0;
    while (c >= kLzwFirst) {  // chains terminate at a root by construction
      stack[sp++] = suffix[c];
      c = prefix[c];
    }
    const auto first = static_cast<std::uint8_t>(c);
    stack[sp++] = first;
    const std::size_t len = sp + (kwkwk ? 1 : 0);
    if (op + len > out_size) {
      raise(TiffErrorKind::kCorruptIfd, "LZW output overrun",
            src_off + br.pos, page);
    }
    while (sp > 0) out[op++] = stack[--sp];
    if (kwkwk) out[op++] = first;
    if (next < kLzwTableSize) {
      prefix[next] = static_cast<std::uint16_t>(old_code);
      suffix[next] = first;
      ++next;
      if (next == (1u << width) - 1u && width < 12) ++width;  // early change
    }
    old_code = static_cast<std::int32_t>(code);
  }
}

std::vector<std::uint8_t> lzw_encode(const std::uint8_t* p, std::size_t n) {
  BitWriterMsb bw;
  std::unordered_map<std::uint32_t, std::uint16_t> table;
  table.reserve(kLzwTableSize);
  int width = 9;
  std::uint32_t next = kLzwFirst;
  // The decoder's table lags the encoder's by one entry, so the early
  // change lands one entry later here (next == 2^w) than in lzw_decode
  // (next == 2^w - 1) — that offset is what keeps the widths in
  // lockstep on the wire.
  const auto bump = [&] {
    ++next;
    if (next == (1u << width) && width < 12) ++width;
  };
  bw.put(kLzwClear, width);
  if (n == 0) {
    bw.put(kLzwEoi, width);
    return bw.finish();
  }
  std::uint32_t cur = p[0];
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint32_t key = (cur << 8) | p[i];
    const auto it = table.find(key);
    if (it != table.end()) {
      cur = it->second;
      continue;
    }
    bw.put(cur, width);
    table.emplace(key, static_cast<std::uint16_t>(next));
    bump();
    cur = p[i];
    if (next >= kLzwClearAt) {
      bw.put(kLzwClear, width);
      table.clear();
      width = 9;
      next = kLzwFirst;
    }
  }
  bw.put(cur, width);
  bump();  // a compliant decoder grows the table (and width) here too
  bw.put(kLzwEoi, width);
  return bw.finish();
}

// ---------------------------------------------------------------------------
// Deflate / zlib (RFC 1950 + 1951)
// ---------------------------------------------------------------------------

namespace {

constexpr int kMaxBits = 15;

// Length codes 257..285 and distance codes 0..29 (RFC 1951 §3.2.5).
constexpr std::uint16_t kLenBase[29] = {
    3,  4,  5,  6,  7,  8,  9,  10, 11,  13,  15,  17,  19,  23, 27,
    31, 35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::uint8_t kLenExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1,
                                        1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
                                        4, 4, 4, 4, 5, 5, 5, 5, 0};
constexpr std::uint16_t kDistBase[30] = {
    1,    2,    3,    4,    5,    7,     9,     13,    17,    25,
    33,   49,   65,   97,   129,  193,   257,   385,   513,   769,
    1025, 1537, 2049, 3073, 4097, 6145,  8193,  12289, 16385, 24577};
constexpr std::uint8_t kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                         4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                         9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

struct BitReaderLsb {
  const std::uint8_t* in;
  std::size_t n;
  std::uint64_t src_off;
  std::int64_t page;
  std::size_t pos = 0;
  std::uint32_t acc = 0;
  int cnt = 0;

  int bit() {
    if (cnt == 0) {
      if (pos >= n) {
        raise(TiffErrorKind::kTruncated, "deflate stream exhausted",
              src_off + pos, page);
      }
      acc = in[pos++];
      cnt = 8;
    }
    const int b = static_cast<int>(acc & 1u);
    acc >>= 1;
    --cnt;
    return b;
  }
  std::uint32_t bits(int k) {
    std::uint32_t v = 0;
    for (int i = 0; i < k; ++i) {
      v |= static_cast<std::uint32_t>(bit()) << i;
    }
    return v;
  }
  void align() {
    acc = 0;
    cnt = 0;
  }
};

/// Canonical Huffman table in puff-style count/symbol form.
struct Huffman {
  std::array<std::uint16_t, kMaxBits + 1> count{};
  std::array<std::uint16_t, 288> symbol{};
};

/// Builds the canonical table; returns <0 when over-subscribed, 0 when
/// complete, >0 (bits left over) when incomplete.
int build_huffman(Huffman& h, const std::uint8_t* lengths, int n) {
  h.count.fill(0);
  for (int i = 0; i < n; ++i) ++h.count[lengths[i]];
  h.count[0] = 0;
  int left = 1;
  for (int len = 1; len <= kMaxBits; ++len) {
    left <<= 1;
    left -= h.count[len];
    if (left < 0) return left;
  }
  std::array<std::uint16_t, kMaxBits + 1> offs{};
  for (int len = 1; len < kMaxBits; ++len) {
    offs[len + 1] = static_cast<std::uint16_t>(offs[len] + h.count[len]);
  }
  for (int sym = 0; sym < n; ++sym) {
    if (lengths[sym] != 0) {
      h.symbol[offs[lengths[sym]]++] = static_cast<std::uint16_t>(sym);
    }
  }
  return left;
}

int decode_symbol(BitReaderLsb& br, const Huffman& h) {
  int code = 0, first = 0, index = 0;
  for (int len = 1; len <= kMaxBits; ++len) {
    code |= br.bit();
    const int cnt = h.count[len];
    if (code - first < cnt) return h.symbol[index + (code - first)];
    index += cnt;
    first = (first + cnt) << 1;
    code <<= 1;
  }
  raise(TiffErrorKind::kCorruptIfd, "deflate: invalid Huffman code",
        br.src_off + br.pos, br.page);
}

void fixed_tables(Huffman& lit, Huffman& dist) {
  std::array<std::uint8_t, 288> lens{};
  for (int i = 0; i < 144; ++i) lens[i] = 8;
  for (int i = 144; i < 256; ++i) lens[i] = 9;
  for (int i = 256; i < 280; ++i) lens[i] = 7;
  for (int i = 280; i < 288; ++i) lens[i] = 8;
  build_huffman(lit, lens.data(), 288);
  std::array<std::uint8_t, 30> dlens{};
  dlens.fill(5);
  build_huffman(dist, dlens.data(), 30);
}

void dynamic_tables(BitReaderLsb& br, Huffman& lit, Huffman& dist,
                    int* nlit, int* ndist) {
  const int hlit = static_cast<int>(br.bits(5)) + 257;
  const int hdist = static_cast<int>(br.bits(5)) + 1;
  const int hclen = static_cast<int>(br.bits(4)) + 4;
  if (hlit > 286 || hdist > 30) {
    raise(TiffErrorKind::kCorruptIfd, "deflate: bad dynamic code counts",
          br.src_off + br.pos, br.page);
  }
  static constexpr std::uint8_t kOrder[19] = {
      16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15};
  std::array<std::uint8_t, 19> cl_lens{};
  for (int i = 0; i < hclen; ++i) {
    cl_lens[kOrder[i]] = static_cast<std::uint8_t>(br.bits(3));
  }
  Huffman cl;
  if (build_huffman(cl, cl_lens.data(), 19) != 0) {
    raise(TiffErrorKind::kCorruptIfd, "deflate: bad code-length code",
          br.src_off + br.pos, br.page);
  }
  std::array<std::uint8_t, 286 + 30> lens{};
  int i = 0;
  while (i < hlit + hdist) {
    const int sym = decode_symbol(br, cl);
    int rep;
    std::uint8_t val = 0;
    if (sym < 16) {
      lens[i++] = static_cast<std::uint8_t>(sym);
      continue;
    } else if (sym == 16) {
      if (i == 0) {
        raise(TiffErrorKind::kCorruptIfd, "deflate: repeat with no previous",
              br.src_off + br.pos, br.page);
      }
      rep = 3 + static_cast<int>(br.bits(2));
      val = lens[i - 1];
    } else if (sym == 17) {
      rep = 3 + static_cast<int>(br.bits(3));
    } else {
      rep = 11 + static_cast<int>(br.bits(7));
    }
    if (i + rep > hlit + hdist) {
      raise(TiffErrorKind::kCorruptIfd, "deflate: code lengths overflow",
            br.src_off + br.pos, br.page);
    }
    while (rep-- > 0) lens[i++] = val;
  }
  if (lens[256] == 0) {
    raise(TiffErrorKind::kCorruptIfd, "deflate: missing end-of-block code",
          br.src_off + br.pos, br.page);
  }
  // Incomplete codes are valid only in the degenerate one-code case
  // (puff's rule); anything else is a corrupt table.
  int err = build_huffman(lit, lens.data(), hlit);
  if (err < 0 || (err > 0 && hlit - lit.count[0] != 1)) {
    raise(TiffErrorKind::kCorruptIfd, "deflate: bad literal/length code",
          br.src_off + br.pos, br.page);
  }
  err = build_huffman(dist, lens.data() + hlit, hdist);
  if (err < 0 || (err > 0 && hdist - dist.count[0] != 1)) {
    raise(TiffErrorKind::kCorruptIfd, "deflate: bad distance code",
          br.src_off + br.pos, br.page);
  }
  *nlit = hlit;
  *ndist = hdist;
}

struct BitWriterLsb {
  std::vector<std::uint8_t> out;
  std::uint32_t acc = 0;
  int cnt = 0;

  void bits(std::uint32_t v, int k) {
    acc |= v << cnt;
    cnt += k;
    while (cnt >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc & 0xFF));
      acc >>= 8;
      cnt -= 8;
    }
  }
  /// Huffman codes pack most-significant code bit first.
  void huff(std::uint32_t code, int len) {
    std::uint32_t r = 0;
    for (int i = 0; i < len; ++i) r = (r << 1) | ((code >> i) & 1u);
    bits(r, len);
  }
  void finish() {
    if (cnt > 0) {
      out.push_back(static_cast<std::uint8_t>(acc & 0xFF));
      acc = 0;
      cnt = 0;
    }
  }
};

void put_fixed_literal(BitWriterLsb& bw, std::uint8_t sym) {
  if (sym < 144) {
    bw.huff(0x30u + sym, 8);
  } else {
    bw.huff(0x190u + (sym - 144u), 9);
  }
}

void put_fixed_length(BitWriterLsb& bw, int len) {
  for (int k = 28; k >= 0; --k) {
    if (len >= kLenBase[k]) {
      const int sym = 257 + k;
      if (sym < 280) {
        bw.huff(static_cast<std::uint32_t>(sym - 256), 7);
      } else {
        bw.huff(0xC0u + static_cast<std::uint32_t>(sym - 280), 8);
      }
      bw.bits(static_cast<std::uint32_t>(len - kLenBase[k]), kLenExtra[k]);
      return;
    }
  }
}

}  // namespace

std::uint32_t adler32(const std::uint8_t* p, std::size_t n) {
  std::uint32_t a = 1, b = 0;
  std::size_t i = 0;
  while (i < n) {
    // 5552 iterations fit in u32 before the mod (zlib's NMAX).
    std::size_t chunk = std::min<std::size_t>(n - i, 5552);
    while (chunk-- > 0) {
      a += p[i++];
      b += a;
    }
    a %= 65521u;
    b %= 65521u;
  }
  return (b << 16) | a;
}

void zlib_inflate(const std::uint8_t* in, std::size_t in_size,
                  std::uint8_t* out, std::size_t out_size,
                  std::uint64_t src_off, std::int64_t page) {
  if (in_size < 2) {
    raise(TiffErrorKind::kTruncated, "zlib header truncated", src_off, page);
  }
  const std::uint32_t cmf = in[0], flg = in[1];
  if ((cmf & 0x0Fu) != 8u) {
    raise(TiffErrorKind::kCorruptIfd, "zlib: compression method not deflate",
          src_off, page);
  }
  if (((cmf << 8) | flg) % 31u != 0u) {
    raise(TiffErrorKind::kCorruptIfd, "zlib: header check failed", src_off,
          page);
  }
  if ((flg & 0x20u) != 0u) {
    raise(TiffErrorKind::kCorruptIfd, "zlib: preset dictionary unsupported",
          src_off, page);
  }
  BitReaderLsb br{in + 2, in_size - 2, src_off + 2, page, 0, 0, 0};
  std::size_t op = 0;
  bool final_block = false;
  while (!final_block) {
    final_block = br.bit() != 0;
    const std::uint32_t btype = br.bits(2);
    if (btype == 0) {  // stored
      br.align();
      if (br.pos + 4 > br.n) {
        raise(TiffErrorKind::kTruncated, "deflate: stored header truncated",
              br.src_off + br.pos, page);
      }
      const std::uint32_t len = static_cast<std::uint32_t>(br.in[br.pos]) |
                                (static_cast<std::uint32_t>(br.in[br.pos + 1])
                                 << 8);
      const std::uint32_t nlen =
          static_cast<std::uint32_t>(br.in[br.pos + 2]) |
          (static_cast<std::uint32_t>(br.in[br.pos + 3]) << 8);
      br.pos += 4;
      if ((len ^ 0xFFFFu) != nlen) {
        raise(TiffErrorKind::kCorruptIfd, "deflate: stored length mismatch",
              br.src_off + br.pos, page);
      }
      if (op + len > out_size) {
        raise(TiffErrorKind::kCorruptIfd, "deflate output overrun",
              br.src_off + br.pos, page);
      }
      if (br.pos + len > br.n) {
        raise(TiffErrorKind::kTruncated, "deflate: stored data truncated",
              br.src_off + br.pos, page);
      }
      std::memcpy(out + op, br.in + br.pos, len);
      op += len;
      br.pos += len;
      continue;
    }
    if (btype == 3) {
      raise(TiffErrorKind::kCorruptIfd, "deflate: reserved block type",
            br.src_off + br.pos, page);
    }
    Huffman lit, dist;
    int nlit = 288, ndist = 30;
    if (btype == 1) {
      fixed_tables(lit, dist);
    } else {
      dynamic_tables(br, lit, dist, &nlit, &ndist);
    }
    for (;;) {
      const int sym = decode_symbol(br, lit);
      if (sym < 256) {
        if (op >= out_size) {
          raise(TiffErrorKind::kCorruptIfd, "deflate output overrun",
                br.src_off + br.pos, page);
        }
        out[op++] = static_cast<std::uint8_t>(sym);
        continue;
      }
      if (sym == 256) break;  // end of block
      if (sym > 285) {
        raise(TiffErrorKind::kCorruptIfd, "deflate: bad length symbol",
              br.src_off + br.pos, page);
      }
      const std::size_t len =
          kLenBase[sym - 257] + br.bits(kLenExtra[sym - 257]);
      const int dsym = decode_symbol(br, dist);
      if (dsym >= 30) {
        raise(TiffErrorKind::kCorruptIfd, "deflate: bad distance symbol",
              br.src_off + br.pos, page);
      }
      const std::size_t distance =
          kDistBase[dsym] + br.bits(kDistExtra[dsym]);
      if (distance > op) {
        raise(TiffErrorKind::kCorruptIfd, "deflate: distance before start",
              br.src_off + br.pos, page);
      }
      if (op + len > out_size) {
        raise(TiffErrorKind::kCorruptIfd, "deflate output overrun",
              br.src_off + br.pos, page);
      }
      for (std::size_t i = 0; i < len; ++i, ++op) {
        out[op] = out[op - distance];
      }
    }
  }
  if (op != out_size) {
    raise(TiffErrorKind::kTruncated, "deflate stream ended before decoded size",
          br.src_off + br.pos, page);
  }
  br.align();
  if (br.pos + 4 > br.n) {
    raise(TiffErrorKind::kTruncated, "zlib: adler32 trailer truncated",
          br.src_off + br.pos, page);
  }
  const std::uint32_t want = (static_cast<std::uint32_t>(br.in[br.pos]) << 24) |
                             (static_cast<std::uint32_t>(br.in[br.pos + 1])
                              << 16) |
                             (static_cast<std::uint32_t>(br.in[br.pos + 2])
                              << 8) |
                             static_cast<std::uint32_t>(br.in[br.pos + 3]);
  if (want != adler32(out, out_size)) {
    raise(TiffErrorKind::kCorruptIfd, "zlib: adler32 mismatch",
          br.src_off + br.pos, page);
  }
}

std::vector<std::uint8_t> zlib_deflate(const std::uint8_t* p, std::size_t n) {
  BitWriterLsb bw;
  bw.out.reserve(n / 2 + 16);
  bw.out.push_back(0x78);  // CMF: deflate, 32K window
  bw.out.push_back(0x01);  // FLG: check bits, no dict, fastest
  bw.bits(1, 1);           // BFINAL
  bw.bits(1, 2);           // fixed Huffman
  std::size_t i = 0;
  while (i < n) {
    if (i > 0) {
      // Distance-1 run match: covers the flat spans horizontal
      // differencing produces, and keeps the decoder's match path hot.
      std::size_t run = 0;
      while (i + run < n && p[i + run] == p[i - 1] && run < 258) ++run;
      if (run >= 3) {
        put_fixed_length(bw, static_cast<int>(run));
        bw.huff(0, 5);  // distance symbol 0 == distance 1
        i += run;
        continue;
      }
    }
    put_fixed_literal(bw, p[i]);
    ++i;
  }
  bw.huff(0, 7);  // end of block
  bw.finish();
  const std::uint32_t sum = adler32(p, n);
  bw.out.push_back(static_cast<std::uint8_t>(sum >> 24));
  bw.out.push_back(static_cast<std::uint8_t>((sum >> 16) & 0xFF));
  bw.out.push_back(static_cast<std::uint8_t>((sum >> 8) & 0xFF));
  bw.out.push_back(static_cast<std::uint8_t>(sum & 0xFF));
  return std::move(bw.out);
}

// ---------------------------------------------------------------------------
// Horizontal predictor (TIFF tag 317, value 2)
// ---------------------------------------------------------------------------

namespace {

template <typename T>
T load_sample(const std::uint8_t* p, bool be) {
  T v = 0;
  if (be) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>((v << 8) | p[i]);
    }
  } else {
    for (std::size_t i = sizeof(T); i > 0; --i) {
      v = static_cast<T>((v << 8) | p[i - 1]);
    }
  }
  return v;
}

template <typename T>
void store_sample(std::uint8_t* p, T v, bool be) {
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int shift = be ? 8 * static_cast<int>(sizeof(T) - 1 - i)
                         : 8 * static_cast<int>(i);
    p[i] = static_cast<std::uint8_t>((v >> shift) & 0xFF);
  }
}

template <typename T>
void undo_row(std::uint8_t* row, std::int64_t samples, bool be) {
  T prev = load_sample<T>(row, be);
  for (std::int64_t i = 1; i < samples; ++i) {
    std::uint8_t* at = row + static_cast<std::size_t>(i) * sizeof(T);
    prev = static_cast<T>(prev + load_sample<T>(at, be));
    store_sample<T>(at, prev, be);
  }
}

template <typename T>
void apply_row(std::uint8_t* row, std::int64_t samples, bool be) {
  // Backwards, so each difference reads the original left neighbor.
  for (std::int64_t i = samples - 1; i > 0; --i) {
    std::uint8_t* at = row + static_cast<std::size_t>(i) * sizeof(T);
    const std::uint8_t* left = at - sizeof(T);
    store_sample<T>(
        at,
        static_cast<T>(load_sample<T>(at, be) - load_sample<T>(left, be)),
        be);
  }
}

template <void (*RowFn8)(std::uint8_t*, std::int64_t, bool),
          void (*RowFn16)(std::uint8_t*, std::int64_t, bool),
          void (*RowFn32)(std::uint8_t*, std::int64_t, bool)>
void per_row(std::uint8_t* buf, std::int64_t row_samples, std::int64_t rows,
             int bytes_per_sample, bool big_endian) {
  if (row_samples < 2) return;
  const std::size_t row_bytes = static_cast<std::size_t>(row_samples) *
                                static_cast<std::size_t>(bytes_per_sample);
  for (std::int64_t r = 0; r < rows; ++r) {
    std::uint8_t* row = buf + static_cast<std::size_t>(r) * row_bytes;
    switch (bytes_per_sample) {
      case 1: RowFn8(row, row_samples, big_endian); break;
      case 2: RowFn16(row, row_samples, big_endian); break;
      default: RowFn32(row, row_samples, big_endian); break;
    }
  }
}

}  // namespace

void predictor_undo(std::uint8_t* buf, std::int64_t row_samples,
                    std::int64_t rows, int bytes_per_sample, bool big_endian) {
  per_row<undo_row<std::uint8_t>, undo_row<std::uint16_t>,
          undo_row<std::uint32_t>>(buf, row_samples, rows, bytes_per_sample,
                                   big_endian);
}

void predictor_apply(std::uint8_t* buf, std::int64_t row_samples,
                     std::int64_t rows, int bytes_per_sample,
                     bool big_endian) {
  per_row<apply_row<std::uint8_t>, apply_row<std::uint16_t>,
          apply_row<std::uint32_t>>(buf, row_samples, rows, bytes_per_sample,
                                    big_endian);
}

}  // namespace zenesis::io::codec
