#pragma once
// Hardened TIFF support for scientific image stacks.
//
// FIB-SEM stacks arrive as multi-page grayscale TIFFs (8/16/32-bit
// unsigned) — often multi-gigabyte, tiled and compressed, and in a
// production setting, untrusted. This module reads classic TIFF and
// BigTIFF (strips or tiles; uncompressed, PackBits, LZW or Deflate,
// with or without the horizontal predictor; either byte order,
// BlackIsZero or MinIsWhite) and writes classic or BigTIFF with the
// same layout/compression/predictor choices, all without external
// dependencies.
//
// Robustness contract: every malformed or out-of-subset input throws
// TiffError (tiff_error.hpp) carrying a kind, byte offset, tag and page —
// never a crash, hang or unbounded allocation. TiffReadLimits bounds what
// a file may make the process allocate; all size arithmetic is
// overflow-checked. tests/tiff_fuzz_harness.hpp enforces this contract
// over thousands of structure-aware mutants under ASAN/UBSAN.
//
// For bounded-memory access to large stacks, use TiffVolumeReader in
// tiff_stream.hpp; the readers here materialize whole stacks.

#include <cstdint>
#include <string>
#include <vector>

#include "zenesis/image/image.hpp"
#include "zenesis/io/tiff_error.hpp"

namespace zenesis::io {

/// A decoded multi-page TIFF: one AnyImage per page (pages may differ in
/// size, although FIB-SEM stacks never do).
struct TiffStack {
  std::vector<image::AnyImage> pages;
};

/// Container format for the writer. Classic TIFF caps every file offset
/// at 32 bits (~4 GiB); the writer throws TiffError{kLimitExceeded}
/// instead of truncating when a stack outgrows that — switch to kBigTiff.
enum class TiffFormat { kClassic, kBigTiff };

enum class TiffCompression { kNone, kPackBits, kLzw, kDeflate };

enum class TiffLayout { kStrips, kTiles };

/// Writer knobs. Defaults reproduce the historical output: classic
/// little-endian, one uncompressed strip per page, BlackIsZero.
struct TiffWriteOptions {
  TiffFormat format = TiffFormat::kClassic;
  TiffLayout layout = TiffLayout::kStrips;
  TiffCompression compression = TiffCompression::kNone;
  /// Strip layout: rows per strip; 0 = whole page in one strip.
  std::int64_t rows_per_strip = 0;
  /// Tile layout geometry (the spec wants multiples of 16).
  std::int64_t tile_width = 64;
  std::int64_t tile_height = 64;
  /// TIFF Predictor tag: 1 = none, 2 = horizontal differencing before
  /// compression (pairs naturally with kLzw/kDeflate on smooth data).
  int predictor = 1;
  /// Byte order of the emitted file (the reader accepts both).
  bool big_endian = false;
  /// Store pages as Photometric=MinIsWhite with inverted samples; reading
  /// inverts back, so round trips are identity either way.
  bool min_is_white = false;
  /// Classic-format offset ceiling. Tests lower this to exercise the
  /// 32-bit overflow guard without writing 4 GiB of pixels; production
  /// callers leave it at UINT32_MAX.
  std::uint64_t classic_offset_limit = 0xFFFFFFFFull;
};

/// Reads a TIFF file into memory. Throws TiffError on malformed input or
/// on features outside the supported subset.
TiffStack read_tiff(const std::string& path, const TiffReadLimits& limits = {});

/// Decodes a TIFF from memory (tests, network buffers).
TiffStack read_tiff_bytes(const std::vector<std::uint8_t>& bytes,
                          const TiffReadLimits& limits = {});

/// Writes pages as a grayscale TIFF shaped by `options`.
void write_tiff(const std::string& path, const TiffStack& stack,
                const TiffWriteOptions& options = {});

/// Serializes to memory.
std::vector<std::uint8_t> write_tiff_bytes(const TiffStack& stack,
                                           const TiffWriteOptions& options = {});

/// Convenience: wraps a 16-bit volume as a multi-page stack and writes it.
void write_volume_tiff(const std::string& path, const image::VolumeU16& vol,
                       const TiffWriteOptions& options = {});

/// Convenience: reads a multi-page TIFF as a 16-bit volume (pages must be
/// 16-bit grayscale of identical size). Materializes the whole volume;
/// prefer TiffVolumeReader for large stacks.
image::VolumeU16 read_volume_tiff_u16(const std::string& path,
                                      const TiffReadLimits& limits = {});

}  // namespace zenesis::io
