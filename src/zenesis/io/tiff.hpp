#pragma once
// Minimal baseline TIFF 6.0 support.
//
// FIB-SEM stacks arrive as multi-page grayscale TIFFs (8/16/32-bit
// unsigned), which is exactly the subset implemented here: uncompressed
// strips, little- or big-endian byte order on read, little-endian on
// write, one IFD per slice. This keeps the platform's ingestion path free
// of external dependencies while handling the files the paper's workflows
// produce.

#include <cstdint>
#include <string>
#include <vector>

#include "zenesis/image/image.hpp"

namespace zenesis::io {

/// A decoded multi-page TIFF: one AnyImage per page (pages may differ in
/// size, although FIB-SEM stacks never do).
struct TiffStack {
  std::vector<image::AnyImage> pages;
};

/// Reads a TIFF file. Throws std::runtime_error on malformed input or on
/// features outside the supported subset (compression, tiles, palettes).
TiffStack read_tiff(const std::string& path);

/// Decodes a TIFF from memory (used by tests and by network-free demos).
TiffStack read_tiff_bytes(const std::vector<std::uint8_t>& bytes);

/// Writes pages as a little-endian, uncompressed, grayscale baseline TIFF.
void write_tiff(const std::string& path, const TiffStack& stack);

/// Serializes to memory.
std::vector<std::uint8_t> write_tiff_bytes(const TiffStack& stack);

/// Convenience: wraps a 16-bit volume as a multi-page stack and writes it.
void write_volume_tiff(const std::string& path, const image::VolumeU16& vol);

/// Convenience: reads a multi-page TIFF as a 16-bit volume (pages must be
/// 16-bit grayscale of identical size).
image::VolumeU16 read_volume_tiff_u16(const std::string& path);

}  // namespace zenesis::io
