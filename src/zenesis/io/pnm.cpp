#include "zenesis/io/pnm.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

namespace zenesis::io {
namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("pnm: " + what);
}

}  // namespace

void write_pgm(const std::string& path, const image::ImageU8& img) {
  if (img.channels() != 1) fail("write_pgm: single channel required");
  std::ofstream f(path, std::ios::binary);
  if (!f) fail("cannot create " + path);
  f << "P5\n" << img.width() << " " << img.height() << "\n255\n";
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      f.put(static_cast<char>(img.at(x, y)));
    }
  }
  if (!f) fail("write failed for " + path);
}

void write_pgm_f32(const std::string& path, const image::ImageF32& img) {
  image::ImageU8 u8(img.width(), img.height(), 1);
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      const float v = std::clamp(img.at(x, y), 0.0f, 1.0f);
      u8.at(x, y) = static_cast<std::uint8_t>(v * 255.0f + 0.5f);
    }
  }
  write_pgm(path, u8);
}

void write_ppm(const std::string& path, const image::ImageU8& img) {
  if (img.channels() != 3) fail("write_ppm: RGB required");
  std::ofstream f(path, std::ios::binary);
  if (!f) fail("cannot create " + path);
  f << "P6\n" << img.width() << " " << img.height() << "\n255\n";
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      f.put(static_cast<char>(img.at(x, y, 0)));
      f.put(static_cast<char>(img.at(x, y, 1)));
      f.put(static_cast<char>(img.at(x, y, 2)));
    }
  }
  if (!f) fail("write failed for " + path);
}

image::ImageU8 read_pgm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) fail("cannot open " + path);
  std::string magic;
  f >> magic;
  if (magic != "P5") fail("read_pgm: P5 expected");
  std::int64_t w = 0, h = 0;
  int maxval = 0;
  f >> w >> h >> maxval;
  if (w <= 0 || h <= 0 || maxval != 255) fail("read_pgm: bad header");
  f.get();  // single whitespace after header
  image::ImageU8 img(w, h, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      const int c = f.get();
      if (c == EOF) fail("read_pgm: truncated data");
      img.at(x, y) = static_cast<std::uint8_t>(c);
    }
  }
  return img;
}

}  // namespace zenesis::io
