#pragma once
// Streaming TIFF access: parse every IFD once, decode slices on demand.
//
// Real electron-microscopy stacks are multi-gigabyte, tiled, often
// compressed TIFFs. Materializing such a file (read_tiff) costs
// O(file size) memory; TiffVolumeReader costs O(metadata) + one slice
// per read_page call, which is what lets Mode B stream a stack through
// segment_volume instead of holding it whole. The reader is safe to
// share across the volume pipeline's worker threads: decoding allocates
// per call and every ByteSource implementation is lock-free
// thread-safe (positioned reads or immutable mappings).
//
// Opening goes through one front door:
//
//   auto reader = TiffVolumeReader::open(path, TiffOpenOptions{...});
//
// TiffOpenOptions picks the byte source (mmap for zero-copy streaming,
// pread for portability, memory to slurp the file — kAuto resolves via
// ZENESIS_TIFF_SOURCE and platform support), carries the read limits,
// and toggles madvise prefetch hints. The legacy constructors and the
// detail:: free functions remain as deprecated forwarders for one
// release.
//
// Format coverage (read): classic TIFF and BigTIFF (version 43), little-
// and big-endian, strip and tile layouts, uncompressed, PackBits, LZW
// and Deflate/zlib (tags 8 + 32946) compression, horizontal predictor,
// 8/16/32-bit unsigned grayscale, Photometric BlackIsZero and
// MinIsWhite (inverted on decode so callers always see
// "bright = signal"). Palette and RGB pages are rejected with
// TiffError{kUnsupported}.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "zenesis/image/image.hpp"
#include "zenesis/io/byte_source.hpp"
#include "zenesis/io/tiff_error.hpp"

namespace zenesis::io {

/// Which ByteSource TiffVolumeReader::open(path, ...) builds.
enum class TiffSourceKind {
  kAuto,    ///< ZENESIS_TIFF_SOURCE env if set, else mmap, else pread
  kMemory,  ///< slurp the whole file into a MemoryByteSource
  kPread,   ///< PreadByteSource (positioned reads, no mapping)
  kMmap,    ///< MmapByteSource (zero-copy views; falls back to pread
            ///< with a warn-once message where mmap is unsupported)
};

const char* to_string(TiffSourceKind kind) noexcept;

/// Parses "auto" | "memory" | "pread" | "mmap"; nullopt otherwise.
std::optional<TiffSourceKind> parse_source_kind(std::string_view name);

/// Resolves a selector string against the known kinds, mirroring the
/// ZENESIS_KERNEL / ZENESIS_PRECISION contract: an unknown value falls
/// back to kAuto and describes itself in *warning (set to empty when
/// the value was valid). Pure function, testable without the env.
TiffSourceKind resolve_tiff_source_selector(std::string_view value,
                                            std::string* warning);

/// The process-default source kind: ZENESIS_TIFF_SOURCE when set (read
/// once; an invalid value warns once on stderr and falls back), else
/// kMmap where supported, else kPread. Never returns kAuto.
TiffSourceKind default_source_kind();

/// Everything TiffVolumeReader::open needs beyond the path/bytes: the
/// byte-source choice, the untrusted-input limits and the prefetch
/// toggle for mmap madvise hints.
struct TiffOpenOptions {
  TiffSourceKind source_kind = TiffSourceKind::kAuto;
  TiffReadLimits limits{};
  /// madvise(SEQUENTIAL|WILLNEED) on mmap sources — the right hint for
  /// front-to-back volume streaming; disable for sparse page access.
  bool prefetch = true;
};

/// Parsed per-page metadata: everything decode needs, nothing decoded.
/// All fields are validated (limits, overflow, in-bounds) at parse time.
struct TiffPageInfo {
  std::int64_t width = 0;
  std::int64_t height = 0;
  int bits = 8;                 ///< 8, 16 or 32
  int compression = 1;          ///< 1=none, 5=LZW, 8/32946=Deflate,
                                ///< 32773=PackBits
  int predictor = 1;            ///< 1 = none, 2 = horizontal differencing
  int photometric = 1;          ///< 0 = MinIsWhite, 1 = BlackIsZero
  bool big_endian = false;      ///< byte order of multi-byte samples
  bool tiled = false;
  std::int64_t rows_per_strip = 0;  ///< strip layout
  std::int64_t tile_width = 0;      ///< tile layout
  std::int64_t tile_height = 0;
  /// One entry per strip (striped) or per tile (tiled), row-major.
  std::vector<std::uint64_t> segment_offsets;
  std::vector<std::uint64_t> segment_counts;

  std::uint64_t decoded_bytes() const noexcept {
    return static_cast<std::uint64_t>(width) *
           static_cast<std::uint64_t>(height) *
           static_cast<std::uint64_t>(bits / 8);
  }
};

/// Streaming multi-page reader: open() parses and validates every IFD
/// (cycle-safe, limit-enforced); read_page decodes one slice with
/// bounded memory. const methods are safe to call concurrently.
class TiffVolumeReader {
 public:
  /// Opens a file without reading pixel data; the byte source is
  /// picked per options.source_kind (see TiffSourceKind).
  static TiffVolumeReader open(const std::string& path,
                               const TiffOpenOptions& options = {});
  /// Parses an in-memory TIFF (tests, network buffers); always a
  /// MemoryByteSource regardless of options.source_kind.
  static TiffVolumeReader open(std::vector<std::uint8_t> bytes,
                               const TiffOpenOptions& options = {});
  /// Parses from a caller-provided source (object store, test double).
  static TiffVolumeReader open(std::shared_ptr<const ByteSource> source,
                               const TiffOpenOptions& options = {});

  [[deprecated("use TiffVolumeReader::open(path, TiffOpenOptions)")]]
  explicit TiffVolumeReader(const std::string& path, TiffReadLimits limits = {});
  [[deprecated("use TiffVolumeReader::open(bytes, TiffOpenOptions)")]]
  static TiffVolumeReader from_bytes(std::vector<std::uint8_t> bytes,
                                     TiffReadLimits limits = {});
  [[deprecated("use TiffVolumeReader::open(source, TiffOpenOptions)")]]
  TiffVolumeReader(std::shared_ptr<const ByteSource> source,
                   TiffReadLimits limits);

  std::int64_t pages() const noexcept {
    return static_cast<std::int64_t>(pages_.size());
  }
  const TiffPageInfo& page_info(std::int64_t page) const;
  std::int64_t width(std::int64_t page = 0) const { return page_info(page).width; }
  std::int64_t height(std::int64_t page = 0) const { return page_info(page).height; }
  int bit_depth(std::int64_t page = 0) const { return page_info(page).bits; }

  /// True when every page has identical width/height/bit depth (what the
  /// volume pipeline requires).
  bool uniform_geometry() const noexcept;
  /// Throws TiffError{kUnsupported} unless uniform_geometry().
  void require_uniform_geometry() const;

  /// Decodes one page. Thread-safe; allocates only this page (plus a
  /// transient compressed-segment buffer on non-view sources).
  image::AnyImage read_page(std::int64_t page) const;
  /// Decodes one page as 16-bit; throws TiffError{kUnsupported} for
  /// other depths.
  image::ImageU16 read_page_u16(std::int64_t page) const;

  /// Materializes all pages as a 16-bit volume, decoding them in
  /// parallel on the global ThreadPool (convenience; defeats
  /// streaming, cumulative size still checked against the limits).
  image::VolumeU16 read_volume_u16() const;

  const TiffReadLimits& limits() const noexcept { return limits_; }
  /// The concrete source kind this reader ended up with (kAuto and
  /// unsupported-mmap fallbacks resolved); kMemory for byte/source
  /// opens.
  TiffSourceKind source_kind() const noexcept { return resolved_kind_; }

 private:
  TiffVolumeReader(std::shared_ptr<const ByteSource> source,
                   const TiffOpenOptions& options, TiffSourceKind resolved);

  std::shared_ptr<const ByteSource> source_;
  TiffReadLimits limits_;
  TiffSourceKind resolved_kind_ = TiffSourceKind::kMemory;
  std::vector<TiffPageInfo> pages_;
};

namespace detail {
/// Deprecated forwarders: parse/decode are reader internals now; go
/// through TiffVolumeReader::open + page_info/read_page instead.
[[deprecated("use TiffVolumeReader::open(...).page_info()")]]
std::vector<TiffPageInfo> parse_tiff_pages(const ByteSource& source,
                                           const TiffReadLimits& limits);
[[deprecated("use TiffVolumeReader::open(...).read_page()")]]
image::AnyImage decode_tiff_page(const ByteSource& source,
                                 const TiffPageInfo& info,
                                 const TiffReadLimits& limits,
                                 std::int64_t page_index);
}  // namespace detail

}  // namespace zenesis::io
