#pragma once
// Streaming TIFF access: parse every IFD once, decode slices on demand.
//
// Real electron-microscopy stacks are multi-gigabyte, tiled, often
// compressed TIFFs. Materializing such a file (read_tiff) costs
// O(file size) memory; TiffVolumeReader costs O(metadata) + one slice
// per read_page call, which is what lets Mode B stream a stack through
// segment_volume instead of holding it whole. The reader is safe to
// share across the volume pipeline's worker threads: decoding allocates
// per call and the file handle is internally synchronized.
//
// Format coverage (read): classic TIFF and BigTIFF (version 43), little-
// and big-endian, strip and tile layouts, uncompressed and PackBits,
// 8/16/32-bit unsigned grayscale, Photometric BlackIsZero and MinIsWhite
// (inverted on decode so callers always see "bright = signal"). Palette
// and RGB pages are rejected with TiffError{kUnsupported}.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "zenesis/image/image.hpp"
#include "zenesis/io/tiff_error.hpp"

namespace zenesis::io {

/// Random-access byte provider the parser/decoder run against. Both
/// methods must be thread-safe; read_at throws TiffError{kTruncated}
/// when [off, off+n) is not fully available.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual std::uint64_t size() const = 0;
  virtual void read_at(std::uint64_t off, std::uint8_t* dst,
                       std::size_t n) const = 0;
};

/// ByteSource over an owned in-memory buffer.
class MemoryByteSource final : public ByteSource {
 public:
  explicit MemoryByteSource(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}
  std::uint64_t size() const override { return bytes_.size(); }
  void read_at(std::uint64_t off, std::uint8_t* dst,
               std::size_t n) const override;

 private:
  std::vector<std::uint8_t> bytes_;
};

/// ByteSource over a file. Reads seek under a mutex, so concurrent
/// slice decodes serialize on I/O but never interleave corruptly.
class FileByteSource final : public ByteSource {
 public:
  explicit FileByteSource(const std::string& path);
  ~FileByteSource() override;
  std::uint64_t size() const override { return size_; }
  void read_at(std::uint64_t off, std::uint8_t* dst,
               std::size_t n) const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint64_t size_ = 0;
  mutable std::mutex mutex_;
};

/// Parsed per-page metadata: everything decode needs, nothing decoded.
/// All fields are validated (limits, overflow, in-bounds) at parse time.
struct TiffPageInfo {
  std::int64_t width = 0;
  std::int64_t height = 0;
  int bits = 8;                 ///< 8, 16 or 32
  int compression = 1;          ///< 1 = none, 32773 = PackBits
  int photometric = 1;          ///< 0 = MinIsWhite, 1 = BlackIsZero
  bool big_endian = false;      ///< byte order of multi-byte samples
  bool tiled = false;
  std::int64_t rows_per_strip = 0;  ///< strip layout
  std::int64_t tile_width = 0;      ///< tile layout
  std::int64_t tile_height = 0;
  /// One entry per strip (striped) or per tile (tiled), row-major.
  std::vector<std::uint64_t> segment_offsets;
  std::vector<std::uint64_t> segment_counts;

  std::uint64_t decoded_bytes() const noexcept {
    return static_cast<std::uint64_t>(width) *
           static_cast<std::uint64_t>(height) *
           static_cast<std::uint64_t>(bits / 8);
  }
};

/// Streaming multi-page reader: constructor parses and validates every
/// IFD (cycle-safe, limit-enforced); read_page decodes one slice with
/// bounded memory. const methods are safe to call concurrently.
class TiffVolumeReader {
 public:
  /// Opens a file without reading pixel data.
  explicit TiffVolumeReader(const std::string& path, TiffReadLimits limits = {});
  /// Parses an in-memory TIFF (tests, network buffers).
  static TiffVolumeReader from_bytes(std::vector<std::uint8_t> bytes,
                                     TiffReadLimits limits = {});
  /// Parses from an arbitrary source (mmap, object store, ...).
  TiffVolumeReader(std::shared_ptr<const ByteSource> source,
                   TiffReadLimits limits = {});

  std::int64_t pages() const noexcept {
    return static_cast<std::int64_t>(pages_.size());
  }
  const TiffPageInfo& page_info(std::int64_t page) const;
  std::int64_t width(std::int64_t page = 0) const { return page_info(page).width; }
  std::int64_t height(std::int64_t page = 0) const { return page_info(page).height; }
  int bit_depth(std::int64_t page = 0) const { return page_info(page).bits; }

  /// True when every page has identical width/height/bit depth (what the
  /// volume pipeline requires).
  bool uniform_geometry() const noexcept;
  /// Throws TiffError{kUnsupported} unless uniform_geometry().
  void require_uniform_geometry() const;

  /// Decodes one page. Thread-safe; allocates only this page (plus a
  /// transient compressed-segment buffer).
  image::AnyImage read_page(std::int64_t page) const;
  /// Decodes one page as 16-bit; throws TiffError{kUnsupported} for
  /// other depths.
  image::ImageU16 read_page_u16(std::int64_t page) const;

  /// Materializes all pages as a 16-bit volume (convenience; defeats
  /// streaming, cumulative size still checked against the limits).
  image::VolumeU16 read_volume_u16() const;

  const TiffReadLimits& limits() const noexcept { return limits_; }

 private:
  std::shared_ptr<const ByteSource> source_;
  TiffReadLimits limits_;
  std::vector<TiffPageInfo> pages_;
};

namespace detail {
/// Parses and validates every IFD of `source`. Shared by
/// TiffVolumeReader and the materializing read_tiff* entry points.
std::vector<TiffPageInfo> parse_tiff_pages(const ByteSource& source,
                                           const TiffReadLimits& limits);
/// Decodes one parsed page (strips or tiles, PackBits-aware,
/// photometric-corrected).
image::AnyImage decode_tiff_page(const ByteSource& source,
                                 const TiffPageInfo& info,
                                 const TiffReadLimits& limits,
                                 std::int64_t page_index);
}  // namespace detail

}  // namespace zenesis::io
