#pragma once
// PGM/PPM (binary P5/P6) output for qualitative figures: mask overlays,
// box visualizations and normalized previews. PGM reading is also provided
// so tests can round-trip.

#include <string>

#include "zenesis/image/image.hpp"

namespace zenesis::io {

/// Writes an 8-bit grayscale PGM (P5).
void write_pgm(const std::string& path, const image::ImageU8& img);

/// Writes a [0,1] float image as 8-bit PGM.
void write_pgm_f32(const std::string& path, const image::ImageF32& img);

/// Writes an 8-bit RGB PPM (P6).
void write_ppm(const std::string& path, const image::ImageU8& img);

/// Reads an 8-bit grayscale binary PGM (P5).
image::ImageU8 read_pgm(const std::string& path);

}  // namespace zenesis::io
