#pragma once
// Random-access byte providers for the TIFF ingestion layer.
//
// The contract has two tiers:
//
//   read_at(off, dst, n)  — copy n bytes into a caller buffer. Always
//                           available, always thread-safe, throws
//                           TiffError{kTruncated} when [off, off+n) is
//                           not fully available.
//   view(off, n) -> span  — zero-copy: a pointer straight into the
//                           source's storage. Sources that cannot hand
//                           out stable pointers (PreadByteSource)
//                           return an EMPTY span and callers fall back
//                           to read_at; sources that can (memory,
//                           mmap) return exactly n bytes or throw
//                           TiffError{kTruncated} on an out-of-bounds
//                           range. Returned views live as long as the
//                           source object — destroying the source (or
//                           the TiffVolumeReader that owns it)
//                           invalidates every view.
//
// Three concrete sources cover the ingestion spectrum:
//   MemoryByteSource — owned buffer (tests, network payloads).
//   PreadByteSource  — positioned per-call pread(2); no seek state, no
//                      mutex, so concurrent slice decodes issue parallel
//                      I/O instead of serializing behind a file cursor.
//   MmapByteSource   — read-only mmap(2) with madvise hints; view() is
//                      true zero-copy, which lets strip/tile decode feed
//                      decompressors without staging copies and keeps
//                      RSS flat on volumes larger than memory budget
//                      (pages are evictable, never dirtied).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "zenesis/io/tiff_error.hpp"

namespace zenesis::io {

/// Random-access byte provider the parser/decoder run against. All
/// methods must be thread-safe; read_at throws TiffError{kTruncated}
/// when [off, off+n) is not fully available.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual std::uint64_t size() const = 0;
  virtual void read_at(std::uint64_t off, std::uint8_t* dst,
                       std::size_t n) const = 0;
  /// Zero-copy window into the source. Default: empty span ("no view
  /// available; use read_at"). Overriders must return exactly n bytes
  /// or throw TiffError{kTruncated}; the span is valid until the
  /// source is destroyed.
  virtual std::span<const std::uint8_t> view(std::uint64_t off,
                                             std::size_t n) const {
    (void)off;
    (void)n;
    return {};
  }
};

/// ByteSource over an owned in-memory buffer; view() exposes it.
class MemoryByteSource final : public ByteSource {
 public:
  explicit MemoryByteSource(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}
  std::uint64_t size() const override { return bytes_.size(); }
  void read_at(std::uint64_t off, std::uint8_t* dst,
               std::size_t n) const override;
  std::span<const std::uint8_t> view(std::uint64_t off,
                                     std::size_t n) const override;

 private:
  std::vector<std::uint8_t> bytes_;
};

/// ByteSource over a file descriptor using positioned reads. Every
/// read_at is one (retried) pread(2): no shared seek cursor, no mutex,
/// so N threads decoding N slices issue N concurrent reads. view()
/// stays empty — callers get copies.
class PreadByteSource final : public ByteSource {
 public:
  explicit PreadByteSource(const std::string& path);
  ~PreadByteSource() override;
  PreadByteSource(const PreadByteSource&) = delete;
  PreadByteSource& operator=(const PreadByteSource&) = delete;

  std::uint64_t size() const override { return size_; }
  void read_at(std::uint64_t off, std::uint8_t* dst,
               std::size_t n) const override;

  /// High-water mark of reads observed in flight simultaneously.
  /// Regression probe for the old seek-mutex design, which pinned this
  /// at 1 no matter how many threads decoded concurrently.
  int max_concurrent_reads() const noexcept;

 private:
  struct Impl;
  Impl* impl_ = nullptr;
  std::uint64_t size_ = 0;
};

/// ByteSource over a read-only memory mapping. view() returns true
/// zero-copy spans into the mapping; read_at copies out of it. The
/// constructor applies madvise(SEQUENTIAL|WILLNEED) when `prefetch` is
/// set — the access pattern of streaming volume decode. Views are
/// invalidated when the source (or the reader owning it) is destroyed.
class MmapByteSource final : public ByteSource {
 public:
  explicit MmapByteSource(const std::string& path, bool prefetch = true);
  ~MmapByteSource() override;
  MmapByteSource(const MmapByteSource&) = delete;
  MmapByteSource& operator=(const MmapByteSource&) = delete;

  /// False on platforms without a usable mmap; open-time resolution
  /// falls back to pread (warn-once) instead of failing.
  static bool supported() noexcept;

  std::uint64_t size() const override { return size_; }
  void read_at(std::uint64_t off, std::uint8_t* dst,
               std::size_t n) const override;
  std::span<const std::uint8_t> view(std::uint64_t off,
                                     std::size_t n) const override;

 private:
  const std::uint8_t* map_ = nullptr;
  std::uint64_t size_ = 0;
};

/// Deprecated name for the file-backed source. The seek-mutex
/// implementation it used to denote serialized concurrent decodes; the
/// pread replacement is a drop-in.
using FileByteSource
    [[deprecated("use PreadByteSource (or TiffVolumeReader::open)")]] =
        PreadByteSource;

}  // namespace zenesis::io
