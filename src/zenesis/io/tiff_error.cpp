#include "zenesis/io/tiff_error.hpp"

namespace zenesis::io {
namespace {

std::string format_what(TiffErrorKind kind, const std::string& detail,
                        std::uint64_t byte_offset, std::uint16_t tag,
                        std::int64_t page) {
  std::string what = "tiff: [";
  what += to_string(kind);
  what += "] ";
  what += detail;
  what += " (offset " + std::to_string(byte_offset);
  if (tag != 0) what += ", tag " + std::to_string(tag);
  if (page >= 0) what += ", page " + std::to_string(page);
  what += ")";
  return what;
}

}  // namespace

const char* to_string(TiffErrorKind kind) noexcept {
  switch (kind) {
    case TiffErrorKind::kBadHeader: return "BadHeader";
    case TiffErrorKind::kTruncated: return "Truncated";
    case TiffErrorKind::kCorruptIfd: return "CorruptIfd";
    case TiffErrorKind::kOffsetOutOfBounds: return "OffsetOutOfBounds";
    case TiffErrorKind::kLimitExceeded: return "LimitExceeded";
    case TiffErrorKind::kUnsupported: return "Unsupported";
  }
  return "Unknown";
}

TiffError::TiffError(TiffErrorKind kind, const std::string& detail,
                     std::uint64_t byte_offset, std::uint16_t tag,
                     std::int64_t page)
    : std::runtime_error(format_what(kind, detail, byte_offset, tag, page)),
      kind_(kind),
      byte_offset_(byte_offset),
      tag_(tag),
      page_(page) {}

}  // namespace zenesis::io
