#pragma once
// TIFF segment codecs, dependency-free: LZW (compression tag 5),
// Deflate/zlib (tags 8 and 32946) and the horizontal predictor
// (tag 317, value 2). Decoders follow the module's robustness
// contract — corrupt input throws TiffError (kTruncated when the code
// stream ends early, kCorruptIfd when the stream itself is malformed
// or would overrun the declared decoded size), never UB or unbounded
// allocation: output size is fixed by the caller, who has already
// checked it against TiffReadLimits, and both decoders work in O(1)
// extra memory on top of it.
//
// Encoders exist so the writer can produce compressed, predictor-
// encoded stacks for round-trip tests, the fuzz corpus and benchmarks:
// lzw_encode is a full 12-bit early-change TIFF LZW compressor;
// zlib_deflate emits a fixed-Huffman stream with run matches (enough
// to exercise the inflate length/distance path and compress the flat
// regions predictor differencing produces).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace zenesis::io::codec {

/// TIFF LZW (MSB-first codes, early code-width change) into an
/// exact-size output. Trailing input after the output fills is
/// ignored; EOI or input exhaustion before that throws kTruncated.
void lzw_decode(const std::uint8_t* in, std::size_t in_size,
                std::uint8_t* out, std::size_t out_size,
                std::uint64_t src_off, std::int64_t page);

/// TIFF LZW compression (round-trips through lzw_decode).
std::vector<std::uint8_t> lzw_encode(const std::uint8_t* p, std::size_t n);

/// zlib-wrapped Deflate (RFC 1950/1951: stored, fixed and dynamic
/// Huffman blocks) into an exact-size output. The adler32 trailer is
/// verified when the stream terminates within the input.
void zlib_inflate(const std::uint8_t* in, std::size_t in_size,
                  std::uint8_t* out, std::size_t out_size,
                  std::uint64_t src_off, std::int64_t page);

/// zlib compression: fixed-Huffman literals plus distance-1 run
/// matches (round-trips through zlib_inflate).
std::vector<std::uint8_t> zlib_deflate(const std::uint8_t* p, std::size_t n);

/// RFC 1950 adler32 checksum.
std::uint32_t adler32(const std::uint8_t* p, std::size_t n);

/// Undoes horizontal differencing in place: buf holds `rows` rows of
/// `row_samples` samples of `bytes_per_sample` (1/2/4) bytes each, in
/// file byte order; each sample becomes the running sum of its row
/// (mod 2^bits). Runs after decompression, before sample conversion.
void predictor_undo(std::uint8_t* buf, std::int64_t row_samples,
                    std::int64_t rows, int bytes_per_sample, bool big_endian);

/// Applies horizontal differencing in place (writer-side inverse of
/// predictor_undo; runs before compression).
void predictor_apply(std::uint8_t* buf, std::int64_t row_samples,
                     std::int64_t rows, int bytes_per_sample, bool big_endian);

}  // namespace zenesis::io::codec
