#include "zenesis/io/byte_source.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>

#if defined(_WIN32)
#error "byte_source.cpp requires a POSIX platform (pread/mmap)"
#endif

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace zenesis::io {

namespace {

[[noreturn]] void raise_truncated(const std::string& detail,
                                  std::uint64_t off) {
  throw TiffError(TiffErrorKind::kTruncated, detail, off);
}

void check_range(std::uint64_t off, std::size_t n, std::uint64_t size,
                 const char* what) {
  if (off > size || n > size - off) {
    raise_truncated(what, off);
  }
}

int open_readonly(const std::string& path, std::uint64_t* size_out) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT
  if (fd < 0) {
    raise_truncated("cannot open " + path, 0);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    raise_truncated("cannot size " + path, 0);
  }
  *size_out = static_cast<std::uint64_t>(st.st_size);
  return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// MemoryByteSource
// ---------------------------------------------------------------------------

void MemoryByteSource::read_at(std::uint64_t off, std::uint8_t* dst,
                               std::size_t n) const {
  check_range(off, n, bytes_.size(), "read past end of data");
  if (n == 0) return;  // dst may be null for an empty segment
  std::memcpy(dst, bytes_.data() + off, n);
}

std::span<const std::uint8_t> MemoryByteSource::view(std::uint64_t off,
                                                     std::size_t n) const {
  check_range(off, n, bytes_.size(), "view past end of data");
  return {bytes_.data() + off, n};
}

// ---------------------------------------------------------------------------
// PreadByteSource
// ---------------------------------------------------------------------------

struct PreadByteSource::Impl {
  int fd = -1;
  // Concurrency high-water probe around the pread syscall; relaxed is
  // fine — the test only needs "ever saw >= 2", not ordering.
  mutable std::atomic<int> in_flight{0};
  mutable std::atomic<int> high_water{0};
};

PreadByteSource::PreadByteSource(const std::string& path) {
  // Open before allocating Impl: if the ctor throws, ~PreadByteSource
  // never runs, so nothing owned may predate the first throwing call.
  std::uint64_t size = 0;
  const int fd = open_readonly(path, &size);
  impl_ = new Impl;
  impl_->fd = fd;
  size_ = size;
}

PreadByteSource::~PreadByteSource() {
  if (impl_ != nullptr) {
    if (impl_->fd >= 0) ::close(impl_->fd);
    delete impl_;
  }
}

void PreadByteSource::read_at(std::uint64_t off, std::uint8_t* dst,
                              std::size_t n) const {
  check_range(off, n, size_, "read past end of file");
  if (n == 0) return;  // dst may be null for an empty segment
  const int now = impl_->in_flight.fetch_add(1, std::memory_order_relaxed) + 1;
  int seen = impl_->high_water.load(std::memory_order_relaxed);
  while (now > seen && !impl_->high_water.compare_exchange_weak(
                           seen, now, std::memory_order_relaxed)) {
  }
  std::size_t done = 0;
  while (done < n) {
    const ::ssize_t got =
        ::pread(impl_->fd, dst + done, n - done,
                static_cast<::off_t>(off + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      impl_->in_flight.fetch_sub(1, std::memory_order_relaxed);
      raise_truncated(std::string("pread failed: ") + std::strerror(errno),
                      off + done);
    }
    if (got == 0) {  // EOF before n bytes: file shrank under us
      impl_->in_flight.fetch_sub(1, std::memory_order_relaxed);
      raise_truncated("short read from file", off + done);
    }
    done += static_cast<std::size_t>(got);
  }
  impl_->in_flight.fetch_sub(1, std::memory_order_relaxed);
}

int PreadByteSource::max_concurrent_reads() const noexcept {
  return impl_->high_water.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MmapByteSource
// ---------------------------------------------------------------------------

bool MmapByteSource::supported() noexcept { return true; }

MmapByteSource::MmapByteSource(const std::string& path, bool prefetch) {
  const int fd = open_readonly(path, &size_);
  if (size_ == 0) {
    // mmap(0) is EINVAL; an empty file still fails header validation
    // downstream, so an empty mapping is fine.
    ::close(fd);
    return;
  }
  void* m = ::mmap(nullptr, static_cast<std::size_t>(size_), PROT_READ,
                   MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (m == MAP_FAILED) {
    raise_truncated("mmap failed for " + path, 0);
  }
  map_ = static_cast<const std::uint8_t*>(m);
  if (prefetch) {
    // Advisory only: streaming volume decode walks strips in order
    // (SEQUENTIAL widens readahead) and touches most of the file
    // (WILLNEED starts it early). Failure is ignored by design.
    (void)::posix_madvise(m, static_cast<std::size_t>(size_),
                          POSIX_MADV_SEQUENTIAL);
    (void)::posix_madvise(m, static_cast<std::size_t>(size_),
                          POSIX_MADV_WILLNEED);
  }
}

MmapByteSource::~MmapByteSource() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), static_cast<std::size_t>(size_));
  }
}

void MmapByteSource::read_at(std::uint64_t off, std::uint8_t* dst,
                             std::size_t n) const {
  check_range(off, n, size_, "read past end of file");
  if (n == 0) return;  // dst may be null for an empty segment
  std::memcpy(dst, map_ + off, n);
}

std::span<const std::uint8_t> MmapByteSource::view(std::uint64_t off,
                                                   std::size_t n) const {
  check_range(off, n, size_, "view past end of file");
  return {map_ + off, n};
}

}  // namespace zenesis::io
