#include "zenesis/io/report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace zenesis::io {
namespace {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Table: at least one column required");
  }
}

void Table::add_row(std::vector<Cell> row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string format_cell(const Cell& cell) {
  return std::visit(
      [](const auto& v) -> std::string {
        using T = std::remove_cvref_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::string>) {
          return v;
        } else if constexpr (std::is_same_v<T, std::int64_t>) {
          return std::to_string(v);
        } else {
          return format_double(v);
        }
      },
      cell);
}

std::string Table::to_csv() const {
  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) out += ',';
    out += csv_escape(columns_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(format_cell(row[c]));
    }
    out += '\n';
  }
  return out;
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    cells.push_back(std::move(r));
  }
  auto rule = [&]() {
    std::string s = "+";
    for (std::size_t wc : widths) s += std::string(wc + 2, '-') + "+";
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& vals) {
    std::string s = "|";
    for (std::size_t c = 0; c < vals.size(); ++c) {
      s += ' ' + vals[c] + std::string(widths[c] - vals[c].size(), ' ') + " |";
    }
    s += '\n';
    return s;
  };
  std::string out = rule() + line(columns_) + rule();
  for (const auto& r : cells) out += line(r);
  out += rule();
  return out;
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("Table::write_csv: cannot create " + path);
  f << to_csv();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

void JsonObject::set(const std::string& key, const std::string& value) {
  scalars_[key] = value;
}
void JsonObject::set(const std::string& key, std::int64_t value) {
  scalars_[key] = value;
}
void JsonObject::set(const std::string& key, double value) {
  scalars_[key] = value;
}
void JsonObject::set_array(const std::string& key,
                           std::vector<JsonObject> items) {
  arrays_[key] = std::move(items);
}

std::string JsonObject::to_string(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  std::string out = "{\n";
  bool first = true;
  for (const auto& [key, value] : scalars_) {
    if (!first) out += ",\n";
    first = false;
    out += pad_in + '"' + json_escape(key) + "\": ";
    if (const auto* s = std::get_if<std::string>(&value)) {
      out += '"' + json_escape(*s) + '"';
    } else {
      out += format_cell(value);
    }
  }
  for (const auto& [key, items] : arrays_) {
    if (!first) out += ",\n";
    first = false;
    out += pad_in + '"' + json_escape(key) + "\": [";
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (i) out += ", ";
      out += items[i].to_string(indent + 1);
    }
    out += ']';
  }
  out += '\n' + pad + '}';
  return out;
}

void JsonObject::write(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("JsonObject::write: cannot create " + path);
  f << to_string() << '\n';
}

}  // namespace zenesis::io
