#include "zenesis/image/image.hpp"

namespace zenesis::image {

int bit_depth(const AnyImage& img) {
  return std::visit(
      [](const auto& i) -> int {
        using T = std::remove_cvref_t<decltype(i.at(0, 0))>;
        if constexpr (std::is_same_v<T, float>) {
          return 32;
        } else {
          return static_cast<int>(sizeof(T) * 8);
        }
      },
      img);
}

std::int64_t width_of(const AnyImage& img) {
  return std::visit([](const auto& i) { return i.width(); }, img);
}

std::int64_t height_of(const AnyImage& img) {
  return std::visit([](const auto& i) { return i.height(); }, img);
}

int channels_of(const AnyImage& img) {
  return std::visit([](const auto& i) { return i.channels(); }, img);
}

}  // namespace zenesis::image
