#pragma once
// Typed raster containers for scientific images.
//
// The paper's central obstacle is that scientific data is not AI-ready:
// 8/16/32-bit integer or float pixels, grayscale or RGB, 2-D or volumetric,
// with anisotropic voxel spacing. This module owns those raw
// representations exactly (no silent conversion); the readiness layer in
// normalize.hpp performs the explicit, fidelity-preserving mapping to the
// float images the models consume.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <variant>
#include <vector>

namespace zenesis::image {

/// 2-D raster with `channels` interleaved samples per pixel.
/// T ∈ {uint8_t, uint16_t, uint32_t, float}.
template <typename T>
class Image {
 public:
  Image() = default;
  Image(std::int64_t width, std::int64_t height, int channels = 1)
      : width_(width), height_(height), channels_(channels) {
    if (width < 0 || height < 0 || channels <= 0) {
      throw std::invalid_argument("Image: invalid dimensions");
    }
    data_.assign(static_cast<std::size_t>(width * height * channels), T{});
  }

  std::int64_t width() const noexcept { return width_; }
  std::int64_t height() const noexcept { return height_; }
  int channels() const noexcept { return channels_; }
  std::int64_t pixel_count() const noexcept { return width_ * height_; }
  bool empty() const noexcept { return data_.empty(); }

  T& at(std::int64_t x, std::int64_t y, int c = 0) {
    return data_[index(x, y, c)];
  }
  T at(std::int64_t x, std::int64_t y, int c = 0) const {
    return data_[index(x, y, c)];
  }

  /// True when (x, y) lies inside the raster.
  bool contains(std::int64_t x, std::int64_t y) const noexcept {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  std::span<T> pixels() noexcept { return {data_.data(), data_.size()}; }
  std::span<const T> pixels() const noexcept {
    return {data_.data(), data_.size()};
  }

  void fill(T v) { data_.assign(data_.size(), v); }

 private:
  std::size_t index(std::int64_t x, std::int64_t y, int c) const {
    if (x < 0 || x >= width_ || y < 0 || y >= height_ || c < 0 ||
        c >= channels_) {
      throw std::out_of_range("Image::at: index out of range");
    }
    return static_cast<std::size_t>((y * width_ + x) * channels_ + c);
  }

  std::int64_t width_ = 0;
  std::int64_t height_ = 0;
  int channels_ = 1;
  std::vector<T> data_;
};

using ImageU8 = Image<std::uint8_t>;
using ImageU16 = Image<std::uint16_t>;
using ImageU32 = Image<std::uint32_t>;
using ImageF32 = Image<float>;

/// Binary segmentation mask: 0 = background, 1 = foreground.
using Mask = Image<std::uint8_t>;

/// Type-erased image as produced by file readers, before the readiness
/// layer decides how to normalize it.
using AnyImage = std::variant<ImageU8, ImageU16, ImageU32, ImageF32>;

/// Bits per sample of the stored pixel type.
int bit_depth(const AnyImage& img);

/// Width/height/channels of a type-erased image.
std::int64_t width_of(const AnyImage& img);
std::int64_t height_of(const AnyImage& img);
int channels_of(const AnyImage& img);

/// Physical voxel spacing in nanometres. FIB-SEM stacks are typically
/// anisotropic (slice thickness != pixel pitch), which downstream temporal
/// heuristics must know about.
struct VoxelSize {
  double x_nm = 1.0;
  double y_nm = 1.0;
  double z_nm = 1.0;

  bool isotropic(double tol = 1e-9) const noexcept {
    return std::abs(x_nm - y_nm) <= tol && std::abs(y_nm - z_nm) <= tol;
  }
  double anisotropy() const noexcept {
    const double xy = (x_nm + y_nm) / 2.0;
    return xy == 0.0 ? 0.0 : z_nm / xy;
  }
};

/// Volumetric image: `depth` slices of identical geometry plus voxel
/// metadata. Slice order is acquisition order (the axis the temporal
/// refinement heuristic runs along).
template <typename T>
class Volume {
 public:
  Volume() = default;
  Volume(std::int64_t width, std::int64_t height, std::int64_t depth,
         int channels = 1, VoxelSize voxel = {}) : voxel_(voxel) {
    if (depth < 0) throw std::invalid_argument("Volume: negative depth");
    slices_.reserve(static_cast<std::size_t>(depth));
    for (std::int64_t i = 0; i < depth; ++i) {
      slices_.emplace_back(width, height, channels);
    }
  }

  std::int64_t depth() const noexcept {
    return static_cast<std::int64_t>(slices_.size());
  }
  std::int64_t width() const noexcept {
    return slices_.empty() ? 0 : slices_.front().width();
  }
  std::int64_t height() const noexcept {
    return slices_.empty() ? 0 : slices_.front().height();
  }
  int channels() const noexcept {
    return slices_.empty() ? 1 : slices_.front().channels();
  }
  const VoxelSize& voxel() const noexcept { return voxel_; }
  void set_voxel(VoxelSize v) noexcept { voxel_ = v; }

  Image<T>& slice(std::int64_t z) { return slices_.at(static_cast<std::size_t>(z)); }
  const Image<T>& slice(std::int64_t z) const {
    return slices_.at(static_cast<std::size_t>(z));
  }

  /// Appends a slice; geometry must match existing slices.
  void push_slice(Image<T> s) {
    if (!slices_.empty() &&
        (s.width() != width() || s.height() != height() ||
         s.channels() != channels())) {
      throw std::invalid_argument("Volume::push_slice: geometry mismatch");
    }
    slices_.push_back(std::move(s));
  }

 private:
  std::vector<Image<T>> slices_;
  VoxelSize voxel_;
};

using VolumeU8 = Volume<std::uint8_t>;
using VolumeU16 = Volume<std::uint16_t>;
using VolumeF32 = Volume<float>;

}  // namespace zenesis::image
