#include "zenesis/image/roi.hpp"

#include <algorithm>
#include <stdexcept>

namespace zenesis::image {
namespace {

template <typename T>
Image<T> crop_impl(const Image<T>& img, const Box& roi) {
  const Box r = roi.clipped(img.width(), img.height());
  if (r.empty()) return Image<T>(0, 0, img.channels());
  Image<T> out(r.w, r.h, img.channels());
  for (std::int64_t y = 0; y < r.h; ++y) {
    for (std::int64_t x = 0; x < r.w; ++x) {
      for (int c = 0; c < img.channels(); ++c) {
        out.at(x, y, c) = img.at(r.x + x, r.y + y, c);
      }
    }
  }
  return out;
}

}  // namespace

ImageF32 crop(const ImageF32& img, const Box& roi) { return crop_impl(img, roi); }

Mask crop_mask(const Mask& mask, const Box& roi) { return crop_impl(mask, roi); }

void paste_mask(Mask& dst, const Mask& patch, const Box& roi) {
  for (std::int64_t y = 0; y < patch.height(); ++y) {
    const std::int64_t dy = roi.y + y;
    if (dy < 0 || dy >= dst.height()) continue;
    for (std::int64_t x = 0; x < patch.width(); ++x) {
      const std::int64_t dx = roi.x + x;
      if (dx < 0 || dx >= dst.width()) continue;
      if (patch.at(x, y) != 0) dst.at(dx, dy) = 1;
    }
  }
}

ImageU8 overlay_mask(const ImageF32& img, const Mask& mask) {
  if (img.width() != mask.width() || img.height() != mask.height()) {
    throw std::invalid_argument("overlay_mask: size mismatch");
  }
  ImageU8 out(img.width(), img.height(), 3);
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      const float v = std::clamp(img.at(x, y), 0.0f, 1.0f);
      const auto g = static_cast<std::uint8_t>(v * 255.0f + 0.5f);
      if (mask.at(x, y) != 0) {
        // Foreground: green tint.
        out.at(x, y, 0) = static_cast<std::uint8_t>(g / 2);
        out.at(x, y, 1) =
            static_cast<std::uint8_t>(std::min(255, static_cast<int>(g) + 80));
        out.at(x, y, 2) = static_cast<std::uint8_t>(g / 2);
      } else {
        out.at(x, y, 0) = g;
        out.at(x, y, 1) = g;
        out.at(x, y, 2) = g;
      }
    }
  }
  // Boundary: mark foreground pixels adjacent to background in red.
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      if (mask.at(x, y) == 0) continue;
      bool edge = false;
      for (int dy = -1; dy <= 1 && !edge; ++dy) {
        for (int dx = -1; dx <= 1 && !edge; ++dx) {
          const std::int64_t nx = x + dx, ny = y + dy;
          if (!mask.contains(nx, ny) || mask.at(nx, ny) == 0) edge = true;
        }
      }
      if (edge) {
        out.at(x, y, 0) = 255;
        out.at(x, y, 1) = 40;
        out.at(x, y, 2) = 40;
      }
    }
  }
  return out;
}

void draw_box(ImageU8& img, const Box& box, std::uint8_t r, std::uint8_t g,
              std::uint8_t b) {
  if (img.channels() != 3) {
    throw std::invalid_argument("draw_box: RGB image required");
  }
  const Box c = box.clipped(img.width(), img.height());
  if (c.empty()) return;
  auto put = [&](std::int64_t x, std::int64_t y) {
    img.at(x, y, 0) = r;
    img.at(x, y, 1) = g;
    img.at(x, y, 2) = b;
  };
  for (std::int64_t x = c.x; x < c.right(); ++x) {
    put(x, c.y);
    put(x, c.bottom() - 1);
  }
  for (std::int64_t y = c.y; y < c.bottom(); ++y) {
    put(c.x, y);
    put(c.right() - 1, y);
  }
}

double mask_fraction(const Mask& mask) {
  if (mask.pixel_count() == 0) return 0.0;
  return static_cast<double>(mask_area(mask)) /
         static_cast<double>(mask.pixel_count());
}

std::int64_t mask_area(const Mask& mask) {
  std::int64_t n = 0;
  for (auto v : mask.pixels()) n += (v != 0);
  return n;
}

Box mask_bounds(const Mask& mask) {
  std::int64_t x0 = mask.width(), y0 = mask.height(), x1 = -1, y1 = -1;
  for (std::int64_t y = 0; y < mask.height(); ++y) {
    for (std::int64_t x = 0; x < mask.width(); ++x) {
      if (mask.at(x, y) == 0) continue;
      x0 = std::min(x0, x);
      y0 = std::min(y0, y);
      x1 = std::max(x1, x);
      y1 = std::max(y1, y);
    }
  }
  if (x1 < x0) return {};
  return {x0, y0, x1 - x0 + 1, y1 - y0 + 1};
}

double mask_iou(const Mask& a, const Mask& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("mask_iou: size mismatch");
  }
  std::int64_t inter = 0, uni = 0;
  auto pa = a.pixels();
  auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const bool fa = pa[i] != 0, fb = pb[i] != 0;
    inter += (fa && fb);
    uni += (fa || fb);
  }
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

Mask mask_and(const Mask& a, const Mask& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("mask_and: size mismatch");
  }
  Mask out(a.width(), a.height());
  auto pa = a.pixels();
  auto pb = b.pixels();
  auto po = out.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    po[i] = (pa[i] != 0 && pb[i] != 0) ? 1 : 0;
  }
  return out;
}

Mask mask_or(const Mask& a, const Mask& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    throw std::invalid_argument("mask_or: size mismatch");
  }
  Mask out(a.width(), a.height());
  auto pa = a.pixels();
  auto pb = b.pixels();
  auto po = out.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    po[i] = (pa[i] != 0 || pb[i] != 0) ? 1 : 0;
  }
  return out;
}

Mask mask_not(const Mask& a) {
  Mask out(a.width(), a.height());
  auto pa = a.pixels();
  auto po = out.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) po[i] = pa[i] != 0 ? 0 : 1;
  return out;
}

}  // namespace zenesis::image
