#pragma once
// Region-of-interest utilities: crop, paste, overlay. These back the
// hierarchical "Further Segment" feature (crop a selected segment, rerun
// the pipeline on it, paste the refined mask back) and the qualitative
// figure outputs (mask overlays, box outlines).

#include "zenesis/image/geometry.hpp"
#include "zenesis/image/image.hpp"

namespace zenesis::image {

/// Copies the pixels under `roi` (clipped to the image) into a new image.
ImageF32 crop(const ImageF32& img, const Box& roi);

/// Copies the mask pixels under `roi` into a new mask.
Mask crop_mask(const Mask& mask, const Box& roi);

/// Writes `patch` into `dst` with its top-left corner at (roi.x, roi.y);
/// out-of-bounds parts are discarded. Non-zero patch pixels overwrite.
void paste_mask(Mask& dst, const Mask& patch, const Box& roi);

/// Renders a grayscale image with the mask's foreground brightened and a
/// visible boundary, for qualitative outputs. Returns an 8-bit RGB image.
ImageU8 overlay_mask(const ImageF32& img, const Mask& mask);

/// Draws a 1-pixel box outline into an RGB u8 image (r,g,b in [0,255]).
void draw_box(ImageU8& img, const Box& box, std::uint8_t r, std::uint8_t g,
              std::uint8_t b);

/// Fraction of mask pixels that are foreground.
double mask_fraction(const Mask& mask);

/// Number of foreground pixels.
std::int64_t mask_area(const Mask& mask);

/// Tight bounding box of the mask's foreground (empty box if no pixels).
Box mask_bounds(const Mask& mask);

/// Intersection-over-union of two same-sized masks (1.0 when both empty).
double mask_iou(const Mask& a, const Mask& b);

/// Logical ops (shapes must match).
Mask mask_and(const Mask& a, const Mask& b);
Mask mask_or(const Mask& a, const Mask& b);
Mask mask_not(const Mask& a);

}  // namespace zenesis::image
