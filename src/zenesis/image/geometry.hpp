#pragma once
// Shared 2-D geometry primitives: points and axis-aligned boxes.
// Boxes are the lingua franca between GroundingDetector (produces them),
// SamModel (consumes them as prompts), the HITL rectifier (edits them) and
// the volumetric heuristic (smooths them across slices).

#include <algorithm>
#include <cstdint>

namespace zenesis::image {

struct Point {
  std::int64_t x = 0;
  std::int64_t y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Axis-aligned box in pixel coordinates; (x, y) is the top-left corner,
/// the box spans [x, x+w) × [y, y+h).
struct Box {
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t w = 0;
  std::int64_t h = 0;

  friend bool operator==(const Box&, const Box&) = default;

  std::int64_t area() const noexcept { return w * h; }
  bool empty() const noexcept { return w <= 0 || h <= 0; }
  std::int64_t right() const noexcept { return x + w; }
  std::int64_t bottom() const noexcept { return y + h; }
  Point center() const noexcept { return {x + w / 2, y + h / 2}; }

  bool contains(Point p) const noexcept {
    return p.x >= x && p.x < right() && p.y >= y && p.y < bottom();
  }

  /// Intersection (empty box if disjoint).
  Box intersect(const Box& o) const noexcept {
    const std::int64_t x0 = std::max(x, o.x);
    const std::int64_t y0 = std::max(y, o.y);
    const std::int64_t x1 = std::min(right(), o.right());
    const std::int64_t y1 = std::min(bottom(), o.bottom());
    if (x1 <= x0 || y1 <= y0) return {};
    return {x0, y0, x1 - x0, y1 - y0};
  }

  /// Minimal box covering both.
  Box unite(const Box& o) const noexcept {
    if (empty()) return o;
    if (o.empty()) return *this;
    const std::int64_t x0 = std::min(x, o.x);
    const std::int64_t y0 = std::min(y, o.y);
    const std::int64_t x1 = std::max(right(), o.right());
    const std::int64_t y1 = std::max(bottom(), o.bottom());
    return {x0, y0, x1 - x0, y1 - y0};
  }

  /// Intersection-over-union with another box.
  double iou(const Box& o) const noexcept {
    const std::int64_t inter = intersect(o).area();
    const std::int64_t uni = area() + o.area() - inter;
    return uni <= 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
  }

  /// Clips the box to an image of the given size.
  Box clipped(std::int64_t width, std::int64_t height) const noexcept {
    return intersect({0, 0, width, height});
  }

  /// Expands by `margin` pixels on every side (clip afterwards if needed).
  Box expanded(std::int64_t margin) const noexcept {
    return {x - margin, y - margin, w + 2 * margin, h + 2 * margin};
  }
};

/// A detection: box + confidence score, as emitted by GroundingDetector.
struct ScoredBox {
  Box box;
  double score = 0.0;

  friend bool operator==(const ScoredBox&, const ScoredBox&) = default;
};

}  // namespace zenesis::image
