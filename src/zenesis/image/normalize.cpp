#include "zenesis/image/normalize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace zenesis::image {
namespace {

template <typename T>
ImageF32 integer_to_float(const Image<T>& img) {
  ImageF32 out(img.width(), img.height(), img.channels());
  const float scale = 1.0f / static_cast<float>(std::numeric_limits<T>::max());
  auto src = img.pixels();
  auto dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
  return out;
}

template <typename T>
Image<T> float_to_integer(const ImageF32& img) {
  Image<T> out(img.width(), img.height(), img.channels());
  const double scale = static_cast<double>(std::numeric_limits<T>::max());
  auto src = img.pixels();
  auto dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const double v = std::clamp(static_cast<double>(src[i]), 0.0, 1.0);
    dst[i] = static_cast<T>(v * scale + 0.5);
  }
  return out;
}

}  // namespace

Stats compute_stats(const ImageF32& img) {
  Stats s;
  auto px = img.pixels();
  if (px.empty()) return s;
  s.min = px[0];
  s.max = px[0];
  double sum = 0.0;
  for (float v : px) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(px.size());
  double var = 0.0;
  for (float v : px) {
    const double d = v - s.mean;
    var += d * d;
  }
  s.stddev = std::sqrt(var / static_cast<double>(px.size()));
  return s;
}

ImageF32 to_float(const AnyImage& img) {
  ImageF32 f = std::visit(
      [](const auto& i) -> ImageF32 {
        using T = std::remove_cvref_t<decltype(i.at(0, 0))>;
        if constexpr (std::is_same_v<T, float>) {
          return i;
        } else {
          return integer_to_float(i);
        }
      },
      img);
  if (f.channels() > 1) f = to_gray(f);
  return f;
}

ImageF32 to_gray(const ImageF32& img) {
  if (img.channels() == 1) return img;
  ImageF32 out(img.width(), img.height(), 1);
  // Rec.601 luma for 3+ channels; extra channels (alpha) are ignored.
  for (std::int64_t y = 0; y < img.height(); ++y) {
    for (std::int64_t x = 0; x < img.width(); ++x) {
      if (img.channels() >= 3) {
        out.at(x, y) = 0.299f * img.at(x, y, 0) + 0.587f * img.at(x, y, 1) +
                       0.114f * img.at(x, y, 2);
      } else {
        out.at(x, y) = img.at(x, y, 0);
      }
    }
  }
  return out;
}

std::vector<std::int64_t> histogram(const ImageF32& img, float lo, float hi,
                                    int bins) {
  if (bins <= 0) throw std::invalid_argument("histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("histogram: hi must exceed lo");
  std::vector<std::int64_t> h(static_cast<std::size_t>(bins), 0);
  const float scale = static_cast<float>(bins) / (hi - lo);
  for (float v : img.pixels()) {
    int b = static_cast<int>((v - lo) * scale);
    b = std::clamp(b, 0, bins - 1);
    ++h[static_cast<std::size_t>(b)];
  }
  return h;
}

float percentile(const ImageF32& img, double pct) {
  auto px = img.pixels();
  if (px.empty()) throw std::invalid_argument("percentile: empty image");
  std::vector<float> sorted(px.begin(), px.end());
  const double clamped = std::clamp(pct, 0.0, 100.0);
  auto idx = static_cast<std::size_t>(
      clamped / 100.0 * static_cast<double>(sorted.size() - 1) + 0.5);
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(idx),
                   sorted.end());
  return sorted[idx];
}

ImageF32 percentile_normalize(const ImageF32& img, double lo_pct,
                              double hi_pct) {
  const float lo = percentile(img, lo_pct);
  const float hi = percentile(img, hi_pct);
  ImageF32 out(img.width(), img.height(), img.channels());
  if (!(hi > lo)) return out;  // constant image → zeros
  const float inv = 1.0f / (hi - lo);
  auto src = img.pixels();
  auto dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = std::clamp((src[i] - lo) * inv, 0.0f, 1.0f);
  }
  return out;
}

ImageF32 minmax_normalize(const ImageF32& img) {
  const Stats s = compute_stats(img);
  ImageF32 out(img.width(), img.height(), img.channels());
  if (!(s.max > s.min)) return out;
  const float inv = 1.0f / (s.max - s.min);
  auto src = img.pixels();
  auto dst = out.pixels();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = (src[i] - s.min) * inv;
  return out;
}

ImageF32 clahe(const ImageF32& img, int tiles_x, int tiles_y,
               double clip_limit) {
  if (img.channels() != 1) {
    throw std::invalid_argument("clahe: single-channel input required");
  }
  if (tiles_x <= 0 || tiles_y <= 0) {
    throw std::invalid_argument("clahe: tile counts must be positive");
  }
  constexpr int kBins = 256;
  const std::int64_t w = img.width(), h = img.height();
  if (w == 0 || h == 0) return img;
  const double tw = static_cast<double>(w) / tiles_x;
  const double th = static_cast<double>(h) / tiles_y;

  // Per-tile clipped-equalization lookup tables.
  std::vector<std::vector<float>> luts(
      static_cast<std::size_t>(tiles_x * tiles_y),
      std::vector<float>(kBins, 0.0f));
  for (int ty = 0; ty < tiles_y; ++ty) {
    for (int tx = 0; tx < tiles_x; ++tx) {
      const std::int64_t x0 = static_cast<std::int64_t>(tx * tw);
      const std::int64_t x1 =
          std::min<std::int64_t>(w, static_cast<std::int64_t>((tx + 1) * tw));
      const std::int64_t y0 = static_cast<std::int64_t>(ty * th);
      const std::int64_t y1 =
          std::min<std::int64_t>(h, static_cast<std::int64_t>((ty + 1) * th));
      std::vector<double> hist(kBins, 0.0);
      std::int64_t count = 0;
      for (std::int64_t y = y0; y < y1; ++y) {
        for (std::int64_t x = x0; x < x1; ++x) {
          const float v = std::clamp(img.at(x, y), 0.0f, 1.0f);
          ++hist[static_cast<std::size_t>(
              std::min<int>(kBins - 1, static_cast<int>(v * kBins)))];
          ++count;
        }
      }
      if (count == 0) continue;
      // Clip and redistribute.
      const double limit = clip_limit * static_cast<double>(count) / kBins;
      double excess = 0.0;
      for (double& b : hist) {
        if (b > limit) {
          excess += b - limit;
          b = limit;
        }
      }
      const double bonus = excess / kBins;
      for (double& b : hist) b += bonus;
      // CDF → LUT.
      double cdf = 0.0;
      auto& lut = luts[static_cast<std::size_t>(ty * tiles_x + tx)];
      for (int b = 0; b < kBins; ++b) {
        cdf += hist[static_cast<std::size_t>(b)];
        lut[static_cast<std::size_t>(b)] =
            static_cast<float>(cdf / static_cast<double>(count));
      }
    }
  }

  // Bilinear blend of the four surrounding tile LUTs.
  ImageF32 out(w, h, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    const double fy = (static_cast<double>(y) + 0.5) / th - 0.5;
    const int ty0 = std::clamp(static_cast<int>(std::floor(fy)), 0, tiles_y - 1);
    const int ty1 = std::min(ty0 + 1, tiles_y - 1);
    const double wy = std::clamp(fy - ty0, 0.0, 1.0);
    for (std::int64_t x = 0; x < w; ++x) {
      const double fx = (static_cast<double>(x) + 0.5) / tw - 0.5;
      const int tx0 =
          std::clamp(static_cast<int>(std::floor(fx)), 0, tiles_x - 1);
      const int tx1 = std::min(tx0 + 1, tiles_x - 1);
      const double wx = std::clamp(fx - tx0, 0.0, 1.0);
      const float v = std::clamp(img.at(x, y), 0.0f, 1.0f);
      const auto bin = static_cast<std::size_t>(
          std::min<int>(kBins - 1, static_cast<int>(v * kBins)));
      const float v00 = luts[static_cast<std::size_t>(ty0 * tiles_x + tx0)][bin];
      const float v01 = luts[static_cast<std::size_t>(ty0 * tiles_x + tx1)][bin];
      const float v10 = luts[static_cast<std::size_t>(ty1 * tiles_x + tx0)][bin];
      const float v11 = luts[static_cast<std::size_t>(ty1 * tiles_x + tx1)][bin];
      const double top = v00 * (1.0 - wx) + v01 * wx;
      const double bot = v10 * (1.0 - wx) + v11 * wx;
      out.at(x, y) = static_cast<float>(top * (1.0 - wy) + bot * wy);
    }
  }
  return out;
}

AnyImage quantize(const ImageF32& img, int bits) {
  switch (bits) {
    case 8:
      return float_to_integer<std::uint8_t>(img);
    case 16:
      return float_to_integer<std::uint16_t>(img);
    case 32:
      return float_to_integer<std::uint32_t>(img);
    default:
      throw std::invalid_argument("quantize: bits must be 8, 16 or 32");
  }
}

ImageF32 make_ai_ready(const AnyImage& img, const ReadinessConfig& cfg) {
  ImageF32 f = to_float(img);
  f = percentile_normalize(f, cfg.lo_percentile, cfg.hi_percentile);
  if (cfg.use_clahe) {
    f = clahe(f, cfg.clahe_tiles, cfg.clahe_tiles, cfg.clahe_clip);
  }
  return f;
}

}  // namespace zenesis::image
