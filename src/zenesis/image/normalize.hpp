#pragma once
// The data-readiness layer: explicit, fidelity-preserving conversion from
// raw scientific rasters (any bit depth, gray or RGB) to the [0,1] float
// images the foundation models consume.
//
// This is the paper's Fig. 1 "raw → AI-ready" transform. The key design
// decision (ablated in bench/ablation_readiness) is robust percentile
// scaling instead of naive min-max: FIB-SEM detectors produce hot pixels
// and deep shadows that would otherwise compress the usable dynamic range
// into a sliver.

#include <cstdint>
#include <vector>

#include "zenesis/image/image.hpp"

namespace zenesis::image {

/// Summary statistics of a single-channel float image.
struct Stats {
  float min = 0.0f;
  float max = 0.0f;
  double mean = 0.0;
  double stddev = 0.0;
};

Stats compute_stats(const ImageF32& img);

/// Converts any supported raster to float. Integer types are scaled by
/// their type maximum into [0,1]; float input is passed through unchanged.
/// RGB is reduced to luminance (Rec.601) — scientific segmentation here is
/// single-phase, and the models consume one channel.
ImageF32 to_float(const AnyImage& img);

/// Luminance reduction for an interleaved multi-channel float image.
ImageF32 to_gray(const ImageF32& img);

/// 256-bin histogram of a float image over [lo, hi].
std::vector<std::int64_t> histogram(const ImageF32& img, float lo, float hi,
                                    int bins = 256);

/// Value below which `pct` (in [0,100]) of the pixels fall.
float percentile(const ImageF32& img, double pct);

/// Robust normalization: clip to [P(lo_pct), P(hi_pct)] then rescale to
/// [0,1]. Constant images map to all-zeros.
ImageF32 percentile_normalize(const ImageF32& img, double lo_pct = 0.5,
                              double hi_pct = 99.5);

/// Naive min-max rescale to [0,1] (the ablation baseline).
ImageF32 minmax_normalize(const ImageF32& img);

/// Contrast-limited tile-based histogram equalization ("CLAHE-lite"):
/// equalizes per tile with a clip limit, bilinearly blending tile mappings.
/// Used as an optional readiness step for very low-contrast modalities.
ImageF32 clahe(const ImageF32& img, int tiles_x = 8, int tiles_y = 8,
               double clip_limit = 2.5);

/// Quantizes a [0,1] float image to the requested unsigned bit depth
/// (8, 16 or 32). Values outside [0,1] are clamped.
AnyImage quantize(const ImageF32& img, int bits);

/// Configuration of the readiness pipeline.
struct ReadinessConfig {
  double lo_percentile = 0.5;
  double hi_percentile = 99.5;
  bool use_clahe = false;
  int clahe_tiles = 8;
  double clahe_clip = 2.5;
};

/// Full readiness pipeline: to_float → (gray) → percentile normalize →
/// optional CLAHE. The output is what every model and baseline sees.
ImageF32 make_ai_ready(const AnyImage& img, const ReadinessConfig& cfg = {});

}  // namespace zenesis::image
