#pragma once
// Fixed-footprint histogram for service telemetry (latencies in
// microseconds, batch sizes). Buckets grow geometrically (ratio 1.25), so
// quantile estimates carry a bounded ~12% relative error across nine
// decades while the whole structure stays a small POD that can be copied
// out in a stats snapshot without stopping the service.
//
// Not internally synchronized: the service records under its stats mutex
// and hands out value copies.

#include <array>
#include <cstdint>

namespace zenesis::serve {

class Histogram {
 public:
  /// Records one sample. Negative values clamp to zero.
  void record(double value);

  std::uint64_t count() const noexcept { return count_; }
  double total() const noexcept { return sum_; }
  double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double max() const noexcept { return max_; }

  /// Quantile estimate for p in [0, 100] (p50/p95/p99 in dashboards).
  /// Interpolates inside the winning bucket; exact for the max sample.
  double percentile(double p) const;

 private:
  static constexpr int kBuckets = 96;  ///< 1.25^95 ≈ 1.6e9 — covers >25 min in µs
  static int bucket_of(double value);
  static double bucket_lo(int bucket);
  static double bucket_hi(int bucket);

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace zenesis::serve
