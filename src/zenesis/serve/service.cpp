#include "zenesis/serve/service.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "zenesis/core/session.hpp"
#include "zenesis/io/tiff_stream.hpp"
#include "zenesis/models/feature_cache.hpp"
#include "zenesis/obs/trace.hpp"
#include "zenesis/parallel/parallel_for.hpp"
#include "zenesis/tensor/kernels.hpp"
#include "zenesis/tensor/quant.hpp"

namespace zenesis::serve {

namespace {

double us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

core::ErrorCode error_code_for(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull: return core::ErrorCode::kQueueFull;
    case RejectReason::kDeadlineExpired:
      return core::ErrorCode::kDeadlineExpired;
    case RejectReason::kShuttingDown: return core::ErrorCode::kShuttingDown;
    case RejectReason::kCancelled: return core::ErrorCode::kCancelled;
    case RejectReason::kNone: break;
  }
  return core::ErrorCode::kNone;
}

Response rejected_response(RejectReason reason, RequestKind kind) {
  Response r;
  r.status = Response::Status::kRejected;
  r.reject = reason;
  r.kind = kind;
  r.error.code = error_code_for(reason);
  r.error.stage = "serve.admission";
  r.error.message = core::to_string(r.error.code);
  return r;
}

ServiceConfig checked(const ServiceConfig& cfg) {
  const std::vector<std::string> issues = cfg.validate();
  if (!issues.empty()) {
    std::ostringstream msg;
    msg << "invalid ServiceConfig:";
    for (const auto& issue : issues) msg << "\n  - " << issue;
    throw std::invalid_argument(msg.str());
  }
  return cfg;
}

}  // namespace

Request Request::slice(image::AnyImage img, std::string text) {
  Request r;
  r.kind = RequestKind::kSlice;
  r.image = std::move(img);
  r.prompt = std::move(text);
  return r;
}

Request Request::boxed(image::AnyImage img, image::Box prompt_box,
                       core::BoxPromptOptions opts) {
  Request r;
  r.kind = RequestKind::kBox;
  r.image = std::move(img);
  r.box = prompt_box;
  r.box_options = std::move(opts);
  return r;
}

Request Request::multi_object(image::AnyImage img,
                              std::vector<std::string> class_prompts) {
  Request r;
  r.kind = RequestKind::kMultiObject;
  r.image = std::move(img);
  r.prompts = std::move(class_prompts);
  return r;
}

Request Request::volume_batch(image::VolumeU16 vol, std::string text) {
  Request r;
  r.kind = RequestKind::kVolume;
  r.volume = std::move(vol);
  r.prompt = std::move(text);
  return r;
}

Request Request::volume_file(std::string tiff_path, std::string text,
                             io::TiffOpenOptions open) {
  Request r;
  r.kind = RequestKind::kVolume;
  r.volume_path = std::move(tiff_path);
  r.prompt = std::move(text);
  r.tiff_open = open;
  return r;
}

std::vector<std::string> ServiceConfig::validate() const {
  std::vector<std::string> issues = pipeline.validate();
  if (queue_capacity < 1) issues.push_back("queue_capacity must be >= 1");
  if (max_batch < 1) issues.push_back("max_batch must be >= 1");
  return issues;
}

SegmentService::SegmentService(const ServiceConfig& cfg)
    : cfg_(checked(cfg)),
      pipeline_(cfg.pipeline),
      pool_(cfg.fanout_threads > 1
                ? std::make_unique<parallel::ThreadPool>(cfg.fanout_threads)
                : nullptr),
      paused_(cfg.start_paused) {
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

SegmentService::~SegmentService() {
  shutdown();
  // Deactivate dashboard registrations before members are torn down, so a
  // Session that outlives this service skips (and prunes) the dead source
  // instead of calling into freed memory.
  for (auto& registration : stats_registrations_) registration.reset();
}

parallel::ThreadPool& SegmentService::fanout_pool() const {
  return pool_ ? *pool_ : parallel::ThreadPool::global();
}

void SegmentService::fan_out(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (cfg_.fanout_threads == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Grain 1: request cost is irregular; idle workers pull dynamically.
  // body must not throw (every pipeline call below is wrapped).
  parallel::parallel_for_chunked(
      0, static_cast<std::int64_t>(n), 1,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          body(static_cast<std::size_t>(i));
        }
      },
      fanout_pool());
}

std::future<Response> SegmentService::submit(Request req) {
  // One trace id per request, allocated on the submitting thread: every
  // span this request produces — here, in the dispatcher, on fan-out
  // workers — carries it, and the Response echoes it back to the caller.
  // A submitter that already carries a trace context (the zen_net server
  // wrapping a wire request) keeps its id, so wire-level spans and the
  // service's spans stitch into one trace.
  std::uint64_t trace_id = obs::current_trace_id();
  if (trace_id == 0) trace_id = obs::new_trace_id();
  obs::TraceScope trace(trace_id);
  obs::Span submit_span("serve.submit");
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  const Clock::time_point now = Clock::now();
  bool notify = false;
  std::vector<Pending> purged;
  std::vector<RejectReason> purge_reasons;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!stopping_ && queue_.size() >= cfg_.queue_capacity) {
      // Admission-time purge: cancelled or already-expired entries give
      // up their slot before we reject with QueueFull, so cancellation
      // relieves backpressure even when the dispatcher is busy or paused.
      for (auto it = queue_.begin(); it != queue_.end();) {
        const bool cancelled = it->req.cancel && it->req.cancel->cancelled();
        const bool expired = it->req.deadline && *it->req.deadline <= now;
        if (cancelled || expired) {
          purge_reasons.push_back(cancelled ? RejectReason::kCancelled
                                            : RejectReason::kDeadlineExpired);
          purged.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    const auto reject_now = [&](RejectReason reason) {
      Response r = rejected_response(reason, req.kind);
      r.trace_id = trace_id;
      promise.set_value(std::move(r));
    };
    std::lock_guard<std::mutex> sl(stats_mutex_);
    stats_.submitted += 1;
    if (stopping_) {
      stats_.rejected_shutting_down += 1;
      reject_now(RejectReason::kShuttingDown);
    } else if (req.deadline && *req.deadline <= now) {
      stats_.expired += 1;
      reject_now(RejectReason::kDeadlineExpired);
    } else if (queue_.size() >= cfg_.queue_capacity) {
      stats_.rejected_queue_full += 1;
      reject_now(RejectReason::kQueueFull);
    } else {
      stats_.admitted += 1;
      queue_.push_back(Pending{std::move(req), std::move(promise), next_seq_++,
                               now, false, trace_id,
                               obs::enabled() ? obs::now_ns() : 0});
      stats_.queue_depth_high_water =
          std::max<std::uint64_t>(stats_.queue_depth_high_water, queue_.size());
      notify = true;
    }
  }
  for (std::size_t i = 0; i < purged.size(); ++i) {
    finish_rejected(purged[i], purge_reasons[i]);
  }
  if (notify) cv_.notify_all();
  return future;
}

void SegmentService::pause() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    paused_ = true;
  }
  cv_.notify_all();
}

void SegmentService::resume() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void SegmentService::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  std::lock_guard<std::mutex> lg(lifecycle_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

void SegmentService::dispatcher_loop() {
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    // Sweep first — and on every iteration, even while paused: cancelled
    // entries free their queue slot immediately and expired deadlines
    // complete with DeadlineExpired without waiting for resume(); neither
    // ever reaches the pipeline.
    const Clock::time_point now = Clock::now();
    std::vector<Pending> swept;
    std::vector<RejectReason> swept_reasons;
    for (auto it = queue_.begin(); it != queue_.end();) {
      const bool cancelled = it->req.cancel && it->req.cancel->cancelled();
      const bool expired = it->req.deadline && *it->req.deadline <= now;
      if (cancelled || expired) {
        swept_reasons.push_back(cancelled ? RejectReason::kCancelled
                                          : RejectReason::kDeadlineExpired);
        swept.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (!swept.empty()) {
      lk.unlock();
      for (std::size_t i = 0; i < swept.size(); ++i) {
        finish_rejected(swept[i], swept_reasons[i]);
      }
      lk.lock();
      continue;  // re-evaluate state after re-locking
    }
    if (queue_.empty()) {
      if (stopping_) break;
      cv_.wait(lk);
      continue;
    }
    if (paused_ && !stopping_) {  // shutdown drains even a paused service
      // Queue is non-empty: wake at the earliest queued deadline, or
      // shortly regardless — cancellation has no wake-up signal, so a
      // bounded wait keeps the sweep responsive while paused.
      Clock::time_point wake = now + std::chrono::milliseconds(50);
      for (const auto& p : queue_) {
        if (p.req.deadline && *p.req.deadline < wake) wake = *p.req.deadline;
      }
      cv_.wait_until(lk, wake);
      continue;
    }
    std::vector<Pending> batch = pop_batch_locked();
    lk.unlock();
    if (!batch.empty()) run_batch(std::move(batch));
    lk.lock();
  }
}

std::vector<SegmentService::Pending> SegmentService::pop_batch_locked() {
  std::vector<Pending> batch;
  if (queue_.empty()) return batch;
  // Pivot: highest priority; FIFO (lowest seq) within a level. queue_ is
  // append-ordered, so index order == admission order.
  std::size_t pivot = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    if (queue_[i].req.priority > queue_[pivot].req.priority) pivot = i;
  }
  std::vector<std::size_t> take{pivot};
  if (queue_[pivot].req.kind == RequestKind::kSlice) {
    for (std::size_t i = 0;
         i < queue_.size() && take.size() < cfg_.max_batch; ++i) {
      if (i == pivot) continue;
      if (queue_[i].req.kind == RequestKind::kSlice &&
          queue_[i].req.prompt == queue_[pivot].req.prompt) {
        take.push_back(i);
      }
    }
    std::sort(take.begin(), take.end());  // admission order inside the batch
  }
  batch.reserve(take.size());
  for (const std::size_t idx : take) batch.push_back(std::move(queue_[idx]));
  for (auto it = take.rbegin(); it != take.rend(); ++it) {
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
  return batch;
}

void SegmentService::run_batch(std::vector<Pending> batch) {
  const Clock::time_point dispatched = Clock::now();
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (p.req.cancel && p.req.cancel->cancelled()) {
      finish_rejected(p, RejectReason::kCancelled);
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;  // all cancelled: no batch was dispatched
  if (obs::enabled()) {
    // Each request's queue wait, stitched to its trace id: begun on the
    // submit thread (obs_enqueued_ns), closed here at dispatch.
    const std::int64_t now_ns = obs::now_ns();
    for (const auto& p : live) {
      obs::record_span("serve.queue", p.trace_id, p.obs_enqueued_ns, now_ns);
    }
  }
  obs::Span batch_span("serve.batch", live.size());
  {
    // Batch stats cover only the live subset — cancelled requests never
    // ran, so counting them would skew the serve_* histograms.
    std::lock_guard<std::mutex> sl(stats_mutex_);
    stats_.batches += 1;
    stats_.batch_size.record(static_cast<double>(live.size()));
    for (const auto& p : live) {
      stats_.queue_us.record(us_between(p.enqueued, dispatched));
    }
  }
  // Backstop: the stages below wrap every pipeline call per request, so
  // nothing should reach these handlers — but an exception escaping here
  // would leave promises broken and std::terminate the process, so fail
  // the remainder of the batch instead.
  try {
    if (live.front().req.kind == RequestKind::kSlice) {
      run_slice_batch(live);
    } else {
      run_single(live.front());  // non-slice kinds dispatch as singletons
    }
  } catch (...) {
    fail_unfinished(live,
                    core::error_from_current_exception("serve.dispatch"));
  }
}

void SegmentService::fail_unfinished(std::vector<Pending>& batch,
                                     const core::Error& error) {
  for (auto& p : batch) {
    if (p.done) continue;
    Response r;
    r.kind = p.req.kind;
    r.status = Response::Status::kError;
    r.error = error;
    finish(p, std::move(r), 0.0);
  }
}

void SegmentService::run_slice_batch(std::vector<Pending>& batch) {
  const std::size_t n = batch.size();
  const std::string prompt = batch.front().req.prompt;

  // Stage 1 — shared backbone encode. Readiness runs per request, then
  // each *unique* image (by content hash) is encoded exactly once, warming
  // the FeatureCache so every stage-2 decode hits. Every pipeline call is
  // guarded per request: a malformed input (e.g. an empty image) fails
  // only its own request with kError instead of throwing through the
  // fan-out into the dispatcher thread.
  const Clock::time_point t_encode = Clock::now();
  std::vector<image::ImageF32> ready(n);
  std::vector<std::optional<core::Error>> prep_error(n);
  {
    obs::Span encode_span("serve.encode", n);
    fan_out(n, [&](std::size_t i) {
      obs::TraceScope trace(batch[i].trace_id);
      try {
        ready[i] = pipeline_.make_ready(batch[i].req.image);
      } catch (...) {
        prep_error[i] = core::error_from_current_exception("serve.readiness");
      }
    });
    std::unordered_map<std::uint64_t, std::size_t> seen;
    std::vector<std::size_t> unique_idx;
    for (std::size_t i = 0; i < n; ++i) {
      if (prep_error[i]) continue;
      if (seen.emplace(models::hash_image(ready[i]), i).second) {
        unique_idx.push_back(i);
      }
    }
    fan_out(unique_idx.size(), [&](std::size_t j) {
      try {
        pipeline_.encode_cached(ready[unique_idx[j]]);
      } catch (...) {
        // Warm-up is best-effort: stage 2's segment_ready re-runs the
        // encode and reports the error on the owning request.
      }
    });
  }
  {
    std::lock_guard<std::mutex> sl(stats_mutex_);
    stats_.encode_us.record(us_between(t_encode, Clock::now()));
  }

  // Stage 2 — per-request decode, cache-hot.
  fan_out(n, [&](std::size_t i) {
    obs::TraceScope trace(batch[i].trace_id);
    obs::Span decode_span("serve.decode", i);
    const Clock::time_point t0 = Clock::now();
    Response r;
    r.kind = RequestKind::kSlice;
    if (prep_error[i]) {
      r.status = Response::Status::kError;
      r.error = *prep_error[i];
    } else {
      try {
        r.slice = pipeline_.segment_ready(ready[i], prompt);
      } catch (...) {
        r.status = Response::Status::kError;
        r.error = core::error_from_current_exception("serve.decode");
      }
    }
    finish(batch[i], std::move(r), us_between(t0, Clock::now()));
  });
}

void SegmentService::run_single(Pending& pending) {
  obs::TraceScope trace(pending.trace_id);
  obs::Span decode_span("serve.decode",
                        static_cast<std::uint64_t>(pending.req.kind));
  const Clock::time_point t0 = Clock::now();
  Response r;
  r.kind = pending.req.kind;
  double encode_us = 0.0;
  Clock::time_point t_decode = t0;
  try {
    switch (pending.req.kind) {
      case RequestKind::kBox: {
        const image::ImageF32 ready = pipeline_.make_ready(pending.req.image);
        pipeline_.encode_cached(ready);  // warm: decode below hits
        encode_us = us_between(t0, Clock::now());
        t_decode = Clock::now();
        r.slice = pipeline_.segment_with_box(ready, pending.req.box,
                                             pending.req.box_options);
        break;
      }
      case RequestKind::kMultiObject:
        r.multi = pipeline_.segment_multi(pending.req.image, pending.req.prompts);
        break;
      case RequestKind::kVolume:
        if (!pending.req.volume_path.empty()) {
          // Streamed ingestion: the pipeline parses once and decodes
          // slices on demand from its workers. TiffError (malformed
          // upload, limits) lands in the catch below as a kError response
          // with its kind mapped to an ErrorCode.
          r.volume = pipeline_.segment_volume(core::VolumeRequest::from_file(
              pending.req.volume_path, pending.req.prompt,
              pending.req.tiff_open));
        } else {
          // Borrow the queued stack — `pending` outlives the call, and
          // copying gigabytes into the request would defeat the point of
          // admission holding it only once.
          r.volume = pipeline_.segment_volume(core::VolumeRequest::view(
              pending.req.volume, pending.req.prompt));
        }
        break;
      case RequestKind::kSlice:
        r.slice = pipeline_.segment(pending.req.image, pending.req.prompt);
        break;
    }
  } catch (...) {
    r.status = Response::Status::kError;
    r.error = core::error_from_current_exception("serve.decode");
  }
  if (encode_us > 0.0) {
    std::lock_guard<std::mutex> sl(stats_mutex_);
    stats_.encode_us.record(encode_us);
  }
  finish(pending, std::move(r), us_between(t_decode, Clock::now()));
}

void SegmentService::finish(Pending& pending, Response&& response,
                            double decode_us) {
  const Clock::time_point done = Clock::now();
  response.trace_id = pending.trace_id;
  response.decode_us = decode_us;
  response.total_us = us_between(pending.enqueued, done);
  response.queue_us = response.total_us - decode_us;
  {
    std::lock_guard<std::mutex> sl(stats_mutex_);
    if (response.status == Response::Status::kOk) {
      stats_.completed += 1;
    } else {
      stats_.failed += 1;
    }
    stats_.decode_us.record(decode_us);
    stats_.total_us.record(response.total_us);
  }
  pending.done = true;
  pending.promise.set_value(std::move(response));
}

void SegmentService::finish_rejected(Pending& pending, RejectReason reason) {
  Response r = rejected_response(reason, pending.req.kind);
  // Rejected after admission: the error surfaced from the queue, not the
  // admission check.
  r.error.stage = "serve.queue";
  r.trace_id = pending.trace_id;
  r.total_us = us_between(pending.enqueued, Clock::now());
  r.queue_us = r.total_us;
  {
    std::lock_guard<std::mutex> sl(stats_mutex_);
    if (reason == RejectReason::kDeadlineExpired) {
      stats_.expired += 1;
    } else if (reason == RejectReason::kCancelled) {
      stats_.cancelled += 1;
    }
  }
  pending.done = true;
  pending.promise.set_value(std::move(r));
}

ServiceStats SegmentService::stats() const {
  std::lock_guard<std::mutex> sl(stats_mutex_);
  ServiceStats s = stats_;
  s.kernel_backend = tensor::backend_name();
  s.precision = tensor::quant::precision_name();
  return s;
}

std::size_t SegmentService::queue_depth() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return queue_.size();
}

void SegmentService::note_connection_accepted() {
  std::lock_guard<std::mutex> sl(stats_mutex_);
  stats_.connections_accepted += 1;
  stats_.connections_active += 1;
}

void SegmentService::note_connection_closed() {
  std::lock_guard<std::mutex> sl(stats_mutex_);
  if (stats_.connections_active > 0) stats_.connections_active -= 1;
}

void SegmentService::note_request_shed() {
  std::lock_guard<std::mutex> sl(stats_mutex_);
  stats_.requests_shed += 1;
}

void SegmentService::note_protocol_error() {
  std::lock_guard<std::mutex> sl(stats_mutex_);
  stats_.protocol_errors += 1;
}

void SegmentService::publish_stats(eval::Dashboard& dashboard) const {
  const ServiceStats s = stats();
  const auto set_u64 = [&](const char* key, std::uint64_t v) {
    dashboard.set_stat(key, static_cast<double>(v));
  };
  set_u64("serve_submitted", s.submitted);
  set_u64("serve_admitted", s.admitted);
  set_u64("serve_completed", s.completed);
  set_u64("serve_failed", s.failed);
  set_u64("serve_rejected_queue_full", s.rejected_queue_full);
  set_u64("serve_rejected_shutting_down", s.rejected_shutting_down);
  set_u64("serve_expired", s.expired);
  set_u64("serve_cancelled", s.cancelled);
  set_u64("serve_batches", s.batches);
  set_u64("serve_queue_high_water", s.queue_depth_high_water);
  set_u64("serve_connections_accepted", s.connections_accepted);
  set_u64("serve_connections_active", s.connections_active);
  set_u64("serve_requests_shed", s.requests_shed);
  set_u64("serve_protocol_errors", s.protocol_errors);
  dashboard.set_stat("serve_batch_size_mean", s.batch_size.mean());
  dashboard.set_stat("serve_batch_size_max", s.batch_size.max());
  const auto set_hist = [&](const std::string& prefix, const Histogram& h) {
    dashboard.set_stat(prefix + "_p50", h.percentile(50.0));
    dashboard.set_stat(prefix + "_p95", h.percentile(95.0));
    dashboard.set_stat(prefix + "_p99", h.percentile(99.0));
  };
  set_hist("serve_queue_us", s.queue_us);
  set_hist("serve_encode_us", s.encode_us);
  set_hist("serve_decode_us", s.decode_us);
  set_hist("serve_total_us", s.total_us);
  // Cache effectiveness as seen from the serving layer: how much of the
  // batch work the two cache tiers absorbed.
  const models::FeatureCacheStats fc = pipeline_.cache_stats();
  dashboard.set_stat("serve_feature_cache_hit_rate", fc.hit_rate());
  set_u64("serve_feature_cache_disk_hits", fc.disk_hits);
  const cache::LruCacheStats mc = pipeline_.mask_cache_stats();
  dashboard.set_stat("serve_mask_cache_hit_rate", mc.hit_rate());
  set_u64("serve_mask_cache_hits", mc.hits);
  // The dashboard is numeric-only, so the resolved kernel backend is
  // published as a one-hot key: serve_kernel_backend_<name> = 1.
  dashboard.set_stat("serve_kernel_backend_" + s.kernel_backend, 1.0);
  dashboard.set_stat("serve_precision_" + s.precision, 1.0);
}

void SegmentService::attach_to(core::Session& session) {
  // Scoped: the registration dies with this service, so a session that
  // outlives it skips the source instead of hitting freed memory.
  stats_registrations_.push_back(session.add_scoped_stats_source(
      [this](eval::Dashboard& dashboard) { publish_stats(dashboard); }));
}

}  // namespace zenesis::serve
