#include "zenesis/serve/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace zenesis::serve {

namespace {
constexpr double kRatio = 1.25;
const double kLogRatio = std::log(kRatio);
}  // namespace

int Histogram::bucket_of(double value) {
  if (value <= 1.0) return 0;
  const int b = 1 + static_cast<int>(std::log(value) / kLogRatio);
  return std::min(b, kBuckets - 1);
}

double Histogram::bucket_lo(int bucket) {
  return bucket == 0 ? 0.0 : std::pow(kRatio, bucket - 1);
}

double Histogram::bucket_hi(int bucket) {
  return bucket == 0 ? 1.0 : std::pow(kRatio, bucket);
}

void Histogram::record(double value) {
  value = std::max(value, 0.0);
  counts_[static_cast<std::size_t>(bucket_of(value))] += 1;
  count_ += 1;
  sum_ += value;
  max_ = std::max(max_, value);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = counts_[static_cast<std::size_t>(b)];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      // Linear interpolation across the bucket by the rank's position in
      // it; the top bucket is clipped to the exact observed maximum.
      const double frac =
          in_bucket == 0
              ? 0.0
              : (target - static_cast<double>(seen)) /
                    static_cast<double>(in_bucket);
      const double lo = bucket_lo(b);
      const double hi = std::min(bucket_hi(b), max_ > 0.0 ? max_ : bucket_hi(b));
      return lo + std::clamp(frac, 0.0, 1.0) * std::max(hi - lo, 0.0);
    }
    seen += in_bucket;
  }
  return max_;
}

}  // namespace zenesis::serve
