#pragma once
// zen_serve — asynchronous segmentation service in front of
// ZenesisPipeline (the serving layer the ROADMAP's "heavy traffic" north
// star asks for).
//
// Request lifecycle:
//
//   submit(Request) ── admission ──▶ bounded priority queue ──▶ dispatcher
//        │  (QueueFull / ShuttingDown / already-expired → immediate
//        │   Rejected response, nothing queued)
//        └─▶ std::future<Response>
//
//   The single dispatcher thread pops the highest-priority request (FIFO
//   within a priority level), sweeps expired deadlines and cancelled
//   entries (their futures complete with DeadlineExpired / Cancelled
//   WITHOUT running the pipeline; the sweep also runs while paused, and a
//   full queue purges such entries at admission before rejecting with
//   QueueFull, so cancellation relieves backpressure), groups
//   compatible Mode-A slice requests — same prompt — into a micro-batch,
//   and fans the batch out on the re-entrant ThreadPool: stage 1 shares
//   the expensive backbone encode of each unique image through the
//   pipeline's FeatureCache, stage 2 runs the cheap per-request decodes.
//   This is SAM's embed-once/prompt-many amortization applied across
//   requests instead of within one.
//
// Invariants:
//   * Responses are byte-identical to the equivalent blocking
//     ZenesisPipeline call, for every batch size and fan-out width (the
//     FeatureCache returns exactly the value a cold computation would).
//   * Backpressure is explicit: a full queue rejects immediately with
//     Rejected{QueueFull}; the service never buffers unboundedly and
//     never blocks the submitting thread.
//   * shutdown() drains everything already admitted, then the dispatcher
//     exits; submissions during/after the drain get Rejected{ShuttingDown}.
//   * A batch runs to completion before the next pop, so one giant volume
//     request can head-of-line block later arrivals; use `priority` to let
//     urgent requests jump the queue between batches.
//
// Observability: ServiceStats carries admission/rejection counters, the
// queue-depth high-water mark, per-stage latency histograms (queue wait,
// batch encode, per-request decode, end-to-end) and a batch-size
// histogram; publish_stats() copies the block into the Mode-C dashboard
// next to the feature-cache counters, and attach_to(Session) keeps it
// fresh automatically on every mode_c_evaluate.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "zenesis/core/error.hpp"
#include "zenesis/core/pipeline.hpp"
#include "zenesis/core/session.hpp"
#include "zenesis/eval/dashboard.hpp"
#include "zenesis/parallel/thread_pool.hpp"
#include "zenesis/serve/histogram.hpp"

namespace zenesis::serve {

using Clock = std::chrono::steady_clock;

/// Cooperative cancellation. Share one token across requests to cancel a
/// whole job. Cancellation is observed before the pipeline runs — at
/// dispatch, during the dispatcher's queue sweep, and at admission when a
/// full queue purges cancelled/expired entries before rejecting with
/// QueueFull — so cancelling queued work frees its slot; an
/// already-running request completes normally.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

enum class RequestKind {
  kSlice,        ///< Mode A: text-prompted single image
  kBox,          ///< Mode A: explicit-box prompt (BoxPromptOptions)
  kMultiObject,  ///< Mode A: one prompt per class → label map
  kVolume,       ///< Mode B: volume with temporal refinement
};

enum class RejectReason {
  kNone,
  kQueueFull,        ///< admission queue at capacity
  kDeadlineExpired,  ///< deadline passed before the pipeline ran
  kShuttingDown,     ///< submitted during/after shutdown
  kCancelled,        ///< CancelToken fired before dispatch
};

struct Request {
  RequestKind kind = RequestKind::kSlice;
  image::AnyImage image;              ///< kSlice / kBox / kMultiObject input
  image::VolumeU16 volume;            ///< kVolume input (materialized form)
  /// kVolume alternative: path of a TIFF stack streamed slice-by-slice at
  /// dispatch time. A queued request then holds a path, not gigabytes of
  /// pixels, so volume traffic cannot memory-bomb the admission queue.
  std::string volume_path;
  /// Ingestion knobs for `volume_path` (byte-source kind, read limits,
  /// prefetch); defaults mean auto-selected source with default limits.
  io::TiffOpenOptions tiff_open{};
  std::string prompt;                 ///< kSlice / kVolume text prompt
  std::vector<std::string> prompts;   ///< kMultiObject class prompts
  image::Box box;                     ///< kBox prompt box
  core::BoxPromptOptions box_options; ///< kBox ranking / optional prompt

  /// Higher dispatches first; FIFO within a level.
  int priority = 0;
  /// Absolute completion deadline; unset = no deadline.
  std::optional<Clock::time_point> deadline;
  std::shared_ptr<CancelToken> cancel;

  // Factories for the four request shapes.
  static Request slice(image::AnyImage img, std::string text);
  static Request boxed(image::AnyImage img, image::Box prompt_box,
                       core::BoxPromptOptions opts = {});
  static Request multi_object(image::AnyImage img,
                              std::vector<std::string> class_prompts);
  static Request volume_batch(image::VolumeU16 vol, std::string text);
  /// Mode B streamed from disk: the TIFF (classic or BigTIFF, tiled or
  /// striped; raw, PackBits, LZW or Deflate, with or without the
  /// horizontal predictor) is opened and decoded slice-by-slice when
  /// the request dispatches. A malformed or oversized file produces a
  /// kError response carrying the io::TiffError message; the service
  /// itself is unaffected. `open` picks the byte source (mmap/pread/
  /// memory), read limits and prefetch behaviour.
  static Request volume_file(std::string tiff_path, std::string text,
                             io::TiffOpenOptions open = {});

  // Fluent knobs: Request::slice(img, p).with_priority(2).with_deadline_in(5ms)
  Request& with_priority(int p) & { priority = p; return *this; }
  Request&& with_priority(int p) && { priority = p; return std::move(*this); }
  Request& with_deadline(Clock::time_point t) & { deadline = t; return *this; }
  Request&& with_deadline(Clock::time_point t) && {
    deadline = t;
    return std::move(*this);
  }
  Request& with_deadline_in(Clock::duration d) & {
    deadline = Clock::now() + d;
    return *this;
  }
  Request&& with_deadline_in(Clock::duration d) && {
    deadline = Clock::now() + d;
    return std::move(*this);
  }
  Request& with_cancel(std::shared_ptr<CancelToken> token) & {
    cancel = std::move(token);
    return *this;
  }
  Request&& with_cancel(std::shared_ptr<CancelToken> token) && {
    cancel = std::move(token);
    return std::move(*this);
  }
};

struct Response {
  enum class Status {
    kOk,        ///< payload for `kind` is engaged
    kRejected,  ///< see `reject` — the pipeline never ran
    kError,     ///< the pipeline threw — see `error`
  };
  Status status = Status::kOk;
  RejectReason reject = RejectReason::kNone;
  /// Structured failure description (kError and kRejected): code to
  /// branch on, the stage that detected it, the human-readable message.
  /// `error.ok()` on successful responses.
  core::Error error;
  RequestKind kind = RequestKind::kSlice;
  /// The request's obs trace id, allocated at submit. Spans recorded for
  /// this request (queue wait, encode, decode — across the submitter,
  /// dispatcher and fan-out threads) all carry this id, so a slow
  /// response can be looked up in the Chrome trace export directly.
  std::uint64_t trace_id = 0;

  // Exactly one engaged on kOk, matching `kind` (slice for both kSlice
  // and kBox).
  std::optional<core::SliceResult> slice;
  std::optional<core::ZenesisPipeline::MultiObjectResult> multi;
  std::optional<core::VolumeResult> volume;

  // Per-request timings (µs). Zero for responses rejected at submit.
  double queue_us = 0.0;   ///< time not spent decoding (queueing + batching)
  double decode_us = 0.0;  ///< pipeline run (post-encode) for this request
  double total_us = 0.0;   ///< admission → completion

  bool ok() const noexcept { return status == Status::kOk; }
};

struct ServiceConfig {
  core::PipelineConfig pipeline;
  /// Admission bound: submissions beyond this many queued requests are
  /// rejected with Rejected{QueueFull} (explicit backpressure).
  std::size_t queue_capacity = 64;
  /// Maximum compatible slice requests fused into one micro-batch.
  std::size_t max_batch = 8;
  /// Fan-out width inside a batch: 0 = process-global pool, 1 = run on
  /// the dispatcher thread, N > 1 = dedicated pool of N workers.
  std::size_t fanout_threads = 0;
  /// Start with dispatch paused (admission still runs) — deterministic
  /// queue buildup for tests and staged warm-up; call resume() to serve.
  bool start_paused = false;

  /// One message per invalid knob (queue/batch bounds plus everything
  /// PipelineConfig::validate reports); empty = valid.
  std::vector<std::string> validate() const;
};

/// Snapshot of the service's counters; copied out under the stats lock so
/// it is internally consistent.
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;  ///< Ok responses
  std::uint64_t failed = 0;     ///< Error responses (pipeline threw)
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutting_down = 0;
  std::uint64_t expired = 0;    ///< DeadlineExpired (at submit or in queue)
  std::uint64_t cancelled = 0;
  std::uint64_t batches = 0;
  std::uint64_t queue_depth_high_water = 0;

  // Connection-level counters, maintained by a network front end (the
  // zenesis::net server) through the note_connection_* hooks below. They
  // live here — not only in net's own stats — so the one ServiceStats
  // block a dashboard already subscribes to tells the whole serving
  // story; services used purely in-process simply report zeros.
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;  ///< gauge: currently open
  std::uint64_t requests_shed = 0;       ///< shed before service admission
  std::uint64_t protocol_errors = 0;     ///< malformed wire traffic

  Histogram queue_us;    ///< admission → dispatch, per request
  Histogram encode_us;   ///< shared-backbone stage, per batch
  Histogram decode_us;   ///< pipeline decode, per request
  Histogram total_us;    ///< admission → completion, per request
  Histogram batch_size;  ///< requests per dispatched batch

  /// Resolved tensor kernel backend the service's math runs on
  /// ("scalar", "blocked", "avx2", "neon"). Snapshot of
  /// tensor::backend_name() at stats() time.
  std::string kernel_backend;

  /// Resolved numeric precision of the encoder GEMM path ("fp32",
  /// "int8"). Snapshot of tensor::quant::precision_name() at stats()
  /// time.
  std::string precision;
};

class SegmentService {
 public:
  /// Validates `cfg` (throws std::invalid_argument listing every issue)
  /// and starts the dispatcher.
  explicit SegmentService(const ServiceConfig& cfg = {});
  ~SegmentService();

  SegmentService(const SegmentService&) = delete;
  SegmentService& operator=(const SegmentService&) = delete;

  /// Admits a request. Never blocks: a full queue, an expired deadline or
  /// a draining service completes the future immediately with a Rejected
  /// response.
  std::future<Response> submit(Request req);

  /// Stops admission, drains every queued request, then joins the
  /// dispatcher. Idempotent and safe to call concurrently.
  void shutdown();

  /// Pause/resume dispatch (admission unaffected). While paused, queued
  /// deadlines only expire once dispatch resumes.
  void pause();
  void resume();

  ServiceStats stats() const;
  std::size_t queue_depth() const;

  /// Connection-lifecycle hooks for a network front end (zenesis::net).
  /// Thread-safe; they only bump the ServiceStats counters so wire-level
  /// health shows up on the same dashboard as admission/latency stats.
  void note_connection_accepted();
  void note_connection_closed();
  /// A request was load-shed (tenant quota / overload) before reaching
  /// this service's admission queue.
  void note_request_shed();
  /// Malformed wire traffic (bad frame, bad payload, slow-loris timeout).
  void note_protocol_error();

  /// Writes the stats block into a Mode-C dashboard (serve_* keys).
  void publish_stats(eval::Dashboard& dashboard) const;

  /// Registers publish_stats as a runtime-stats source on `session`, so
  /// every mode_c_evaluate republishes fresh service counters. The
  /// registration is scoped: destroying this service deactivates it, and
  /// a session that outlives the service simply skips (and prunes) the
  /// dead source — no ordering requirement on the caller.
  void attach_to(core::Session& session);

  const core::ZenesisPipeline& pipeline() const noexcept { return pipeline_; }
  const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  struct Pending {
    Request req;
    std::promise<Response> promise;
    std::uint64_t seq = 0;
    Clock::time_point enqueued{};
    bool done = false;  ///< promise fulfilled (guards the run_batch backstop)
    std::uint64_t trace_id = 0;      ///< obs id allocated at submit
    std::int64_t obs_enqueued_ns = 0;  ///< obs clock at admission (0 = off)
  };

  void dispatcher_loop();
  /// Pops the next micro-batch (priority pivot + compatible slice
  /// requests, admission order). Caller holds mutex_.
  std::vector<Pending> pop_batch_locked();
  void run_batch(std::vector<Pending> batch);
  void run_slice_batch(std::vector<Pending>& batch);
  void run_single(Pending& pending);
  /// Runs body(i) for i in [0, n) on the fan-out substrate.
  void fan_out(std::size_t n, const std::function<void(std::size_t)>& body);
  void finish(Pending& pending, Response&& response, double decode_us);
  void finish_rejected(Pending& pending, RejectReason reason);
  /// Backstop: completes every not-yet-finished request with kError so no
  /// exception can leave a promise unfulfilled or escape the dispatcher.
  void fail_unfinished(std::vector<Pending>& batch, const core::Error& error);
  parallel::ThreadPool& fanout_pool() const;

  ServiceConfig cfg_;
  core::ZenesisPipeline pipeline_;
  std::unique_ptr<parallel::ThreadPool> pool_;  ///< when fanout_threads > 1

  mutable std::mutex mutex_;  ///< queue_, stopping_, paused_, next_seq_
  std::condition_variable cv_;
  std::vector<Pending> queue_;
  bool stopping_ = false;
  bool paused_ = false;
  std::uint64_t next_seq_ = 0;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;

  /// Scoped dashboard registrations from attach_to; reset in the
  /// destructor so an outliving Session skips the dead source.
  std::vector<core::StatsRegistration> stats_registrations_;

  std::mutex lifecycle_mutex_;  ///< serializes shutdown/join
  std::thread dispatcher_;
};

}  // namespace zenesis::serve
