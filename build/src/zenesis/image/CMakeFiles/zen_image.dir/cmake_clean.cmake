file(REMOVE_RECURSE
  "CMakeFiles/zen_image.dir/image.cpp.o"
  "CMakeFiles/zen_image.dir/image.cpp.o.d"
  "CMakeFiles/zen_image.dir/normalize.cpp.o"
  "CMakeFiles/zen_image.dir/normalize.cpp.o.d"
  "CMakeFiles/zen_image.dir/roi.cpp.o"
  "CMakeFiles/zen_image.dir/roi.cpp.o.d"
  "libzen_image.a"
  "libzen_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
