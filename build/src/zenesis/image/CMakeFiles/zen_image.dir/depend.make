# Empty dependencies file for zen_image.
# This may be replaced when dependencies are built.
