file(REMOVE_RECURSE
  "libzen_image.a"
)
