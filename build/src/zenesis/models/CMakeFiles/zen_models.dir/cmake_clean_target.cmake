file(REMOVE_RECURSE
  "libzen_models.a"
)
