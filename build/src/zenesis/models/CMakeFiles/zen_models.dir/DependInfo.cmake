
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zenesis/models/auto_mask.cpp" "src/zenesis/models/CMakeFiles/zen_models.dir/auto_mask.cpp.o" "gcc" "src/zenesis/models/CMakeFiles/zen_models.dir/auto_mask.cpp.o.d"
  "/root/repo/src/zenesis/models/backbone.cpp" "src/zenesis/models/CMakeFiles/zen_models.dir/backbone.cpp.o" "gcc" "src/zenesis/models/CMakeFiles/zen_models.dir/backbone.cpp.o.d"
  "/root/repo/src/zenesis/models/features.cpp" "src/zenesis/models/CMakeFiles/zen_models.dir/features.cpp.o" "gcc" "src/zenesis/models/CMakeFiles/zen_models.dir/features.cpp.o.d"
  "/root/repo/src/zenesis/models/finetune.cpp" "src/zenesis/models/CMakeFiles/zen_models.dir/finetune.cpp.o" "gcc" "src/zenesis/models/CMakeFiles/zen_models.dir/finetune.cpp.o.d"
  "/root/repo/src/zenesis/models/grounding.cpp" "src/zenesis/models/CMakeFiles/zen_models.dir/grounding.cpp.o" "gcc" "src/zenesis/models/CMakeFiles/zen_models.dir/grounding.cpp.o.d"
  "/root/repo/src/zenesis/models/sam.cpp" "src/zenesis/models/CMakeFiles/zen_models.dir/sam.cpp.o" "gcc" "src/zenesis/models/CMakeFiles/zen_models.dir/sam.cpp.o.d"
  "/root/repo/src/zenesis/models/text_encoder.cpp" "src/zenesis/models/CMakeFiles/zen_models.dir/text_encoder.cpp.o" "gcc" "src/zenesis/models/CMakeFiles/zen_models.dir/text_encoder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zenesis/tensor/CMakeFiles/zen_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/cv/CMakeFiles/zen_cv.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/image/CMakeFiles/zen_image.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/parallel/CMakeFiles/zen_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
