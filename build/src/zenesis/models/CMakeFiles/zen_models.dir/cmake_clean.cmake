file(REMOVE_RECURSE
  "CMakeFiles/zen_models.dir/auto_mask.cpp.o"
  "CMakeFiles/zen_models.dir/auto_mask.cpp.o.d"
  "CMakeFiles/zen_models.dir/backbone.cpp.o"
  "CMakeFiles/zen_models.dir/backbone.cpp.o.d"
  "CMakeFiles/zen_models.dir/features.cpp.o"
  "CMakeFiles/zen_models.dir/features.cpp.o.d"
  "CMakeFiles/zen_models.dir/finetune.cpp.o"
  "CMakeFiles/zen_models.dir/finetune.cpp.o.d"
  "CMakeFiles/zen_models.dir/grounding.cpp.o"
  "CMakeFiles/zen_models.dir/grounding.cpp.o.d"
  "CMakeFiles/zen_models.dir/sam.cpp.o"
  "CMakeFiles/zen_models.dir/sam.cpp.o.d"
  "CMakeFiles/zen_models.dir/text_encoder.cpp.o"
  "CMakeFiles/zen_models.dir/text_encoder.cpp.o.d"
  "libzen_models.a"
  "libzen_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
