# Empty compiler generated dependencies file for zen_models.
# This may be replaced when dependencies are built.
