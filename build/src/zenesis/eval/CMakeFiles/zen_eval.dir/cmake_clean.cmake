file(REMOVE_RECURSE
  "CMakeFiles/zen_eval.dir/dashboard.cpp.o"
  "CMakeFiles/zen_eval.dir/dashboard.cpp.o.d"
  "CMakeFiles/zen_eval.dir/metrics.cpp.o"
  "CMakeFiles/zen_eval.dir/metrics.cpp.o.d"
  "libzen_eval.a"
  "libzen_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
