# Empty dependencies file for zen_eval.
# This may be replaced when dependencies are built.
