file(REMOVE_RECURSE
  "libzen_eval.a"
)
