# Empty dependencies file for zen_hitl.
# This may be replaced when dependencies are built.
