file(REMOVE_RECURSE
  "CMakeFiles/zen_hitl.dir/rectify.cpp.o"
  "CMakeFiles/zen_hitl.dir/rectify.cpp.o.d"
  "libzen_hitl.a"
  "libzen_hitl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_hitl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
