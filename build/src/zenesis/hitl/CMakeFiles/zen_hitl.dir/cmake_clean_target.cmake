file(REMOVE_RECURSE
  "libzen_hitl.a"
)
