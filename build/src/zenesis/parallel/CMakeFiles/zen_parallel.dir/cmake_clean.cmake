file(REMOVE_RECURSE
  "CMakeFiles/zen_parallel.dir/parallel_for.cpp.o"
  "CMakeFiles/zen_parallel.dir/parallel_for.cpp.o.d"
  "CMakeFiles/zen_parallel.dir/rng.cpp.o"
  "CMakeFiles/zen_parallel.dir/rng.cpp.o.d"
  "CMakeFiles/zen_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/zen_parallel.dir/thread_pool.cpp.o.d"
  "libzen_parallel.a"
  "libzen_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
