# Empty compiler generated dependencies file for zen_parallel.
# This may be replaced when dependencies are built.
