file(REMOVE_RECURSE
  "libzen_parallel.a"
)
