file(REMOVE_RECURSE
  "CMakeFiles/zen_cv.dir/components.cpp.o"
  "CMakeFiles/zen_cv.dir/components.cpp.o.d"
  "CMakeFiles/zen_cv.dir/distance.cpp.o"
  "CMakeFiles/zen_cv.dir/distance.cpp.o.d"
  "CMakeFiles/zen_cv.dir/filters.cpp.o"
  "CMakeFiles/zen_cv.dir/filters.cpp.o.d"
  "CMakeFiles/zen_cv.dir/morphology.cpp.o"
  "CMakeFiles/zen_cv.dir/morphology.cpp.o.d"
  "CMakeFiles/zen_cv.dir/threshold.cpp.o"
  "CMakeFiles/zen_cv.dir/threshold.cpp.o.d"
  "libzen_cv.a"
  "libzen_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
