# Empty compiler generated dependencies file for zen_cv.
# This may be replaced when dependencies are built.
