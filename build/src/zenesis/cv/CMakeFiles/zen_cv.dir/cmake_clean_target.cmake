file(REMOVE_RECURSE
  "libzen_cv.a"
)
