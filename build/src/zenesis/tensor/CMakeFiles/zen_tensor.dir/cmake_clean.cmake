file(REMOVE_RECURSE
  "CMakeFiles/zen_tensor.dir/conv.cpp.o"
  "CMakeFiles/zen_tensor.dir/conv.cpp.o.d"
  "CMakeFiles/zen_tensor.dir/init.cpp.o"
  "CMakeFiles/zen_tensor.dir/init.cpp.o.d"
  "CMakeFiles/zen_tensor.dir/ops.cpp.o"
  "CMakeFiles/zen_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/zen_tensor.dir/tensor.cpp.o"
  "CMakeFiles/zen_tensor.dir/tensor.cpp.o.d"
  "libzen_tensor.a"
  "libzen_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
