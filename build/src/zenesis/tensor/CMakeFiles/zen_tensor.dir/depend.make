# Empty dependencies file for zen_tensor.
# This may be replaced when dependencies are built.
