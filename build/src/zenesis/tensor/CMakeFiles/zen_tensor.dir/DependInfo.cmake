
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zenesis/tensor/conv.cpp" "src/zenesis/tensor/CMakeFiles/zen_tensor.dir/conv.cpp.o" "gcc" "src/zenesis/tensor/CMakeFiles/zen_tensor.dir/conv.cpp.o.d"
  "/root/repo/src/zenesis/tensor/init.cpp" "src/zenesis/tensor/CMakeFiles/zen_tensor.dir/init.cpp.o" "gcc" "src/zenesis/tensor/CMakeFiles/zen_tensor.dir/init.cpp.o.d"
  "/root/repo/src/zenesis/tensor/ops.cpp" "src/zenesis/tensor/CMakeFiles/zen_tensor.dir/ops.cpp.o" "gcc" "src/zenesis/tensor/CMakeFiles/zen_tensor.dir/ops.cpp.o.d"
  "/root/repo/src/zenesis/tensor/tensor.cpp" "src/zenesis/tensor/CMakeFiles/zen_tensor.dir/tensor.cpp.o" "gcc" "src/zenesis/tensor/CMakeFiles/zen_tensor.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zenesis/parallel/CMakeFiles/zen_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
