file(REMOVE_RECURSE
  "libzen_tensor.a"
)
