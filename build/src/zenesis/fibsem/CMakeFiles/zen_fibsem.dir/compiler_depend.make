# Empty compiler generated dependencies file for zen_fibsem.
# This may be replaced when dependencies are built.
