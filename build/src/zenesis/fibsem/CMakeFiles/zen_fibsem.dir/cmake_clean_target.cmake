file(REMOVE_RECURSE
  "libzen_fibsem.a"
)
