file(REMOVE_RECURSE
  "CMakeFiles/zen_fibsem.dir/synth.cpp.o"
  "CMakeFiles/zen_fibsem.dir/synth.cpp.o.d"
  "libzen_fibsem.a"
  "libzen_fibsem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_fibsem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
