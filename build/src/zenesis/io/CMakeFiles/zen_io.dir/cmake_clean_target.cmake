file(REMOVE_RECURSE
  "libzen_io.a"
)
