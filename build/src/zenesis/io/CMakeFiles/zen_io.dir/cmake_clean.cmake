file(REMOVE_RECURSE
  "CMakeFiles/zen_io.dir/pnm.cpp.o"
  "CMakeFiles/zen_io.dir/pnm.cpp.o.d"
  "CMakeFiles/zen_io.dir/report.cpp.o"
  "CMakeFiles/zen_io.dir/report.cpp.o.d"
  "CMakeFiles/zen_io.dir/tiff.cpp.o"
  "CMakeFiles/zen_io.dir/tiff.cpp.o.d"
  "libzen_io.a"
  "libzen_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
