# Empty dependencies file for zen_io.
# This may be replaced when dependencies are built.
