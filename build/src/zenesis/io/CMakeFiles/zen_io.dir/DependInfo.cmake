
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zenesis/io/pnm.cpp" "src/zenesis/io/CMakeFiles/zen_io.dir/pnm.cpp.o" "gcc" "src/zenesis/io/CMakeFiles/zen_io.dir/pnm.cpp.o.d"
  "/root/repo/src/zenesis/io/report.cpp" "src/zenesis/io/CMakeFiles/zen_io.dir/report.cpp.o" "gcc" "src/zenesis/io/CMakeFiles/zen_io.dir/report.cpp.o.d"
  "/root/repo/src/zenesis/io/tiff.cpp" "src/zenesis/io/CMakeFiles/zen_io.dir/tiff.cpp.o" "gcc" "src/zenesis/io/CMakeFiles/zen_io.dir/tiff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zenesis/image/CMakeFiles/zen_image.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/parallel/CMakeFiles/zen_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
