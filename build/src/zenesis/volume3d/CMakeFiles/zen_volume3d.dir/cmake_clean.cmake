file(REMOVE_RECURSE
  "CMakeFiles/zen_volume3d.dir/heuristic.cpp.o"
  "CMakeFiles/zen_volume3d.dir/heuristic.cpp.o.d"
  "libzen_volume3d.a"
  "libzen_volume3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_volume3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
