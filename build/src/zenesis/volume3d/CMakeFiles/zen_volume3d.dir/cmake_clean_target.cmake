file(REMOVE_RECURSE
  "libzen_volume3d.a"
)
