# Empty dependencies file for zen_volume3d.
# This may be replaced when dependencies are built.
