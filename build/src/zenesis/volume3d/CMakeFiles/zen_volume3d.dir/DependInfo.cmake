
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zenesis/volume3d/heuristic.cpp" "src/zenesis/volume3d/CMakeFiles/zen_volume3d.dir/heuristic.cpp.o" "gcc" "src/zenesis/volume3d/CMakeFiles/zen_volume3d.dir/heuristic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zenesis/image/CMakeFiles/zen_image.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/parallel/CMakeFiles/zen_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
