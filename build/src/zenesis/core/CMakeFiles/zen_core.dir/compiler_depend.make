# Empty compiler generated dependencies file for zen_core.
# This may be replaced when dependencies are built.
