file(REMOVE_RECURSE
  "CMakeFiles/zen_core.dir/pipeline.cpp.o"
  "CMakeFiles/zen_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/zen_core.dir/session.cpp.o"
  "CMakeFiles/zen_core.dir/session.cpp.o.d"
  "libzen_core.a"
  "libzen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
