# Empty dependencies file for volume_batch.
# This may be replaced when dependencies are built.
