file(REMOVE_RECURSE
  "CMakeFiles/volume_batch.dir/volume_batch.cpp.o"
  "CMakeFiles/volume_batch.dir/volume_batch.cpp.o.d"
  "volume_batch"
  "volume_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volume_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
