file(REMOVE_RECURSE
  "CMakeFiles/interactive_rectify.dir/interactive_rectify.cpp.o"
  "CMakeFiles/interactive_rectify.dir/interactive_rectify.cpp.o.d"
  "interactive_rectify"
  "interactive_rectify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_rectify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
