# Empty compiler generated dependencies file for interactive_rectify.
# This may be replaced when dependencies are built.
