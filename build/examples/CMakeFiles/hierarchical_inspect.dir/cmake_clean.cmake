file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_inspect.dir/hierarchical_inspect.cpp.o"
  "CMakeFiles/hierarchical_inspect.dir/hierarchical_inspect.cpp.o.d"
  "hierarchical_inspect"
  "hierarchical_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
