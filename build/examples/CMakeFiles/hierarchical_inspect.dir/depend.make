# Empty dependencies file for hierarchical_inspect.
# This may be replaced when dependencies are built.
