file(REMOVE_RECURSE
  "CMakeFiles/test_grounded_box.dir/test_grounded_box.cpp.o"
  "CMakeFiles/test_grounded_box.dir/test_grounded_box.cpp.o.d"
  "test_grounded_box"
  "test_grounded_box.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grounded_box.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
