# Empty compiler generated dependencies file for test_grounded_box.
# This may be replaced when dependencies are built.
