file(REMOVE_RECURSE
  "CMakeFiles/test_pnm.dir/test_pnm.cpp.o"
  "CMakeFiles/test_pnm.dir/test_pnm.cpp.o.d"
  "test_pnm"
  "test_pnm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pnm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
