file(REMOVE_RECURSE
  "CMakeFiles/test_roi.dir/test_roi.cpp.o"
  "CMakeFiles/test_roi.dir/test_roi.cpp.o.d"
  "test_roi"
  "test_roi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
