# Empty dependencies file for test_roi.
# This may be replaced when dependencies are built.
