# Empty compiler generated dependencies file for test_multi_object.
# This may be replaced when dependencies are built.
