file(REMOVE_RECURSE
  "CMakeFiles/test_multi_object.dir/test_multi_object.cpp.o"
  "CMakeFiles/test_multi_object.dir/test_multi_object.cpp.o.d"
  "test_multi_object"
  "test_multi_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
