# Empty compiler generated dependencies file for test_finetune.
# This may be replaced when dependencies are built.
