file(REMOVE_RECURSE
  "CMakeFiles/test_finetune.dir/test_finetune.cpp.o"
  "CMakeFiles/test_finetune.dir/test_finetune.cpp.o.d"
  "test_finetune"
  "test_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
