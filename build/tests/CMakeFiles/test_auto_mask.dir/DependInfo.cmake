
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_auto_mask.cpp" "tests/CMakeFiles/test_auto_mask.dir/test_auto_mask.cpp.o" "gcc" "tests/CMakeFiles/test_auto_mask.dir/test_auto_mask.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zenesis/core/CMakeFiles/zen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/fibsem/CMakeFiles/zen_fibsem.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/hitl/CMakeFiles/zen_hitl.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/models/CMakeFiles/zen_models.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/volume3d/CMakeFiles/zen_volume3d.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/eval/CMakeFiles/zen_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/cv/CMakeFiles/zen_cv.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/io/CMakeFiles/zen_io.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/image/CMakeFiles/zen_image.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/tensor/CMakeFiles/zen_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/zenesis/parallel/CMakeFiles/zen_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
