# Empty compiler generated dependencies file for test_auto_mask.
# This may be replaced when dependencies are built.
