file(REMOVE_RECURSE
  "CMakeFiles/test_auto_mask.dir/test_auto_mask.cpp.o"
  "CMakeFiles/test_auto_mask.dir/test_auto_mask.cpp.o.d"
  "test_auto_mask"
  "test_auto_mask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
