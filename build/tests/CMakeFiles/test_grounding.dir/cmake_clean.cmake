file(REMOVE_RECURSE
  "CMakeFiles/test_grounding.dir/test_grounding.cpp.o"
  "CMakeFiles/test_grounding.dir/test_grounding.cpp.o.d"
  "test_grounding"
  "test_grounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
