# Empty dependencies file for test_grounding.
# This may be replaced when dependencies are built.
