# Empty compiler generated dependencies file for test_text_encoder.
# This may be replaced when dependencies are built.
