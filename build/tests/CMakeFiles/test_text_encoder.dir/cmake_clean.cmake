file(REMOVE_RECURSE
  "CMakeFiles/test_text_encoder.dir/test_text_encoder.cpp.o"
  "CMakeFiles/test_text_encoder.dir/test_text_encoder.cpp.o.d"
  "test_text_encoder"
  "test_text_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_text_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
