# Empty compiler generated dependencies file for test_fibsem.
# This may be replaced when dependencies are built.
