file(REMOVE_RECURSE
  "CMakeFiles/test_fibsem.dir/test_fibsem.cpp.o"
  "CMakeFiles/test_fibsem.dir/test_fibsem.cpp.o.d"
  "test_fibsem"
  "test_fibsem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fibsem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
