# Empty dependencies file for test_hitl.
# This may be replaced when dependencies are built.
