file(REMOVE_RECURSE
  "CMakeFiles/test_hitl.dir/test_hitl.cpp.o"
  "CMakeFiles/test_hitl.dir/test_hitl.cpp.o.d"
  "test_hitl"
  "test_hitl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hitl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
