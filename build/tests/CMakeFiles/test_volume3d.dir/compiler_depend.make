# Empty compiler generated dependencies file for test_volume3d.
# This may be replaced when dependencies are built.
