file(REMOVE_RECURSE
  "CMakeFiles/test_volume3d.dir/test_volume3d.cpp.o"
  "CMakeFiles/test_volume3d.dir/test_volume3d.cpp.o.d"
  "test_volume3d"
  "test_volume3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_volume3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
