file(REMOVE_RECURSE
  "CMakeFiles/fig3_qualitative.dir/fig3_qualitative.cpp.o"
  "CMakeFiles/fig3_qualitative.dir/fig3_qualitative.cpp.o.d"
  "fig3_qualitative"
  "fig3_qualitative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
