# Empty compiler generated dependencies file for fig3_qualitative.
# This may be replaced when dependencies are built.
