file(REMOVE_RECURSE
  "CMakeFiles/table3_zenesis.dir/table3_zenesis.cpp.o"
  "CMakeFiles/table3_zenesis.dir/table3_zenesis.cpp.o.d"
  "table3_zenesis"
  "table3_zenesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_zenesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
