# Empty dependencies file for table3_zenesis.
# This may be replaced when dependencies are built.
