# Empty dependencies file for table2_sam_only.
# This may be replaced when dependencies are built.
