# Empty compiler generated dependencies file for fig8_dashboard.
# This may be replaced when dependencies are built.
