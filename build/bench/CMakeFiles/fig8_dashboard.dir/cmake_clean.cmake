file(REMOVE_RECURSE
  "CMakeFiles/fig8_dashboard.dir/fig8_dashboard.cpp.o"
  "CMakeFiles/fig8_dashboard.dir/fig8_dashboard.cpp.o.d"
  "fig8_dashboard"
  "fig8_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
