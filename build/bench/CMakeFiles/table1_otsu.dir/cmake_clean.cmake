file(REMOVE_RECURSE
  "CMakeFiles/table1_otsu.dir/table1_otsu.cpp.o"
  "CMakeFiles/table1_otsu.dir/table1_otsu.cpp.o.d"
  "table1_otsu"
  "table1_otsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_otsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
