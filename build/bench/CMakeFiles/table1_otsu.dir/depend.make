# Empty dependencies file for table1_otsu.
# This may be replaced when dependencies are built.
