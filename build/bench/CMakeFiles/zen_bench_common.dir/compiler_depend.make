# Empty compiler generated dependencies file for zen_bench_common.
# This may be replaced when dependencies are built.
