file(REMOVE_RECURSE
  "libzen_bench_common.a"
)
