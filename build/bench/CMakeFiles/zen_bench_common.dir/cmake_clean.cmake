file(REMOVE_RECURSE
  "CMakeFiles/zen_bench_common.dir/exp_common.cpp.o"
  "CMakeFiles/zen_bench_common.dir/exp_common.cpp.o.d"
  "libzen_bench_common.a"
  "libzen_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zen_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
