# Empty dependencies file for fig7_heuristic_refine.
# This may be replaced when dependencies are built.
