file(REMOVE_RECURSE
  "CMakeFiles/fig7_heuristic_refine.dir/fig7_heuristic_refine.cpp.o"
  "CMakeFiles/fig7_heuristic_refine.dir/fig7_heuristic_refine.cpp.o.d"
  "fig7_heuristic_refine"
  "fig7_heuristic_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_heuristic_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
