file(REMOVE_RECURSE
  "CMakeFiles/fig1_data_readiness.dir/fig1_data_readiness.cpp.o"
  "CMakeFiles/fig1_data_readiness.dir/fig1_data_readiness.cpp.o.d"
  "fig1_data_readiness"
  "fig1_data_readiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_data_readiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
