# Empty dependencies file for fig1_data_readiness.
# This may be replaced when dependencies are built.
