# Empty compiler generated dependencies file for fig2_pipeline_walkthrough.
# This may be replaced when dependencies are built.
