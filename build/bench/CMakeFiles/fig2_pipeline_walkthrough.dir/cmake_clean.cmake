file(REMOVE_RECURSE
  "CMakeFiles/fig2_pipeline_walkthrough.dir/fig2_pipeline_walkthrough.cpp.o"
  "CMakeFiles/fig2_pipeline_walkthrough.dir/fig2_pipeline_walkthrough.cpp.o.d"
  "fig2_pipeline_walkthrough"
  "fig2_pipeline_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pipeline_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
