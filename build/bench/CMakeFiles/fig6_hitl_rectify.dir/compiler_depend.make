# Empty compiler generated dependencies file for fig6_hitl_rectify.
# This may be replaced when dependencies are built.
