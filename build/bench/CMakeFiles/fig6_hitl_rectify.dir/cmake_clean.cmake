file(REMOVE_RECURSE
  "CMakeFiles/fig6_hitl_rectify.dir/fig6_hitl_rectify.cpp.o"
  "CMakeFiles/fig6_hitl_rectify.dir/fig6_hitl_rectify.cpp.o.d"
  "fig6_hitl_rectify"
  "fig6_hitl_rectify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hitl_rectify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
