file(REMOVE_RECURSE
  "CMakeFiles/ablation_readiness.dir/ablation_readiness.cpp.o"
  "CMakeFiles/ablation_readiness.dir/ablation_readiness.cpp.o.d"
  "ablation_readiness"
  "ablation_readiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_readiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
