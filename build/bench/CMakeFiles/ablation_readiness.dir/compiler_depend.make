# Empty compiler generated dependencies file for ablation_readiness.
# This may be replaced when dependencies are built.
