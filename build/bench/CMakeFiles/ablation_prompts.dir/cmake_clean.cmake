file(REMOVE_RECURSE
  "CMakeFiles/ablation_prompts.dir/ablation_prompts.cpp.o"
  "CMakeFiles/ablation_prompts.dir/ablation_prompts.cpp.o.d"
  "ablation_prompts"
  "ablation_prompts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prompts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
