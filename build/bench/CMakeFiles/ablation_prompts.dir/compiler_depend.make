# Empty compiler generated dependencies file for ablation_prompts.
# This may be replaced when dependencies are built.
