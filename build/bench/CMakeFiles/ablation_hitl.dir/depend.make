# Empty dependencies file for ablation_hitl.
# This may be replaced when dependencies are built.
