file(REMOVE_RECURSE
  "CMakeFiles/ablation_hitl.dir/ablation_hitl.cpp.o"
  "CMakeFiles/ablation_hitl.dir/ablation_hitl.cpp.o.d"
  "ablation_hitl"
  "ablation_hitl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hitl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
