// Streaming TIFF ingestion tests: TiffVolumeReader parity with the
// materializing reader, and the end-to-end Mode-B streaming path
// (BigTIFF on disk -> TiffVolumeReader -> segment_volume) producing masks
// byte-identical to the in-memory pipeline (the ISSUE-4 acceptance bar).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <variant>
#include <vector>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/io/tiff.hpp"
#include "zenesis/io/tiff_stream.hpp"
#include "zenesis/serve/service.hpp"

namespace zc = zenesis::core;
namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;
namespace zio = zenesis::io;
namespace zs = zenesis::serve;

namespace {

constexpr const char* kPrompt = "bright needle-like crystalline catalyst";

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// RAII deleter so failing tests don't leave stacks in /tmp.
struct TempFile {
  std::string path;
  explicit TempFile(const char* name) : path(temp_path(name)) {}
  ~TempFile() { std::remove(path.c_str()); }
};

template <typename T>
zi::Image<T> ramp(std::int64_t w, std::int64_t h, std::int64_t page) {
  zi::Image<T> img(w, h);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      img.at(x, y) = static_cast<T>((x + 7 * y + 37 * page) * (sizeof(T) == 1 ? 1 : 257));
    }
  }
  return img;
}

zf::SyntheticVolume make_volume(std::int64_t size = 64, std::int64_t depth = 5) {
  zf::SynthConfig cfg;
  cfg.type = zf::SampleType::kCrystalline;
  cfg.width = size;
  cfg.height = size;
  cfg.depth = depth;
  cfg.seed = 77;
  return zf::generate_volume(cfg);
}

void expect_masks_equal(const zi::Mask& a, const zi::Mask& b) {
  ASSERT_EQ(a.width(), b.width());
  ASSERT_EQ(a.height(), b.height());
  const auto pa = a.pixels();
  const auto pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i], pb[i]) << "pixel " << i;
  }
}

template <typename T>
void expect_pages_equal(const zi::AnyImage& got, const zi::AnyImage& want) {
  const auto& g = std::get<zi::Image<T>>(got);
  const auto& w = std::get<zi::Image<T>>(want);
  ASSERT_EQ(g.width(), w.width());
  ASSERT_EQ(g.height(), w.height());
  const auto pg = g.pixels();
  const auto pw = w.pixels();
  for (std::size_t i = 0; i < pg.size(); ++i) ASSERT_EQ(pg[i], pw[i]);
}

}  // namespace

// Every page the streaming reader decodes must be bit-identical to the
// materializing reader's — across format, layout, compression, byte
// order and depth.
TEST(TiffStream, PageParityWithMaterializingReader) {
  for (const zio::TiffFormat fmt :
       {zio::TiffFormat::kClassic, zio::TiffFormat::kBigTiff}) {
    for (const zio::TiffLayout layout :
         {zio::TiffLayout::kStrips, zio::TiffLayout::kTiles}) {
      for (const zio::TiffCompression comp :
           {zio::TiffCompression::kNone, zio::TiffCompression::kPackBits}) {
        for (const bool be : {false, true}) {
          zio::TiffWriteOptions opt;
          opt.format = fmt;
          opt.layout = layout;
          opt.compression = comp;
          opt.big_endian = be;
          opt.rows_per_strip = 4;
          opt.tile_width = 16;
          opt.tile_height = 16;
          zio::TiffStack stack;
          stack.pages.emplace_back(ramp<std::uint16_t>(19, 11, 0));
          stack.pages.emplace_back(ramp<std::uint16_t>(19, 11, 1));
          const auto bytes = zio::write_tiff_bytes(stack, opt);

          const zio::TiffStack mat = zio::read_tiff_bytes(bytes);
          const auto reader = zio::TiffVolumeReader::open(bytes);
          ASSERT_EQ(reader.pages(), 2);
          EXPECT_TRUE(reader.uniform_geometry());
          for (std::int64_t p = 0; p < reader.pages(); ++p) {
            expect_pages_equal<std::uint16_t>(reader.read_page(p),
                                              mat.pages[static_cast<std::size_t>(p)]);
          }
        }
      }
    }
  }
}

TEST(TiffStream, ReadVolumeMatchesMaterializedVolume) {
  const auto synth = make_volume(32, 3);
  TempFile f("zen_stream_vol.tif");
  zio::TiffWriteOptions opt;
  opt.format = zio::TiffFormat::kBigTiff;
  opt.layout = zio::TiffLayout::kTiles;
  opt.compression = zio::TiffCompression::kPackBits;
  zio::write_volume_tiff(f.path, synth.volume, opt);

  const zi::VolumeU16 mat = zio::read_volume_tiff_u16(f.path);
  const zio::TiffVolumeReader reader = zio::TiffVolumeReader::open(f.path);
  const zi::VolumeU16 streamed = reader.read_volume_u16();
  ASSERT_EQ(streamed.depth(), mat.depth());
  for (std::int64_t z = 0; z < mat.depth(); ++z) {
    const auto pa = streamed.slice(z).pixels();
    const auto pb = mat.slice(z).pixels();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], pb[i]);
  }
}

TEST(TiffStream, PageInfoExposesParsedGeometry) {
  zio::TiffWriteOptions opt;
  opt.layout = zio::TiffLayout::kTiles;
  opt.tile_width = 16;
  opt.tile_height = 16;
  zio::TiffStack stack;
  stack.pages.emplace_back(ramp<std::uint8_t>(19, 11, 0));
  const auto reader =
      zio::TiffVolumeReader::open(zio::write_tiff_bytes(stack, opt));
  const zio::TiffPageInfo& info = reader.page_info(0);
  EXPECT_EQ(info.width, 19);
  EXPECT_EQ(info.height, 11);
  EXPECT_EQ(info.bits, 8);
  EXPECT_TRUE(info.tiled);
  EXPECT_EQ(info.tile_width, 16);
  EXPECT_EQ(info.tile_height, 16);
  // 19x11 with 16x16 tiles -> 2x1 grid.
  EXPECT_EQ(info.segment_offsets.size(), 2u);
  EXPECT_EQ(reader.width(), 19);
  EXPECT_EQ(reader.height(), 11);
  EXPECT_EQ(reader.bit_depth(), 8);
}

TEST(TiffStream, NonUniformGeometryDetectedAndRejected) {
  zio::TiffStack stack;
  stack.pages.emplace_back(ramp<std::uint16_t>(8, 8, 0));
  stack.pages.emplace_back(ramp<std::uint16_t>(9, 8, 1));
  const auto reader =
      zio::TiffVolumeReader::open(zio::write_tiff_bytes(stack));
  EXPECT_FALSE(reader.uniform_geometry());
  try {
    reader.require_uniform_geometry();
    FAIL() << "expected TiffError";
  } catch (const zio::TiffError& e) {
    EXPECT_EQ(e.kind(), zio::TiffErrorKind::kUnsupported);
  }
}

TEST(TiffStream, ParseTimeLimitEnforcement) {
  zio::TiffStack stack;
  stack.pages.emplace_back(ramp<std::uint16_t>(32, 32, 0));
  const auto bytes = zio::write_tiff_bytes(stack);
  zio::TiffOpenOptions oo;
  oo.limits.max_decoded_bytes = 64;  // far below 32*32*2
  try {
    (void)zio::TiffVolumeReader::open(bytes, oo);
    FAIL() << "expected TiffError at parse time, before any decode";
  } catch (const zio::TiffError& e) {
    EXPECT_EQ(e.kind(), zio::TiffErrorKind::kLimitExceeded);
    EXPECT_EQ(e.page(), 0);
  }
}

TEST(TiffStream, MissingFileThrowsTiffError) {
  for (const zio::TiffSourceKind kind :
       {zio::TiffSourceKind::kMemory, zio::TiffSourceKind::kPread,
        zio::TiffSourceKind::kMmap}) {
    zio::TiffOpenOptions oo;
    oo.source_kind = kind;
    try {
      (void)zio::TiffVolumeReader::open(temp_path("zen_no_such_file.tif"), oo);
      FAIL() << "expected TiffError for kind " << zio::to_string(kind);
    } catch (const zio::TiffError& e) {
      EXPECT_EQ(e.kind(), zio::TiffErrorKind::kTruncated);
    }
  }
}

// --- byte sources and the open() front door ------------------------------

// The same compressed + predicted stack must decode byte-identically no
// matter which byte source backs the reader (the PR-10 acceptance bar).
TEST(TiffStream, SourceKindsDecodeByteIdentically) {
  TempFile f("zen_source_kinds.tif");
  zio::TiffWriteOptions opt;
  opt.layout = zio::TiffLayout::kTiles;
  opt.tile_width = 16;
  opt.tile_height = 16;
  opt.compression = zio::TiffCompression::kLzw;
  opt.predictor = 2;
  zio::TiffStack stack;
  stack.pages.emplace_back(ramp<std::uint16_t>(37, 23, 0));
  stack.pages.emplace_back(ramp<std::uint16_t>(37, 23, 1));
  zio::write_tiff(f.path, stack, opt);

  const zio::TiffStack want = zio::read_tiff(f.path);
  for (const zio::TiffSourceKind kind :
       {zio::TiffSourceKind::kMemory, zio::TiffSourceKind::kPread,
        zio::TiffSourceKind::kMmap}) {
    zio::TiffOpenOptions oo;
    oo.source_kind = kind;
    const auto reader = zio::TiffVolumeReader::open(f.path, oo);
    // kMmap may legitimately resolve to kPread on platforms without
    // mmap; everything else resolves to itself.
    if (kind == zio::TiffSourceKind::kMmap && zio::MmapByteSource::supported()) {
      EXPECT_EQ(reader.source_kind(), zio::TiffSourceKind::kMmap);
    } else if (kind != zio::TiffSourceKind::kMmap) {
      EXPECT_EQ(reader.source_kind(), kind);
    }
    ASSERT_EQ(reader.pages(), 2);
    for (std::int64_t p = 0; p < reader.pages(); ++p) {
      expect_pages_equal<std::uint16_t>(reader.read_page(p),
                                        want.pages[static_cast<std::size_t>(p)]);
    }
  }
}

TEST(TiffStream, SourceSelectorResolvesAndWarns) {
  for (const zio::TiffSourceKind kind :
       {zio::TiffSourceKind::kAuto, zio::TiffSourceKind::kMemory,
        zio::TiffSourceKind::kPread, zio::TiffSourceKind::kMmap}) {
    const auto parsed = zio::parse_source_kind(zio::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << zio::to_string(kind);
    EXPECT_EQ(*parsed, kind);
    std::string warning = "sentinel";
    EXPECT_EQ(zio::resolve_tiff_source_selector(zio::to_string(kind), &warning),
              kind);
    EXPECT_TRUE(warning.empty());
  }
  EXPECT_FALSE(zio::parse_source_kind("fastest").has_value());
  std::string warning;
  EXPECT_EQ(zio::resolve_tiff_source_selector("fastest", &warning),
            zio::TiffSourceKind::kAuto);
  EXPECT_NE(warning.find("fastest"), std::string::npos) << warning;
  // The process default is always concrete.
  EXPECT_NE(zio::default_source_kind(), zio::TiffSourceKind::kAuto);
}

// Regression for the old seek-mutex FileByteSource: N threads hammering
// read_at must be observed in flight simultaneously. The probe records a
// high-water mark around each pread(2); the mutex design pinned it at 1.
TEST(TiffStream, PreadReadsRunConcurrently) {
  TempFile f("zen_pread_conc.tif");
  zio::TiffStack stack;
  stack.pages.emplace_back(ramp<std::uint16_t>(256, 256, 0));
  zio::write_tiff(f.path, stack, {});

  // Time-based rather than iteration-based: on a single-CPU box a fixed
  // read count can finish inside one scheduler quantum per thread, in
  // which case reads interleave but never *overlap*. Keeping 8 readers
  // hammering until overlap is observed (or a generous deadline passes)
  // guarantees each thread spans many quanta, and since nearly all loop
  // time sits inside the read_at probe window, a preemption lands inside
  // it with near certainty. The old seek-mutex FileByteSource could
  // never reach high_water >= 2 no matter how long this runs.
  constexpr int kThreads = 8;
  const zio::PreadByteSource src(f.path);
  const std::size_t chunk =
      static_cast<std::size_t>(src.size()) / (kThreads + 1);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::uint8_t> buf(chunk);
      while (!stop.load(std::memory_order_relaxed)) {
        src.read_at(static_cast<std::uint64_t>(t) * chunk, buf.data(), chunk);
      }
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (src.max_concurrent_reads() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_GE(src.max_concurrent_reads(), 2)
      << "8 threads of positioned reads never overlapped in 10s";
}

// The request-level knob: an unknown source kind is a collected
// validation issue, and the TiffOpenOptions overload threads through.
TEST(TiffStream, VolumeRequestValidatesSourceKind) {
  zc::VolumeRequest bad = zc::VolumeRequest::from_file("/tmp/x.tif", kPrompt);
  bad.tiff_source_kind = "fastest";
  const auto issues = bad.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("fastest"), std::string::npos) << issues[0];
  EXPECT_NE(issues[0].find("auto|memory|pread|mmap"), std::string::npos);

  zio::TiffOpenOptions oo;
  oo.source_kind = zio::TiffSourceKind::kPread;
  oo.limits.max_pages = 7;
  oo.prefetch = false;
  const zc::VolumeRequest r = zc::VolumeRequest::from_file("/tmp/x.tif", kPrompt, oo);
  EXPECT_TRUE(r.validate().empty());
  const zio::TiffOpenOptions back = r.tiff_open_options();
  EXPECT_EQ(back.source_kind, zio::TiffSourceKind::kPread);
  EXPECT_EQ(back.limits.max_pages, 7u);
  EXPECT_FALSE(back.prefetch);
}

// --- the ISSUE-4 acceptance test ----------------------------------------
// A synthetic 16-bit multi-page volume round-trips through BigTIFF write
// -> TiffVolumeReader streaming -> segment_volume and produces masks
// byte-identical to the in-memory read_volume_tiff_u16 path.
TEST(TiffStream, StreamedSegmentVolumeMatchesInMemoryPath) {
  const auto synth = make_volume(64, 5);
  TempFile f("zen_stream_acceptance.tif");
  zio::TiffWriteOptions opt;
  opt.format = zio::TiffFormat::kBigTiff;
  zio::write_volume_tiff(f.path, synth.volume, opt);

  zc::PipelineConfig cfg;
  cfg.volume_threads = 2;  // exercise concurrent read_page on the reader
  const zc::Session session(cfg);

  // In-memory reference path.
  const zi::VolumeU16 mat = zio::read_volume_tiff_u16(f.path);
  const zc::VolumeResult want =
      session.pipeline().segment_volume(zc::VolumeRequest::view(mat, kPrompt));

  // Streaming path (file -> on-demand slices -> pipeline), through the
  // TiffOpenOptions session overload.
  const zc::VolumeResult got =
      session.mode_b_segment_volume_file(f.path, kPrompt, zio::TiffOpenOptions{});

  ASSERT_EQ(got.slices.size(), want.slices.size());
  for (std::size_t z = 0; z < want.slices.size(); ++z) {
    expect_masks_equal(got.slices[z].mask, want.slices[z].mask);
    EXPECT_EQ(got.slices[z].confidence, want.slices[z].confidence);
  }
  EXPECT_EQ(got.replaced_count, want.replaced_count);
}

// A streamed VolumeRequest validates its slice feed.
TEST(TiffStream, VolumeSourceValidatesSliceCallback) {
  const zc::ZenesisPipeline pipeline;
  zc::VolumeSource bad;  // null slice fn
  bad.depth = 3;
  EXPECT_THROW((void)pipeline.segment_volume(
                   zc::VolumeRequest::streamed(bad, kPrompt)),
               std::invalid_argument);
  zc::VolumeSource neg;
  neg.depth = -1;
  neg.slice = [](std::int64_t) { return zi::AnyImage(zi::ImageU16(2, 2)); };
  EXPECT_THROW((void)pipeline.segment_volume(
                   zc::VolumeRequest::streamed(neg, kPrompt)),
               std::invalid_argument);
}

// --- serve-layer streaming ----------------------------------------------

TEST(TiffStream, ServeVolumeFileMatchesBlockingPath) {
  const auto synth = make_volume(48, 3);
  TempFile f("zen_serve_stream.tif");
  zio::TiffWriteOptions opt;
  opt.format = zio::TiffFormat::kBigTiff;
  zio::write_volume_tiff(f.path, synth.volume, opt);

  const zc::ZenesisPipeline reference;
  const zc::VolumeResult want = reference.segment_volume(
      zc::VolumeRequest::in_memory(zio::read_volume_tiff_u16(f.path), kPrompt));

  zs::SegmentService service;
  zio::TiffOpenOptions oo;
  oo.source_kind = zio::TiffSourceKind::kPread;  // exercise the knob end to end
  const zs::Response r =
      service.submit(zs::Request::volume_file(f.path, kPrompt, oo)).get();
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_TRUE(r.volume.has_value());
  ASSERT_EQ(r.volume->slices.size(), want.slices.size());
  for (std::size_t z = 0; z < want.slices.size(); ++z) {
    expect_masks_equal(r.volume->slices[z].mask, want.slices[z].mask);
  }
  EXPECT_EQ(r.volume->replaced_count, want.replaced_count);
}

TEST(TiffStream, ServeVolumeFileSurfacesTiffErrorAsResponse) {
  zs::SegmentService service;
  const zs::Response r =
      service
          .submit(zs::Request::volume_file(temp_path("zen_missing_vol.tif"),
                                           kPrompt))
          .get();
  EXPECT_EQ(r.status, zs::Response::Status::kError);
  // A missing file is an I/O failure classified by the error taxonomy —
  // callers branch on the code, the message keeps the TiffError detail.
  EXPECT_EQ(r.error.code, zc::ErrorCode::kIo);
  EXPECT_EQ(r.error.stage, "serve.decode");
  EXPECT_NE(r.error.message.find("tiff:"), std::string::npos) << r.error;
}
