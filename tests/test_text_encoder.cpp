// Text tokenizer / vocabulary / encoder tests.
#include <gtest/gtest.h>

#include "zenesis/models/text_encoder.hpp"

namespace zm = zenesis::models;

TEST(Tokenize, LowercasesAndSplits) {
  const auto words = zm::tokenize("Bright, Needle-like CATALYST!");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "bright");
  EXPECT_EQ(words[1], "needle");
  EXPECT_EQ(words[2], "like");
  EXPECT_EQ(words[3], "catalyst");
}

TEST(Tokenize, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(zm::tokenize("").empty());
  EXPECT_TRUE(zm::tokenize("... !!! ---").empty());
}

TEST(Vocabulary, KnownWordsHaveConcepts) {
  const auto t = zm::lookup_concept("needle");
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->known);
  EXPECT_GT(t->weight, 0.5f);
  // Needle concept prefers high orientation coherence.
  EXPECT_GT(t->concept_vec[zm::kCoherence], 1.0f);
}

TEST(Vocabulary, OppositePolarity) {
  const auto bright = zm::lookup_concept("bright");
  const auto dark = zm::lookup_concept("dark");
  ASSERT_TRUE(bright && dark);
  EXPECT_GT(bright->concept_vec[zm::kIntensity], 0.0f);
  EXPECT_LT(dark->concept_vec[zm::kIntensity], 0.0f);
}

TEST(Vocabulary, UnknownWordIsNullopt) {
  EXPECT_FALSE(zm::lookup_concept("flibbertigibbet").has_value());
}

TEST(Parse, DropsStopWords) {
  zm::TextEncoder enc;
  const auto tokens = enc.parse("the bright catalyst in a membrane");
  std::vector<std::string> words;
  for (const auto& t : tokens) words.push_back(t.word);
  EXPECT_EQ(words, (std::vector<std::string>{"bright", "catalyst", "membrane"}));
}

TEST(Parse, UnknownWordsGetLowWeight) {
  zm::TextEncoder enc;
  const auto tokens = enc.parse("zorblax");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_FALSE(tokens[0].known);
  EXPECT_LT(tokens[0].weight, 0.3f);
  for (float v : tokens[0].concept_vec) EXPECT_LT(std::abs(v), 0.2f);
}

TEST(Parse, UnknownEmbeddingDeterministic) {
  zm::TextEncoder a(7), b(7), c(8);
  const auto ta = a.parse("zorblax")[0];
  const auto tb = b.parse("zorblax")[0];
  const auto tc = c.parse("zorblax")[0];
  EXPECT_EQ(ta.concept_vec, tb.concept_vec);
  EXPECT_NE(ta.concept_vec, tc.concept_vec);
}

TEST(Encode, MatrixShapeMatchesTokens) {
  zm::TextEncoder enc;
  const auto t = enc.encode("bright needle catalyst");
  EXPECT_EQ(t.dim(0), 3);
  EXPECT_EQ(t.dim(1), zm::kFeatureChannels);
}

TEST(Encode, EmptyPromptZeroRows) {
  zm::TextEncoder enc;
  EXPECT_EQ(enc.encode("").dim(0), 0);
}

TEST(Encode, RowsAreWeightScaled) {
  zm::TextEncoder enc;
  const auto tokens = enc.parse("needle");
  const auto mat = enc.encode("needle");
  EXPECT_NEAR(mat.at(0, zm::kCoherence),
              tokens[0].concept_vec[zm::kCoherence] * tokens[0].weight, 1e-5f);
}

TEST(TotalWeight, AccumulatesEvidence) {
  zm::TextEncoder enc;
  EXPECT_GT(enc.total_weight("bright needle catalyst"), 2.0f);
  EXPECT_LT(enc.total_weight("zorblax"), 0.3f);
}

TEST(Vocabulary, DomainCoverage) {
  // The materials vocabulary the paper's workflows rely on must exist.
  for (const char* word : {"catalyst", "membrane", "ionomer", "crystalline",
                           "amorphous", "particle", "pore", "background"}) {
    EXPECT_TRUE(zm::lookup_concept(word).has_value()) << word;
  }
}
