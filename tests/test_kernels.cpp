// Kernel backend contract tests.
//
// Three layers of guarantees:
//   1. Equivalence — every available backend reproduces the scalar
//      reference within 1e-4 relative tolerance on every op, across
//      shapes chosen to exercise register-tile remainders (odd, prime
//      and sub-tile dimensions).
//   2. Accuracy — the end-to-end pipeline mask produced under each fast
//      backend matches the scalar-backend mask at IoU/Dice >= 0.99
//      (tolerance-level float differences must not move segmentation
//      decisions).
//   3. Determinism — within one backend, volume results are
//      byte-identical across thread counts (the test_volume_parallel
//      contract, re-run per backend).
//
// The int8 quantization path (tensor/quant.hpp) is held to the same
// three layers, plus two contracts of its own: int8 payloads and scales
// are bit-identical across backends (the shared single-op scale
// formulas), and cached artifacts never alias across precisions (the
// fingerprint / feature-cache key folds).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "zenesis/core/pipeline.hpp"
#include "zenesis/eval/metrics.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/normalize.hpp"
#include "zenesis/models/feature_cache.hpp"
#include "zenesis/tensor/kernels.hpp"
#include "zenesis/tensor/ops.hpp"
#include "zenesis/tensor/quant.hpp"

namespace {

using namespace zenesis;

/// Deterministic pseudo-random fill with a sign-mixed range, so dot
/// products see cancellation (the hard case for reduction reordering).
tensor::Tensor filled(std::int64_t rows, std::int64_t cols,
                      std::uint64_t seed) {
  tensor::Tensor t({rows, cols});
  std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (auto& v : t.flat()) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    v = static_cast<float>(static_cast<double>(state >> 11) /
                           static_cast<double>(1ULL << 53)) *
            2.0f -
        1.0f;
  }
  return t;
}

void expect_close(const tensor::Tensor& got, const tensor::Tensor& ref,
                  const std::string& what, float rel_tol = 1e-4f) {
  ASSERT_EQ(got.shape(), ref.shape()) << what;
  const auto pg = got.flat();
  const auto pr = ref.flat();
  for (std::size_t i = 0; i < pg.size(); ++i) {
    const float scale = std::max(1.0f, std::abs(pr[i]));
    ASSERT_NEAR(pg[i], pr[i], rel_tol * scale)
        << what << " element " << i << " (backend "
        << tensor::backend_name() << ")";
  }
}

/// Saves and restores the process-wide backend AND precision
/// selections, so a failing test cannot leak either into later tests.
class KernelBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = tensor::backend_name();
    saved_precision_ = tensor::quant::precision_name();
  }
  void TearDown() override {
    tensor::set_backend(saved_);
    tensor::quant::set_precision(saved_precision_);
  }

  static std::vector<std::string> fast_backends() {
    std::vector<std::string> out;
    for (const auto& name : tensor::available_backends()) {
      if (name != "scalar") out.push_back(name);
    }
    return out;
  }

  std::string saved_;
  std::string saved_precision_;
};

// M/K/N sweep: powers of two (pure tile paths), primes and odd sizes
// (every remainder path: k-octet tails, 2-row/4-row edges, partial
// column tiles), and degenerate single-row/column shapes.
struct Shape {
  std::int64_t m, k, n;
};
const std::vector<Shape> kShapes = {
    {1, 1, 1},    {1, 7, 1},    {3, 5, 7},    {7, 3, 5},   {8, 8, 8},
    {9, 16, 17},  {16, 31, 8},  {17, 8, 33},  {13, 13, 13}, {32, 64, 32},
    {33, 63, 65}, {64, 128, 48}, {61, 67, 71}, {2, 256, 2},
};

TEST_F(KernelBackendTest, RegistryBasics) {
  EXPECT_TRUE(tensor::backend_available("scalar"));
  EXPECT_TRUE(tensor::backend_available("blocked"));
  EXPECT_TRUE(tensor::backend_available("auto"));
  EXPECT_FALSE(tensor::backend_available("mmx"));
  EXPECT_FALSE(tensor::set_backend("definitely-not-a-backend"));
  // A failed set must leave the active backend unchanged.
  EXPECT_STREQ(tensor::backend_name(), saved_.c_str());

  // available_backends() lists scalar and blocked unconditionally, in
  // preference order, and every listed name is selectable.
  const auto avail = tensor::available_backends();
  ASSERT_GE(avail.size(), 2u);
  EXPECT_EQ(avail.back(), "scalar");
  for (const auto& name : avail) {
    ASSERT_TRUE(tensor::set_backend(name)) << name;
    EXPECT_EQ(tensor::backend_name(), name);
  }
  // "auto" resolves to the preferred (first-listed) backend.
  ASSERT_TRUE(tensor::set_backend("auto"));
  EXPECT_EQ(tensor::backend_name(), avail.front());
}

TEST_F(KernelBackendTest, CpuFeatureStringMatchesAvx2Availability) {
  const std::string features = tensor::cpu_feature_string();
  const bool has_avx2 = features.find("avx2") != std::string::npos &&
                        features.find("fma") != std::string::npos;
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_EQ(tensor::backend_available("avx2"), has_avx2);
#else
  EXPECT_FALSE(tensor::backend_available("avx2"));
#endif
}

TEST_F(KernelBackendTest, GemmEquivalenceAcrossShapes) {
  for (const auto& backend : fast_backends()) {
    for (const auto& s : kShapes) {
      const tensor::Tensor a = filled(s.m, s.k, 11 * s.m + s.n);
      const tensor::Tensor b_nn = filled(s.k, s.n, 23 * s.k + s.m);
      const tensor::Tensor b_nt = filled(s.n, s.k, 31 * s.n + s.k);
      const tensor::Tensor bias = filled(1, s.n, 47 * s.n + 5);
      tensor::Tensor bias1({s.n});
      std::copy(bias.data(), bias.data() + s.n, bias1.data());

      ASSERT_TRUE(tensor::set_backend("scalar"));
      const tensor::Tensor nn_ref = tensor::matmul(a, b_nn);
      const tensor::Tensor nt_ref = tensor::matmul_nt(a, b_nt);
      const tensor::Tensor lin_ref = tensor::linear(a, b_nt, bias1);

      ASSERT_TRUE(tensor::set_backend(backend));
      const std::string tag = backend + " m=" + std::to_string(s.m) +
                              " k=" + std::to_string(s.k) +
                              " n=" + std::to_string(s.n);
      expect_close(tensor::matmul(a, b_nn), nn_ref, "matmul " + tag);
      expect_close(tensor::matmul_nt(a, b_nt), nt_ref, "matmul_nt " + tag);
      expect_close(tensor::linear(a, b_nt, bias1), lin_ref, "linear " + tag);
    }
  }
}

TEST_F(KernelBackendTest, RowwiseAndElementwiseEquivalence) {
  for (const auto& backend : fast_backends()) {
    for (const std::int64_t n : {1, 2, 5, 8, 13, 64, 100, 257}) {
      const tensor::Tensor base = filled(9, n, 1000 + n);
      tensor::Tensor gain1({n}), bias1({n});
      const tensor::Tensor g = filled(1, n, 7 + n), b = filled(1, n, 9 + n);
      std::copy(g.data(), g.data() + n, gain1.data());
      std::copy(b.data(), b.data() + n, bias1.data());

      ASSERT_TRUE(tensor::set_backend("scalar"));
      tensor::Tensor sm_ref = base, ln_ref = base, ge_ref = base;
      tensor::Tensor l2_ref = base, sub_ref = base;
      tensor::softmax_rows(sm_ref);
      tensor::layernorm_rows(ln_ref, gain1, bias1);
      tensor::gelu_inplace(ge_ref);
      tensor::l2_normalize_rows(l2_ref);
      tensor::subtract_row_inplace(sub_ref, bias1);
      const tensor::Tensor cm_ref = tensor::colwise_max(base);
      const tensor::Tensor mr_ref = tensor::mean_rows(base);
      const tensor::Tensor tr_ref = tensor::transpose(base);

      ASSERT_TRUE(tensor::set_backend(backend));
      const std::string tag = backend + " n=" + std::to_string(n);
      tensor::Tensor sm = base, ln = base, ge = base, l2 = base, sub = base;
      tensor::softmax_rows(sm);
      tensor::layernorm_rows(ln, gain1, bias1);
      tensor::gelu_inplace(ge);
      tensor::l2_normalize_rows(l2);
      tensor::subtract_row_inplace(sub, bias1);
      expect_close(sm, sm_ref, "softmax_rows " + tag);
      expect_close(ln, ln_ref, "layernorm_rows " + tag);
      expect_close(ge, ge_ref, "gelu " + tag);
      expect_close(l2, l2_ref, "l2_normalize_rows " + tag);
      expect_close(sub, sub_ref, "subtract_row " + tag);
      expect_close(tensor::colwise_max(base), cm_ref, "colwise_max " + tag);
      expect_close(tensor::mean_rows(base), mr_ref, "mean_rows " + tag);
      // Transpose is pure data movement: exact equality expected.
      expect_close(tensor::transpose(base), tr_ref, "transpose " + tag, 0.0f);
    }
  }
}

TEST_F(KernelBackendTest, AttentionEquivalence) {
  for (const auto& backend : fast_backends()) {
    const tensor::Tensor q = filled(13, 32, 3);
    const tensor::Tensor k = filled(29, 32, 5);
    const tensor::Tensor v = filled(29, 24, 7);

    ASSERT_TRUE(tensor::set_backend("scalar"));
    const tensor::Tensor ref = tensor::attention(q, k, v);
    const tensor::Tensor mh_ref = tensor::multihead_attention(q, k, v, 4);

    ASSERT_TRUE(tensor::set_backend(backend));
    expect_close(tensor::attention(q, k, v), ref, "attention " + backend);
    expect_close(tensor::multihead_attention(q, k, v, 4), mh_ref,
                 "multihead_attention " + backend);
  }
}

TEST_F(KernelBackendTest, WithinBackendByteDeterminismAcrossThreadCounts) {
  // The determinism contract: per-output reduction order depends only on
  // k, never on the row range a worker was handed — so any thread count
  // reproduces the same bytes.
  for (const auto& name : tensor::available_backends()) {
    ASSERT_TRUE(tensor::set_backend(name));
    const tensor::Tensor a = filled(67, 96, 1);
    const tensor::Tensor b = filled(96, 71, 2);
    const tensor::Tensor bt = filled(71, 96, 3);
    const tensor::Tensor nn1 = tensor::matmul(a, b);
    const tensor::Tensor nt1 = tensor::matmul_nt(a, bt);
    // Re-running on the same pool exercises different chunk→worker
    // assignments (dynamic pull); bytes must not move.
    for (int rep = 0; rep < 3; ++rep) {
      const tensor::Tensor nn2 = tensor::matmul(a, b);
      const tensor::Tensor nt2 = tensor::matmul_nt(a, bt);
      const auto f1 = nn1.flat(), f2 = nn2.flat();
      const auto g1 = nt1.flat(), g2 = nt2.flat();
      for (std::size_t i = 0; i < f1.size(); ++i) {
        ASSERT_EQ(f1[i], f2[i]) << name << " matmul rep " << rep;
      }
      for (std::size_t i = 0; i < g1.size(); ++i) {
        ASSERT_EQ(g1[i], g2[i]) << name << " matmul_nt rep " << rep;
      }
    }
  }
}

TEST_F(KernelBackendTest, PipelineConfigValidatesBackendKnob) {
  core::PipelineConfig cfg;
  cfg.kernel_backend = "not-a-backend";
  const auto issues = cfg.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("kernel_backend"), std::string::npos);
  EXPECT_THROW(core::ZenesisPipeline{cfg}, std::invalid_argument);

  cfg.kernel_backend = "scalar";
  EXPECT_TRUE(cfg.validate().empty());
}

TEST_F(KernelBackendTest, FingerprintSeparatesBackends) {
  // Cached masks must never alias across backends: the resolved backend
  // name is part of the decode fingerprint.
  core::PipelineConfig scalar_cfg, blocked_cfg, auto_cfg;
  scalar_cfg.kernel_backend = "scalar";
  blocked_cfg.kernel_backend = "blocked";
  EXPECT_NE(core::decode_config_fingerprint(scalar_cfg),
            core::decode_config_fingerprint(blocked_cfg));
  // "auto" hashes the resolved name, so it collides with the concrete
  // spelling of whatever is currently active — by design.
  ASSERT_TRUE(tensor::set_backend("blocked"));
  auto_cfg.kernel_backend = "auto";
  EXPECT_EQ(core::decode_config_fingerprint(auto_cfg),
            core::decode_config_fingerprint(blocked_cfg));
}

TEST_F(KernelBackendTest, EndToEndMaskAccuracyAcrossBackends) {
  // Scalar-backend pipeline output is the accuracy reference; every fast
  // backend must land within IoU/Dice 0.99 of it on a full segment() run
  // over both morphologies.
  fibsem::SynthConfig synth;
  synth.width = 96;
  synth.height = 96;
  synth.depth = 1;
  synth.seed = 902;
  synth.needle_count = 12;

  for (const auto type :
       {fibsem::SampleType::kCrystalline, fibsem::SampleType::kAmorphous}) {
    synth.type = type;
    const fibsem::SyntheticSlice slice = fibsem::generate_slice(synth, 0);
    const std::string prompt = fibsem::default_prompt(type);

    core::PipelineConfig cfg;
    cfg.kernel_backend = "scalar";
    const core::ZenesisPipeline ref_pipe(cfg);
    const core::SliceResult ref =
        ref_pipe.segment(image::AnyImage(slice.raw), prompt);
    const eval::Metrics ref_gt =
        eval::compute_metrics(ref.mask, slice.ground_truth);

    for (const auto& backend : fast_backends()) {
      cfg.kernel_backend = backend;
      const core::ZenesisPipeline pipe(cfg);
      const core::SliceResult got =
          pipe.segment(image::AnyImage(slice.raw), prompt);
      const eval::Metrics m = eval::compute_metrics(got.mask, ref.mask);
      EXPECT_GE(m.iou, 0.99) << backend << " vs scalar, "
                             << fibsem::sample_type_name(type);
      EXPECT_GE(m.dice, 0.99) << backend << " vs scalar, "
                              << fibsem::sample_type_name(type);
      // And the fast backend must not lose ground-truth accuracy either.
      const eval::Metrics gt = eval::compute_metrics(got.mask, slice.ground_truth);
      EXPECT_GE(gt.iou, ref_gt.iou - 0.01)
          << backend << " vs ground truth, " << fibsem::sample_type_name(type);
    }
  }
}

// ---- int8 quantization path --------------------------------------------

TEST_F(KernelBackendTest, Int8SupportRegistry) {
  // Every shipped backend provides the int8 kernel triple; unknown names
  // report unsupported (the validate() combo check relies on this).
  for (const auto& name : tensor::available_backends()) {
    EXPECT_TRUE(tensor::backend_supports_int8(name)) << name;
  }
  EXPECT_FALSE(tensor::backend_supports_int8("not-a-backend"));
  EXPECT_FALSE(tensor::backend_supports_int8(""));
}

TEST_F(KernelBackendTest, QuantizeRoundTripPerBackend) {
  for (const auto& name : tensor::available_backends()) {
    ASSERT_TRUE(tensor::set_backend(name));
    for (const std::int64_t n : {1, 2, 7, 16, 31, 32, 33, 64, 257}) {
      const tensor::Tensor t = filled(5, n, 100 + n);
      const tensor::quant::QuantizedTensor q = tensor::quant::quantize_rows(t);
      ASSERT_EQ(q.rows, 5) << name;
      ASSERT_EQ(q.cols, n) << name;
      // Payload stays in the symmetric range (no -128 — the AVX2
      // maddubs exactness contract).
      for (const std::int8_t v : q.data) {
        ASSERT_GE(v, -127) << name << " n=" << n;
        ASSERT_LE(v, 127) << name << " n=" << n;
      }
      // Round trip is within half a quantization step per element.
      const tensor::Tensor back = tensor::quant::dequantize_rows(q);
      for (std::int64_t i = 0; i < 5; ++i) {
        const float step = q.scales[static_cast<std::size_t>(i)];
        for (std::int64_t j = 0; j < n; ++j) {
          ASSERT_NEAR(back.at(i, j), t.at(i, j), 0.5f * step + 1e-7f)
              << name << " n=" << n << " (" << i << "," << j << ")";
        }
      }
    }
    // A zero row quantizes to a zero payload with the sentinel scale.
    tensor::Tensor zero({2, 9});
    const tensor::quant::QuantizedTensor qz = tensor::quant::quantize_rows(zero);
    for (const std::int8_t v : qz.data) ASSERT_EQ(v, 0) << name;
    for (const float s : qz.scales) ASSERT_EQ(s, 1.0f) << name;
  }
}

TEST_F(KernelBackendTest, Int8PayloadBitIdenticalAcrossBackends) {
  // The cross-backend contract: scale = amax/127, inv = 127/amax and
  // nearest-even rounding are single float ops everywhere, so payloads
  // and scales match byte for byte between backends.
  const tensor::Tensor t = filled(17, 133, 42);  // odd cols: SIMD tails
  ASSERT_TRUE(tensor::set_backend("scalar"));
  const tensor::quant::QuantizedTensor ref = tensor::quant::quantize_rows(t);
  for (const auto& name : fast_backends()) {
    ASSERT_TRUE(tensor::set_backend(name));
    const tensor::quant::QuantizedTensor got = tensor::quant::quantize_rows(t);
    ASSERT_EQ(got.data.size(), ref.data.size()) << name;
    for (std::size_t i = 0; i < ref.data.size(); ++i) {
      ASSERT_EQ(got.data[i], ref.data[i]) << name << " payload " << i;
    }
    for (std::size_t i = 0; i < ref.scales.size(); ++i) {
      ASSERT_EQ(got.scales[i], ref.scales[i]) << name << " scale " << i;
    }
  }
}

TEST_F(KernelBackendTest, Int8GemmEquivalenceAcrossShapes) {
  // Layer 1 for the int8 GEMM: every backend reproduces the scalar int8
  // reference. The i32 accumulation is exact everywhere; only the final
  // fp32 requantize may differ by FMA contraction, hence the tight (but
  // nonzero) tolerance.
  for (const auto& backend : fast_backends()) {
    for (const auto& s : kShapes) {
      const tensor::Tensor a = filled(s.m, s.k, 11 * s.m + s.n);
      const tensor::Tensor b_nt = filled(s.n, s.k, 31 * s.n + s.k);
      const tensor::Tensor bias = filled(1, s.n, 47 * s.n + 5);
      tensor::Tensor bias1({s.n});
      std::copy(bias.data(), bias.data() + s.n, bias1.data());

      ASSERT_TRUE(tensor::set_backend("scalar"));
      const tensor::quant::QuantizedTensor qb =
          tensor::quant::quantize_rows(b_nt);
      const tensor::Tensor lin_ref = tensor::linear_quantized(a, qb, bias1);
      const tensor::Tensor nt_ref = tensor::matmul_nt_quantized(a, qb);
      const tensor::Tensor dyn_ref = tensor::matmul_nt_dyn_quantized(a, b_nt);

      ASSERT_TRUE(tensor::set_backend(backend));
      const std::string tag = backend + " m=" + std::to_string(s.m) +
                              " k=" + std::to_string(s.k) +
                              " n=" + std::to_string(s.n);
      expect_close(tensor::linear_quantized(a, qb, bias1), lin_ref,
                   "linear_quantized " + tag, 1e-5f);
      expect_close(tensor::matmul_nt_quantized(a, qb), nt_ref,
                   "matmul_nt_quantized " + tag, 1e-5f);
      expect_close(tensor::matmul_nt_dyn_quantized(a, b_nt), dyn_ref,
                   "matmul_nt_dyn_quantized " + tag, 1e-5f);
    }
  }
}

TEST_F(KernelBackendTest, Int8GemmApproximatesFp32) {
  // Dequantize semantics sanity: the int8 result is the fp32 result up
  // to quantization error (loose tolerance — ~1% relative for these
  // magnitudes), so a wiring bug (wrong scale, wrong operand) shows up
  // as a gross mismatch rather than passing unnoticed.
  const tensor::Tensor a = filled(24, 96, 5);
  const tensor::Tensor b = filled(32, 96, 6);
  const tensor::Tensor ref = tensor::matmul_nt(a, b);
  const tensor::Tensor got = tensor::matmul_nt_dyn_quantized(a, b);
  ASSERT_EQ(got.shape(), ref.shape());
  double err = 0.0, mag = 0.0;
  for (std::size_t i = 0; i < ref.flat().size(); ++i) {
    err += std::abs(static_cast<double>(got.flat()[i] - ref.flat()[i]));
    mag += std::abs(static_cast<double>(ref.flat()[i]));
  }
  EXPECT_LT(err / mag, 0.02) << "mean relative int8 error too large";
}

TEST_F(KernelBackendTest, Int8WithinBackendByteDeterminism) {
  // Within one backend the int8 pipeline is byte-deterministic across
  // repeated runs (and therefore across chunk→worker assignments): the
  // i32 accumulation is exact and the requantize order is fixed per row.
  for (const auto& name : tensor::available_backends()) {
    ASSERT_TRUE(tensor::set_backend(name));
    const tensor::Tensor a = filled(67, 96, 1);
    const tensor::Tensor b = filled(71, 96, 3);
    tensor::Tensor bias({71});
    const tensor::quant::QuantizedTensor qb = tensor::quant::quantize_rows(b);
    const tensor::Tensor first = tensor::linear_quantized(a, qb, bias);
    for (int rep = 0; rep < 3; ++rep) {
      const tensor::Tensor again = tensor::linear_quantized(a, qb, bias);
      const auto f1 = first.flat(), f2 = again.flat();
      for (std::size_t i = 0; i < f1.size(); ++i) {
        ASSERT_EQ(f1[i], f2[i]) << name << " rep " << rep << " elem " << i;
      }
    }
  }
}

TEST_F(KernelBackendTest, QuantizedWeightsMemoizes) {
  const tensor::Tensor w = filled(16, 32, 9);
  const tensor::quant::QuantizedWeights panel;
  const tensor::quant::QuantizedTensor& first = panel.get(w);
  const tensor::quant::QuantizedTensor& second = panel.get(w);
  // Same object, not merely equal contents — get() must not re-quantize.
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.rows, 16);
  EXPECT_EQ(first.cols, 32);
}

TEST_F(KernelBackendTest, KernelSelectorFallsBackWithWarning) {
  // The ZENESIS_KERNEL resolution rule (init_from_env calls exactly this
  // function once per process): unknown names fall back to the best
  // backend with a one-line warning; known names resolve silently.
  std::string warning;
  const auto& fallback =
      tensor::kernels::resolve_selector("not-a-backend", &warning);
  EXPECT_STREQ(fallback.name, tensor::available_backends().front().c_str());
  EXPECT_NE(warning.find("ZENESIS_KERNEL"), std::string::npos);
  EXPECT_NE(warning.find("not-a-backend"), std::string::npos);

  warning = "stale";
  const auto& empty = tensor::kernels::resolve_selector("", &warning);
  EXPECT_STREQ(empty.name, tensor::available_backends().front().c_str());
  EXPECT_TRUE(warning.empty()) << warning;

  const auto& scalar = tensor::kernels::resolve_selector("scalar", &warning);
  EXPECT_STREQ(scalar.name, "scalar");
  EXPECT_TRUE(warning.empty()) << warning;
}

TEST_F(KernelBackendTest, PrecisionSelectorFallsBackWithWarning) {
  // Same contract for ZENESIS_PRECISION.
  std::string warning;
  EXPECT_EQ(tensor::quant::resolve_precision_selector("bogus", &warning),
            tensor::quant::Precision::kFp32);
  EXPECT_NE(warning.find("ZENESIS_PRECISION"), std::string::npos);
  EXPECT_NE(warning.find("bogus"), std::string::npos);

  for (const char* ok : {"", "auto", "fp32"}) {
    warning = "stale";
    EXPECT_EQ(tensor::quant::resolve_precision_selector(ok, &warning),
              tensor::quant::Precision::kFp32)
        << ok;
    EXPECT_TRUE(warning.empty()) << ok << ": " << warning;
  }
  // int8 resolves cleanly when the active backend has int8 kernels
  // (every shipped backend does).
  warning = "stale";
  EXPECT_EQ(tensor::quant::resolve_precision_selector("int8", &warning),
            tensor::quant::Precision::kInt8);
  EXPECT_TRUE(warning.empty()) << warning;
}

TEST_F(KernelBackendTest, SetPrecisionAndFastPath) {
  ASSERT_TRUE(tensor::quant::set_precision("fp32"));
  EXPECT_STREQ(tensor::quant::precision_name(), "fp32");
  EXPECT_FALSE(tensor::quant::int8_fast_path());

  ASSERT_TRUE(tensor::quant::set_precision("int8"));
  EXPECT_STREQ(tensor::quant::precision_name(), "int8");
  EXPECT_TRUE(tensor::quant::int8_fast_path());

  // A failed set leaves the selection untouched.
  EXPECT_FALSE(tensor::quant::set_precision("fp16"));
  EXPECT_STREQ(tensor::quant::precision_name(), "int8");

  EXPECT_TRUE(tensor::quant::precision_available("auto"));
  EXPECT_TRUE(tensor::quant::precision_available("fp32"));
  EXPECT_TRUE(tensor::quant::precision_available("int8"));
  EXPECT_FALSE(tensor::quant::precision_available("fp16"));
}

TEST_F(KernelBackendTest, PipelineConfigValidatesPrecisionKnob) {
  core::PipelineConfig cfg;
  cfg.precision = "fp16";
  const auto issues = cfg.validate();
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].find("precision"), std::string::npos);
  EXPECT_THROW(core::ZenesisPipeline{cfg}, std::invalid_argument);

  // Every shipped backend provides int8 kernels, so the concrete combos
  // validate cleanly (the lacking-int8 branch is reachable only through
  // backend_supports_int8, covered by Int8SupportRegistry).
  for (const char* p : {"auto", "fp32", "int8"}) {
    cfg.precision = p;
    for (const auto& backend : tensor::available_backends()) {
      cfg.kernel_backend = backend;
      EXPECT_TRUE(cfg.validate().empty()) << p << " on " << backend;
    }
  }
}

TEST_F(KernelBackendTest, FingerprintSeparatesPrecisions) {
  // Cached masks must never alias across precisions.
  core::PipelineConfig fp32_cfg, int8_cfg, auto_cfg;
  fp32_cfg.precision = "fp32";
  int8_cfg.precision = "int8";
  EXPECT_NE(core::decode_config_fingerprint(fp32_cfg),
            core::decode_config_fingerprint(int8_cfg));
  // "auto" hashes the resolved name — same rule as the backend knob.
  ASSERT_TRUE(tensor::quant::set_precision("int8"));
  auto_cfg.precision = "auto";
  EXPECT_EQ(core::decode_config_fingerprint(auto_cfg),
            core::decode_config_fingerprint(int8_cfg));
  ASSERT_TRUE(tensor::quant::set_precision("fp32"));
  EXPECT_EQ(core::decode_config_fingerprint(auto_cfg),
            core::decode_config_fingerprint(fp32_cfg));
}

TEST_F(KernelBackendTest, FeatureCacheSeparatesPrecisions) {
  // The feature-cache key (L1 and the persistent disk tier) folds the
  // active precision: embeddings persisted under fp32 must be a clean
  // miss under int8 — not a silently served cross-precision hit — and
  // must hit again once fp32 is restored.
  namespace fs = std::filesystem;
  static std::atomic<int> counter{0};
  const fs::path dir =
      fs::temp_directory_path() /
      ("zenesis_quant_cache_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  fs::create_directories(dir);

  models::BackboneConfig bb;
  bb.patch_size = 8;
  bb.dim = 32;
  bb.blocks = 1;
  const models::VisionBackbone backbone(bb);
  const fibsem::SynthConfig synth = [] {
    fibsem::SynthConfig s;
    s.width = 48;
    s.height = 48;
    s.depth = 1;
    s.seed = 77;
    return s;
  }();
  const fibsem::SyntheticSlice slice = fibsem::generate_slice(synth, 0);
  const image::ImageF32 ready =
      image::make_ai_ready(image::AnyImage(slice.raw), {});

  models::FeatureCacheConfig cache_cfg;
  cache_cfg.disk_path = dir.string();

  ASSERT_TRUE(tensor::quant::set_precision("fp32"));
  const std::uint64_t h_fp32 = cache::hash_backbone_config(bb);
  {
    models::FeatureCache warm(cache_cfg);
    (void)warm.encode(ready, backbone);  // miss → L1 + disk write
    const auto s = warm.stats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.disk_writes, 1u);
  }

  ASSERT_TRUE(tensor::quant::set_precision("int8"));
  EXPECT_NE(cache::hash_backbone_config(bb), h_fp32);
  {
    models::FeatureCache cold(cache_cfg);
    (void)cold.encode(ready, backbone);  // same image, other precision
    const auto s = cold.stats();
    EXPECT_EQ(s.disk_hits, 0u) << "fp32 embedding served under int8";
    EXPECT_EQ(s.misses, 1u);
  }

  ASSERT_TRUE(tensor::quant::set_precision("fp32"));
  {
    models::FeatureCache back(cache_cfg);
    (void)back.encode(ready, backbone);
    const auto s = back.stats();
    EXPECT_EQ(s.disk_hits, 1u) << "fp32 embedding lost from the store";
    EXPECT_EQ(s.misses, 0u);
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST_F(KernelBackendTest, Int8EndToEndMaskAccuracyPerBackend) {
  // The quantization accuracy gate: under every backend, the int8
  // pipeline mask must match that backend's fp32 mask at IoU/Dice >=
  // 0.99 and lose at most 0.01 ground-truth IoU, on both morphologies.
  fibsem::SynthConfig synth;
  synth.width = 96;
  synth.height = 96;
  synth.depth = 1;
  synth.seed = 902;
  synth.needle_count = 12;

  for (const auto type :
       {fibsem::SampleType::kCrystalline, fibsem::SampleType::kAmorphous}) {
    synth.type = type;
    const fibsem::SyntheticSlice slice = fibsem::generate_slice(synth, 0);
    const std::string prompt = fibsem::default_prompt(type);

    for (const auto& backend : tensor::available_backends()) {
      core::PipelineConfig cfg;
      cfg.kernel_backend = backend;

      cfg.precision = "fp32";
      const core::SliceResult ref =
          core::ZenesisPipeline(cfg).segment(image::AnyImage(slice.raw), prompt);
      const eval::Metrics ref_gt =
          eval::compute_metrics(ref.mask, slice.ground_truth);

      cfg.precision = "int8";
      const core::SliceResult got =
          core::ZenesisPipeline(cfg).segment(image::AnyImage(slice.raw), prompt);
      const eval::Metrics m = eval::compute_metrics(got.mask, ref.mask);
      EXPECT_GE(m.iou, 0.99) << backend << " int8 vs fp32, "
                             << fibsem::sample_type_name(type);
      EXPECT_GE(m.dice, 0.99) << backend << " int8 vs fp32, "
                              << fibsem::sample_type_name(type);
      const eval::Metrics gt =
          eval::compute_metrics(got.mask, slice.ground_truth);
      EXPECT_GE(gt.iou, ref_gt.iou - 0.01)
          << backend << " int8 vs ground truth, "
          << fibsem::sample_type_name(type);
    }
  }
}

TEST_F(KernelBackendTest, VolumeDeterminismUnderInt8) {
  // The Mode-B byte-determinism contract holds on the int8 path too:
  // volume_threads 1 and 4 produce identical masks and confidences.
  fibsem::SynthConfig synth;
  synth.width = 64;
  synth.height = 64;
  synth.depth = 3;
  synth.seed = 311;
  synth.needle_count = 8;
  const fibsem::SyntheticVolume vol = fibsem::generate_volume(synth);
  const std::string prompt =
      fibsem::default_prompt(fibsem::SampleType::kCrystalline);

  core::PipelineConfig cfg;
  cfg.precision = "int8";
  cfg.volume_threads = 1;
  const core::VolumeResult serial = core::ZenesisPipeline(cfg).segment_volume(
      core::VolumeRequest::view(vol.volume, prompt));
  cfg.volume_threads = 4;
  const core::VolumeResult parallel = core::ZenesisPipeline(cfg).segment_volume(
      core::VolumeRequest::view(vol.volume, prompt));

  ASSERT_EQ(serial.slices.size(), parallel.slices.size());
  for (std::size_t z = 0; z < serial.slices.size(); ++z) {
    EXPECT_EQ(serial.slices[z].confidence, parallel.slices[z].confidence)
        << "slice " << z;
    const auto pa = serial.slices[z].mask.pixels();
    const auto pb = parallel.slices[z].mask.pixels();
    ASSERT_EQ(pa.size(), pb.size()) << "slice " << z;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      ASSERT_EQ(pa[i], pb[i]) << "slice " << z << " pixel " << i;
    }
  }
}

TEST_F(KernelBackendTest, VolumeDeterminismPerBackendAcrossThreadCounts) {
  // test_volume_parallel's contract, re-run under each backend: Mode-B
  // results are byte-identical for volume_threads 1 and 4.
  fibsem::SynthConfig synth;
  synth.width = 64;
  synth.height = 64;
  synth.depth = 3;
  synth.seed = 311;
  synth.needle_count = 8;
  const fibsem::SyntheticVolume vol = fibsem::generate_volume(synth);
  const std::string prompt =
      fibsem::default_prompt(fibsem::SampleType::kCrystalline);

  for (const auto& name : tensor::available_backends()) {
    core::PipelineConfig cfg;
    cfg.kernel_backend = name;

    cfg.volume_threads = 1;
    const core::VolumeResult serial = core::ZenesisPipeline(cfg).segment_volume(
        core::VolumeRequest::view(vol.volume, prompt));
    cfg.volume_threads = 4;
    const core::VolumeResult parallel =
        core::ZenesisPipeline(cfg).segment_volume(
            core::VolumeRequest::view(vol.volume, prompt));

    ASSERT_EQ(serial.slices.size(), parallel.slices.size()) << name;
    for (std::size_t z = 0; z < serial.slices.size(); ++z) {
      EXPECT_EQ(serial.slices[z].confidence, parallel.slices[z].confidence)
          << name << " slice " << z;
      const auto pa = serial.slices[z].mask.pixels();
      const auto pb = parallel.slices[z].mask.pixels();
      ASSERT_EQ(pa.size(), pb.size()) << name << " slice " << z;
      for (std::size_t i = 0; i < pa.size(); ++i) {
        ASSERT_EQ(pa[i], pb[i]) << name << " slice " << z << " pixel " << i;
      }
    }
  }
}

}  // namespace
