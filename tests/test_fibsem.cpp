// Synthetic FIB-SEM generator tests: determinism, morphology statistics,
// degradation model.
#include <gtest/gtest.h>

#include <cmath>

#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/normalize.hpp"
#include "zenesis/image/roi.hpp"

namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;

namespace {

zf::SynthConfig small_config(zf::SampleType type, std::uint64_t seed = 99) {
  zf::SynthConfig cfg;
  cfg.type = type;
  cfg.width = 128;
  cfg.height = 128;
  cfg.depth = 4;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

TEST(Synth, DeterministicPerSeedAndSlice) {
  const auto cfg = small_config(zf::SampleType::kCrystalline);
  const auto a = zf::generate_slice(cfg, 2);
  const auto b = zf::generate_slice(cfg, 2);
  for (std::size_t i = 0; i < a.raw.pixels().size(); ++i) {
    ASSERT_EQ(a.raw.pixels()[i], b.raw.pixels()[i]);
  }
  EXPECT_DOUBLE_EQ(zi::mask_iou(a.ground_truth, b.ground_truth), 1.0);
}

TEST(Synth, DifferentSeedsDiffer) {
  const auto a = zf::generate_slice(small_config(zf::SampleType::kAmorphous, 1), 0);
  const auto b = zf::generate_slice(small_config(zf::SampleType::kAmorphous, 2), 0);
  std::int64_t diff = 0;
  for (std::size_t i = 0; i < a.raw.pixels().size(); ++i) {
    diff += a.raw.pixels()[i] != b.raw.pixels()[i];
  }
  EXPECT_GT(diff, 1000);
}

TEST(Synth, CrystallineForegroundFractionPlausible) {
  const auto s = zf::generate_slice(small_config(zf::SampleType::kCrystalline), 1);
  const double f = zi::mask_fraction(s.ground_truth);
  EXPECT_GT(f, 0.04);
  EXPECT_LT(f, 0.30);
}

TEST(Synth, AmorphousForegroundFractionTracksTarget) {
  // The agglomerate-count calibration is empirical (overlap and z-shrink
  // losses), so the achieved fraction tracks the target within ~25%, and
  // a higher target must yield a denser volume.
  auto lo_cfg = small_config(zf::SampleType::kAmorphous);
  lo_cfg.particle_fraction = 0.20;
  auto hi_cfg = small_config(zf::SampleType::kAmorphous);
  hi_cfg.particle_fraction = 0.40;
  const double lo = zi::mask_fraction(zf::generate_slice(lo_cfg, 1).ground_truth);
  const double hi = zi::mask_fraction(zf::generate_slice(hi_cfg, 1).ground_truth);
  EXPECT_GT(lo, 0.08);
  EXPECT_LT(lo, 0.32);
  EXPECT_GT(hi, 0.18);
  EXPECT_LT(hi, 0.55);
  EXPECT_GT(hi, lo * 1.4);
}

TEST(Synth, CrystallineHasLargeDarkRegion) {
  const auto cfg = small_config(zf::SampleType::kCrystalline);
  const auto s = zf::generate_slice(cfg, 0);
  // Judge phase structure on the readiness-normalized image (raw counts
  // live in a sliver of the 16-bit scale by design).
  const zi::ImageF32 f = zi::make_ai_ready(zi::AnyImage(s.raw));
  std::int64_t dark = 0;
  for (float v : f.pixels()) dark += v < 0.15f;
  const double dark_frac =
      static_cast<double>(dark) / static_cast<double>(f.pixel_count());
  EXPECT_GT(dark_frac, 0.25);
  EXPECT_LT(dark_frac, 0.55);
}

TEST(Synth, AmorphousHasNoDarkHolder) {
  const auto s = zf::generate_slice(small_config(zf::SampleType::kAmorphous), 0);
  const zi::ImageF32 f = zi::make_ai_ready(zi::AnyImage(s.raw));
  std::int64_t dark = 0;
  for (float v : f.pixels()) dark += v < 0.15f;
  // No holder slab: only the percentile-normalization's clipped shadow
  // tail may fall below 0.15 (far less than the crystalline ~40% holder).
  EXPECT_LT(static_cast<double>(dark) / static_cast<double>(f.pixel_count()),
            0.15);
}

TEST(Synth, GroundTruthPixelsAreBright) {
  // Needles must be brighter than the membrane on average (pre-noise
  // contrast survives degradation).
  const auto s = zf::generate_slice(small_config(zf::SampleType::kCrystalline), 1);
  const zi::ImageF32 f = zi::make_ai_ready(zi::AnyImage(s.raw));
  double fg = 0.0, bg = 0.0;
  std::int64_t nfg = 0, nbg = 0;
  for (std::int64_t y = 0; y < f.height(); ++y) {
    for (std::int64_t x = 0; x < f.width(); ++x) {
      if (s.ground_truth.at(x, y) != 0) {
        fg += f.at(x, y);
        ++nfg;
      } else if (f.at(x, y) > 0.15f) {  // membrane (exclude holder)
        bg += f.at(x, y);
        ++nbg;
      }
    }
  }
  ASSERT_GT(nfg, 0);
  ASSERT_GT(nbg, 0);
  EXPECT_GT(fg / nfg, bg / nbg + 0.1);
}

TEST(Synth, AdjacentSlicesCorrelated) {
  const auto cfg = small_config(zf::SampleType::kAmorphous);
  const auto s0 = zf::generate_slice(cfg, 0);
  const auto s1 = zf::generate_slice(cfg, 1);
  const auto s3 = zf::generate_slice(cfg, 3);
  const double adjacent = zi::mask_iou(s0.ground_truth, s1.ground_truth);
  const double distant = zi::mask_iou(s0.ground_truth, s3.ground_truth);
  EXPECT_GT(adjacent, 0.35);
  EXPECT_GT(adjacent, distant);
}

TEST(Synth, SixteenBitRangeUsed) {
  const auto s = zf::generate_slice(small_config(zf::SampleType::kCrystalline), 0);
  std::uint16_t lo = 65535, hi = 0;
  for (auto v : s.raw.pixels()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  // The instrument parks its signal in a sliver of the 16-bit container
  // (>8 bits of depth used, but far from full scale) — the raw-data
  // obstacle the readiness layer must fix.
  EXPECT_GT(hi - lo, 3000);
  EXPECT_LT(hi, 20000);
  EXPECT_LT(lo, 2000);
}

TEST(Synth, VolumeCarriesVoxelMetadata) {
  const auto vol = zf::generate_volume(small_config(zf::SampleType::kCrystalline));
  EXPECT_EQ(vol.depth(), 4);
  EXPECT_EQ(static_cast<std::int64_t>(vol.ground_truth.size()), 4);
  EXPECT_GT(vol.volume.voxel().anisotropy(), 1.0);
}

TEST(Synth, VolumeMatchesPerSliceGeneration) {
  const auto cfg = small_config(zf::SampleType::kAmorphous);
  const auto vol = zf::generate_volume(cfg);
  const auto s2 = zf::generate_slice(cfg, 2);
  for (std::size_t i = 0; i < s2.raw.pixels().size(); ++i) {
    ASSERT_EQ(vol.volume.slice(2).pixels()[i], s2.raw.pixels()[i]);
  }
}

TEST(Synth, BenchmarkDatasetShape) {
  const auto ds = zf::make_benchmark_dataset(64, 5);
  EXPECT_EQ(ds.crystalline.depth(), 10);
  EXPECT_EQ(ds.amorphous.depth(), 10);
  EXPECT_EQ(ds.crystalline.type, zf::SampleType::kCrystalline);
  EXPECT_EQ(ds.amorphous.type, zf::SampleType::kAmorphous);
}

TEST(Synth, NamesAndPrompts) {
  EXPECT_STREQ(zf::sample_type_name(zf::SampleType::kCrystalline), "crystalline");
  EXPECT_STREQ(zf::sample_type_name(zf::SampleType::kAmorphous), "amorphous");
  EXPECT_NE(std::string(zf::default_prompt(zf::SampleType::kCrystalline)),
            std::string(zf::default_prompt(zf::SampleType::kAmorphous)));
}
