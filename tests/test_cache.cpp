// The in-memory cache tier: sharded LRU semantics, byte-budget
// enforcement (a budget of B must never admit more than B resident
// bytes — the regression that motivated size-aware accounting), per-shard
// eviction ordering against an exact reference model, decode-config
// fingerprinting for the mask-result cache, and ZENESIS_CACHE_BUDGET
// sizing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <list>
#include <memory>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "zenesis/cache/hash.hpp"
#include "zenesis/cache/sharded_lru.hpp"
#include "zenesis/core/pipeline.hpp"

namespace {

using namespace zenesis;
using cache::Key128;

using IntCache = cache::ShardedLruCache<int>;

std::shared_ptr<const int> val(int v) { return std::make_shared<const int>(v); }

Key128 key(std::uint64_t n) {
  return Key128{n, n * 0x9e3779b97f4a7c15ull + 1};
}

/// A key that lands in `shard` of `cache` (found by probing the salt).
template <typename C>
Key128 key_in_shard(const C& cache, std::size_t shard, std::uint64_t salt) {
  for (std::uint64_t probe = salt;; ++probe) {
    const Key128 k = key(probe);
    if (cache.shard_of(k) == shard) return k;
  }
}

// --- Byte budget: the satellite (a) regression ---

TEST(ShardedLru, BudgetNeverAdmitsMoreThanBudgetBytes) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = 4;
  cfg.capacity = 0;  // byte budget is the only bound
  cfg.byte_budget = 10'000;
  IntCache cache(cfg);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t bytes = 1 + rng() % 4000;
    (void)cache.put(key(rng() % 512), val(i), bytes);
    const auto s = cache.stats();
    ASSERT_LE(s.resident_bytes, cfg.byte_budget)
        << "budget exceeded after put " << i;
  }
  const auto s = cache.stats();
  EXPECT_GT(s.inserts, 0u);
  EXPECT_GT(s.evictions, 0u) << "workload was sized to force evictions";
}

TEST(ShardedLru, ShardBudgetsSumExactlyToGlobalBudget) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = 8;
  cfg.byte_budget = 1003;  // deliberately not divisible by 8
  IntCache cache(cfg);
  std::size_t total = 0;
  for (std::size_t i = 0; i < cache.shard_count(); ++i) {
    total += cache.shard_byte_budget(i);
  }
  EXPECT_EQ(total, cfg.byte_budget);
}

TEST(ShardedLru, OversizedEntryIsRejectedNotAdmitted) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = 1;
  cfg.capacity = 0;
  cfg.byte_budget = 100;
  IntCache cache(cfg);
  const Key128 k = key(1);
  EXPECT_FALSE(cache.put(k, val(1), 101));
  EXPECT_EQ(cache.peek(k), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.oversized_rejects, 1u);
  EXPECT_EQ(s.resident_bytes, 0u);
  // Exactly at the budget is admissible.
  EXPECT_TRUE(cache.put(k, val(1), 100));
  EXPECT_EQ(cache.stats().resident_bytes, 100u);
}

TEST(ShardedLru, ReplacingAnEntryAdjustsByteAccounting) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = 1;
  cfg.capacity = 0;
  cfg.byte_budget = 1000;
  IntCache cache(cfg);
  ASSERT_TRUE(cache.put(key(1), val(1), 600));
  // Same key, new size: the old 600 must be released, not leaked, or the
  // budget check would spuriously evict.
  ASSERT_TRUE(cache.put(key(1), val(2), 700));
  const auto s = cache.stats();
  EXPECT_EQ(s.resident_bytes, 700u);
  EXPECT_EQ(s.resident_entries, 1u);
  EXPECT_EQ(s.evictions, 0u);
  const auto hit = cache.get(key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 2);
}

// --- Eviction ordering ---

TEST(ShardedLru, SingleShardEvictsExactLeastRecentlyUsed) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = 1;
  cfg.capacity = 3;
  IntCache cache(cfg);
  ASSERT_TRUE(cache.put(key(1), val(1), 1));
  ASSERT_TRUE(cache.put(key(2), val(2), 1));
  ASSERT_TRUE(cache.put(key(3), val(3), 1));
  ASSERT_NE(cache.get(key(1)), nullptr);  // 2 is now least recent
  ASSERT_TRUE(cache.put(key(4), val(4), 1));
  EXPECT_EQ(cache.peek(key(2)), nullptr) << "LRU entry must be the victim";
  EXPECT_NE(cache.peek(key(1)), nullptr);
  EXPECT_NE(cache.peek(key(3)), nullptr);
  EXPECT_NE(cache.peek(key(4)), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ShardedLru, EvictionIsConfinedToTheOverflowingShard) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = 4;
  cfg.capacity = 8;  // 2 per shard
  IntCache cache(cfg);
  // Pin one resident entry in every other shard, then overflow shard 0.
  std::vector<Key128> pinned;
  for (std::size_t s = 1; s < cache.shard_count(); ++s) {
    const Key128 k = key_in_shard(cache, s, 1000 * s);
    ASSERT_TRUE(cache.put(k, val(static_cast<int>(s)), 1));
    pinned.push_back(k);
  }
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        cache.put(key_in_shard(cache, 0, 5000 + 17 * static_cast<unsigned>(i)),
                  val(i), 1));
  }
  EXPECT_GT(cache.stats().evictions, 0u);
  for (const Key128& k : pinned) {
    EXPECT_NE(cache.peek(k), nullptr)
        << "eviction in shard 0 must never touch other shards";
  }
}

/// Exact reference model of one shard: ordered map key→(value, bytes),
/// recency as an access list, evicting least-recent until budget+cap fit.
class ReferenceLru {
 public:
  ReferenceLru(std::size_t capacity, std::size_t budget)
      : capacity_(capacity), budget_(budget) {}

  const int* get(const Key128& k) {
    const auto it = map_.find(mix(k));
    if (it == map_.end()) return nullptr;
    touch(mix(k));
    return &it->second.value;
  }

  bool put(const Key128& k, int value, std::size_t bytes) {
    if (bytes > budget_) return false;
    const std::uint64_t id = mix(k);
    const auto it = map_.find(id);
    if (it != map_.end()) {
      bytes_ -= it->second.bytes;
      it->second = {value, bytes};
      bytes_ += bytes;
      touch(id);
    } else {
      map_.emplace(id, Entry{value, bytes});
      bytes_ += bytes;
      order_.push_back(id);
    }
    while (bytes_ > budget_ ||
           (capacity_ != 0 && map_.size() > capacity_)) {
      const std::uint64_t victim = order_.front();
      order_.pop_front();
      bytes_ -= map_.at(victim).bytes;
      map_.erase(victim);
      ++evictions_;
    }
    return true;
  }

  std::size_t bytes() const { return bytes_; }
  std::size_t size() const { return map_.size(); }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    int value;
    std::size_t bytes;
  };
  static std::uint64_t mix(const Key128& k) { return cache::mix_key(k); }
  void touch(std::uint64_t id) {
    order_.remove(id);
    order_.push_back(id);
  }

  std::size_t capacity_;
  std::size_t budget_;
  std::size_t bytes_ = 0;
  std::uint64_t evictions_ = 0;
  std::unordered_map<std::uint64_t, Entry> map_;
  std::list<std::uint64_t> order_;  ///< front = least recently used
};

TEST(ShardedLru, SingleShardMatchesExactReferenceModelUnderRandomOps) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = 1;
  cfg.capacity = 16;
  cfg.byte_budget = 400;
  IntCache cache(cfg);
  ReferenceLru model(cfg.capacity, cfg.byte_budget);

  std::mt19937_64 rng(20250808);
  for (int step = 0; step < 5000; ++step) {
    const Key128 k = key(rng() % 48);
    if (rng() % 3 == 0) {
      const int* expected = model.get(k);
      const auto got = cache.get(k);
      ASSERT_EQ(got != nullptr, expected != nullptr) << "step " << step;
      if (expected != nullptr) ASSERT_EQ(*got, *expected) << "step " << step;
    } else {
      const int value = static_cast<int>(rng() % 1000);
      const std::size_t bytes = 1 + rng() % 80;
      ASSERT_EQ(cache.put(k, val(value), bytes), model.put(k, value, bytes))
          << "step " << step;
    }
    const auto s = cache.stats();
    ASSERT_EQ(s.resident_bytes, model.bytes()) << "step " << step;
    ASSERT_EQ(s.resident_entries, model.size()) << "step " << step;
    ASSERT_EQ(s.evictions, model.evictions()) << "step " << step;
  }
}

// --- Shard selection and basic semantics ---

TEST(ShardedLru, ShardCountClampsAndRoundsToPowerOfTwo) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = 6;
  EXPECT_EQ(IntCache(cfg).shard_count(), 8u);
  cfg.shards = 0;
  EXPECT_EQ(IntCache(cfg).shard_count(), 1u);
  cfg.shards = 9000;
  EXPECT_EQ(IntCache(cfg).shard_count(), 4096u);
}

TEST(ShardedLru, ShardSelectionCoversAllShards) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = 16;
  IntCache cache(cfg);
  std::vector<int> seen(cache.shard_count(), 0);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const std::size_t s = cache.shard_of(key(i));
    ASSERT_LT(s, cache.shard_count());
    ++seen[s];
  }
  for (std::size_t s = 0; s < seen.size(); ++s) {
    EXPECT_GT(seen[s], 0) << "shard " << s << " never selected — mix is biased";
  }
}

TEST(ShardedLru, DisabledCacheAdmitsNothingAndCountsNothing) {
  cache::ShardedCacheConfig cfg;
  cfg.enabled = false;
  IntCache cache(cfg);
  EXPECT_FALSE(cache.put(key(1), val(1), 1));
  EXPECT_EQ(cache.get(key(1)), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits + s.misses + s.inserts + s.evictions, 0u);
}

TEST(ShardedLru, ClearDropsEntriesButKeepsCounters) {
  IntCache cache({});
  ASSERT_TRUE(cache.put(key(1), val(1), 1));
  ASSERT_NE(cache.get(key(1)), nullptr);
  cache.clear();
  EXPECT_EQ(cache.peek(key(1)), nullptr);
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.resident_bytes, 0u);
  EXPECT_EQ(s.resident_entries, 0u);
}

TEST(ShardedLru, EvictedValueSurvivesWhileReaderHoldsIt) {
  cache::ShardedCacheConfig cfg;
  cfg.shards = 1;
  cfg.capacity = 1;
  IntCache cache(cfg);
  ASSERT_TRUE(cache.put(key(1), val(41), 1));
  const auto held = cache.get(key(1));
  ASSERT_TRUE(cache.put(key(2), val(42), 1));  // evicts key(1)
  EXPECT_EQ(cache.peek(key(1)), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, 41) << "shared_ptr keeps the evicted value alive";
}

// --- Decode-config fingerprint: the satellite (b) keying contract ---

TEST(DecodeFingerprint, EveryDecodeRelevantKnobChangesTheFingerprint) {
  const core::PipelineConfig base;
  const std::uint64_t fp = core::decode_config_fingerprint(base);

  const auto differs = [&](auto mutate, const char* knob) {
    core::PipelineConfig cfg;
    mutate(cfg);
    EXPECT_NE(core::decode_config_fingerprint(cfg), fp)
        << knob << " must invalidate cached masks";
  };
  differs([](auto& c) { c.grounding.box_threshold = 0.30f; },
          "grounding.box_threshold");
  differs([](auto& c) { c.grounding.text_threshold = 0.20f; },
          "grounding.text_threshold");
  differs([](auto& c) { c.grounding.min_patches = 5; },
          "grounding.min_patches");
  differs([](auto& c) { c.grounding.pad_fraction = 0.10f; },
          "grounding.pad_fraction");
  differs([](auto& c) { c.grounding.backbone.seed = 999; },
          "grounding.backbone.seed");
  differs([](auto& c) { c.sam.backbone.dim = 32; }, "sam.backbone.dim");
  differs([](auto& c) { c.sam.grow_tolerance = 1.0f; }, "sam.grow_tolerance");
  differs([](auto& c) { c.sam.grow_tolerance_cap = 0.05f; },
          "sam.grow_tolerance_cap");
  differs([](auto& c) { c.sam.min_contrast_cut = 0.05f; },
          "sam.min_contrast_cut");
  differs([](auto& c) { c.sam.stability_delta = 0.5f; },
          "sam.stability_delta");
  differs([](auto& c) { c.sam.morph_radius = 2; }, "sam.morph_radius");
  differs([](auto& c) { c.sam.min_component_area = 32; },
          "sam.min_component_area");
  differs([](auto& c) { c.sam.coarse_veto_weight = 0.5f; },
          "sam.coarse_veto_weight");
  differs([](auto& c) { c.heuristic.window = 5; }, "heuristic.window");
  differs([](auto& c) { c.heuristic.size_factor = 2.0; },
          "heuristic.size_factor");
  differs([](auto& c) { c.heuristic.replace_missing = false; },
          "heuristic.replace_missing");
  differs([](auto& c) { c.max_boxes = 3; }, "max_boxes");
  differs([](auto& c) { c.enable_heuristic_refine = false; },
          "enable_heuristic_refine");
}

TEST(DecodeFingerprint, DecodeIrrelevantKnobsDoNotChangeTheFingerprint) {
  const core::PipelineConfig base;
  const std::uint64_t fp = core::decode_config_fingerprint(base);
  core::PipelineConfig cfg;
  cfg.volume_threads = 7;
  cfg.feature_cache.capacity = 3;
  cfg.feature_cache.shards = 2;
  cfg.mask_cache.capacity = 5;
  cfg.mask_cache.byte_budget = 1 << 16;
  EXPECT_EQ(core::decode_config_fingerprint(cfg), fp)
      << "scheduling and cache sizing must not invalidate cached masks";
}

TEST(MaskCache, ChangedDecodeKnobMissesAcrossPipelines) {
  // End-to-end keying check: the same image+prompt under a different
  // decode configuration must not reuse cached masks — the fingerprint
  // difference shows up as a mask-cache miss, not a stale hit.
  image::ImageF32 img(48, 48, 1);
  for (std::int64_t y = 0; y < 48; ++y) {
    for (std::int64_t x = 0; x < 48; ++x) {
      img.at(x, y) = (x > 16 && x < 32 && y > 16 && y < 32) ? 0.9f : 0.1f;
    }
  }
  core::PipelineConfig cfg;
  const core::ZenesisPipeline pipe(cfg);
  (void)pipe.segment_ready(img, "bright square");
  (void)pipe.segment_ready(img, "bright square");
  const auto s = pipe.mask_cache_stats();
  EXPECT_EQ(s.hits, 1u) << "identical request must hit";
  EXPECT_EQ(s.misses, 1u);
  // A changed prompt is a different request entirely.
  (void)pipe.segment_ready(img, "dark square");
  EXPECT_EQ(pipe.mask_cache_stats().misses, 2u);
}

TEST(MaskCache, DisabledMaskCacheRecordsNoTraffic) {
  core::PipelineConfig cfg;
  cfg.mask_cache.enabled = false;
  const core::ZenesisPipeline pipe(cfg);
  image::ImageF32 img(32, 32, 1);
  img.fill(0.4f);
  (void)pipe.segment_ready(img, "anything");
  (void)pipe.segment_ready(img, "anything");
  const auto s = pipe.mask_cache_stats();
  EXPECT_EQ(s.hits + s.misses, 0u);
}

TEST(PipelineConfig, CacheMisconfigurationsAreFlagged) {
  core::PipelineConfig cfg;
  cfg.feature_cache.shards = 0;
  cfg.feature_cache.byte_budget = 0;
  cfg.mask_cache.capacity = 0;
  const auto issues = cfg.validate();
  EXPECT_EQ(issues.size(), 3u);
  EXPECT_THROW(core::ZenesisPipeline{cfg}, std::invalid_argument);
}

// --- Byte-size parsing and the ZENESIS_CACHE_BUDGET knob ---

TEST(ByteSize, ParsesPlainAndSuffixedSpellings) {
  using cache::parse_byte_size;
  EXPECT_EQ(parse_byte_size("0"), std::size_t{0});
  EXPECT_EQ(parse_byte_size("777"), std::size_t{777});
  EXPECT_EQ(parse_byte_size("10K"), std::size_t{10} << 10);
  EXPECT_EQ(parse_byte_size("10k"), std::size_t{10} << 10);
  EXPECT_EQ(parse_byte_size("64M"), std::size_t{64} << 20);
  EXPECT_EQ(parse_byte_size("64MB"), std::size_t{64} << 20);
  EXPECT_EQ(parse_byte_size("64MiB"), std::size_t{64} << 20);
  EXPECT_EQ(parse_byte_size("2G"), std::size_t{2} << 30);
  EXPECT_EQ(parse_byte_size("512KB"), std::size_t{512} << 10);
}

TEST(ByteSize, RejectsMalformedInput) {
  using cache::parse_byte_size;
  EXPECT_FALSE(parse_byte_size("").has_value());
  EXPECT_FALSE(parse_byte_size("M").has_value());
  EXPECT_FALSE(parse_byte_size("12X").has_value());
  EXPECT_FALSE(parse_byte_size("12MM").has_value());
  EXPECT_FALSE(parse_byte_size("12 M").has_value());
  EXPECT_FALSE(parse_byte_size("-5").has_value());
  EXPECT_FALSE(parse_byte_size("1.5G").has_value());
  EXPECT_FALSE(parse_byte_size("99999999999999999999999").has_value());
}

class BudgetEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("ZENESIS_CACHE_BUDGET");
    if (old != nullptr) saved_ = old;
  }
  void TearDown() override {
    if (saved_.has_value()) {
      ::setenv("ZENESIS_CACHE_BUDGET", saved_->c_str(), 1);
    } else {
      ::unsetenv("ZENESIS_CACHE_BUDGET");
    }
  }
  std::optional<std::string> saved_;
};

TEST_F(BudgetEnv, EnvironmentSizesTheDefaultBudget) {
  ::setenv("ZENESIS_CACHE_BUDGET", "8M", 1);
  EXPECT_EQ(cache::default_byte_budget(), std::size_t{8} << 20);
  // The pipeline's cache configs pick the knob up at construction.
  EXPECT_EQ(models::FeatureCacheConfig{}.byte_budget, std::size_t{8} << 20);
  EXPECT_EQ(cache::ShardedCacheConfig{}.byte_budget, std::size_t{8} << 20);
}

TEST_F(BudgetEnv, UnparseableBudgetFallsBackTo256MiB) {
  ::setenv("ZENESIS_CACHE_BUDGET", "lots", 1);
  EXPECT_EQ(cache::default_byte_budget(), std::size_t{256} << 20);
  ::unsetenv("ZENESIS_CACHE_BUDGET");
  EXPECT_EQ(cache::default_byte_budget(), std::size_t{256} << 20);
}

}  // namespace
