// TIFF reader/writer tests: round trips, multi-page, malformed input.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "zenesis/io/tiff.hpp"

namespace zio = zenesis::io;
namespace zi = zenesis::image;

namespace {

zi::ImageU16 ramp_u16(std::int64_t w, std::int64_t h, std::uint16_t base) {
  zi::ImageU16 img(w, h, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      img.at(x, y) = static_cast<std::uint16_t>(base + y * w + x);
    }
  }
  return img;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace

TEST(Tiff, RoundTripU16InMemory) {
  zio::TiffStack stack;
  stack.pages.emplace_back(ramp_u16(7, 5, 1000));
  const auto bytes = zio::write_tiff_bytes(stack);
  const zio::TiffStack back = zio::read_tiff_bytes(bytes);
  ASSERT_EQ(back.pages.size(), 1u);
  const auto& img = std::get<zi::ImageU16>(back.pages[0]);
  EXPECT_EQ(img.width(), 7);
  EXPECT_EQ(img.height(), 5);
  EXPECT_EQ(img.at(3, 2), 1000 + 2 * 7 + 3);
}

TEST(Tiff, RoundTripU8) {
  zi::ImageU8 img(3, 3, 1);
  img.at(1, 1) = 200;
  zio::TiffStack stack;
  stack.pages.emplace_back(img);
  const zio::TiffStack back = zio::read_tiff_bytes(zio::write_tiff_bytes(stack));
  EXPECT_EQ(std::get<zi::ImageU8>(back.pages[0]).at(1, 1), 200);
}

TEST(Tiff, RoundTripU32) {
  zi::ImageU32 img(2, 2, 1);
  img.at(1, 0) = 4000000000u;
  zio::TiffStack stack;
  stack.pages.emplace_back(img);
  const zio::TiffStack back = zio::read_tiff_bytes(zio::write_tiff_bytes(stack));
  EXPECT_EQ(std::get<zi::ImageU32>(back.pages[0]).at(1, 0), 4000000000u);
}

TEST(Tiff, MultiPageOrderPreserved) {
  zio::TiffStack stack;
  for (std::uint16_t z = 0; z < 5; ++z) {
    stack.pages.emplace_back(ramp_u16(4, 4, static_cast<std::uint16_t>(z * 100)));
  }
  const zio::TiffStack back = zio::read_tiff_bytes(zio::write_tiff_bytes(stack));
  ASSERT_EQ(back.pages.size(), 5u);
  for (std::uint16_t z = 0; z < 5; ++z) {
    EXPECT_EQ(std::get<zi::ImageU16>(back.pages[z]).at(0, 0), z * 100);
  }
}

TEST(Tiff, FileRoundTripVolume) {
  const std::string path = temp_path("zenesis_test_volume.tif");
  zi::VolumeU16 vol(6, 4, 3);
  vol.slice(2).at(5, 3) = 12345;
  zio::write_volume_tiff(path, vol);
  const zi::VolumeU16 back = zio::read_volume_tiff_u16(path);
  EXPECT_EQ(back.depth(), 3);
  EXPECT_EQ(back.slice(2).at(5, 3), 12345);
  std::remove(path.c_str());
}

TEST(Tiff, RejectsGarbage) {
  EXPECT_THROW(zio::read_tiff_bytes({1, 2, 3}), std::runtime_error);
  std::vector<std::uint8_t> bad = {'X', 'X', 42, 0, 8, 0, 0, 0};
  EXPECT_THROW(zio::read_tiff_bytes(bad), std::runtime_error);
}

TEST(Tiff, RejectsBadMagic) {
  std::vector<std::uint8_t> bad = {'I', 'I', 43, 0, 8, 0, 0, 0};
  EXPECT_THROW(zio::read_tiff_bytes(bad), std::runtime_error);
}

TEST(Tiff, RejectsTruncatedStrip) {
  zio::TiffStack stack;
  stack.pages.emplace_back(ramp_u16(8, 8, 0));
  auto bytes = zio::write_tiff_bytes(stack);
  bytes.resize(40);  // keep the header, drop pixel data and IFD
  EXPECT_THROW(zio::read_tiff_bytes(bytes), std::runtime_error);
}

TEST(Tiff, EmptyStackWriteThrows) {
  EXPECT_THROW(zio::write_tiff_bytes({}), std::runtime_error);
}

TEST(Tiff, MissingFileThrows) {
  EXPECT_THROW(zio::read_tiff("/nonexistent/nowhere.tif"), std::runtime_error);
}

TEST(Tiff, BigEndianHeaderParses) {
  // Hand-built big-endian single-strip 8-bit 2x1 image.
  std::vector<std::uint8_t> be = {
      'M', 'M', 0, 42, 0, 0, 0, 10,  // header: IFD at offset 10
      0xAB, 0xCD,                    // pixel data at offset 8 (2 bytes)
      0, 8,                          // 8 entries
  };
  auto entry = [&](std::uint16_t tag, std::uint16_t type, std::uint32_t count,
                   std::uint32_t value) {
    be.push_back(static_cast<std::uint8_t>(tag >> 8));
    be.push_back(static_cast<std::uint8_t>(tag & 0xFF));
    be.push_back(static_cast<std::uint8_t>(type >> 8));
    be.push_back(static_cast<std::uint8_t>(type & 0xFF));
    for (int i = 3; i >= 0; --i) be.push_back(static_cast<std::uint8_t>((count >> (8 * i)) & 0xFF));
    if (type == 3) {  // SHORT: value left-justified in the 4-byte field
      be.push_back(static_cast<std::uint8_t>((value >> 8) & 0xFF));
      be.push_back(static_cast<std::uint8_t>(value & 0xFF));
      be.push_back(0);
      be.push_back(0);
    } else {
      for (int i = 3; i >= 0; --i) {
        be.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF));
      }
    }
  };
  entry(256, 4, 1, 2);   // width
  entry(257, 4, 1, 1);   // height
  entry(258, 3, 1, 8);   // bits
  entry(259, 3, 1, 1);   // compression: none
  entry(273, 4, 1, 8);   // strip offset
  entry(277, 3, 1, 1);   // samples per pixel
  entry(278, 4, 1, 1);   // rows per strip
  entry(279, 4, 1, 2);   // strip byte count
  be.push_back(0); be.push_back(0); be.push_back(0); be.push_back(0);  // next IFD

  const zio::TiffStack stack = zio::read_tiff_bytes(be);
  const auto& img = std::get<zi::ImageU8>(stack.pages.at(0));
  EXPECT_EQ(img.at(0, 0), 0xAB);
  EXPECT_EQ(img.at(1, 0), 0xCD);
}
