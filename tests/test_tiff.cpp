// TIFF reader/writer tests: round trips, multi-page, malformed input.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "zenesis/io/tiff.hpp"

namespace zio = zenesis::io;
namespace zi = zenesis::image;

namespace {

zi::ImageU16 ramp_u16(std::int64_t w, std::int64_t h, std::uint16_t base) {
  zi::ImageU16 img(w, h, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      img.at(x, y) = static_cast<std::uint16_t>(base + y * w + x);
    }
  }
  return img;
}

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

}  // namespace

TEST(Tiff, RoundTripU16InMemory) {
  zio::TiffStack stack;
  stack.pages.emplace_back(ramp_u16(7, 5, 1000));
  const auto bytes = zio::write_tiff_bytes(stack);
  const zio::TiffStack back = zio::read_tiff_bytes(bytes);
  ASSERT_EQ(back.pages.size(), 1u);
  const auto& img = std::get<zi::ImageU16>(back.pages[0]);
  EXPECT_EQ(img.width(), 7);
  EXPECT_EQ(img.height(), 5);
  EXPECT_EQ(img.at(3, 2), 1000 + 2 * 7 + 3);
}

TEST(Tiff, RoundTripU8) {
  zi::ImageU8 img(3, 3, 1);
  img.at(1, 1) = 200;
  zio::TiffStack stack;
  stack.pages.emplace_back(img);
  const zio::TiffStack back = zio::read_tiff_bytes(zio::write_tiff_bytes(stack));
  EXPECT_EQ(std::get<zi::ImageU8>(back.pages[0]).at(1, 1), 200);
}

TEST(Tiff, RoundTripU32) {
  zi::ImageU32 img(2, 2, 1);
  img.at(1, 0) = 4000000000u;
  zio::TiffStack stack;
  stack.pages.emplace_back(img);
  const zio::TiffStack back = zio::read_tiff_bytes(zio::write_tiff_bytes(stack));
  EXPECT_EQ(std::get<zi::ImageU32>(back.pages[0]).at(1, 0), 4000000000u);
}

TEST(Tiff, MultiPageOrderPreserved) {
  zio::TiffStack stack;
  for (std::uint16_t z = 0; z < 5; ++z) {
    stack.pages.emplace_back(ramp_u16(4, 4, static_cast<std::uint16_t>(z * 100)));
  }
  const zio::TiffStack back = zio::read_tiff_bytes(zio::write_tiff_bytes(stack));
  ASSERT_EQ(back.pages.size(), 5u);
  for (std::uint16_t z = 0; z < 5; ++z) {
    EXPECT_EQ(std::get<zi::ImageU16>(back.pages[z]).at(0, 0), z * 100);
  }
}

TEST(Tiff, FileRoundTripVolume) {
  const std::string path = temp_path("zenesis_test_volume.tif");
  zi::VolumeU16 vol(6, 4, 3);
  vol.slice(2).at(5, 3) = 12345;
  zio::write_volume_tiff(path, vol);
  const zi::VolumeU16 back = zio::read_volume_tiff_u16(path);
  EXPECT_EQ(back.depth(), 3);
  EXPECT_EQ(back.slice(2).at(5, 3), 12345);
  std::remove(path.c_str());
}

TEST(Tiff, RejectsGarbage) {
  EXPECT_THROW(zio::read_tiff_bytes({1, 2, 3}), std::runtime_error);
  std::vector<std::uint8_t> bad = {'X', 'X', 42, 0, 8, 0, 0, 0};
  EXPECT_THROW(zio::read_tiff_bytes(bad), std::runtime_error);
}

TEST(Tiff, RejectsBadMagic) {
  std::vector<std::uint8_t> bad = {'I', 'I', 43, 0, 8, 0, 0, 0};
  EXPECT_THROW(zio::read_tiff_bytes(bad), std::runtime_error);
}

TEST(Tiff, RejectsTruncatedStrip) {
  zio::TiffStack stack;
  stack.pages.emplace_back(ramp_u16(8, 8, 0));
  auto bytes = zio::write_tiff_bytes(stack);
  bytes.resize(40);  // keep the header, drop pixel data and IFD
  EXPECT_THROW(zio::read_tiff_bytes(bytes), std::runtime_error);
}

TEST(Tiff, EmptyStackWriteThrows) {
  EXPECT_THROW(zio::write_tiff_bytes({}), std::runtime_error);
}

TEST(Tiff, MissingFileThrows) {
  EXPECT_THROW(zio::read_tiff("/nonexistent/nowhere.tif"), std::runtime_error);
}

TEST(Tiff, BigEndianHeaderParses) {
  // Hand-built big-endian single-strip 8-bit 2x1 image.
  std::vector<std::uint8_t> be = {
      'M', 'M', 0, 42, 0, 0, 0, 10,  // header: IFD at offset 10
      0xAB, 0xCD,                    // pixel data at offset 8 (2 bytes)
      0, 8,                          // 8 entries
  };
  auto entry = [&](std::uint16_t tag, std::uint16_t type, std::uint32_t count,
                   std::uint32_t value) {
    be.push_back(static_cast<std::uint8_t>(tag >> 8));
    be.push_back(static_cast<std::uint8_t>(tag & 0xFF));
    be.push_back(static_cast<std::uint8_t>(type >> 8));
    be.push_back(static_cast<std::uint8_t>(type & 0xFF));
    for (int i = 3; i >= 0; --i) be.push_back(static_cast<std::uint8_t>((count >> (8 * i)) & 0xFF));
    if (type == 3) {  // SHORT: value left-justified in the 4-byte field
      be.push_back(static_cast<std::uint8_t>((value >> 8) & 0xFF));
      be.push_back(static_cast<std::uint8_t>(value & 0xFF));
      be.push_back(0);
      be.push_back(0);
    } else {
      for (int i = 3; i >= 0; --i) {
        be.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF));
      }
    }
  };
  entry(256, 4, 1, 2);   // width
  entry(257, 4, 1, 1);   // height
  entry(258, 3, 1, 8);   // bits
  entry(259, 3, 1, 1);   // compression: none
  entry(273, 4, 1, 8);   // strip offset
  entry(277, 3, 1, 1);   // samples per pixel
  entry(278, 4, 1, 1);   // rows per strip
  entry(279, 4, 1, 2);   // strip byte count
  be.push_back(0); be.push_back(0); be.push_back(0); be.push_back(0);  // next IFD

  const zio::TiffStack stack = zio::read_tiff_bytes(be);
  const auto& img = std::get<zi::ImageU8>(stack.pages.at(0));
  EXPECT_EQ(img.at(0, 0), 0xAB);
  EXPECT_EQ(img.at(1, 0), 0xCD);
}

// ---------------------------------------------------------------------------
// ISSUE-4 hardening: error taxonomy, overflow guards, IFD cycles,
// photometric handling, and the parameterized format sweep.
// ---------------------------------------------------------------------------

#include <tuple>

#include "zenesis/io/tiff_stream.hpp"

namespace {

/// Hand-built little-endian classic file: 2x1 8-bit single strip, with
/// injectable width/height/photometric so tests can craft inputs the
/// writer (correctly) refuses to produce.
std::vector<std::uint8_t> crafted_le_classic(std::uint32_t width,
                                             std::uint32_t height,
                                             std::uint16_t photometric) {
  std::vector<std::uint8_t> b = {
      'I', 'I', 42, 0, 10, 0, 0, 0,  // header: IFD at offset 10
      0xAB, 0xCD,                    // pixel data at offset 8
      9, 0,                          // 9 entries
  };
  auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto entry = [&](std::uint16_t tag, std::uint16_t type, std::uint32_t count,
                   std::uint32_t value) {
    b.push_back(static_cast<std::uint8_t>(tag & 0xFF));
    b.push_back(static_cast<std::uint8_t>(tag >> 8));
    b.push_back(static_cast<std::uint8_t>(type & 0xFF));
    b.push_back(static_cast<std::uint8_t>(type >> 8));
    put32(count);
    if (type == 3) {  // SHORT: left-justified in the value field
      b.push_back(static_cast<std::uint8_t>(value & 0xFF));
      b.push_back(static_cast<std::uint8_t>(value >> 8));
      b.push_back(0);
      b.push_back(0);
    } else {
      put32(value);
    }
  };
  entry(256, 4, 1, width);
  entry(257, 4, 1, height);
  entry(258, 3, 1, 8);
  entry(259, 3, 1, 1);
  entry(262, 3, 1, photometric);
  entry(273, 4, 1, 8);   // strip offset
  entry(277, 3, 1, 1);   // samples per pixel
  entry(278, 4, 1, height == 0 ? 1 : height);
  entry(279, 4, 1, 2);   // strip byte count
  put32(0);              // next IFD
  return b;
}

zio::TiffError capture_error(const std::vector<std::uint8_t>& bytes) {
  try {
    (void)zio::read_tiff_bytes(bytes);
  } catch (const zio::TiffError& e) {
    return e;
  }
  ADD_FAILURE() << "expected TiffError";
  return zio::TiffError(zio::TiffErrorKind::kBadHeader, "unreached");
}

}  // namespace

// Satellite 1 regression: crafted width/height whose byte size used to
// overflow size_t and wrap the bounds check now die at the pixel-count
// limit, long before any allocation.
TEST(TiffHardened, HugeDimensionsRejectedWithoutAllocation) {
  const zio::TiffError e =
      capture_error(crafted_le_classic(0xFFFFFFFFu, 0xFFFFFFFFu, 1));
  EXPECT_EQ(e.kind(), zio::TiffErrorKind::kLimitExceeded);
  EXPECT_EQ(e.page(), 0);
  EXPECT_GT(e.byte_offset(), 0u);  // points at the offending IFD entry
  // The taxonomy surfaces in what() for log scraping.
  EXPECT_NE(std::string(e.what()).find("LimitExceeded"), std::string::npos);
}

TEST(TiffHardened, ZeroDimensionsRejected) {
  EXPECT_EQ(capture_error(crafted_le_classic(0, 1, 1)).kind(),
            zio::TiffErrorKind::kCorruptIfd);
  EXPECT_EQ(capture_error(crafted_le_classic(2, 0, 1)).kind(),
            zio::TiffErrorKind::kCorruptIfd);
}

// Satellite 2 regression: a self-referential IFD chain is detected via
// visited-offset tracking on the second visit — no iteration-count crutch.
TEST(TiffHardened, CyclicIfdChainRejectedImmediately) {
  for (const std::size_t pages : {std::size_t{1}, std::size_t{2}}) {
    zio::TiffStack stack;
    for (std::size_t p = 0; p < pages; ++p) {
      stack.pages.emplace_back(ramp_u16(4, 3, static_cast<std::uint16_t>(p)));
    }
    auto bytes = zio::write_tiff_bytes(stack);
    // Default options: classic LE, so the first-IFD offset lives at bytes
    // 4..7 and the last page's next-IFD pointer is the final 4 bytes.
    std::uint32_t first = 0;
    for (int i = 0; i < 4; ++i) {
      first |= static_cast<std::uint32_t>(bytes[4 + static_cast<std::size_t>(i)])
               << (8 * i);
    }
    for (int i = 0; i < 4; ++i) {
      bytes[bytes.size() - 4 + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(first >> (8 * i));
    }
    const zio::TiffError e = capture_error(bytes);
    EXPECT_EQ(e.kind(), zio::TiffErrorKind::kCorruptIfd) << pages << " pages";
    EXPECT_EQ(e.byte_offset(), first);
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos)
        << e.what();
  }
}

// Satellite 3: the classic writer refuses offsets beyond 32 bits instead
// of silently truncating them. classic_offset_limit is the mocked-size
// hook: lowering it triggers the guard without writing 4 GiB.
TEST(TiffHardened, ClassicWriterRefusesOffsetOverflow) {
  zio::TiffStack stack;
  stack.pages.emplace_back(ramp_u16(16, 16, 0));
  zio::TiffWriteOptions opt;
  opt.classic_offset_limit = 64;  // pretend the 4 GiB cliff is at 64 bytes
  try {
    (void)zio::write_tiff_bytes(stack, opt);
    FAIL() << "expected TiffError{kLimitExceeded}";
  } catch (const zio::TiffError& e) {
    EXPECT_EQ(e.kind(), zio::TiffErrorKind::kLimitExceeded);
    // The message must steer callers to the fix.
    EXPECT_NE(std::string(e.what()).find("kBigTiff"), std::string::npos)
        << e.what();
  }
  // Same stack, same mocked ceiling: BigTIFF ignores it and succeeds.
  opt.format = zio::TiffFormat::kBigTiff;
  const auto bytes = zio::write_tiff_bytes(stack, opt);
  const zio::TiffStack back = zio::read_tiff_bytes(bytes);
  EXPECT_EQ(std::get<zi::ImageU16>(back.pages.at(0)).at(3, 2),
            ramp_u16(16, 16, 0).at(3, 2));
}

// Satellite 4: MinIsWhite pages are inverted on decode...
TEST(TiffHardened, MinIsWhiteInvertedOnDecode) {
  const auto bytes = crafted_le_classic(2, 1, /*photometric=*/0);
  const zio::TiffStack stack = zio::read_tiff_bytes(bytes);
  const auto& img = std::get<zi::ImageU8>(stack.pages.at(0));
  EXPECT_EQ(img.at(0, 0), 255 - 0xAB);
  EXPECT_EQ(img.at(1, 0), 255 - 0xCD);
}

// ...round trips through the writer's min_is_white option are identity...
TEST(TiffHardened, MinIsWhiteRoundTripIsIdentity) {
  zio::TiffStack stack;
  stack.pages.emplace_back(ramp_u16(9, 5, 4321));
  zio::TiffWriteOptions opt;
  opt.min_is_white = true;
  const auto bytes = zio::write_tiff_bytes(stack, opt);
  // The file really is MinIsWhite on the wire...
  const auto reader = zio::TiffVolumeReader::open(bytes);
  EXPECT_EQ(reader.page_info(0).photometric, 0);
  // ...and decodes back to the original samples.
  const zio::TiffStack back = zio::read_tiff_bytes(bytes);
  const auto& got = std::get<zi::ImageU16>(back.pages.at(0));
  const auto want = ramp_u16(9, 5, 4321);
  for (std::int64_t y = 0; y < 5; ++y) {
    for (std::int64_t x = 0; x < 9; ++x) {
      ASSERT_EQ(got.at(x, y), want.at(x, y));
    }
  }
}

// ...and palette-color files are rejected with a precise diagnosis.
TEST(TiffHardened, PaletteColorRejectedAsUnsupported) {
  const zio::TiffError e = capture_error(crafted_le_classic(2, 1, 3));
  EXPECT_EQ(e.kind(), zio::TiffErrorKind::kUnsupported);
  EXPECT_EQ(e.tag(), 262);
  EXPECT_NE(std::string(e.what()).find("palette"), std::string::npos)
      << e.what();
}

// ---------------------------------------------------------------------------
// Satellite 5: parameterized round-trip sweep across every format axis.
// Each combination writes, re-reads (materializing AND streaming, and for
// every byte-source kind through a temp file) and asserts byte-identical
// pixels.
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<zio::TiffFormat, zio::TiffLayout,
                              zio::TiffCompression, int /*predictor*/,
                              bool /*big_endian*/,
                              int /*bits*/, std::int64_t /*width*/,
                              std::int64_t /*pages*/>;

class TiffRoundTripSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TiffRoundTripSweep, PixelsSurviveExactly) {
  const auto [fmt, layout, comp, predictor, be, bits, width, pages] = GetParam();
  const std::int64_t height = 11;

  zio::TiffStack stack;
  for (std::int64_t p = 0; p < pages; ++p) {
    if (bits == 8) {
      zi::ImageU8 img(width, height);
      for (std::int64_t y = 0; y < height; ++y) {
        for (std::int64_t x = 0; x < width; ++x) {
          img.at(x, y) = static_cast<std::uint8_t>(x + 7 * y + 37 * p);
        }
      }
      stack.pages.emplace_back(std::move(img));
    } else if (bits == 16) {
      zi::ImageU16 img(width, height);
      for (std::int64_t y = 0; y < height; ++y) {
        for (std::int64_t x = 0; x < width; ++x) {
          img.at(x, y) = static_cast<std::uint16_t>((x + 7 * y + 37 * p) * 257);
        }
      }
      stack.pages.emplace_back(std::move(img));
    } else {
      zi::ImageU32 img(width, height);
      for (std::int64_t y = 0; y < height; ++y) {
        for (std::int64_t x = 0; x < width; ++x) {
          img.at(x, y) =
              static_cast<std::uint32_t>((x + 7 * y + 37 * p) * 65537u);
        }
      }
      stack.pages.emplace_back(std::move(img));
    }
  }

  zio::TiffWriteOptions opt;
  opt.format = fmt;
  opt.layout = layout;
  opt.compression = comp;
  opt.predictor = predictor;
  opt.big_endian = be;
  opt.rows_per_strip = 4;  // 11 rows -> 3 strips, last one partial
  opt.tile_width = 16;     // odd widths leave a clipped edge tile
  opt.tile_height = 16;
  const auto bytes = zio::write_tiff_bytes(stack, opt);

  // Materializing reader.
  const zio::TiffStack back = zio::read_tiff_bytes(bytes);
  ASSERT_EQ(back.pages.size(), static_cast<std::size_t>(pages));
  // Streaming reader must agree slice-for-slice.
  const auto reader = zio::TiffVolumeReader::open(bytes);
  ASSERT_EQ(reader.pages(), pages);
  EXPECT_EQ(reader.bit_depth(), bits);
  EXPECT_EQ(reader.page_info(0).predictor, predictor);

  for (std::int64_t p = 0; p < pages; ++p) {
    const auto idx = static_cast<std::size_t>(p);
    const zi::AnyImage streamed = reader.read_page(p);
    std::visit(
        [&](const auto& want) {
          using Img = std::decay_t<decltype(want)>;
          const auto& mat = std::get<Img>(back.pages[idx]);
          const auto& str = std::get<Img>(streamed);
          ASSERT_EQ(mat.width(), want.width());
          ASSERT_EQ(mat.height(), want.height());
          const auto pw = want.pixels();
          const auto pm = mat.pixels();
          const auto ps = str.pixels();
          ASSERT_EQ(pm.size(), pw.size());
          ASSERT_EQ(ps.size(), pw.size());
          for (std::size_t i = 0; i < pw.size(); ++i) {
            ASSERT_EQ(pm[i], pw[i]) << "materialized, page " << p;
            ASSERT_EQ(ps[i], pw[i]) << "streamed, page " << p;
          }
        },
        stack.pages[idx]);
  }

  // Cross-source parity: the same file through every byte-source kind
  // must produce byte-identical pages (zero-copy mmap views, positioned
  // pread copies and the slurped memory buffer share one decode path).
  const std::string path = temp_path("zen_sweep_case.tif");
  zio::write_tiff(path, stack, opt);
  for (const zio::TiffSourceKind kind :
       {zio::TiffSourceKind::kMemory, zio::TiffSourceKind::kPread,
        zio::TiffSourceKind::kMmap}) {
    zio::TiffOpenOptions oo;
    oo.source_kind = kind;
    const auto from_file = zio::TiffVolumeReader::open(path, oo);
    ASSERT_EQ(from_file.pages(), pages);
    for (std::int64_t p = 0; p < pages; ++p) {
      const auto idx = static_cast<std::size_t>(p);
      const zi::AnyImage got = from_file.read_page(p);
      std::visit(
          [&](const auto& want) {
            using Img = std::decay_t<decltype(want)>;
            const auto& g = std::get<Img>(got);
            const auto pw = want.pixels();
            const auto pg = g.pixels();
            ASSERT_EQ(pg.size(), pw.size());
            for (std::size_t i = 0; i < pw.size(); ++i) {
              ASSERT_EQ(pg[i], pw[i])
                  << "source " << zio::to_string(kind) << ", page " << p;
            }
          },
          stack.pages[idx]);
    }
  }
  std::remove(path.c_str());
}

namespace {

// Readable test names (a lambda here would put commas inside macro
// arguments, which the preprocessor splits).
std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& p) {
  std::string name =
      std::get<0>(p.param) == zio::TiffFormat::kBigTiff ? "Big" : "Classic";
  name += std::get<1>(p.param) == zio::TiffLayout::kTiles ? "Tiles" : "Strips";
  switch (std::get<2>(p.param)) {
    case zio::TiffCompression::kNone: name += "Raw"; break;
    case zio::TiffCompression::kPackBits: name += "PackBits"; break;
    case zio::TiffCompression::kLzw: name += "Lzw"; break;
    case zio::TiffCompression::kDeflate: name += "Deflate"; break;
  }
  if (std::get<3>(p.param) == 2) name += "Pred";
  name += std::get<4>(p.param) ? "BE" : "LE";
  name += "U" + std::to_string(std::get<5>(p.param));
  name += "W" + std::to_string(std::get<6>(p.param));
  name += "P" + std::to_string(std::get<7>(p.param));
  return name;
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(
    AllFormatAxes, TiffRoundTripSweep,
    ::testing::Combine(
        ::testing::Values(zio::TiffFormat::kClassic, zio::TiffFormat::kBigTiff),
        ::testing::Values(zio::TiffLayout::kStrips, zio::TiffLayout::kTiles),
        ::testing::Values(zio::TiffCompression::kNone,
                          zio::TiffCompression::kPackBits,
                          zio::TiffCompression::kLzw,
                          zio::TiffCompression::kDeflate),
        ::testing::Values(1, 2),                          // predictor
        ::testing::Bool(),                                // big-endian
        ::testing::Values(8, 16, 32),                     // bit depth
        ::testing::Values(std::int64_t{19}, std::int64_t{20}),
        ::testing::Values(std::int64_t{1}, std::int64_t{3}, std::int64_t{10})),
    sweep_name);
