// Tests for explicit-box grounding paths: ground_box, detect_with_concepts
// and the prompted segment_with_box overload (the route taken when the
// temporal heuristic replaces a failed detection).
#include <gtest/gtest.h>

#include "zenesis/core/pipeline.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"

namespace zc = zenesis::core;
namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;
namespace zm = zenesis::models;
namespace zt = zenesis::tensor;

namespace {

zf::SyntheticSlice crystalline_slice() {
  zf::SynthConfig cfg;
  cfg.type = zf::SampleType::kCrystalline;
  cfg.width = 128;
  cfg.height = 128;
  cfg.seed = 606;
  return zf::generate_slice(cfg, 1);
}

}  // namespace

TEST(GroundBox, CarriesPromptDirection) {
  const zc::ZenesisPipeline pipe;
  const zm::GroundingResult g =
      pipe.detector().ground_box({10, 10, 50, 50}, "bright catalyst");
  ASSERT_EQ(g.boxes.size(), 1u);
  EXPECT_EQ(g.boxes[0].box, (zi::Box{10, 10, 50, 50}));
  EXPECT_TRUE(g.has_direction);
  EXPECT_GT(g.concept_direction[zm::kIntensity], 0.0f);
}

TEST(GroundBox, EmptyPromptHasNoDirection) {
  const zc::ZenesisPipeline pipe;
  const zm::GroundingResult g = pipe.detector().ground_box({0, 0, 8, 8}, "");
  EXPECT_FALSE(g.has_direction);
  ASSERT_EQ(g.boxes.size(), 1u);
}

TEST(PromptedBox, BeatsUnpromptedOnAmbiguousBox) {
  // A box spanning catalyst + membrane + holder: without text, SAM's
  // internal ranking may pick any crisp object; with the prompt direction
  // the catalyst candidate must win.
  const auto s = crystalline_slice();
  const zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  const zi::Box box{0, 0, 128, 128};
  const zc::SliceResult prompted = pipe.segment_with_box(
      ready, box,
      zc::BoxPromptOptions{zf::default_prompt(zf::SampleType::kCrystalline),
                           zc::BoxPromptOptions::Ranking::kTextAlignment});
  const double prompted_iou = zi::mask_iou(prompted.mask, s.ground_truth);
  EXPECT_GT(prompted_iou, 0.35);
  const zc::SliceResult plain = pipe.segment_with_box(ready, box);
  EXPECT_GE(prompted_iou, zi::mask_iou(plain.mask, s.ground_truth) - 1e-9);
}

TEST(DetectWithConcepts, ValidatesShape) {
  const zc::ZenesisPipeline pipe;
  const auto s = crystalline_slice();
  const auto maps =
      zm::compute_features(pipe.make_ready(zi::AnyImage(s.raw)));
  EXPECT_THROW(pipe.detector().detect_with_concepts(maps, zt::Tensor({0, 5})),
               std::invalid_argument);
  EXPECT_THROW(pipe.detector().detect_with_concepts(maps, zt::Tensor({1, 3})),
               std::invalid_argument);
}

TEST(DetectWithConcepts, MatchesPromptPathForSameConcepts) {
  // Feeding the prompt's own weighted concept rows must reproduce the
  // prompt path exactly (the detector is deterministic).
  const zc::ZenesisPipeline pipe;
  const auto s = crystalline_slice();
  const auto maps =
      zm::compute_features(pipe.make_ready(zi::AnyImage(s.raw)));
  const char* prompt = zf::default_prompt(zf::SampleType::kCrystalline);

  const zm::TextEncoder text;
  const auto tokens = text.parse(prompt);
  std::vector<const zm::TextToken*> active;
  for (const auto& t : tokens) {
    if (t.weight >= pipe.detector().config().text_threshold) {
      active.push_back(&t);
    }
  }
  zt::Tensor concepts({static_cast<std::int64_t>(active.size()),
                       zm::kFeatureChannels});
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (int c = 0; c < zm::kFeatureChannels; ++c) {
      concepts.at(static_cast<std::int64_t>(i), c) =
          active[i]->concept_vec[static_cast<std::size_t>(c)] *
          active[i]->weight;
    }
  }
  const zm::GroundingResult via_prompt = pipe.detector().detect(maps, prompt);
  const zm::GroundingResult via_concepts =
      pipe.detector().detect_with_concepts(maps, concepts);
  ASSERT_EQ(via_prompt.boxes.size(), via_concepts.boxes.size());
  for (std::size_t i = 0; i < via_prompt.boxes.size(); ++i) {
    EXPECT_EQ(via_prompt.boxes[i].box, via_concepts.boxes[i].box);
    EXPECT_EQ(via_prompt.boxes[i].score, via_concepts.boxes[i].score);
  }
}

TEST(VolumeRefine, ReplacedSlicesStayTextGuided) {
  // A volume whose middle slice's detection is forcibly replaced must
  // still segment the catalyst there (not the holder) — the prompted
  // segment_with_box path.
  zf::SynthConfig cfg;
  cfg.type = zf::SampleType::kCrystalline;
  cfg.width = 128;
  cfg.height = 128;
  cfg.depth = 6;
  cfg.seed = 707;
  const auto vol = zf::generate_volume(cfg);
  const zc::ZenesisPipeline pipe;
  const zc::VolumeResult res = pipe.segment_volume(zc::VolumeRequest::view(
      vol.volume, zf::default_prompt(zf::SampleType::kCrystalline)));
  for (std::size_t i = 0; i < res.slices.size(); ++i) {
    const double iou =
        zi::mask_iou(res.slices[i].mask, vol.ground_truth[i]);
    EXPECT_GT(iou, 0.3) << "slice " << i
                        << (res.replaced[i] ? " (replaced)" : "");
  }
}
