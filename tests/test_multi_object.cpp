// Multi-object segmentation tests (future-work item 2).
#include <gtest/gtest.h>

#include "zenesis/core/session.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"

namespace zc = zenesis::core;
namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;

namespace {

zf::SyntheticSlice crystalline_slice() {
  zf::SynthConfig cfg;
  cfg.type = zf::SampleType::kCrystalline;
  cfg.width = 128;
  cfg.height = 128;
  cfg.seed = 505;
  return zf::generate_slice(cfg, 1);
}

}  // namespace

TEST(MultiObject, LabelsAreWithinRange) {
  const auto s = crystalline_slice();
  zc::Session session;
  const auto res = session.mode_a_segment_multi(
      zi::AnyImage(s.raw),
      {"bright needle-like crystalline catalyst", "dark background"});
  ASSERT_EQ(res.per_prompt.size(), 2u);
  for (auto v : res.labels.pixels()) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 2);
  }
}

TEST(MultiObject, ClassesAreDisjointAndMatchPrompts) {
  const auto s = crystalline_slice();
  zc::Session session;
  const auto res = session.mode_a_segment_multi(
      zi::AnyImage(s.raw),
      {"bright needle-like crystalline catalyst", "dark background"});

  // Class 1 should be dominated by catalyst GT; class 2 by the holder.
  std::int64_t c1 = 0, c1_gt = 0, c2 = 0, c2_gt = 0;
  const zi::ImageF32 ready =
      session.pipeline().make_ready(zi::AnyImage(s.raw));
  for (std::int64_t y = 0; y < 128; ++y) {
    for (std::int64_t x = 0; x < 128; ++x) {
      const std::int32_t l = res.labels.at(x, y);
      if (l == 1) {
        ++c1;
        c1_gt += s.ground_truth.at(x, y) != 0;
      } else if (l == 2) {
        ++c2;
        c2_gt += ready.at(x, y) < 0.2f;  // holder pixels are near-black
      }
    }
  }
  ASSERT_GT(c1, 0);
  ASSERT_GT(c2, 0);
  EXPECT_GT(static_cast<double>(c1_gt) / static_cast<double>(c1), 0.5);
  EXPECT_GT(static_cast<double>(c2_gt) / static_cast<double>(c2), 0.5);
}

TEST(MultiObject, SinglePromptMatchesModeA) {
  const auto s = crystalline_slice();
  zc::Session session;
  const char* prompt = zf::default_prompt(zf::SampleType::kCrystalline);
  const auto multi =
      session.mode_a_segment_multi(zi::AnyImage(s.raw), {prompt});
  const auto single = session.mode_a_segment(zi::AnyImage(s.raw), prompt);
  zi::Mask from_labels(128, 128);
  for (std::int64_t y = 0; y < 128; ++y) {
    for (std::int64_t x = 0; x < 128; ++x) {
      from_labels.at(x, y) = multi.labels.at(x, y) == 1 ? 1 : 0;
    }
  }
  EXPECT_DOUBLE_EQ(zi::mask_iou(from_labels, single.mask), 1.0);
}

TEST(MultiObject, EmptyPromptListYieldsBackgroundOnly) {
  const auto s = crystalline_slice();
  zc::Session session;
  const auto res = session.mode_a_segment_multi(zi::AnyImage(s.raw), {});
  EXPECT_TRUE(res.per_prompt.empty());
  for (auto v : res.labels.pixels()) EXPECT_EQ(v, 0);
}

TEST(MultiObject, UngroundablePromptClaimsNothing) {
  const auto s = crystalline_slice();
  zc::Session session;
  const auto res = session.mode_a_segment_multi(
      zi::AnyImage(s.raw),
      {"bright needle-like crystalline catalyst", "zorblax quux"});
  std::int64_t c2 = 0;
  for (auto v : res.labels.pixels()) c2 += v == 2;
  EXPECT_EQ(c2, 0);
}
