// Tests for the data-readiness layer (Fig. 1 transform).
#include <gtest/gtest.h>

#include <cmath>

#include "zenesis/image/normalize.hpp"
#include "zenesis/parallel/rng.hpp"

namespace zi = zenesis::image;

namespace {

zi::ImageF32 ramp_image(std::int64_t w, std::int64_t h) {
  zi::ImageF32 img(w, h, 1);
  for (std::int64_t y = 0; y < h; ++y) {
    for (std::int64_t x = 0; x < w; ++x) {
      img.at(x, y) = static_cast<float>(y * w + x) /
                     static_cast<float>(w * h - 1);
    }
  }
  return img;
}

}  // namespace

TEST(ToFloat, U8ScalesByTypeMax) {
  zi::ImageU8 img(2, 1, 1);
  img.at(0, 0) = 0;
  img.at(1, 0) = 255;
  const zi::ImageF32 f = zi::to_float(zi::AnyImage(img));
  EXPECT_FLOAT_EQ(f.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(f.at(1, 0), 1.0f);
}

TEST(ToFloat, U16ScalesByTypeMax) {
  zi::ImageU16 img(1, 1, 1);
  img.at(0, 0) = 65535;
  EXPECT_FLOAT_EQ(zi::to_float(zi::AnyImage(img)).at(0, 0), 1.0f);
}

TEST(ToFloat, U32ScalesByTypeMax) {
  zi::ImageU32 img(1, 1, 1);
  img.at(0, 0) = 4294967295u;
  EXPECT_NEAR(zi::to_float(zi::AnyImage(img)).at(0, 0), 1.0f, 1e-6f);
}

TEST(ToFloat, RgbReducedToLuminance) {
  zi::ImageF32 rgb(1, 1, 3);
  rgb.at(0, 0, 0) = 1.0f;  // pure red
  const zi::ImageF32 g = zi::to_float(zi::AnyImage(rgb));
  EXPECT_EQ(g.channels(), 1);
  EXPECT_NEAR(g.at(0, 0), 0.299f, 1e-5f);
}

TEST(Stats, KnownValues) {
  zi::ImageF32 img(2, 1, 1);
  img.at(0, 0) = 0.0f;
  img.at(1, 0) = 1.0f;
  const zi::Stats s = zi::compute_stats(img);
  EXPECT_FLOAT_EQ(s.min, 0.0f);
  EXPECT_FLOAT_EQ(s.max, 1.0f);
  EXPECT_DOUBLE_EQ(s.mean, 0.5);
  EXPECT_NEAR(s.stddev, 0.5, 1e-9);
}

TEST(Percentile, MedianOfRamp) {
  const zi::ImageF32 img = ramp_image(10, 10);
  EXPECT_NEAR(zi::percentile(img, 50.0), 0.5f, 0.02f);
  EXPECT_NEAR(zi::percentile(img, 0.0), 0.0f, 1e-6f);
  EXPECT_NEAR(zi::percentile(img, 100.0), 1.0f, 1e-6f);
}

TEST(PercentileNormalize, ClipsOutliers) {
  zi::ImageF32 img = ramp_image(10, 10);  // body spans [0,1]
  img.at(0, 0) = 100.0f;  // hot pixel
  img.at(1, 0) = -50.0f;  // dead pixel
  const zi::ImageF32 n = zi::percentile_normalize(img, 5.0, 95.0);
  // Outliers are clamped to the ends instead of compressing the body.
  EXPECT_FLOAT_EQ(n.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(n.at(1, 0), 0.0f);
  // The body keeps most of its dynamic range.
  EXPECT_GT(n.at(9, 9) - n.at(2, 0), 0.8f);
}

TEST(PercentileNormalize, ConstantImageMapsToZero) {
  zi::ImageF32 img(4, 4, 1);
  img.fill(0.7f);
  const zi::ImageF32 n = zi::percentile_normalize(img);
  for (float v : n.pixels()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(MinmaxNormalize, FullRange) {
  zi::ImageF32 img(2, 1, 1);
  img.at(0, 0) = 2.0f;
  img.at(1, 0) = 4.0f;
  const zi::ImageF32 n = zi::minmax_normalize(img);
  EXPECT_FLOAT_EQ(n.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(n.at(1, 0), 1.0f);
}

TEST(Histogram, CountsAndBounds) {
  const zi::ImageF32 img = ramp_image(16, 16);
  const auto h = zi::histogram(img, 0.0f, 1.0f, 16);
  std::int64_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, 256);
  EXPECT_THROW(zi::histogram(img, 1.0f, 0.0f, 16), std::invalid_argument);
  EXPECT_THROW(zi::histogram(img, 0.0f, 1.0f, 0), std::invalid_argument);
}

TEST(Quantize, RoundTripPreservesOrdering) {
  const zi::ImageF32 img = ramp_image(8, 8);
  for (int bits : {8, 16, 32}) {
    const zi::AnyImage q = zi::quantize(img, bits);
    EXPECT_EQ(zi::bit_depth(q), bits);
    const zi::ImageF32 back = zi::to_float(q);
    EXPECT_NEAR(back.at(7, 7), 1.0f, 0.01f);
    EXPECT_NEAR(back.at(0, 0), 0.0f, 0.01f);
  }
  EXPECT_THROW(zi::quantize(img, 12), std::invalid_argument);
}

TEST(Clahe, ImprovesLocalContrast) {
  // Dim quadrant embedded in a bright image: CLAHE must stretch the dim
  // quadrant's internal contrast.
  zenesis::parallel::Rng rng(3);
  zi::ImageF32 img(64, 64, 1);
  for (std::int64_t y = 0; y < 64; ++y) {
    for (std::int64_t x = 0; x < 64; ++x) {
      const bool dim = x < 32 && y < 32;
      const float base = dim ? 0.1f : 0.8f;
      img.at(x, y) = base + 0.02f * static_cast<float>(rng.uniform());
    }
  }
  const zi::ImageF32 eq = zi::clahe(img, 4, 4, 3.0);
  auto local_range = [](const zi::ImageF32& m) {
    float lo = 1e9f, hi = -1e9f;
    for (std::int64_t y = 4; y < 28; ++y) {
      for (std::int64_t x = 4; x < 28; ++x) {
        lo = std::min(lo, m.at(x, y));
        hi = std::max(hi, m.at(x, y));
      }
    }
    return hi - lo;
  };
  EXPECT_GT(local_range(eq), local_range(img) * 2.0f);
}

TEST(MakeAiReady, OutputInUnitInterval) {
  zi::ImageU16 raw(16, 16, 1);
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      raw.at(x, y) = static_cast<std::uint16_t>(500 + 100 * x + 17 * y);
    }
  }
  const zi::ImageF32 ready = zi::make_ai_ready(zi::AnyImage(raw));
  for (float v : ready.pixels()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  // Range must be stretched to (nearly) full scale.
  const zi::Stats s = zi::compute_stats(ready);
  EXPECT_GT(s.max - s.min, 0.9f);
}
