#pragma once
// Structure-aware TIFF mutation fuzzer.
//
// The robustness contract of zen_io's TIFF subsystem is binary: any byte
// sequence either decodes or throws io::TiffError — never a crash, hang,
// non-TiffError exception or over-limit allocation. This harness enforces
// the contract deterministically: it builds a corpus of well-formed
// stacks covering every supported format feature (classic/BigTIFF,
// LE/BE, strips/tiles, uncompressed/PackBits/LZW/Deflate with and
// without the horizontal predictor, 8/16/32-bit, BlackIsZero/
// MinIsWhite), then applies seeded structure-aware mutations — it scans
// the real IFD structure of each file and rewrites entry types, counts,
// value offsets and next-IFD pointers (including cycle grafts), alongside
// truncations, raw byte flips and codec-aware attacks (compression/
// predictor tag rewrites, code-stream burst corruption, declared-size
// bombs on Strip/TileByteCounts) — and runs every mutant through both
// the materializing reader and the streaming TiffVolumeReader.
//
// gtest-free by design: tests/test_tiff_fuzz.cpp wraps it in a TEST, and
// tools/tiff_corpus.cpp runs it standalone (and dumps the corpus for
// external fuzzers). Run under ASAN/UBSAN via tools/ci.sh stages 3-4.

#include <cstdint>
#include <string>
#include <vector>

#include "zenesis/io/tiff.hpp"
#include "zenesis/io/tiff_error.hpp"

namespace zenesis::io::fuzz {

/// One well-formed seed file plus the feature axes it covers.
struct CorpusEntry {
  std::string name;  ///< e.g. "bigtiff_tiles_packbits_u16_be"
  std::vector<std::uint8_t> bytes;
};

/// Builds the feature-complete corpus (146 entries: 2 formats x 2
/// layouts x 4 compressions x 3 depths x 2 byte orders, plus horizontal-
/// predictor variants of the LZW/Deflate entries and MinIsWhite extras).
std::vector<CorpusEntry> build_corpus();

struct FuzzStats {
  std::uint64_t mutants = 0;   ///< total mutants executed
  std::uint64_t decoded = 0;   ///< mutants that still parsed fully
  std::uint64_t rejected = 0;  ///< mutants rejected with TiffError
  std::uint64_t kind_counts[6] = {};  ///< rejections per TiffErrorKind
  /// Contract violations (empty = pass). Capped at 20 entries.
  std::vector<std::string> failures;
};

/// Runs `mutants_per_entry` deterministic mutants of every corpus entry
/// (plus the pristine entry itself, which must decode) through both
/// readers under `limits`. Same seed => same mutants => same stats.
FuzzStats run_fuzz(std::uint64_t seed, std::size_t mutants_per_entry,
                   const TiffReadLimits& limits);

}  // namespace zenesis::io::fuzz
