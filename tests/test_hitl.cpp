// Human-in-the-loop rectification tests.
#include <gtest/gtest.h>

#include "zenesis/hitl/rectify.hpp"
#include "zenesis/image/roi.hpp"

namespace zh = zenesis::hitl;
namespace zi = zenesis::image;
namespace zm = zenesis::models;
namespace zp = zenesis::parallel;

namespace {

/// Bright disk scene + its GT.
struct Scene {
  zi::ImageF32 img{128, 128, 1};
  zi::Mask gt{128, 128};
};

Scene disk_scene() {
  Scene s;
  zp::Rng rng(51);
  for (std::int64_t y = 0; y < 128; ++y) {
    for (std::int64_t x = 0; x < 128; ++x) {
      const double d2 = (x - 50.0) * (x - 50.0) + (y - 70.0) * (y - 70.0);
      const bool inside = d2 < 22.0 * 22.0;
      s.img.at(x, y) = (inside ? 0.75f : 0.2f) +
                       static_cast<float>(rng.normal(0.0, 0.02));
      s.gt.at(x, y) = inside ? 1 : 0;
    }
  }
  return s;
}

}  // namespace

TEST(RandomBoxes, CountAndBounds) {
  zp::Rng rng(1);
  zh::RandomBoxConfig cfg;
  cfg.count = 32;
  const auto boxes = zh::propose_random_boxes(100, 80, cfg, rng);
  ASSERT_EQ(boxes.size(), 32u);
  for (const auto& b : boxes) {
    EXPECT_FALSE(b.empty());
    EXPECT_GE(b.x, 0);
    EXPECT_GE(b.y, 0);
    EXPECT_LE(b.right(), 100);
    EXPECT_LE(b.bottom(), 80);
  }
}

TEST(RandomBoxes, BandProposalsSpanFullDimension) {
  zp::Rng rng(2);
  zh::RandomBoxConfig cfg;
  cfg.count = 64;
  cfg.band_fraction = 1.0;  // only bands
  const auto boxes = zh::propose_random_boxes(100, 80, cfg, rng);
  for (const auto& b : boxes) {
    EXPECT_TRUE(b.w == 100 || b.h == 80)
        << "band proposal must span one full dimension";
  }
}

TEST(SnapToSegment, PicksNearestComponent) {
  zi::Mask m(40, 40);
  for (std::int64_t y = 2; y < 6; ++y) {
    for (std::int64_t x = 2; x < 6; ++x) m.at(x, y) = 1;
  }
  for (std::int64_t y = 30; y < 38; ++y) {
    for (std::int64_t x = 30; x < 38; ++x) m.at(x, y) = 1;
  }
  const auto lab = zenesis::cv::label_components(m);
  const zi::Box near_small = zh::snap_to_nearest_segment({0, 0, 10, 10}, lab);
  EXPECT_EQ(near_small, (zi::Box{2, 2, 4, 4}));
  const zi::Box near_big = zh::snap_to_nearest_segment({28, 28, 10, 10}, lab);
  EXPECT_EQ(near_big, (zi::Box{30, 30, 8, 8}));
}

TEST(SnapToSegment, EmptyLabelingReturnsInput) {
  const zenesis::cv::Labeling empty = zenesis::cv::label_components(zi::Mask(8, 8));
  const zi::Box b{1, 2, 3, 4};
  EXPECT_EQ(zh::snap_to_nearest_segment(b, empty), b);
}

TEST(Annotator, PerfectFidelityPicksBestBox) {
  const Scene s = disk_scene();
  zh::SimulatedAnnotator expert(1.0, 7);
  const std::vector<zi::Box> candidates = {
      {0, 0, 20, 20},      // far corner
      {28, 48, 45, 45},    // covers the disk
      {100, 100, 20, 20},  // far corner
  };
  const zi::Box pick = expert.select_box(candidates, s.gt);
  EXPECT_EQ(pick, candidates[1]);
}

TEST(Annotator, ZeroFidelityIsRandomButValid) {
  const Scene s = disk_scene();
  zh::SimulatedAnnotator careless(0.0, 7);
  const std::vector<zi::Box> candidates = {{0, 0, 10, 10}, {5, 5, 10, 10}};
  const zi::Box pick = careless.select_box(candidates, s.gt);
  EXPECT_TRUE(pick == candidates[0] || pick == candidates[1]);
}

TEST(Annotator, ExpertClickLandsInsideMask) {
  const Scene s = disk_scene();
  zh::SimulatedAnnotator expert(1.0, 9);
  const zi::Point p = expert.click_point(s.gt);
  EXPECT_EQ(s.gt.at(p.x, p.y), 1);
}

TEST(Annotator, FidelityClamped) {
  zh::SimulatedAnnotator a(3.0, 1), b(-1.0, 1);
  EXPECT_DOUBLE_EQ(a.fidelity(), 1.0);
  EXPECT_DOUBLE_EQ(b.fidelity(), 0.0);
}

TEST(Rectify, ImprovesBadAutomatedMask) {
  const Scene s = disk_scene();
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  // Automated failure: mask stuck in a wrong corner.
  zi::Mask bad(128, 128);
  for (std::int64_t y = 0; y < 20; ++y) {
    for (std::int64_t x = 0; x < 20; ++x) bad.at(x, y) = 1;
  }
  zh::SimulatedAnnotator expert(1.0, 13);
  zp::Rng rng(13);
  zh::RandomBoxConfig cfg;
  cfg.count = 24;
  const zh::RectifyResult r =
      zh::rectify_segmentation(sam, enc, bad, s.gt, cfg, expert, rng);
  EXPECT_GT(r.after_iou, r.before_iou);
  EXPECT_GT(r.after_iou, 0.5);
}

TEST(Rectify, ReportsBeforeIouFaithfully) {
  const Scene s = disk_scene();
  zm::SamModel sam;
  const auto enc = sam.encode(s.img);
  zh::SimulatedAnnotator expert(1.0, 17);
  zp::Rng rng(17);
  const zh::RectifyResult r = zh::rectify_segmentation(
      sam, enc, s.gt, s.gt, {}, expert, rng);  // automated mask == GT
  EXPECT_DOUBLE_EQ(r.before_iou, 1.0);
}
