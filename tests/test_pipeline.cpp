// ZenesisPipeline tests: Mode A segmentation, further-segment, volume mode.
#include <gtest/gtest.h>

#include "zenesis/core/pipeline.hpp"
#include "zenesis/fibsem/synth.hpp"
#include "zenesis/image/roi.hpp"

namespace zc = zenesis::core;
namespace zf = zenesis::fibsem;
namespace zi = zenesis::image;

namespace {

zf::SynthConfig test_config(zf::SampleType type) {
  zf::SynthConfig cfg;
  cfg.type = type;
  cfg.width = 128;
  cfg.height = 128;
  cfg.depth = 5;
  cfg.seed = 7;
  return cfg;
}

}  // namespace

TEST(Pipeline, MakeReadyNormalizesRawU16) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  for (float v : ready.pixels()) {
    ASSERT_GE(v, 0.0f);
    ASSERT_LE(v, 1.0f);
  }
}

TEST(Pipeline, SegmentsCrystallineSliceWell) {
  // 128-px smoke check; benchmark-grade quality (256 px, 10 slices) is
  // asserted by test_integration and bench/table3.
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 1);
  zc::ZenesisPipeline pipe;
  const zc::SliceResult r = pipe.segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kCrystalline));
  EXPECT_FALSE(r.grounding.boxes.empty());
  EXPECT_GT(zi::mask_iou(r.mask, s.ground_truth), 0.4);
}

TEST(Pipeline, SegmentsAmorphousSliceWell) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kAmorphous), 1);
  zc::ZenesisPipeline pipe;
  const zc::SliceResult r = pipe.segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kAmorphous));
  EXPECT_GT(zi::mask_iou(r.mask, s.ground_truth), 0.5);
}

TEST(Pipeline, EmptyPromptGivesEmptyResult) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zc::SliceResult r = pipe.segment(zi::AnyImage(s.raw), "");
  EXPECT_TRUE(r.grounding.boxes.empty());
  EXPECT_EQ(zi::mask_area(r.mask), 0);
  EXPECT_TRUE(r.primary_box.empty());
}

TEST(Pipeline, SegmentWithBoxBypassesGrounding) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  const zc::SliceResult r = pipe.segment_with_box(ready, {10, 10, 100, 60});
  EXPECT_EQ(r.primary_box, (zi::Box{10, 10, 100, 60}));
  EXPECT_EQ(r.box_masks.size(), 1u);
}

TEST(Pipeline, MaxBoxesCapRespected) {
  zc::PipelineConfig cfg;
  cfg.max_boxes = 1;
  zc::ZenesisPipeline pipe(cfg);
  const auto s = zf::generate_slice(test_config(zf::SampleType::kAmorphous), 0);
  const zc::SliceResult r = pipe.segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kAmorphous));
  EXPECT_LE(r.box_masks.size(), 1u);
}

TEST(Pipeline, VolumeModeProducesPerSliceResults) {
  const auto vol = zf::generate_volume(test_config(zf::SampleType::kCrystalline));
  zc::ZenesisPipeline pipe;
  const zc::VolumeResult r = pipe.segment_volume(
      vol.volume, zf::default_prompt(zf::SampleType::kCrystalline));
  EXPECT_EQ(r.slices.size(), 5u);
  EXPECT_EQ(r.raw_boxes.size(), 5u);
  EXPECT_EQ(r.refined_boxes.size(), 5u);
  EXPECT_EQ(r.masks().size(), 5u);
}

TEST(Pipeline, HeuristicRefineCanBeDisabled) {
  auto cfg = zc::PipelineConfig{};
  cfg.enable_heuristic_refine = false;
  zc::ZenesisPipeline pipe(cfg);
  const auto vol = zf::generate_volume(test_config(zf::SampleType::kCrystalline));
  const zc::VolumeResult r = pipe.segment_volume(
      vol.volume, zf::default_prompt(zf::SampleType::kCrystalline));
  EXPECT_EQ(r.replaced_count, 0);
  EXPECT_EQ(r.raw_boxes, r.refined_boxes);
}

TEST(Pipeline, FurtherSegmentStaysInsideRoi) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 1);
  zc::ZenesisPipeline pipe;
  const zc::SliceResult parent = pipe.segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kCrystalline));
  const zi::Box roi{8, 8, 64, 48};
  const zc::SliceResult child = pipe.further_segment(
      parent, roi, zf::default_prompt(zf::SampleType::kCrystalline));
  const zi::Box bounds = zi::mask_bounds(child.mask);
  if (!bounds.empty()) {
    EXPECT_GE(bounds.x, roi.x);
    EXPECT_GE(bounds.y, roi.y);
    EXPECT_LE(bounds.right(), roi.right());
    EXPECT_LE(bounds.bottom(), roi.bottom());
  }
  // Child boxes are reported in parent coordinates.
  for (const auto& b : child.grounding.boxes) {
    EXPECT_GE(b.box.x, roi.x);
    EXPECT_GE(b.box.y, roi.y);
  }
}

TEST(Pipeline, FurtherSegmentEmptyRoiIsEmpty) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zc::SliceResult parent = pipe.segment(
      zi::AnyImage(s.raw), zf::default_prompt(zf::SampleType::kCrystalline));
  const zc::SliceResult child =
      pipe.further_segment(parent, {200, 200, 10, 10}, "bright catalyst");
  EXPECT_EQ(zi::mask_area(child.mask), 0);
}

TEST(Baselines, OtsuReturnsMask) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kAmorphous), 0);
  zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  const zi::Mask m = zc::baseline_otsu(ready);
  EXPECT_EQ(m.width(), 128);
  EXPECT_GT(zi::mask_area(m), 0);
}

TEST(Baselines, SamOnlyReturnsMask) {
  const auto s = zf::generate_slice(test_config(zf::SampleType::kCrystalline), 0);
  zc::ZenesisPipeline pipe;
  const zi::ImageF32 ready = pipe.make_ready(zi::AnyImage(s.raw));
  const zi::Mask m = zc::baseline_sam_only(pipe.sam(), ready);
  EXPECT_EQ(m.width(), 128);
}
